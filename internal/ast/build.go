package ast

// This file provides a compact construction DSL used by the dataset
// generators and tests. The helpers are deliberately terse: generator code
// reads almost like the C it produces.

// Id returns an identifier expression.
func Id(name string) *Ident { return &Ident{Name: name} }

// I returns an int literal.
func I(v int64) *IntLit { return &IntLit{V: v} }

// F returns a float literal.
func F(v float64) *FloatLit { return &FloatLit{V: v} }

// S returns a string literal.
func S(s string) *StrLit { return &StrLit{S: s} }

// Bin returns a binary expression.
func Bin(op string, x, y Expr) *BinExpr { return &BinExpr{Op: op, X: x, Y: y} }

// Eq returns x == y.
func Eq(x, y Expr) *BinExpr { return Bin("==", x, y) }

// Ne returns x != y.
func Ne(x, y Expr) *BinExpr { return Bin("!=", x, y) }

// Lt returns x < y.
func Lt(x, y Expr) *BinExpr { return Bin("<", x, y) }

// Add returns x + y.
func Add(x, y Expr) *BinExpr { return Bin("+", x, y) }

// Sub returns x - y.
func Sub(x, y Expr) *BinExpr { return Bin("-", x, y) }

// Mul returns x * y.
func Mul(x, y Expr) *BinExpr { return Bin("*", x, y) }

// Mod returns x % y.
func Mod(x, y Expr) *BinExpr { return Bin("%", x, y) }

// Idx returns x[i].
func Idx(x, i Expr) *IndexExpr { return &IndexExpr{X: x, I: i} }

// Addr returns &x.
func Addr(x Expr) *AddrExpr { return &AddrExpr{X: x} }

// Call returns a call expression.
func Call(name string, args ...Expr) *CallExpr { return &CallExpr{Name: name, Args: args} }

// X wraps an expression as a statement.
func X(e Expr) *ExprStmt { return &ExprStmt{X: e} }

// CallS returns a call statement.
func CallS(name string, args ...Expr) *ExprStmt { return X(Call(name, args...)) }

// Decl declares a variable.
func Decl(name string, t *Type, init Expr) *DeclStmt {
	return &DeclStmt{Name: name, Type: t, Init: init}
}

// DeclArr declares an array variable.
func DeclArr(name string, n int, elem *Type) *DeclStmt {
	return &DeclStmt{Name: name, Type: ArrayOf(n, elem)}
}

// Assign returns an assignment statement.
func Assign(lhs, rhs Expr) *AssignStmt { return &AssignStmt{LHS: lhs, RHS: rhs} }

// Block builds a block statement.
func Block(stmts ...Stmt) *BlockStmt { return &BlockStmt{Stmts: stmts} }

// If returns a one-armed conditional.
func If(cond Expr, then ...Stmt) *IfStmt { return &IfStmt{Cond: cond, Then: Block(then...)} }

// IfElse returns a two-armed conditional.
func IfElse(cond Expr, then, els []Stmt) *IfStmt {
	return &IfStmt{Cond: cond, Then: Block(then...), Else: Block(els...)}
}

// ForUp returns `for (v = from; v < to; v = v + 1) body`, declaring v.
func ForUp(v string, from, to int64, body ...Stmt) *ForStmt {
	return &ForStmt{
		Init: Decl(v, Int, I(from)),
		Cond: Lt(Id(v), I(to)),
		Post: Assign(Id(v), Add(Id(v), I(1))),
		Body: Block(body...),
	}
}

// While returns a while loop.
func While(cond Expr, body ...Stmt) *WhileStmt { return &WhileStmt{Cond: cond, Body: Block(body...)} }

// Ret returns a return statement.
func Ret(e Expr) *ReturnStmt { return &ReturnStmt{X: e} }

// Fn builds a function declaration.
func Fn(name string, ret *Type, params []*ParamDecl, body ...Stmt) *FuncDecl {
	return &FuncDecl{Name: name, Ret: ret, Params: params, Body: Block(body...)}
}

// P builds a parameter declaration.
func P(name string, t *Type) *ParamDecl { return &ParamDecl{Name: name, Type: t} }

// MainProgram wraps statements into `int main(void)` with the standard MPI
// prologue/epilogue left to the caller.
func MainProgram(name string, stmts ...Stmt) *Program {
	return &Program{
		Name:     name,
		Includes: []string{"<mpi.h>", "<stdio.h>"},
		Funcs:    []*FuncDecl{Fn("main", Int, nil, append(stmts, Ret(I(0)))...)},
	}
}

// MPIBoilerplate returns the standard opening statements: declarations of
// rank/size and the Init/Comm_rank/Comm_size calls.
func MPIBoilerplate() []Stmt {
	return []Stmt{
		Decl("rank", Int, nil),
		Decl("size", Int, nil),
		CallS("MPI_Init", Id("NULL"), Id("NULL")),
		CallS("MPI_Comm_rank", Id("MPI_COMM_WORLD"), Addr(Id("rank"))),
		CallS("MPI_Comm_size", Id("MPI_COMM_WORLD"), Addr(Id("size"))),
	}
}

// Finalize returns the MPI_Finalize statement.
func Finalize() Stmt { return CallS("MPI_Finalize") }
