package ast

import (
	"fmt"
	"strconv"
	"strings"
)

// RenderC prints the program as C source. The output is what the line-count
// studies (Fig. 2) measure; it is also handy for inspecting generated
// benchmark codes.
func RenderC(p *Program) string {
	r := &renderer{}
	for _, inc := range p.Includes {
		r.linef("#include %s", inc)
	}
	if len(p.Includes) > 0 {
		r.line("")
	}
	for i, f := range p.Funcs {
		if i > 0 {
			r.line("")
		}
		r.renderFunc(f)
	}
	return r.sb.String()
}

// LineCount returns the number of source lines of the rendered program,
// after simulating C pre-processing of the include directives: each include
// named in headerSizes is expanded to its line count (this reproduces the
// "mpitest.h" size bias of MPI-CorrBench correct codes).
func LineCount(p *Program, headerSizes map[string]int) int {
	body := strings.Count(RenderC(p), "\n")
	for _, inc := range p.Includes {
		name := strings.Trim(inc, "<>\"")
		if n, ok := headerSizes[name]; ok {
			body += n - 1 // the directive line is replaced by the expansion
		}
	}
	return body
}

type renderer struct {
	sb     strings.Builder
	indent int
}

func (r *renderer) line(s string) {
	for i := 0; i < r.indent; i++ {
		r.sb.WriteString("  ")
	}
	r.sb.WriteString(s)
	r.sb.WriteByte('\n')
}

func (r *renderer) linef(format string, args ...any) {
	r.line(fmt.Sprintf(format, args...))
}

func (r *renderer) renderFunc(f *FuncDecl) {
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = declarator(p.Type, p.Name)
	}
	if len(params) == 0 {
		params = []string{"void"}
	}
	r.linef("%s %s(%s) {", f.Ret.CName(), f.Name, strings.Join(params, ", "))
	r.indent++
	for _, s := range f.Body.Stmts {
		r.renderStmt(s)
	}
	r.indent--
	r.line("}")
}

// declarator renders "T name" handling array suffixes.
func declarator(t *Type, name string) string {
	if t.Kind == TArray {
		return fmt.Sprintf("%s %s[%d]", t.Elem.CName(), name, t.Len)
	}
	return t.CName() + " " + name
}

func (r *renderer) renderStmt(s Stmt) {
	switch st := s.(type) {
	case *BlockStmt:
		r.line("{")
		r.indent++
		for _, inner := range st.Stmts {
			r.renderStmt(inner)
		}
		r.indent--
		r.line("}")
	case *DeclStmt:
		if st.Init != nil {
			r.linef("%s = %s;", declarator(st.Type, st.Name), RenderExpr(st.Init))
		} else {
			r.linef("%s;", declarator(st.Type, st.Name))
		}
	case *AssignStmt:
		r.linef("%s = %s;", RenderExpr(st.LHS), RenderExpr(st.RHS))
	case *ExprStmt:
		r.linef("%s;", RenderExpr(st.X))
	case *IfStmt:
		r.linef("if (%s) {", RenderExpr(st.Cond))
		r.indent++
		for _, inner := range st.Then.Stmts {
			r.renderStmt(inner)
		}
		r.indent--
		if st.Else != nil {
			r.line("} else {")
			r.indent++
			for _, inner := range st.Else.Stmts {
				r.renderStmt(inner)
			}
			r.indent--
		}
		r.line("}")
	case *ForStmt:
		init, post := "", ""
		if st.Init != nil {
			init = strings.TrimSuffix(stmtInline(st.Init), ";")
		}
		if st.Post != nil {
			post = strings.TrimSuffix(stmtInline(st.Post), ";")
		}
		r.linef("for (%s; %s; %s) {", init, RenderExpr(st.Cond), post)
		r.indent++
		for _, inner := range st.Body.Stmts {
			r.renderStmt(inner)
		}
		r.indent--
		r.line("}")
	case *WhileStmt:
		r.linef("while (%s) {", RenderExpr(st.Cond))
		r.indent++
		for _, inner := range st.Body.Stmts {
			r.renderStmt(inner)
		}
		r.indent--
		r.line("}")
	case *ReturnStmt:
		if st.X != nil {
			r.linef("return %s;", RenderExpr(st.X))
		} else {
			r.line("return;")
		}
	}
}

func stmtInline(s Stmt) string {
	switch st := s.(type) {
	case *DeclStmt:
		if st.Init != nil {
			return fmt.Sprintf("%s = %s;", declarator(st.Type, st.Name), RenderExpr(st.Init))
		}
		return declarator(st.Type, st.Name) + ";"
	case *AssignStmt:
		return fmt.Sprintf("%s = %s;", RenderExpr(st.LHS), RenderExpr(st.RHS))
	case *ExprStmt:
		return RenderExpr(st.X) + ";"
	}
	return ";"
}

// RenderExpr prints an expression in C syntax.
func RenderExpr(e Expr) string {
	switch x := e.(type) {
	case *IntLit:
		return strconv.FormatInt(x.V, 10)
	case *FloatLit:
		return strconv.FormatFloat(x.V, 'g', -1, 64)
	case *StrLit:
		return strconv.Quote(x.S)
	case *Ident:
		return x.Name
	case *BinExpr:
		return fmt.Sprintf("(%s %s %s)", RenderExpr(x.X), x.Op, RenderExpr(x.Y))
	case *UnExpr:
		return fmt.Sprintf("%s(%s)", x.Op, RenderExpr(x.X))
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", RenderExpr(x.X), RenderExpr(x.I))
	case *CallExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = RenderExpr(a)
		}
		return fmt.Sprintf("%s(%s)", x.Name, strings.Join(args, ", "))
	case *AddrExpr:
		return "&" + RenderExpr(x.X)
	case *DerefExpr:
		return "*" + RenderExpr(x.X)
	}
	return "?"
}
