// Package ast defines the abstract syntax tree of the small MPI-C dialect
// in which the synthetic benchmark programs are written. The dataset
// generators build these trees, the renderer prints them as C source (used
// for the code-size studies of Fig. 2), and internal/irgen lowers them to
// IR — playing the role clang plays in the paper.
package ast

// TKind enumerates the C-level types of the dialect.
type TKind int

// Type kinds.
const (
	TVoid TKind = iota
	TInt
	TDouble
	TChar
	TPtr
	TArray
	TMPIRequest
	TMPIStatus
	TMPIComm
	TMPIDatatype
	TMPIWin
	TMPIOp
)

// Type is a C-level type.
type Type struct {
	Kind TKind
	Elem *Type // for TPtr and TArray
	Len  int   // for TArray
}

// Convenience type singletons.
var (
	Void     = &Type{Kind: TVoid}
	Int      = &Type{Kind: TInt}
	Double   = &Type{Kind: TDouble}
	Char     = &Type{Kind: TChar}
	Request  = &Type{Kind: TMPIRequest}
	Status   = &Type{Kind: TMPIStatus}
	Comm     = &Type{Kind: TMPIComm}
	Datatype = &Type{Kind: TMPIDatatype}
	Win      = &Type{Kind: TMPIWin}
	MPIOp    = &Type{Kind: TMPIOp}
)

// PtrTo returns the pointer type *elem.
func PtrTo(elem *Type) *Type { return &Type{Kind: TPtr, Elem: elem} }

// ArrayOf returns the array type elem[n].
func ArrayOf(n int, elem *Type) *Type { return &Type{Kind: TArray, Len: n, Elem: elem} }

// CName returns the C spelling of the type.
func (t *Type) CName() string {
	switch t.Kind {
	case TVoid:
		return "void"
	case TInt:
		return "int"
	case TDouble:
		return "double"
	case TChar:
		return "char"
	case TPtr:
		return t.Elem.CName() + "*"
	case TArray:
		return t.Elem.CName() // suffix printed at the declarator
	case TMPIRequest:
		return "MPI_Request"
	case TMPIStatus:
		return "MPI_Status"
	case TMPIComm:
		return "MPI_Comm"
	case TMPIDatatype:
		return "MPI_Datatype"
	case TMPIWin:
		return "MPI_Win"
	case TMPIOp:
		return "MPI_Op"
	}
	return "?"
}

// Program is a translation unit.
type Program struct {
	Name     string
	Includes []string
	Funcs    []*FuncDecl
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Ret    *Type
	Params []*ParamDecl
	Body   *BlockStmt
}

// ParamDecl is a function parameter.
type ParamDecl struct {
	Name string
	Type *Type
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// Expr is an expression node.
type Expr interface{ expr() }

// BlockStmt is a `{ ... }` statement list.
type BlockStmt struct{ Stmts []Stmt }

// DeclStmt declares a local variable, optionally initialised.
type DeclStmt struct {
	Name string
	Type *Type
	Init Expr // may be nil
}

// AssignStmt assigns RHS to the lvalue LHS.
type AssignStmt struct {
	LHS Expr // Ident, IndexExpr or DerefExpr
	RHS Expr
}

// ExprStmt evaluates X for its side effects.
type ExprStmt struct{ X Expr }

// IfStmt is a conditional with optional else branch.
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else *BlockStmt // may be nil
}

// ForStmt is a C for loop; Init/Post may be nil.
type ForStmt struct {
	Init Stmt
	Cond Expr
	Post Stmt
	Body *BlockStmt
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
}

// ReturnStmt returns X (possibly nil for void).
type ReturnStmt struct{ X Expr }

func (*BlockStmt) stmt()  {}
func (*DeclStmt) stmt()   {}
func (*AssignStmt) stmt() {}
func (*ExprStmt) stmt()   {}
func (*IfStmt) stmt()     {}
func (*ForStmt) stmt()    {}
func (*WhileStmt) stmt()  {}
func (*ReturnStmt) stmt() {}

// IntLit is an integer literal.
type IntLit struct{ V int64 }

// FloatLit is a floating literal.
type FloatLit struct{ V float64 }

// StrLit is a string literal (printf formats).
type StrLit struct{ S string }

// Ident names a variable or an MPI constant (MPI_COMM_WORLD, MPI_INT, ...).
type Ident struct{ Name string }

// BinExpr is a binary operation; Op is the C spelling (+ - * / % == != < <=
// > >= && || & | ^ << >>).
type BinExpr struct {
	Op   string
	X, Y Expr
}

// UnExpr is a unary operation; Op is "-" or "!".
type UnExpr struct {
	Op string
	X  Expr
}

// IndexExpr is X[I].
type IndexExpr struct {
	X Expr
	I Expr
}

// CallExpr calls a named function.
type CallExpr struct {
	Name string
	Args []Expr
}

// AddrExpr is &X.
type AddrExpr struct{ X Expr }

// DerefExpr is *X.
type DerefExpr struct{ X Expr }

func (*IntLit) expr()    {}
func (*FloatLit) expr()  {}
func (*StrLit) expr()    {}
func (*Ident) expr()     {}
func (*BinExpr) expr()   {}
func (*UnExpr) expr()    {}
func (*IndexExpr) expr() {}
func (*CallExpr) expr()  {}
func (*AddrExpr) expr()  {}
func (*DerefExpr) expr() {}

// Walk visits every statement in the program, depth-first.
func Walk(p *Program, visit func(Stmt)) {
	var walkBlock func(b *BlockStmt)
	walkStmt := func(s Stmt) {
		visit(s)
		switch st := s.(type) {
		case *BlockStmt:
			walkBlock(st)
		case *IfStmt:
			walkBlock(st.Then)
			if st.Else != nil {
				walkBlock(st.Else)
			}
		case *ForStmt:
			walkBlock(st.Body)
		case *WhileStmt:
			walkBlock(st.Body)
		}
	}
	walkBlock = func(b *BlockStmt) {
		for _, s := range b.Stmts {
			walkStmt(s)
		}
	}
	for _, f := range p.Funcs {
		walkBlock(f.Body)
	}
}

// Calls returns every CallExpr in the program (in syntactic order),
// including calls nested in expressions of statements.
func Calls(p *Program) []*CallExpr {
	var out []*CallExpr
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case *CallExpr:
			out = append(out, x)
			for _, a := range x.Args {
				walkExpr(a)
			}
		case *BinExpr:
			walkExpr(x.X)
			walkExpr(x.Y)
		case *UnExpr:
			walkExpr(x.X)
		case *IndexExpr:
			walkExpr(x.X)
			walkExpr(x.I)
		case *AddrExpr:
			walkExpr(x.X)
		case *DerefExpr:
			walkExpr(x.X)
		}
	}
	Walk(p, func(s Stmt) {
		switch st := s.(type) {
		case *DeclStmt:
			if st.Init != nil {
				walkExpr(st.Init)
			}
		case *AssignStmt:
			walkExpr(st.RHS)
			walkExpr(st.LHS)
		case *ExprStmt:
			walkExpr(st.X)
		case *IfStmt:
			walkExpr(st.Cond)
		case *ForStmt:
			walkExpr(st.Cond)
		case *WhileStmt:
			walkExpr(st.Cond)
		case *ReturnStmt:
			if st.X != nil {
				walkExpr(st.X)
			}
		}
	})
	return out
}
