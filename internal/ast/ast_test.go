package ast

import (
	"strings"
	"testing"
)

func sample() *Program {
	return MainProgram("sample",
		append(MPIBoilerplate(),
			DeclArr("buf", 4, Int),
			ForUp("i", 0, 4, Assign(Idx(Id("buf"), Id("i")), Mul(Id("i"), I(2)))),
			IfElse(Eq(Id("rank"), I(0)),
				[]Stmt{CallS("MPI_Send", Id("buf"), I(4), Id("MPI_INT"), I(1), I(3), Id("MPI_COMM_WORLD"))},
				[]Stmt{CallS("MPI_Recv", Id("buf"), I(4), Id("MPI_INT"), I(0), I(3), Id("MPI_COMM_WORLD"), Id("MPI_STATUS_IGNORE"))}),
			While(Lt(Id("rank"), I(0)), Assign(Id("rank"), Add(Id("rank"), I(1)))),
			Finalize(),
		)...)
}

func TestRenderCSyntax(t *testing.T) {
	out := RenderC(sample())
	for _, want := range []string{
		"#include <mpi.h>",
		"int main(void) {",
		"int buf[4];",
		"for (int i = 0; (i < 4); i = (i + 1)) {",
		"while ((rank < 0)) {",
		"MPI_Finalize();",
		"return 0;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered C missing %q:\n%s", want, out)
		}
	}
}

func TestWalkVisitsNestedStatements(t *testing.T) {
	p := sample()
	kinds := map[string]int{}
	Walk(p, func(s Stmt) {
		switch s.(type) {
		case *ForStmt:
			kinds["for"]++
		case *IfStmt:
			kinds["if"]++
		case *WhileStmt:
			kinds["while"]++
		case *AssignStmt:
			kinds["assign"]++
		}
	})
	if kinds["for"] != 1 || kinds["if"] != 1 || kinds["while"] != 1 {
		t.Errorf("walk missed statements: %v", kinds)
	}
	if kinds["assign"] < 2 {
		t.Errorf("walk missed nested assignments: %v", kinds)
	}
}

func TestCallsCollectsAll(t *testing.T) {
	p := sample()
	calls := Calls(p)
	names := map[string]int{}
	for _, c := range calls {
		names[c.Name]++
	}
	for _, want := range []string{"MPI_Init", "MPI_Comm_rank", "MPI_Comm_size",
		"MPI_Send", "MPI_Recv", "MPI_Finalize"} {
		if names[want] == 0 {
			t.Errorf("Calls missed %s (got %v)", want, names)
		}
	}
}

func TestLineCountExpandsHeaders(t *testing.T) {
	p := sample()
	base := LineCount(p, map[string]int{"mpi.h": 1, "stdio.h": 1})
	inflated := LineCount(p, map[string]int{"mpi.h": 50, "stdio.h": 1})
	if inflated != base+49 {
		t.Errorf("header expansion wrong: %d vs %d", inflated, base)
	}
}

func TestTypeCNames(t *testing.T) {
	cases := map[*Type]string{
		Int:                "int",
		Double:             "double",
		PtrTo(Int):         "int*",
		Request:            "MPI_Request",
		Status:             "MPI_Status",
		Comm:               "MPI_Comm",
		Win:                "MPI_Win",
		PtrTo(PtrTo(Char)): "char**",
	}
	for ty, want := range cases {
		if got := ty.CName(); got != want {
			t.Errorf("CName = %q, want %q", got, want)
		}
	}
}

func TestRenderExprForms(t *testing.T) {
	cases := map[Expr]string{
		Add(I(1), I(2)):              "(1 + 2)",
		Idx(Id("a"), I(3)):           "a[3]",
		Addr(Id("x")):                "&x",
		&DerefExpr{X: Id("p")}:       "*p",
		&UnExpr{Op: "!", X: Id("b")}: "!(b)",
		S("hi"):                      `"hi"`,
		F(1.5):                       "1.5",
	}
	for e, want := range cases {
		if got := RenderExpr(e); got != want {
			t.Errorf("RenderExpr = %q, want %q", got, want)
		}
	}
}
