package dtree

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func encodeState(t *testing.T, st treeState) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGobRoundTrip(t *testing.T) {
	x := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := []int{0, 1, 1, 0}
	tr := Train(x, y, Config{})
	raw, err := tr.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := back.GobDecode(raw); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if got, want := back.Predict(v), tr.Predict(v); got != want {
			t.Fatalf("sample %d: decoded tree predicts %d, original %d", i, got, want)
		}
	}
}

func TestGobDecodeRejectsEmptyTree(t *testing.T) {
	var tr Tree
	if err := tr.GobDecode(encodeState(t, treeState{Classes: 2})); err == nil {
		t.Fatal("empty node list accepted")
	}
}

func TestGobDecodeRejectsSharedChild(t *testing.T) {
	// Node 0 points both children at node 1: indices strictly increase (so
	// the preorder check alone passes) but the node is referenced twice —
	// a DAG, which must be rejected rather than expanded exponentially.
	st := treeState{Classes: 2, Nodes: []flatNode{
		{Feature: 0, Thresh: 0.5, Left: 1, Right: 1},
		{Leaf: true, Class: 0, Left: -1, Right: -1},
	}}
	var tr Tree
	if err := tr.GobDecode(encodeState(t, st)); err == nil {
		t.Fatal("shared child accepted")
	}
}

func TestGobDecodeRejectsCycle(t *testing.T) {
	st := treeState{Classes: 2, Nodes: []flatNode{
		{Feature: 0, Thresh: 0.5, Left: 1, Right: 2},
		{Feature: 1, Thresh: 0.5, Left: 0, Right: 2},
		{Leaf: true, Class: 0, Left: -1, Right: -1},
	}}
	var tr Tree
	if err := tr.GobDecode(encodeState(t, st)); err == nil {
		t.Fatal("cyclic encoding accepted")
	}
}

func TestGobDecodeRejectsBadClassAndFeature(t *testing.T) {
	leafOOR := treeState{Classes: 2, Nodes: []flatNode{
		{Leaf: true, Class: 7, Left: -1, Right: -1},
	}}
	var tr Tree
	if err := tr.GobDecode(encodeState(t, leafOOR)); err == nil {
		t.Fatal("out-of-range leaf class accepted")
	}
	negFeat := treeState{Classes: 2, Nodes: []flatNode{
		{Feature: -3, Thresh: 0.5, Left: 1, Right: 2},
		{Leaf: true, Class: 0, Left: -1, Right: -1},
		{Leaf: true, Class: 1, Left: -1, Right: -1},
	}}
	if err := tr.GobDecode(encodeState(t, negFeat)); err == nil {
		t.Fatal("negative feature index accepted")
	}
}

func TestGobEncodeRejectsUntrained(t *testing.T) {
	var tr Tree
	if _, err := tr.GobEncode(); err == nil {
		t.Fatal("untrained tree encoded")
	}
}

func TestMaxFeature(t *testing.T) {
	x := [][]float64{{0, 0, 0}, {0, 0, 1}}
	tr := Train(x, []int{0, 1}, Config{})
	if got := tr.MaxFeature(); got != 2 {
		t.Fatalf("MaxFeature = %d, want 2", got)
	}
}
