// Package dtree implements the CART decision-tree classifier the paper
// uses on IR2Vec features (§IV-A): Gini impurity, exhaustive best-split
// search, grown until purity — the defaults of scikit-learn 1.0's
// DecisionTreeClassifier, which the paper uses unmodified.
package dtree

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"sort"
)

// Tree is a trained decision tree.
type Tree struct {
	root    *node
	Classes int
	// Features restricts the tree to a feature subset (GA selection); nil
	// means all features.
	Features []int
}

type node struct {
	leaf    bool
	class   int
	feature int
	thresh  float64
	left    *node
	right   *node
}

// flatNode is the exported gob mirror of one tree node; children are
// indices into the flattened node array (-1 for none).
type flatNode struct {
	Leaf        bool
	Class       int
	Feature     int
	Thresh      float64
	Left, Right int
}

// treeState is the exported gob mirror of Tree, with the recursive node
// structure flattened in preorder (root at index 0).
type treeState struct {
	Nodes    []flatNode
	Classes  int
	Features []int
}

func flatten(n *node, out *[]flatNode) int {
	idx := len(*out)
	*out = append(*out, flatNode{Leaf: n.leaf, Class: n.class,
		Feature: n.feature, Thresh: n.thresh, Left: -1, Right: -1})
	if !n.leaf {
		// The recursive calls append to *out and may reallocate its backing
		// array, so index only after each call returns.
		l := flatten(n.left, out)
		(*out)[idx].Left = l
		r := flatten(n.right, out)
		(*out)[idx].Right = r
	}
	return idx
}

func unflatten(nodes []flatNode, idx int, visited []bool) (*node, error) {
	if idx < 0 || idx >= len(nodes) {
		return nil, errors.New("dtree: corrupt tree encoding: node index out of range")
	}
	// A preorder flattening of a tree visits every index exactly once and
	// puts children strictly after their parent; revisits (DAG sharing) or
	// backward edges (cycles) would blow up the reconstruction.
	if visited[idx] {
		return nil, errors.New("dtree: corrupt tree encoding: node referenced twice")
	}
	visited[idx] = true
	fn := nodes[idx]
	if !fn.Leaf && (fn.Left <= idx || fn.Right <= idx) {
		return nil, errors.New("dtree: corrupt tree encoding: non-preorder child index")
	}
	n := &node{leaf: fn.Leaf, class: fn.Class, feature: fn.Feature, thresh: fn.Thresh}
	if fn.Leaf {
		return n, nil
	}
	var err error
	if n.left, err = unflatten(nodes, fn.Left, visited); err != nil {
		return nil, err
	}
	if n.right, err = unflatten(nodes, fn.Right, visited); err != nil {
		return nil, err
	}
	return n, nil
}

// GobEncode implements gob.GobEncoder.
func (t *Tree) GobEncode() ([]byte, error) {
	if t.root == nil {
		return nil, errors.New("dtree: cannot encode an untrained tree")
	}
	st := treeState{Classes: t.Classes, Features: t.Features}
	flatten(t.root, &st.Nodes)
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(st)
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder. Corrupt encodings fail here, at
// load time, rather than panicking later inside Predict on a worker
// goroutine: the node graph must be a preorder tree, every node's class
// must fall in [0, Classes), and feature indices must be non-negative
// (their upper bound is the caller's feature dimension — see MaxFeature).
func (t *Tree) GobDecode(b []byte) error {
	var st treeState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return err
	}
	if len(st.Nodes) == 0 || st.Classes <= 0 {
		return errors.New("dtree: corrupt tree encoding: empty tree")
	}
	for _, fn := range st.Nodes {
		if fn.Leaf && (fn.Class < 0 || fn.Class >= st.Classes) {
			return errors.New("dtree: corrupt tree encoding: leaf class out of range")
		}
		if !fn.Leaf && fn.Feature < 0 {
			return errors.New("dtree: corrupt tree encoding: negative feature index")
		}
	}
	root, err := unflatten(st.Nodes, 0, make([]bool, len(st.Nodes)))
	if err != nil {
		return err
	}
	t.Classes, t.Features, t.root = st.Classes, st.Features, root
	return nil
}

// MaxFeature returns the largest feature index the tree consults, or -1
// for a leaf-only tree. Artifact loaders use it to check a deserialized
// tree against the feature dimension it will be applied to.
func (t *Tree) MaxFeature() int {
	max := -1
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil || n.leaf {
			return
		}
		if n.feature > max {
			max = n.feature
		}
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	return max
}

// Config controls tree growth; zero values reproduce sklearn defaults.
type Config struct {
	MaxDepth        int // 0 = unlimited
	MinSamplesSplit int // 0 = 2
	Features        []int
}

// Train fits a tree on features X and labels y (0-based classes).
func Train(x [][]float64, y []int, cfg Config) *Tree {
	if cfg.MinSamplesSplit < 2 {
		cfg.MinSamplesSplit = 2
	}
	classes := 0
	for _, l := range y {
		if l+1 > classes {
			classes = l + 1
		}
	}
	feats := cfg.Features
	if feats == nil {
		feats = make([]int, len(x[0]))
		for i := range feats {
			feats[i] = i
		}
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{Classes: classes, Features: cfg.Features}
	t.root = grow(x, y, idx, feats, classes, cfg, 0)
	return t
}

func majority(y []int, idx []int, classes int) int {
	counts := make([]int, classes)
	for _, i := range idx {
		counts[y[i]]++
	}
	best, bi := -1, 0
	for c, n := range counts {
		if n > best {
			best, bi = n, c
		}
	}
	return bi
}

func gini(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	s := 1.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		s -= p * p
	}
	return s
}

func pure(y []int, idx []int) bool {
	for _, i := range idx[1:] {
		if y[i] != y[idx[0]] {
			return false
		}
	}
	return true
}

func grow(x [][]float64, y []int, idx, feats []int, classes int, cfg Config, depth int) *node {
	if len(idx) < cfg.MinSamplesSplit || pure(y, idx) ||
		(cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) {
		return &node{leaf: true, class: majority(y, idx, classes)}
	}
	bestGain := -1.0
	bestFeat := -1
	bestThresh := 0.0
	total := make([]int, classes)
	for _, i := range idx {
		total[y[i]]++
	}
	parentGini := gini(total, len(idx))

	order := make([]int, len(idx))
	left := make([]int, classes)
	for _, f := range feats {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return x[order[a]][f] < x[order[b]][f] })
		for c := range left {
			left[c] = 0
		}
		for k := 0; k+1 < len(order); k++ {
			left[y[order[k]]]++
			v, vn := x[order[k]][f], x[order[k+1]][f]
			if v == vn {
				continue
			}
			nl := k + 1
			nr := len(order) - nl
			right := make([]int, classes)
			for c := range right {
				right[c] = total[c] - left[c]
			}
			g := parentGini -
				(float64(nl)*gini(left, nl)+float64(nr)*gini(right, nr))/float64(len(order))
			if g > bestGain {
				bestGain = g
				bestFeat = f
				bestThresh = (v + vn) / 2
			}
		}
	}
	// Keep splitting as long as any valid threshold exists (sklearn
	// semantics): zero-gain splits still partition the node, which is what
	// lets CART solve XOR-shaped problems.
	if bestFeat < 0 {
		return &node{leaf: true, class: majority(y, idx, classes)}
	}
	var li, ri []int
	for _, i := range idx {
		if x[i][bestFeat] <= bestThresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return &node{leaf: true, class: majority(y, idx, classes)}
	}
	return &node{
		feature: bestFeat,
		thresh:  bestThresh,
		left:    grow(x, y, li, feats, classes, cfg, depth+1),
		right:   grow(x, y, ri, feats, classes, cfg, depth+1),
	}
}

// Predict classifies one feature vector.
func (t *Tree) Predict(v []float64) int {
	n := t.root
	for !n.leaf {
		if v[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.class
}

// Accuracy scores the tree on a labelled set.
func (t *Tree) Accuracy(x [][]float64, y []int) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	correct := 0
	for i, v := range x {
		if t.Predict(v) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

// Depth returns the maximum depth of the tree.
func (t *Tree) Depth() int { return depthOf(t.root) }

func depthOf(n *node) int {
	if n.leaf {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// NumLeaves counts leaf nodes.
func (t *Tree) NumLeaves() int { return leavesOf(t.root) }

func leavesOf(n *node) int {
	if n.leaf {
		return 1
	}
	return leavesOf(n.left) + leavesOf(n.right)
}
