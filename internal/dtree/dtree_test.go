package dtree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearlySeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		a, b := rng.Float64(), rng.Float64()
		x = append(x, []float64{a, b, rng.Float64()})
		if a > 0.5 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	tree := Train(x, y, Config{})
	if acc := tree.Accuracy(x, y); acc < 0.999 {
		t.Errorf("training accuracy %f on separable data", acc)
	}
	if tree.Predict([]float64{0.9, 0.1, 0.5}) != 1 {
		t.Error("misclassified obvious point")
	}
	if tree.Predict([]float64{0.1, 0.9, 0.5}) != 0 {
		t.Error("misclassified obvious point")
	}
}

func TestXorNeedsDepthTwo(t *testing.T) {
	x := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := []int{0, 1, 1, 0}
	tree := Train(x, y, Config{})
	if acc := tree.Accuracy(x, y); acc != 1 {
		t.Errorf("XOR accuracy = %f", acc)
	}
	if tree.Depth() < 2 {
		t.Errorf("XOR depth = %d, want >= 2", tree.Depth())
	}
}

func TestMaxDepthLimits(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []int
	for i := 0; i < 300; i++ {
		v := []float64{rng.Float64(), rng.Float64()}
		x = append(x, v)
		y = append(y, rng.Intn(3))
	}
	tree := Train(x, y, Config{MaxDepth: 3})
	if tree.Depth() > 3 {
		t.Errorf("depth %d exceeds limit", tree.Depth())
	}
}

func TestFeatureSubset(t *testing.T) {
	// Only feature 2 is informative; restricting to features {0,1} must
	// lose accuracy, restricting to {2} must keep it.
	rng := rand.New(rand.NewSource(3))
	var x [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		c := rng.Intn(2)
		x = append(x, []float64{rng.Float64(), rng.Float64(), float64(c)})
		y = append(y, c)
	}
	good := Train(x, y, Config{Features: []int{2}})
	if acc := good.Accuracy(x, y); acc != 1 {
		t.Errorf("informative-feature accuracy = %f", acc)
	}
	bad := Train(x, y, Config{Features: []int{0, 1}, MaxDepth: 2})
	if acc := bad.Accuracy(x, y); acc > 0.85 {
		t.Errorf("uninformative features reached %f", acc)
	}
}

func TestPureLeafStopsGrowth(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []int{1, 1, 1}
	tree := Train(x, y, Config{})
	if tree.Depth() != 0 || tree.NumLeaves() != 1 {
		t.Errorf("pure data grew depth=%d leaves=%d", tree.Depth(), tree.NumLeaves())
	}
}

// Property: the tree always predicts a label it has seen.
func TestQuickPredictInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var x [][]float64
	var y []int
	for i := 0; i < 100; i++ {
		x = append(x, []float64{rng.NormFloat64(), rng.NormFloat64()})
		y = append(y, rng.Intn(4))
	}
	tree := Train(x, y, Config{})
	f := func(a, b float64) bool {
		p := tree.Predict([]float64{a, b})
		return p >= 0 && p < 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: training is invariant to sample order.
func TestQuickOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []int
	for i := 0; i < 80; i++ {
		v := rng.Float64()
		x = append(x, []float64{v, rng.Float64()})
		if v > 0.4 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	t1 := Train(x, y, Config{})
	// Reverse order.
	rx := make([][]float64, len(x))
	ry := make([]int, len(y))
	for i := range x {
		rx[len(x)-1-i] = x[i]
		ry[len(y)-1-i] = y[i]
	}
	t2 := Train(rx, ry, Config{})
	for i := 0; i < 50; i++ {
		v := []float64{rng.Float64(), rng.Float64()}
		if t1.Predict(v) != t2.Predict(v) {
			t.Fatal("prediction depends on sample order")
		}
	}
}
