// Package resilience holds the serving stack's degradation primitives:
// a consecutive-failure circuit breaker with half-open probing, and a
// subsystem health aggregator behind GET /v1/readyz. Both are plain
// concurrency-safe values with no dependencies, so every layer (serve's
// per-tool breakers, store's tier I/O breakers) can use them without
// import cycles.
package resilience

import (
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is a breaker's position in the trip/probe cycle.
type BreakerState int32

const (
	// Closed: healthy; every call is allowed.
	Closed BreakerState = iota
	// Open: tripped; calls are rejected until the cooldown elapses.
	Open
	// HalfOpen: cooled down; exactly one probe call is allowed through,
	// and its outcome decides between Closed and another Open period.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig sizes a breaker; zero values take the documented
// defaults.
type BreakerConfig struct {
	// Failures is the consecutive-failure count that trips the breaker
	// (default 5).
	Failures int
	// Cooldown is how long a tripped breaker stays open before allowing
	// a half-open probe (default 30s).
	Cooldown time.Duration
	// OnChange, when set, is invoked (outside the breaker lock) on every
	// state transition.
	OnChange func(from, to BreakerState)
	// Clock overrides time.Now in tests.
	Clock func() time.Time
}

// BreakerStats is a point-in-time snapshot of one breaker, shaped for
// the /v1/stats resilience section.
type BreakerStats struct {
	State       string `json:"state"`
	Consecutive int    `json:"consecutive_failures"`
	Failures    int64  `json:"failures"`
	Trips       int64  `json:"trips"`
	Rejected    int64  `json:"rejected"`
}

// Breaker is a consecutive-failure circuit breaker. The zero value is
// not usable; construct with NewBreaker. Callers pair Allow with exactly
// one of Record or Skip:
//
//	if !b.Allow() { degrade }
//	v, err := op()
//	b.Record(err == nil)   // or b.Skip() when the outcome is inconclusive
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       BreakerState
	consecutive int
	openedAt    time.Time
	probing     bool // a half-open probe is in flight

	failures atomic.Int64
	trips    atomic.Int64
	rejected atomic.Int64
}

// NewBreaker builds a breaker in the Closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Failures <= 0 {
		cfg.Failures = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 30 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Breaker{cfg: cfg}
}

// transitionLocked moves to state `to`, returning the change hook to run
// after the lock is released (nil when the state did not change).
func (b *Breaker) transitionLocked(to BreakerState) func() {
	from := b.state
	if from == to {
		return nil
	}
	b.state = to
	if fn := b.cfg.OnChange; fn != nil {
		return func() { fn(from, to) }
	}
	return nil
}

// Allow reports whether a call may proceed. Open breakers reject until
// the cooldown elapses, then admit exactly one half-open probe at a
// time; the caller must finish the probe with Record or Skip.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	var notify func()
	allowed := false
	switch b.state {
	case Closed:
		allowed = true
	case Open:
		if b.cfg.Clock().Sub(b.openedAt) >= b.cfg.Cooldown {
			notify = b.transitionLocked(HalfOpen)
			b.probing = true
			allowed = true
		}
	case HalfOpen:
		if !b.probing {
			b.probing = true
			allowed = true
		}
	}
	if !allowed {
		b.rejected.Add(1)
	}
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
	return allowed
}

// Record finishes an allowed call: success resets the failure streak
// (closing a half-open breaker), failure extends it and trips or
// re-opens the breaker.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	var notify func()
	if ok {
		b.consecutive = 0
		if b.state == HalfOpen {
			b.probing = false
			notify = b.transitionLocked(Closed)
		}
	} else {
		b.failures.Add(1)
		b.consecutive++
		switch b.state {
		case HalfOpen:
			// The probe failed: another full cooldown.
			b.probing = false
			b.openedAt = b.cfg.Clock()
			b.trips.Add(1)
			notify = b.transitionLocked(Open)
		case Closed:
			if b.consecutive >= b.cfg.Failures {
				b.openedAt = b.cfg.Clock()
				b.trips.Add(1)
				notify = b.transitionLocked(Open)
			}
		}
	}
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// Skip finishes an allowed call whose outcome says nothing about health
// (a canceled request, for instance): a half-open probe slot is released
// for the next caller without changing state.
func (b *Breaker) Skip() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// State reports the breaker's current position. An Open breaker past its
// cooldown still reports Open until some Allow promotes it — State is a
// pure read.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Snapshot is a typed point-in-time view of a breaker for pollers: the
// state as a BreakerState (not the wire string of BreakerStats), the
// failure streak, and when an open breaker opened. Pollers that rebuild
// derived state from many breakers — the router's hash-ring membership,
// for one — read Snapshot on their own cadence instead of mutating
// shared state from OnChange, which runs on whatever goroutine drove
// the transition.
type Snapshot struct {
	State       BreakerState
	Consecutive int
	OpenedAt    time.Time // zero unless State is Open
	Failures    int64
	Trips       int64
	Rejected    int64
}

// Snapshot captures the breaker's current position and counters under
// one lock acquisition, so state and streak can never straddle a
// transition.
func (b *Breaker) Snapshot() Snapshot {
	b.mu.Lock()
	s := Snapshot{State: b.state, Consecutive: b.consecutive}
	if b.state == Open {
		s.OpenedAt = b.openedAt
	}
	b.mu.Unlock()
	s.Failures = b.failures.Load()
	s.Trips = b.trips.Load()
	s.Rejected = b.rejected.Load()
	return s
}

// Stats snapshots the breaker counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	st, consec := b.state, b.consecutive
	b.mu.Unlock()
	return BreakerStats{
		State:       st.String(),
		Consecutive: consec,
		Failures:    b.failures.Load(),
		Trips:       b.trips.Load(),
		Rejected:    b.rejected.Load(),
	}
}
