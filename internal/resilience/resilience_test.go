package resilience

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable clock for cooldown tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	var transitions []string
	b := NewBreaker(BreakerConfig{
		Failures: 3, Cooldown: time.Minute, Clock: clk.Now,
		OnChange: func(from, to BreakerState) {
			transitions = append(transitions, from.String()+"->"+to.String())
		},
	})

	// Two failures, one success: the streak resets, no trip.
	for _, ok := range []bool{false, false, true} {
		if !b.Allow() {
			t.Fatal("closed breaker rejected a call")
		}
		b.Record(ok)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v after reset streak, want Closed", b.State())
	}

	// Three consecutive failures trip it.
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Record(false)
	}
	if b.State() != Open {
		t.Fatalf("state = %v after 3 consecutive failures, want Open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call before cooldown")
	}

	st := b.Stats()
	if st.State != "open" || st.Trips != 1 || st.Failures != 5 || st.Rejected != 1 {
		t.Fatalf("stats = %+v, want open/1 trip/5 failures/1 rejected", st)
	}
	if len(transitions) != 1 || transitions[0] != "closed->open" {
		t.Fatalf("transitions = %v, want [closed->open]", transitions)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Failures: 1, Cooldown: time.Minute, Clock: clk.Now})
	b.Allow()
	b.Record(false) // trip

	clk.Advance(59 * time.Second)
	if b.Allow() {
		t.Fatal("breaker allowed a probe before the cooldown elapsed")
	}
	clk.Advance(2 * time.Second)

	// Cooldown elapsed: exactly one probe at a time.
	if !b.Allow() {
		t.Fatal("breaker rejected the half-open probe")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v during probe, want HalfOpen", b.State())
	}
	if b.Allow() {
		t.Fatal("breaker allowed a second concurrent probe")
	}

	// Failed probe re-opens for another full cooldown.
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state = %v after failed probe, want Open", b.State())
	}
	if b.Allow() {
		t.Fatal("breaker allowed a call right after a failed probe")
	}

	// Successful probe closes.
	clk.Advance(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("breaker rejected the second probe")
	}
	b.Record(true)
	if b.State() != Closed {
		t.Fatalf("state = %v after successful probe, want Closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected a call")
	}
	b.Record(true)
}

func TestBreakerSkipReleasesProbeSlot(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Failures: 1, Cooldown: time.Second, Clock: clk.Now})
	b.Allow()
	b.Record(false)
	clk.Advance(2 * time.Second)

	if !b.Allow() {
		t.Fatal("breaker rejected the probe")
	}
	// The probe was canceled — inconclusive. Skip must free the slot
	// without closing or re-opening.
	b.Skip()
	if b.State() != HalfOpen {
		t.Fatalf("state = %v after Skip, want HalfOpen", b.State())
	}
	if !b.Allow() {
		t.Fatal("breaker rejected the next probe after Skip")
	}
	b.Record(true)
	if b.State() != Closed {
		t.Fatalf("state = %v, want Closed", b.State())
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	for i := 0; i < 4; i++ {
		b.Allow()
		b.Record(false)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v after 4 failures, want Closed (default trips at 5)", b.State())
	}
	b.Allow()
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state = %v after 5 failures, want Open", b.State())
	}
}

func TestHealthAggregation(t *testing.T) {
	h := NewHealth()
	h.Set("store", StatusOK, "")
	h.Set("engine", StatusOK, "")
	rep := h.Report(false)
	if rep.Status != StatusOK {
		t.Fatalf("status = %v, want ok", rep.Status)
	}
	// Sorted by name for a stable wire shape.
	if rep.Subsystems[0].Name != "engine" || rep.Subsystems[1].Name != "store" {
		t.Fatalf("subsystems = %+v, want sorted by name", rep.Subsystems)
	}

	h2 := NewHealth()
	h2.Set("tools", StatusDegraded, "breaker open: must")
	h2.Set("engine", StatusOK, "")
	if rep := h2.Report(false); rep.Status != StatusDegraded {
		t.Fatalf("status = %v, want degraded (worst subsystem wins)", rep.Status)
	}
	// Draining overrides everything, even all-ok subsystems.
	if rep := h2.Report(true); rep.Status != StatusDraining {
		t.Fatalf("status = %v, want draining", rep.Status)
	}
	if rep := NewHealth().Report(true); rep.Status != StatusDraining {
		t.Fatalf("empty draining report = %v, want draining", rep.Status)
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for st, want := range map[BreakerState]string{
		Closed: "closed", Open: "open", HalfOpen: "half-open",
	} {
		if got := st.String(); got != want {
			t.Fatalf("BreakerState(%d).String() = %q, want %q", st, got, want)
		}
	}
}

// TestBreakerSnapshotConcurrent pins the contract the router's ring
// builder relies on: Snapshot can be polled from any goroutine while
// other goroutines drive Allow/Record/Skip transitions, with no data
// race (the -race run is the assertion) and no torn state — a snapshot
// claiming Open carries a non-zero OpenedAt, and any other state a zero
// one.
func TestBreakerSnapshotConcurrent(t *testing.T) {
	b := NewBreaker(BreakerConfig{Failures: 2, Cooldown: time.Microsecond})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			ok := seed%2 == 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				if b.Allow() {
					if seed == 3 {
						b.Skip()
					} else {
						b.Record(ok)
					}
				}
				ok = !ok
			}
		}(i)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		s := b.Snapshot()
		if s.State == Open && s.OpenedAt.IsZero() {
			t.Error("open snapshot with zero OpenedAt")
			break
		}
		if s.State != Open && !s.OpenedAt.IsZero() {
			t.Errorf("%v snapshot with OpenedAt set", s.State)
			break
		}
		if s.Failures < 0 || s.Trips < 0 || s.Consecutive < 0 {
			t.Errorf("negative counters in snapshot: %+v", s)
			break
		}
	}
	close(stop)
	wg.Wait()
	// The snapshot agrees with the string-shaped Stats view.
	if got, want := b.Snapshot().State.String(), b.Stats().State; got != want {
		t.Fatalf("Snapshot().State = %s, Stats().State = %s", got, want)
	}
}
