// Subsystem health aggregation for GET /v1/readyz: each serving layer
// reports ok/degraded, the process-level draining flag overrides both,
// and the report carries per-subsystem detail so an operator (or the
// router's health-based ejection) can see *what* degraded, not just
// that something did.
package resilience

import "sort"

// Status is one subsystem's (or the whole process's) health.
type Status string

const (
	// StatusOK: fully serving.
	StatusOK Status = "ok"
	// StatusDegraded: serving with reduced capability (a tripped tool
	// breaker, a read-only durable tier) — still routable.
	StatusDegraded Status = "degraded"
	// StatusDraining: shutting down; load balancers should eject.
	StatusDraining Status = "draining"
)

// rank orders statuses by severity for aggregation.
func (s Status) rank() int {
	switch s {
	case StatusDraining:
		return 2
	case StatusDegraded:
		return 1
	default:
		return 0
	}
}

// Subsystem is one layer's health line in a readyz report.
type Subsystem struct {
	Name   string `json:"name"`
	Status Status `json:"status"`
	Detail string `json:"detail,omitempty"`
}

// Report is the GET /v1/readyz body: the worst subsystem status (or
// draining, which overrides everything), plus the per-subsystem detail.
type Report struct {
	Status     Status      `json:"status"`
	Subsystems []Subsystem `json:"subsystems"`
}

// Health accumulates subsystem statuses into a Report. It is a plain
// builder — the serving engine constructs one per readyz call from live
// counters rather than maintaining mutable shared state.
type Health struct {
	subs []Subsystem
}

// NewHealth returns an empty builder.
func NewHealth() *Health { return &Health{} }

// Set records one subsystem's status.
func (h *Health) Set(name string, st Status, detail string) {
	h.subs = append(h.subs, Subsystem{Name: name, Status: st, Detail: detail})
}

// Report aggregates: draining overrides, otherwise the worst subsystem
// wins. Subsystems are sorted by name for a stable wire shape.
func (h *Health) Report(draining bool) Report {
	rep := Report{Status: StatusOK, Subsystems: append([]Subsystem(nil), h.subs...)}
	sort.Slice(rep.Subsystems, func(i, j int) bool {
		return rep.Subsystems[i].Name < rep.Subsystems[j].Name
	})
	for _, s := range rep.Subsystems {
		if s.Status.rank() > rep.Status.rank() {
			rep.Status = s.Status
		}
	}
	if draining {
		rep.Status = StatusDraining
	}
	return rep
}
