package ir

import "fmt"

// Opcode identifies an instruction kind.
type Opcode int

// Instruction opcodes.
const (
	OpInvalid Opcode = iota

	// Memory
	OpAlloca // alloca T [, count]
	OpLoad   // load T, T* p
	OpStore  // store T v, T* p
	OpGEP    // getelementptr T, T* p, idx...

	// Integer arithmetic
	OpAdd
	OpSub
	OpMul
	OpSDiv
	OpSRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpAShr

	// Float arithmetic
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv

	// Comparisons
	OpICmp
	OpFCmp

	// Conversions
	OpTrunc
	OpSExt
	OpZExt
	OpSIToFP
	OpFPToSI
	OpBitcast
	OpPtrToInt
	OpIntToPtr

	// Other
	OpPhi
	OpSelect
	OpCall

	// Terminators
	OpBr
	OpCondBr
	OpRet
	OpUnreachable
)

var opcodeNames = [...]string{
	OpInvalid:     "invalid",
	OpAlloca:      "alloca",
	OpLoad:        "load",
	OpStore:       "store",
	OpGEP:         "getelementptr",
	OpAdd:         "add",
	OpSub:         "sub",
	OpMul:         "mul",
	OpSDiv:        "sdiv",
	OpSRem:        "srem",
	OpAnd:         "and",
	OpOr:          "or",
	OpXor:         "xor",
	OpShl:         "shl",
	OpAShr:        "ashr",
	OpFAdd:        "fadd",
	OpFSub:        "fsub",
	OpFMul:        "fmul",
	OpFDiv:        "fdiv",
	OpICmp:        "icmp",
	OpFCmp:        "fcmp",
	OpTrunc:       "trunc",
	OpSExt:        "sext",
	OpZExt:        "zext",
	OpSIToFP:      "sitofp",
	OpFPToSI:      "fptosi",
	OpBitcast:     "bitcast",
	OpPtrToInt:    "ptrtoint",
	OpIntToPtr:    "inttoptr",
	OpPhi:         "phi",
	OpSelect:      "select",
	OpCall:        "call",
	OpBr:          "br",
	OpCondBr:      "condbr",
	OpRet:         "ret",
	OpUnreachable: "unreachable",
}

// String returns the LLVM-like mnemonic of the opcode. OpCondBr prints as
// "br" in the textual form; String distinguishes them for diagnostics.
func (o Opcode) String() string {
	if int(o) < len(opcodeNames) {
		return opcodeNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsTerm reports whether the opcode terminates a basic block.
func (o Opcode) IsTerm() bool {
	switch o {
	case OpBr, OpCondBr, OpRet, OpUnreachable:
		return true
	}
	return false
}

// IsBinary reports whether the opcode is a two-operand arithmetic/logic op.
func (o Opcode) IsBinary() bool {
	switch o {
	case OpAdd, OpSub, OpMul, OpSDiv, OpSRem, OpAnd, OpOr, OpXor, OpShl,
		OpAShr, OpFAdd, OpFSub, OpFMul, OpFDiv:
		return true
	}
	return false
}

// IsConv reports whether the opcode is a conversion.
func (o Opcode) IsConv() bool {
	switch o {
	case OpTrunc, OpSExt, OpZExt, OpSIToFP, OpFPToSI, OpBitcast, OpPtrToInt, OpIntToPtr:
		return true
	}
	return false
}

// HasSideEffects reports whether the instruction may write memory, transfer
// control, or call out — i.e. whether DCE must keep it even when unused.
func (o Opcode) HasSideEffects() bool {
	switch o {
	case OpStore, OpCall, OpBr, OpCondBr, OpRet, OpUnreachable:
		return true
	}
	return false
}

// Pred is an icmp/fcmp comparison predicate.
type Pred int

// Comparison predicates (signed integer + ordered float).
const (
	PredEQ Pred = iota
	PredNE
	PredSLT
	PredSLE
	PredSGT
	PredSGE
)

var predNames = [...]string{"eq", "ne", "slt", "sle", "sgt", "sge"}

// String returns the predicate mnemonic.
func (p Pred) String() string {
	if int(p) < len(predNames) {
		return predNames[p]
	}
	return "?"
}

// FPredName returns the fcmp spelling of the predicate.
func (p Pred) FPredName() string {
	switch p {
	case PredEQ:
		return "oeq"
	case PredNE:
		return "one"
	case PredSLT:
		return "olt"
	case PredSLE:
		return "ole"
	case PredSGT:
		return "ogt"
	case PredSGE:
		return "oge"
	}
	return "?"
}

// ParsePred maps a predicate mnemonic (icmp or fcmp spelling) to a Pred.
func ParsePred(s string) (Pred, bool) {
	switch s {
	case "eq", "oeq":
		return PredEQ, true
	case "ne", "one":
		return PredNE, true
	case "slt", "olt":
		return PredSLT, true
	case "sle", "ole":
		return PredSLE, true
	case "sgt", "ogt":
		return PredSGT, true
	case "sge", "oge":
		return PredSGE, true
	}
	return 0, false
}

// Instr is a single IR instruction. The meaning of the fields depends on Op:
//
//	Alloca:  Typ = pointer to allocated type; Args optional [count]
//	Load:    Typ = loaded type; Args = [ptr]
//	Store:   Args = [value, ptr]
//	GEP:     Typ = result pointer type; Args = [ptr, indices...]
//	binary:  Typ = operand type; Args = [lhs, rhs]
//	ICmp:    Typ = I1; Cmp = predicate; Args = [lhs, rhs]
//	conv:    Typ = target type; Args = [value]
//	Phi:     Args[i] flows in from Blocks[i]
//	Select:  Args = [cond, ifTrue, ifFalse]
//	Call:    Callee = function name; Args = call args; Typ = return type
//	Br:      Blocks = [target]
//	CondBr:  Args = [cond]; Blocks = [ifTrue, ifFalse]
//	Ret:     Args = [] or [value]
type Instr struct {
	Op     Opcode
	Name   string // SSA result name without '%'; "" for void results
	Typ    *Type  // result type (Void for store/br/ret/...)
	Cmp    Pred
	Args   []Value
	Blocks []*Block
	Callee string // for OpCall
	Parent *Block

	// AllocTy is the allocated element type for OpAlloca (Typ is AllocTy*).
	AllocTy *Type
}

// Type implements Value.
func (in *Instr) Type() *Type {
	if in.Typ == nil {
		return Void
	}
	return in.Typ
}

// Ident implements Value.
func (in *Instr) Ident() string { return "%" + in.Name }

// ReplaceUses rewrites every operand equal to old with new across the whole
// function containing the instruction list given.
func ReplaceUses(f *Func, old, new Value) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a == old {
					in.Args[i] = new
				}
			}
		}
	}
}

// CollectUses returns the number of uses of each instruction-produced value
// in the function.
func CollectUses(f *Func) map[Value]int {
	uses := make(map[Value]int)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				uses[a]++
			}
		}
	}
	return uses
}

// MPICallName returns the callee name if the instruction is a call to an
// MPI routine (identified by the "MPI_" prefix), else "".
func (in *Instr) MPICallName() string {
	if in.Op == OpCall && len(in.Callee) > 4 && in.Callee[:4] == "MPI_" {
		return in.Callee
	}
	return ""
}
