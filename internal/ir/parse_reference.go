package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// This file retains the pre-rewrite line-slice parser verbatim (identifiers
// renamed) as the differential oracle for the zero-copy lexer in parse.go:
// FuzzParse and the compatibility tests assert that Parse and ParseReference
// agree on every input — same module (byte-identical Print) and
// byte-identical diagnostics. It deliberately shares nothing with the new
// parser except the IR data structures and the named-struct registry (which
// is global state both must see).
//
// Do not "optimise" this file; its value is that it does not change.

// ParseReference parses the textual IR syntax with the retained reference
// implementation. Semantics and diagnostics define the contract Parse must
// reproduce byte-for-byte.
func ParseReference(src string) (*Module, error) {
	p := &refParser{lines: strings.Split(src, "\n")}
	return p.parseModule()
}

type refParser struct {
	lines []string
	pos   int
	mod   *Module
}

type refPendingRef struct {
	slot *Value
	name string
	typ  *Type
}

func (p *refParser) errf(format string, args ...any) error {
	return fmt.Errorf("ir: parse line %d: %s", p.pos+1, fmt.Sprintf(format, args...))
}

func (p *refParser) parseModule() (*Module, error) {
	p.mod = NewModule("parsed")
	for p.pos < len(p.lines) {
		line := strings.TrimSpace(p.lines[p.pos])
		switch {
		case line == "" || strings.HasPrefix(line, ";"):
			if strings.HasPrefix(line, "; module ") {
				p.mod.Name = strings.TrimSpace(strings.TrimPrefix(line, "; module"))
			}
			p.pos++
		case strings.HasPrefix(line, "@"):
			if err := p.parseGlobal(line); err != nil {
				return nil, err
			}
			p.pos++
		case strings.HasPrefix(line, "declare "):
			if err := p.parseDeclare(line); err != nil {
				return nil, err
			}
			p.pos++
		case strings.HasPrefix(line, "define "):
			if err := p.parseDefine(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("unexpected top-level %q", line)
		}
	}
	return p.mod, nil
}

func (p *refParser) parseGlobal(line string) error {
	// @name = global TYPE INIT
	eq := strings.Index(line, "=")
	if eq < 0 {
		return p.errf("malformed global")
	}
	name := strings.TrimSpace(line[1:eq])
	rest := strings.TrimSpace(line[eq+1:])
	isConst := false
	switch {
	case strings.HasPrefix(rest, "global "):
		rest = strings.TrimPrefix(rest, "global ")
	case strings.HasPrefix(rest, "constant "):
		rest = strings.TrimPrefix(rest, "constant ")
		isConst = true
	default:
		return p.errf("global %s: missing global/constant keyword", name)
	}
	typ, rest, err := refParseType(strings.TrimSpace(rest))
	if err != nil {
		return p.errf("global %s: %v", name, err)
	}
	g := &Global{Name: name, Elem: typ, Const: isConst}
	init := strings.TrimSpace(rest)
	switch {
	case init == "" || init == "zeroinitializer":
		// zero-initialised
	case strings.HasPrefix(init, `c"`):
		s, err := refUnquoteIRString(init[1:])
		if err != nil {
			return p.errf("global %s init: %v", name, err)
		}
		g.Str = s
	default:
		c, err := refParseConstToken(typ, init)
		if err != nil {
			return p.errf("global %s init: %v", name, err)
		}
		g.Init = c
	}
	p.mod.AddGlobal(g)
	return nil
}

// parseHeader parses "RET @name(T %p, T %q, ...)" returning the function
// skeleton.
func (p *refParser) parseHeader(rest string) (*Func, error) {
	ret, rest, err := refParseType(strings.TrimSpace(rest))
	if err != nil {
		return nil, err
	}
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, "@") {
		return nil, fmt.Errorf("expected @name, got %q", rest)
	}
	open := strings.Index(rest, "(")
	close := strings.LastIndex(rest, ")")
	if open < 0 || close < open {
		return nil, fmt.Errorf("malformed parameter list in %q", rest)
	}
	name := rest[1:open]
	f := &Func{Name: name}
	var ptypes []*Type
	params := strings.TrimSpace(rest[open+1 : close])
	if params != "" {
		for _, part := range refSplitTop(params, ',') {
			part = strings.TrimSpace(part)
			if part == "..." {
				f.Variadic = true
				continue
			}
			pt, prest, err := refParseType(part)
			if err != nil {
				return nil, fmt.Errorf("param %q: %v", part, err)
			}
			pname := strings.TrimSpace(prest)
			pname = strings.TrimPrefix(pname, "%")
			if pname != "" {
				f.Params = append(f.Params, &Param{Name: pname, Typ: pt})
			}
			ptypes = append(ptypes, pt)
		}
	}
	f.Sig = FuncOf(ret, ptypes...)
	return f, nil
}

func (p *refParser) parseDeclare(line string) error {
	f, err := p.parseHeader(strings.TrimPrefix(line, "declare "))
	if err != nil {
		return p.errf("declare: %v", err)
	}
	f.Decl = true
	p.mod.AddFunc(f)
	return nil
}

func (p *refParser) parseDefine() error {
	line := strings.TrimSpace(p.lines[p.pos])
	body := strings.TrimPrefix(line, "define ")
	brace := strings.LastIndex(body, "{")
	if brace < 0 {
		return p.errf("define without {")
	}
	f, err := p.parseHeader(strings.TrimSpace(body[:brace]))
	if err != nil {
		return p.errf("define: %v", err)
	}
	p.mod.AddFunc(f)
	p.pos++

	// First pass: collect block labels and their instruction lines.
	type rawBlock struct {
		b     *Block
		lines []string
		lnos  []int
	}
	var raws []*rawBlock
	var cur *rawBlock
	for p.pos < len(p.lines) {
		line := strings.TrimSpace(p.lines[p.pos])
		if line == "}" {
			p.pos++
			break
		}
		if line == "" || strings.HasPrefix(line, ";") {
			p.pos++
			continue
		}
		if strings.HasSuffix(line, ":") && !strings.Contains(line, " ") {
			b := &Block{Name: strings.TrimSuffix(line, ":"), Parent: f}
			f.Blocks = append(f.Blocks, b)
			cur = &rawBlock{b: b}
			raws = append(raws, cur)
			p.pos++
			continue
		}
		if cur == nil {
			return p.errf("instruction before first block label")
		}
		cur.lines = append(cur.lines, line)
		cur.lnos = append(cur.lnos, p.pos)
		p.pos++
	}

	// Second pass: parse instructions with value resolution. The pass
	// rewinds p.pos for error reporting, so remember where the function
	// body ended.
	endPos := p.pos
	fp := &refFuncParser{p: p, f: f, values: map[string]Value{}}
	for _, prm := range f.Params {
		fp.values[prm.Name] = prm
	}
	for _, rb := range raws {
		for i, l := range rb.lines {
			p.pos = rb.lnos[i]
			in, err := fp.parseInstr(l)
			if err != nil {
				return err
			}
			rb.b.Append(in)
			if in.Name != "" {
				fp.values[in.Name] = in
			}
		}
	}
	p.pos = endPos
	// Patch forward references.
	for _, pr := range fp.pending {
		v, ok := fp.values[pr.name]
		if !ok {
			return fmt.Errorf("ir: parse: undefined value %%%s in @%s", pr.name, f.Name)
		}
		*pr.slot = v
	}
	return nil
}

type refFuncParser struct {
	p       *refParser
	f       *Func
	values  map[string]Value
	pending []refPendingRef
}

// operand resolves a value token of the given type, deferring unknown local
// names for later patching (needed for phis that reference later defs).
func (fp *refFuncParser) operand(typ *Type, tok string, slot *Value) error {
	tok = strings.TrimSpace(tok)
	switch {
	case strings.HasPrefix(tok, "%"):
		name := tok[1:]
		if v, ok := fp.values[name]; ok {
			*slot = v
			return nil
		}
		fp.pending = append(fp.pending, refPendingRef{slot: slot, name: name, typ: typ})
		return nil
	case strings.HasPrefix(tok, "@"):
		name := tok[1:]
		if g := fp.p.mod.GlobalByName(name); g != nil {
			*slot = g
			return nil
		}
		if f := fp.p.mod.FuncByName(name); f != nil {
			*slot = f
			return nil
		}
		return fmt.Errorf("undefined global @%s", name)
	default:
		c, err := refParseConstToken(typ, tok)
		if err != nil {
			return err
		}
		*slot = c
		return nil
	}
}

// refTypedOperandTok parses "TYPE VALUE" returning the type and raw value
// token.
func refTypedOperandTok(s string) (*Type, string, error) {
	t, rest, err := refParseType(strings.TrimSpace(s))
	if err != nil {
		return nil, "", err
	}
	return t, strings.TrimSpace(rest), nil
}

func (fp *refFuncParser) block(name string) (*Block, error) {
	name = strings.TrimPrefix(strings.TrimSpace(name), "label ")
	name = strings.TrimPrefix(strings.TrimSpace(name), "%")
	b := fp.f.BlockByName(name)
	if b == nil {
		return nil, fmt.Errorf("undefined block %%%s", name)
	}
	return b, nil
}

func (fp *refFuncParser) parseInstr(line string) (*Instr, error) {
	name := ""
	if strings.HasPrefix(line, "%") {
		eq := strings.Index(line, "=")
		if eq < 0 {
			return nil, fp.p.errf("malformed instruction %q", line)
		}
		name = strings.TrimSpace(line[1:eq])
		line = strings.TrimSpace(line[eq+1:])
	}
	sp := strings.IndexByte(line, ' ')
	op := line
	rest := ""
	if sp >= 0 {
		op = line[:sp]
		rest = strings.TrimSpace(line[sp+1:])
	}
	in := &Instr{Name: name}
	var err error
	switch op {
	case "alloca":
		parts := refSplitTop(rest, ',')
		in.Op = OpAlloca
		in.AllocTy, _, err = refParseType(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fp.p.errf("alloca: %v", err)
		}
		in.Typ = PtrTo(in.AllocTy)
		if len(parts) == 2 {
			ct, cv, err := refTypedOperandTok(parts[1])
			if err != nil {
				return nil, fp.p.errf("alloca count: %v", err)
			}
			in.Args = make([]Value, 1)
			if err := fp.operand(ct, cv, &in.Args[0]); err != nil {
				return nil, fp.p.errf("alloca count: %v", err)
			}
		}
	case "load":
		parts := refSplitTop(rest, ',')
		if len(parts) != 2 {
			return nil, fp.p.errf("load wants 2 operands")
		}
		in.Op = OpLoad
		in.Typ, _, err = refParseType(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fp.p.errf("load: %v", err)
		}
		pt, pv, err := refTypedOperandTok(parts[1])
		if err != nil {
			return nil, fp.p.errf("load ptr: %v", err)
		}
		in.Args = make([]Value, 1)
		if err := fp.operand(pt, pv, &in.Args[0]); err != nil {
			return nil, fp.p.errf("load ptr: %v", err)
		}
	case "store":
		parts := refSplitTop(rest, ',')
		if len(parts) != 2 {
			return nil, fp.p.errf("store wants 2 operands")
		}
		in.Op = OpStore
		in.Typ = Void
		in.Args = make([]Value, 2)
		vt, vv, err := refTypedOperandTok(parts[0])
		if err != nil {
			return nil, fp.p.errf("store value: %v", err)
		}
		if err := fp.operand(vt, vv, &in.Args[0]); err != nil {
			return nil, fp.p.errf("store value: %v", err)
		}
		pt, pv, err := refTypedOperandTok(parts[1])
		if err != nil {
			return nil, fp.p.errf("store ptr: %v", err)
		}
		if err := fp.operand(pt, pv, &in.Args[1]); err != nil {
			return nil, fp.p.errf("store ptr: %v", err)
		}
	case "getelementptr":
		parts := refSplitTop(rest, ',')
		if len(parts) < 2 {
			return nil, fp.p.errf("gep wants >= 2 operands")
		}
		in.Op = OpGEP
		elem, _, err := refParseType(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fp.p.errf("gep: %v", err)
		}
		in.Typ = PtrTo(elem)
		in.Args = make([]Value, len(parts)-1)
		for i, part := range parts[1:] {
			t, v, err := refTypedOperandTok(part)
			if err != nil {
				return nil, fp.p.errf("gep operand: %v", err)
			}
			if err := fp.operand(t, v, &in.Args[i]); err != nil {
				return nil, fp.p.errf("gep operand: %v", err)
			}
		}
	case "icmp", "fcmp":
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return nil, fp.p.errf("%s wants predicate", op)
		}
		pred, ok := ParsePred(rest[:sp])
		if !ok {
			return nil, fp.p.errf("bad predicate %q", rest[:sp])
		}
		in.Cmp = pred
		if op == "icmp" {
			in.Op = OpICmp
		} else {
			in.Op = OpFCmp
		}
		in.Typ = I1
		parts := refSplitTop(strings.TrimSpace(rest[sp+1:]), ',')
		if len(parts) != 2 {
			return nil, fp.p.errf("%s wants 2 operands", op)
		}
		t, v, err := refTypedOperandTok(parts[0])
		if err != nil {
			return nil, fp.p.errf("%s lhs: %v", op, err)
		}
		in.Args = make([]Value, 2)
		if err := fp.operand(t, v, &in.Args[0]); err != nil {
			return nil, fp.p.errf("%s lhs: %v", op, err)
		}
		if err := fp.operand(t, strings.TrimSpace(parts[1]), &in.Args[1]); err != nil {
			return nil, fp.p.errf("%s rhs: %v", op, err)
		}
	case "phi":
		in.Op = OpPhi
		t, rest2, err := refParseType(rest)
		if err != nil {
			return nil, fp.p.errf("phi: %v", err)
		}
		in.Typ = t
		for _, arm := range refSplitTop(strings.TrimSpace(rest2), ',') {
			arm = strings.TrimSpace(arm)
			arm = strings.TrimPrefix(arm, "[")
			arm = strings.TrimSuffix(arm, "]")
			kv := strings.SplitN(arm, ",", 2)
			if len(kv) != 2 {
				return nil, fp.p.errf("phi arm %q", arm)
			}
			in.Args = append(in.Args, nil)
			if err := fp.operand(t, strings.TrimSpace(kv[0]), &in.Args[len(in.Args)-1]); err != nil {
				return nil, fp.p.errf("phi value: %v", err)
			}
			b, err := fp.block(kv[1])
			if err != nil {
				return nil, fp.p.errf("phi block: %v", err)
			}
			in.Blocks = append(in.Blocks, b)
		}
	case "select":
		in.Op = OpSelect
		parts := refSplitTop(rest, ',')
		if len(parts) != 3 {
			return nil, fp.p.errf("select wants 3 operands")
		}
		in.Args = make([]Value, 3)
		for i, part := range parts {
			t, v, err := refTypedOperandTok(part)
			if err != nil {
				return nil, fp.p.errf("select: %v", err)
			}
			if i == 1 {
				in.Typ = t
			}
			if err := fp.operand(t, v, &in.Args[i]); err != nil {
				return nil, fp.p.errf("select: %v", err)
			}
		}
	case "call":
		in.Op = OpCall
		t, rest2, err := refParseType(rest)
		if err != nil {
			return nil, fp.p.errf("call: %v", err)
		}
		in.Typ = t
		rest2 = strings.TrimSpace(rest2)
		if !strings.HasPrefix(rest2, "@") {
			return nil, fp.p.errf("call: expected @callee in %q", rest2)
		}
		open := strings.Index(rest2, "(")
		close := strings.LastIndex(rest2, ")")
		if open < 0 || close < open {
			return nil, fp.p.errf("call: malformed args")
		}
		in.Callee = rest2[1:open]
		args := strings.TrimSpace(rest2[open+1 : close])
		if args != "" {
			parts := refSplitTop(args, ',')
			in.Args = make([]Value, len(parts))
			for i, part := range parts {
				t, v, err := refTypedOperandTok(part)
				if err != nil {
					return nil, fp.p.errf("call arg: %v", err)
				}
				if err := fp.operand(t, v, &in.Args[i]); err != nil {
					return nil, fp.p.errf("call arg: %v", err)
				}
			}
		}
	case "br":
		if strings.HasPrefix(rest, "label ") {
			in.Op = OpBr
			in.Typ = Void
			b, err := fp.block(rest)
			if err != nil {
				return nil, fp.p.errf("br: %v", err)
			}
			in.Blocks = []*Block{b}
		} else {
			in.Op = OpCondBr
			in.Typ = Void
			parts := refSplitTop(rest, ',')
			if len(parts) != 3 {
				return nil, fp.p.errf("condbr wants cond + 2 labels")
			}
			t, v, err := refTypedOperandTok(parts[0])
			if err != nil {
				return nil, fp.p.errf("condbr cond: %v", err)
			}
			in.Args = make([]Value, 1)
			if err := fp.operand(t, v, &in.Args[0]); err != nil {
				return nil, fp.p.errf("condbr cond: %v", err)
			}
			bt, err := fp.block(parts[1])
			if err != nil {
				return nil, fp.p.errf("condbr: %v", err)
			}
			bf, err := fp.block(parts[2])
			if err != nil {
				return nil, fp.p.errf("condbr: %v", err)
			}
			in.Blocks = []*Block{bt, bf}
		}
	case "ret":
		in.Op = OpRet
		in.Typ = Void
		if rest != "void" && rest != "" {
			t, v, err := refTypedOperandTok(rest)
			if err != nil {
				return nil, fp.p.errf("ret: %v", err)
			}
			in.Args = make([]Value, 1)
			if err := fp.operand(t, v, &in.Args[0]); err != nil {
				return nil, fp.p.errf("ret: %v", err)
			}
		}
	case "unreachable":
		in.Op = OpUnreachable
		in.Typ = Void
	default:
		bop, ok := refBinOpByName(op)
		if ok {
			in.Op = bop
			parts := refSplitTop(rest, ',')
			if len(parts) != 2 {
				return nil, fp.p.errf("%s wants 2 operands", op)
			}
			t, v, err := refTypedOperandTok(parts[0])
			if err != nil {
				return nil, fp.p.errf("%s: %v", op, err)
			}
			in.Typ = t
			in.Args = make([]Value, 2)
			if err := fp.operand(t, v, &in.Args[0]); err != nil {
				return nil, fp.p.errf("%s: %v", op, err)
			}
			if err := fp.operand(t, strings.TrimSpace(parts[1]), &in.Args[1]); err != nil {
				return nil, fp.p.errf("%s: %v", op, err)
			}
			break
		}
		cop, ok := refConvOpByName(op)
		if ok {
			in.Op = cop
			toIdx := strings.LastIndex(rest, " to ")
			if toIdx < 0 {
				return nil, fp.p.errf("%s wants 'to'", op)
			}
			t, v, err := refTypedOperandTok(rest[:toIdx])
			if err != nil {
				return nil, fp.p.errf("%s: %v", op, err)
			}
			in.Typ, _, err = refParseType(strings.TrimSpace(rest[toIdx+4:]))
			if err != nil {
				return nil, fp.p.errf("%s: %v", op, err)
			}
			in.Args = make([]Value, 1)
			if err := fp.operand(t, v, &in.Args[0]); err != nil {
				return nil, fp.p.errf("%s: %v", op, err)
			}
			break
		}
		return nil, fp.p.errf("unknown opcode %q", op)
	}
	return in, nil
}

func refBinOpByName(s string) (Opcode, bool) {
	for op := OpAdd; op <= OpFDiv; op++ {
		if op.String() == s {
			return op, true
		}
	}
	return OpInvalid, false
}

func refConvOpByName(s string) (Opcode, bool) {
	for op := OpTrunc; op <= OpIntToPtr; op++ {
		if op.String() == s {
			return op, true
		}
	}
	return OpInvalid, false
}

// refUnquoteIRString decodes LLVM's "..." escaping with \xx hex escapes.
func refUnquoteIRString(s string) (string, error) {
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("malformed string literal %q", s)
	}
	body := s[1 : len(s)-1]
	var sb strings.Builder
	for i := 0; i < len(body); i++ {
		if body[i] == '\\' {
			if i+2 >= len(body) {
				return "", fmt.Errorf("truncated escape in %q", s)
			}
			v, err := strconv.ParseUint(body[i+1:i+3], 16, 8)
			if err != nil {
				return "", fmt.Errorf("bad escape in %q", s)
			}
			sb.WriteByte(byte(v))
			i += 2
		} else {
			sb.WriteByte(body[i])
		}
	}
	return sb.String(), nil
}

// refParseConstToken parses an integer/float/null/undef literal of type t.
func refParseConstToken(t *Type, tok string) (*Const, error) {
	switch tok {
	case "null":
		return ConstNull(t), nil
	case "undef":
		return ConstUndef(t), nil
	case "true":
		return ConstBool(true), nil
	case "false":
		return ConstBool(false), nil
	}
	if t.IsFloat() {
		f, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, fmt.Errorf("bad float literal %q", tok)
		}
		return ConstFloat(f), nil
	}
	i, err := strconv.ParseInt(tok, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad int literal %q", tok)
	}
	return ConstInt(t, i), nil
}

// refParseType parses a leading type from s, returning the remainder.
func refParseType(s string) (*Type, string, error) {
	s = strings.TrimSpace(s)
	var base *Type
	switch {
	case strings.HasPrefix(s, "void"):
		base, s = Void, s[4:]
	case strings.HasPrefix(s, "i1") && !strings.HasPrefix(s, "i16"):
		base, s = I1, s[2:]
	case strings.HasPrefix(s, "i8"):
		base, s = I8, s[2:]
	case strings.HasPrefix(s, "i32"):
		base, s = I32, s[3:]
	case strings.HasPrefix(s, "i64"):
		base, s = I64, s[3:]
	case strings.HasPrefix(s, "double"):
		base, s = F64, s[6:]
	case strings.HasPrefix(s, "label"):
		base, s = LabelTy, s[5:]
	case strings.HasPrefix(s, "%struct."):
		rest := s[len("%struct."):]
		end := 0
		for end < len(rest) && (isIdentChar(rest[end])) {
			end++
		}
		name := rest[:end]
		st, ok := namedStructs[name]
		if !ok {
			st = StructOf(name)
			namedStructs[name] = st
		}
		base, s = st, rest[end:]
	case strings.HasPrefix(s, "["):
		close := refMatchBracket(s, 0, '[', ']')
		if close < 0 {
			return nil, "", fmt.Errorf("unterminated array type in %q", s)
		}
		inner := s[1:close]
		xIdx := strings.Index(inner, " x ")
		if xIdx < 0 {
			return nil, "", fmt.Errorf("malformed array type %q", inner)
		}
		n, err := strconv.Atoi(strings.TrimSpace(inner[:xIdx]))
		if err != nil {
			return nil, "", fmt.Errorf("bad array length in %q", inner)
		}
		elem, rest, err := refParseType(inner[xIdx+3:])
		if err != nil {
			return nil, "", err
		}
		if strings.TrimSpace(rest) != "" {
			return nil, "", fmt.Errorf("trailing %q in array type", rest)
		}
		base, s = ArrayOf(n, elem), s[close+1:]
	default:
		return nil, "", fmt.Errorf("unknown type at %q", s)
	}
	for strings.HasPrefix(s, "*") {
		base = PtrTo(base)
		s = s[1:]
	}
	return base, s, nil
}

// refMatchBracket returns the index of the bracket matching s[start].
func refMatchBracket(s string, start int, open, close byte) int {
	depth := 0
	for i := start; i < len(s); i++ {
		switch s[i] {
		case open:
			depth++
		case close:
			depth--
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

// refSplitTop splits s on sep at bracket depth zero ((), [], {}).
func refSplitTop(s string, sep byte) []string {
	var parts []string
	depth := 0
	last := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '[', '{':
			depth++
		case ')', ']', '}':
			depth--
		default:
			if s[i] == sep && depth == 0 {
				parts = append(parts, s[last:i])
				last = i + 1
			}
		}
	}
	parts = append(parts, s[last:])
	return parts
}
