package ir

import (
	"fmt"
	"strings"
)

// Print renders the module in the textual IR syntax accepted by Parse.
func Print(m *Module) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; module %s\n", m.Name)
	for _, g := range m.Globals {
		kw := "global"
		if g.Const {
			kw = "constant"
		}
		init := "zeroinitializer"
		if g.Init != nil {
			init = g.Init.Ident()
		} else if g.Str != "" {
			init = "c" + quoteIRString(g.Str)
		}
		fmt.Fprintf(&sb, "@%s = %s %s %s\n", g.Name, kw, g.Elem, init)
	}
	if len(m.Globals) > 0 {
		sb.WriteByte('\n')
	}
	for i, f := range m.Funcs {
		if i > 0 {
			sb.WriteByte('\n')
		}
		printFunc(&sb, f)
	}
	return sb.String()
}

func printFunc(sb *strings.Builder, f *Func) {
	var params []string
	if len(f.Params) > 0 {
		params = make([]string, len(f.Params))
		for i, p := range f.Params {
			params[i] = fmt.Sprintf("%s %%%s", p.Typ, p.Name)
		}
	} else {
		// Declarations without named parameters print types only.
		params = make([]string, len(f.Sig.Params))
		for i, t := range f.Sig.Params {
			params[i] = t.String()
		}
	}
	variadic := ""
	if f.Variadic {
		variadic = ", ..."
		if len(params) == 0 {
			variadic = "..."
		}
	}
	if f.Decl {
		fmt.Fprintf(sb, "declare %s @%s(%s%s)\n", f.Sig.Ret, f.Name, strings.Join(params, ", "), variadic)
		return
	}
	fmt.Fprintf(sb, "define %s @%s(%s%s) {\n", f.Sig.Ret, f.Name, strings.Join(params, ", "), variadic)
	for _, b := range f.Blocks {
		fmt.Fprintf(sb, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			sb.WriteString("  ")
			sb.WriteString(FormatInstr(in))
			sb.WriteByte('\n')
		}
	}
	sb.WriteString("}\n")
}

// quoteIRString renders LLVM's c"..." escaping (\xx hex for non-printables).
func quoteIRString(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c < 0x7f && c != '"' && c != '\\' {
			sb.WriteByte(c)
		} else {
			fmt.Fprintf(&sb, "\\%02X", c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

func typedOperand(v Value) string {
	return v.Type().String() + " " + v.Ident()
}

// FormatInstr renders a single instruction in textual syntax.
func FormatInstr(in *Instr) string {
	lhs := ""
	if in.Typ != nil && in.Typ.Kind != KVoid && in.Op != OpStore {
		lhs = "%" + in.Name + " = "
	}
	switch in.Op {
	case OpAlloca:
		if len(in.Args) == 1 {
			return fmt.Sprintf("%salloca %s, %s", lhs, in.AllocTy, typedOperand(in.Args[0]))
		}
		return fmt.Sprintf("%salloca %s", lhs, in.AllocTy)
	case OpLoad:
		return fmt.Sprintf("%sload %s, %s", lhs, in.Typ, typedOperand(in.Args[0]))
	case OpStore:
		return fmt.Sprintf("store %s, %s", typedOperand(in.Args[0]), typedOperand(in.Args[1]))
	case OpGEP:
		parts := make([]string, 0, len(in.Args))
		for _, a := range in.Args {
			parts = append(parts, typedOperand(a))
		}
		return fmt.Sprintf("%sgetelementptr %s, %s", lhs, in.Typ.Elem, strings.Join(parts, ", "))
	case OpICmp:
		return fmt.Sprintf("%sicmp %s %s, %s", lhs, in.Cmp, typedOperand(in.Args[0]), in.Args[1].Ident())
	case OpFCmp:
		return fmt.Sprintf("%sfcmp %s %s, %s", lhs, in.Cmp.FPredName(), typedOperand(in.Args[0]), in.Args[1].Ident())
	case OpPhi:
		parts := make([]string, len(in.Args))
		for i := range in.Args {
			parts[i] = fmt.Sprintf("[ %s, %%%s ]", in.Args[i].Ident(), in.Blocks[i].Name)
		}
		return fmt.Sprintf("%sphi %s %s", lhs, in.Typ, strings.Join(parts, ", "))
	case OpSelect:
		return fmt.Sprintf("%sselect %s, %s, %s", lhs,
			typedOperand(in.Args[0]), typedOperand(in.Args[1]), typedOperand(in.Args[2]))
	case OpCall:
		parts := make([]string, len(in.Args))
		for i, a := range in.Args {
			parts[i] = typedOperand(a)
		}
		return fmt.Sprintf("%scall %s @%s(%s)", lhs, in.Type(), in.Callee, strings.Join(parts, ", "))
	case OpBr:
		return fmt.Sprintf("br label %%%s", in.Blocks[0].Name)
	case OpCondBr:
		return fmt.Sprintf("br %s, label %%%s, label %%%s",
			typedOperand(in.Args[0]), in.Blocks[0].Name, in.Blocks[1].Name)
	case OpRet:
		if len(in.Args) == 0 {
			return "ret void"
		}
		return "ret " + typedOperand(in.Args[0])
	case OpUnreachable:
		return "unreachable"
	default:
		if in.Op.IsBinary() {
			return fmt.Sprintf("%s%s %s, %s", lhs, in.Op, typedOperand(in.Args[0]), in.Args[1].Ident())
		}
		if in.Op.IsConv() {
			return fmt.Sprintf("%s%s %s to %s", lhs, in.Op, typedOperand(in.Args[0]), in.Typ)
		}
	}
	return fmt.Sprintf("%s<%s?>", lhs, in.Op)
}
