//go:build !race

package ir_test

const raceEnabled = false
