package ir

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"mpidetect/internal/intern"
)

// The parser is the zero-copy rewrite of the original line-slice
// implementation retained in parse_reference.go. It scans the source string
// directly (no strings.Split line slice), every token is a substring of the
// input (no per-token copies), opcode dispatch resolves against an interned
// keyword table instead of scanning opcodeNames, and instructions, operand
// slices, constants, and blocks are bump-allocated from pooled per-module
// arena chunks. Diagnostics — messages and line numbers — are byte-identical
// to ParseReference; FuzzParse and TestParseMatchesReference enforce that.
//
// Tokens (instruction names, callees, block labels) alias the source string,
// so a parsed module keeps its source text alive. Modules and their sources
// have the same lifetime everywhere in the pipeline, and the old parser's
// strings.Split substrings aliased the source just the same.

// Named struct registry: the textual form prints named structs as
// %struct.NAME, so the parser needs their definitions.
var namedStructs = map[string]*Type{}

// ptrCache memoises PtrTo for the scalar singletons and registered structs
// (two levels deep: T* and T**), so parsing the ubiquitous pointer types
// reuses one shared immutable Type instead of allocating per mention. It is
// populated at init / RegisterStruct time only and is read-only while
// parsing, under the same register-before-parse contract as namedStructs.
var ptrCache = map[*Type]*Type{}

func cachePtrsTo(base *Type) {
	p1 := PtrTo(base)
	ptrCache[base] = p1
	ptrCache[p1] = PtrTo(p1)
}

func init() {
	for _, t := range []*Type{Void, I1, I8, I32, I64, F64, LabelTy} {
		cachePtrsTo(t)
	}
}

// ptrTo is PtrTo with the shared-singleton fast path.
func ptrTo(t *Type) *Type {
	if p, ok := ptrCache[t]; ok {
		return p
	}
	return PtrTo(t)
}

// RegisterStruct registers a named struct type for the parser. It returns
// the registered type so callers can use it directly.
func RegisterStruct(t *Type) *Type {
	if t.Kind != KStruct || t.SName == "" {
		panic("ir: RegisterStruct requires a named struct")
	}
	namedStructs[t.SName] = t
	cachePtrsTo(t)
	return t
}

// StatusType is the modelled MPI_Status struct (source, tag, error).
var StatusType = RegisterStruct(StructOf("MPI_Status", I32, I32, I32))

// opTab interns every non-special opcode mnemonic (binary arithmetic and
// conversions); parseInstr's fallback resolves the token with one lookup
// instead of a linear scan over opcodeNames.
var (
	opTab  = intern.New()
	opByID []Opcode
)

func init() {
	for op := OpAdd; op <= OpFDiv; op++ {
		opTab.Intern(op.String())
		opByID = append(opByID, op)
	}
	for op := OpTrunc; op <= OpIntToPtr; op++ {
		opTab.Intern(op.String())
		opByID = append(opByID, op)
	}
}

// Parse parses the textual IR syntax produced by Print.
func Parse(src string) (*Module, error) {
	p := parserPool.Get().(*parser)
	p.src = src
	p.pos = -1
	m, err := p.parseModule()
	p.release()
	if err != nil {
		return nil, err
	}
	return m, nil
}

// MustParse is Parse that panics on error, for tests and fixtures.
func MustParse(src string) *Module {
	m, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return m
}

// Arena chunk sizes: large enough that a typical corpus module allocates a
// handful of chunks, small enough not to overshoot tiny modules badly.
const (
	instrChunk    = 64
	argChunk      = 128
	constChunk    = 64
	blockChunk    = 16
	blockPtrChunk = 32
	instrPtrChunk = 128
	funcChunk     = 8
	globalChunk   = 8
	paramChunk    = 32
	typeChunk     = 16
)

var parserPool = sync.Pool{New: func() any { return new(parser) }}

type parser struct {
	// Line scanner state. pos is the index of the line most recently read
	// (0-based, so errf reports pos+1), matching the line numbering of the
	// reference parser exactly.
	src string
	off int
	pos int
	eof bool
	cur string

	mod *Module

	// Per-function state (reset at each define).
	curFunc *Func
	values  map[string]Value
	pending []pendingRef

	// Pooled scratch reused across parses. Everything that can hold a
	// source substring is cleared in release so a pooled parser never pins
	// a caller's input.
	parts    []string
	rawLines []string
	rawLnos  []int32
	spans    []blockSpan

	// Arena chunks. The module owns pointers into them, so release drops
	// the references rather than recycling the memory; pooling still wins
	// by amortising one allocation per chunk instead of one per node.
	instrs    []Instr
	args      []Value
	consts    []Const
	blocks    []Block
	blockPtrs []*Block
	instrPtrs []*Instr
	funcs     []Func
	globals   []Global
	params    []Param
	paramPtrs []*Param
	types     []Type
	typePtrs  []*Type
}

type blockSpan struct {
	b     *Block
	start int
}

type pendingRef struct {
	slot *Value
	name string
	typ  *Type
}

// nextLine advances to the next line, mirroring strings.Split(src, "\n")
// boundaries (a trailing newline yields a final empty line; empty input is
// one empty line).
func (p *parser) nextLine() bool {
	if p.eof {
		return false
	}
	p.pos++
	if i := strings.IndexByte(p.src[p.off:], '\n'); i >= 0 {
		p.cur = p.src[p.off : p.off+i]
		p.off += i + 1
	} else {
		p.cur = p.src[p.off:]
		p.eof = true
	}
	return true
}

// release returns the parser to the pool with every source reference and
// module-owned arena chunk dropped.
func (p *parser) release() {
	p.src, p.cur = "", ""
	p.off, p.eof = 0, false
	p.mod, p.curFunc = nil, nil
	clear(p.values)
	for i := range p.pending {
		p.pending[i] = pendingRef{}
	}
	p.pending = p.pending[:0]
	for i := range p.parts {
		p.parts[i] = ""
	}
	p.parts = p.parts[:0]
	for i := range p.rawLines {
		p.rawLines[i] = ""
	}
	p.rawLines = p.rawLines[:0]
	p.rawLnos = p.rawLnos[:0]
	for i := range p.spans {
		p.spans[i] = blockSpan{}
	}
	p.spans = p.spans[:0]
	p.instrs, p.args, p.consts = nil, nil, nil
	p.blocks, p.blockPtrs, p.instrPtrs = nil, nil, nil
	p.funcs, p.globals, p.params = nil, nil, nil
	p.paramPtrs, p.types, p.typePtrs = nil, nil, nil
	parserPool.Put(p)
}

// split is splitTop into the parser's reused scratch buffer. No production
// path splits while iterating a previous split's result, so one shared
// buffer suffices (the reference parser's per-call allocation was the
// dominant per-instruction cost).
func (p *parser) split(s string, sep byte) []string {
	p.parts = appendSplitTop(p.parts[:0], s, sep)
	return p.parts
}

// newInstr bump-allocates an instruction from the arena.
func (p *parser) newInstr() *Instr {
	if len(p.instrs) == cap(p.instrs) {
		p.instrs = make([]Instr, 0, instrChunk)
	}
	p.instrs = append(p.instrs, Instr{})
	return &p.instrs[len(p.instrs)-1]
}

// newArgs carves an exact-cap operand slice out of the arena. The full
// slice expression pins cap == len so a later append by a pass copies out
// instead of stomping the neighbouring instruction's operands.
func (p *parser) newArgs(n int) []Value {
	if n == 0 {
		return nil
	}
	if len(p.args)+n > cap(p.args) {
		c := argChunk
		if n > c {
			c = n
		}
		p.args = make([]Value, 0, c)
	}
	s := len(p.args)
	p.args = p.args[:s+n]
	return p.args[s : s+n : s+n]
}

// newConst bump-allocates a constant from the arena.
func (p *parser) newConst() *Const {
	if len(p.consts) == cap(p.consts) {
		p.consts = make([]Const, 0, constChunk)
	}
	p.consts = append(p.consts, Const{})
	return &p.consts[len(p.consts)-1]
}

// newBlock bump-allocates a basic block from the arena.
func (p *parser) newBlock() *Block {
	if len(p.blocks) == cap(p.blocks) {
		p.blocks = make([]Block, 0, blockChunk)
	}
	p.blocks = append(p.blocks, Block{})
	return &p.blocks[len(p.blocks)-1]
}

// newBlockPtrs carves an exact-cap []*Block (phi incoming / branch targets).
func (p *parser) newBlockPtrs(n int) []*Block {
	if n == 0 {
		return nil
	}
	if len(p.blockPtrs)+n > cap(p.blockPtrs) {
		c := blockPtrChunk
		if n > c {
			c = n
		}
		p.blockPtrs = make([]*Block, 0, c)
	}
	s := len(p.blockPtrs)
	p.blockPtrs = p.blockPtrs[:s+n]
	return p.blockPtrs[s : s+n : s+n]
}

// newFunc bump-allocates a function from the arena.
func (p *parser) newFunc() *Func {
	if len(p.funcs) == cap(p.funcs) {
		p.funcs = make([]Func, 0, funcChunk)
	}
	p.funcs = append(p.funcs, Func{})
	return &p.funcs[len(p.funcs)-1]
}

// newGlobal bump-allocates a global from the arena.
func (p *parser) newGlobal() *Global {
	if len(p.globals) == cap(p.globals) {
		p.globals = make([]Global, 0, globalChunk)
	}
	p.globals = append(p.globals, Global{})
	return &p.globals[len(p.globals)-1]
}

// newParam bump-allocates a parameter from the arena.
func (p *parser) newParam() *Param {
	if len(p.params) == cap(p.params) {
		p.params = make([]Param, 0, paramChunk)
	}
	p.params = append(p.params, Param{})
	return &p.params[len(p.params)-1]
}

// newType bump-allocates a type (function signatures) from the arena.
func (p *parser) newType() *Type {
	if len(p.types) == cap(p.types) {
		p.types = make([]Type, 0, typeChunk)
	}
	p.types = append(p.types, Type{})
	return &p.types[len(p.types)-1]
}

// newParamList carves a zero-length, exact-cap parameter list.
func (p *parser) newParamList(n int) []*Param {
	if n == 0 {
		return nil
	}
	if len(p.paramPtrs)+n > cap(p.paramPtrs) {
		c := paramChunk
		if n > c {
			c = n
		}
		p.paramPtrs = make([]*Param, 0, c)
	}
	s := len(p.paramPtrs)
	p.paramPtrs = p.paramPtrs[:s+n]
	return p.paramPtrs[s : s : s+n]
}

// newTypeList carves a zero-length, exact-cap type list (signature params).
func (p *parser) newTypeList(n int) []*Type {
	if n == 0 {
		return nil
	}
	if len(p.typePtrs)+n > cap(p.typePtrs) {
		c := typeChunk
		if n > c {
			c = n
		}
		p.typePtrs = make([]*Type, 0, c)
	}
	s := len(p.typePtrs)
	p.typePtrs = p.typePtrs[:s+n]
	return p.typePtrs[s : s : s+n]
}

// newInstrList carves a zero-length, exact-cap instruction list for a block
// whose instruction count is known from the first pass.
func (p *parser) newInstrList(n int) []*Instr {
	if n == 0 {
		return nil
	}
	if len(p.instrPtrs)+n > cap(p.instrPtrs) {
		c := instrPtrChunk
		if n > c {
			c = n
		}
		p.instrPtrs = make([]*Instr, 0, c)
	}
	s := len(p.instrPtrs)
	p.instrPtrs = p.instrPtrs[:s+n]
	return p.instrPtrs[s : s : s+n]
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("ir: parse line %d: %s", p.pos+1, fmt.Sprintf(format, args...))
}

func (p *parser) parseModule() (*Module, error) {
	p.mod = NewModule("parsed")
	for p.nextLine() {
		line := strings.TrimSpace(p.cur)
		switch {
		case line == "" || strings.HasPrefix(line, ";"):
			if strings.HasPrefix(line, "; module ") {
				p.mod.Name = strings.TrimSpace(strings.TrimPrefix(line, "; module"))
			}
		case strings.HasPrefix(line, "@"):
			if err := p.parseGlobal(line); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "declare "):
			if err := p.parseDeclare(line); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "define "):
			if err := p.parseDefine(line); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("unexpected top-level %q", line)
		}
	}
	return p.mod, nil
}

func (p *parser) parseGlobal(line string) error {
	// @name = global TYPE INIT
	eq := strings.Index(line, "=")
	if eq < 0 {
		return p.errf("malformed global")
	}
	name := strings.TrimSpace(line[1:eq])
	rest := strings.TrimSpace(line[eq+1:])
	isConst := false
	switch {
	case strings.HasPrefix(rest, "global "):
		rest = strings.TrimPrefix(rest, "global ")
	case strings.HasPrefix(rest, "constant "):
		rest = strings.TrimPrefix(rest, "constant ")
		isConst = true
	default:
		return p.errf("global %s: missing global/constant keyword", name)
	}
	typ, rest, err := parseType(strings.TrimSpace(rest))
	if err != nil {
		return p.errf("global %s: %v", name, err)
	}
	g := p.newGlobal()
	g.Name, g.Elem, g.Const = name, typ, isConst
	init := strings.TrimSpace(rest)
	switch {
	case init == "" || init == "zeroinitializer":
		// zero-initialised
	case strings.HasPrefix(init, `c"`):
		s, err := unquoteIRString(init[1:])
		if err != nil {
			return p.errf("global %s init: %v", name, err)
		}
		g.Str = s
	default:
		c, err := p.parseConst(typ, init)
		if err != nil {
			return p.errf("global %s init: %v", name, err)
		}
		g.Init = c
	}
	p.mod.AddGlobal(g)
	return nil
}

// parseHeader parses "RET @name(T %p, T %q, ...)" returning the function
// skeleton.
func (p *parser) parseHeader(rest string) (*Func, error) {
	ret, rest, err := parseType(strings.TrimSpace(rest))
	if err != nil {
		return nil, err
	}
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, "@") {
		return nil, fmt.Errorf("expected @name, got %q", rest)
	}
	open := strings.Index(rest, "(")
	close := strings.LastIndex(rest, ")")
	if open < 0 || close < open {
		return nil, fmt.Errorf("malformed parameter list in %q", rest)
	}
	name := rest[1:open]
	f := p.newFunc()
	f.Name = name
	var ptypes []*Type
	params := strings.TrimSpace(rest[open+1 : close])
	if params != "" {
		parts := p.split(params, ',')
		f.Params = p.newParamList(len(parts))
		ptypes = p.newTypeList(len(parts))
		for _, part := range parts {
			part = strings.TrimSpace(part)
			if part == "..." {
				f.Variadic = true
				continue
			}
			pt, prest, err := parseType(part)
			if err != nil {
				return nil, fmt.Errorf("param %q: %v", part, err)
			}
			pname := strings.TrimSpace(prest)
			pname = strings.TrimPrefix(pname, "%")
			if pname != "" {
				prm := p.newParam()
				prm.Name, prm.Typ = pname, pt
				f.Params = append(f.Params, prm)
			}
			ptypes = append(ptypes, pt)
		}
	}
	sig := p.newType()
	sig.Kind, sig.Ret, sig.Params = KFunc, ret, ptypes
	f.Sig = sig
	return f, nil
}

func (p *parser) parseDeclare(line string) error {
	f, err := p.parseHeader(strings.TrimPrefix(line, "declare "))
	if err != nil {
		return p.errf("declare: %v", err)
	}
	f.Decl = true
	p.mod.AddFunc(f)
	return nil
}

func (p *parser) parseDefine(line string) error {
	body := strings.TrimPrefix(line, "define ")
	brace := strings.LastIndex(body, "{")
	if brace < 0 {
		return p.errf("define without {")
	}
	f, err := p.parseHeader(strings.TrimSpace(body[:brace]))
	if err != nil {
		return p.errf("define: %v", err)
	}
	p.mod.AddFunc(f)

	// First pass: collect block labels and instruction line spans into the
	// pooled scratch (flat line list, one span per block).
	p.rawLines = p.rawLines[:0]
	p.rawLnos = p.rawLnos[:0]
	p.spans = p.spans[:0]
	for p.nextLine() {
		line := strings.TrimSpace(p.cur)
		if line == "}" {
			break
		}
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		if strings.HasSuffix(line, ":") && !strings.Contains(line, " ") {
			b := p.newBlock()
			b.Name = strings.TrimSuffix(line, ":")
			b.Parent = f
			f.Blocks = append(f.Blocks, b)
			p.spans = append(p.spans, blockSpan{b: b, start: len(p.rawLines)})
			continue
		}
		if len(p.spans) == 0 {
			return p.errf("instruction before first block label")
		}
		p.rawLines = append(p.rawLines, line)
		p.rawLnos = append(p.rawLnos, int32(p.pos))
	}

	// Second pass: parse instructions with value resolution. The pass
	// rewinds p.pos per instruction for error reporting, so remember where
	// the function body ended.
	endPos := p.pos
	p.curFunc = f
	if p.values == nil {
		p.values = make(map[string]Value, 32)
	} else {
		clear(p.values)
	}
	p.pending = p.pending[:0]
	for _, prm := range f.Params {
		p.values[prm.Name] = prm
	}
	for si, sp := range p.spans {
		end := len(p.rawLines)
		if si+1 < len(p.spans) {
			end = p.spans[si+1].start
		}
		sp.b.Instrs = p.newInstrList(end - sp.start)
		for k := sp.start; k < end; k++ {
			p.pos = int(p.rawLnos[k])
			in, err := p.parseInstr(p.rawLines[k])
			if err != nil {
				return err
			}
			sp.b.Append(in)
			if in.Name != "" {
				p.values[in.Name] = in
			}
		}
	}
	p.pos = endPos
	// Patch forward references.
	for i := range p.pending {
		pr := &p.pending[i]
		v, ok := p.values[pr.name]
		if !ok {
			return fmt.Errorf("ir: parse: undefined value %%%s in @%s", pr.name, f.Name)
		}
		*pr.slot = v
	}
	return nil
}

// operand resolves a value token of the given type, deferring unknown local
// names for later patching (needed for phis that reference later defs).
func (p *parser) operand(typ *Type, tok string, slot *Value) error {
	tok = strings.TrimSpace(tok)
	switch {
	case strings.HasPrefix(tok, "%"):
		name := tok[1:]
		if v, ok := p.values[name]; ok {
			*slot = v
			return nil
		}
		p.pending = append(p.pending, pendingRef{slot: slot, name: name, typ: typ})
		return nil
	case strings.HasPrefix(tok, "@"):
		name := tok[1:]
		if g := p.mod.GlobalByName(name); g != nil {
			*slot = g
			return nil
		}
		if f := p.mod.FuncByName(name); f != nil {
			*slot = f
			return nil
		}
		return fmt.Errorf("undefined global @%s", name)
	default:
		c, err := p.parseConst(typ, tok)
		if err != nil {
			return err
		}
		*slot = c
		return nil
	}
}

// typedOperandTok parses "TYPE VALUE" returning the type and raw value token.
func typedOperandTok(s string) (*Type, string, error) {
	t, rest, err := parseType(strings.TrimSpace(s))
	if err != nil {
		return nil, "", err
	}
	return t, strings.TrimSpace(rest), nil
}

func (p *parser) block(name string) (*Block, error) {
	name = strings.TrimPrefix(strings.TrimSpace(name), "label ")
	name = strings.TrimPrefix(strings.TrimSpace(name), "%")
	b := p.curFunc.BlockByName(name)
	if b == nil {
		return nil, fmt.Errorf("undefined block %%%s", name)
	}
	return b, nil
}

func (p *parser) parseInstr(line string) (*Instr, error) {
	name := ""
	if strings.HasPrefix(line, "%") {
		eq := strings.Index(line, "=")
		if eq < 0 {
			return nil, p.errf("malformed instruction %q", line)
		}
		name = strings.TrimSpace(line[1:eq])
		line = strings.TrimSpace(line[eq+1:])
	}
	sp := strings.IndexByte(line, ' ')
	op := line
	rest := ""
	if sp >= 0 {
		op = line[:sp]
		rest = strings.TrimSpace(line[sp+1:])
	}
	in := p.newInstr()
	in.Name = name
	var err error
	switch op {
	case "alloca":
		parts := p.split(rest, ',')
		in.Op = OpAlloca
		in.AllocTy, _, err = parseType(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, p.errf("alloca: %v", err)
		}
		in.Typ = ptrTo(in.AllocTy)
		if len(parts) == 2 {
			ct, cv, err := typedOperandTok(parts[1])
			if err != nil {
				return nil, p.errf("alloca count: %v", err)
			}
			in.Args = p.newArgs(1)
			if err := p.operand(ct, cv, &in.Args[0]); err != nil {
				return nil, p.errf("alloca count: %v", err)
			}
		}
	case "load":
		parts := p.split(rest, ',')
		if len(parts) != 2 {
			return nil, p.errf("load wants 2 operands")
		}
		in.Op = OpLoad
		in.Typ, _, err = parseType(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, p.errf("load: %v", err)
		}
		pt, pv, err := typedOperandTok(parts[1])
		if err != nil {
			return nil, p.errf("load ptr: %v", err)
		}
		in.Args = p.newArgs(1)
		if err := p.operand(pt, pv, &in.Args[0]); err != nil {
			return nil, p.errf("load ptr: %v", err)
		}
	case "store":
		parts := p.split(rest, ',')
		if len(parts) != 2 {
			return nil, p.errf("store wants 2 operands")
		}
		in.Op = OpStore
		in.Typ = Void
		in.Args = p.newArgs(2)
		vt, vv, err := typedOperandTok(parts[0])
		if err != nil {
			return nil, p.errf("store value: %v", err)
		}
		if err := p.operand(vt, vv, &in.Args[0]); err != nil {
			return nil, p.errf("store value: %v", err)
		}
		pt, pv, err := typedOperandTok(parts[1])
		if err != nil {
			return nil, p.errf("store ptr: %v", err)
		}
		if err := p.operand(pt, pv, &in.Args[1]); err != nil {
			return nil, p.errf("store ptr: %v", err)
		}
	case "getelementptr":
		parts := p.split(rest, ',')
		if len(parts) < 2 {
			return nil, p.errf("gep wants >= 2 operands")
		}
		in.Op = OpGEP
		elem, _, err := parseType(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, p.errf("gep: %v", err)
		}
		in.Typ = ptrTo(elem)
		in.Args = p.newArgs(len(parts) - 1)
		for i, part := range parts[1:] {
			t, v, err := typedOperandTok(part)
			if err != nil {
				return nil, p.errf("gep operand: %v", err)
			}
			if err := p.operand(t, v, &in.Args[i]); err != nil {
				return nil, p.errf("gep operand: %v", err)
			}
		}
	case "icmp", "fcmp":
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return nil, p.errf("%s wants predicate", op)
		}
		pred, ok := ParsePred(rest[:sp])
		if !ok {
			return nil, p.errf("bad predicate %q", rest[:sp])
		}
		in.Cmp = pred
		if op == "icmp" {
			in.Op = OpICmp
		} else {
			in.Op = OpFCmp
		}
		in.Typ = I1
		parts := p.split(strings.TrimSpace(rest[sp+1:]), ',')
		if len(parts) != 2 {
			return nil, p.errf("%s wants 2 operands", op)
		}
		t, v, err := typedOperandTok(parts[0])
		if err != nil {
			return nil, p.errf("%s lhs: %v", op, err)
		}
		in.Args = p.newArgs(2)
		if err := p.operand(t, v, &in.Args[0]); err != nil {
			return nil, p.errf("%s lhs: %v", op, err)
		}
		if err := p.operand(t, strings.TrimSpace(parts[1]), &in.Args[1]); err != nil {
			return nil, p.errf("%s rhs: %v", op, err)
		}
	case "phi":
		in.Op = OpPhi
		t, rest2, err := parseType(rest)
		if err != nil {
			return nil, p.errf("phi: %v", err)
		}
		in.Typ = t
		arms := p.split(strings.TrimSpace(rest2), ',')
		in.Args = p.newArgs(len(arms))
		in.Blocks = p.newBlockPtrs(len(arms))
		for ai, arm := range arms {
			arm = strings.TrimSpace(arm)
			arm = strings.TrimPrefix(arm, "[")
			arm = strings.TrimSuffix(arm, "]")
			// First-comma split, matching strings.SplitN(arm, ",", 2)
			// without the per-arm slice allocation.
			ci := strings.IndexByte(arm, ',')
			if ci < 0 {
				return nil, p.errf("phi arm %q", arm)
			}
			if err := p.operand(t, strings.TrimSpace(arm[:ci]), &in.Args[ai]); err != nil {
				return nil, p.errf("phi value: %v", err)
			}
			b, err := p.block(arm[ci+1:])
			if err != nil {
				return nil, p.errf("phi block: %v", err)
			}
			in.Blocks[ai] = b
		}
	case "select":
		in.Op = OpSelect
		parts := p.split(rest, ',')
		if len(parts) != 3 {
			return nil, p.errf("select wants 3 operands")
		}
		in.Args = p.newArgs(3)
		for i, part := range parts {
			t, v, err := typedOperandTok(part)
			if err != nil {
				return nil, p.errf("select: %v", err)
			}
			if i == 1 {
				in.Typ = t
			}
			if err := p.operand(t, v, &in.Args[i]); err != nil {
				return nil, p.errf("select: %v", err)
			}
		}
	case "call":
		in.Op = OpCall
		t, rest2, err := parseType(rest)
		if err != nil {
			return nil, p.errf("call: %v", err)
		}
		in.Typ = t
		rest2 = strings.TrimSpace(rest2)
		if !strings.HasPrefix(rest2, "@") {
			return nil, p.errf("call: expected @callee in %q", rest2)
		}
		open := strings.Index(rest2, "(")
		close := strings.LastIndex(rest2, ")")
		if open < 0 || close < open {
			return nil, p.errf("call: malformed args")
		}
		in.Callee = rest2[1:open]
		args := strings.TrimSpace(rest2[open+1 : close])
		if args != "" {
			parts := p.split(args, ',')
			in.Args = p.newArgs(len(parts))
			for i, part := range parts {
				t, v, err := typedOperandTok(part)
				if err != nil {
					return nil, p.errf("call arg: %v", err)
				}
				if err := p.operand(t, v, &in.Args[i]); err != nil {
					return nil, p.errf("call arg: %v", err)
				}
			}
		}
	case "br":
		if strings.HasPrefix(rest, "label ") {
			in.Op = OpBr
			in.Typ = Void
			b, err := p.block(rest)
			if err != nil {
				return nil, p.errf("br: %v", err)
			}
			in.Blocks = p.newBlockPtrs(1)
			in.Blocks[0] = b
		} else {
			in.Op = OpCondBr
			in.Typ = Void
			parts := p.split(rest, ',')
			if len(parts) != 3 {
				return nil, p.errf("condbr wants cond + 2 labels")
			}
			t, v, err := typedOperandTok(parts[0])
			if err != nil {
				return nil, p.errf("condbr cond: %v", err)
			}
			in.Args = p.newArgs(1)
			if err := p.operand(t, v, &in.Args[0]); err != nil {
				return nil, p.errf("condbr cond: %v", err)
			}
			bt, err := p.block(parts[1])
			if err != nil {
				return nil, p.errf("condbr: %v", err)
			}
			bf, err := p.block(parts[2])
			if err != nil {
				return nil, p.errf("condbr: %v", err)
			}
			in.Blocks = p.newBlockPtrs(2)
			in.Blocks[0], in.Blocks[1] = bt, bf
		}
	case "ret":
		in.Op = OpRet
		in.Typ = Void
		if rest != "void" && rest != "" {
			t, v, err := typedOperandTok(rest)
			if err != nil {
				return nil, p.errf("ret: %v", err)
			}
			in.Args = p.newArgs(1)
			if err := p.operand(t, v, &in.Args[0]); err != nil {
				return nil, p.errf("ret: %v", err)
			}
		}
	case "unreachable":
		in.Op = OpUnreachable
		in.Typ = Void
	default:
		id, ok := opTab.Resolve(op)
		if !ok {
			return nil, p.errf("unknown opcode %q", op)
		}
		o := opByID[id]
		if o.IsBinary() {
			in.Op = o
			parts := p.split(rest, ',')
			if len(parts) != 2 {
				return nil, p.errf("%s wants 2 operands", op)
			}
			t, v, err := typedOperandTok(parts[0])
			if err != nil {
				return nil, p.errf("%s: %v", op, err)
			}
			in.Typ = t
			in.Args = p.newArgs(2)
			if err := p.operand(t, v, &in.Args[0]); err != nil {
				return nil, p.errf("%s: %v", op, err)
			}
			if err := p.operand(t, strings.TrimSpace(parts[1]), &in.Args[1]); err != nil {
				return nil, p.errf("%s: %v", op, err)
			}
			break
		}
		// Conversion op.
		in.Op = o
		toIdx := strings.LastIndex(rest, " to ")
		if toIdx < 0 {
			return nil, p.errf("%s wants 'to'", op)
		}
		t, v, err := typedOperandTok(rest[:toIdx])
		if err != nil {
			return nil, p.errf("%s: %v", op, err)
		}
		in.Typ, _, err = parseType(strings.TrimSpace(rest[toIdx+4:]))
		if err != nil {
			return nil, p.errf("%s: %v", op, err)
		}
		in.Args = p.newArgs(1)
		if err := p.operand(t, v, &in.Args[0]); err != nil {
			return nil, p.errf("%s: %v", op, err)
		}
	}
	return in, nil
}

// parseConst is parseConstToken allocating from the parser's arena.
func (p *parser) parseConst(t *Type, tok string) (*Const, error) {
	c := p.newConst()
	if err := fillConst(c, t, tok); err != nil {
		return nil, err
	}
	return c, nil
}

// unquoteIRString decodes LLVM's "..." escaping with \xx hex escapes.
func unquoteIRString(s string) (string, error) {
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("malformed string literal %q", s)
	}
	body := s[1 : len(s)-1]
	var sb strings.Builder
	for i := 0; i < len(body); i++ {
		if body[i] == '\\' {
			if i+2 >= len(body) {
				return "", fmt.Errorf("truncated escape in %q", s)
			}
			v, err := strconv.ParseUint(body[i+1:i+3], 16, 8)
			if err != nil {
				return "", fmt.Errorf("bad escape in %q", s)
			}
			sb.WriteByte(byte(v))
			i += 2
		} else {
			sb.WriteByte(body[i])
		}
	}
	return sb.String(), nil
}

// fillConst parses an integer/float/null/undef literal of type t into c.
func fillConst(c *Const, t *Type, tok string) error {
	switch tok {
	case "null":
		*c = Const{Typ: t, IsNull: true}
		return nil
	case "undef":
		*c = Const{Typ: t, IsUndef: true}
		return nil
	case "true":
		*c = Const{Typ: I1, Int: 1}
		return nil
	case "false":
		*c = Const{Typ: I1, Int: 0}
		return nil
	}
	if t.IsFloat() {
		f, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return fmt.Errorf("bad float literal %q", tok)
		}
		*c = Const{Typ: F64, Float: f, IsFloat: true}
		return nil
	}
	i, err := strconv.ParseInt(tok, 10, 64)
	if err != nil {
		return fmt.Errorf("bad int literal %q", tok)
	}
	*c = Const{Typ: t, Int: i}
	return nil
}

// parseConstToken parses an integer/float/null/undef literal of type t.
func parseConstToken(t *Type, tok string) (*Const, error) {
	c := new(Const)
	if err := fillConst(c, t, tok); err != nil {
		return nil, err
	}
	return c, nil
}

// parseType parses a leading type from s, returning the remainder.
func parseType(s string) (*Type, string, error) {
	s = strings.TrimSpace(s)
	var base *Type
	switch {
	case strings.HasPrefix(s, "void"):
		base, s = Void, s[4:]
	case strings.HasPrefix(s, "i1") && !strings.HasPrefix(s, "i16"):
		base, s = I1, s[2:]
	case strings.HasPrefix(s, "i8"):
		base, s = I8, s[2:]
	case strings.HasPrefix(s, "i32"):
		base, s = I32, s[3:]
	case strings.HasPrefix(s, "i64"):
		base, s = I64, s[3:]
	case strings.HasPrefix(s, "double"):
		base, s = F64, s[6:]
	case strings.HasPrefix(s, "label"):
		base, s = LabelTy, s[5:]
	case strings.HasPrefix(s, "%struct."):
		rest := s[len("%struct."):]
		end := 0
		for end < len(rest) && (isIdentChar(rest[end])) {
			end++
		}
		name := rest[:end]
		st, ok := namedStructs[name]
		if !ok {
			st = StructOf(name)
			namedStructs[name] = st
		}
		base, s = st, rest[end:]
	case strings.HasPrefix(s, "["):
		close := matchBracket(s, 0, '[', ']')
		if close < 0 {
			return nil, "", fmt.Errorf("unterminated array type in %q", s)
		}
		inner := s[1:close]
		xIdx := strings.Index(inner, " x ")
		if xIdx < 0 {
			return nil, "", fmt.Errorf("malformed array type %q", inner)
		}
		n, err := strconv.Atoi(strings.TrimSpace(inner[:xIdx]))
		if err != nil {
			return nil, "", fmt.Errorf("bad array length in %q", inner)
		}
		elem, rest, err := parseType(inner[xIdx+3:])
		if err != nil {
			return nil, "", err
		}
		if strings.TrimSpace(rest) != "" {
			return nil, "", fmt.Errorf("trailing %q in array type", rest)
		}
		base, s = ArrayOf(n, elem), s[close+1:]
	default:
		return nil, "", fmt.Errorf("unknown type at %q", s)
	}
	for strings.HasPrefix(s, "*") {
		base = ptrTo(base)
		s = s[1:]
	}
	return base, s, nil
}

func isIdentChar(c byte) bool {
	return c == '_' || c == '.' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

// matchBracket returns the index of the bracket matching s[start].
func matchBracket(s string, start int, open, close byte) int {
	depth := 0
	for i := start; i < len(s); i++ {
		switch s[i] {
		case open:
			depth++
		case close:
			depth--
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

// appendSplitTop is splitTop appending into dst (scratch-buffer form).
func appendSplitTop(dst []string, s string, sep byte) []string {
	depth := 0
	last := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '[', '{':
			depth++
		case ')', ']', '}':
			depth--
		default:
			if s[i] == sep && depth == 0 {
				dst = append(dst, s[last:i])
				last = i + 1
			}
		}
	}
	return append(dst, s[last:])
}

// splitTop splits s on sep at bracket depth zero ((), [], {}).
func splitTop(s string, sep byte) []string {
	return appendSplitTop(nil, s, sep)
}
