package ir

import "fmt"

// Builder incrementally constructs a function's blocks and instructions,
// assigning fresh SSA names. It is the API the front-end uses to lower the
// AST, and the API tests use to construct fixtures.
type Builder struct {
	F      *Func
	Cur    *Block
	nextID int
	nextBB int
}

// NewBuilder returns a builder positioned at a fresh entry block of f.
func NewBuilder(f *Func) *Builder {
	b := &Builder{F: f}
	entry := b.NewBlock("entry")
	b.SetBlock(entry)
	return b
}

// NewBlock creates (and appends) a new block with a unique name derived
// from hint.
func (b *Builder) NewBlock(hint string) *Block {
	name := hint
	if b.F.BlockByName(name) != nil {
		name = fmt.Sprintf("%s%d", hint, b.nextBB)
		for b.F.BlockByName(name) != nil {
			b.nextBB++
			name = fmt.Sprintf("%s%d", hint, b.nextBB)
		}
	}
	b.nextBB++
	blk := &Block{Name: name, Parent: b.F}
	b.F.Blocks = append(b.F.Blocks, blk)
	return blk
}

// SetBlock moves the insertion point to blk.
func (b *Builder) SetBlock(blk *Block) { b.Cur = blk }

// fresh returns a new unique SSA name.
func (b *Builder) fresh() string {
	b.nextID++
	return fmt.Sprintf("t%d", b.nextID)
}

func (b *Builder) emit(in *Instr) *Instr {
	if in.Typ != nil && in.Typ.Kind != KVoid && in.Name == "" {
		in.Name = b.fresh()
	}
	return b.Cur.Append(in)
}

// Terminated reports whether the current block already has a terminator.
func (b *Builder) Terminated() bool { return b.Cur != nil && b.Cur.Term() != nil }

// Alloca emits an alloca of elem (with optional array count n>1).
func (b *Builder) Alloca(elem *Type, n int) *Instr {
	in := &Instr{Op: OpAlloca, Typ: PtrTo(elem), AllocTy: elem}
	if n > 1 {
		in.Args = []Value{ConstInt(I32, int64(n))}
	}
	return b.emit(in)
}

// Load emits a load of the element type behind ptr.
func (b *Builder) Load(ptr Value) *Instr {
	pt := ptr.Type()
	if !pt.IsPtr() {
		panic(fmt.Sprintf("ir: load of non-pointer %s", pt))
	}
	return b.emit(&Instr{Op: OpLoad, Typ: pt.Elem, Args: []Value{ptr}})
}

// Store emits a store of v through ptr.
func (b *Builder) Store(v, ptr Value) *Instr {
	return b.emit(&Instr{Op: OpStore, Typ: Void, Args: []Value{v, ptr}})
}

// GEP emits an address computation: elemTy is the pointee type of ptr; the
// result points at the indexed element.
func (b *Builder) GEP(ptr Value, resultElem *Type, idx ...Value) *Instr {
	args := append([]Value{ptr}, idx...)
	return b.emit(&Instr{Op: OpGEP, Typ: PtrTo(resultElem), Args: args})
}

// Bin emits a binary arithmetic instruction.
func (b *Builder) Bin(op Opcode, x, y Value) *Instr {
	if !op.IsBinary() {
		panic("ir: Bin with non-binary opcode " + op.String())
	}
	return b.emit(&Instr{Op: op, Typ: x.Type(), Args: []Value{x, y}})
}

// ICmp emits an integer comparison producing i1.
func (b *Builder) ICmp(p Pred, x, y Value) *Instr {
	return b.emit(&Instr{Op: OpICmp, Typ: I1, Cmp: p, Args: []Value{x, y}})
}

// FCmp emits a float comparison producing i1.
func (b *Builder) FCmp(p Pred, x, y Value) *Instr {
	return b.emit(&Instr{Op: OpFCmp, Typ: I1, Cmp: p, Args: []Value{x, y}})
}

// Conv emits a conversion instruction to type to.
func (b *Builder) Conv(op Opcode, v Value, to *Type) *Instr {
	if !op.IsConv() {
		panic("ir: Conv with non-conversion opcode " + op.String())
	}
	return b.emit(&Instr{Op: op, Typ: to, Args: []Value{v}})
}

// Phi emits an (initially empty) phi of type t at the block head.
func (b *Builder) Phi(t *Type) *Instr {
	in := &Instr{Op: OpPhi, Typ: t, Name: b.fresh()}
	return b.Cur.InsertFront(in)
}

// Select emits a select cond ? x : y.
func (b *Builder) Select(cond, x, y Value) *Instr {
	return b.emit(&Instr{Op: OpSelect, Typ: x.Type(), Args: []Value{cond, x, y}})
}

// Call emits a call to callee returning ret.
func (b *Builder) Call(callee string, ret *Type, args ...Value) *Instr {
	return b.emit(&Instr{Op: OpCall, Typ: ret, Callee: callee, Args: args})
}

// Br emits an unconditional branch.
func (b *Builder) Br(target *Block) *Instr {
	return b.emit(&Instr{Op: OpBr, Typ: Void, Blocks: []*Block{target}})
}

// CondBr emits a conditional branch.
func (b *Builder) CondBr(cond Value, ifTrue, ifFalse *Block) *Instr {
	return b.emit(&Instr{Op: OpCondBr, Typ: Void, Args: []Value{cond}, Blocks: []*Block{ifTrue, ifFalse}})
}

// Ret emits a return; v may be nil for void returns.
func (b *Builder) Ret(v Value) *Instr {
	in := &Instr{Op: OpRet, Typ: Void}
	if v != nil {
		in.Args = []Value{v}
	}
	return b.emit(in)
}

// Unreachable emits an unreachable terminator.
func (b *Builder) Unreachable() *Instr {
	return b.emit(&Instr{Op: OpUnreachable, Typ: Void})
}
