package ir

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildFixture constructs a small function with control flow, memory ops,
// a call, and a phi, exercising every printer path.
func buildFixture() *Module {
	m := NewModule("fixture")
	m.AddGlobal(&Global{Name: "g", Elem: I32, Init: ConstInt(I32, 7)})
	send := m.AddFunc(&Func{Name: "MPI_Send", Decl: true,
		Sig: FuncOf(I32, PtrTo(I8), I32, I32, I32, I32, I32)})
	_ = send

	f := m.AddFunc(&Func{Name: "main", Sig: FuncOf(I32, I32), Params: []*Param{{Name: "argc", Typ: I32}}})
	b := NewBuilder(f)
	buf := b.Alloca(ArrayOf(4, I32), 1)
	p0 := b.GEP(buf, I32, ConstInt(I64, 0), ConstInt(I64, 0))
	b.Store(ConstInt(I32, 42), p0)
	v := b.Load(p0)
	sum := b.Bin(OpAdd, v, f.Params[0])
	cmp := b.ICmp(PredSGT, sum, ConstInt(I32, 10))
	then := b.NewBlock("then")
	els := b.NewBlock("else")
	exit := b.NewBlock("exit")
	b.CondBr(cmp, then, els)
	b.SetBlock(then)
	cast := b.Conv(OpBitcast, p0, PtrTo(I8))
	b.Call("MPI_Send", I32, cast, ConstInt(I32, 4), ConstInt(I32, 1), ConstInt(I32, 0), ConstInt(I32, 9), ConstInt(I32, 91))
	b.Br(exit)
	b.SetBlock(els)
	dbl := b.Bin(OpMul, sum, ConstInt(I32, 2))
	b.Br(exit)
	b.SetBlock(exit)
	phi := b.Phi(I32)
	phi.Args = []Value{sum, dbl}
	phi.Blocks = []*Block{then, els}
	b.Ret(phi)
	return m
}

func TestVerifyFixture(t *testing.T) {
	m := buildFixture()
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	m := buildFixture()
	text := Print(m)
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, text)
	}
	text2 := Print(m2)
	if text != text2 {
		t.Fatalf("round-trip mismatch:\n--- first ---\n%s\n--- second ---\n%s", text, text2)
	}
	if err := m2.Verify(); err != nil {
		t.Fatalf("Verify after parse: %v", err)
	}
}

func TestTypeString(t *testing.T) {
	cases := []struct {
		t    *Type
		want string
	}{
		{I32, "i32"},
		{PtrTo(I8), "i8*"},
		{ArrayOf(10, F64), "[10 x double]"},
		{PtrTo(PtrTo(I32)), "i32**"},
		{StatusType, "%struct.MPI_Status"},
		{FuncOf(Void, I32, PtrTo(I8)), "void (i32, i8*)"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Type.String() = %q, want %q", got, c.want)
		}
	}
}

// TestTypeAppendString pins AppendString to String byte-for-byte: the
// tokeniser's zero-alloc path must produce the exact vocabulary strings the
// map-based path produced, or interned ids would not match trained tables.
func TestTypeAppendString(t *testing.T) {
	var nilType *Type
	types := []*Type{nilType, Void, I1, I8, I32, I64, F64, LabelTy,
		PtrTo(I8), PtrTo(PtrTo(I32)), ArrayOf(10, F64), ArrayOf(3, PtrTo(I8)),
		StatusType, &Type{Kind: KStruct, Fields: []*Type{I32, PtrTo(I8)}},
		FuncOf(Void, I32, PtrTo(I8)), FuncOf(I64)}
	buf := make([]byte, 0, 64)
	for _, typ := range types {
		buf = typ.AppendString(buf[:0])
		if string(buf) != typ.String() {
			t.Errorf("AppendString = %q, String = %q", buf, typ.String())
		}
	}
}

func TestParseTypeRoundTrip(t *testing.T) {
	types := []*Type{I1, I8, I32, I64, F64, PtrTo(I32), ArrayOf(3, PtrTo(I8)),
		PtrTo(ArrayOf(2, I64)), StatusType, PtrTo(StatusType)}
	for _, typ := range types {
		got, rest, err := parseType(typ.String())
		if err != nil {
			t.Fatalf("parseType(%q): %v", typ.String(), err)
		}
		if rest != "" {
			t.Fatalf("parseType(%q) left %q", typ.String(), rest)
		}
		if !got.Equal(typ) {
			t.Errorf("parseType(%q) = %s", typ.String(), got)
		}
	}
}

func TestTypeEqual(t *testing.T) {
	if !ArrayOf(4, I32).Equal(ArrayOf(4, I32)) {
		t.Error("equal array types not Equal")
	}
	if ArrayOf(4, I32).Equal(ArrayOf(5, I32)) {
		t.Error("different-length arrays Equal")
	}
	if PtrTo(I32).Equal(PtrTo(I64)) {
		t.Error("different pointer types Equal")
	}
	if !FuncOf(I32, I32).Equal(FuncOf(I32, I32)) {
		t.Error("equal func types not Equal")
	}
}

func TestSizeOf(t *testing.T) {
	cases := []struct {
		t    *Type
		want int
	}{
		{I8, 1}, {I32, 4}, {I64, 8}, {F64, 8}, {PtrTo(I8), 8},
		{ArrayOf(10, I32), 40}, {StatusType, 12},
	}
	for _, c := range cases {
		if got := SizeOf(c.t); got != c.want {
			t.Errorf("SizeOf(%s) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestBlockSuccsAndPreds(t *testing.T) {
	m := buildFixture()
	f := m.FuncByName("main")
	entry := f.Entry()
	succs := entry.Succs()
	if len(succs) != 2 {
		t.Fatalf("entry succs = %d, want 2", len(succs))
	}
	preds := Predecessors(f)
	exit := f.BlockByName("exit")
	if len(preds[exit]) != 2 {
		t.Errorf("exit preds = %d, want 2", len(preds[exit]))
	}
}

func TestReversePostorder(t *testing.T) {
	m := buildFixture()
	f := m.FuncByName("main")
	rpo := ReversePostorder(f)
	if len(rpo) != len(f.Blocks) {
		t.Fatalf("rpo covers %d blocks, want %d", len(rpo), len(f.Blocks))
	}
	if rpo[0] != f.Entry() {
		t.Error("rpo does not start at entry")
	}
	pos := map[*Block]int{}
	for i, b := range rpo {
		pos[b] = i
	}
	// In this acyclic CFG every edge must go forward in RPO.
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			if pos[s] <= pos[b] {
				t.Errorf("edge %s->%s not forward in RPO", b.Name, s.Name)
			}
		}
	}
}

func TestVerifyCatchesUnterminated(t *testing.T) {
	m := NewModule("bad")
	f := m.AddFunc(&Func{Name: "f", Sig: FuncOf(Void)})
	f.Blocks = append(f.Blocks, &Block{Name: "entry", Parent: f})
	if err := m.Verify(); err == nil {
		t.Error("Verify accepted unterminated block")
	}
}

func TestVerifyCatchesMisplacedPhi(t *testing.T) {
	m := NewModule("bad")
	f := m.AddFunc(&Func{Name: "f", Sig: FuncOf(Void)})
	b := NewBuilder(f)
	add := b.Bin(OpAdd, ConstInt(I32, 1), ConstInt(I32, 2))
	phi := &Instr{Op: OpPhi, Typ: I32, Name: "p", Args: []Value{add}, Blocks: []*Block{b.Cur}}
	b.Cur.Append(phi)
	b.Ret(nil)
	if err := m.Verify(); err == nil {
		t.Error("Verify accepted phi after non-phi")
	}
}

func TestReplaceUses(t *testing.T) {
	m := buildFixture()
	f := m.FuncByName("main")
	var load *Instr
	for _, in := range f.Entry().Instrs {
		if in.Op == OpLoad {
			load = in
		}
	}
	c := ConstInt(I32, 99)
	ReplaceUses(f, load, c)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if a == Value(load) {
					t.Fatal("stale use of replaced value")
				}
			}
		}
	}
}

func TestCollectUses(t *testing.T) {
	m := buildFixture()
	f := m.FuncByName("main")
	uses := CollectUses(f)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpAdd && uses[in] < 2 {
				t.Errorf("add has %d uses, want >= 2", uses[in])
			}
		}
	}
}

func TestMPICallName(t *testing.T) {
	m := buildFixture()
	f := m.FuncByName("main")
	found := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if n := in.MPICallName(); n != "" {
				if n != "MPI_Send" {
					t.Errorf("MPICallName = %q", n)
				}
				found = true
			}
		}
	}
	if !found {
		t.Error("no MPI call found in fixture")
	}
}

func TestConstIdent(t *testing.T) {
	cases := []struct {
		c    *Const
		want string
	}{
		{ConstInt(I32, -5), "-5"},
		{ConstFloat(2.5), "2.5"},
		{ConstNull(PtrTo(I8)), "null"},
		{ConstUndef(I32), "undef"},
		{ConstBool(true), "1"},
	}
	for _, c := range cases {
		if got := c.c.Ident(); got != c.want {
			t.Errorf("Ident() = %q, want %q", got, c.want)
		}
	}
}

// TestParsePrintQuickConsts property-checks constant print/parse round trips.
func TestParsePrintQuickConsts(t *testing.T) {
	f := func(v int64) bool {
		c := ConstInt(I64, v)
		got, err := parseConstToken(I64, c.Ident())
		return err == nil && got.Int == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// randModule builds a random (but structurally valid) straight-line module
// for property tests.
func randModule(rng *rand.Rand) *Module {
	m := NewModule("rand")
	f := m.AddFunc(&Func{Name: "f", Sig: FuncOf(I32, I32, I32),
		Params: []*Param{{Name: "a", Typ: I32}, {Name: "b", Typ: I32}}})
	b := NewBuilder(f)
	vals := []Value{f.Params[0], f.Params[1], ConstInt(I32, rng.Int63n(100))}
	ops := []Opcode{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor}
	n := 3 + rng.Intn(12)
	for i := 0; i < n; i++ {
		x := vals[rng.Intn(len(vals))]
		y := vals[rng.Intn(len(vals))]
		v := b.Bin(ops[rng.Intn(len(ops))], x, y)
		vals = append(vals, v)
	}
	b.Ret(vals[len(vals)-1])
	return m
}

func TestQuickRoundTripRandomModules(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		m := randModule(rng)
		text := Print(m)
		m2, err := Parse(text)
		if err != nil {
			t.Fatalf("iteration %d: Parse: %v\n%s", i, err, text)
		}
		if got := Print(m2); got != text {
			t.Fatalf("iteration %d: round trip mismatch", i)
		}
	}
}

func TestSplitTop(t *testing.T) {
	got := splitTop("a, [ b, c ], d(e, f)", ',')
	if len(got) != 3 {
		t.Fatalf("splitTop = %d parts (%q), want 3", len(got), got)
	}
	if strings.TrimSpace(got[1]) != "[ b, c ]" {
		t.Errorf("part 1 = %q", got[1])
	}
}

func TestParseDeclareVariadic(t *testing.T) {
	m, err := Parse("declare i32 @printf(i8* %fmt, ...)\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	f := m.FuncByName("printf")
	if f == nil || !f.Decl || !f.Variadic {
		t.Fatalf("printf not parsed as variadic declaration: %+v", f)
	}
}
