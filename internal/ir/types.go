// Package ir implements a typed, SSA-oriented intermediate representation
// modelled on LLVM IR. It is the code representation every other layer of
// the reproduction consumes: the front-end lowers MPI-C programs into it,
// the pass pipelines (-O0/-O2/-Os) transform it, IR2Vec embeds it, the
// ProGraML-style graph builder walks it, and the MPI runtime simulator
// interprets it.
//
// The representation keeps LLVM's essential structure — modules holding
// globals and functions, functions holding basic blocks, blocks holding
// instructions that produce typed values — along with a textual syntax with
// a printer and parser that round-trip.
package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the type constructors of the IR type system.
type Kind int

// Type kinds.
const (
	KVoid Kind = iota
	KInt1
	KInt8
	KInt32
	KInt64
	KFloat64
	KPtr
	KArray
	KStruct
	KFunc
	KLabel
)

// Type is an IR type. Types are interned by the constructors below so that
// equal types are pointer-equal for the scalar kinds; aggregate types
// compare structurally via Equal.
type Type struct {
	Kind   Kind
	Elem   *Type   // element type for KPtr and KArray
	Len    int     // array length for KArray
	Fields []*Type // field types for KStruct
	Params []*Type // parameter types for KFunc
	Ret    *Type   // return type for KFunc
	SName  string  // optional struct tag (e.g. "MPI_Status")
}

// Singleton scalar types.
var (
	Void    = &Type{Kind: KVoid}
	I1      = &Type{Kind: KInt1}
	I8      = &Type{Kind: KInt8}
	I32     = &Type{Kind: KInt32}
	I64     = &Type{Kind: KInt64}
	F64     = &Type{Kind: KFloat64}
	LabelTy = &Type{Kind: KLabel}
)

// PtrTo returns the pointer type *elem.
func PtrTo(elem *Type) *Type { return &Type{Kind: KPtr, Elem: elem} }

// ArrayOf returns the array type [n x elem].
func ArrayOf(n int, elem *Type) *Type { return &Type{Kind: KArray, Len: n, Elem: elem} }

// StructOf returns a struct type with the given tag and field types.
func StructOf(name string, fields ...*Type) *Type {
	return &Type{Kind: KStruct, SName: name, Fields: fields}
}

// FuncOf returns the function type ret(params...).
func FuncOf(ret *Type, params ...*Type) *Type {
	return &Type{Kind: KFunc, Ret: ret, Params: params}
}

// IsInt reports whether t is an integer type of any width.
func (t *Type) IsInt() bool {
	switch t.Kind {
	case KInt1, KInt8, KInt32, KInt64:
		return true
	}
	return false
}

// IsFloat reports whether t is a floating-point type.
func (t *Type) IsFloat() bool { return t.Kind == KFloat64 }

// IsPtr reports whether t is a pointer type.
func (t *Type) IsPtr() bool { return t.Kind == KPtr }

// IsAggregate reports whether t is an array or struct type.
func (t *Type) IsAggregate() bool { return t.Kind == KArray || t.Kind == KStruct }

// Bits returns the bit width of an integer type (0 for non-integers).
func (t *Type) Bits() int {
	switch t.Kind {
	case KInt1:
		return 1
	case KInt8:
		return 8
	case KInt32:
		return 32
	case KInt64:
		return 64
	}
	return 0
}

// Equal reports structural type equality.
func (t *Type) Equal(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case KVoid, KInt1, KInt8, KInt32, KInt64, KFloat64, KLabel:
		return true
	case KPtr:
		return t.Elem.Equal(o.Elem)
	case KArray:
		return t.Len == o.Len && t.Elem.Equal(o.Elem)
	case KStruct:
		if len(t.Fields) != len(o.Fields) {
			return false
		}
		for i := range t.Fields {
			if !t.Fields[i].Equal(o.Fields[i]) {
				return false
			}
		}
		return true
	case KFunc:
		if !t.Ret.Equal(o.Ret) || len(t.Params) != len(o.Params) {
			return false
		}
		for i := range t.Params {
			if !t.Params[i].Equal(o.Params[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// AppendString appends t's String() rendering to dst without any interior
// allocation, for hot paths that assemble type-derived tokens in a
// reusable buffer (the IR2Vec tokeniser, the ProGraML vocabulary).
func (t *Type) AppendString(dst []byte) []byte {
	if t == nil {
		return append(dst, "<nil-type>"...)
	}
	switch t.Kind {
	case KVoid:
		return append(dst, "void"...)
	case KInt1:
		return append(dst, "i1"...)
	case KInt8:
		return append(dst, "i8"...)
	case KInt32:
		return append(dst, "i32"...)
	case KInt64:
		return append(dst, "i64"...)
	case KFloat64:
		return append(dst, "double"...)
	case KLabel:
		return append(dst, "label"...)
	case KPtr:
		return append(t.Elem.AppendString(dst), '*')
	case KArray:
		dst = append(dst, '[')
		dst = strconv.AppendInt(dst, int64(t.Len), 10)
		dst = append(dst, " x "...)
		dst = t.Elem.AppendString(dst)
		return append(dst, ']')
	case KStruct:
		if t.SName != "" {
			return append(append(dst, "%struct."...), t.SName...)
		}
		dst = append(dst, '{')
		for i, f := range t.Fields {
			if i > 0 {
				dst = append(dst, ", "...)
			}
			dst = f.AppendString(dst)
		}
		return append(dst, '}')
	case KFunc:
		dst = t.Ret.AppendString(dst)
		dst = append(dst, " ("...)
		for i, p := range t.Params {
			if i > 0 {
				dst = append(dst, ", "...)
			}
			dst = p.AppendString(dst)
		}
		return append(dst, ')')
	}
	return append(dst, "<?>"...)
}

// String renders the type in LLVM-like syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil-type>"
	}
	switch t.Kind {
	case KVoid:
		return "void"
	case KInt1:
		return "i1"
	case KInt8:
		return "i8"
	case KInt32:
		return "i32"
	case KInt64:
		return "i64"
	case KFloat64:
		return "double"
	case KLabel:
		return "label"
	case KPtr:
		return t.Elem.String() + "*"
	case KArray:
		return fmt.Sprintf("[%d x %s]", t.Len, t.Elem)
	case KStruct:
		if t.SName != "" {
			return "%struct." + t.SName
		}
		parts := make([]string, len(t.Fields))
		for i, f := range t.Fields {
			parts[i] = f.String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case KFunc:
		parts := make([]string, len(t.Params))
		for i, p := range t.Params {
			parts[i] = p.String()
		}
		return fmt.Sprintf("%s (%s)", t.Ret, strings.Join(parts, ", "))
	}
	return "<?>"
}

// SizeOf returns the abstract size in bytes of a value of type t, used by
// alloca layout and GEP arithmetic in the interpreter.
func SizeOf(t *Type) int {
	switch t.Kind {
	case KInt1, KInt8:
		return 1
	case KInt32:
		return 4
	case KInt64, KFloat64, KPtr:
		return 8
	case KArray:
		return t.Len * SizeOf(t.Elem)
	case KStruct:
		n := 0
		for _, f := range t.Fields {
			n += SizeOf(f)
		}
		return n
	}
	return 0
}
