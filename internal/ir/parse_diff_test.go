package ir_test

import (
	"sync"
	"testing"

	"mpidetect/internal/core"
	"mpidetect/internal/dataset"
	"mpidetect/internal/ir"
	"mpidetect/internal/irgen"
)

// goldenSources lowers the MBI and CorrBench corpora (the same generator
// seeds the serving tests use) to textual IR once per test binary. Every
// program in this set is a golden input for the parser pins below.
var (
	goldenOnce sync.Once
	goldenSrcs []string
)

func goldenSources(tb testing.TB) []string {
	tb.Helper()
	goldenOnce.Do(func() {
		for _, ds := range []*dataset.Dataset{
			dataset.GenerateCorrBench(7, false),
			dataset.GenerateMBI(1),
		} {
			for _, c := range ds.Codes {
				goldenSrcs = append(goldenSrcs, ir.Print(irgen.MustLower(c.Prog)))
			}
		}
	})
	if len(goldenSrcs) == 0 {
		tb.Fatal("empty golden corpus")
	}
	return goldenSrcs
}

// mutations applies small syntactic corruptions so the differential test
// covers error paths too, not just the happy path the corpus exercises.
func mutations(src string) []string {
	muts := []string{
		src + "\nbogus top level\n",
		"; module x\ndefine i32 @f() {\nentry:\n  %a = frob i32 1, 2\n  ret i32 0\n}\n",
		src + "\ndefine void @trunc() {\n",
	}
	if len(src) > 40 {
		muts = append(muts, src[:len(src)/2], src[len(src)/4:])
	}
	return muts
}

// checkAgainstReference asserts the zero-copy parser and the retained
// reference parser agree byte-for-byte: same error (or none) and the same
// printed module.
func checkAgainstReference(t *testing.T, src string) {
	t.Helper()
	m1, err1 := ir.Parse(src)
	m2, err2 := ir.ParseReference(src)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("error disagreement:\n  new: %v\n  ref: %v\nsource:\n%s", err1, err2, src)
	}
	if err1 != nil {
		if err1.Error() != err2.Error() {
			t.Fatalf("diagnostic drift:\n  new: %v\n  ref: %v\nsource:\n%s", err1, err2, src)
		}
		return
	}
	p1, p2 := ir.Print(m1), ir.Print(m2)
	if p1 != p2 {
		t.Fatalf("module drift:\n--- new ---\n%s\n--- ref ---\n%s", p1, p2)
	}
}

func TestParseMatchesReference(t *testing.T) {
	for _, src := range goldenSources(t) {
		checkAgainstReference(t, src)
		for _, mut := range mutations(src) {
			checkAgainstReference(t, mut)
		}
	}
}

// TestParseRoundTripCorpus pins Parse(Print(m)) == m (via print identity)
// and digest stability for every golden-corpus program — the drift the
// verdict goldens cannot see, because a silently lossy parse would still
// produce *some* verdict.
func TestParseRoundTripCorpus(t *testing.T) {
	for i, src := range goldenSources(t) {
		m, err := ir.Parse(src)
		if err != nil {
			t.Fatalf("program %d: Parse: %v", i, err)
		}
		printed := ir.Print(m)
		m2, err := ir.Parse(printed)
		if err != nil {
			t.Fatalf("program %d: reparse: %v", i, err)
		}
		if reprinted := ir.Print(m2); reprinted != printed {
			t.Fatalf("program %d: round-trip drift:\n--- first ---\n%s\n--- second ---\n%s",
				i, printed, reprinted)
		}
		d1 := core.DigestIRKeyed("pin", src)
		d2 := core.DigestIRKeyed("pin", printed)
		if d1 != d2 {
			t.Fatalf("program %d: digest drift across round-trip: %s != %s", i, d1, d2)
		}
	}
}

// TestParseAllocs pins the arena/pooled-scratch parse: the line-slice
// implementation allocated per token group (~230 allocations on a corpus
// program — the split line slice, a splitTop slice per instruction, one
// Instr, one operand slice and one Const per mention). The arena path must
// stay at a few chunk allocations plus the module skeleton, so per-
// instruction allocation can never quietly come back.
func TestParseAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector (sync.Pool caching is disabled)")
	}
	srcs := goldenSources(t)
	for _, src := range srcs[:4] {
		ir.MustParse(src) // warm the parser pool
		allocs := testing.AllocsPerRun(50, func() { ir.MustParse(src) })
		if allocs > 32 {
			t.Fatalf("Parse allocates %v times per call, want <= 32 (module skeleton + arena chunks)", allocs)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	srcs := goldenSources(b)
	if len(srcs) > 8 {
		srcs = srcs[:8]
	}
	var bytes int64
	for _, s := range srcs {
		bytes += int64(len(s))
	}
	b.SetBytes(bytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range srcs {
			if _, err := ir.Parse(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkParseReference prices the retained line-splitting parser on
// the same corpus, so the zero-copy parser's gain stays measurable in
// every bench run rather than only in the PR that introduced it.
func BenchmarkParseReference(b *testing.B) {
	srcs := goldenSources(b)
	if len(srcs) > 8 {
		srcs = srcs[:8]
	}
	var bytes int64
	for _, s := range srcs {
		bytes += int64(len(s))
	}
	b.SetBytes(bytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range srcs {
			if _, err := ir.ParseReference(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}
