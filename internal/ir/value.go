package ir

import (
	"fmt"
	"strconv"
)

// Value is anything that can appear as an instruction operand: constants,
// function parameters, globals, functions, and instructions themselves.
type Value interface {
	// Type returns the value's IR type.
	Type() *Type
	// Ident returns the value's reference syntax (e.g. "%x", "@g", "42").
	Ident() string
}

// Const is a constant value: integer, float, null pointer, or undef.
type Const struct {
	Typ     *Type
	Int     int64
	Float   float64
	IsFloat bool
	IsNull  bool
	IsUndef bool
}

// ConstInt returns an integer constant of type t.
func ConstInt(t *Type, v int64) *Const { return &Const{Typ: t, Int: v} }

// ConstFloat returns a float constant.
func ConstFloat(v float64) *Const { return &Const{Typ: F64, Float: v, IsFloat: true} }

// ConstNull returns the null pointer constant of pointer type t.
func ConstNull(t *Type) *Const { return &Const{Typ: t, IsNull: true} }

// ConstUndef returns the undef constant of type t.
func ConstUndef(t *Type) *Const { return &Const{Typ: t, IsUndef: true} }

// ConstBool returns an i1 constant.
func ConstBool(b bool) *Const {
	if b {
		return ConstInt(I1, 1)
	}
	return ConstInt(I1, 0)
}

// Type implements Value.
func (c *Const) Type() *Type { return c.Typ }

// Ident implements Value.
func (c *Const) Ident() string {
	switch {
	case c.IsUndef:
		return "undef"
	case c.IsNull:
		return "null"
	case c.IsFloat:
		return strconv.FormatFloat(c.Float, 'g', -1, 64)
	default:
		return strconv.FormatInt(c.Int, 10)
	}
}

// Param is a function parameter.
type Param struct {
	Name string
	Typ  *Type
}

// Type implements Value.
func (p *Param) Type() *Type { return p.Typ }

// Ident implements Value.
func (p *Param) Ident() string { return "%" + p.Name }

// Global is a module-level variable. Its value type is Elem; referring to
// the global yields a pointer to Elem, matching LLVM semantics.
type Global struct {
	Name  string
	Elem  *Type
	Init  *Const // optional scalar initialiser; nil means zeroinitializer
	Str   string // optional byte-array initialiser (c"..." form)
	Const bool
}

// Type implements Value: a global evaluates to a pointer to its element.
func (g *Global) Type() *Type { return PtrTo(g.Elem) }

// Ident implements Value.
func (g *Global) Ident() string { return "@" + g.Name }

// Func is a function definition or declaration.
type Func struct {
	Name     string
	Sig      *Type // KFunc type
	Params   []*Param
	Blocks   []*Block
	Mod      *Module
	Decl     bool // declaration only (extern), e.g. MPI_Send, printf
	Variadic bool
}

// Type implements Value.
func (f *Func) Type() *Type { return PtrTo(f.Sig) }

// Ident implements Value.
func (f *Func) Ident() string { return "@" + f.Name }

// Entry returns the function's entry block (nil for declarations).
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// BlockByName returns the block with the given name, or nil.
func (f *Func) BlockByName(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// NumInstrs returns the total instruction count of the function.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// RemoveBlock deletes block b from the function (does not fix up uses).
func (f *Func) RemoveBlock(b *Block) {
	for i, bb := range f.Blocks {
		if bb == b {
			f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
			return
		}
	}
}

// Block is a basic block: a straight-line instruction sequence ending in a
// terminator (br, condbr, ret, or unreachable).
type Block struct {
	Name   string
	Instrs []*Instr
	Parent *Func
}

// Type implements Value (blocks are label-typed, usable as branch targets).
func (b *Block) Type() *Type { return LabelTy }

// Ident implements Value.
func (b *Block) Ident() string { return "%" + b.Name }

// Term returns the block's terminator instruction, or nil if the block is
// not yet terminated.
func (b *Block) Term() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if last.Op.IsTerm() {
		return last
	}
	return nil
}

// Succs returns the block's successor blocks in terminator order.
func (b *Block) Succs() []*Block {
	t := b.Term()
	if t == nil {
		return nil
	}
	switch t.Op {
	case OpBr:
		return []*Block{t.Blocks[0]}
	case OpCondBr:
		return []*Block{t.Blocks[0], t.Blocks[1]}
	}
	return nil
}

// Append adds an instruction at the end of the block and sets its parent.
func (b *Block) Append(in *Instr) *Instr {
	in.Parent = b
	b.Instrs = append(b.Instrs, in)
	return in
}

// InsertFront inserts an instruction at the start of the block (used for
// phi placement).
func (b *Block) InsertFront(in *Instr) *Instr {
	in.Parent = b
	b.Instrs = append([]*Instr{in}, b.Instrs...)
	return in
}

// RemoveInstr deletes instruction in from the block.
func (b *Block) RemoveInstr(in *Instr) {
	for i, x := range b.Instrs {
		if x == in {
			b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
			return
		}
	}
}

// Phis returns the phi instructions at the head of the block.
func (b *Block) Phis() []*Instr {
	var out []*Instr
	for _, in := range b.Instrs {
		if in.Op != OpPhi {
			break
		}
		out = append(out, in)
	}
	return out
}

// Module is a translation unit: globals plus functions.
type Module struct {
	Name    string
	Globals []*Global
	Funcs   []*Func
}

// NewModule returns an empty module with the given name.
func NewModule(name string) *Module { return &Module{Name: name} }

// FuncByName returns the function with the given name, or nil.
func (m *Module) FuncByName(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// GlobalByName returns the global with the given name, or nil.
func (m *Module) GlobalByName(name string) *Global {
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// AddFunc appends f to the module and back-links it.
func (m *Module) AddFunc(f *Func) *Func {
	f.Mod = m
	m.Funcs = append(m.Funcs, f)
	return f
}

// AddGlobal appends g to the module.
func (m *Module) AddGlobal(g *Global) *Global {
	m.Globals = append(m.Globals, g)
	return g
}

// NumInstrs returns the total instruction count across all functions.
func (m *Module) NumInstrs() int {
	n := 0
	for _, f := range m.Funcs {
		n += f.NumInstrs()
	}
	return n
}

// Defined returns the defined (non-declaration) functions.
func (m *Module) Defined() []*Func {
	var out []*Func
	for _, f := range m.Funcs {
		if !f.Decl {
			out = append(out, f)
		}
	}
	return out
}

// Verify checks structural invariants of the module: every block is
// terminated, branch targets belong to the same function, phi incoming
// blocks are predecessors, and instruction operand types are sane. It
// returns the first violation found.
func (m *Module) Verify() error {
	for _, f := range m.Funcs {
		if f.Decl {
			continue
		}
		if len(f.Blocks) == 0 {
			return fmt.Errorf("ir: function @%s has no blocks", f.Name)
		}
		preds := Predecessors(f)
		for _, b := range f.Blocks {
			t := b.Term()
			if t == nil {
				return fmt.Errorf("ir: block %%%s in @%s not terminated", b.Name, f.Name)
			}
			for i, in := range b.Instrs {
				if in.Op.IsTerm() && i != len(b.Instrs)-1 {
					return fmt.Errorf("ir: terminator %s mid-block in %%%s of @%s", in.Op, b.Name, f.Name)
				}
				if in.Op == OpPhi {
					if i > 0 && b.Instrs[i-1].Op != OpPhi {
						return fmt.Errorf("ir: phi not at head of block %%%s in @%s", b.Name, f.Name)
					}
					if len(in.Args) != len(in.Blocks) {
						return fmt.Errorf("ir: phi arity mismatch in %%%s of @%s", b.Name, f.Name)
					}
					for _, ib := range in.Blocks {
						found := false
						for _, p := range preds[b] {
							if p == ib {
								found = true
								break
							}
						}
						if !found {
							return fmt.Errorf("ir: phi in %%%s of @%s names non-predecessor %%%s", b.Name, f.Name, ib.Name)
						}
					}
				}
				for _, tb := range in.Blocks {
					if tb.Parent != f {
						return fmt.Errorf("ir: cross-function branch target in @%s", f.Name)
					}
				}
				for ai, a := range in.Args {
					if a == nil {
						return fmt.Errorf("ir: nil operand %d of %s in @%s", ai, in.Op, f.Name)
					}
				}
			}
		}
	}
	return nil
}

// Predecessors computes the predecessor map of f's CFG.
func Predecessors(f *Func) map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

// ReversePostorder returns f's blocks in reverse postorder from the entry.
// Unreachable blocks are appended at the end in declaration order.
func ReversePostorder(f *Func) []*Block {
	seen := make(map[*Block]bool, len(f.Blocks))
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs() {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if e := f.Entry(); e != nil {
		dfs(e)
	}
	out := make([]*Block, 0, len(f.Blocks))
	for i := len(post) - 1; i >= 0; i-- {
		out = append(out, post[i])
	}
	for _, b := range f.Blocks {
		if !seen[b] {
			out = append(out, b)
		}
	}
	return out
}
