//go:build race

package ir_test

// raceEnabled skips allocation-count assertions under the race detector,
// which intentionally defeats sync.Pool caching and adds bookkeeping
// allocations.
const raceEnabled = true
