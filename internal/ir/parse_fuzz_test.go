package ir_test

import (
	"testing"

	"mpidetect/internal/ir"
)

// FuzzParse differentially fuzzes the zero-copy parser against the retained
// reference implementation: for any input, both must produce the same error
// string or the same printed module. Seeds cover the full golden corpus (so
// the fuzzer starts from realistic IR and mutates from there) plus a few
// hand-picked syntax corners.
func FuzzParse(f *testing.F) {
	for _, src := range goldenSources(f) {
		f.Add(src)
	}
	f.Add("")
	f.Add("\n")
	f.Add("; module m\n")
	f.Add("@g = global i32 7\n@s = constant [4 x i8] c\"hi\\00!\"\n")
	f.Add("declare i32 @MPI_Send(i8*, i32, i32, i32, i32, i32)\n")
	f.Add("define void @f() {\nentry:\n  ret void\n}\n")
	f.Add("define i32 @f(i32 %a) {\nentry:\n  br i1 true, label %t, label %e\nt:\n  br label %e\ne:\n  %p = phi i32 [ %a, %entry ], [ 1, %t ]\n  ret i32 %p\n}\n")
	f.Add("define void @f() {\nentry:\n  %x = alloca %struct.MPI_Status\n  %y = getelementptr %struct.MPI_Status, %struct.MPI_Status* %x, i64 0, i32 1\n  ret void\n}\n")
	f.Add("define void @f() {\nentry:\n  %c = fcmp oeq double 1.5, 2.5\n  %s = select i1 %c, i32 1, i32 2\n  %t = sitofp i32 %s to double\n  unreachable\n}\n")
	f.Add("define void @f() {\n  ret void\n}\n")
	f.Add("define void @f() {\nentry:\n  %u = frob i32 1\n}\n")

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return // keep the reference parser's quadratic corners affordable
		}
		m1, err1 := ir.Parse(src)
		m2, err2 := ir.ParseReference(src)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error disagreement:\n  new: %v\n  ref: %v\nsource:\n%q", err1, err2, src)
		}
		if err1 != nil {
			if err1.Error() != err2.Error() {
				t.Fatalf("diagnostic drift:\n  new: %v\n  ref: %v\nsource:\n%q", err1, err2, src)
			}
			return
		}
		if p1, p2 := ir.Print(m1), ir.Print(m2); p1 != p2 {
			t.Fatalf("module drift:\n--- new ---\n%s\n--- ref ---\n%s\nsource:\n%q", p1, p2, src)
		}
	})
}
