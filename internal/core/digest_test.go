package core

import (
	"strings"
	"testing"

	"mpidetect/internal/ast"
	"mpidetect/internal/dataset"
	"mpidetect/internal/ir"
	"mpidetect/internal/irgen"
	"mpidetect/internal/passes"
)

// digestDetectors returns two stub detectors differing only in identity,
// so digest tests don't pay for training.
type stubDet struct {
	name string
	opt  passes.OptLevel
}

func (s stubDet) CheckModule(*ir.Module) (Verdict, error)    { return Verdict{}, nil }
func (s stubDet) CheckProgram(*ast.Program) (Verdict, error) { return Verdict{}, nil }
func (s stubDet) Name() string                               { return s.name }
func (s stubDet) Opt() passes.OptLevel                       { return s.opt }

func sampleIR(t *testing.T) string {
	t.Helper()
	d := dataset.GenerateCorrBench(1, false)
	m := irgen.MustLower(d.Codes[0].Prog)
	return ir.Print(m)
}

func TestDigestStableUnderFormatting(t *testing.T) {
	det := stubDet{"IR2Vec+DT", passes.Os}
	src := sampleIR(t)
	base := DigestIR(det, src)

	// Extra indentation, trailing spaces, blank lines, and comments must
	// not change the digest.
	messy := "; a leading comment\n\n" + strings.ReplaceAll(src, "\n", "  \n\n") + "\n; trailing comment\n"
	messy = strings.ReplaceAll(messy, " = ", "   =  ")
	if got := DigestIR(det, messy); got != base {
		t.Fatalf("digest changed under lexical reformatting:\n%s\nvs\n%s", base, got)
	}
	if DigestIR(det, src) != base {
		t.Fatal("digest is not deterministic")
	}
}

func TestDigestSeparatesPrograms(t *testing.T) {
	det := stubDet{"IR2Vec+DT", passes.Os}
	d := dataset.GenerateCorrBench(1, false)
	a := ir.Print(irgen.MustLower(d.Codes[0].Prog))
	b := ir.Print(irgen.MustLower(d.Codes[1].Prog))
	if DigestIR(det, a) == DigestIR(det, b) {
		t.Fatal("distinct programs share a digest")
	}
}

func TestDigestSeparatesDetectorIdentity(t *testing.T) {
	src := sampleIR(t)
	base := DigestIR(stubDet{"IR2Vec+DT", passes.Os}, src)
	if DigestIR(stubDet{"ProGraML+GATv2", passes.Os}, src) == base {
		t.Fatal("different detector families share a digest")
	}
	if DigestIR(stubDet{"IR2Vec+DT", passes.O0}, src) == base {
		t.Fatal("different optimisation levels share a digest")
	}
}

func TestDigestIRKeyed(t *testing.T) {
	src := sampleIR(t)
	base := DigestIRKeyed("tool:must|ranks=2|steps=200000", src)
	messy := "; comment\n" + strings.ReplaceAll(src, "\n", "\n\n")
	if DigestIRKeyed("tool:must|ranks=2|steps=200000", messy) != base {
		t.Fatal("keyed digest changed under lexical reformatting")
	}
	if DigestIRKeyed("tool:must|ranks=4|steps=200000", src) == base {
		t.Fatal("different tool configurations share a digest")
	}
	if DigestIRKeyed("tool:itac|ranks=2|steps=200000", src) == base {
		t.Fatal("different tools share a digest")
	}
	if DigestIRKeyed("tool:must|ranks=2|steps=200000", src) != base {
		t.Fatal("keyed digest is not deterministic")
	}
}

func TestDigestProgram(t *testing.T) {
	det := stubDet{"IR2Vec+DT", passes.Os}
	d := dataset.GenerateCorrBench(1, false)
	p0, p1 := d.Codes[0].Prog, d.Codes[1].Prog
	if DigestProgram(det, p0) != DigestProgram(det, p0) {
		t.Fatal("program digest is not deterministic")
	}
	if DigestProgram(det, p0) == DigestProgram(det, p1) {
		t.Fatal("distinct programs share a program digest")
	}
	// IR digests and program digests live in distinct namespaces: the same
	// logical program must never collide across representations.
	if DigestProgram(det, p0) == DigestIR(det, ast.RenderC(p0)) {
		t.Fatal("program and IR digest namespaces collide")
	}
}

func TestNormalizeIR(t *testing.T) {
	in := "  a   b \n; comment\n\n\tc\td  \n"
	want := "a b\nc d\n"
	if got := NormalizeIR(in); got != want {
		t.Fatalf("NormalizeIR = %q, want %q", got, want)
	}
}

// TestDigestPreservesQuotedLiterals: whitespace inside string constants
// is program content, not formatting — two IRs whose c"..." literals
// differ only in internal spacing must not share a digest, while
// whitespace outside literals still normalizes away.
func TestDigestPreservesQuotedLiterals(t *testing.T) {
	det := stubDet{"IR2Vec+DT", passes.Os}
	a := "@s = constant [5 x i8] c\"a  b\"\n"
	b := "@s = constant [4 x i8] c\"a b\"\n"
	if DigestIR(det, a) == DigestIR(det, b) {
		t.Fatal("string constants differing in internal whitespace share a digest")
	}
	spaced := "@s   = constant   [5 x i8]   c\"a  b\"\n"
	if DigestIR(det, a) != DigestIR(det, spaced) {
		t.Fatal("whitespace outside the literal changed the digest")
	}
	// An escaped quote must not end the literal early.
	esc := "@s = constant [4 x i8] c\"a\\\"  b\"  extra\n"
	esc2 := "@s = constant [4 x i8] c\"a\\\" b\"  extra\n"
	if DigestIR(det, esc) == DigestIR(det, esc2) {
		t.Fatal("escaped quote terminated the literal: in-literal spacing was normalized")
	}
	if got := NormalizeIR("x  \"a  b\"  y"); got != "x \"a  b\" y\n" {
		t.Fatalf("NormalizeIR quoted handling = %q", got)
	}
}
