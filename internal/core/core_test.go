package core

import (
	"testing"

	"mpidetect/internal/dataset"
	"mpidetect/internal/gnn"
	"mpidetect/internal/ir"
	"mpidetect/internal/irgen"
	"mpidetect/internal/passes"
)

func trainingSlice(seed int64, per int) *dataset.Dataset {
	d := dataset.GenerateCorrBench(seed, false)
	out := &dataset.Dataset{Name: d.Name}
	counts := map[dataset.Label]int{}
	for _, c := range d.Codes {
		if counts[c.Label] < per {
			counts[c.Label]++
			out.Codes = append(out.Codes, c)
		}
	}
	return out
}

func TestIR2VecDetectorEndToEnd(t *testing.T) {
	train := trainingSlice(1, 40)
	cfg := DefaultIR2VecConfig()
	cfg.Dim = 64
	det, err := TrainIR2Vec(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate on held-out codes of the same generator family.
	test := trainingSlice(2, 20)
	correct := 0
	for _, c := range test.Codes {
		v, err := det.CheckProgram(c.Prog)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if v.Incorrect == c.Incorrect() {
			correct++
		}
	}
	acc := float64(correct) / float64(len(test.Codes))
	if acc < 0.7 {
		t.Errorf("detector accuracy %.2f < 0.7", acc)
	}
}

func TestIR2VecMultiClass(t *testing.T) {
	train := trainingSlice(3, 40)
	cfg := DefaultIR2VecConfig()
	cfg.Dim = 64
	cfg.MultiClass = true
	det, err := TrainIR2Vec(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v, err := det.CheckProgram(train.Codes[0].Prog)
	if err != nil {
		t.Fatal(err)
	}
	if v.Label != train.Codes[0].Label {
		// Training-set prediction should usually be right for a tree grown
		// to purity; tolerate mismatch only if labels are at least valid.
		t.Logf("multi-class label %v vs truth %v", v.Label, train.Codes[0].Label)
	}
}

func TestGNNDetectorEndToEnd(t *testing.T) {
	train := trainingSlice(4, 24)
	cfg := DefaultGNNConfig()
	cfg.Model = gnn.Config{EmbedDim: 8, Hidden: []int{12, 8}, LR: 3e-3,
		Epochs: 3, BatchSize: 8, Seed: 1, Workers: 1}
	det, err := TrainGNN(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v, err := det.CheckProgram(train.Codes[0].Prog)
	if err != nil {
		t.Fatal(err)
	}
	if v.Confidence < 0.5 || v.Confidence > 1 {
		t.Errorf("confidence %f out of range", v.Confidence)
	}
}

func TestCheckModuleDirect(t *testing.T) {
	train := trainingSlice(5, 30)
	cfg := DefaultIR2VecConfig()
	cfg.Dim = 48
	det, err := TrainIR2Vec(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := irgen.MustLower(train.Codes[0].Prog)
	passes.Optimize(m, passes.Os)
	if _, err := det.CheckModule(m); err != nil {
		t.Fatal(err)
	}
}

// TestCheckModulesMatchesCheckModule pins the batch path of both detector
// families to the per-module path: same verdicts, bit for bit (labels and
// confidences included), on a mixed correct/incorrect batch.
func TestCheckModulesMatchesCheckModule(t *testing.T) {
	train := trainingSlice(6, 24)
	irCfg := DefaultIR2VecConfig()
	irCfg.Dim = 48
	irDet, err := TrainIR2Vec(train, irCfg)
	if err != nil {
		t.Fatal(err)
	}
	gnnCfg := DefaultGNNConfig()
	gnnCfg.Model = gnn.Config{EmbedDim: 8, Hidden: []int{12, 8}, LR: 3e-3,
		Epochs: 2, BatchSize: 8, Seed: 1, Workers: 1}
	gnnDet, err := TrainGNN(train, gnnCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, det := range []BatchDetector{irDet, gnnDet} {
		var mods []*ir.Module
		for _, c := range trainingSlice(7, 6).Codes {
			m := irgen.MustLower(c.Prog)
			passes.Optimize(m, det.Opt())
			mods = append(mods, m)
		}
		got, err := det.CheckModules(mods)
		if err != nil {
			t.Fatalf("%s: CheckModules: %v", det.Name(), err)
		}
		if len(got) != len(mods) {
			t.Fatalf("%s: %d verdicts for %d modules", det.Name(), len(got), len(mods))
		}
		for i, m := range mods {
			want, err := det.CheckModule(m)
			if err != nil {
				t.Fatalf("%s module %d: %v", det.Name(), i, err)
			}
			if got[i] != want {
				t.Fatalf("%s module %d: batch %+v, single %+v", det.Name(), i, got[i], want)
			}
		}
	}
}
