// Package core is the public façade of the reproduction: a Detector that
// takes an MPI-C program (as an AST or as textual IR), compiles it, embeds
// it, and predicts whether it is correct or which error class it carries —
// the end-to-end pipeline of the paper, usable as a library.
//
// Two detector families are available, matching §IV:
//
//   - IR2VecDetector — IR2Vec embeddings + decision tree (optionally with
//     GA-selected feature coordinates).
//   - GNNDetector    — ProGraML heterogeneous graphs + GATv2 GNN.
package core

import (
	"fmt"

	"mpidetect/internal/ast"
	"mpidetect/internal/dataset"
	"mpidetect/internal/dtree"
	"mpidetect/internal/gnn"
	"mpidetect/internal/graphs"
	"mpidetect/internal/ir"
	"mpidetect/internal/ir2vec"
	"mpidetect/internal/irgen"
	"mpidetect/internal/passes"
)

// Verdict is a detector's judgement of one program.
type Verdict struct {
	Incorrect bool
	// Label is the predicted error class when the detector was trained
	// multi-class; Correct otherwise.
	Label dataset.Label
	// Confidence is the predicted-class probability when available
	// (GNN softmax); decision trees report 1.
	Confidence float64
}

// Detector classifies MPI programs.
type Detector interface {
	// CheckModule classifies an already-compiled IR module.
	CheckModule(m *ir.Module) (Verdict, error)
	// CheckProgram compiles and classifies an MPI-C program.
	CheckProgram(p *ast.Program) (Verdict, error)
	// Name describes the detector.
	Name() string
	// Opt is the optimisation level the detector was trained at; callers
	// classifying raw IR should optimise it to this level first.
	Opt() passes.OptLevel
}

// BatchDetector is implemented by detectors that can classify several
// already-optimised modules in one fused forward pass. CheckModules must
// return exactly len(ms) verdicts, each bit-identical to the verdict
// CheckModule would produce for that module alone; the error return fails
// the whole batch (callers fall back to per-module CheckModule).
type BatchDetector interface {
	Detector
	CheckModules(ms []*ir.Module) ([]Verdict, error)
}

// CheckIR parses textual IR, optimises it at the detector's configured
// level, and classifies it — the one-call entrypoint for clients holding
// textual IR (the inference server's wire format). The server itself runs
// the same parse → Optimize(d.Opt()) → CheckModule sequence in two stages,
// so it can report per-program parse errors before scheduling work.
func CheckIR(d Detector, src string) (Verdict, error) {
	m, err := ir.Parse(src)
	if err != nil {
		return Verdict{}, fmt.Errorf("core: parsing IR: %w", err)
	}
	passes.Optimize(m, d.Opt())
	return d.CheckModule(m)
}

// compile lowers and optimises a program.
func compile(p *ast.Program, lvl passes.OptLevel) (*ir.Module, error) {
	m, err := irgen.Lower(p)
	if err != nil {
		return nil, err
	}
	passes.Optimize(m, lvl)
	return m, nil
}

// ---------------------------------------------------------------------------
// IR2Vec + decision tree detector (§IV-A).
// ---------------------------------------------------------------------------

// IR2VecConfig configures training of the embedding detector.
type IR2VecConfig struct {
	Opt        passes.OptLevel // compilation option (paper: -Os)
	Norm       ir2vec.Norm     // normalisation (paper: vector)
	Dim        int             // per-encoding dimension (paper: 256)
	Seed       int64           // embedding seed
	Features   []int           // optional GA-selected coordinates
	MultiClass bool            // predict the error label rather than binary
}

// DefaultIR2VecConfig mirrors the paper's headline configuration.
func DefaultIR2VecConfig() IR2VecConfig {
	return IR2VecConfig{Opt: passes.Os, Norm: ir2vec.NormVector, Dim: ir2vec.Dim, Seed: 1}
}

// IR2VecDetector is a trained embedding+tree model.
type IR2VecDetector struct {
	cfg    IR2VecConfig
	enc    *ir2vec.Encoder
	norm   *ir2vec.Normalizer
	tree   *dtree.Tree
	labels []dataset.Label // class id -> label
}

// Name implements Detector.
func (d *IR2VecDetector) Name() string { return "IR2Vec+DT" }

// Opt implements Detector.
func (d *IR2VecDetector) Opt() passes.OptLevel { return d.cfg.Opt }

// TrainIR2Vec fits the detector on a labelled corpus.
func TrainIR2Vec(corpus *dataset.Dataset, cfg IR2VecConfig) (*IR2VecDetector, error) {
	if cfg.Dim <= 0 {
		cfg.Dim = ir2vec.Dim
	}
	mods := make([]*ir.Module, 0, len(corpus.Codes))
	for _, c := range corpus.Codes {
		m, err := compile(c.Prog, cfg.Opt)
		if err != nil {
			return nil, fmt.Errorf("core: compiling %s: %w", c.Name, err)
		}
		mods = append(mods, m)
	}
	sample := mods
	if len(sample) > 200 {
		sample = sample[:200]
	}
	enc := ir2vec.Train(sample, cfg.Dim, cfg.Seed, 30)
	enc.FitVocab(mods)
	x := make([][]float64, len(mods))
	for i, m := range mods {
		x[i] = enc.Encode(m)
	}
	norm := ir2vec.FitNormalizer(cfg.Norm, x)
	xn := norm.ApplyAll(x)

	det := &IR2VecDetector{cfg: cfg, enc: enc, norm: norm}
	y := make([]int, len(corpus.Codes))
	if cfg.MultiClass {
		id := map[dataset.Label]int{}
		for i, c := range corpus.Codes {
			if _, ok := id[c.Label]; !ok {
				id[c.Label] = len(det.labels)
				det.labels = append(det.labels, c.Label)
			}
			y[i] = id[c.Label]
		}
	} else {
		det.labels = []dataset.Label{dataset.Correct, dataset.CallOrdering}
		for i, c := range corpus.Codes {
			if c.Incorrect() {
				y[i] = 1
			}
		}
	}
	det.tree = dtree.Train(xn, y, dtree.Config{Features: cfg.Features})
	return det, nil
}

// verdictOf maps a predicted class id to a Verdict.
func (d *IR2VecDetector) verdictOf(class int) Verdict {
	label := d.labels[class]
	if !d.cfg.MultiClass {
		if class == 1 {
			return Verdict{Incorrect: true, Label: dataset.CallOrdering, Confidence: 1}
		}
		return Verdict{Label: dataset.Correct, Confidence: 1}
	}
	return Verdict{Incorrect: label != dataset.Correct, Label: label, Confidence: 1}
}

// CheckModule implements Detector.
func (d *IR2VecDetector) CheckModule(m *ir.Module) (Verdict, error) {
	v := d.norm.Apply(d.enc.Encode(m))
	return d.verdictOf(d.tree.Predict(v)), nil
}

// CheckModules implements BatchDetector: the whole batch is embedded into
// one flat feature buffer through a single pooled scratch, then normalised
// and classified per program. Feature arithmetic is EncodeInto's, so every
// verdict is bit-identical to CheckModule on the same module.
func (d *IR2VecDetector) CheckModules(ms []*ir.Module) ([]Verdict, error) {
	feats := d.enc.EncodeBatch(ms)
	w := 2 * d.enc.Dim
	out := make([]Verdict, len(ms))
	for i := range ms {
		v := d.norm.Apply(feats[i*w : (i+1)*w])
		out[i] = d.verdictOf(d.tree.Predict(v))
	}
	return out, nil
}

// CheckProgram implements Detector.
func (d *IR2VecDetector) CheckProgram(p *ast.Program) (Verdict, error) {
	m, err := compile(p, d.cfg.Opt)
	if err != nil {
		return Verdict{}, err
	}
	return d.CheckModule(m)
}

// ---------------------------------------------------------------------------
// GNN detector (§IV-B).
// ---------------------------------------------------------------------------

// GNNDetectorConfig configures the graph model.
type GNNDetectorConfig struct {
	Model gnn.Config
	Opt   passes.OptLevel // paper: -O0 for the GNN
}

// DefaultGNNConfig mirrors the paper's setup with the throughput model.
func DefaultGNNConfig() GNNDetectorConfig {
	return GNNDetectorConfig{Model: gnn.Default(), Opt: passes.O0}
}

// GNNDetector is a trained graph model.
type GNNDetector struct {
	cfg   GNNDetectorConfig
	model *gnn.Model
}

// Name implements Detector.
func (d *GNNDetector) Name() string { return "ProGraML+GATv2" }

// Opt implements Detector.
func (d *GNNDetector) Opt() passes.OptLevel { return d.cfg.Opt }

// TrainGNN fits the graph detector (binary correct/incorrect).
func TrainGNN(corpus *dataset.Dataset, cfg GNNDetectorConfig) (*GNNDetector, error) {
	var gs []*graphs.Graph
	var samples []gnn.Sample
	for _, c := range corpus.Codes {
		m, err := compile(c.Prog, cfg.Opt)
		if err != nil {
			return nil, fmt.Errorf("core: compiling %s: %w", c.Name, err)
		}
		g := graphs.Build(m)
		gs = append(gs, g)
		label := 0
		if c.Incorrect() {
			label = 1
		}
		samples = append(samples, gnn.Sample{G: g, Label: label})
	}
	vocab := graphs.BuildVocab(gs)
	model := gnn.NewModel(cfg.Model, vocab, 2)
	model.Train(samples)
	return &GNNDetector{cfg: cfg, model: model}, nil
}

// gnnVerdict maps a binary probability pair to a Verdict.
func gnnVerdict(probs []float64) Verdict {
	if probs[1] >= probs[0] {
		return Verdict{Incorrect: true, Label: dataset.CallOrdering, Confidence: probs[1]}
	}
	return Verdict{Label: dataset.Correct, Confidence: probs[0]}
}

// CheckModule implements Detector. The graph is built with its tokens
// pre-resolved against the model vocabulary (graphs.BuildResolved), which
// skips the per-node token-string round trip; the resulting vocabulary
// ids — and therefore the prediction — are identical to building with
// token strings and resolving at prepare time.
func (d *GNNDetector) CheckModule(m *ir.Module) (Verdict, error) {
	g := graphs.BuildResolved(m, d.model.Vocab)
	return gnnVerdict(d.model.PredictProbs(g)), nil
}

// CheckModules implements BatchDetector: all graphs run through one
// block-diagonal GNN forward pass (gnn.PredictProbsBatch), whose per-graph
// results are bit-identical to PredictProbs.
func (d *GNNDetector) CheckModules(ms []*ir.Module) ([]Verdict, error) {
	gs := make([]*graphs.Graph, len(ms))
	for i, m := range ms {
		gs[i] = graphs.BuildResolved(m, d.model.Vocab)
	}
	probs := d.model.PredictProbsBatch(gs)
	out := make([]Verdict, len(ms))
	for i := range out {
		out[i] = gnnVerdict(probs[i])
	}
	return out, nil
}

// CheckProgram implements Detector.
func (d *GNNDetector) CheckProgram(p *ast.Program) (Verdict, error) {
	m, err := compile(p, d.cfg.Opt)
	if err != nil {
		return Verdict{}, err
	}
	return d.CheckModule(m)
}
