package core

import (
	"bytes"
	"encoding/gob"
	"path/filepath"
	"strings"
	"testing"

	"mpidetect/internal/dataset"
	"mpidetect/internal/dtree"
	"mpidetect/internal/gnn"
	"mpidetect/internal/ir2vec"
)

// trainCorpus returns a small deterministic corpus plus a held-out set the
// detector did not see during training (to exercise the fallback path of
// the encoder after a reload).
func trainCorpus(t *testing.T) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	train := dataset.GenerateCorrBench(1, false)
	held := dataset.GenerateCorrBench(2, false)
	if len(train.Codes) == 0 || len(held.Codes) == 0 {
		t.Fatal("empty corpus")
	}
	return train, held
}

func fastIR2VecConfig() IR2VecConfig {
	cfg := DefaultIR2VecConfig()
	cfg.Dim = 32
	return cfg
}

func fastGNNConfig() GNNDetectorConfig {
	cfg := DefaultGNNConfig()
	cfg.Model.Epochs = 1
	cfg.Model.Hidden = []int{8, 8}
	cfg.Model.EmbedDim = 8
	return cfg
}

// checkSameVerdicts asserts both detectors agree on every code of the set.
func checkSameVerdicts(t *testing.T, want, got Detector, d *dataset.Dataset) {
	t.Helper()
	for _, c := range d.Codes {
		vw, err := want.CheckProgram(c.Prog)
		if err != nil {
			t.Fatalf("original detector on %s: %v", c.Name, err)
		}
		vg, err := got.CheckProgram(c.Prog)
		if err != nil {
			t.Fatalf("reloaded detector on %s: %v", c.Name, err)
		}
		if vw != vg {
			t.Fatalf("verdict drift on %s after reload: trained %+v, loaded %+v", c.Name, vw, vg)
		}
	}
}

func TestIR2VecRoundTrip(t *testing.T) {
	train, held := trainCorpus(t)
	det, err := TrainIR2Vec(train, fastIR2VecConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ir2vec.bin")
	if err := SaveDetectorFile(path, det); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDetectorFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name() != det.Name() {
		t.Fatalf("loaded detector name %q, want %q", loaded.Name(), det.Name())
	}
	checkSameVerdicts(t, det, loaded, train)
	checkSameVerdicts(t, det, loaded, held)
}

func TestIR2VecMultiClassRoundTrip(t *testing.T) {
	train, _ := trainCorpus(t)
	cfg := fastIR2VecConfig()
	cfg.MultiClass = true
	det, err := TrainIR2Vec(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveDetector(&buf, det); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDetector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	checkSameVerdicts(t, det, loaded, train)
}

func TestGNNRoundTrip(t *testing.T) {
	train, held := trainCorpus(t)
	det, err := TrainGNN(train, fastGNNConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "gnn.bin")
	if err := SaveDetectorFile(path, det); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDetectorFile(path)
	if err != nil {
		t.Fatal(err)
	}
	checkSameVerdicts(t, det, loaded, train)
	checkSameVerdicts(t, det, loaded, held)
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadDetector(strings.NewReader("not a model")); err == nil {
		t.Fatal("expected an error loading garbage")
	}
}

func TestLoadRejectsWrongMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(artifactHeader{"SOMETHING-ELSE", ArtifactVersion, kindIR2Vec}); err != nil {
		t.Fatal(err)
	}
	_, err := LoadDetector(&buf)
	if err == nil || !strings.Contains(err.Error(), "not an mpidetect model") {
		t.Fatalf("want magic rejection, got %v", err)
	}
}

func TestLoadRejectsStaleVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(artifactHeader{artifactMagic, ArtifactVersion + 1, kindIR2Vec}); err != nil {
		t.Fatal(err)
	}
	_, err := LoadDetector(&buf)
	if err == nil || !strings.Contains(err.Error(), "retrain") {
		t.Fatalf("want stale-version rejection, got %v", err)
	}
}

func TestLoadRejectsUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(artifactHeader{artifactMagic, ArtifactVersion, "transformer"}); err != nil {
		t.Fatal(err)
	}
	_, err := LoadDetector(&buf)
	if err == nil || !strings.Contains(err.Error(), "unknown model kind") {
		t.Fatalf("want unknown-kind rejection, got %v", err)
	}
}

func TestGNNModelGobValidation(t *testing.T) {
	bad := gnn.Model{}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&bad); err == nil {
		// An empty model has no layers; encoding succeeds but decoding the
		// zero shape must fail rather than panic inside NewModel.
		var out gnn.Model
		if err := gob.NewDecoder(&buf).Decode(&out); err == nil {
			t.Fatal("expected shape validation error decoding an empty model")
		}
	}
}

// legacyGob wraps pre-encoded legacy gob bytes so they can be spliced into
// an artifact in place of a real encoder value.
type legacyGob []byte

func (l legacyGob) GobEncode() ([]byte, error) { return l, nil }

// legacyEncoderState mirrors the ArtifactVersion-1 ir2vec encoder layout
// (map-keyed entity and relation tables).
type legacyEncoderState struct {
	Dim  int
	Seed int64
	Ent  map[string][]float64
	Rel  map[string][]float64
}

// legacyIr2vecArtifactState mirrors ir2vecState with the encoder swapped
// for raw legacy bytes (gob matches struct fields by name, so the decoder
// feeds the blob straight into ir2vec.Encoder.GobDecode).
type legacyIr2vecArtifactState struct {
	Cfg    IR2VecConfig
	Enc    legacyGob
	Norm   *ir2vec.Normalizer
	Tree   *dtree.Tree
	Labels []dataset.Label
}

// TestLoadAcceptsVersion1Artifact builds a byte-faithful ArtifactVersion-1
// artifact — version-1 header and a map-keyed (pre-interning) encoder
// body — and checks the current binary still loads and serves it, and
// that re-saving produces a current-version artifact that classifies
// identically.
func TestLoadAcceptsVersion1Artifact(t *testing.T) {
	train, held := trainCorpus(t)
	det, err := TrainIR2Vec(train, fastIR2VecConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Extract the trained encoder's tables into the legacy map shape by
	// gob round-tripping it through its exported state.
	blob, err := det.enc.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Dim  int
		Seed int64
		Rel  map[string][]float64
		Toks []string
		Vecs []float64
	}
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&st); err != nil {
		t.Fatal(err)
	}
	legacy := legacyEncoderState{Dim: st.Dim, Seed: st.Seed,
		Ent: map[string][]float64{}, Rel: st.Rel}
	for i, tok := range st.Toks {
		legacy.Ent[tok] = st.Vecs[i*st.Dim : (i+1)*st.Dim]
	}
	var encBuf bytes.Buffer
	if err := gob.NewEncoder(&encBuf).Encode(legacy); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(artifactHeader{artifactMagic, 1, kindIR2Vec}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(legacyIr2vecArtifactState{
		Cfg: det.cfg, Enc: legacyGob(encBuf.Bytes()),
		Norm: det.norm, Tree: det.tree, Labels: det.labels}); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadDetector(&buf)
	if err != nil {
		t.Fatalf("loading a version-1 artifact: %v", err)
	}
	checkSameVerdicts(t, det, loaded, train)
	checkSameVerdicts(t, det, loaded, held)

	// Re-save: the artifact comes back out at the current version and
	// still classifies identically.
	var resaved bytes.Buffer
	if err := SaveDetector(&resaved, loaded); err != nil {
		t.Fatal(err)
	}
	var h artifactHeader
	peek := bytes.NewReader(resaved.Bytes())
	if err := gob.NewDecoder(peek).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Version != ArtifactVersion {
		t.Fatalf("re-saved artifact has version %d, want %d", h.Version, ArtifactVersion)
	}
	reloaded, err := LoadDetector(&resaved)
	if err != nil {
		t.Fatal(err)
	}
	checkSameVerdicts(t, det, reloaded, held)
}
