package core

import (
	"bytes"
	"encoding/gob"
	"path/filepath"
	"strings"
	"testing"

	"mpidetect/internal/dataset"
	"mpidetect/internal/gnn"
)

// trainCorpus returns a small deterministic corpus plus a held-out set the
// detector did not see during training (to exercise the fallback path of
// the encoder after a reload).
func trainCorpus(t *testing.T) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	train := dataset.GenerateCorrBench(1, false)
	held := dataset.GenerateCorrBench(2, false)
	if len(train.Codes) == 0 || len(held.Codes) == 0 {
		t.Fatal("empty corpus")
	}
	return train, held
}

func fastIR2VecConfig() IR2VecConfig {
	cfg := DefaultIR2VecConfig()
	cfg.Dim = 32
	return cfg
}

func fastGNNConfig() GNNDetectorConfig {
	cfg := DefaultGNNConfig()
	cfg.Model.Epochs = 1
	cfg.Model.Hidden = []int{8, 8}
	cfg.Model.EmbedDim = 8
	return cfg
}

// checkSameVerdicts asserts both detectors agree on every code of the set.
func checkSameVerdicts(t *testing.T, want, got Detector, d *dataset.Dataset) {
	t.Helper()
	for _, c := range d.Codes {
		vw, err := want.CheckProgram(c.Prog)
		if err != nil {
			t.Fatalf("original detector on %s: %v", c.Name, err)
		}
		vg, err := got.CheckProgram(c.Prog)
		if err != nil {
			t.Fatalf("reloaded detector on %s: %v", c.Name, err)
		}
		if vw != vg {
			t.Fatalf("verdict drift on %s after reload: trained %+v, loaded %+v", c.Name, vw, vg)
		}
	}
}

func TestIR2VecRoundTrip(t *testing.T) {
	train, held := trainCorpus(t)
	det, err := TrainIR2Vec(train, fastIR2VecConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ir2vec.bin")
	if err := SaveDetectorFile(path, det); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDetectorFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name() != det.Name() {
		t.Fatalf("loaded detector name %q, want %q", loaded.Name(), det.Name())
	}
	checkSameVerdicts(t, det, loaded, train)
	checkSameVerdicts(t, det, loaded, held)
}

func TestIR2VecMultiClassRoundTrip(t *testing.T) {
	train, _ := trainCorpus(t)
	cfg := fastIR2VecConfig()
	cfg.MultiClass = true
	det, err := TrainIR2Vec(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveDetector(&buf, det); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDetector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	checkSameVerdicts(t, det, loaded, train)
}

func TestGNNRoundTrip(t *testing.T) {
	train, held := trainCorpus(t)
	det, err := TrainGNN(train, fastGNNConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "gnn.bin")
	if err := SaveDetectorFile(path, det); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDetectorFile(path)
	if err != nil {
		t.Fatal(err)
	}
	checkSameVerdicts(t, det, loaded, train)
	checkSameVerdicts(t, det, loaded, held)
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadDetector(strings.NewReader("not a model")); err == nil {
		t.Fatal("expected an error loading garbage")
	}
}

func TestLoadRejectsWrongMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(artifactHeader{"SOMETHING-ELSE", ArtifactVersion, kindIR2Vec}); err != nil {
		t.Fatal(err)
	}
	_, err := LoadDetector(&buf)
	if err == nil || !strings.Contains(err.Error(), "not an mpidetect model") {
		t.Fatalf("want magic rejection, got %v", err)
	}
}

func TestLoadRejectsStaleVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(artifactHeader{artifactMagic, ArtifactVersion + 1, kindIR2Vec}); err != nil {
		t.Fatal(err)
	}
	_, err := LoadDetector(&buf)
	if err == nil || !strings.Contains(err.Error(), "retrain") {
		t.Fatalf("want stale-version rejection, got %v", err)
	}
}

func TestLoadRejectsUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(artifactHeader{artifactMagic, ArtifactVersion, "transformer"}); err != nil {
		t.Fatal(err)
	}
	_, err := LoadDetector(&buf)
	if err == nil || !strings.Contains(err.Error(), "unknown model kind") {
		t.Fatalf("want unknown-kind rejection, got %v", err)
	}
}

func TestGNNModelGobValidation(t *testing.T) {
	bad := gnn.Model{}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&bad); err == nil {
		// An empty model has no layers; encoding succeeds but decoding the
		// zero shape must fail rather than panic inside NewModel.
		var out gnn.Model
		if err := gob.NewDecoder(&buf).Decode(&out); err == nil {
			t.Fatal("expected shape validation error decoding an empty model")
		}
	}
}
