// Trained-detector persistence: a versioned gob artifact format so a model
// trained once (CLI, CI, or a batch job) can be reloaded by any other
// entrypoint — notably cmd/mpidetectd, which serves loaded detectors —
// without retraining. The artifact layout is
//
//	artifactHeader{Magic, Version, Kind}  — gob, always decodable first
//	kind-specific state                   — gob, layout owned by the model
//
// Version policy: ArtifactVersion is bumped on ANY incompatible change to
// the serialized layout. Load accepts the current version plus the listed
// compatible older versions (converting on read); anything else fails
// loudly at load time with a "retrain and re-save" error instead of
// mispredicting at inference time.
//
// Version history:
//
//	1 — map-keyed ir2vec entity tables (Ent map[string][]float64),
//	    map-keyed GNN vocab. Still readable: the gob decoders convert the
//	    maps into the interned flat layout.
//	2 — interned feature pipeline: ir2vec entities as an id-ordered token
//	    list + one flat value array; GNN vocab re-keyed on intern ids
//	    (persisted in the legacy map shape for bidirectional clarity).
package core

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mpidetect/internal/dataset"
	"mpidetect/internal/dtree"
	"mpidetect/internal/gnn"
	"mpidetect/internal/ir2vec"
)

// ArtifactVersion is the current on-disk model format version.
const ArtifactVersion = 2

// compatibleArtifactVersions lists older versions Load still converts.
var compatibleArtifactVersions = map[int]bool{1: true}

const artifactMagic = "MPIDETECT-MODEL"

// Model kinds stored in the artifact header.
const (
	kindIR2Vec = "ir2vec"
	kindGNN    = "gnn"
)

// artifactHeader prefixes every model artifact.
type artifactHeader struct {
	Magic   string
	Version int
	Kind    string
}

// ir2vecState is the exported gob mirror of IR2VecDetector.
type ir2vecState struct {
	Cfg    IR2VecConfig
	Enc    *ir2vec.Encoder
	Norm   *ir2vec.Normalizer
	Tree   *dtree.Tree
	Labels []dataset.Label
}

// gnnState is the exported gob mirror of GNNDetector.
type gnnState struct {
	Cfg   GNNDetectorConfig
	Model *gnn.Model
}

// SaveDetector serializes a trained detector to w in the versioned
// artifact format.
func SaveDetector(w io.Writer, d Detector) error {
	enc := gob.NewEncoder(w)
	switch det := d.(type) {
	case *IR2VecDetector:
		if err := enc.Encode(artifactHeader{artifactMagic, ArtifactVersion, kindIR2Vec}); err != nil {
			return fmt.Errorf("core: writing model header: %w", err)
		}
		if err := enc.Encode(ir2vecState{det.cfg, det.enc, det.norm, det.tree, det.labels}); err != nil {
			return fmt.Errorf("core: writing %s model: %w", det.Name(), err)
		}
	case *GNNDetector:
		if err := enc.Encode(artifactHeader{artifactMagic, ArtifactVersion, kindGNN}); err != nil {
			return fmt.Errorf("core: writing model header: %w", err)
		}
		if err := enc.Encode(gnnState{det.cfg, det.model}); err != nil {
			return fmt.Errorf("core: writing %s model: %w", det.Name(), err)
		}
	default:
		return fmt.Errorf("core: cannot serialize detector type %T", d)
	}
	return nil
}

// LoadDetector reads a detector artifact written by SaveDetector,
// rejecting non-artifacts, stale versions, and unknown model kinds.
func LoadDetector(r io.Reader) (Detector, error) {
	dec := gob.NewDecoder(r)
	var h artifactHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("core: reading model header: %w", err)
	}
	if h.Magic != artifactMagic {
		return nil, errors.New("core: not an mpidetect model artifact")
	}
	if h.Version != ArtifactVersion && !compatibleArtifactVersions[h.Version] {
		return nil, fmt.Errorf("core: model artifact version %d is not supported by this binary (want %d or a compatible older version); retrain and re-save",
			h.Version, ArtifactVersion)
	}
	switch h.Kind {
	case kindIR2Vec:
		var st ir2vecState
		if err := dec.Decode(&st); err != nil {
			return nil, fmt.Errorf("core: reading ir2vec model: %w", err)
		}
		if st.Enc == nil || st.Norm == nil || st.Tree == nil || len(st.Labels) == 0 {
			return nil, errors.New("core: incomplete ir2vec model artifact")
		}
		// The tree indexes the concatenated [symbolic || flow-aware]
		// vector; a tree consulting coordinates beyond it would panic at
		// inference time.
		if st.Tree.MaxFeature() >= 2*st.Enc.Dim {
			return nil, errors.New("core: corrupt ir2vec model artifact: tree feature index exceeds embedding width")
		}
		if st.Tree.Classes > len(st.Labels) {
			return nil, errors.New("core: corrupt ir2vec model artifact: tree classes exceed label table")
		}
		return &IR2VecDetector{cfg: st.Cfg, enc: st.Enc, norm: st.Norm,
			tree: st.Tree, labels: st.Labels}, nil
	case kindGNN:
		var st gnnState
		if err := dec.Decode(&st); err != nil {
			return nil, fmt.Errorf("core: reading gnn model: %w", err)
		}
		if st.Model == nil {
			return nil, errors.New("core: incomplete gnn model artifact")
		}
		return &GNNDetector{cfg: st.Cfg, model: st.Model}, nil
	default:
		return nil, fmt.Errorf("core: unknown model kind %q in artifact", h.Kind)
	}
}

// SaveDetectorFile writes the artifact to path via a temp file + rename so
// a crash mid-write never leaves a truncated model behind.
func SaveDetectorFile(path string, d Detector) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".mpidetect-model-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := SaveDetector(tmp, d); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadDetectorFile reads a detector artifact from path.
func LoadDetectorFile(path string) (Detector, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadDetector(f)
}
