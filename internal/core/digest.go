// Canonical content digests for the serving path's content-addressed
// cache. Two programs are "the same" — and may share one cached verdict —
// exactly when their normalized textual IR is byte-identical AND they are
// judged by the same detector family at the same optimisation level under
// the same artifact format version:
//
//	digest = sha256("v" ArtifactVersion "|" detector.Name() "|" detector.Opt() "|" NormalizeIR(src))
//
// Normalization is purely lexical (whitespace- and comment-insensitive),
// so it never changes what the detector sees: every program still parses
// and classifies from its original text. What the digest deliberately
// does NOT include is model weights — retraining a detector of the same
// family produces identical digests, which is why the serving layer
// invalidates a model's cache entries whenever its registry slot is
// replaced (Registry.Register / LoadFile).
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"mpidetect/internal/ast"
)

// NormalizeIR canonicalizes textual IR for digesting: comment lines (";")
// and blank lines are dropped, and every run of spaces/tabs collapses to
// a single space. The result is NOT parseable IR — it exists only to make
// digests insensitive to formatting.
func NormalizeIR(src string) string {
	return string(appendNormalizedIR(make([]byte, 0, len(src)), src))
}

// appendNormalizedIR is a single-pass, allocation-free (modulo dst
// growth) normalizer; digesting runs on the serving hot path for every
// program of every request, so it must stay cheap next to a map lookup.
// Bytes inside double-quoted literals (IR c"..." constants, C string
// literals) are copied verbatim — whitespace there is program content,
// not formatting — with backslash escapes honoured so an escaped quote
// cannot end the literal. Quote state resets at end of line, since
// neither representation carries a literal across lines.
func appendNormalizedIR(dst []byte, src string) []byte {
	atLineStart := true   // no non-blank byte seen on this line yet
	skipLine := false     // comment line: discard until '\n'
	pendingSpace := false // a whitespace run awaits the next non-blank byte
	wrote := false        // this line contributed output
	inQuote := false      // inside a "..." literal: copy verbatim
	escaped := false      // previous in-quote byte was a backslash
	for i := 0; i < len(src); i++ {
		ch := src[i]
		if ch == '\n' {
			if wrote {
				dst = append(dst, '\n')
			}
			atLineStart, skipLine, pendingSpace, wrote = true, false, false, false
			inQuote, escaped = false, false
			continue
		}
		switch {
		case skipLine:
		case inQuote:
			dst = append(dst, ch)
			switch {
			case escaped:
				escaped = false
			case ch == '\\':
				escaped = true
			case ch == '"':
				inQuote = false
			}
		case ch == ' ' || ch == '\t' || ch == '\r':
			pendingSpace = wrote
		default:
			if atLineStart && ch == ';' {
				skipLine = true
				continue
			}
			atLineStart = false
			if pendingSpace {
				dst = append(dst, ' ')
				pendingSpace = false
			}
			dst = append(dst, ch)
			wrote = true
			if ch == '"' {
				inQuote = true
				escaped = false
			}
		}
	}
	if wrote { // final line without trailing newline
		dst = append(dst, '\n')
	}
	return dst
}

// digest hashes the detector identity header plus normalized body.
func digest(d Detector, namespace, body string) string {
	buf := make([]byte, 0, len(body)+64)
	buf = fmt.Appendf(buf, "v%d|%s|%s|%s|", ArtifactVersion, d.Name(), d.Opt(), namespace)
	buf = appendNormalizedIR(buf, body)
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:])
}

// DigestIR returns the canonical cache digest of a textual-IR program as
// judged by detector d (hex sha256). It requires no parse, so a cache hit
// skips the whole parse→optimise→embed→predict pipeline.
func DigestIR(d Detector, src string) string {
	return digest(d, "ir", src)
}

// DigestProgram is DigestIR for an MPI-C AST program: the digest is taken
// over the rendered C source (same lexical normalization), so re-slicing
// tools that generate identical units (fault localisation, CI re-checks)
// address the same cache entry.
func DigestProgram(d Detector, p *ast.Program) string {
	return digest(d, "c", ast.RenderC(p))
}

// DigestIRKeyed is DigestIR for analyses that are not trained detectors:
// ident names the analysis identity — an expert tool plus every piece of
// configuration that can change its verdict (simulated ranks, step
// budget, ...). Two programs share a cached tool verdict exactly when
// their normalized IR is byte-identical AND ident matches, under the
// same artifact format version.
func DigestIRKeyed(ident, src string) string {
	buf := make([]byte, 0, len(src)+64)
	buf = fmt.Appendf(buf, "v%d|%s|ir|", ArtifactVersion, ident)
	buf = appendNormalizedIR(buf, src)
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:])
}
