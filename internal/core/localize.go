package core

import (
	"sort"
	"time"

	"mpidetect/internal/ast"
	"mpidetect/internal/cache"
	"mpidetect/internal/ir"
	"mpidetect/internal/par"
)

// FunctionSuspicion scores one function of a program.
type FunctionSuspicion struct {
	Function  string
	Incorrect bool
	// Score orders functions by how confidently the detector flags the
	// compilation unit containing only this function (plus main's context).
	Score float64
}

// VerdictCache is a content-addressed verdict cache keyed by
// DigestProgram/DigestIR digests; LocalizeErrorCached routes every
// per-unit classification through one, so repeated localisations of the
// same program (CI re-checks, per-commit fault scans) pay the pipeline
// once per distinct unit.
//
// A VerdictCache is bound to the training state of the detectors used
// with it: digests deliberately exclude model weights (see the digest
// contract in digest.go), so after retraining or reloading a detector
// the caller MUST discard the cache (or sweep it with InvalidatePrefix)
// — reusing it would serve the predecessor model's verdicts as hits.
// internal/serve automates exactly this via Registry.OnReplace.
type VerdictCache = cache.Cache[Verdict]

// NewVerdictCache builds a verdict cache. capacity <= 0 and ttl <= 0
// take the cache package defaults (4096 entries, no expiry).
func NewVerdictCache(capacity int, ttl time.Duration) *VerdictCache {
	return cache.New[Verdict](cache.Config{Capacity: capacity, TTL: ttl})
}

// LocalizeError implements the paper's §VI direction: "applying our models
// at different code granularities by extracting the code into different
// compilation units — whether or not an error is detected across the
// different compilation units can serve as a guideline for the exact error
// location". The program is re-sliced into one compilation unit per
// non-main function (each unit = that function plus a synthetic main
// calling it); the detector classifies every unit, and functions whose
// units are flagged are returned first.
func LocalizeError(d Detector, p *ast.Program) ([]FunctionSuspicion, error) {
	return localize(d, p, nil)
}

// LocalizeErrorCached is LocalizeError with every per-unit verdict served
// through c: units already judged (by digest, not by pointer identity)
// skip the compile→embed→predict pipeline entirely, and concurrent
// localisations of the same program coalesce on one execution per unit.
func LocalizeErrorCached(d Detector, p *ast.Program, c *VerdictCache) ([]FunctionSuspicion, error) {
	return localize(d, p, c)
}

func localize(d Detector, p *ast.Program, c *VerdictCache) ([]FunctionSuspicion, error) {
	type unit struct {
		name string
		prog *ast.Program
	}
	var units []unit
	for _, f := range p.Funcs {
		if f.Name == "main" {
			continue
		}
		units = append(units, unit{f.Name, sliceUnit(p, f)})
	}
	// Whole-program verdict for main itself.
	units = append(units, unit{"main", p})

	// One classification per unit, fanned across cores; the detector is
	// read-only after training so concurrent CheckProgram calls are safe.
	scored := make([]*FunctionSuspicion, len(units))
	par.Map(len(units), func(i int) {
		u := units[i]
		check := func() (Verdict, error) { return d.CheckProgram(u.prog) }
		var v Verdict
		var err error
		if c != nil {
			v, err = c.GetOrCompute(DigestProgram(d, u.prog), check)
		} else {
			v, err = check()
		}
		if err != nil {
			// Units that fail to compile in isolation are skipped (the
			// paper's granularity study tolerates partial units).
			return
		}
		scored[i] = &FunctionSuspicion{Function: u.name, Incorrect: v.Incorrect, Score: condScore(v)}
	})
	var out []FunctionSuspicion
	for _, s := range scored {
		if s != nil {
			out = append(out, *s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out, nil
}

func condScore(v Verdict) float64 {
	if v.Incorrect {
		return v.Confidence
	}
	return -v.Confidence
}

// sliceUnit builds a compilation unit holding one function wrapped in a
// synthetic main that performs the MPI prologue/epilogue and invokes it
// with simple arguments.
func sliceUnit(p *ast.Program, f *ast.FuncDecl) *ast.Program {
	stmts := ast.MPIBoilerplate()
	args := make([]ast.Expr, len(f.Params))
	for i, prm := range f.Params {
		switch prm.Name {
		case "rank":
			args[i] = ast.Id("rank")
		case "size":
			args[i] = ast.Id("size")
		default:
			args[i] = argFor(prm.Type)
		}
	}
	call := &ast.CallExpr{Name: f.Name, Args: args}
	if f.Ret.Kind == ast.TVoid {
		stmts = append(stmts, ast.X(call))
	} else {
		stmts = append(stmts, ast.Decl("unit_result", f.Ret, call))
	}
	stmts = append(stmts, ast.Finalize())
	return &ast.Program{
		Name:     p.Name + "." + f.Name,
		Includes: p.Includes,
		Funcs: []*ast.FuncDecl{f,
			ast.Fn("main", ast.Int, nil, append(stmts, ast.Ret(ast.I(0)))...)},
	}
}

func argFor(t *ast.Type) ast.Expr {
	switch t.Kind {
	case ast.TDouble:
		return ast.F(1.0)
	default:
		return ast.I(1)
	}
}

// IRFunctions splits a compiled module into per-function instruction
// counts, a cheap structural profile used by callers that want to report
// the suspicious unit's size alongside the suspicion score.
func IRFunctions(m *ir.Module) map[string]int {
	out := map[string]int{}
	for _, f := range m.Defined() {
		out[f.Name] = f.NumInstrs()
	}
	return out
}
