package core

import (
	"sort"

	"mpidetect/internal/ast"
	"mpidetect/internal/ir"
)

// FunctionSuspicion scores one function of a program.
type FunctionSuspicion struct {
	Function  string
	Incorrect bool
	// Score orders functions by how confidently the detector flags the
	// compilation unit containing only this function (plus main's context).
	Score float64
}

// LocalizeError implements the paper's §VI direction: "applying our models
// at different code granularities by extracting the code into different
// compilation units — whether or not an error is detected across the
// different compilation units can serve as a guideline for the exact error
// location". The program is re-sliced into one compilation unit per
// non-main function (each unit = that function plus a synthetic main
// calling it); the detector classifies every unit, and functions whose
// units are flagged are returned first.
func LocalizeError(d Detector, p *ast.Program) ([]FunctionSuspicion, error) {
	var out []FunctionSuspicion
	for _, f := range p.Funcs {
		if f.Name == "main" {
			continue
		}
		unit := sliceUnit(p, f)
		v, err := d.CheckProgram(unit)
		if err != nil {
			// Units that fail to compile in isolation are skipped (the
			// paper's granularity study tolerates partial units).
			continue
		}
		score := v.Confidence
		if !v.Incorrect {
			score = -v.Confidence
		}
		out = append(out, FunctionSuspicion{Function: f.Name, Incorrect: v.Incorrect, Score: score})
	}
	// Whole-program verdict for main itself.
	if v, err := d.CheckProgram(p); err == nil {
		out = append(out, FunctionSuspicion{Function: "main", Incorrect: v.Incorrect,
			Score: condScore(v)})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out, nil
}

func condScore(v Verdict) float64 {
	if v.Incorrect {
		return v.Confidence
	}
	return -v.Confidence
}

// sliceUnit builds a compilation unit holding one function wrapped in a
// synthetic main that performs the MPI prologue/epilogue and invokes it
// with simple arguments.
func sliceUnit(p *ast.Program, f *ast.FuncDecl) *ast.Program {
	stmts := ast.MPIBoilerplate()
	args := make([]ast.Expr, len(f.Params))
	for i, prm := range f.Params {
		switch prm.Name {
		case "rank":
			args[i] = ast.Id("rank")
		case "size":
			args[i] = ast.Id("size")
		default:
			args[i] = argFor(prm.Type)
		}
	}
	call := &ast.CallExpr{Name: f.Name, Args: args}
	if f.Ret.Kind == ast.TVoid {
		stmts = append(stmts, ast.X(call))
	} else {
		stmts = append(stmts, ast.Decl("unit_result", f.Ret, call))
	}
	stmts = append(stmts, ast.Finalize())
	return &ast.Program{
		Name:     p.Name + "." + f.Name,
		Includes: p.Includes,
		Funcs: []*ast.FuncDecl{f,
			ast.Fn("main", ast.Int, nil, append(stmts, ast.Ret(ast.I(0)))...)},
	}
}

func argFor(t *ast.Type) ast.Expr {
	switch t.Kind {
	case ast.TDouble:
		return ast.F(1.0)
	default:
		return ast.I(1)
	}
}

// IRFunctions splits a compiled module into per-function instruction
// counts, a cheap structural profile used by callers that want to report
// the suspicious unit's size alongside the suspicion score.
func IRFunctions(m *ir.Module) map[string]int {
	out := map[string]int{}
	for _, f := range m.Defined() {
		out[f.Name] = f.NumInstrs()
	}
	return out
}
