package core

import (
	"testing"

	"mpidetect/internal/dataset"
	"mpidetect/internal/irgen"
	"mpidetect/internal/passes"
)

func TestLocalizeErrorRuns(t *testing.T) {
	train := trainingSlice(7, 30)
	cfg := DefaultIR2VecConfig()
	cfg.Dim = 48
	det, err := TrainIR2Vec(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	buggy, _ := dataset.HypreCase(1)
	sus, err := LocalizeError(det, buggy.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(sus) < 5 {
		t.Fatalf("localization returned %d units, want >= 5 (one per function + main)", len(sus))
	}
	names := map[string]bool{}
	for _, s := range sus {
		names[s.Function] = true
	}
	for _, want := range []string{"hypre_ExchangeBoundary", "hypre_SMGRelax", "main"} {
		if !names[want] {
			t.Errorf("localization missing unit %q", want)
		}
	}
	// Scores must be sorted descending.
	for i := 1; i < len(sus); i++ {
		if sus[i].Score > sus[i-1].Score {
			t.Fatal("suspicions not sorted by score")
		}
	}
}

func TestIRFunctions(t *testing.T) {
	buggy, _ := dataset.HypreCase(1)
	m := irgen.MustLower(buggy.Prog)
	passes.Optimize(m, passes.O0)
	counts := IRFunctions(m)
	if counts["hypre_ExchangeBoundary"] == 0 || counts["main"] == 0 {
		t.Errorf("IRFunctions missing entries: %v", counts)
	}
}
