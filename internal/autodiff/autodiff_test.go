package autodiff

import (
	"math"
	"math/rand"
	"testing"

	"mpidetect/internal/tensor"
)

// numGrad estimates d(loss)/d(x[i]) by central differences for a scalar
// loss produced by f from the current contents of x.
func numGrad(x *tensor.Mat, f func() float64) *tensor.Mat {
	const h = 1e-6
	out := tensor.New(x.R, x.C)
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		up := f()
		x.Data[i] = orig - h
		down := f()
		x.Data[i] = orig
		out.Data[i] = (up - down) / (2 * h)
	}
	return out
}

// checkGrad builds the graph via build (returning the scalar loss node and
// the input node), runs Backward, and compares the analytic input gradient
// with numerical differentiation.
func checkGrad(t *testing.T, name string, x *tensor.Mat, build func(tp *Tape, in *Node) *Node) {
	t.Helper()
	f := func() float64 {
		tp := NewTape()
		in := tp.Input(x)
		return build(tp, in).Val.Data[0]
	}
	want := numGrad(x, f)
	tp := NewTape()
	in := tp.Input(x)
	loss := build(tp, in)
	tp.Backward(loss)
	if !tensor.Equalish(in.Grad, want, 1e-4) {
		t.Errorf("%s: analytic grad %v != numeric %v", name, in.Grad.Data, want.Data)
	}
}

// sumAll reduces any node to a scalar via fixed random weights (so the
// gradient is non-trivial).
func sumAll(tp *Tape, n *Node) *Node {
	w := tensor.New(n.Val.C, 1)
	for i := range w.Data {
		w.Data[i] = float64(i%5) - 2.1
	}
	col := tp.MatMul(n, tp.Input(w))
	ones := tensor.New(1, col.Val.R)
	for i := range ones.Data {
		ones.Data[i] = float64(i%3) + 0.5
	}
	return tp.MatMul(tp.Input(ones), col)
}

func randMat(rng *rand.Rand, r, c int) *tensor.Mat {
	return tensor.Randn(rng, r, c, 1)
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randMat(rng, 3, 4)
	other := randMat(rng, 4, 2)
	checkGrad(t, "matmul", x, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.MatMul(in, tp.Input(other)))
	})
}

func TestGradAddAndAddRow(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randMat(rng, 3, 4)
	b := randMat(rng, 3, 4)
	checkGrad(t, "add", x, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.Add(in, tp.Input(b)))
	})
	row := randMat(rng, 1, 4)
	checkGrad(t, "addrow", x, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.AddRow(in, tp.Input(row)))
	})
	// gradient also flows into the broadcast row
	checkGrad(t, "addrow-row", row, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.AddRow(tp.Input(x), in))
	})
}

func TestGradActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randMat(rng, 4, 3)
	checkGrad(t, "leakyrelu", x, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.LeakyReLU(in, 0.2))
	})
	checkGrad(t, "elu", x, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.ELU(in))
	})
}

func TestGradGatherSegment(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randMat(rng, 4, 3)
	idx := []int{0, 2, 2, 3, 1, 0}
	seg := []int{0, 0, 1, 2, 2, 2}
	checkGrad(t, "gather", x, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.Gather(in, idx))
	})
	checkGrad(t, "segsum", x, func(tp *Tape, in *Node) *Node {
		g := tp.Gather(in, idx)
		return sumAll(tp, tp.SegmentSum(g, seg, 3))
	})
}

func TestGradSegmentSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randMat(rng, 6, 1)
	seg := []int{0, 0, 1, 1, 1, 2}
	checkGrad(t, "segsoftmax", x, func(tp *Tape, in *Node) *Node {
		sm := tp.SegmentSoftmax(in, seg, 3)
		w := tensor.New(1, 6)
		for i := range w.Data {
			w.Data[i] = float64(i) - 2.5
		}
		return tp.MatMul(tp.Input(w), sm)
	})
}

func TestSegmentSoftmaxNormalises(t *testing.T) {
	tp := NewTape()
	x := tp.Input(tensor.FromSlice(5, 1, []float64{1, 2, 3, -1, 0}))
	seg := []int{0, 0, 0, 1, 1}
	sm := tp.SegmentSoftmax(x, seg, 2)
	s0 := sm.Val.Data[0] + sm.Val.Data[1] + sm.Val.Data[2]
	s1 := sm.Val.Data[3] + sm.Val.Data[4]
	if math.Abs(s0-1) > 1e-12 || math.Abs(s1-1) > 1e-12 {
		t.Errorf("segment sums = %g, %g; want 1", s0, s1)
	}
}

func TestGradMulCol(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randMat(rng, 4, 3)
	col := randMat(rng, 4, 1)
	checkGrad(t, "mulcol-a", x, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.MulCol(in, tp.Input(col)))
	})
	checkGrad(t, "mulcol-col", col, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.MulCol(tp.Input(x), in))
	})
}

func TestGradPooling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randMat(rng, 5, 3)
	checkGrad(t, "maxrows", x, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.MaxRows(in))
	})
	checkGrad(t, "meanrows", x, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.MeanRows(in))
	})
}

func TestGradConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randMat(rng, 3, 2)
	b := randMat(rng, 3, 4)
	checkGrad(t, "concat-a", a, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.Concat(in, tp.Input(b)))
	})
	checkGrad(t, "concat-b", b, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.Concat(tp.Input(a), in))
	})
}

func TestGradCrossEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	logits := randMat(rng, 1, 5)
	checkGrad(t, "ce", logits, func(tp *Tape, in *Node) *Node {
		return tp.CrossEntropyLogits(in, 2)
	})
}

func TestSoftmaxSumsToOne(t *testing.T) {
	p := Softmax([]float64{2, -1, 0.5, 3})
	s := 0.0
	for _, v := range p {
		s += v
	}
	if math.Abs(s-1) > 1e-12 {
		t.Errorf("softmax sums to %g", s)
	}
	if p[3] <= p[0] {
		t.Error("softmax ordering wrong")
	}
}

func TestGradChain(t *testing.T) {
	// Composite check: a miniature GATv2-shaped computation end to end.
	rng := rand.New(rand.NewSource(10))
	h := randMat(rng, 4, 3)
	w := randMat(rng, 3, 2)
	att := randMat(rng, 2, 1)
	src := []int{0, 1, 2, 3, 1}
	dst := []int{1, 0, 0, 2, 2}
	checkGrad(t, "gat-chain", h, func(tp *Tape, in *Node) *Node {
		hw := tp.MatMul(in, tp.Input(w))
		es := tp.Gather(hw, src)
		ed := tp.Gather(hw, dst)
		s := tp.LeakyReLU(tp.Add(es, ed), 0.2)
		e := tp.MatMul(s, tp.Input(att))
		al := tp.SegmentSoftmax(e, dst, 4)
		msg := tp.MulCol(es, al)
		out := tp.SegmentSum(msg, dst, 4)
		return sumAll(tp, out)
	})
}

// runPass builds a graph over fresh inputs, backprops the scalar loss and
// returns (loss value, input grads) for fused-vs-unfused comparisons.
func runPass(xs []*tensor.Mat, build func(tp *Tape, ins []*Node) *Node) (float64, []*tensor.Mat) {
	tp := NewTape()
	ins := make([]*Node, len(xs))
	for i, x := range xs {
		ins[i] = tp.Input(x)
	}
	loss := build(tp, ins)
	tp.Backward(loss)
	grads := make([]*tensor.Mat, len(ins))
	for i, in := range ins {
		grads[i] = in.Grad.Clone()
	}
	return loss.Val.Data[0], grads
}

// TestFusedOpsBitIdentical pins each fused op to the exact composition it
// replaces: same loss bits, same input-gradient bits. The GNN's training
// determinism across hosts depends on this.
func TestFusedOpsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	randn := func(r, c int) *tensor.Mat { return tensor.Randn(rng, r, c, 1) }
	seg := []int{0, 2, 1, 2, 0, 2, 1, 1}

	cases := []struct {
		name    string
		xs      []*tensor.Mat
		fused   func(tp *Tape, ins []*Node) *Node
		unfused func(tp *Tape, ins []*Node) *Node
	}{
		{
			name: "MatMulAddRow",
			xs:   []*tensor.Mat{randn(6, 4), randn(4, 3), randn(1, 3)},
			fused: func(tp *Tape, ins []*Node) *Node {
				return sumAll(tp, tp.MatMulAddRow(ins[0], ins[1], ins[2]))
			},
			unfused: func(tp *Tape, ins []*Node) *Node {
				return sumAll(tp, tp.AddRow(tp.MatMul(ins[0], ins[1]), ins[2]))
			},
		},
		{
			name: "AddLeakyReLU",
			xs:   []*tensor.Mat{randn(8, 5), randn(8, 5)},
			fused: func(tp *Tape, ins []*Node) *Node {
				return sumAll(tp, tp.AddLeakyReLU(ins[0], ins[1], 0.2))
			},
			unfused: func(tp *Tape, ins []*Node) *Node {
				return sumAll(tp, tp.LeakyReLU(tp.Add(ins[0], ins[1]), 0.2))
			},
		},
		{
			name: "SegmentSumMulCol",
			xs:   []*tensor.Mat{randn(8, 5), randn(8, 1)},
			fused: func(tp *Tape, ins []*Node) *Node {
				return sumAll(tp, tp.SegmentSumMulCol(ins[0], ins[1], seg, 3))
			},
			unfused: func(tp *Tape, ins []*Node) *Node {
				return sumAll(tp, tp.SegmentSum(tp.MulCol(ins[0], ins[1]), seg, 3))
			},
		},
	}
	for _, c := range cases {
		lf, gf := runPass(c.xs, c.fused)
		lu, gu := runPass(c.xs, c.unfused)
		if lf != lu {
			t.Errorf("%s: fused loss %v != unfused %v", c.name, lf, lu)
		}
		for i := range gf {
			for j := range gf[i].Data {
				if gf[i].Data[j] != gu[i].Data[j] {
					t.Fatalf("%s: input %d grad[%d] fused %v != unfused %v",
						c.name, i, j, gf[i].Data[j], gu[i].Data[j])
				}
			}
		}
	}
}

// TestGradFusedOps property-checks the fused gradients against numerical
// differentiation directly.
func TestGradFusedOps(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.Randn(rng, 5, 4, 1)
	w := tensor.Randn(rng, 4, 3, 1)
	bias := tensor.Randn(rng, 1, 3, 1)
	checkGrad(t, "MatMulAddRow", x, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.MatMulAddRow(in, tp.Input(w), tp.Input(bias)))
	})
	other := tensor.Randn(rng, 5, 4, 1)
	checkGrad(t, "AddLeakyReLU", x, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.AddLeakyReLU(in, tp.Input(other), 0.2))
	})
	col := tensor.Randn(rng, 5, 1, 1)
	seg := []int{1, 0, 1, 2, 0}
	checkGrad(t, "SegmentSumMulCol.a", x, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.SegmentSumMulCol(in, tp.Input(col), seg, 3))
	})
	checkGrad(t, "SegmentSumMulCol.col", col, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.SegmentSumMulCol(tp.Input(x), in, seg, 3))
	})
}

// TestInferenceTapeMatchesTraining checks a forward-only tape produces the
// same values as a recording tape and allocates no gradient storage.
func TestInferenceTapeMatchesTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	x := tensor.Randn(rng, 6, 4, 1)
	w := tensor.Randn(rng, 4, 3, 1)
	build := func(tp *Tape) *Node {
		in := tp.Input(x)
		h := tp.ELU(tp.MatMul(in, tp.Input(w)))
		return tp.MaxRows(h)
	}
	train := build(NewTape())
	inf := NewTape()
	inf.SetInference(true)
	got := build(inf)
	for i := range train.Val.Data {
		if got.Val.Data[i] != train.Val.Data[i] {
			t.Fatalf("inference value %d: %v != %v", i, got.Val.Data[i], train.Val.Data[i])
		}
	}
	if got.Grad != nil {
		t.Error("inference node carries gradient storage")
	}
	defer func() {
		if recover() == nil {
			t.Error("Backward on an inference tape did not panic")
		}
	}()
	inf.Backward(got)
}

// TestTapeResetReusesArena checks that a reused tape allocates (almost)
// nothing after warm-up and keeps producing identical results.
func TestTapeResetReusesArena(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.Randn(rng, 10, 8, 1)
	w := tensor.Randn(rng, 8, 6, 1)
	tp := NewTape()
	pass := func() float64 {
		tp.Reset()
		in := tp.Input(x)
		loss := sumAll(tp, tp.ELU(tp.MatMul(in, tp.Input(w))))
		tp.Backward(loss)
		return loss.Val.Data[0]
	}
	first := pass()
	allocs := testing.AllocsPerRun(20, func() {
		if pass() != first {
			t.Fatal("reused tape changed the result")
		}
	})
	// Backward closures still allocate; matrices and nodes must not.
	if allocs > 24 {
		t.Errorf("reused tape allocates %v times per pass, want <= 24", allocs)
	}
}

// TestELUAddNBitIdentical pins the fused accumulate+activate against the
// Add-chain + ELU composition it replaces.
func TestELUAddNBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	xs := []*tensor.Mat{
		tensor.Randn(rng, 7, 5, 1),
		tensor.Randn(rng, 7, 5, 1),
		tensor.Randn(rng, 7, 5, 1),
	}
	lf, gf := runPass(xs, func(tp *Tape, ins []*Node) *Node {
		return sumAll(tp, tp.ELUAddN(ins[0], ins[1], ins[2]))
	})
	lu, gu := runPass(xs, func(tp *Tape, ins []*Node) *Node {
		return sumAll(tp, tp.ELU(tp.Add(tp.Add(ins[0], ins[1]), ins[2])))
	})
	if lf != lu {
		t.Errorf("fused loss %v != unfused %v", lf, lu)
	}
	for i := range gf {
		for j := range gf[i].Data {
			if gf[i].Data[j] != gu[i].Data[j] {
				t.Fatalf("input %d grad[%d]: fused %v != unfused %v",
					i, j, gf[i].Data[j], gu[i].Data[j])
			}
		}
	}
	// Single-input degenerate form equals plain ELU.
	l1, _ := runPass(xs[:1], func(tp *Tape, ins []*Node) *Node {
		return sumAll(tp, tp.ELUAddN(ins[0]))
	})
	l2, _ := runPass(xs[:1], func(tp *Tape, ins []*Node) *Node {
		return sumAll(tp, tp.ELU(ins[0]))
	})
	if l1 != l2 {
		t.Errorf("single-input ELUAddN %v != ELU %v", l1, l2)
	}
}

// TestSegmentMaxRowsMatchesMaxRows pins the segmented pool to a per-segment
// MaxRows, value and gradient: a block of rows pooled through the batch op
// must be bit-identical to pooling it alone.
func TestSegmentMaxRowsMatchesMaxRows(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := randMat(rng, 7, 4)
	seg := []int{0, 0, 0, 2, 2, 2, 2} // segment 1 deliberately empty
	tp := NewTape()
	in := tp.Input(x)
	out := tp.SegmentMaxRows(in, seg, 3)
	if out.Val.R != 3 || out.Val.C != 4 {
		t.Fatalf("shape %dx%d, want 3x4", out.Val.R, out.Val.C)
	}
	for j := 0; j < 4; j++ {
		if out.Val.At(1, j) != 0 {
			t.Fatalf("empty segment column %d = %v, want 0", j, out.Val.At(1, j))
		}
	}
	for _, blk := range [][2]int{{0, 3}, {3, 7}} {
		sub := &tensor.Mat{R: blk[1] - blk[0], C: 4, Data: x.Data[blk[0]*4 : blk[1]*4]}
		tps := NewTape()
		ref := tps.MaxRows(tps.Input(sub))
		s := seg[blk[0]]
		for j := 0; j < 4; j++ {
			if out.Val.At(s, j) != ref.Val.Data[j] {
				t.Fatalf("segment %d column %d: %v, want %v", s, j, out.Val.At(s, j), ref.Val.Data[j])
			}
		}
	}
	checkGrad(t, "segmentmaxrows", x, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.SegmentMaxRows(in, seg, 3))
	})
}
