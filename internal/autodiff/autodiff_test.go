package autodiff

import (
	"math"
	"math/rand"
	"testing"

	"mpidetect/internal/tensor"
)

// numGrad estimates d(loss)/d(x[i]) by central differences for a scalar
// loss produced by f from the current contents of x.
func numGrad(x *tensor.Mat, f func() float64) *tensor.Mat {
	const h = 1e-6
	out := tensor.New(x.R, x.C)
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		up := f()
		x.Data[i] = orig - h
		down := f()
		x.Data[i] = orig
		out.Data[i] = (up - down) / (2 * h)
	}
	return out
}

// checkGrad builds the graph via build (returning the scalar loss node and
// the input node), runs Backward, and compares the analytic input gradient
// with numerical differentiation.
func checkGrad(t *testing.T, name string, x *tensor.Mat, build func(tp *Tape, in *Node) *Node) {
	t.Helper()
	f := func() float64 {
		tp := NewTape()
		in := tp.Input(x)
		return build(tp, in).Val.Data[0]
	}
	want := numGrad(x, f)
	tp := NewTape()
	in := tp.Input(x)
	loss := build(tp, in)
	tp.Backward(loss)
	if !tensor.Equalish(in.Grad, want, 1e-4) {
		t.Errorf("%s: analytic grad %v != numeric %v", name, in.Grad.Data, want.Data)
	}
}

// sumAll reduces any node to a scalar via fixed random weights (so the
// gradient is non-trivial).
func sumAll(tp *Tape, n *Node) *Node {
	w := tensor.New(n.Val.C, 1)
	for i := range w.Data {
		w.Data[i] = float64(i%5) - 2.1
	}
	col := tp.MatMul(n, tp.Input(w))
	ones := tensor.New(1, col.Val.R)
	for i := range ones.Data {
		ones.Data[i] = float64(i%3) + 0.5
	}
	return tp.MatMul(tp.Input(ones), col)
}

func randMat(rng *rand.Rand, r, c int) *tensor.Mat {
	return tensor.Randn(rng, r, c, 1)
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randMat(rng, 3, 4)
	other := randMat(rng, 4, 2)
	checkGrad(t, "matmul", x, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.MatMul(in, tp.Input(other)))
	})
}

func TestGradAddAndAddRow(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randMat(rng, 3, 4)
	b := randMat(rng, 3, 4)
	checkGrad(t, "add", x, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.Add(in, tp.Input(b)))
	})
	row := randMat(rng, 1, 4)
	checkGrad(t, "addrow", x, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.AddRow(in, tp.Input(row)))
	})
	// gradient also flows into the broadcast row
	checkGrad(t, "addrow-row", row, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.AddRow(tp.Input(x), in))
	})
}

func TestGradActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randMat(rng, 4, 3)
	checkGrad(t, "leakyrelu", x, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.LeakyReLU(in, 0.2))
	})
	checkGrad(t, "elu", x, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.ELU(in))
	})
}

func TestGradGatherSegment(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randMat(rng, 4, 3)
	idx := []int{0, 2, 2, 3, 1, 0}
	seg := []int{0, 0, 1, 2, 2, 2}
	checkGrad(t, "gather", x, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.Gather(in, idx))
	})
	checkGrad(t, "segsum", x, func(tp *Tape, in *Node) *Node {
		g := tp.Gather(in, idx)
		return sumAll(tp, tp.SegmentSum(g, seg, 3))
	})
}

func TestGradSegmentSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randMat(rng, 6, 1)
	seg := []int{0, 0, 1, 1, 1, 2}
	checkGrad(t, "segsoftmax", x, func(tp *Tape, in *Node) *Node {
		sm := tp.SegmentSoftmax(in, seg, 3)
		w := tensor.New(1, 6)
		for i := range w.Data {
			w.Data[i] = float64(i) - 2.5
		}
		return tp.MatMul(tp.Input(w), sm)
	})
}

func TestSegmentSoftmaxNormalises(t *testing.T) {
	tp := NewTape()
	x := tp.Input(tensor.FromSlice(5, 1, []float64{1, 2, 3, -1, 0}))
	seg := []int{0, 0, 0, 1, 1}
	sm := tp.SegmentSoftmax(x, seg, 2)
	s0 := sm.Val.Data[0] + sm.Val.Data[1] + sm.Val.Data[2]
	s1 := sm.Val.Data[3] + sm.Val.Data[4]
	if math.Abs(s0-1) > 1e-12 || math.Abs(s1-1) > 1e-12 {
		t.Errorf("segment sums = %g, %g; want 1", s0, s1)
	}
}

func TestGradMulCol(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randMat(rng, 4, 3)
	col := randMat(rng, 4, 1)
	checkGrad(t, "mulcol-a", x, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.MulCol(in, tp.Input(col)))
	})
	checkGrad(t, "mulcol-col", col, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.MulCol(tp.Input(x), in))
	})
}

func TestGradPooling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randMat(rng, 5, 3)
	checkGrad(t, "maxrows", x, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.MaxRows(in))
	})
	checkGrad(t, "meanrows", x, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.MeanRows(in))
	})
}

func TestGradConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randMat(rng, 3, 2)
	b := randMat(rng, 3, 4)
	checkGrad(t, "concat-a", a, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.Concat(in, tp.Input(b)))
	})
	checkGrad(t, "concat-b", b, func(tp *Tape, in *Node) *Node {
		return sumAll(tp, tp.Concat(tp.Input(a), in))
	})
}

func TestGradCrossEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	logits := randMat(rng, 1, 5)
	checkGrad(t, "ce", logits, func(tp *Tape, in *Node) *Node {
		return tp.CrossEntropyLogits(in, 2)
	})
}

func TestSoftmaxSumsToOne(t *testing.T) {
	p := Softmax([]float64{2, -1, 0.5, 3})
	s := 0.0
	for _, v := range p {
		s += v
	}
	if math.Abs(s-1) > 1e-12 {
		t.Errorf("softmax sums to %g", s)
	}
	if p[3] <= p[0] {
		t.Error("softmax ordering wrong")
	}
}

func TestGradChain(t *testing.T) {
	// Composite check: a miniature GATv2-shaped computation end to end.
	rng := rand.New(rand.NewSource(10))
	h := randMat(rng, 4, 3)
	w := randMat(rng, 3, 2)
	att := randMat(rng, 2, 1)
	src := []int{0, 1, 2, 3, 1}
	dst := []int{1, 0, 0, 2, 2}
	checkGrad(t, "gat-chain", h, func(tp *Tape, in *Node) *Node {
		hw := tp.MatMul(in, tp.Input(w))
		es := tp.Gather(hw, src)
		ed := tp.Gather(hw, dst)
		s := tp.LeakyReLU(tp.Add(es, ed), 0.2)
		e := tp.MatMul(s, tp.Input(att))
		al := tp.SegmentSoftmax(e, dst, 4)
		msg := tp.MulCol(es, al)
		out := tp.SegmentSum(msg, dst, 4)
		return sumAll(tp, out)
	})
}
