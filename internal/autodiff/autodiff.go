// Package autodiff implements a tape-based reverse-mode automatic
// differentiation engine over dense matrices, with the gather/segment
// operations graph neural networks need (edge gathers, per-destination
// softmax, segment sums, max pooling). The GNN of the paper (§IV-B) is
// built entirely from these primitives, and the gradients are
// property-tested against numerical differentiation.
//
// Tapes own an arena: node structs, matrix headers and float storage are
// slab-allocated and recycled by Reset, so a training loop that reuses
// one tape per worker runs its forward and backward passes with near-zero
// heap allocation — the GC pressure of allocating every intermediate
// matrix fresh used to dominate GNN training time.
package autodiff

import (
	"math"

	"mpidetect/internal/tensor"
)

// Node is one value in the computation graph.
type Node struct {
	Val  *tensor.Mat
	Grad *tensor.Mat
	back func()
	tape *Tape
}

// Tape records operations so Backward can replay them in reverse. The
// zero value (via NewTape) allocates lazily; Reset recycles everything the
// tape handed out, invalidating all nodes and matrices from the previous
// pass.
type Tape struct {
	nodes []*Node
	live  int

	mats     []*tensor.Mat
	matsUsed int

	slabs [][]float64
	slab  int
	off   int

	// inference skips gradient storage and backward closures: forward-only
	// passes (Predict) do half the arena traffic and no closure allocation.
	// It never changes forward arithmetic.
	inference bool
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Reset recycles the tape's arena for a fresh pass. Every *Node and every
// matrix previously returned by this tape's operations becomes invalid:
// callers must copy out any value (logits, predictions) they need before
// resetting.
func (t *Tape) Reset() {
	t.live = 0
	t.matsUsed = 0
	t.slab = 0
	t.off = 0
}

// slabFloats is the arena granularity (64k floats = 512KiB per slab).
const slabFloats = 1 << 16

// alloc hands out n floats of arena memory, zeroed when clearMem is set
// (accumulation targets need it; fully-overwritten buffers skip it).
func (t *Tape) alloc(n int, clearMem bool) []float64 {
	if n == 0 {
		return nil
	}
	for {
		if t.slab < len(t.slabs) {
			s := t.slabs[t.slab]
			if t.off+n <= len(s) {
				out := s[t.off : t.off+n : t.off+n]
				t.off += n
				if clearMem {
					for i := range out {
						out[i] = 0
					}
				}
				return out
			}
			t.slab++
			t.off = 0
			continue
		}
		size := slabFloats
		if n > size {
			size = n
		}
		t.slabs = append(t.slabs, make([]float64, size))
	}
}

// newMat returns an arena-backed r×c matrix (zeroed when clearMem).
func (t *Tape) newMat(r, c int, clearMem bool) *tensor.Mat {
	var m *tensor.Mat
	if t.matsUsed < len(t.mats) {
		m = t.mats[t.matsUsed]
	} else {
		m = &tensor.Mat{}
		t.mats = append(t.mats, m)
	}
	t.matsUsed++
	m.R, m.C = r, c
	m.Data = t.alloc(r*c, clearMem)
	return m
}

// cloneMat copies a into arena storage.
func (t *Tape) cloneMat(a *tensor.Mat) *tensor.Mat {
	m := t.newMat(a.R, a.C, false)
	copy(m.Data, a.Data)
	return m
}

func (t *Tape) node(val *tensor.Mat) *Node {
	var n *Node
	if t.live < len(t.nodes) {
		n = t.nodes[t.live]
		n.Val, n.back = val, nil
	} else {
		n = &Node{Val: val, tape: t}
		t.nodes = append(t.nodes, n)
	}
	if t.inference {
		n.Grad = nil
	} else {
		n.Grad = t.newMat(val.R, val.C, true)
	}
	t.live++
	return n
}

// Input registers a leaf value (input or parameter).
func (t *Tape) Input(val *tensor.Mat) *Node {
	return t.node(val)
}

// SetInference switches the tape into (or out of) forward-only mode from
// the next Reset onward: no gradient matrices, no backward closures.
// Backward panics on an inference tape.
func (t *Tape) SetInference(on bool) { t.inference = on }

// Backward seeds d(loss)=1 and propagates gradients to every node.
func (t *Tape) Backward(loss *Node) {
	if t.inference {
		panic("autodiff: Backward on an inference tape")
	}
	if loss.Val.R != 1 || loss.Val.C != 1 {
		panic("autodiff: Backward needs a scalar loss")
	}
	loss.Grad.Data[0] = 1
	for i := t.live - 1; i >= 0; i-- {
		if t.nodes[i].back != nil {
			t.nodes[i].back()
		}
	}
}

// MatMul returns a @ b.
func (t *Tape) MatMul(a, b *Node) *Node {
	val := t.newMat(a.Val.R, b.Val.C, true)
	tensor.MatMulInto(val, a.Val, b.Val)
	out := t.node(val)
	if !t.inference {
		out.back = func() {
			tensor.MatMulABTAddInto(a.Grad, out.Grad, b.Val)
			tmp := t.newMat(a.Val.C, out.Grad.C, true)
			tensor.MatMulATBInto(tmp, a.Val, out.Grad)
			tensor.AddInPlace(b.Grad, tmp)
		}
	}
	return out
}

// Add returns a + b (same shape).
func (t *Tape) Add(a, b *Node) *Node {
	val := t.cloneMat(a.Val)
	tensor.AddInPlace(val, b.Val)
	out := t.node(val)
	if !t.inference {
		out.back = func() {
			tensor.AddInPlace(a.Grad, out.Grad)
			tensor.AddInPlace(b.Grad, out.Grad)
		}
	}
	return out
}

// AddRow broadcasts a 1×C row b over the R×C matrix a.
func (t *Tape) AddRow(a, b *Node) *Node {
	if b.Val.R != 1 || b.Val.C != a.Val.C {
		panic("autodiff: AddRow shape mismatch")
	}
	val := t.cloneMat(a.Val)
	for i := 0; i < val.R; i++ {
		row := val.Row(i)
		for j, v := range b.Val.Data {
			row[j] += v
		}
	}
	out := t.node(val)
	if !t.inference {
		out.back = func() {
			tensor.AddInPlace(a.Grad, out.Grad)
			for i := 0; i < out.Grad.R; i++ {
				row := out.Grad.Row(i)
				for j, v := range row {
					b.Grad.Data[j] += v
				}
			}
		}
	}
	return out
}

// Scale returns s * a for a constant s.
func (t *Tape) Scale(a *Node, s float64) *Node {
	val := t.cloneMat(a.Val)
	tensor.ScaleInPlace(val, s)
	out := t.node(val)
	if !t.inference {
		out.back = func() {
			for i, g := range out.Grad.Data {
				a.Grad.Data[i] += s * g
			}
		}
	}
	return out
}

// LeakyReLU applies max(x, alpha*x) elementwise.
func (t *Tape) LeakyReLU(a *Node, alpha float64) *Node {
	val := t.cloneMat(a.Val)
	for i, v := range val.Data {
		if v < 0 {
			val.Data[i] = alpha * v
		}
	}
	out := t.node(val)
	if !t.inference {
		out.back = func() {
			og := out.Grad.Data
			av := a.Val.Data[:len(og)]
			ag := a.Grad.Data[:len(og)]
			for i, g := range og {
				if av[i] < 0 {
					ag[i] += alpha * g
				} else {
					ag[i] += g
				}
			}
		}
	}
	return out
}

// ReLU applies max(x, 0) elementwise.
func (t *Tape) ReLU(a *Node) *Node { return t.LeakyReLU(a, 0) }

// ELU applies x>=0 ? x : exp(x)-1 elementwise.
func (t *Tape) ELU(a *Node) *Node {
	val := t.cloneMat(a.Val)
	for i, v := range val.Data {
		if v < 0 {
			val.Data[i] = math.Exp(v) - 1
		}
	}
	out := t.node(val)
	if !t.inference {
		out.back = func() {
			og := out.Grad.Data
			av := a.Val.Data[:len(og)]
			ag := a.Grad.Data[:len(og)]
			ov := out.Val.Data[:len(og)]
			for i, g := range og {
				if av[i] < 0 {
					ag[i] += g * (ov[i] + 1) // d/dx (e^x - 1) = e^x
				} else {
					ag[i] += g
				}
			}
		}
	}
	return out
}

// Gather selects rows of a by index (duplicates allowed).
func (t *Tape) Gather(a *Node, idx []int) *Node {
	val := t.newMat(len(idx), a.Val.C, false)
	for i, r := range idx {
		copy(val.Row(i), a.Val.Row(r))
	}
	out := t.node(val)
	if !t.inference {
		out.back = func() {
			for i, r := range idx {
				src := out.Grad.Row(i)
				dst := a.Grad.Row(r)[:len(src)]
				for j, v := range src {
					dst[j] += v
				}
			}
		}
	}
	return out
}

// SegmentSum sums rows of a into nSeg buckets chosen by seg.
func (t *Tape) SegmentSum(a *Node, seg []int, nSeg int) *Node {
	val := t.newMat(nSeg, a.Val.C, true)
	for i, s := range seg {
		src := a.Val.Row(i)
		dst := val.Row(s)[:len(src)]
		for j, v := range src {
			dst[j] += v
		}
	}
	out := t.node(val)
	if !t.inference {
		out.back = func() {
			for i, s := range seg {
				src := out.Grad.Row(s)
				dst := a.Grad.Row(i)[:len(src)]
				for j, v := range src {
					dst[j] += v
				}
			}
		}
	}
	return out
}

// SegmentSoftmax normalises the E×1 column a with a softmax within each
// segment (the attention normalisation of GAT).
func (t *Tape) SegmentSoftmax(a *Node, seg []int, nSeg int) *Node {
	if a.Val.C != 1 {
		panic("autodiff: SegmentSoftmax needs an E×1 column")
	}
	maxs := t.alloc(nSeg, false)
	for i := range maxs {
		maxs[i] = math.Inf(-1)
	}
	for i, s := range seg {
		if v := a.Val.Data[i]; v > maxs[s] {
			maxs[s] = v
		}
	}
	sums := t.alloc(nSeg, true)
	val := t.newMat(a.Val.R, 1, false)
	for i, s := range seg {
		e := math.Exp(a.Val.Data[i] - maxs[s])
		val.Data[i] = e
		sums[s] += e
	}
	for i, s := range seg {
		if sums[s] > 0 {
			val.Data[i] /= sums[s]
		}
	}
	out := t.node(val)
	if !t.inference {
		out.back = func() {
			// dL/dx_i = y_i * (g_i - sum_j in seg y_j g_j)
			dots := t.alloc(nSeg, true)
			for i, s := range seg {
				dots[s] += out.Val.Data[i] * out.Grad.Data[i]
			}
			for i, s := range seg {
				a.Grad.Data[i] += out.Val.Data[i] * (out.Grad.Data[i] - dots[s])
			}
		}
	}
	return out
}

// MulCol multiplies each row i of a (R×C) by the scalar col.Data[i] (R×1).
func (t *Tape) MulCol(a, col *Node) *Node {
	if col.Val.C != 1 || col.Val.R != a.Val.R {
		panic("autodiff: MulCol shape mismatch")
	}
	val := t.cloneMat(a.Val)
	for i := 0; i < val.R; i++ {
		s := col.Val.Data[i]
		row := val.Row(i)
		for j := range row {
			row[j] *= s
		}
	}
	out := t.node(val)
	if !t.inference {
		out.back = func() {
			for i := 0; i < a.Val.R; i++ {
				s := col.Val.Data[i]
				gRow := out.Grad.Row(i)
				aRow := a.Val.Row(i)
				aG := a.Grad.Row(i)
				dot := 0.0
				for j, g := range gRow {
					aG[j] += s * g
					dot += aRow[j] * g
				}
				col.Grad.Data[i] += dot
			}
		}
	}
	return out
}

// MaxRows pools an R×C matrix to 1×C by taking the columnwise maximum
// (adaptive max pooling over all nodes of a graph).
func (t *Tape) MaxRows(a *Node) *Node {
	val := t.newMat(1, a.Val.C, false)
	arg := t.allocInts(a.Val.C)
	for j := 0; j < a.Val.C; j++ {
		best := math.Inf(-1)
		bi := 0
		for i := 0; i < a.Val.R; i++ {
			if v := a.Val.At(i, j); v > best {
				best = v
				bi = i
			}
		}
		val.Data[j] = best
		arg[j] = bi
	}
	out := t.node(val)
	if !t.inference {
		out.back = func() {
			for j, i := range arg {
				a.Grad.Set(i, j, a.Grad.At(i, j)+out.Grad.Data[j])
			}
		}
	}
	return out
}

// SegmentMaxRows pools an R×C matrix to nSeg×C, taking the columnwise
// maximum over the rows of each segment — MaxRows applied per segment,
// with the same comparison loop (strict >, rows in ascending order), so a
// block-diagonal batch pools each block exactly like a per-graph MaxRows.
// An empty segment yields a zero row, matching the zero vector the
// unbatched forward substitutes for an absent node kind.
func (t *Tape) SegmentMaxRows(a *Node, seg []int, nSeg int) *Node {
	c := a.Val.C
	val := t.newMat(nSeg, c, true) // empty segments stay zero
	bests := t.alloc(nSeg*c, false)
	for i := range bests {
		bests[i] = math.Inf(-1)
	}
	arg := t.allocInts(nSeg * c)
	first := t.allocInts(nSeg)
	for s := range first {
		first[s] = -1
	}
	for i, s := range seg {
		if first[s] < 0 {
			first[s] = i
		}
		row := a.Val.Row(i)
		bb := bests[s*c : (s+1)*c]
		ab := arg[s*c : (s+1)*c]
		for j, v := range row {
			if v > bb[j] {
				bb[j] = v
				ab[j] = i
			}
		}
	}
	for s := 0; s < nSeg; s++ {
		if first[s] < 0 {
			continue
		}
		out := val.Row(s)
		ab := arg[s*c : (s+1)*c]
		for j := range out {
			if bests[s*c+j] == math.Inf(-1) {
				// No row beat -Inf (all -Inf/NaN): MaxRows reports -Inf with
				// the first row as argmax.
				ab[j] = first[s]
			}
			out[j] = bests[s*c+j]
		}
	}
	out := t.node(val)
	if !t.inference {
		out.back = func() {
			for s := 0; s < nSeg; s++ {
				if first[s] < 0 {
					continue
				}
				g := out.Grad.Row(s)
				ab := arg[s*c : (s+1)*c]
				for j, i := range ab {
					a.Grad.Set(i, j, a.Grad.At(i, j)+g[j])
				}
			}
		}
	}
	return out
}

// allocInts hands out the argmax index buffer for MaxRows. It allocates
// plainly (not from the arena), so the buffer survives Reset; it is one
// small allocation per MaxRows call.
func (t *Tape) allocInts(n int) []int {
	// A separate tiny int arena is not worth the bookkeeping: allocate
	// plainly but through one place so a pooled alternative stays easy.
	return make([]int, n)
}

// MeanRows pools an R×C matrix to 1×C by the columnwise mean.
func (t *Tape) MeanRows(a *Node) *Node {
	val := t.newMat(1, a.Val.C, true)
	inv := 1.0 / float64(a.Val.R)
	for i := 0; i < a.Val.R; i++ {
		row := a.Val.Row(i)
		for j, v := range row {
			val.Data[j] += v * inv
		}
	}
	out := t.node(val)
	if !t.inference {
		out.back = func() {
			for i := 0; i < a.Val.R; i++ {
				row := a.Grad.Row(i)
				for j := range row {
					row[j] += out.Grad.Data[j] * inv
				}
			}
		}
	}
	return out
}

// Concat stacks two matrices horizontally (same R).
func (t *Tape) Concat(a, b *Node) *Node {
	if a.Val.R != b.Val.R {
		panic("autodiff: Concat row mismatch")
	}
	val := t.newMat(a.Val.R, a.Val.C+b.Val.C, false)
	for i := 0; i < val.R; i++ {
		copy(val.Row(i)[:a.Val.C], a.Val.Row(i))
		copy(val.Row(i)[a.Val.C:], b.Val.Row(i))
	}
	out := t.node(val)
	if !t.inference {
		out.back = func() {
			for i := 0; i < val.R; i++ {
				g := out.Grad.Row(i)
				ag := a.Grad.Row(i)
				bg := b.Grad.Row(i)
				for j := range ag {
					ag[j] += g[j]
				}
				for j := range bg {
					bg[j] += g[a.Val.C+j]
				}
			}
		}
	}
	return out
}

// CrossEntropyLogits computes softmax cross-entropy of a 1×C logits row
// against an integer label, returning a scalar node.
func (t *Tape) CrossEntropyLogits(logits *Node, label int) *Node {
	c := logits.Val.C
	maxv := math.Inf(-1)
	for _, v := range logits.Val.Data {
		if v > maxv {
			maxv = v
		}
	}
	sum := 0.0
	probs := t.alloc(c, false)
	for i, v := range logits.Val.Data {
		probs[i] = math.Exp(v - maxv)
		sum += probs[i]
	}
	for i := range probs {
		probs[i] /= sum
	}
	loss := -math.Log(math.Max(probs[label], 1e-12))
	val := t.newMat(1, 1, false)
	val.Data[0] = loss
	out := t.node(val)
	if !t.inference {
		out.back = func() {
			g := out.Grad.Data[0]
			for i := 0; i < c; i++ {
				d := probs[i]
				if i == label {
					d -= 1
				}
				logits.Grad.Data[i] += g * d
			}
		}
	}
	return out
}

// Softmax returns the softmax of a 1×C row (inference helper).
func Softmax(row []float64) []float64 {
	maxv := math.Inf(-1)
	for _, v := range row {
		if v > maxv {
			maxv = v
		}
	}
	out := make([]float64, len(row))
	sum := 0.0
	for i, v := range row {
		out[i] = math.Exp(v - maxv)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// ---------------------------------------------------------------------------
// Fused operations. Each is bit-identical to the two-op composition it
// replaces (same per-element arithmetic in the same order); the fusion
// removes whole passes over edge-sized matrices — an intermediate clone,
// its gradient buffer, and a closure per call.
// ---------------------------------------------------------------------------

// MatMulAddRow returns a @ w + bias, with bias a 1×C row broadcast over
// the rows of the product: the dense-layer forward, fused so the product
// never materialises twice.
func (t *Tape) MatMulAddRow(a, w, bias *Node) *Node {
	if bias.Val.R != 1 || bias.Val.C != w.Val.C {
		panic("autodiff: MatMulAddRow bias shape mismatch")
	}
	val := t.newMat(a.Val.R, w.Val.C, true)
	tensor.MatMulInto(val, a.Val, w.Val)
	for i := 0; i < val.R; i++ {
		row := val.Row(i)
		for j, v := range bias.Val.Data {
			row[j] += v
		}
	}
	out := t.node(val)
	if !t.inference {
		out.back = func() {
			tensor.MatMulABTAddInto(a.Grad, out.Grad, w.Val)
			tmp := t.newMat(a.Val.C, out.Grad.C, true)
			tensor.MatMulATBInto(tmp, a.Val, out.Grad)
			tensor.AddInPlace(w.Grad, tmp)
			for i := 0; i < out.Grad.R; i++ {
				row := out.Grad.Row(i)
				for j, v := range row {
					bias.Grad.Data[j] += v
				}
			}
		}
	}
	return out
}

// AddLeakyReLU returns LeakyReLU(a + b, alpha) without materialising the
// sum node. The backward branch recomputes a+b, which is exactly the
// value the unfused sum node held.
func (t *Tape) AddLeakyReLU(a, b *Node, alpha float64) *Node {
	if a.Val.R != b.Val.R || a.Val.C != b.Val.C {
		panic("autodiff: AddLeakyReLU shape mismatch")
	}
	val := t.newMat(a.Val.R, a.Val.C, false)
	av := a.Val.Data
	bv := b.Val.Data[:len(av)]
	vd := val.Data[:len(av)]
	for i, x := range av {
		sum := x + bv[i]
		if sum < 0 {
			sum = alpha * sum
		}
		vd[i] = sum
	}
	out := t.node(val)
	if !t.inference {
		out.back = func() {
			og := out.Grad.Data
			ag := a.Grad.Data[:len(og)]
			bg := b.Grad.Data[:len(og)]
			av := a.Val.Data[:len(og)]
			bv := b.Val.Data[:len(og)]
			for i, g := range og {
				if av[i]+bv[i] < 0 {
					g = alpha * g
				}
				ag[i] += g
				bg[i] += g
			}
		}
	}
	return out
}

// SegmentSumMulCol sums rows of a, each scaled by its col entry, into
// nSeg buckets: SegmentSum(MulCol(a, col), seg, nSeg) without the scaled
// intermediate.
func (t *Tape) SegmentSumMulCol(a, col *Node, seg []int, nSeg int) *Node {
	if col.Val.C != 1 || col.Val.R != a.Val.R {
		panic("autodiff: SegmentSumMulCol shape mismatch")
	}
	val := t.newMat(nSeg, a.Val.C, true)
	for i, sg := range seg {
		s := col.Val.Data[i]
		src := a.Val.Row(i)
		dst := val.Row(sg)[:len(src)]
		for j, v := range src {
			dst[j] += v * s
		}
	}
	out := t.node(val)
	if !t.inference {
		out.back = func() {
			for i, sg := range seg {
				s := col.Val.Data[i]
				g := out.Grad.Row(sg)
				aRow := a.Val.Row(i)[:len(g)]
				aG := a.Grad.Row(i)[:len(g)]
				dot := 0.0
				for j, gv := range g {
					aG[j] += s * gv
					dot += aRow[j] * gv
				}
				col.Grad.Data[i] += dot
			}
		}
	}
	return out
}

// ELUAddN returns ELU(ins[0] + ins[1] + ... + ins[k-1]), fusing the GNN
// layer's message-accumulation chain (a left-associated Add per relation,
// then the activation) into one pass. The sum accumulates in argument
// order, exactly like the chain of two-input Adds it replaces; the
// backward branch keys on the stored output, which is negative exactly
// when the pre-activation sum was (exp(s)-1 is sign-preserving, and the
// boundary rounding cases collapse to the same gradient value).
func (t *Tape) ELUAddN(ins ...*Node) *Node {
	if len(ins) == 0 {
		panic("autodiff: ELUAddN needs at least one input")
	}
	r, c := ins[0].Val.R, ins[0].Val.C
	for _, in := range ins {
		if in.Val.R != r || in.Val.C != c {
			panic("autodiff: ELUAddN shape mismatch")
		}
	}
	val := t.newMat(r, c, false)
	vd := val.Data
	copy(vd, ins[0].Val.Data)
	for _, in := range ins[1:] {
		src := in.Val.Data[:len(vd)]
		for i := range vd {
			vd[i] += src[i]
		}
	}
	for i, v := range vd {
		if v < 0 {
			vd[i] = math.Exp(v) - 1
		}
	}
	out := t.node(val)
	if !t.inference {
		out.back = func() {
			og := out.Grad.Data
			ov := out.Val.Data[:len(og)]
			for _, in := range ins {
				ig := in.Grad.Data[:len(og)]
				for i, g := range og {
					if ov[i] < 0 {
						ig[i] += g * (ov[i] + 1) // d/dx (e^x - 1) = e^x
					} else {
						ig[i] += g
					}
				}
			}
		}
	}
	return out
}
