// Package autodiff implements a tape-based reverse-mode automatic
// differentiation engine over dense matrices, with the gather/segment
// operations graph neural networks need (edge gathers, per-destination
// softmax, segment sums, max pooling). The GNN of the paper (§IV-B) is
// built entirely from these primitives, and the gradients are
// property-tested against numerical differentiation.
package autodiff

import (
	"math"

	"mpidetect/internal/tensor"
)

// Node is one value in the computation graph.
type Node struct {
	Val  *tensor.Mat
	Grad *tensor.Mat
	back func()
	tape *Tape
}

// Tape records operations so Backward can replay them in reverse.
type Tape struct {
	nodes []*Node
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

func (t *Tape) node(val *tensor.Mat, back func()) *Node {
	n := &Node{Val: val, Grad: tensor.New(val.R, val.C), back: back, tape: t}
	t.nodes = append(t.nodes, n)
	return n
}

// Input registers a leaf value (input or parameter).
func (t *Tape) Input(val *tensor.Mat) *Node {
	return t.node(val, nil)
}

// Backward seeds d(loss)=1 and propagates gradients to every node.
func (t *Tape) Backward(loss *Node) {
	if loss.Val.R != 1 || loss.Val.C != 1 {
		panic("autodiff: Backward needs a scalar loss")
	}
	loss.Grad.Data[0] = 1
	for i := len(t.nodes) - 1; i >= 0; i-- {
		if t.nodes[i].back != nil {
			t.nodes[i].back()
		}
	}
}

// MatMul returns a @ b.
func (t *Tape) MatMul(a, b *Node) *Node {
	val := tensor.MatMul(a.Val, b.Val)
	var out *Node
	out = t.node(val, func() {
		tensor.AddInPlace(a.Grad, tensor.MatMulABT(out.Grad, b.Val))
		tensor.AddInPlace(b.Grad, tensor.MatMulATB(a.Val, out.Grad))
	})
	return out
}

// Add returns a + b (same shape).
func (t *Tape) Add(a, b *Node) *Node {
	val := a.Val.Clone()
	tensor.AddInPlace(val, b.Val)
	var out *Node
	out = t.node(val, func() {
		tensor.AddInPlace(a.Grad, out.Grad)
		tensor.AddInPlace(b.Grad, out.Grad)
	})
	return out
}

// AddRow broadcasts a 1×C row b over the R×C matrix a.
func (t *Tape) AddRow(a, b *Node) *Node {
	if b.Val.R != 1 || b.Val.C != a.Val.C {
		panic("autodiff: AddRow shape mismatch")
	}
	val := a.Val.Clone()
	for i := 0; i < val.R; i++ {
		row := val.Row(i)
		for j, v := range b.Val.Data {
			row[j] += v
		}
	}
	var out *Node
	out = t.node(val, func() {
		tensor.AddInPlace(a.Grad, out.Grad)
		for i := 0; i < out.Grad.R; i++ {
			row := out.Grad.Row(i)
			for j, v := range row {
				b.Grad.Data[j] += v
			}
		}
	})
	return out
}

// Scale returns s * a for a constant s.
func (t *Tape) Scale(a *Node, s float64) *Node {
	val := a.Val.Clone()
	tensor.ScaleInPlace(val, s)
	var out *Node
	out = t.node(val, func() {
		for i, g := range out.Grad.Data {
			a.Grad.Data[i] += s * g
		}
	})
	return out
}

// LeakyReLU applies max(x, alpha*x) elementwise.
func (t *Tape) LeakyReLU(a *Node, alpha float64) *Node {
	val := a.Val.Clone()
	for i, v := range val.Data {
		if v < 0 {
			val.Data[i] = alpha * v
		}
	}
	var out *Node
	out = t.node(val, func() {
		for i, g := range out.Grad.Data {
			if a.Val.Data[i] < 0 {
				a.Grad.Data[i] += alpha * g
			} else {
				a.Grad.Data[i] += g
			}
		}
	})
	return out
}

// ReLU applies max(x, 0) elementwise.
func (t *Tape) ReLU(a *Node) *Node { return t.LeakyReLU(a, 0) }

// ELU applies x>=0 ? x : exp(x)-1 elementwise.
func (t *Tape) ELU(a *Node) *Node {
	val := a.Val.Clone()
	for i, v := range val.Data {
		if v < 0 {
			val.Data[i] = math.Exp(v) - 1
		}
	}
	var out *Node
	out = t.node(val, func() {
		for i, g := range out.Grad.Data {
			if a.Val.Data[i] < 0 {
				a.Grad.Data[i] += g * (out.Val.Data[i] + 1) // d/dx (e^x - 1) = e^x
			} else {
				a.Grad.Data[i] += g
			}
		}
	})
	return out
}

// Gather selects rows of a by index (duplicates allowed).
func (t *Tape) Gather(a *Node, idx []int) *Node {
	val := tensor.New(len(idx), a.Val.C)
	for i, r := range idx {
		copy(val.Row(i), a.Val.Row(r))
	}
	var out *Node
	out = t.node(val, func() {
		for i, r := range idx {
			dst := a.Grad.Row(r)
			src := out.Grad.Row(i)
			for j, v := range src {
				dst[j] += v
			}
		}
	})
	return out
}

// SegmentSum sums rows of a into nSeg buckets chosen by seg.
func (t *Tape) SegmentSum(a *Node, seg []int, nSeg int) *Node {
	val := tensor.New(nSeg, a.Val.C)
	for i, s := range seg {
		dst := val.Row(s)
		src := a.Val.Row(i)
		for j, v := range src {
			dst[j] += v
		}
	}
	var out *Node
	out = t.node(val, func() {
		for i, s := range seg {
			dst := a.Grad.Row(i)
			src := out.Grad.Row(s)
			for j, v := range src {
				dst[j] += v
			}
		}
	})
	return out
}

// SegmentSoftmax normalises the E×1 column a with a softmax within each
// segment (the attention normalisation of GAT).
func (t *Tape) SegmentSoftmax(a *Node, seg []int, nSeg int) *Node {
	if a.Val.C != 1 {
		panic("autodiff: SegmentSoftmax needs an E×1 column")
	}
	maxs := make([]float64, nSeg)
	for i := range maxs {
		maxs[i] = math.Inf(-1)
	}
	for i, s := range seg {
		if v := a.Val.Data[i]; v > maxs[s] {
			maxs[s] = v
		}
	}
	sums := make([]float64, nSeg)
	val := tensor.New(a.Val.R, 1)
	for i, s := range seg {
		e := math.Exp(a.Val.Data[i] - maxs[s])
		val.Data[i] = e
		sums[s] += e
	}
	for i, s := range seg {
		if sums[s] > 0 {
			val.Data[i] /= sums[s]
		}
	}
	var out *Node
	out = t.node(val, func() {
		// dL/dx_i = y_i * (g_i - sum_j in seg y_j g_j)
		dots := make([]float64, nSeg)
		for i, s := range seg {
			dots[s] += out.Val.Data[i] * out.Grad.Data[i]
		}
		for i, s := range seg {
			a.Grad.Data[i] += out.Val.Data[i] * (out.Grad.Data[i] - dots[s])
		}
	})
	return out
}

// MulCol multiplies each row i of a (R×C) by the scalar col.Data[i] (R×1).
func (t *Tape) MulCol(a, col *Node) *Node {
	if col.Val.C != 1 || col.Val.R != a.Val.R {
		panic("autodiff: MulCol shape mismatch")
	}
	val := a.Val.Clone()
	for i := 0; i < val.R; i++ {
		s := col.Val.Data[i]
		row := val.Row(i)
		for j := range row {
			row[j] *= s
		}
	}
	var out *Node
	out = t.node(val, func() {
		for i := 0; i < a.Val.R; i++ {
			s := col.Val.Data[i]
			gRow := out.Grad.Row(i)
			aRow := a.Val.Row(i)
			aG := a.Grad.Row(i)
			dot := 0.0
			for j, g := range gRow {
				aG[j] += s * g
				dot += aRow[j] * g
			}
			col.Grad.Data[i] += dot
		}
	})
	return out
}

// MaxRows pools an R×C matrix to 1×C by taking the columnwise maximum
// (adaptive max pooling over all nodes of a graph).
func (t *Tape) MaxRows(a *Node) *Node {
	val := tensor.New(1, a.Val.C)
	arg := make([]int, a.Val.C)
	for j := 0; j < a.Val.C; j++ {
		best := math.Inf(-1)
		bi := 0
		for i := 0; i < a.Val.R; i++ {
			if v := a.Val.At(i, j); v > best {
				best = v
				bi = i
			}
		}
		val.Data[j] = best
		arg[j] = bi
	}
	var out *Node
	out = t.node(val, func() {
		for j, i := range arg {
			a.Grad.Set(i, j, a.Grad.At(i, j)+out.Grad.Data[j])
		}
	})
	return out
}

// MeanRows pools an R×C matrix to 1×C by the columnwise mean.
func (t *Tape) MeanRows(a *Node) *Node {
	val := tensor.New(1, a.Val.C)
	inv := 1.0 / float64(a.Val.R)
	for i := 0; i < a.Val.R; i++ {
		row := a.Val.Row(i)
		for j, v := range row {
			val.Data[j] += v * inv
		}
	}
	var out *Node
	out = t.node(val, func() {
		for i := 0; i < a.Val.R; i++ {
			row := a.Grad.Row(i)
			for j := range row {
				row[j] += out.Grad.Data[j] * inv
			}
		}
	})
	return out
}

// Concat stacks two matrices horizontally (same R).
func (t *Tape) Concat(a, b *Node) *Node {
	if a.Val.R != b.Val.R {
		panic("autodiff: Concat row mismatch")
	}
	val := tensor.New(a.Val.R, a.Val.C+b.Val.C)
	for i := 0; i < val.R; i++ {
		copy(val.Row(i)[:a.Val.C], a.Val.Row(i))
		copy(val.Row(i)[a.Val.C:], b.Val.Row(i))
	}
	var out *Node
	out = t.node(val, func() {
		for i := 0; i < val.R; i++ {
			g := out.Grad.Row(i)
			ag := a.Grad.Row(i)
			bg := b.Grad.Row(i)
			for j := range ag {
				ag[j] += g[j]
			}
			for j := range bg {
				bg[j] += g[a.Val.C+j]
			}
		}
	})
	return out
}

// CrossEntropyLogits computes softmax cross-entropy of a 1×C logits row
// against an integer label, returning a scalar node.
func (t *Tape) CrossEntropyLogits(logits *Node, label int) *Node {
	c := logits.Val.C
	maxv := math.Inf(-1)
	for _, v := range logits.Val.Data {
		if v > maxv {
			maxv = v
		}
	}
	sum := 0.0
	probs := make([]float64, c)
	for i, v := range logits.Val.Data {
		probs[i] = math.Exp(v - maxv)
		sum += probs[i]
	}
	for i := range probs {
		probs[i] /= sum
	}
	loss := -math.Log(math.Max(probs[label], 1e-12))
	val := tensor.FromSlice(1, 1, []float64{loss})
	var out *Node
	out = t.node(val, func() {
		g := out.Grad.Data[0]
		for i := 0; i < c; i++ {
			d := probs[i]
			if i == label {
				d -= 1
			}
			logits.Grad.Data[i] += g * d
		}
	})
	return out
}

// Softmax returns the softmax of a 1×C row (inference helper).
func Softmax(row []float64) []float64 {
	maxv := math.Inf(-1)
	for _, v := range row {
		if v > maxv {
			maxv = v
		}
	}
	out := make([]float64, len(row))
	sum := 0.0
	for i, v := range row {
		out[i] = math.Exp(v - maxv)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
