// Package jobs is the async job tier of the serving path: a bounded,
// worker-pooled manager for submit -> job id -> poll/stream workloads.
//
// The manager is generic over the per-item result type and knows nothing
// about HTTP or about what a job computes: a job is a RunFunc that emits
// results as they become ready. The transport layer maps Submit's
// ErrQueueFull to 429/503 + Retry-After — the queue is a fixed-capacity
// channel and a fixed worker pool runs at most cfg.Workers jobs at once,
// so accepted work is always bounded: under overload the manager sheds
// load at the front door instead of accumulating goroutines.
//
// Every job carries progress counters (total/done), retains its emitted
// results for polling, and supports cooperative cancellation (Cancel
// cancels the job's context; a queued job dies without running). Follow
// blocks until a job has results past a cursor or goes terminal, which
// is exactly the loop an SSE streamer needs: replay, then tail.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mpidetect/internal/fault"
)

// Sentinel errors mapped to backpressure statuses by the transport.
var (
	// ErrQueueFull: the bounded queue is at capacity; retry later.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed: the manager is shutting down and accepts no work.
	ErrClosed = errors.New("jobs: manager closed")
)

// FaultWorker is the job-runner fault point: an armed panic here
// exercises the worker's panic isolation (the job fails, the pool
// survives).
var FaultWorker = fault.Register("jobs.worker")

// State is a job's lifecycle phase.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateCompleted State = "completed"
	StateFailed    State = "failed"
	StateCanceled  State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateCompleted, StateFailed, StateCanceled:
		return true
	}
	return false
}

// Config sizes a manager; zero values take the documented defaults.
type Config struct {
	// Workers is the number of jobs running concurrently (default 2).
	Workers int
	// QueueDepth bounds the jobs accepted but not yet running (default
	// 16). A Submit past this depth fails with ErrQueueFull.
	QueueDepth int
	// MaxRetained caps how many finished jobs stay pollable; the oldest
	// are evicted first (default 256).
	MaxRetained int
	// Timeout bounds one job's run; 0 = no per-job budget.
	Timeout time.Duration
	// OnTransition, when set, is invoked (outside all manager locks) on
	// every state change with the job's fresh snapshot. The serving
	// engine publishes these to its event bus.
	OnTransition func(Snapshot)
	// OnPanic, when set, is invoked after a job's RunFunc panic is
	// recovered (the job fails; the worker survives). The serving engine
	// publishes a fault.recovered event from it.
	OnPanic func(id string, v any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxRetained <= 0 {
		c.MaxRetained = 256
	}
	return c
}

// Snapshot is a point-in-time view of one job, shaped for JSON.
type Snapshot struct {
	ID       string    `json:"id"`
	State    State     `json:"state"`
	Total    int       `json:"total"`
	Done     int       `json:"done"`
	Error    string    `json:"error,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
}

// Stats is the manager half of GET /v1/stats.
type Stats struct {
	Submitted     int64 `json:"submitted"`
	Queued        int64 `json:"queued"`
	Running       int64 `json:"running"`
	Completed     int64 `json:"completed"`
	Failed        int64 `json:"failed"`
	Canceled      int64 `json:"canceled"`
	Panics        int64 `json:"panics"`
	QueueDepth    int64 `json:"queue_depth"`
	QueueCapacity int64 `json:"queue_capacity"`
	Watchers      int64 `json:"watchers"`
	Workers       int   `json:"workers"`
	Retained      int   `json:"retained"`
}

// RunFunc computes one job, emitting per-item results as they are ready.
// It must return promptly once ctx is done; a non-nil return marks the
// job failed unless the job was canceled.
type RunFunc[R any] func(ctx context.Context, emit func(R)) error

type job[R any] struct {
	id     string
	total  int
	run    RunFunc[R]
	ctx    context.Context
	cancel context.CancelFunc

	mu          sync.Mutex
	state       State
	canceledReq bool // Cancel was requested (distinguishes canceled from failed)
	results     []R
	errMsg      string
	created     time.Time
	started     time.Time
	finished    time.Time
	changed     chan struct{} // closed and replaced on every mutation (broadcast)
}

// bumpLocked wakes every Follow parked on the job. Caller holds j.mu.
func (j *job[R]) bumpLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

func (j *job[R]) snapshotLocked() Snapshot {
	return Snapshot{
		ID: j.id, State: j.state, Total: j.total, Done: len(j.results),
		Error: j.errMsg, Created: j.created, Started: j.started, Finished: j.finished,
	}
}

// Manager runs jobs on a fixed worker pool behind a bounded queue. The
// zero value is not usable; construct with New.
type Manager[R any] struct {
	cfg   Config
	queue chan *job[R]
	wg    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job[R]
	terminal []string // retirement order for MaxRetained eviction
	seq      int64
	closed   bool

	submitted atomic.Int64
	queued    atomic.Int64
	running   atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	watchers  atomic.Int64
	panics    atomic.Int64

	// avgRunNanos is an EWMA of finished-job wall time, feeding
	// DrainEstimate (the dynamic Retry-After). Plain load/compute/store:
	// a lost update under concurrency only costs one sample.
	avgRunNanos atomic.Int64
}

// New builds a manager and starts its worker pool.
func New[R any](cfg Config) *Manager[R] {
	m := &Manager[R]{cfg: cfg.withDefaults(), jobs: map[string]*job[R]{}}
	m.queue = make(chan *job[R], m.cfg.QueueDepth)
	for w := 0; w < m.cfg.Workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// transition invokes the OnTransition hook outside every lock.
func (m *Manager[R]) transition(s Snapshot) {
	if m.cfg.OnTransition != nil {
		m.cfg.OnTransition(s)
	}
}

// Submit queues a job. total is the expected number of emitted results
// (progress denominator; 0 if unknown). Fails fast with ErrQueueFull
// when the bounded queue is at capacity — the backpressure contract —
// and ErrClosed during shutdown.
func (m *Manager[R]) Submit(total int, run RunFunc[R]) (Snapshot, error) {
	ctx, cancel := context.WithCancel(context.Background())
	j := &job[R]{
		total: total, run: run, ctx: ctx, cancel: cancel,
		state: StateQueued, created: time.Now(), changed: make(chan struct{}),
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		cancel()
		return Snapshot{}, ErrClosed
	}
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		cancel()
		return Snapshot{}, fmt.Errorf("%w: %d jobs pending", ErrQueueFull, m.cfg.QueueDepth)
	}
	m.seq++
	j.id = fmt.Sprintf("job-%d", m.seq)
	m.jobs[j.id] = j
	m.mu.Unlock()
	m.submitted.Add(1)
	m.queued.Add(1)
	snap := Snapshot{ID: j.id, State: StateQueued, Total: total, Created: j.created}
	m.transition(snap)
	return snap, nil
}

func (m *Manager[R]) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

func (m *Manager[R]) runJob(j *job[R]) {
	j.mu.Lock()
	if j.state != StateQueued { // canceled while queued; already terminal
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	m.queued.Add(-1)
	m.running.Add(1)
	j.bumpLocked()
	snap := j.snapshotLocked()
	j.mu.Unlock()
	m.transition(snap)

	ctx := j.ctx
	if m.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.cfg.Timeout)
		defer cancel()
	}
	err := m.runIsolated(ctx, j)
	m.observeRun(time.Since(j.started))

	j.mu.Lock()
	m.running.Add(-1)
	switch {
	case j.canceledReq:
		j.state = StateCanceled
		m.canceled.Add(1)
	case err != nil:
		j.state = StateFailed
		j.errMsg = err.Error()
		m.failed.Add(1)
	default:
		j.state = StateCompleted
		m.completed.Add(1)
	}
	j.finished = time.Now()
	j.bumpLocked()
	snap = j.snapshotLocked()
	j.mu.Unlock()
	m.transition(snap)
	m.retire(j.id)
}

// runIsolated runs one job's RunFunc with panic isolation: a panicking
// job (or an armed jobs.worker fault) fails that job with a structured
// error instead of killing the worker and, with it, the whole pool.
func (m *Manager[R]) runIsolated(ctx context.Context, j *job[R]) (err error) {
	defer func() {
		if r := recover(); r != nil {
			m.panics.Add(1)
			err = fmt.Errorf("jobs: worker panic: %v", r)
			if m.cfg.OnPanic != nil {
				m.cfg.OnPanic(j.id, r)
			}
		}
	}()
	if err := fault.Inject(FaultWorker); err != nil {
		return err
	}
	return j.run(ctx, func(r R) {
		j.mu.Lock()
		j.results = append(j.results, r)
		j.bumpLocked()
		j.mu.Unlock()
	})
}

// observeRun folds one finished job's wall time into the EWMA.
func (m *Manager[R]) observeRun(d time.Duration) {
	const alpha = 0.3
	prev := m.avgRunNanos.Load()
	if prev == 0 {
		m.avgRunNanos.Store(int64(d))
		return
	}
	m.avgRunNanos.Store(int64(alpha*float64(d) + (1-alpha)*float64(prev)))
}

// DrainEstimate predicts how long a newly rejected submission should
// wait before retrying: the observed average job duration times the
// backlog ahead of it, spread across the worker pool. Clamped to
// [1s, 5m]; with no observed completions yet it answers the floor.
func (m *Manager[R]) DrainEstimate() time.Duration {
	const floor, ceil = time.Second, 5 * time.Minute
	avg := time.Duration(m.avgRunNanos.Load())
	if avg <= 0 {
		return floor
	}
	backlog := m.queued.Load() + m.running.Load()
	est := avg * time.Duration(backlog) / time.Duration(m.cfg.Workers)
	if est < floor {
		return floor
	}
	if est > ceil {
		return ceil
	}
	return est
}

// retire records a terminal job and evicts the oldest finished jobs past
// cfg.MaxRetained, bounding the manager's memory.
func (m *Manager[R]) retire(id string) {
	m.mu.Lock()
	m.terminal = append(m.terminal, id)
	for len(m.terminal) > m.cfg.MaxRetained {
		old := m.terminal[0]
		m.terminal = m.terminal[1:]
		delete(m.jobs, old)
	}
	m.mu.Unlock()
}

func (m *Manager[R]) get(id string) *job[R] {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

// Get snapshots a job by id.
func (m *Manager[R]) Get(id string) (Snapshot, bool) {
	j := m.get(id)
	if j == nil {
		return Snapshot{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked(), true
}

// Results returns a copy of the results emitted so far plus the job's
// snapshot.
func (m *Manager[R]) Results(id string) ([]R, Snapshot, bool) {
	j := m.get(id)
	if j == nil {
		return nil, Snapshot{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]R, len(j.results))
	copy(out, j.results)
	return out, j.snapshotLocked(), true
}

// Cancel requests cooperative cancellation: a queued job goes terminal
// immediately and never runs; a running job's context is canceled and
// the job reports canceled once its RunFunc returns. Returns the
// post-cancel snapshot; ok is false for unknown ids.
func (m *Manager[R]) Cancel(id string) (Snapshot, bool) {
	j := m.get(id)
	if j == nil {
		return Snapshot{}, false
	}
	j.mu.Lock()
	if j.state.Terminal() {
		snap := j.snapshotLocked()
		j.mu.Unlock()
		return snap, true
	}
	j.canceledReq = true
	j.cancel()
	if j.state == StateQueued {
		j.state = StateCanceled
		j.finished = time.Now()
		m.queued.Add(-1)
		m.canceled.Add(1)
		j.bumpLocked()
		snap := j.snapshotLocked()
		j.mu.Unlock()
		m.transition(snap)
		m.retire(id)
		return snap, true
	}
	snap := j.snapshotLocked() // running: terminal transition lands in runJob
	j.mu.Unlock()
	return snap, true
}

// Follow blocks until the job has results beyond cursor or is terminal,
// then returns the new results (may be empty on a terminal job) and a
// fresh snapshot. ok is false for unknown ids or an expired ctx. An SSE
// streamer loops: replay what Follow returns, advance the cursor, stop
// after a terminal snapshot with no residue.
func (m *Manager[R]) Follow(ctx context.Context, id string, cursor int) ([]R, Snapshot, bool) {
	j := m.get(id)
	if j == nil {
		return nil, Snapshot{}, false
	}
	m.watchers.Add(1)
	defer m.watchers.Add(-1)
	for {
		j.mu.Lock()
		if len(j.results) > cursor || j.state.Terminal() {
			var out []R
			if cursor < len(j.results) {
				out = make([]R, len(j.results)-cursor)
				copy(out, j.results[cursor:])
			}
			snap := j.snapshotLocked()
			j.mu.Unlock()
			return out, snap, true
		}
		ch := j.changed
		j.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, Snapshot{}, false
		}
	}
}

// Stats snapshots the manager counters.
func (m *Manager[R]) Stats() Stats {
	m.mu.Lock()
	retained := len(m.jobs)
	m.mu.Unlock()
	return Stats{
		Submitted:     m.submitted.Load(),
		Queued:        m.queued.Load(),
		Running:       m.running.Load(),
		Completed:     m.completed.Load(),
		Failed:        m.failed.Load(),
		Canceled:      m.canceled.Load(),
		Panics:        m.panics.Load(),
		QueueDepth:    int64(len(m.queue)),
		QueueCapacity: int64(m.cfg.QueueDepth),
		Watchers:      m.watchers.Load(),
		Workers:       m.cfg.Workers,
		Retained:      retained,
	}
}

// Close rejects new submissions, cancels every live job, and waits for
// the workers to drain. Idempotent.
func (m *Manager[R]) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	ids := make([]string, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	close(m.queue)
	m.mu.Unlock()
	for _, id := range ids {
		m.Cancel(id)
	}
	m.wg.Wait()
}
