package jobs

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpidetect/internal/fault"
)

// waitTerminal polls until the job goes terminal.
func waitTerminal(t *testing.T, m *Manager[int], id string) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		snap, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if snap.State.Terminal() {
			return snap
		}
		time.Sleep(time.Millisecond)
	}
	snap, _ := m.Get(id)
	t.Fatalf("job %s stuck in %s", id, snap.State)
	panic("unreachable")
}

// waitState polls until the job reaches state s or the deadline expires.
func waitState(t *testing.T, m *Manager[int], id string, s State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		snap, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if snap.State == s {
			return snap
		}
		time.Sleep(time.Millisecond)
	}
	snap, _ := m.Get(id)
	t.Fatalf("job %s stuck in %s, want %s", id, snap.State, s)
	panic("unreachable")
}

func TestSubmitRunsToCompletionWithProgress(t *testing.T) {
	m := New[int](Config{Workers: 1})
	defer m.Close()

	snap, err := m.Submit(3, func(ctx context.Context, emit func(int)) error {
		emit(10)
		emit(20)
		emit(30)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateQueued || snap.Total != 3 || snap.ID == "" {
		t.Fatalf("submit snapshot %+v", snap)
	}
	done := waitState(t, m, snap.ID, StateCompleted)
	if done.Done != 3 || done.Error != "" {
		t.Fatalf("completed snapshot %+v, want 3 done, no error", done)
	}
	if done.Started.IsZero() || done.Finished.IsZero() {
		t.Fatalf("timestamps missing: %+v", done)
	}
	results, _, ok := m.Results(snap.ID)
	if !ok || len(results) != 3 || results[0] != 10 || results[2] != 30 {
		t.Fatalf("results %v, want [10 20 30]", results)
	}
}

func TestRunErrorMarksJobFailed(t *testing.T) {
	m := New[int](Config{Workers: 1})
	defer m.Close()

	snap, err := m.Submit(1, func(ctx context.Context, emit func(int)) error {
		return errors.New("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, m, snap.ID, StateFailed)
	if failed.Error != "boom" {
		t.Fatalf("error %q, want boom", failed.Error)
	}
}

// TestQueueFullIsBackpressure pins the load-shedding contract: with the
// single worker blocked and the queue at capacity, Submit must fail fast
// with ErrQueueFull rather than accept unbounded work.
func TestQueueFullIsBackpressure(t *testing.T) {
	m := New[int](Config{Workers: 1, QueueDepth: 2})
	defer m.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	if _, err := m.Submit(0, func(ctx context.Context, emit func(int)) error {
		close(started)
		<-release
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started // worker occupied
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(0, func(ctx context.Context, emit func(int)) error { return nil }); err != nil {
			t.Fatalf("submit %d into non-full queue: %v", i, err)
		}
	}
	if _, err := m.Submit(0, func(ctx context.Context, emit func(int)) error { return nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit err = %v, want ErrQueueFull", err)
	}
	if st := m.Stats(); st.QueueDepth != 2 || st.QueueCapacity != 2 {
		t.Fatalf("stats %+v, want depth 2 / cap 2", st)
	}
	close(release)
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	m := New[int](Config{Workers: 1, QueueDepth: 4})
	defer m.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	m.Submit(0, func(ctx context.Context, emit func(int)) error {
		close(started)
		<-release
		return nil
	})
	<-started

	var ran atomic.Bool
	snap, err := m.Submit(0, func(ctx context.Context, emit func(int)) error {
		ran.Store(true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m.Cancel(snap.ID)
	if !ok || got.State != StateCanceled {
		t.Fatalf("cancel -> %+v ok=%v, want canceled", got, ok)
	}
	close(release)
	// Let the worker drain the queue; the canceled job must be skipped.
	waitState(t, m, snap.ID, StateCanceled)
	time.Sleep(10 * time.Millisecond)
	if ran.Load() {
		t.Fatal("canceled queued job still ran")
	}
	if st := m.Stats(); st.Canceled != 1 {
		t.Fatalf("canceled counter %d, want 1", st.Canceled)
	}
}

func TestCancelRunningJobCancelsContext(t *testing.T) {
	m := New[int](Config{Workers: 1})
	defer m.Close()

	started := make(chan struct{})
	snap, err := m.Submit(0, func(ctx context.Context, emit func(int)) error {
		emit(1)
		close(started)
		<-ctx.Done()
		return ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, ok := m.Cancel(snap.ID); !ok {
		t.Fatal("cancel of running job not acknowledged")
	}
	done := waitState(t, m, snap.ID, StateCanceled)
	// Canceled wins over the RunFunc's returned ctx.Err.
	if done.Done != 1 {
		t.Fatalf("done %d, want 1 (result emitted before cancel)", done.Done)
	}
}

func TestTimeoutFailsJob(t *testing.T) {
	m := New[int](Config{Workers: 1, Timeout: 20 * time.Millisecond})
	defer m.Close()

	snap, err := m.Submit(0, func(ctx context.Context, emit func(int)) error {
		<-ctx.Done()
		return ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, m, snap.ID, StateFailed)
	if failed.Error == "" {
		t.Fatal("timed-out job has no error message")
	}
}

// TestFollowStreamsResultsThenTerminal drives the SSE loop shape:
// replay past the cursor, tail until terminal.
func TestFollowStreamsResultsThenTerminal(t *testing.T) {
	m := New[int](Config{Workers: 1})
	defer m.Close()

	step := make(chan struct{})
	snap, err := m.Submit(3, func(ctx context.Context, emit func(int)) error {
		for i := 1; i <= 3; i++ {
			select {
			case <-step:
			case <-ctx.Done():
				return ctx.Err()
			}
			emit(i * 100)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pace the job so results arrive across several Follow rounds.
	go func() {
		for i := 0; i < 3; i++ {
			step <- struct{}{}
			time.Sleep(time.Millisecond)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var got []int
	cursor := 0
	for {
		res, s, ok := m.Follow(ctx, snap.ID, cursor)
		if !ok {
			t.Fatal("follow failed")
		}
		got = append(got, res...)
		cursor += len(res)
		if s.State.Terminal() {
			break
		}
	}
	if len(got) != 3 || got[0] != 100 || got[2] != 300 {
		t.Fatalf("followed results %v, want [100 200 300]", got)
	}
}

func TestFollowUnknownJobAndContextExpiry(t *testing.T) {
	m := New[int](Config{Workers: 1})
	defer m.Close()

	if _, _, ok := m.Follow(context.Background(), "job-404", 0); ok {
		t.Fatal("follow of unknown job reported ok")
	}
	release := make(chan struct{})
	snap, _ := m.Submit(0, func(ctx context.Context, emit func(int)) error {
		<-release
		return nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, ok := m.Follow(ctx, snap.ID, 0); ok {
		t.Fatal("follow outlived its context")
	}
	close(release)
}

func TestRetentionEvictsOldestTerminalJobs(t *testing.T) {
	m := New[int](Config{Workers: 1, MaxRetained: 2})
	defer m.Close()

	var ids []string
	for i := 0; i < 4; i++ {
		snap, err := m.Submit(0, func(ctx context.Context, emit func(int)) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m, snap.ID, StateCompleted)
		ids = append(ids, snap.ID)
	}
	if _, ok := m.Get(ids[0]); ok {
		t.Fatal("oldest job survived past MaxRetained")
	}
	if _, ok := m.Get(ids[3]); !ok {
		t.Fatal("newest job evicted")
	}
	if st := m.Stats(); st.Retained != 2 {
		t.Fatalf("retained %d, want 2", st.Retained)
	}
}

func TestOnTransitionSeesEveryStateChange(t *testing.T) {
	var mu sync.Mutex
	var states []State
	m := New[int](Config{Workers: 1, OnTransition: func(s Snapshot) {
		mu.Lock()
		states = append(states, s.State)
		mu.Unlock()
	}})
	defer m.Close()

	snap, err := m.Submit(0, func(ctx context.Context, emit func(int)) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, StateCompleted)
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(states)
		mu.Unlock()
		if n >= 3 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []State{StateQueued, StateRunning, StateCompleted}
	if len(states) != 3 {
		t.Fatalf("transitions %v, want %v", states, want)
	}
	for i, s := range want {
		if states[i] != s {
			t.Fatalf("transition %d = %s, want %s", i, states[i], s)
		}
	}
}

func TestCloseRejectsSubmitAndDrains(t *testing.T) {
	m := New[int](Config{Workers: 2})
	started := make(chan struct{})
	m.Submit(0, func(ctx context.Context, emit func(int)) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	})
	<-started
	m.Close()
	m.Close() // idempotent
	if _, err := m.Submit(0, func(ctx context.Context, emit func(int)) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close err = %v, want ErrClosed", err)
	}
}

// TestWorkerPanicIsolated: a panicking RunFunc fails its own job with a
// structured error; the worker survives and runs the next job.
func TestWorkerPanicIsolated(t *testing.T) {
	var hookID atomic.Value
	m := New[int](Config{Workers: 1, OnPanic: func(id string, v any) { hookID.Store(id) }})
	defer m.Close()

	snap, err := m.Submit(0, func(ctx context.Context, emit func(int)) error {
		panic("kaboom")
	})
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, m, snap.ID)
	if got.State != StateFailed || !strings.Contains(got.Error, "worker panic") ||
		!strings.Contains(got.Error, "kaboom") {
		t.Fatalf("panicked job = %+v; want failed with structured panic error", got)
	}
	if id, _ := hookID.Load().(string); id != snap.ID {
		t.Fatalf("OnPanic hook saw %q, want %q", id, snap.ID)
	}

	// The pool is alive: the next job completes normally.
	snap2, err := m.Submit(1, func(ctx context.Context, emit func(int)) error {
		emit(7)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, m, snap2.ID); got.State != StateCompleted {
		t.Fatalf("job after panic = %+v; want completed", got)
	}
	if st := m.Stats(); st.Panics != 1 {
		t.Fatalf("panics = %d, want 1", st.Panics)
	}
}

// TestWorkerFaultPoint: an armed jobs.worker fault fails jobs without
// touching their RunFunc.
func TestWorkerFaultPoint(t *testing.T) {
	defer fault.DisarmAll()
	m := New[int](Config{Workers: 1})
	defer m.Close()
	if err := fault.Arm(FaultWorker, fault.Spec{Mode: fault.Error, Count: 1}); err != nil {
		t.Fatal(err)
	}
	ran := false
	snap, err := m.Submit(0, func(ctx context.Context, emit func(int)) error {
		ran = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, m, snap.ID)
	if got.State != StateFailed || !strings.Contains(got.Error, "injected") {
		t.Fatalf("faulted job = %+v", got)
	}
	if ran {
		t.Fatal("RunFunc ran despite injected worker fault")
	}
}

// TestDrainEstimateTracksBacklog: with no completions the estimate is
// the 1s floor; after observed runs it scales with queue depth.
func TestDrainEstimateTracksBacklog(t *testing.T) {
	m := New[int](Config{Workers: 1, QueueDepth: 8})
	defer m.Close()
	if got := m.DrainEstimate(); got != time.Second {
		t.Fatalf("cold estimate = %v, want 1s floor", got)
	}
	snap, err := m.Submit(0, func(ctx context.Context, emit func(int)) error {
		time.Sleep(5 * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, snap.ID)
	if m.avgRunNanos.Load() <= 0 {
		t.Fatal("no run-time sample observed")
	}
	// Estimate stays clamped to the floor for tiny backlogs and never
	// exceeds the 5m ceiling.
	if got := m.DrainEstimate(); got < time.Second || got > 5*time.Minute {
		t.Fatalf("estimate %v outside [1s, 5m]", got)
	}
}
