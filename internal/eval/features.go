// Package eval implements the paper's experimental methodology (§V): 10-fold
// stratified cross-validation, the Intra / Mix / Cross scenarios for both
// models, the compilation-option and normalisation sweep (Table IV), GA
// feature selection on/off (Table V), the per-label study (Fig. 6), the
// single- and pair-label ablation studies (Fig. 8/9), the embedding-seed
// sensitivity study, and the Hypre-style real-case evaluation (Table VI).
package eval

import (
	"fmt"
	"runtime"
	"sync"

	"mpidetect/internal/dataset"
	"mpidetect/internal/graphs"
	"mpidetect/internal/ir"
	"mpidetect/internal/ir2vec"
	"mpidetect/internal/irgen"
	"mpidetect/internal/passes"
)

// Features is an extracted feature matrix aligned with the codes.
type Features struct {
	X     [][]float64
	Codes []*dataset.Code
}

// GraphSet is the graph representation of a corpus.
type GraphSet struct {
	Gs    []*graphs.Graph
	Codes []*dataset.Code
}

// Extractor lowers, optimises and embeds corpora, caching per
// (dataset, optimisation level, seed) so the experiment suite does not
// recompute features.
type Extractor struct {
	Dim        int // IR2Vec dimension per encoding (paper: 256)
	SeedEpoch  int // TransE epochs
	mu         sync.Mutex
	featCache  map[string]*Features
	graphCache map[string]*GraphSet
	encCache   map[string]*ir2vec.Encoder
}

// NewExtractor returns an extractor with the paper's embedding size.
func NewExtractor(dim int) *Extractor {
	if dim <= 0 {
		dim = ir2vec.Dim
	}
	return &Extractor{Dim: dim, SeedEpoch: 30,
		featCache:  map[string]*Features{},
		graphCache: map[string]*GraphSet{},
		encCache:   map[string]*ir2vec.Encoder{},
	}
}

// lowerAll compiles every code of the dataset at the given level,
// parallelised across cores.
func lowerAll(d *dataset.Dataset, lvl passes.OptLevel) []*ir.Module {
	mods := make([]*ir.Module, len(d.Codes))
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(d.Codes); i += workers {
				m := irgen.MustLower(d.Codes[i].Prog)
				passes.Optimize(m, lvl)
				mods[i] = m
			}
		}(w)
	}
	wg.Wait()
	return mods
}

// Encoder returns (training if needed) the seed-embedding encoder for a
// corpus at an optimisation level and embedding seed.
func (e *Extractor) Encoder(d *dataset.Dataset, lvl passes.OptLevel, seed int64) *ir2vec.Encoder {
	key := fmt.Sprintf("%s|%s|%d", d.Name, lvl, seed)
	e.mu.Lock()
	enc, ok := e.encCache[key]
	e.mu.Unlock()
	if ok {
		return enc
	}
	mods := lowerAll(d, lvl)
	// Seed embeddings are trained on a sample of the corpus (unsupervised;
	// entity/relation structure saturates quickly).
	sample := mods
	if len(sample) > 200 {
		sample = sample[:200]
	}
	enc = ir2vec.Train(sample, e.Dim, seed, e.SeedEpoch)
	e.mu.Lock()
	e.encCache[key] = enc
	e.mu.Unlock()
	return enc
}

// IR2VecFeatures embeds a corpus with the encoder of enc-corpus encFrom
// (usually the same dataset; for Cross the training suite's encoder is
// reused on the validation suite).
func (e *Extractor) IR2VecFeatures(d *dataset.Dataset, lvl passes.OptLevel, seed int64, enc *ir2vec.Encoder) *Features {
	key := fmt.Sprintf("%s|%s|%d|enc%d", d.Name, lvl, seed, enc.Seed)
	e.mu.Lock()
	f, ok := e.featCache[key]
	e.mu.Unlock()
	if ok {
		return f
	}
	mods := lowerAll(d, lvl)
	x := make([][]float64, len(mods))
	var mu sync.Mutex
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(mods); i += workers {
				// Encoding mutates the encoder's fallback table; guard it.
				mu.Lock()
				v := enc.Encode(mods[i])
				mu.Unlock()
				x[i] = v
			}
		}(w)
	}
	wg.Wait()
	f = &Features{X: x, Codes: d.Codes}
	e.mu.Lock()
	e.featCache[key] = f
	e.mu.Unlock()
	return f
}

// Graphs builds (and caches) the ProGraML graphs of a corpus. The paper
// uses -O0 for the GNN.
func (e *Extractor) Graphs(d *dataset.Dataset, lvl passes.OptLevel) *GraphSet {
	key := fmt.Sprintf("%s|%s|graphs", d.Name, lvl)
	e.mu.Lock()
	gs, ok := e.graphCache[key]
	e.mu.Unlock()
	if ok {
		return gs
	}
	mods := lowerAll(d, lvl)
	out := make([]*graphs.Graph, len(mods))
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(mods); i += workers {
				out[i] = graphs.Build(mods[i])
			}
		}(w)
	}
	wg.Wait()
	gs = &GraphSet{Gs: out, Codes: d.Codes}
	e.mu.Lock()
	e.graphCache[key] = gs
	e.mu.Unlock()
	return gs
}
