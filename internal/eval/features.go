// Package eval implements the paper's experimental methodology (§V): 10-fold
// stratified cross-validation, the Intra / Mix / Cross scenarios for both
// models, the compilation-option and normalisation sweep (Table IV), GA
// feature selection on/off (Table V), the per-label study (Fig. 6), the
// single- and pair-label ablation studies (Fig. 8/9), the embedding-seed
// sensitivity study, and the Hypre-style real-case evaluation (Table VI).
package eval

import (
	"fmt"
	"sync"

	"mpidetect/internal/dataset"
	"mpidetect/internal/graphs"
	"mpidetect/internal/ir"
	"mpidetect/internal/ir2vec"
	"mpidetect/internal/irgen"
	"mpidetect/internal/par"
	"mpidetect/internal/passes"
)

// Features is an extracted feature matrix aligned with the codes.
type Features struct {
	X     [][]float64
	Codes []*dataset.Code
}

// GraphSet is the graph representation of a corpus.
type GraphSet struct {
	Gs    []*graphs.Graph
	Codes []*dataset.Code
}

// Extractor lowers, optimises and embeds corpora, caching per
// (dataset, optimisation level, seed) so the experiment suite does not
// recompute features.
type Extractor struct {
	Dim        int // IR2Vec dimension per encoding (paper: 256)
	SeedEpoch  int // TransE epochs
	mu         sync.Mutex
	featCache  map[string]*Features
	graphCache map[string]*GraphSet
	encCache   map[string]*ir2vec.Encoder
}

// NewExtractor returns an extractor with the paper's embedding size.
func NewExtractor(dim int) *Extractor {
	if dim <= 0 {
		dim = ir2vec.Dim
	}
	return &Extractor{Dim: dim, SeedEpoch: 30,
		featCache:  map[string]*Features{},
		graphCache: map[string]*GraphSet{},
		encCache:   map[string]*ir2vec.Encoder{},
	}
}

// lowerAll compiles every code of the dataset at the given level,
// parallelised across cores (par.Map, the shared worker-pool helper).
func lowerAll(d *dataset.Dataset, lvl passes.OptLevel) []*ir.Module {
	mods := make([]*ir.Module, len(d.Codes))
	par.Map(len(d.Codes), func(i int) {
		m := irgen.MustLower(d.Codes[i].Prog)
		passes.Optimize(m, lvl)
		mods[i] = m
	})
	return mods
}

// Encoder returns (training if needed) the seed-embedding encoder for a
// corpus at an optimisation level and embedding seed.
func (e *Extractor) Encoder(d *dataset.Dataset, lvl passes.OptLevel, seed int64) *ir2vec.Encoder {
	key := fmt.Sprintf("%s|%s|%d", d.Name, lvl, seed)
	e.mu.Lock()
	enc, ok := e.encCache[key]
	e.mu.Unlock()
	if ok {
		return enc
	}
	mods := lowerAll(d, lvl)
	// Seed embeddings are trained on a sample of the corpus (unsupervised;
	// entity/relation structure saturates quickly).
	sample := mods
	if len(sample) > 200 {
		sample = sample[:200]
	}
	enc = ir2vec.Train(sample, e.Dim, seed, e.SeedEpoch)
	// Second phase of the two-phase protocol: pin down fallback embeddings
	// for the rest of the corpus so Encode stays a read-only map hit.
	enc.FitVocab(mods)
	e.mu.Lock()
	e.encCache[key] = enc
	e.mu.Unlock()
	return enc
}

// IR2VecFeatures embeds a corpus with the encoder of enc-corpus encFrom
// (usually the same dataset; for Cross the training suite's encoder is
// reused on the validation suite).
func (e *Extractor) IR2VecFeatures(d *dataset.Dataset, lvl passes.OptLevel, seed int64, enc *ir2vec.Encoder) *Features {
	key := fmt.Sprintf("%s|%s|%d|enc%d", d.Name, lvl, seed, enc.Seed)
	e.mu.Lock()
	f, ok := e.featCache[key]
	e.mu.Unlock()
	if ok {
		return f
	}
	mods := lowerAll(d, lvl)
	x := make([][]float64, len(mods))
	// Encode is side-effect-free after training, so the corpus embeds
	// lock-free across all cores.
	par.Map(len(mods), func(i int) {
		x[i] = enc.Encode(mods[i])
	})
	f = &Features{X: x, Codes: d.Codes}
	e.mu.Lock()
	e.featCache[key] = f
	e.mu.Unlock()
	return f
}

// Graphs builds (and caches) the ProGraML graphs of a corpus. The paper
// uses -O0 for the GNN.
func (e *Extractor) Graphs(d *dataset.Dataset, lvl passes.OptLevel) *GraphSet {
	key := fmt.Sprintf("%s|%s|graphs", d.Name, lvl)
	e.mu.Lock()
	gs, ok := e.graphCache[key]
	e.mu.Unlock()
	if ok {
		return gs
	}
	mods := lowerAll(d, lvl)
	out := make([]*graphs.Graph, len(mods))
	par.Map(len(mods), func(i int) {
		out[i] = graphs.Build(mods[i])
	})
	gs = &GraphSet{Gs: out, Codes: d.Codes}
	e.mu.Lock()
	e.graphCache[key] = gs
	e.mu.Unlock()
	return gs
}
