package eval

import (
	"fmt"

	"mpidetect/internal/dataset"
	"mpidetect/internal/dtree"
	"mpidetect/internal/ir2vec"
	"mpidetect/internal/irgen"
	"mpidetect/internal/passes"
)

// HypreCell is one cell of Table VI: the prediction of one model on one
// compiled version of the case-study application.
type HypreCell struct {
	Training  string          // "MBI" or "MPI-CorrBench"
	Features  string          // "all" or "GA"
	Opt       passes.OptLevel // compilation of the Hypre version
	BuggyCode bool            // which version was classified
	Predicted bool            // predicted incorrect?
	Right     bool            // prediction matches the ground truth
}

// String formats the cell like the paper (ok/ko plus correctness).
func (h HypreCell) String() string {
	pred := "ok"
	if h.Predicted {
		pred = "ko"
	}
	mark := "WRONG"
	if h.Right {
		mark = "right"
	}
	version := "ok"
	if h.BuggyCode {
		version = "ko"
	}
	return fmt.Sprintf("train=%-14s feats=%-3s %s-%s -> predicted %s (%s)",
		h.Training, h.Features, h.Opt, version, pred, mark)
}

// HypreStudy reproduces Table VI: models trained on either suite, with all
// features or GA-selected features, classify the buggy and fixed versions
// compiled at -O0/-O2/-Os.
func HypreStudy(e *Extractor, mbi, corr *dataset.Dataset, p PipelineConfig, seed int64) []HypreCell {
	buggy, fixed := dataset.HypreCase(seed)
	var cells []HypreCell
	for _, training := range []*dataset.Dataset{mbi, corr} {
		enc := e.Encoder(training, p.Opt, p.Seed)
		f := e.IR2VecFeatures(training, p.Opt, p.Seed, enc)
		y := binaryLabels(f.Codes)
		all := make([]int, len(f.X))
		for i := range all {
			all[i] = i
		}
		norm := ir2vec.FitNormalizer(p.Norm, f.X)
		xn := norm.ApplyAll(f.X)
		var gaFeats []int
		if p.UseGA {
			gaFeats = selectFeatures(xn, y, all, p.gaConfig(len(f.X[0])), 31)
		}
		for _, feats := range []struct {
			name string
			sel  []int
		}{{"all", nil}, {"GA", gaFeats}} {
			if feats.name == "GA" && feats.sel == nil {
				continue
			}
			tree := dtree.Train(xn, y, dtree.Config{Features: feats.sel})
			for _, version := range []struct {
				code  *dataset.Code
				buggy bool
			}{{fixed, false}, {buggy, true}} {
				for _, lvl := range []passes.OptLevel{passes.O0, passes.O2, passes.Os} {
					m := irgen.MustLower(version.code.Prog)
					passes.Optimize(m, lvl)
					v := norm.Apply(enc.Encode(m))
					pred := tree.Predict(v) == 1
					cells = append(cells, HypreCell{
						Training: training.Name, Features: feats.name, Opt: lvl,
						BuggyCode: version.buggy, Predicted: pred,
						Right: pred == version.buggy,
					})
				}
			}
		}
	}
	return cells
}
