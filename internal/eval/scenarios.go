package eval

import (
	"math/rand"
	"runtime"
	"sync"

	"mpidetect/internal/dataset"
	"mpidetect/internal/dtree"
	"mpidetect/internal/ga"
	"mpidetect/internal/gnn"
	"mpidetect/internal/graphs"
	"mpidetect/internal/ir2vec"
	"mpidetect/internal/metrics"
	"mpidetect/internal/passes"
)

// PipelineConfig selects the knobs the paper explores for the IR2Vec model.
type PipelineConfig struct {
	Opt      passes.OptLevel // -O0 / -O2 / -Os (the paper settles on -Os)
	Norm     ir2vec.Norm     // none / vector / index (settles on vector)
	Seed     int64           // embedding seed (§V-A "Seeds")
	UseGA    bool            // GA feature selection (§IV-A)
	GAConfig *ga.Config      // nil = scaled default
	Folds    int             // 0 = 10
}

// DefaultPipeline is the configuration the paper's headline rows use:
// -Os, vector normalisation, GA feature selection, 10 folds.
func DefaultPipeline() PipelineConfig {
	return PipelineConfig{Opt: passes.Os, Norm: ir2vec.NormVector, Seed: 1, UseGA: true}
}

func (p PipelineConfig) folds() int {
	if p.Folds <= 0 {
		return 10
	}
	return p.Folds
}

// gaConfig returns the GA setup, scaled down from the paper's 2500×25 by
// default so the full experiment suite completes on a laptop; pass
// GAConfig to override (ga.Default gives the paper's values).
func (p PipelineConfig) gaConfig(numFeatures int) ga.Config {
	if p.GAConfig != nil {
		cfg := *p.GAConfig
		cfg.NumFeatures = numFeatures
		return cfg
	}
	cfg := ga.Default(numFeatures)
	cfg.PopulationSize = 150
	cfg.Generations = 10
	return cfg
}

// binaryLabels maps codes to 0 (correct) / 1 (incorrect).
func binaryLabels(codes []*dataset.Code) []int {
	y := make([]int, len(codes))
	for i, c := range codes {
		if c.Incorrect() {
			y[i] = 1
		}
	}
	return y
}

// stratifiedFolds partitions indices into k folds with per-label balance,
// deterministically from seed.
func stratifiedFolds(codes []*dataset.Code, k int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	byLabel := map[dataset.Label][]int{}
	for i, c := range codes {
		byLabel[c.Label] = append(byLabel[c.Label], i)
	}
	folds := make([][]int, k)
	for _, label := range dataset.AllLabels() {
		idx := byLabel[label]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for j, i := range idx {
			folds[j%k] = append(folds[j%k], i)
		}
	}
	return folds
}

// selectFeatures runs GA feature selection on the training split. The
// fitness of a coordinate subset is the mean validation accuracy of trees
// trained on it over three rotating 80/20 splits of the training data — a
// robust estimate that keeps the GA from overfitting one holdout.
func selectFeatures(x [][]float64, y []int, trainIdx []int, cfg ga.Config, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	shuffled := append([]int(nil), trainIdx...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	const splits = 3
	type split struct {
		subX, fitX [][]float64
		subY, fitY []int
	}
	sps := make([]split, splits)
	n := len(shuffled)
	for s := 0; s < splits; s++ {
		lo := n * s / splits
		hi := n * (s + 1) / splits
		var sub, fit []int
		fit = append(fit, shuffled[lo:hi]...)
		sub = append(sub, shuffled[:lo]...)
		sub = append(sub, shuffled[hi:]...)
		sps[s].subX, sps[s].subY = gather(x, y, sub)
		sps[s].fitX, sps[s].fitY = gather(x, y, fit)
	}
	cfg.Seed = seed
	res := ga.Run(cfg, func(features []int) float64 {
		acc := 0.0
		for _, sp := range sps {
			t := dtree.Train(sp.subX, sp.subY, dtree.Config{Features: features})
			acc += t.Accuracy(sp.fitX, sp.fitY)
		}
		return acc / splits
	})
	return res.Features
}

func gather(x [][]float64, y []int, idx []int) ([][]float64, []int) {
	gx := make([][]float64, len(idx))
	gy := make([]int, len(idx))
	for i, j := range idx {
		gx[i] = x[j]
		gy[i] = y[j]
	}
	return gx, gy
}

// trainEvalBinary fits normalisation + (optional GA) + tree on the train
// split and tallies the validation split into conf.
func trainEvalBinary(f *Features, y []int, trainIdx, valIdx []int, p PipelineConfig, conf *metrics.Confusion, foldSeed int64) {
	trainX, trainY := gather(f.X, y, trainIdx)
	norm := ir2vec.FitNormalizer(p.Norm, trainX)
	trainXn := norm.ApplyAll(trainX)
	var feats []int
	if p.UseGA {
		nx := make([][]float64, len(f.X))
		for i, idx := range trainIdx {
			nx[idx] = trainXn[i]
		}
		// selectFeatures needs normalised features indexed globally.
		full := make([][]float64, len(f.X))
		for i := range f.X {
			if nx[i] != nil {
				full[i] = nx[i]
			} else {
				full[i] = norm.Apply(f.X[i])
			}
		}
		feats = selectFeatures(full, y, trainIdx, p.gaConfig(len(f.X[0])), foldSeed)
	}
	tree := dtree.Train(trainXn, trainY, dtree.Config{Features: feats})
	for _, i := range valIdx {
		pred := tree.Predict(norm.Apply(f.X[i]))
		conf.Record(y[i] == 1, pred == 1)
	}
}

// IR2VecIntra runs the Intra scenario (train and validate on the same
// suite, k-fold CV) and returns the aggregated confusion (Table II rows
// "IR2vec Intra").
func IR2VecIntra(e *Extractor, d *dataset.Dataset, p PipelineConfig) metrics.Confusion {
	enc := e.Encoder(d, p.Opt, p.Seed)
	f := e.IR2VecFeatures(d, p.Opt, p.Seed, enc)
	y := binaryLabels(f.Codes)
	folds := stratifiedFolds(f.Codes, p.folds(), 42)
	confs := make([]metrics.Confusion, len(folds))
	parallelFolds(len(folds), func(k int) {
		var train []int
		for j, fold := range folds {
			if j != k {
				train = append(train, fold...)
			}
		}
		trainEvalBinary(f, y, train, folds[k], p, &confs[k], int64(k)+101)
	})
	var total metrics.Confusion
	for _, c := range confs {
		total.Add(c)
	}
	return total
}

// IR2VecCross trains on one suite and validates on the other (Table II
// rows "IR2vec Cross"). The training suite's encoder embeds both corpora.
func IR2VecCross(e *Extractor, train, val *dataset.Dataset, p PipelineConfig) metrics.Confusion {
	enc := e.Encoder(train, p.Opt, p.Seed)
	ftr := e.IR2VecFeatures(train, p.Opt, p.Seed, enc)
	fva := e.IR2VecFeatures(val, p.Opt, p.Seed, enc)
	ytr := binaryLabels(ftr.Codes)
	yva := binaryLabels(fva.Codes)
	all := make([]int, len(ftr.X))
	for i := range all {
		all[i] = i
	}
	var conf metrics.Confusion
	norm := ir2vec.FitNormalizer(p.Norm, ftr.X)
	trainXn := norm.ApplyAll(ftr.X)
	var feats []int
	if p.UseGA {
		feats = selectFeatures(trainXn, ytr, all, p.gaConfig(len(ftr.X[0])), 77)
	}
	tree := dtree.Train(trainXn, ytr, dtree.Config{Features: feats})
	for i := range fva.X {
		pred := tree.Predict(norm.Apply(fva.X[i]))
		conf.Record(yva[i] == 1, pred == 1)
	}
	return conf
}

// IR2VecMix merges both suites and cross-validates (Table II "IR2vec Mix").
func IR2VecMix(e *Extractor, mbi, corr *dataset.Dataset, p PipelineConfig) metrics.Confusion {
	mix := dataset.Merge("Mix", mbi, corr)
	return IR2VecIntra(e, mix, p)
}

// parallelFolds runs fn(k) for each fold concurrently.
func parallelFolds(k int, fn func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > k {
		workers = k
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < k; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// ---------------------------------------------------------------------------
// GNN scenarios (§IV-B, Table II rows "GNN ...").
// ---------------------------------------------------------------------------

// GNNScenarioConfig holds the GNN evaluation knobs.
type GNNScenarioConfig struct {
	Model gnn.Config
	Folds int
}

func (c GNNScenarioConfig) folds() int {
	if c.Folds <= 0 {
		return 10
	}
	return c.Folds
}

// GNNIntra cross-validates the GNN on one suite.
func GNNIntra(e *Extractor, d *dataset.Dataset, cfg GNNScenarioConfig) metrics.Confusion {
	gs := e.Graphs(d, passes.O0)
	y := binaryLabels(gs.Codes)
	folds := stratifiedFolds(gs.Codes, cfg.folds(), 43)
	var total metrics.Confusion
	for k := range folds {
		var trainIdx []int
		for j, fold := range folds {
			if j != k {
				trainIdx = append(trainIdx, fold...)
			}
		}
		total.Add(runGNNFold(gs, y, trainIdx, folds[k], cfg, int64(k)))
	}
	return total
}

// runGNNFold trains one GNN on the training indices and scores the
// validation indices (shared by GNNIntra and the ablation studies).
func runGNNFold(gs *GraphSet, y []int, trainIdx, valIdx []int, cfg GNNScenarioConfig, seedOff int64) metrics.Confusion {
	var trainGs []*graphs.Graph
	var samples []gnn.Sample
	for _, i := range trainIdx {
		trainGs = append(trainGs, gs.Gs[i])
		samples = append(samples, gnn.Sample{G: gs.Gs[i], Label: y[i]})
	}
	vocab := graphs.BuildVocab(trainGs)
	mcfg := cfg.Model
	mcfg.Seed += seedOff
	model := gnn.NewModel(mcfg, vocab, 2)
	model.Train(samples)
	var conf metrics.Confusion
	for _, i := range valIdx {
		conf.Record(y[i] == 1, model.Predict(gs.Gs[i]) == 1)
	}
	return conf
}

// GNNCross trains the GNN on one suite and validates on the other.
func GNNCross(e *Extractor, train, val *dataset.Dataset, cfg GNNScenarioConfig) metrics.Confusion {
	gtr := e.Graphs(train, passes.O0)
	gva := e.Graphs(val, passes.O0)
	ytr := binaryLabels(gtr.Codes)
	yva := binaryLabels(gva.Codes)
	vocab := graphs.BuildVocab(gtr.Gs)
	var samples []gnn.Sample
	for i, g := range gtr.Gs {
		samples = append(samples, gnn.Sample{G: g, Label: ytr[i]})
	}
	model := gnn.NewModel(cfg.Model, vocab, 2)
	model.Train(samples)
	var conf metrics.Confusion
	for i, g := range gva.Gs {
		conf.Record(yva[i] == 1, model.Predict(g) == 1)
	}
	return conf
}

// GNNMix merges the suites and cross-validates.
func GNNMix(e *Extractor, mbi, corr *dataset.Dataset, cfg GNNScenarioConfig) metrics.Confusion {
	mix := dataset.Merge("Mix", mbi, corr)
	return GNNIntra(e, mix, cfg)
}
