package eval

import (
	"mpidetect/internal/dataset"
	"mpidetect/internal/dtree"
	"mpidetect/internal/ir2vec"
	"mpidetect/internal/metrics"
)

// PerLabelAccuracy trains the DT to predict the error label itself
// (multi-class) under k-fold CV and reports accuracy per label — Fig. 6.
func PerLabelAccuracy(e *Extractor, d *dataset.Dataset, p PipelineConfig) map[dataset.Label]float64 {
	enc := e.Encoder(d, p.Opt, p.Seed)
	f := e.IR2VecFeatures(d, p.Opt, p.Seed, enc)
	// Multi-class labels: dense ids per label present in the corpus.
	labelID := map[dataset.Label]int{}
	var idLabel []dataset.Label
	for _, c := range f.Codes {
		if _, ok := labelID[c.Label]; !ok {
			labelID[c.Label] = len(idLabel)
			idLabel = append(idLabel, c.Label)
		}
	}
	y := make([]int, len(f.Codes))
	for i, c := range f.Codes {
		y[i] = labelID[c.Label]
	}
	correctCnt := map[dataset.Label]int{}
	totalCnt := map[dataset.Label]int{}
	folds := stratifiedFolds(f.Codes, p.folds(), 44)
	type foldRes struct{ correct, total map[dataset.Label]int }
	results := make([]foldRes, len(folds))
	parallelFolds(len(folds), func(k int) {
		res := foldRes{correct: map[dataset.Label]int{}, total: map[dataset.Label]int{}}
		var trainIdx []int
		for j, fold := range folds {
			if j != k {
				trainIdx = append(trainIdx, fold...)
			}
		}
		trainX, trainY := gather(f.X, y, trainIdx)
		norm := ir2vec.FitNormalizer(p.Norm, trainX)
		trainXn := norm.ApplyAll(trainX)
		var feats []int
		if p.UseGA {
			full := make([][]float64, len(f.X))
			for i := range f.X {
				full[i] = norm.Apply(f.X[i])
			}
			feats = selectFeatures(full, y, trainIdx, p.gaConfig(len(f.X[0])), int64(k)+500)
		}
		tree := dtree.Train(trainXn, trainY, dtree.Config{Features: feats})
		for _, i := range folds[k] {
			label := f.Codes[i].Label
			res.total[label]++
			if tree.Predict(norm.Apply(f.X[i])) == y[i] {
				res.correct[label]++
			}
		}
		results[k] = res
	})
	for _, r := range results {
		for l, n := range r.total {
			totalCnt[l] += n
			correctCnt[l] += r.correct[l]
		}
	}
	out := map[dataset.Label]float64{}
	for l, n := range totalCnt {
		out[l] = float64(correctCnt[l]) / float64(n)
	}
	return out
}

// Ablation removes every sample of the excluded labels from training (the
// model still predicts binary correct/incorrect) and reports, per excluded
// label, the fraction of its validation samples predicted incorrect —
// Fig. 8 (one label) and Fig. 9 (pairs).
func Ablation(e *Extractor, d *dataset.Dataset, p PipelineConfig, excluded []dataset.Label) map[dataset.Label]float64 {
	enc := e.Encoder(d, p.Opt, p.Seed)
	f := e.IR2VecFeatures(d, p.Opt, p.Seed, enc)
	y := binaryLabels(f.Codes)
	excl := map[dataset.Label]bool{}
	for _, l := range excluded {
		excl[l] = true
	}
	folds := stratifiedFolds(f.Codes, p.folds(), 45)
	caught := map[dataset.Label]int{}
	total := map[dataset.Label]int{}
	type foldRes struct{ caught, total map[dataset.Label]int }
	results := make([]foldRes, len(folds))
	parallelFolds(len(folds), func(k int) {
		res := foldRes{caught: map[dataset.Label]int{}, total: map[dataset.Label]int{}}
		var trainIdx []int
		for j, fold := range folds {
			if j == k {
				continue
			}
			for _, i := range fold {
				if !excl[f.Codes[i].Label] {
					trainIdx = append(trainIdx, i)
				}
			}
		}
		trainX, trainY := gather(f.X, y, trainIdx)
		norm := ir2vec.FitNormalizer(p.Norm, trainX)
		trainXn := norm.ApplyAll(trainX)
		var feats []int
		if p.UseGA {
			feats = selectFeatures(norm.ApplyAll(f.X), y, trainIdx, p.gaConfig(len(f.X[0])), int64(k)+700)
		}
		tree := dtree.Train(trainXn, trainY, dtree.Config{Features: feats})
		for _, i := range folds[k] {
			label := f.Codes[i].Label
			if !excl[label] {
				continue
			}
			res.total[label]++
			if tree.Predict(norm.Apply(f.X[i])) == 1 {
				res.caught[label]++
			}
		}
		results[k] = res
	})
	for _, r := range results {
		for l, n := range r.total {
			total[l] += n
			caught[l] += r.caught[l]
		}
	}
	out := map[dataset.Label]float64{}
	for _, l := range excluded {
		if total[l] > 0 {
			out[l] = float64(caught[l]) / float64(total[l])
		}
	}
	return out
}

// SeedStudy reproduces §V-A "Seeds": GA features are selected under the
// original embedding seed, then vectors are regenerated under a different
// seed while reusing the original coordinates. Returns (accuracy with the
// original seed, accuracy after the seed change).
func SeedStudy(e *Extractor, d *dataset.Dataset, p PipelineConfig, newSeed int64) (orig, changed metrics.Confusion) {
	orig = IR2VecIntra(e, d, p)
	// Re-embed with the new seed; reuse feature coordinates by rerunning
	// the pipeline with GA frozen to the coordinates chosen under the
	// original seed. We approximate "frozen GA" by selecting features on
	// the original-seed features and evaluating trees on new-seed features.
	encOld := e.Encoder(d, p.Opt, p.Seed)
	fOld := e.IR2VecFeatures(d, p.Opt, p.Seed, encOld)
	encNew := e.Encoder(d, p.Opt, newSeed)
	fNew := e.IR2VecFeatures(d, p.Opt, newSeed, encNew)
	y := binaryLabels(fOld.Codes)
	folds := stratifiedFolds(fOld.Codes, p.folds(), 46)
	confs := make([]metrics.Confusion, len(folds))
	parallelFolds(len(folds), func(k int) {
		var trainIdx []int
		for j, fold := range folds {
			if j != k {
				trainIdx = append(trainIdx, fold...)
			}
		}
		normOld := ir2vec.FitNormalizer(p.Norm, fOld.X)
		var feats []int
		if p.UseGA {
			feats = selectFeatures(normOld.ApplyAll(fOld.X), y, trainIdx, p.gaConfig(len(fOld.X[0])), int64(k)+900)
		}
		// Train and evaluate on the *new* seed's features with the old
		// coordinates.
		trainX, trainY := gather(fNew.X, y, trainIdx)
		norm := ir2vec.FitNormalizer(p.Norm, trainX)
		tree := dtree.Train(norm.ApplyAll(trainX), trainY, dtree.Config{Features: feats})
		for _, i := range folds[k] {
			confs[k].Record(y[i] == 1, tree.Predict(norm.Apply(fNew.X[i])) == 1)
		}
	})
	for _, c := range confs {
		changed.Add(c)
	}
	return orig, changed
}
