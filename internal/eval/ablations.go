package eval

import (
	"fmt"

	"mpidetect/internal/dataset"
	"mpidetect/internal/dtree"
	"mpidetect/internal/ir2vec"
	"mpidetect/internal/metrics"
	"mpidetect/internal/passes"
)

// Design-choice ablations called out in DESIGN.md: these quantify the parts
// of the pipeline the paper fixes without measuring (the two IR2Vec
// encodings, and the eager threshold sensitivity of the simulator is
// covered by the mpisim tests).

// EncodingAblation evaluates the Intra scenario with symbolic-only,
// flow-aware-only, and concatenated embeddings (the paper always
// concatenates; §IV-A motivates it by the negligible inference cost).
func EncodingAblation(e *Extractor, d *dataset.Dataset, p PipelineConfig) map[string]metrics.Confusion {
	enc := e.Encoder(d, p.Opt, p.Seed)
	full := e.IR2VecFeatures(d, p.Opt, p.Seed, enc)
	y := binaryLabels(full.Codes)
	out := map[string]metrics.Confusion{}
	for _, mode := range []ir2vec.Encoding{ir2vec.EncSymbolic, ir2vec.EncFlowAware, ir2vec.EncBoth} {
		x := make([][]float64, len(full.X))
		for i, v := range full.X {
			switch mode {
			case ir2vec.EncSymbolic:
				x[i] = v[:e.Dim]
			case ir2vec.EncFlowAware:
				x[i] = v[e.Dim:]
			default:
				x[i] = v
			}
		}
		f := &Features{X: x, Codes: full.Codes}
		folds := stratifiedFolds(f.Codes, p.folds(), 48)
		confs := make([]metrics.Confusion, len(folds))
		parallelFolds(len(folds), func(k int) {
			var train []int
			for j, fold := range folds {
				if j != k {
					train = append(train, fold...)
				}
			}
			q := p
			q.UseGA = false // isolate the encoding choice
			trainEvalBinary(f, y, train, folds[k], q, &confs[k], int64(k)+300)
		})
		var total metrics.Confusion
		for _, c := range confs {
			total.Add(c)
		}
		out[mode.String()] = total
	}
	return out
}

// DepthAblation sweeps the decision tree's depth limit, quantifying how
// much of the accuracy requires the sklearn default (unlimited depth).
func DepthAblation(e *Extractor, d *dataset.Dataset, p PipelineConfig, depths []int) map[int]metrics.Confusion {
	enc := e.Encoder(d, p.Opt, p.Seed)
	f := e.IR2VecFeatures(d, p.Opt, p.Seed, enc)
	y := binaryLabels(f.Codes)
	out := map[int]metrics.Confusion{}
	for _, depth := range depths {
		folds := stratifiedFolds(f.Codes, p.folds(), 49)
		confs := make([]metrics.Confusion, len(folds))
		depth := depth
		parallelFolds(len(folds), func(k int) {
			var train []int
			for j, fold := range folds {
				if j != k {
					train = append(train, fold...)
				}
			}
			trainX, trainY := gather(f.X, y, train)
			norm := ir2vec.FitNormalizer(p.Norm, trainX)
			tree := dtree.Train(norm.ApplyAll(trainX), trainY, dtree.Config{MaxDepth: depth})
			for _, i := range folds[k] {
				confs[k].Record(y[i] == 1, tree.Predict(norm.Apply(f.X[i])) == 1)
			}
		})
		var total metrics.Confusion
		for _, c := range confs {
			total.Add(c)
		}
		out[depth] = total
	}
	return out
}

// OptLevelGNNAblation evaluates the GNN at each optimisation level (the
// paper fixes -O0 for the GNN on the intuition that unoptimised code is
// easier to analyse; this quantifies that choice).
func OptLevelGNNAblation(e *Extractor, d *dataset.Dataset, cfg GNNScenarioConfig) map[string]metrics.Confusion {
	out := map[string]metrics.Confusion{}
	for _, lvl := range []passes.OptLevel{passes.O0, passes.O2, passes.Os} {
		gs := e.Graphs(d, lvl)
		y := binaryLabels(gs.Codes)
		folds := stratifiedFolds(gs.Codes, cfg.folds(), 50)
		var total metrics.Confusion
		for k := range folds {
			var trainIdx []int
			for j, fold := range folds {
				if j != k {
					trainIdx = append(trainIdx, fold...)
				}
			}
			total.Add(runGNNFold(gs, y, trainIdx, folds[k], cfg, int64(k)))
		}
		out[lvl.String()] = total
	}
	return out
}

var _ = fmt.Sprint
