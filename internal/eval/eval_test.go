package eval

import (
	"testing"

	"mpidetect/internal/dataset"
	"mpidetect/internal/gnn"
	"mpidetect/internal/ir2vec"
	"mpidetect/internal/passes"
)

// smallCorr returns a reduced CorrBench corpus for fast harness tests.
func smallCorr() *dataset.Dataset {
	d := dataset.GenerateCorrBench(21, false)
	out := &dataset.Dataset{Name: d.Name}
	counts := map[dataset.Label]int{}
	for _, c := range d.Codes {
		if counts[c.Label] < 24 {
			counts[c.Label]++
			out.Codes = append(out.Codes, c)
		}
	}
	return out
}

func smallPipe() PipelineConfig {
	p := DefaultPipeline()
	p.Folds = 3
	p.UseGA = false
	return p
}

func TestStratifiedFolds(t *testing.T) {
	d := smallCorr()
	folds := stratifiedFolds(d.Codes, 4, 1)
	seen := map[int]bool{}
	n := 0
	for _, f := range folds {
		for _, i := range f {
			if seen[i] {
				t.Fatal("index appears in two folds")
			}
			seen[i] = true
			n++
		}
	}
	if n != len(d.Codes) {
		t.Fatalf("folds cover %d/%d codes", n, len(d.Codes))
	}
	// Stratification: each fold has both correct and incorrect codes.
	for k, f := range folds {
		c, inc := 0, 0
		for _, i := range f {
			if d.Codes[i].Incorrect() {
				inc++
			} else {
				c++
			}
		}
		if c == 0 || inc == 0 {
			t.Errorf("fold %d unbalanced: %d correct %d incorrect", k, c, inc)
		}
	}
}

func TestIR2VecIntraBeatsChance(t *testing.T) {
	d := smallCorr()
	ex := NewExtractor(48)
	c := IR2VecIntra(ex, d, smallPipe())
	if c.Total() != len(d.Codes) {
		t.Fatalf("verdicts %d != %d codes", c.Total(), len(d.Codes))
	}
	if c.Accuracy() < 0.7 {
		t.Errorf("intra accuracy %.3f below 0.7", c.Accuracy())
	}
}

func TestIR2VecCrossRuns(t *testing.T) {
	corr := smallCorr()
	mbi := dataset.GenerateMBI(21)
	small := &dataset.Dataset{Name: mbi.Name}
	counts := map[dataset.Label]int{}
	for _, c := range mbi.Codes {
		if counts[c.Label] < 12 {
			counts[c.Label]++
			small.Codes = append(small.Codes, c)
		}
	}
	ex := NewExtractor(48)
	c := IR2VecCross(ex, small, corr, smallPipe())
	if c.Total() != len(corr.Codes) {
		t.Fatalf("cross verdicts %d != %d", c.Total(), len(corr.Codes))
	}
	// Cross transfer is hard but must beat coin-flipping on this corpus.
	if c.Accuracy() < 0.5 {
		t.Errorf("cross accuracy %.3f below 0.5", c.Accuracy())
	}
}

func TestGNNIntraSmall(t *testing.T) {
	d := smallCorr()
	ex := NewExtractor(48)
	cfg := GNNScenarioConfig{Folds: 2,
		Model: gnn.Config{EmbedDim: 8, Hidden: []int{12, 8, 8}, LR: 3e-3,
			Epochs: 3, BatchSize: 8, Seed: 1, Workers: 1}}
	c := GNNIntra(ex, d, cfg)
	if c.Total() != len(d.Codes) {
		t.Fatalf("verdicts %d != %d codes", c.Total(), len(d.Codes))
	}
	if c.Accuracy() < 0.6 {
		t.Errorf("GNN intra accuracy %.3f below 0.6", c.Accuracy())
	}
}

func TestAblationExcludesLabel(t *testing.T) {
	d := smallCorr()
	ex := NewExtractor(48)
	acc := Ablation(ex, d, smallPipe(), []dataset.Label{dataset.MissingCall})
	v, ok := acc[dataset.MissingCall]
	if !ok {
		t.Fatal("ablation did not report the excluded label")
	}
	if v < 0 || v > 1 {
		t.Fatalf("ablation accuracy out of range: %f", v)
	}
}

func TestPerLabelAccuracyCoversLabels(t *testing.T) {
	d := smallCorr()
	ex := NewExtractor(48)
	acc := PerLabelAccuracy(ex, d, smallPipe())
	if _, ok := acc[dataset.Correct]; !ok {
		t.Error("per-label study missing Correct")
	}
	if _, ok := acc[dataset.ArgError]; !ok {
		t.Error("per-label study missing ArgError")
	}
	for l, v := range acc {
		if v < 0 || v > 1 {
			t.Errorf("%s accuracy %f out of range", l, v)
		}
	}
}

func TestExtractorCaches(t *testing.T) {
	d := smallCorr()
	ex := NewExtractor(32)
	enc := ex.Encoder(d, passes.Os, 1)
	f1 := ex.IR2VecFeatures(d, passes.Os, 1, enc)
	f2 := ex.IR2VecFeatures(d, passes.Os, 1, enc)
	if f1 != f2 {
		t.Error("feature cache miss for identical key")
	}
	g1 := ex.Graphs(d, passes.O0)
	g2 := ex.Graphs(d, passes.O0)
	if g1 != g2 {
		t.Error("graph cache miss for identical key")
	}
}

func TestHypreStudyShape(t *testing.T) {
	corr := smallCorr()
	mbi := dataset.GenerateMBI(31)
	small := &dataset.Dataset{Name: mbi.Name}
	counts := map[dataset.Label]int{}
	for _, c := range mbi.Codes {
		if counts[c.Label] < 10 {
			counts[c.Label]++
			small.Codes = append(small.Codes, c)
		}
	}
	ex := NewExtractor(48)
	p := smallPipe() // GA off: cells are "all"-features only
	cells := HypreStudy(ex, small, corr, p, 1)
	// 2 training suites x 1 feature set x 2 versions x 3 opt levels.
	if len(cells) != 12 {
		t.Fatalf("got %d cells, want 12", len(cells))
	}
	for _, c := range cells {
		if c.Right != (c.Predicted == c.BuggyCode) {
			t.Error("cell correctness inconsistent")
		}
	}
}

func TestNormalizationModesChangeFeatures(t *testing.T) {
	x := [][]float64{{10, -2}, {5, 4}}
	vNone := ir2vec.FitNormalizer(ir2vec.NormNone, x).Apply(x[0])
	vVec := ir2vec.FitNormalizer(ir2vec.NormVector, x).Apply(x[0])
	if vNone[0] == vVec[0] {
		t.Error("vector normalisation had no effect")
	}
}

func TestEncodingAblation(t *testing.T) {
	d := smallCorr()
	ex := NewExtractor(32)
	res := EncodingAblation(ex, d, smallPipe())
	for _, mode := range []string{"symbolic", "flow-aware", "concat"} {
		c, ok := res[mode]
		if !ok {
			t.Fatalf("missing mode %q", mode)
		}
		if c.Total() != len(d.Codes) {
			t.Errorf("%s covered %d/%d codes", mode, c.Total(), len(d.Codes))
		}
	}
}

func TestDepthAblationMonotoneCoverage(t *testing.T) {
	d := smallCorr()
	ex := NewExtractor(32)
	res := DepthAblation(ex, d, smallPipe(), []int{1, 0})
	if len(res) != 2 {
		t.Fatalf("depth ablation returned %d entries", len(res))
	}
	// A depth-1 stump should not beat the unlimited tree.
	if res[1].Accuracy() > res[0].Accuracy()+0.05 {
		t.Errorf("stump (%.3f) beat full tree (%.3f)", res[1].Accuracy(), res[0].Accuracy())
	}
}

func TestOptLevelGNNAblation(t *testing.T) {
	d := smallCorr()
	// Shrink further for the GNN.
	small := &dataset.Dataset{Name: d.Name}
	for i, c := range d.Codes {
		if i%3 == 0 {
			small.Codes = append(small.Codes, c)
		}
	}
	ex := NewExtractor(32)
	cfg := GNNScenarioConfig{Folds: 2,
		Model: gnn.Config{EmbedDim: 8, Hidden: []int{10, 8}, LR: 3e-3,
			Epochs: 2, BatchSize: 8, Seed: 1, Workers: 1}}
	res := OptLevelGNNAblation(ex, small, cfg)
	for _, lvl := range []string{"-O0", "-O2", "-Os"} {
		if _, ok := res[lvl]; !ok {
			t.Errorf("missing level %s", lvl)
		}
	}
}
