package gnn

import (
	"math/rand"
	"testing"

	"mpidetect/internal/dataset"
	"mpidetect/internal/graphs"
	"mpidetect/internal/irgen"
)

// tinyCfg keeps unit tests fast.
func tinyCfg() Config {
	return Config{EmbedDim: 12, Hidden: []int{16, 12, 8}, LR: 3e-3,
		Epochs: 8, BatchSize: 8, Seed: 3, Workers: 2}
}

// corpusSample builds graphs for n codes of each class from the CorrBench
// generator (small programs -> fast tests).
func corpusSample(t *testing.T, n int) ([]Sample, []Sample, *graphs.Vocab) {
	t.Helper()
	d := dataset.GenerateCorrBench(99, false)
	var correct, incorrect []*graphs.Graph
	for _, c := range d.Codes {
		if c.Label == dataset.Correct && len(correct) < 2*n {
			correct = append(correct, graphs.Build(irgen.MustLower(c.Prog)))
		}
		if c.Label == dataset.ArgError && len(incorrect) < 2*n {
			incorrect = append(incorrect, graphs.Build(irgen.MustLower(c.Prog)))
		}
	}
	var all []*graphs.Graph
	all = append(all, correct...)
	all = append(all, incorrect...)
	vocab := graphs.BuildVocab(all)
	var train, test []Sample
	for i, g := range correct {
		if i < n {
			train = append(train, Sample{G: g, Label: 0})
		} else {
			test = append(test, Sample{G: g, Label: 0})
		}
	}
	for i, g := range incorrect {
		if i < n {
			train = append(train, Sample{G: g, Label: 1})
		} else {
			test = append(test, Sample{G: g, Label: 1})
		}
	}
	return train, test, vocab
}

func TestGraphBuild(t *testing.T) {
	d := dataset.GenerateCorrBench(1, false)
	g := graphs.Build(irgen.MustLower(d.Codes[0].Prog))
	if len(g.Nodes) == 0 || len(g.Edges) == 0 {
		t.Fatal("empty graph")
	}
	counts := g.NumByKind()
	if counts[graphs.KindInstr] == 0 || counts[graphs.KindVar] == 0 || counts[graphs.KindConst] == 0 {
		t.Errorf("node kinds missing: %v", counts)
	}
	// Every edge endpoint must be in range.
	for _, e := range g.Edges {
		if e.Src < 0 || e.Src >= len(g.Nodes) || e.Dst < 0 || e.Dst >= len(g.Nodes) {
			t.Fatal("edge endpoint out of range")
		}
	}
	// MPI calls must appear as tokens.
	found := false
	for _, n := range g.Nodes {
		if n.Kind == graphs.KindInstr && len(n.Token) > 9 && n.Token[:9] == "call:MPI_" {
			found = true
		}
	}
	if !found {
		t.Error("no MPI call tokens in graph")
	}
}

func TestVocab(t *testing.T) {
	d := dataset.GenerateCorrBench(2, false)
	g1 := graphs.Build(irgen.MustLower(d.Codes[0].Prog))
	v := graphs.BuildVocab([]*graphs.Graph{g1})
	if v.Size() < 5 {
		t.Fatalf("vocab too small: %d", v.Size())
	}
	if v.ID("never-seen-token") != v.OOV {
		t.Error("unknown token did not map to OOV")
	}
	if v.ID(g1.Nodes[0].Token) == v.OOV {
		t.Error("known token mapped to OOV")
	}
}

func TestTrainLearnsSeparableTask(t *testing.T) {
	train, test, vocab := corpusSample(t, 12)
	m := NewModel(tinyCfg(), vocab, 2)
	m.Train(train)
	correct := 0
	for _, s := range test {
		if m.Predict(s.G) == s.Label {
			correct++
		}
	}
	acc := float64(correct) / float64(len(test))
	if acc < 0.7 {
		t.Errorf("test accuracy %.2f < 0.7 on a separable task (%d/%d)", acc, correct, len(test))
	}
}

func TestPredictProbsSumToOne(t *testing.T) {
	train, _, vocab := corpusSample(t, 4)
	m := NewModel(tinyCfg(), vocab, 2)
	p := m.PredictProbs(train[0].G)
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("probs sum to %g", sum)
	}
}

func TestDeterministicTraining(t *testing.T) {
	train, test, vocab := corpusSample(t, 6)
	cfg := tinyCfg()
	cfg.Epochs = 2
	m1 := NewModel(cfg, vocab, 2)
	m1.Train(train)
	m2 := NewModel(cfg, vocab, 2)
	m2.Train(train)
	for _, s := range test {
		if m1.Predict(s.G) != m2.Predict(s.G) {
			t.Fatal("training is nondeterministic for identical seeds")
		}
	}
}

func TestNumParamsScale(t *testing.T) {
	vocab, err := graphs.VocabFromTokenIDs(map[string]int{"a": 1, "b": 2})
	if err != nil {
		t.Fatal(err)
	}
	small := NewModel(Config{EmbedDim: 4, Hidden: []int{4}, LR: 1e-3, Epochs: 1, BatchSize: 4, Seed: 1, Workers: 1}, vocab, 2)
	big := NewModel(Config{EmbedDim: 8, Hidden: []int{8, 8}, LR: 1e-3, Epochs: 1, BatchSize: 4, Seed: 1, Workers: 1}, vocab, 2)
	if small.NumParams() >= big.NumParams() {
		t.Error("parameter count does not grow with model size")
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	// Gradient accumulation across workers must not change results.
	train, test, vocab := corpusSample(t, 6)
	cfg := tinyCfg()
	cfg.Epochs = 2
	cfg.Workers = 1
	m1 := NewModel(cfg, vocab, 2)
	m1.Train(train)
	cfg.Workers = 4
	m2 := NewModel(cfg, vocab, 2)
	m2.Train(train)
	diff := 0
	for _, s := range test {
		if m1.Predict(s.G) != m2.Predict(s.G) {
			diff++
		}
	}
	if diff > len(test)/4 {
		t.Errorf("worker count changed %d/%d predictions", diff, len(test))
	}
	_ = rand.Int
}
