// Package gnn implements the paper's GNN-based MPI error detection pipeline
// (§IV-B): ProGraML heterogeneous program graphs fed through three GATv2
// convolution layers (128/64/32 in the paper), an adaptive max-pooling
// aggregation into a graph-level vector, and two fully connected layers
// whose output dimension is the number of classes. Training uses
// cross-entropy loss and Adam with learning rate 4e-4 for 10 epochs.
package gnn

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"mpidetect/internal/autodiff"
	"mpidetect/internal/graphs"
	"mpidetect/internal/nn"
	"mpidetect/internal/tensor"
)

// Config holds the hyper-parameters. Paper values: EmbedDim 32 (input
// embedding), Hidden {128, 64, 32}, LR 4e-4, Epochs 10. The default used by
// the experiment harness is a proportionally narrower stack so the full
// 10-fold × 5-scenario evaluation finishes in CPU-only wall-clock; pass
// Paper() for the faithful sizes.
type Config struct {
	EmbedDim  int
	Hidden    []int
	LR        float64
	Epochs    int
	BatchSize int
	Seed      int64
	Workers   int
}

// Default returns the throughput-oriented configuration.
func Default() Config {
	return Config{EmbedDim: 16, Hidden: []int{32, 24, 16}, LR: 2e-3,
		Epochs: 4, BatchSize: 32, Seed: 1, Workers: runtime.GOMAXPROCS(0)}
}

// Paper returns the paper-faithful configuration (§IV-B).
func Paper() Config {
	return Config{EmbedDim: 32, Hidden: []int{128, 64, 32}, LR: 4e-4,
		Epochs: 10, BatchSize: 32, Seed: 1, Workers: runtime.GOMAXPROCS(0)}
}

// Sample is one labelled graph.
type Sample struct {
	G     *graphs.Graph
	Label int
}

// The five edge relations of the heterogeneous ProGraML schema.
type relation struct {
	edge     graphs.EdgeKind
	src, dst graphs.NodeKind
}

var relations = []relation{
	{graphs.EdgeControl, graphs.KindInstr, graphs.KindInstr},
	{graphs.EdgeData, graphs.KindVar, graphs.KindInstr},
	{graphs.EdgeData, graphs.KindConst, graphs.KindInstr},
	{graphs.EdgeData, graphs.KindInstr, graphs.KindVar},
	{graphs.EdgeCall, graphs.KindInstr, graphs.KindInstr},
}

// maxLayerTerms bounds the fixed term buffer in forward (self transform
// plus one message per relation); the init check keeps a future schema
// extension from silently overflowing it.
const maxLayerTerms = 8

func init() {
	if 1+len(relations) > maxLayerTerms {
		panic("gnn: relation schema exceeds maxLayerTerms; grow the forward term buffer")
	}
}

// prepared is a graph preprocessed for the model: per-kind token ids and
// per-relation local edge lists.
type prepared struct {
	tokens [graphs.NumNodeKinds][]int
	edges  [][2][]int // per relation: [srcIdx, dstIdx] in kind-local indices
	label  int
}

// tokenID resolves node i of g to its vocabulary id: the pre-resolved
// TokID when the graph carries one (graphs.BuildResolved), the token
// string against the model vocabulary otherwise.
func (m *Model) tokenID(g *graphs.Graph, i int) int {
	if g.TokID != nil {
		return int(g.TokID[i])
	}
	return m.Vocab.ID(g.Nodes[i].Token)
}

func (m *Model) prepare(g *graphs.Graph, label int) *prepared {
	p := &prepared{label: label, edges: make([][2][]int, len(relations))}
	local := make([]int, len(g.Nodes))
	for i, n := range g.Nodes {
		local[i] = len(p.tokens[n.Kind])
		p.tokens[n.Kind] = append(p.tokens[n.Kind], m.tokenID(g, i))
	}
	for _, e := range g.Edges {
		sk := g.Nodes[e.Src].Kind
		dk := g.Nodes[e.Dst].Kind
		for ri, rel := range relations {
			if rel.edge == e.Kind && rel.src == sk && rel.dst == dk {
				p.edges[ri][0] = append(p.edges[ri][0], local[e.Src])
				p.edges[ri][1] = append(p.edges[ri][1], local[e.Dst])
				break
			}
		}
	}
	return p
}

// preparedBatch is several graphs fused into one block-diagonal prepared
// form: per-kind token lists are the per-graph lists concatenated (seg
// maps each row back to its graph), and per-relation edge lists carry
// kind-local row indices into the concatenated lists. Because the graphs
// share no nodes, every segment operation downstream sees exactly the
// rows and edge order of the corresponding single-graph pass.
type preparedBatch struct {
	n      int
	tokens [graphs.NumNodeKinds][]int
	seg    [graphs.NumNodeKinds][]int
	edges  [][2][]int
}

func (m *Model) prepareBatch(gs []*graphs.Graph) *preparedBatch {
	p := &preparedBatch{n: len(gs), edges: make([][2][]int, len(relations))}
	var local []int
	for gi, g := range gs {
		if cap(local) < len(g.Nodes) {
			local = make([]int, len(g.Nodes))
		}
		local = local[:len(g.Nodes)]
		for i, n := range g.Nodes {
			local[i] = len(p.tokens[n.Kind])
			p.tokens[n.Kind] = append(p.tokens[n.Kind], m.tokenID(g, i))
			p.seg[n.Kind] = append(p.seg[n.Kind], gi)
		}
		for _, e := range g.Edges {
			sk := g.Nodes[e.Src].Kind
			dk := g.Nodes[e.Dst].Kind
			for ri, rel := range relations {
				if rel.edge == e.Kind && rel.src == sk && rel.dst == dk {
					p.edges[ri][0] = append(p.edges[ri][0], local[e.Src])
					p.edges[ri][1] = append(p.edges[ri][1], local[e.Dst])
					break
				}
			}
		}
	}
	return p
}

type heteroLayer struct {
	convs []*nn.GATv2                     // one per relation
	self  [graphs.NumNodeKinds]*nn.Linear // self transform per node kind
}

// Model is the trained GNN classifier.
type Model struct {
	Cfg     Config
	Vocab   *graphs.Vocab
	Classes int

	ps      *nn.ParamSet
	embed   *nn.Embedding
	layers  []*heteroLayer
	fc1     *nn.Linear
	fc2     *nn.Linear
	ctxPool *sync.Pool // *nn.Ctx, reused across Predict calls
}

// NewModel builds an untrained model over the vocabulary.
func NewModel(cfg Config, vocab *graphs.Vocab, classes int) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{Cfg: cfg, Vocab: vocab, Classes: classes, ps: &nn.ParamSet{},
		ctxPool: &sync.Pool{}}
	m.embed = nn.NewEmbedding(m.ps, rng, "embed", vocab.Size(), cfg.EmbedDim)
	in := cfg.EmbedDim
	for li, h := range cfg.Hidden {
		layer := &heteroLayer{}
		for ri := range relations {
			layer.convs = append(layer.convs,
				nn.NewGATv2(m.ps, rng, lname("gat", li, ri), in, h))
		}
		for k := graphs.NodeKind(0); k < graphs.NumNodeKinds; k++ {
			layer.self[k] = nn.NewLinear(m.ps, rng, lname("self", li, int(k)), in, h)
		}
		m.layers = append(m.layers, layer)
		in = h
	}
	last := cfg.Hidden[len(cfg.Hidden)-1]
	m.fc1 = nn.NewLinear(m.ps, rng, "fc1", last*int(graphs.NumNodeKinds), last)
	m.fc2 = nn.NewLinear(m.ps, rng, "fc2", last, classes)
	return m
}

func lname(base string, a, b int) string {
	return base + string(rune('0'+a)) + "." + string(rune('0'+b))
}

var errGobShape = errors.New("gnn: corrupt model encoding: invalid layer shape")

// modelState is the exported gob mirror of Model: the hyper-parameters and
// vocabulary needed to rebuild the layer structure via NewModel, plus the
// trained parameter values by name.
type modelState struct {
	Cfg      Config
	VocabIDs map[string]int
	VocabOOV int
	Classes  int
	Params   map[string][]float64
}

// GobEncode implements gob.GobEncoder.
func (m *Model) GobEncode() ([]byte, error) {
	if m.ps == nil || m.Vocab == nil {
		return nil, errors.New("gnn: cannot encode an uninitialised model")
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(modelState{
		Cfg: m.Cfg, VocabIDs: m.Vocab.TokenIDs(), VocabOOV: m.Vocab.OOV,
		Classes: m.Classes, Params: m.ps.State()})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder: it rebuilds an untrained model with
// the encoded shape, then restores the trained weights into it. Workers is
// re-derived from the decoding host so an artifact trained elsewhere uses
// this machine's parallelism.
func (m *Model) GobDecode(b []byte) error {
	var st modelState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return err
	}
	if len(st.Cfg.Hidden) == 0 || st.Cfg.EmbedDim <= 0 || st.Classes <= 0 {
		return errGobShape
	}
	for _, h := range st.Cfg.Hidden {
		if h <= 0 {
			return errGobShape
		}
	}
	st.Cfg.Workers = runtime.GOMAXPROCS(0)
	vocab, err := graphs.VocabFromTokenIDs(st.VocabIDs)
	if err != nil {
		return fmt.Errorf("gnn: corrupt model encoding: %w", err)
	}
	vocab.OOV = st.VocabOOV
	fresh := NewModel(st.Cfg, vocab, st.Classes)
	if err := fresh.ps.LoadState(st.Params); err != nil {
		return err
	}
	*m = *fresh
	return nil
}

// forward computes the class logits of one prepared graph.
func (m *Model) forward(c *nn.Ctx, p *prepared) *autodiff.Node {
	var h [graphs.NumNodeKinds]*autodiff.Node
	for k := graphs.NodeKind(0); k < graphs.NumNodeKinds; k++ {
		ids := p.tokens[k]
		if len(ids) == 0 {
			h[k] = nil
			continue
		}
		h[k] = m.embed.Forward(c, ids)
	}
	for _, layer := range m.layers {
		var next [graphs.NumNodeKinds]*autodiff.Node
		for k := graphs.NodeKind(0); k < graphs.NumNodeKinds; k++ {
			if h[k] == nil {
				continue
			}
			// Self transform plus one message per active relation, summed
			// and activated in a single fused pass (same left-to-right
			// accumulation order as the former Add chain).
			var terms [maxLayerTerms]*autodiff.Node
			n := 0
			terms[n] = layer.self[k].Forward(c, h[k])
			n++
			for ri, rel := range relations {
				if rel.dst != k || h[rel.src] == nil {
					continue
				}
				if len(p.edges[ri][0]) == 0 {
					continue
				}
				terms[n] = layer.convs[ri].Forward(c, h[rel.src], h[k],
					p.edges[ri][0], p.edges[ri][1], len(p.tokens[k]))
				n++
			}
			next[k] = c.T.ELUAddN(terms[:n]...)
		}
		h = next
	}
	// Adaptive max pooling per kind, concatenated into the graph vector.
	last := m.Cfg.Hidden[len(m.Cfg.Hidden)-1]
	var pooled *autodiff.Node
	for k := graphs.NodeKind(0); k < graphs.NumNodeKinds; k++ {
		var pk *autodiff.Node
		if h[k] == nil {
			pk = c.T.Input(tensor.New(1, last))
		} else {
			pk = c.T.MaxRows(h[k])
		}
		if pooled == nil {
			pooled = pk
		} else {
			pooled = c.T.Concat(pooled, pk)
		}
	}
	hidden := c.T.ReLU(m.fc1.Forward(c, pooled))
	return m.fc2.Forward(c, hidden)
}

// forwardBatch computes the [n × classes] logits of a fused batch. The
// arithmetic per graph is bit-identical to forward: every matrix op is
// row-independent, segment ops visit rows/edges in the same per-graph
// order, and a relation that is empty for one graph but present elsewhere
// in the batch contributes exactly-zero message rows to that graph — an
// addition the unbatched pass skips, with identical results (+0 added to
// any accumulator leaves it unchanged).
func (m *Model) forwardBatch(c *nn.Ctx, p *preparedBatch) *autodiff.Node {
	var h [graphs.NumNodeKinds]*autodiff.Node
	for k := graphs.NodeKind(0); k < graphs.NumNodeKinds; k++ {
		if len(p.tokens[k]) == 0 {
			continue
		}
		h[k] = m.embed.Forward(c, p.tokens[k])
	}
	for _, layer := range m.layers {
		var next [graphs.NumNodeKinds]*autodiff.Node
		for k := graphs.NodeKind(0); k < graphs.NumNodeKinds; k++ {
			if h[k] == nil {
				continue
			}
			var terms [maxLayerTerms]*autodiff.Node
			n := 0
			terms[n] = layer.self[k].Forward(c, h[k])
			n++
			for ri, rel := range relations {
				if rel.dst != k || h[rel.src] == nil {
					continue
				}
				if len(p.edges[ri][0]) == 0 {
					continue
				}
				terms[n] = layer.convs[ri].Forward(c, h[rel.src], h[k],
					p.edges[ri][0], p.edges[ri][1], len(p.tokens[k]))
				n++
			}
			next[k] = c.T.ELUAddN(terms[:n]...)
		}
		h = next
	}
	// Adaptive max pooling per kind and per graph, concatenated into the
	// [n × 3*last] graph-vector matrix.
	last := m.Cfg.Hidden[len(m.Cfg.Hidden)-1]
	var pooled *autodiff.Node
	for k := graphs.NodeKind(0); k < graphs.NumNodeKinds; k++ {
		var pk *autodiff.Node
		if h[k] == nil {
			pk = c.T.Input(tensor.New(p.n, last))
		} else {
			pk = c.T.SegmentMaxRows(h[k], p.seg[k], p.n)
		}
		if pooled == nil {
			pooled = pk
		} else {
			pooled = c.T.Concat(pooled, pk)
		}
	}
	hidden := c.T.ReLU(m.fc1.Forward(c, pooled))
	return m.fc2.Forward(c, hidden)
}

// Train fits the model on the samples. Each worker owns one reusable
// context: the tape arena is recycled per sample, so the steady-state
// training loop performs almost no heap allocation.
func (m *Model) Train(samples []Sample) {
	rng := rand.New(rand.NewSource(m.Cfg.Seed + 17))
	prep := make([]*prepared, len(samples))
	for i, s := range samples {
		prep[i] = m.prepare(s.G, s.Label)
	}
	adam := nn.NewAdam(m.Cfg.LR)
	workers := m.Cfg.Workers
	if workers < 1 {
		workers = 1
	}
	bufs := make([]*nn.GradBuffer, workers)
	ctxs := make([]*nn.Ctx, workers)
	for i := range bufs {
		bufs[i] = m.ps.NewGradBuffer()
		ctxs[i] = nn.NewCtx(m.ps, bufs[i])
	}
	trainOne := func(w, bi int, batch []int) {
		p := prep[batch[bi]]
		c := ctxs[w]
		c.Reset(bufs[w])
		logits := m.forward(c, p)
		loss := c.T.CrossEntropyLogits(logits, p.label)
		c.Backward(loss)
	}
	order := make([]int, len(prep))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < m.Cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += m.Cfg.BatchSize {
			end := start + m.Cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			if workers == 1 {
				// Single-worker hosts skip the goroutine fan-out entirely.
				for bi := range batch {
					trainOne(0, bi, batch)
				}
			} else {
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for bi := w; bi < len(batch); bi += workers {
							trainOne(w, bi, batch)
						}
					}(w)
				}
				wg.Wait()
			}
			for _, gb := range bufs {
				m.ps.ReduceInto(gb)
				gb.Zero()
			}
			scale := 1.0 / float64(len(batch))
			for _, prm := range m.ps.List {
				tensor.ScaleInPlace(prm.Grad, scale)
			}
			adam.Step(m.ps)
		}
	}
}

// getCtx borrows a reusable inference context (concurrent Predict calls
// each get their own; the pool recycles tape arenas between calls). The
// tapes run forward-only: no gradient storage, no backward closures.
func (m *Model) getCtx() *nn.Ctx {
	if c, ok := m.ctxPool.Get().(*nn.Ctx); ok {
		c.Reset(nil)
		return c
	}
	c := nn.NewCtx(m.ps, nil)
	c.T.SetInference(true)
	return c
}

// logitsOf runs one inference forward pass, copying the logits out of the
// tape arena so the context can be recycled.
func (m *Model) logitsOf(g *graphs.Graph, dst []float64) []float64 {
	p := m.prepare(g, 0)
	c := m.getCtx()
	logits := m.forward(c, p)
	dst = append(dst[:0], logits.Val.Data...)
	m.ctxPool.Put(c)
	return dst
}

// Predict returns the class with the highest logit for the graph.
func (m *Model) Predict(g *graphs.Graph) int {
	logits := m.logitsOf(g, nil)
	best, bi := logits[0], 0
	for i, v := range logits {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// PredictProbs returns the softmax class distribution.
func (m *Model) PredictProbs(g *graphs.Graph) []float64 {
	return autodiff.Softmax(m.logitsOf(g, nil))
}

// logitsBatchOf runs one fused forward pass over the graphs, copying the
// [len(gs) × classes] logits out of the tape arena.
func (m *Model) logitsBatchOf(gs []*graphs.Graph) []float64 {
	p := m.prepareBatch(gs)
	c := m.getCtx()
	logits := m.forwardBatch(c, p)
	out := append([]float64(nil), logits.Val.Data...)
	m.ctxPool.Put(c)
	return out
}

// PredictBatch classifies the graphs in one forward pass, returning the
// argmax class per graph. Per-graph results are bit-identical to Predict.
func (m *Model) PredictBatch(gs []*graphs.Graph) []int {
	if len(gs) == 0 {
		return nil
	}
	logits := m.logitsBatchOf(gs)
	out := make([]int, len(gs))
	for i := range gs {
		row := logits[i*m.Classes : (i+1)*m.Classes]
		best, bi := row[0], 0
		for j, v := range row {
			if v > best {
				best, bi = v, j
			}
		}
		out[i] = bi
	}
	return out
}

// PredictProbsBatch returns the softmax class distribution per graph from
// one fused forward pass, bit-identical to per-graph PredictProbs.
func (m *Model) PredictProbsBatch(gs []*graphs.Graph) [][]float64 {
	if len(gs) == 0 {
		return nil
	}
	logits := m.logitsBatchOf(gs)
	out := make([][]float64, len(gs))
	for i := range gs {
		out[i] = autodiff.Softmax(logits[i*m.Classes : (i+1)*m.Classes])
	}
	return out
}

// NumParams reports the trainable parameter count.
func (m *Model) NumParams() int { return m.ps.NumParams() }
