package gnn

import (
	"testing"

	"mpidetect/internal/dataset"
	"mpidetect/internal/graphs"
	"mpidetect/internal/irgen"
)

// benchModel builds an untrained default-size model plus 8 resolved
// corpus graphs: prediction cost does not depend on the weights, so
// skipping training keeps the bench setup cheap while the forward pass
// is exactly the serving one.
func benchModel(b *testing.B) (*Model, []*graphs.Graph) {
	b.Helper()
	d := dataset.GenerateCorrBench(99, false)
	var gs []*graphs.Graph
	for _, c := range d.Codes[:8] {
		gs = append(gs, graphs.Build(irgen.MustLower(c.Prog)))
	}
	m := NewModel(Default(), graphs.BuildVocab(gs), 2)
	return m, gs
}

// BenchmarkPredictBatch compares the fused block-diagonal forward pass
// over 8 graphs against 8 independent single-graph passes — the
// worker-drain decision the serving engine makes under load. ns/op is
// per 8-graph round in both modes.
func BenchmarkPredictBatch(b *testing.B) {
	m, gs := benchModel(b)
	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out := m.PredictProbsBatch(gs); len(out) != len(gs) {
				b.Fatal("short batch")
			}
		}
		b.ReportMetric(float64(len(gs))*float64(b.N)/b.Elapsed().Seconds(), "graphs/s")
	})
	b.Run("loop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, g := range gs {
				if p := m.PredictProbs(g); len(p) != 2 {
					b.Fatal("bad probs")
				}
			}
		}
		b.ReportMetric(float64(len(gs))*float64(b.N)/b.Elapsed().Seconds(), "graphs/s")
	})
}
