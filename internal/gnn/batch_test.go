package gnn

import (
	"testing"

	"mpidetect/internal/dataset"
	"mpidetect/internal/graphs"
	"mpidetect/internal/irgen"
)

// TestPredictBatchBitForBit pins the fused block-diagonal forward pass to
// the per-graph pass: class, probabilities and argmax must agree exactly
// for every graph of a heterogeneous batch — including graphs whose
// tokens are out of vocabulary and graphs missing whole edge relations,
// where the batched pass adds zero message rows the single pass skips.
func TestPredictBatchBitForBit(t *testing.T) {
	train, test, vocab := corpusSample(t, 6)
	m := NewModel(tinyCfg(), vocab, 2)
	m.Train(train)

	var gs []*graphs.Graph
	for _, s := range test {
		gs = append(gs, s.G)
	}
	for _, s := range train[:4] {
		gs = append(gs, s.G)
	}
	// An out-of-distribution graph (different generator seed): OOV tokens
	// and possibly different relation coverage.
	d := dataset.GenerateMBI(1)
	gs = append(gs, graphs.Build(irgen.MustLower(d.Codes[0].Prog)))

	classes := m.PredictBatch(gs)
	probs := m.PredictProbsBatch(gs)
	if len(classes) != len(gs) || len(probs) != len(gs) {
		t.Fatalf("batch sizes %d/%d, want %d", len(classes), len(probs), len(gs))
	}
	for i, g := range gs {
		if want := m.Predict(g); classes[i] != want {
			t.Fatalf("graph %d: batch class %d, single %d", i, classes[i], want)
		}
		want := m.PredictProbs(g)
		for j := range want {
			if probs[i][j] != want[j] {
				t.Fatalf("graph %d class %d: batch prob %v, single %v", i, j, probs[i][j], want[j])
			}
		}
	}
	// A singleton batch must also match (degenerate fill).
	one := m.PredictProbsBatch(gs[:1])
	want := m.PredictProbs(gs[0])
	for j := range want {
		if one[0][j] != want[j] {
			t.Fatalf("singleton batch prob %v, single %v", one[0][j], want[j])
		}
	}
}
