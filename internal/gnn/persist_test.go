package gnn

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestGobDecodeRejectsBadHidden(t *testing.T) {
	for _, hidden := range [][]int{nil, {}, {-1}, {8, 0}} {
		st := modelState{
			Cfg:      Config{EmbedDim: 8, Hidden: hidden, Epochs: 1},
			VocabIDs: map[string]int{"tok": 1},
			Classes:  2,
			Params:   map[string][]float64{},
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(st); err != nil {
			t.Fatal(err)
		}
		var m Model
		if err := m.GobDecode(buf.Bytes()); err == nil {
			t.Fatalf("Hidden=%v accepted", hidden)
		}
	}
}
