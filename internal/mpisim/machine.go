package mpisim

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"

	"mpidetect/internal/ir"
	"mpidetect/internal/mpi"
)

// RV is a runtime value: an integer, a float, or a pointer.
type RV struct {
	I int64
	F float64
	P *Ptr // non-nil for pointer values
}

// Ptr is a typed-erased address: an object plus a byte offset.
type Ptr struct {
	Obj *MemObj
	Off int
}

// MemObj is an allocation: a byte array plus a shadow map for stored
// pointers (pointers are not serialisable into bytes).
type MemObj struct {
	Name  string
	Bytes []byte
	Ptrs  map[int]*Ptr
	Owner int // owning rank, -1 for none
}

func newMemObj(name string, size, owner int) *MemObj {
	return &MemObj{Name: name, Bytes: make([]byte, size), Ptrs: map[int]*Ptr{}, Owner: owner}
}

type runErr struct {
	kind string // "crash", "timeout", "exit"
	msg  string
}

func (e *runErr) Error() string { return e.kind + ": " + e.msg }

func crashf(format string, args ...any) error {
	return &runErr{kind: "crash", msg: fmt.Sprintf(format, args...)}
}

// Machine interprets an IR module as one MPI rank.
type Machine struct {
	mod      *ir.Module
	rank     int
	rt       *Runtime
	proc     *proc
	globals  map[string]*MemObj
	steps    int64
	maxSteps int64
	out      *strings.Builder
}

func newMachine(mod *ir.Module, rank int, rt *Runtime, maxSteps int64) *Machine {
	m := &Machine{mod: mod, rank: rank, rt: rt, maxSteps: maxSteps,
		globals: map[string]*MemObj{}, out: &strings.Builder{}}
	for _, g := range mod.Globals {
		obj := newMemObj("@"+g.Name, ir.SizeOf(g.Elem), rank)
		if g.Str != "" {
			copy(obj.Bytes, g.Str)
		} else if g.Init != nil {
			_ = obj.store(0, g.Elem, RV{I: g.Init.Int, F: g.Init.Float})
		}
		m.globals[g.Name] = obj
	}
	return m
}

// run executes main; the error (if any) is a *runErr.
func (m *Machine) run() error {
	main := m.mod.FuncByName("main")
	if main == nil {
		return crashf("no main function")
	}
	var args []RV
	for range main.Params {
		args = append(args, RV{})
	}
	_, err := m.call(main, args, 0)
	return err
}

const maxCallDepth = 128

type frame struct {
	f      *ir.Func
	regs   map[*ir.Instr]RV
	params map[*ir.Param]RV
}

func (m *Machine) call(f *ir.Func, args []RV, depth int) (RV, error) {
	if depth > maxCallDepth {
		return RV{}, crashf("call depth exceeded in @%s", f.Name)
	}
	fr := &frame{f: f, regs: map[*ir.Instr]RV{}, params: map[*ir.Param]RV{}}
	for i, p := range f.Params {
		if i < len(args) {
			fr.params[p] = args[i]
		}
	}
	cur := f.Entry()
	var prev *ir.Block
	for {
		// Phis evaluate simultaneously against the incoming edge.
		phis := cur.Phis()
		if len(phis) > 0 {
			vals := make([]RV, len(phis))
			for i, phi := range phis {
				found := false
				for j, b := range phi.Blocks {
					if b == prev {
						v, err := m.eval(fr, phi.Args[j])
						if err != nil {
							return RV{}, err
						}
						vals[i] = v
						found = true
						break
					}
				}
				if !found {
					return RV{}, crashf("phi in %%%s has no edge from %%%s", cur.Name, blockName(prev))
				}
			}
			for i, phi := range phis {
				fr.regs[phi] = vals[i]
			}
		}
		branched := false
		for _, in := range cur.Instrs {
			if in.Op == ir.OpPhi {
				continue
			}
			m.steps++
			if m.steps > m.maxSteps {
				return RV{}, &runErr{kind: "timeout", msg: fmt.Sprintf("step budget exceeded in @%s", f.Name)}
			}
			// Cooperative cancellation: a rank that never blocks on MPI
			// (a compute loop) must still notice an aborted run; checking
			// every 1024 steps bounds both the check cost and how long a
			// rank can outlive its budget.
			if m.steps&1023 == 0 {
				if se := m.rt.stopNow(); se != nil {
					return RV{}, se
				}
			}
			switch in.Op {
			case ir.OpBr:
				prev, cur = cur, in.Blocks[0]
				branched = true
			case ir.OpCondBr:
				c, err := m.eval(fr, in.Args[0])
				if err != nil {
					return RV{}, err
				}
				if c.I != 0 {
					prev, cur = cur, in.Blocks[0]
				} else {
					prev, cur = cur, in.Blocks[1]
				}
				branched = true
			case ir.OpRet:
				if len(in.Args) == 1 {
					return m.eval(fr, in.Args[0])
				}
				return RV{}, nil
			case ir.OpUnreachable:
				return RV{}, crashf("reached unreachable in @%s", f.Name)
			default:
				v, err := m.execInstr(fr, in, depth)
				if err != nil {
					return RV{}, err
				}
				if in.Name != "" {
					fr.regs[in] = v
				}
				continue
			}
			break // took a branch or returned
		}
		if !branched {
			return RV{}, crashf("fell off block %%%s in @%s", cur.Name, f.Name)
		}
	}
}

func blockName(b *ir.Block) string {
	if b == nil {
		return "<entry>"
	}
	return b.Name
}

func (m *Machine) eval(fr *frame, v ir.Value) (RV, error) {
	switch x := v.(type) {
	case *ir.Const:
		switch {
		case x.IsNull, x.IsUndef:
			return RV{}, nil
		case x.IsFloat:
			return RV{F: x.Float}, nil
		default:
			return RV{I: x.Int}, nil
		}
	case *ir.Param:
		return fr.params[x], nil
	case *ir.Instr:
		return fr.regs[x], nil
	case *ir.Global:
		obj := m.globals[x.Name]
		if obj == nil {
			return RV{}, crashf("undefined global @%s", x.Name)
		}
		return RV{P: &Ptr{Obj: obj}}, nil
	case *ir.Func:
		return RV{}, crashf("function value @%s not supported", x.Name)
	}
	return RV{}, crashf("unknown value %T", v)
}

func (m *Machine) execInstr(fr *frame, in *ir.Instr, depth int) (RV, error) {
	switch {
	case in.Op == ir.OpAlloca:
		n := 1
		if len(in.Args) == 1 {
			c, err := m.eval(fr, in.Args[0])
			if err != nil {
				return RV{}, err
			}
			n = int(c.I)
			if n < 1 {
				n = 1
			}
		}
		obj := newMemObj("%"+in.Name, ir.SizeOf(in.AllocTy)*n, m.rank)
		return RV{P: &Ptr{Obj: obj}}, nil

	case in.Op == ir.OpLoad:
		p, err := m.evalPtr(fr, in.Args[0])
		if err != nil {
			return RV{}, err
		}
		m.rt.checkLocalAccess(m.rank, p, ir.SizeOf(in.Typ), false, in)
		return p.Obj.load(p.Off, in.Typ)

	case in.Op == ir.OpStore:
		v, err := m.eval(fr, in.Args[0])
		if err != nil {
			return RV{}, err
		}
		p, err := m.evalPtr(fr, in.Args[1])
		if err != nil {
			return RV{}, err
		}
		t := in.Args[0].Type()
		m.rt.checkLocalAccess(m.rank, p, ir.SizeOf(t), true, in)
		return RV{}, p.Obj.store(p.Off, t, v)

	case in.Op == ir.OpGEP:
		return m.execGEP(fr, in)

	case in.Op.IsBinary():
		x, err := m.eval(fr, in.Args[0])
		if err != nil {
			return RV{}, err
		}
		y, err := m.eval(fr, in.Args[1])
		if err != nil {
			return RV{}, err
		}
		return execBinary(in, x, y)

	case in.Op == ir.OpICmp:
		x, err := m.eval(fr, in.Args[0])
		if err != nil {
			return RV{}, err
		}
		y, err := m.eval(fr, in.Args[1])
		if err != nil {
			return RV{}, err
		}
		if x.P != nil || y.P != nil {
			eq := ptrEq(x.P, y.P) && x.I == y.I
			switch in.Cmp {
			case ir.PredEQ:
				return boolRV(eq), nil
			case ir.PredNE:
				return boolRV(!eq), nil
			}
			return RV{}, crashf("ordered pointer comparison")
		}
		return boolRV(intCmp(in.Cmp, x.I, y.I)), nil

	case in.Op == ir.OpFCmp:
		x, err := m.eval(fr, in.Args[0])
		if err != nil {
			return RV{}, err
		}
		y, err := m.eval(fr, in.Args[1])
		if err != nil {
			return RV{}, err
		}
		return boolRV(floatCmp(in.Cmp, x.F, y.F)), nil

	case in.Op.IsConv():
		x, err := m.eval(fr, in.Args[0])
		if err != nil {
			return RV{}, err
		}
		return execConv(in, x)

	case in.Op == ir.OpSelect:
		c, err := m.eval(fr, in.Args[0])
		if err != nil {
			return RV{}, err
		}
		if c.I != 0 {
			return m.eval(fr, in.Args[1])
		}
		return m.eval(fr, in.Args[2])

	case in.Op == ir.OpCall:
		return m.execCall(fr, in, depth)
	}
	return RV{}, crashf("cannot execute %s", in.Op)
}

func (m *Machine) evalPtr(fr *frame, v ir.Value) (*Ptr, error) {
	rv, err := m.eval(fr, v)
	if err != nil {
		return nil, err
	}
	if rv.P == nil {
		return nil, crashf("nil pointer dereference")
	}
	return rv.P, nil
}

func (m *Machine) execGEP(fr *frame, in *ir.Instr) (RV, error) {
	base, err := m.eval(fr, in.Args[0])
	if err != nil {
		return RV{}, err
	}
	if base.P == nil {
		return RV{}, crashf("GEP on nil pointer")
	}
	cur := in.Args[0].Type().Elem
	off := base.P.Off
	for i, idxV := range in.Args[1:] {
		iv, err := m.eval(fr, idxV)
		if err != nil {
			return RV{}, err
		}
		idx := int(iv.I)
		if i == 0 {
			off += idx * ir.SizeOf(cur)
			continue
		}
		switch cur.Kind {
		case ir.KArray:
			cur = cur.Elem
			off += idx * ir.SizeOf(cur)
		case ir.KStruct:
			if idx < 0 || idx >= len(cur.Fields) {
				return RV{}, crashf("GEP struct index %d out of range", idx)
			}
			for _, f := range cur.Fields[:idx] {
				off += ir.SizeOf(f)
			}
			cur = cur.Fields[idx]
		default:
			return RV{}, crashf("GEP into non-aggregate %s", cur)
		}
	}
	return RV{P: &Ptr{Obj: base.P.Obj, Off: off}}, nil
}

func (m *Machine) execCall(fr *frame, in *ir.Instr, depth int) (RV, error) {
	args := make([]RV, len(in.Args))
	for i, a := range in.Args {
		v, err := m.eval(fr, a)
		if err != nil {
			return RV{}, err
		}
		args[i] = v
	}
	if op, ok := mpi.FromName(in.Callee); ok {
		return m.rt.dispatch(m, op, args, in)
	}
	switch in.Callee {
	case "printf":
		return m.printf(args)
	case "exit":
		return RV{}, &runErr{kind: "exit", msg: "exit called"}
	case "sleep", "usleep":
		return RV{I: 0}, nil
	}
	callee := m.mod.FuncByName(in.Callee)
	if callee == nil || callee.Decl {
		return RV{}, crashf("call to undefined @%s", in.Callee)
	}
	return m.call(callee, args, depth+1)
}

// printf implements the %d/%ld/%f/%g/%s/%c/%% subset.
func (m *Machine) printf(args []RV) (RV, error) {
	if len(args) == 0 || args[0].P == nil {
		return RV{}, crashf("printf without format")
	}
	format := cString(args[0].P)
	var sb strings.Builder
	ai := 1
	next := func() RV {
		if ai < len(args) {
			v := args[ai]
			ai++
			return v
		}
		return RV{}
	}
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' || i+1 >= len(format) {
			sb.WriteByte(c)
			continue
		}
		i++
		// skip length modifiers
		for format[i] == 'l' || format[i] == 'z' {
			i++
			if i >= len(format) {
				break
			}
		}
		switch format[i] {
		case 'd', 'i', 'u':
			fmt.Fprintf(&sb, "%d", next().I)
		case 'f', 'g', 'e':
			fmt.Fprintf(&sb, "%g", next().F)
		case 's':
			v := next()
			if v.P != nil {
				sb.WriteString(cString(v.P))
			}
		case 'c':
			sb.WriteByte(byte(next().I))
		case 'p':
			fmt.Fprintf(&sb, "0x%x", next().I)
		case '%':
			sb.WriteByte('%')
		default:
			sb.WriteByte(format[i])
		}
	}
	s := sb.String()
	m.out.WriteString(s)
	return RV{I: int64(len(s))}, nil
}

func cString(p *Ptr) string {
	end := p.Off
	for end < len(p.Obj.Bytes) && p.Obj.Bytes[end] != 0 {
		end++
	}
	return string(p.Obj.Bytes[p.Off:end])
}

func boolRV(b bool) RV {
	if b {
		return RV{I: 1}
	}
	return RV{}
}

func ptrEq(a, b *Ptr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.Obj == b.Obj && a.Off == b.Off
}

func intCmp(p ir.Pred, a, b int64) bool {
	switch p {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredSLT:
		return a < b
	case ir.PredSLE:
		return a <= b
	case ir.PredSGT:
		return a > b
	case ir.PredSGE:
		return a >= b
	}
	return false
}

func floatCmp(p ir.Pred, a, b float64) bool {
	switch p {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredSLT:
		return a < b
	case ir.PredSLE:
		return a <= b
	case ir.PredSGT:
		return a > b
	case ir.PredSGE:
		return a >= b
	}
	return false
}

func execBinary(in *ir.Instr, x, y RV) (RV, error) {
	switch in.Op {
	case ir.OpFAdd:
		return RV{F: x.F + y.F}, nil
	case ir.OpFSub:
		return RV{F: x.F - y.F}, nil
	case ir.OpFMul:
		return RV{F: x.F * y.F}, nil
	case ir.OpFDiv:
		return RV{F: x.F / y.F}, nil
	}
	a, b := x.I, y.I
	var r int64
	switch in.Op {
	case ir.OpAdd:
		r = a + b
	case ir.OpSub:
		r = a - b
	case ir.OpMul:
		r = a * b
	case ir.OpSDiv:
		if b == 0 {
			return RV{}, crashf("integer division by zero")
		}
		r = a / b
	case ir.OpSRem:
		if b == 0 {
			return RV{}, crashf("integer remainder by zero")
		}
		r = a % b
	case ir.OpAnd:
		r = a & b
	case ir.OpOr:
		r = a | b
	case ir.OpXor:
		r = a ^ b
	case ir.OpShl:
		r = a << uint(b&63)
	case ir.OpAShr:
		r = a >> uint(b&63)
	default:
		return RV{}, crashf("bad binary op %s", in.Op)
	}
	return RV{I: truncInt(in.Typ, r)}, nil
}

func truncInt(t *ir.Type, v int64) int64 {
	switch t.Kind {
	case ir.KInt1:
		return v & 1
	case ir.KInt8:
		return int64(int8(v))
	case ir.KInt32:
		return int64(int32(v))
	}
	return v
}

func execConv(in *ir.Instr, x RV) (RV, error) {
	switch in.Op {
	case ir.OpTrunc, ir.OpSExt:
		return RV{I: truncInt(in.Typ, x.I)}, nil
	case ir.OpZExt:
		return RV{I: x.I}, nil
	case ir.OpSIToFP:
		return RV{F: float64(x.I)}, nil
	case ir.OpFPToSI:
		return RV{I: truncInt(in.Typ, int64(x.F))}, nil
	case ir.OpBitcast:
		return x, nil
	case ir.OpPtrToInt:
		if x.P == nil {
			return RV{I: 0}, nil
		}
		return RV{I: int64(x.P.Off) + 1}, nil // opaque non-zero token
	case ir.OpIntToPtr:
		return RV{}, crashf("inttoptr not supported")
	}
	return RV{}, crashf("bad conversion %s", in.Op)
}

// load reads a typed value at the byte offset.
func (o *MemObj) load(off int, t *ir.Type) (RV, error) {
	size := ir.SizeOf(t)
	if off < 0 || off+size > len(o.Bytes) {
		return RV{}, crashf("load out of bounds (%s at %d+%d/%d)", t, off, size, len(o.Bytes))
	}
	if t.IsPtr() {
		if p, ok := o.Ptrs[off]; ok {
			return RV{P: p}, nil
		}
		return RV{}, nil
	}
	switch t.Kind {
	case ir.KFloat64:
		bits := binary.LittleEndian.Uint64(o.Bytes[off:])
		return RV{F: math.Float64frombits(bits)}, nil
	case ir.KInt1, ir.KInt8:
		return RV{I: int64(int8(o.Bytes[off]))}, nil
	case ir.KInt32:
		return RV{I: int64(int32(binary.LittleEndian.Uint32(o.Bytes[off:])))}, nil
	case ir.KInt64:
		return RV{I: int64(binary.LittleEndian.Uint64(o.Bytes[off:]))}, nil
	}
	return RV{}, crashf("load of unsupported type %s", t)
}

// store writes a typed value at the byte offset.
func (o *MemObj) store(off int, t *ir.Type, v RV) error {
	size := ir.SizeOf(t)
	if off < 0 || off+size > len(o.Bytes) {
		return crashf("store out of bounds (%s at %d+%d/%d)", t, off, size, len(o.Bytes))
	}
	if t.IsPtr() {
		if v.P != nil {
			o.Ptrs[off] = v.P
		} else {
			delete(o.Ptrs, off)
		}
		return nil
	}
	switch t.Kind {
	case ir.KFloat64:
		binary.LittleEndian.PutUint64(o.Bytes[off:], math.Float64bits(v.F))
	case ir.KInt1, ir.KInt8:
		o.Bytes[off] = byte(v.I)
	case ir.KInt32:
		binary.LittleEndian.PutUint32(o.Bytes[off:], uint32(v.I))
	case ir.KInt64:
		binary.LittleEndian.PutUint64(o.Bytes[off:], uint64(v.I))
	default:
		return crashf("store of unsupported type %s", t)
	}
	return nil
}
