package mpisim

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"

	"mpidetect/internal/ir"
)

// RV is a runtime value: an integer, a float, or a pointer.
type RV struct {
	I int64
	F float64
	P *Ptr // non-nil for pointer values
}

// Ptr is a typed-erased address: an object plus a byte offset.
type Ptr struct {
	Obj *MemObj
	Off int
}

// MemObj is an allocation: a byte array plus a shadow map for stored
// pointers (pointers are not serialisable into bytes). Ptrs is allocated
// lazily on the first typed-pointer store — most objects never hold one.
type MemObj struct {
	Name  string
	Bytes []byte
	Ptrs  map[int]*Ptr
	Owner int // owning rank, -1 for none
}

type runErr struct {
	kind string // "crash", "timeout", "exit"
	msg  string
}

func (e *runErr) Error() string { return e.kind + ": " + e.msg }

func crashf(format string, args ...any) error {
	return &runErr{kind: "crash", msg: fmt.Sprintf(format, args...)}
}

// maxRankOutput caps one rank's printf stream so a simulated output loop
// cannot balloon server memory; the stream is cut at a marker and the
// run's Result reports the truncation.
const maxRankOutput = 64 << 10

// truncationMarker ends a capped output stream.
const truncationMarker = "\n[mpisim: output truncated]\n"

// Machine executes one compiled MPI rank. Its frames are flat []RV
// slices indexed by pre-assigned register slots and pooled per run.
type Machine struct {
	prog     *Program
	rank     int
	rt       *Runtime
	ar       *runState
	proc     *proc
	steps    int64
	maxSteps int64

	globals   []*MemObj
	globalRVs []RV // pre-built pointer values, one per global

	out          []byte
	outTruncated bool

	phiScratch []RV // parallel-copy staging for the widest phi edge
	argScratch []RV // argument staging for non-retaining calls
	fmtBuf     []byte
}

func newMachine(prog *Program, rank int) *Machine {
	return &Machine{prog: prog, rank: rank,
		globals:   make([]*MemObj, len(prog.globals)),
		globalRVs: make([]RV, len(prog.globals))}
}

// reset rebinds the machine to a fresh run: zeroed counters, truncation
// state, and newly initialised globals out of the run's arena.
func (m *Machine) reset(rt *Runtime, maxSteps int64) {
	m.rt, m.ar = rt, rt.ar
	m.steps, m.maxSteps = 0, maxSteps
	m.out = m.out[:0]
	m.outTruncated = false
	for i := range m.prog.globals {
		g := &m.prog.globals[i]
		obj := m.ar.newMemObj(g.name, g.size, m.rank)
		if g.str != "" {
			copy(obj.Bytes, g.str)
		} else if g.init != nil {
			_ = obj.store(0, g.elem, RV{I: g.init.Int, F: g.init.Float})
		}
		m.globals[i] = obj
		m.globalRVs[i] = RV{P: m.ar.newPtr(obj, 0)}
	}
}

// run executes main; the error (if any) is a *runErr.
func (m *Machine) run() error {
	main := m.prog.main
	if main == nil {
		return crashf("no main function")
	}
	// main's parameters read as zero; the frame is already zeroed.
	_, err := m.call(main, nil, 0)
	return err
}

const maxCallDepth = 128

func (m *Machine) call(cf *cfunc, args []RV, depth int) (RV, error) {
	if depth > maxCallDepth {
		return RV{}, crashf("call depth exceeded in @%s", cf.name)
	}
	fr := m.ar.getFrame(cf.nslots)
	n := len(args)
	if n > cf.nparams {
		n = cf.nparams
	}
	copy(fr[:n], args[:n])
	rv, err := m.exec(cf, fr, depth)
	m.ar.putFrame(fr)
	return rv, err
}

// evalOp resolves a pre-compiled operand against the frame.
func (m *Machine) evalOp(fr []RV, op *operand) (RV, error) {
	switch op.kind {
	case oSlot:
		return fr[op.slot], nil
	case oConst:
		return op.rv, nil
	case oGlobal:
		return m.globalRVs[op.slot], nil
	}
	return RV{}, &runErr{kind: "crash", msg: m.prog.errs[op.slot]}
}

// applyMoves performs a phi edge's parallel copy: all sources evaluate
// against the pre-move frame, then all destinations are written.
func (m *Machine) applyMoves(fr []RV, moves []phiMove) error {
	if cap(m.phiScratch) < len(moves) {
		m.phiScratch = make([]RV, len(moves))
	}
	sc := m.phiScratch[:len(moves)]
	for i := range moves {
		mv := &moves[i]
		if mv.bad >= 0 {
			return &runErr{kind: "crash", msg: m.prog.errs[mv.bad]}
		}
		v, err := m.evalOp(fr, &mv.src)
		if err != nil {
			return err
		}
		sc[i] = v
	}
	for i := range moves {
		fr[moves[i].dst] = sc[i]
	}
	return nil
}

// exec runs a compiled function body to completion.
func (m *Machine) exec(cf *cfunc, fr []RV, depth int) (RV, error) {
	if cf.entry == nil {
		// Reproduce the pre-compilation engine's nil-entry panic (a
		// defined function without blocks, or a declaration-only main).
		var b *ir.Block
		_ = b.Phis()
	}
	blk := cf.entry
	moves := cf.entryMoves
	for {
		if len(moves) > 0 {
			if err := m.applyMoves(fr, moves); err != nil {
				return RV{}, err
			}
		}
		code := blk.code
		branched := false
	body:
		for i := range code {
			in := &code[i]
			m.steps++
			if m.steps > m.maxSteps {
				return RV{}, &runErr{kind: "timeout",
					msg: fmt.Sprintf("step budget exceeded in @%s", cf.name)}
			}
			// Cooperative cancellation: a rank that never blocks on MPI
			// (a compute loop) must still notice an aborted run; checking
			// every 1024 steps bounds both the check cost and how long a
			// rank can outlive its budget.
			if m.steps&1023 == 0 {
				if se := m.rt.stopNow(); se != nil {
					return RV{}, se
				}
			}
			switch in.op {
			case ir.OpBr:
				moves, blk = in.aux.moves0, in.aux.tgt0
				branched = true
				break body
			case ir.OpCondBr:
				c, err := m.evalOp(fr, &in.a)
				if err != nil {
					return RV{}, err
				}
				aux := in.aux
				if c.I != 0 {
					moves, blk = aux.moves0, aux.tgt0
				} else {
					moves, blk = aux.moves1, aux.tgt1
				}
				branched = true
				break body
			case ir.OpRet:
				if in.flag {
					return m.evalOp(fr, &in.a)
				}
				return RV{}, nil
			case ir.OpUnreachable:
				return RV{}, crashf("reached unreachable in @%s", cf.name)
			default:
				v, err := m.execInstr(fr, in, depth)
				if err != nil {
					return RV{}, err
				}
				if in.dst >= 0 {
					fr[in.dst] = v
				}
			}
		}
		if !branched {
			return RV{}, crashf("fell off block %%%s in @%s", blk.name, cf.name)
		}
	}
}

func (m *Machine) execInstr(fr []RV, in *cinstr, depth int) (RV, error) {
	switch {
	case in.op == ir.OpAlloca:
		n := 1
		if in.flag {
			c, err := m.evalOp(fr, &in.a)
			if err != nil {
				return RV{}, err
			}
			n = int(c.I)
			if n < 1 {
				n = 1
			}
		}
		size := in.size
		if in.sizeDyn {
			size = ir.SizeOf(in.in.AllocTy)
		}
		obj := m.ar.newMemObj(in.aux.name, size*n, m.rank)
		return RV{P: m.ar.newPtr(obj, 0)}, nil

	case in.op == ir.OpLoad:
		pv, err := m.evalOp(fr, &in.a)
		if err != nil {
			return RV{}, err
		}
		if pv.P == nil {
			return RV{}, crashf("nil pointer dereference")
		}
		size := in.size
		if in.sizeDyn {
			size = ir.SizeOf(in.in.Typ)
		}
		m.rt.checkLocalAccess(m.rank, pv.P, size, false, in.in)
		return pv.P.Obj.load(pv.P.Off, in.typ)

	case in.op == ir.OpStore:
		v, err := m.evalOp(fr, &in.a)
		if err != nil {
			return RV{}, err
		}
		pv, err := m.evalOp(fr, &in.b)
		if err != nil {
			return RV{}, err
		}
		if pv.P == nil {
			return RV{}, crashf("nil pointer dereference")
		}
		size := in.size
		if in.sizeDyn {
			size = ir.SizeOf(in.in.Args[0].Type())
		}
		m.rt.checkLocalAccess(m.rank, pv.P, size, true, in.in)
		return RV{}, pv.P.Obj.store(pv.P.Off, in.typ, v)

	case in.op == ir.OpGEP:
		return m.execGEP(fr, in)

	case in.op.IsBinary():
		x, err := m.evalOp(fr, &in.a)
		if err != nil {
			return RV{}, err
		}
		y, err := m.evalOp(fr, &in.b)
		if err != nil {
			return RV{}, err
		}
		return execBinary(in.op, in.typ, x, y)

	case in.op == ir.OpICmp:
		x, err := m.evalOp(fr, &in.a)
		if err != nil {
			return RV{}, err
		}
		y, err := m.evalOp(fr, &in.b)
		if err != nil {
			return RV{}, err
		}
		if x.P != nil || y.P != nil {
			eq := ptrEq(x.P, y.P) && x.I == y.I
			switch in.cmp {
			case ir.PredEQ:
				return boolRV(eq), nil
			case ir.PredNE:
				return boolRV(!eq), nil
			}
			return RV{}, crashf("ordered pointer comparison")
		}
		return boolRV(intCmp(in.cmp, x.I, y.I)), nil

	case in.op == ir.OpFCmp:
		x, err := m.evalOp(fr, &in.a)
		if err != nil {
			return RV{}, err
		}
		y, err := m.evalOp(fr, &in.b)
		if err != nil {
			return RV{}, err
		}
		return boolRV(floatCmp(in.cmp, x.F, y.F)), nil

	case in.op.IsConv():
		x, err := m.evalOp(fr, &in.a)
		if err != nil {
			return RV{}, err
		}
		return execConv(in.op, in.typ, x)

	case in.op == ir.OpSelect:
		c, err := m.evalOp(fr, &in.a)
		if err != nil {
			return RV{}, err
		}
		if c.I != 0 {
			return m.evalOp(fr, &in.b)
		}
		return m.evalOp(fr, &in.aux.c)

	case in.op == ir.OpCall:
		return m.execCall(fr, in, depth)
	}
	return RV{}, crashf("cannot execute %s", in.op)
}

func (m *Machine) execGEP(fr []RV, in *cinstr) (RV, error) {
	if in.gepSlow {
		return m.execGEPSlow(fr, in)
	}
	base, err := m.evalOp(fr, &in.a)
	if err != nil {
		return RV{}, err
	}
	if base.P == nil {
		return RV{}, crashf("GEP on nil pointer")
	}
	off := base.P.Off
	gep := in.aux.gep
	for i := range gep {
		st := &gep[i]
		switch st.kind {
		case gConst:
			off += st.add
		case gDyn:
			iv, err := m.evalOp(fr, &st.idx)
			if err != nil {
				return RV{}, err
			}
			off += int(iv.I) * st.scale
		default: // gErr: the interpreter evaluated the index first
			if st.idx.kind == oErr {
				return RV{}, &runErr{kind: "crash", msg: m.prog.errs[st.idx.slot]}
			}
			return RV{}, &runErr{kind: "crash", msg: m.prog.errs[st.add]}
		}
	}
	return RV{P: m.ar.newPtr(base.P.Obj, off)}, nil
}

// execGEPSlow is the generic type-walking path, kept for the shapes the
// compiler cannot pre-lower (dynamic struct indices, malformed pointer
// types). It mirrors the pre-compilation interpreter instruction by
// instruction — including its panics on nil types.
func (m *Machine) execGEPSlow(fr []RV, in *cinstr) (RV, error) {
	orig := in.in
	extra := in.aux.extra
	base, err := m.evalOp(fr, &extra[0])
	if err != nil {
		return RV{}, err
	}
	if base.P == nil {
		return RV{}, crashf("GEP on nil pointer")
	}
	cur := orig.Args[0].Type().Elem
	off := base.P.Off
	for i := 1; i < len(extra); i++ {
		iv, err := m.evalOp(fr, &extra[i])
		if err != nil {
			return RV{}, err
		}
		idx := int(iv.I)
		if i == 1 {
			off += idx * ir.SizeOf(cur)
			continue
		}
		switch cur.Kind {
		case ir.KArray:
			cur = cur.Elem
			off += idx * ir.SizeOf(cur)
		case ir.KStruct:
			if idx < 0 || idx >= len(cur.Fields) {
				return RV{}, crashf("GEP struct index %d out of range", idx)
			}
			for _, f := range cur.Fields[:idx] {
				off += ir.SizeOf(f)
			}
			cur = cur.Fields[idx]
		default:
			return RV{}, crashf("GEP into non-aggregate %s", cur)
		}
	}
	return RV{P: m.ar.newPtr(base.P.Obj, off)}, nil
}

func (m *Machine) execCall(fr []RV, in *cinstr, depth int) (RV, error) {
	extra := in.aux.extra
	nargs := len(extra)
	var args []RV
	if in.ck == ckMPI {
		// MPI argument vectors may be retained (persistent requests,
		// collective slots) until the run ends: bump-allocate them.
		args = m.ar.allocRVs(nargs)
	} else {
		if cap(m.argScratch) < nargs {
			m.argScratch = make([]RV, nargs)
		}
		args = m.argScratch[:nargs]
	}
	for i := range extra {
		v, err := m.evalOp(fr, &extra[i])
		if err != nil {
			return RV{}, err
		}
		args[i] = v
	}
	switch in.ck {
	case ckMPI:
		return m.rt.dispatch(m, in.aux.mpiOp, args, in.in)
	case ckPrintf:
		return m.printf(args)
	case ckExit:
		return RV{}, &runErr{kind: "exit", msg: "exit called"}
	case ckSleep:
		return RV{I: 0}, nil
	case ckUndef:
		return RV{}, crashf("call to undefined @%s", in.in.Callee)
	}
	return m.call(in.aux.callee, args, depth+1)
}

// printf implements the %d/%ld/%f/%g/%s/%c/%% subset, formatting into a
// reusable buffer and appending to the capped per-rank output stream.
// The returned byte count is always the full formatted length, so a
// program branching on printf's result behaves identically whether or
// not the stream was truncated.
func (m *Machine) printf(args []RV) (RV, error) {
	if len(args) == 0 || args[0].P == nil {
		return RV{}, crashf("printf without format")
	}
	format := cString(args[0].P)
	sb := m.fmtBuf[:0]
	ai := 1
	next := func() RV {
		if ai < len(args) {
			v := args[ai]
			ai++
			return v
		}
		return RV{}
	}
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' || i+1 >= len(format) {
			sb = append(sb, c)
			continue
		}
		i++
		// skip length modifiers
		for format[i] == 'l' || format[i] == 'z' {
			i++
			if i >= len(format) {
				break
			}
		}
		switch format[i] {
		case 'd', 'i', 'u':
			sb = strconv.AppendInt(sb, next().I, 10)
		case 'f', 'g', 'e':
			sb = strconv.AppendFloat(sb, next().F, 'g', -1, 64)
		case 's':
			v := next()
			if v.P != nil {
				sb = append(sb, cString(v.P)...)
			}
		case 'c':
			sb = append(sb, byte(next().I))
		case 'p':
			sb = append(sb, "0x"...)
			sb = strconv.AppendInt(sb, next().I, 16)
		case '%':
			sb = append(sb, '%')
		default:
			sb = append(sb, format[i])
		}
	}
	m.fmtBuf = sb[:0]
	m.writeOut(sb)
	return RV{I: int64(len(sb))}, nil
}

// writeOut appends to the rank's output stream, cutting it at the cap.
func (m *Machine) writeOut(s []byte) {
	if m.outTruncated {
		return
	}
	if len(m.out)+len(s) > maxRankOutput {
		if room := maxRankOutput - len(m.out); room > 0 {
			m.out = append(m.out, s[:room]...)
		}
		m.out = append(m.out, truncationMarker...)
		m.outTruncated = true
		return
	}
	m.out = append(m.out, s...)
}

// cString reads the NUL-terminated bytes at p without copying.
func cString(p *Ptr) []byte {
	end := p.Off
	for end < len(p.Obj.Bytes) && p.Obj.Bytes[end] != 0 {
		end++
	}
	return p.Obj.Bytes[p.Off:end]
}

func boolRV(b bool) RV {
	if b {
		return RV{I: 1}
	}
	return RV{}
}

func ptrEq(a, b *Ptr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.Obj == b.Obj && a.Off == b.Off
}

func intCmp(p ir.Pred, a, b int64) bool {
	switch p {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredSLT:
		return a < b
	case ir.PredSLE:
		return a <= b
	case ir.PredSGT:
		return a > b
	case ir.PredSGE:
		return a >= b
	}
	return false
}

func floatCmp(p ir.Pred, a, b float64) bool {
	switch p {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredSLT:
		return a < b
	case ir.PredSLE:
		return a <= b
	case ir.PredSGT:
		return a > b
	case ir.PredSGE:
		return a >= b
	}
	return false
}

func execBinary(op ir.Opcode, typ *ir.Type, x, y RV) (RV, error) {
	switch op {
	case ir.OpFAdd:
		return RV{F: x.F + y.F}, nil
	case ir.OpFSub:
		return RV{F: x.F - y.F}, nil
	case ir.OpFMul:
		return RV{F: x.F * y.F}, nil
	case ir.OpFDiv:
		return RV{F: x.F / y.F}, nil
	}
	a, b := x.I, y.I
	var r int64
	switch op {
	case ir.OpAdd:
		r = a + b
	case ir.OpSub:
		r = a - b
	case ir.OpMul:
		r = a * b
	case ir.OpSDiv:
		if b == 0 {
			return RV{}, crashf("integer division by zero")
		}
		r = a / b
	case ir.OpSRem:
		if b == 0 {
			return RV{}, crashf("integer remainder by zero")
		}
		r = a % b
	case ir.OpAnd:
		r = a & b
	case ir.OpOr:
		r = a | b
	case ir.OpXor:
		r = a ^ b
	case ir.OpShl:
		r = a << uint(b&63)
	case ir.OpAShr:
		r = a >> uint(b&63)
	default:
		return RV{}, crashf("bad binary op %s", op)
	}
	return RV{I: truncInt(typ, r)}, nil
}

func truncInt(t *ir.Type, v int64) int64 {
	switch t.Kind {
	case ir.KInt1:
		return v & 1
	case ir.KInt8:
		return int64(int8(v))
	case ir.KInt32:
		return int64(int32(v))
	}
	return v
}

func execConv(op ir.Opcode, typ *ir.Type, x RV) (RV, error) {
	switch op {
	case ir.OpTrunc, ir.OpSExt:
		return RV{I: truncInt(typ, x.I)}, nil
	case ir.OpZExt:
		return RV{I: x.I}, nil
	case ir.OpSIToFP:
		return RV{F: float64(x.I)}, nil
	case ir.OpFPToSI:
		return RV{I: truncInt(typ, int64(x.F))}, nil
	case ir.OpBitcast:
		return x, nil
	case ir.OpPtrToInt:
		if x.P == nil {
			return RV{I: 0}, nil
		}
		return RV{I: int64(x.P.Off) + 1}, nil // opaque non-zero token
	case ir.OpIntToPtr:
		return RV{}, crashf("inttoptr not supported")
	}
	return RV{}, crashf("bad conversion %s", op)
}

// load reads a typed value at the byte offset.
func (o *MemObj) load(off int, t *ir.Type) (RV, error) {
	size := ir.SizeOf(t)
	if off < 0 || off+size > len(o.Bytes) {
		return RV{}, crashf("load out of bounds (%s at %d+%d/%d)", t, off, size, len(o.Bytes))
	}
	if t.IsPtr() {
		if p, ok := o.Ptrs[off]; ok {
			return RV{P: p}, nil
		}
		return RV{}, nil
	}
	switch t.Kind {
	case ir.KFloat64:
		bits := binary.LittleEndian.Uint64(o.Bytes[off:])
		return RV{F: math.Float64frombits(bits)}, nil
	case ir.KInt1, ir.KInt8:
		return RV{I: int64(int8(o.Bytes[off]))}, nil
	case ir.KInt32:
		return RV{I: int64(int32(binary.LittleEndian.Uint32(o.Bytes[off:])))}, nil
	case ir.KInt64:
		return RV{I: int64(binary.LittleEndian.Uint64(o.Bytes[off:]))}, nil
	}
	return RV{}, crashf("load of unsupported type %s", t)
}

// store writes a typed value at the byte offset.
func (o *MemObj) store(off int, t *ir.Type, v RV) error {
	size := ir.SizeOf(t)
	if off < 0 || off+size > len(o.Bytes) {
		return crashf("store out of bounds (%s at %d+%d/%d)", t, off, size, len(o.Bytes))
	}
	if t.IsPtr() {
		if v.P != nil {
			if o.Ptrs == nil {
				o.Ptrs = make(map[int]*Ptr)
			}
			o.Ptrs[off] = v.P
		} else if o.Ptrs != nil {
			delete(o.Ptrs, off)
		}
		return nil
	}
	switch t.Kind {
	case ir.KFloat64:
		binary.LittleEndian.PutUint64(o.Bytes[off:], math.Float64bits(v.F))
	case ir.KInt1, ir.KInt8:
		o.Bytes[off] = byte(v.I)
	case ir.KInt32:
		binary.LittleEndian.PutUint32(o.Bytes[off:], uint32(v.I))
	case ir.KInt64:
		binary.LittleEndian.PutUint64(o.Bytes[off:], uint64(v.I))
	default:
		return crashf("store of unsupported type %s", t)
	}
	return nil
}
