package mpisim

import (
	"strings"
	"testing"

	ast "mpidetect/internal/ast"
	"mpidetect/internal/irgen"
	"mpidetect/internal/passes"
)

// runProg lowers and simulates a program.
func runProg(t *testing.T, p *ast.Program, ranks int) *Result {
	t.Helper()
	mod, err := irgen.Lower(p)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	return Run(mod, Config{Ranks: ranks})
}

func world() ast.Expr { return ast.Id("MPI_COMM_WORLD") }

func TestCorrectPingPong(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("buf", 8, ast.Int),
		ast.IfElse(ast.Eq(ast.Id("rank"), ast.I(0)),
			[]ast.Stmt{
				ast.Assign(ast.Idx(ast.Id("buf"), ast.I(0)), ast.I(42)),
				ast.CallS("MPI_Send", ast.Id("buf"), ast.I(8), ast.Id("MPI_INT"), ast.I(1), ast.I(7), world()),
			},
			[]ast.Stmt{
				ast.CallS("MPI_Recv", ast.Id("buf"), ast.I(8), ast.Id("MPI_INT"), ast.I(0), ast.I(7), world(), ast.Id("MPI_STATUS_IGNORE")),
				ast.CallS("printf", ast.S("got %d\n"), ast.Idx(ast.Id("buf"), ast.I(0))),
			}),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("pingpong", stmts...), 2)
	if res.Erroneous() {
		t.Fatalf("correct program flagged: %+v deadlock=%v timeout=%v crash=%v %s",
			res.Violations, res.Deadlock, res.Timeout, res.Crashed, res.CrashMsg)
	}
	if !strings.Contains(res.Output, "got 42") {
		t.Errorf("output = %q, want to contain 'got 42'", res.Output)
	}
}

func TestDeadlockBothRecv(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("buf", 4, ast.Int),
		// Both ranks receive first: classic deadlock.
		ast.CallS("MPI_Recv", ast.Id("buf"), ast.I(4), ast.Id("MPI_INT"),
			ast.Sub(ast.I(1), ast.Id("rank")), ast.I(3), world(), ast.Id("MPI_STATUS_IGNORE")),
		ast.CallS("MPI_Send", ast.Id("buf"), ast.I(4), ast.Id("MPI_INT"),
			ast.Sub(ast.I(1), ast.Id("rank")), ast.I(3), world()),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("deadlock", stmts...), 2)
	if !res.Deadlock {
		t.Fatalf("deadlock not detected: %+v", res.Violations)
	}
}

func TestDeadlockLargeSends(t *testing.T) {
	// Two ranks send large (rendezvous) messages to each other first.
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("buf", 64, ast.Int), // 256 bytes > eager limit
		ast.CallS("MPI_Send", ast.Id("buf"), ast.I(64), ast.Id("MPI_INT"), ast.Sub(ast.I(1), ast.Id("rank")), ast.I(1), world()),
		ast.CallS("MPI_Recv", ast.Id("buf"), ast.I(64), ast.Id("MPI_INT"), ast.Sub(ast.I(1), ast.Id("rank")), ast.I(1), world(), ast.Id("MPI_STATUS_IGNORE")),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("sendsend", stmts...), 2)
	if !res.Deadlock {
		t.Fatalf("rendezvous send-send deadlock not detected: %+v", res.Violations)
	}
}

func TestEagerSendsNoDeadlock(t *testing.T) {
	// Small messages fit the eager buffer: same pattern completes.
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("buf", 4, ast.Int),
		ast.CallS("MPI_Send", ast.Id("buf"), ast.I(4), ast.Id("MPI_INT"), ast.Sub(ast.I(1), ast.Id("rank")), ast.I(1), world()),
		ast.CallS("MPI_Recv", ast.Id("buf"), ast.I(4), ast.Id("MPI_INT"), ast.Sub(ast.I(1), ast.Id("rank")), ast.I(1), world(), ast.Id("MPI_STATUS_IGNORE")),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("eager", stmts...), 2)
	if res.Deadlock {
		t.Fatal("eager sends deadlocked")
	}
	if res.Erroneous() {
		t.Fatalf("unexpected violations: %+v", res.Violations)
	}
}

func TestInvalidNegativeCount(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("buf", 4, ast.Int),
		ast.If(ast.Eq(ast.Id("rank"), ast.I(0)),
			ast.CallS("MPI_Send", ast.Id("buf"), ast.I(-1), ast.Id("MPI_INT"), ast.I(1), ast.I(0), world())),
		ast.If(ast.Eq(ast.Id("rank"), ast.I(1)),
			ast.CallS("MPI_Recv", ast.Id("buf"), ast.I(4), ast.Id("MPI_INT"), ast.I(0), ast.I(0), world(), ast.Id("MPI_STATUS_IGNORE"))),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("negcount", stmts...), 2)
	if !res.Has(VInvalidParam) {
		t.Fatalf("negative count not flagged: %+v", res.Violations)
	}
}

func TestTypeMismatch(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("buf", 8, ast.Int),
		ast.IfElse(ast.Eq(ast.Id("rank"), ast.I(0)),
			[]ast.Stmt{ast.CallS("MPI_Send", ast.Id("buf"), ast.I(4), ast.Id("MPI_INT"), ast.I(1), ast.I(0), world())},
			[]ast.Stmt{ast.CallS("MPI_Recv", ast.Id("buf"), ast.I(4), ast.Id("MPI_DOUBLE"), ast.I(0), ast.I(0), world(), ast.Id("MPI_STATUS_IGNORE"))}),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("typemismatch", stmts...), 2)
	if !res.Has(VTypeMismatch) {
		t.Fatalf("type mismatch not flagged: %+v", res.Violations)
	}
}

func TestTruncation(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("big", 8, ast.Int),
		ast.DeclArr("small", 8, ast.Int),
		ast.IfElse(ast.Eq(ast.Id("rank"), ast.I(0)),
			[]ast.Stmt{ast.CallS("MPI_Send", ast.Id("big"), ast.I(8), ast.Id("MPI_INT"), ast.I(1), ast.I(0), world())},
			[]ast.Stmt{ast.CallS("MPI_Recv", ast.Id("small"), ast.I(2), ast.Id("MPI_INT"), ast.I(0), ast.I(0), world(), ast.Id("MPI_STATUS_IGNORE"))}),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("trunc", stmts...), 2)
	if !res.Has(VTruncation) {
		t.Fatalf("truncation not flagged: %+v", res.Violations)
	}
}

func TestMissingWaitLeak(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("buf", 4, ast.Int),
		ast.Decl("req", ast.Request, nil),
		ast.IfElse(ast.Eq(ast.Id("rank"), ast.I(0)),
			[]ast.Stmt{
				ast.CallS("MPI_Isend", ast.Id("buf"), ast.I(4), ast.Id("MPI_INT"), ast.I(1), ast.I(0), world(), ast.Addr(ast.Id("req"))),
				// no MPI_Wait
			},
			[]ast.Stmt{
				ast.CallS("MPI_Recv", ast.Id("buf"), ast.I(4), ast.Id("MPI_INT"), ast.I(0), ast.I(0), world(), ast.Id("MPI_STATUS_IGNORE")),
			}),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("leak", stmts...), 2)
	if !res.Has(VResourceLeak) {
		t.Fatalf("missing wait not flagged as leak: %+v", res.Violations)
	}
}

func TestIsendWaitClean(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("buf", 4, ast.Int),
		ast.Decl("req", ast.Request, nil),
		ast.IfElse(ast.Eq(ast.Id("rank"), ast.I(0)),
			[]ast.Stmt{
				ast.CallS("MPI_Isend", ast.Id("buf"), ast.I(4), ast.Id("MPI_INT"), ast.I(1), ast.I(0), world(), ast.Addr(ast.Id("req"))),
				ast.CallS("MPI_Wait", ast.Addr(ast.Id("req")), ast.Id("MPI_STATUS_IGNORE")),
			},
			[]ast.Stmt{
				ast.CallS("MPI_Recv", ast.Id("buf"), ast.I(4), ast.Id("MPI_INT"), ast.I(0), ast.I(0), world(), ast.Id("MPI_STATUS_IGNORE")),
			}),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("isendwait", stmts...), 2)
	if res.Erroneous() {
		t.Fatalf("clean isend/wait flagged: %+v", res.Violations)
	}
}

func TestLocalConcurrency(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("buf", 4, ast.Int),
		ast.Decl("req", ast.Request, nil),
		ast.IfElse(ast.Eq(ast.Id("rank"), ast.I(0)),
			[]ast.Stmt{
				ast.CallS("MPI_Irecv", ast.Id("buf"), ast.I(4), ast.Id("MPI_INT"), ast.I(1), ast.I(0), world(), ast.Addr(ast.Id("req"))),
				ast.Assign(ast.Idx(ast.Id("buf"), ast.I(0)), ast.I(5)), // writes pending recv buffer
				ast.CallS("MPI_Wait", ast.Addr(ast.Id("req")), ast.Id("MPI_STATUS_IGNORE")),
			},
			[]ast.Stmt{
				ast.CallS("MPI_Send", ast.Id("buf"), ast.I(4), ast.Id("MPI_INT"), ast.I(0), ast.I(0), world()),
			}),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("localconc", stmts...), 2)
	if !res.Has(VLocalConc) {
		t.Fatalf("local concurrency not flagged: %+v", res.Violations)
	}
}

func TestBarrierMismatchDeadlock(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.If(ast.Eq(ast.Id("rank"), ast.I(0)), ast.CallS("MPI_Barrier", world())),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("missingbarrier", stmts...), 2)
	if !res.Deadlock {
		t.Fatalf("missing barrier participant not detected: %+v", res.Violations)
	}
}

func TestCollectiveRootMismatch(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("buf", 4, ast.Int),
		// Root depends on rank: parameter matching error.
		ast.CallS("MPI_Bcast", ast.Id("buf"), ast.I(4), ast.Id("MPI_INT"), ast.Id("rank"), world()),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("rootmismatch", stmts...), 2)
	if !res.Has(VRootMismatch) {
		t.Fatalf("root mismatch not flagged: %+v", res.Violations)
	}
}

func TestAllreduceComputes(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("val", 1, ast.Int),
		ast.DeclArr("sum", 1, ast.Int),
		ast.Assign(ast.Idx(ast.Id("val"), ast.I(0)), ast.Add(ast.Id("rank"), ast.I(1))),
		ast.CallS("MPI_Allreduce", ast.Id("val"), ast.Id("sum"), ast.I(1), ast.Id("MPI_INT"), ast.Id("MPI_SUM"), world()),
		ast.If(ast.Eq(ast.Id("rank"), ast.I(0)), ast.CallS("printf", ast.S("sum=%d\n"), ast.Idx(ast.Id("sum"), ast.I(0)))),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("allreduce", stmts...), 4)
	if res.Erroneous() {
		t.Fatalf("allreduce flagged: %+v", res.Violations)
	}
	if !strings.Contains(res.Output, "sum=10") {
		t.Errorf("output = %q, want sum=10", res.Output)
	}
}

func TestBcastDelivers(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("buf", 1, ast.Int),
		ast.If(ast.Eq(ast.Id("rank"), ast.I(0)), ast.Assign(ast.Idx(ast.Id("buf"), ast.I(0)), ast.I(99))),
		ast.CallS("MPI_Bcast", ast.Id("buf"), ast.I(1), ast.Id("MPI_INT"), ast.I(0), world()),
		ast.If(ast.Eq(ast.Id("rank"), ast.I(2)), ast.CallS("printf", ast.S("bcast=%d\n"), ast.Idx(ast.Id("buf"), ast.I(0)))),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("bcast", stmts...), 3)
	if res.Erroneous() {
		t.Fatalf("bcast flagged: %+v", res.Violations)
	}
	if !strings.Contains(res.Output, "bcast=99") {
		t.Errorf("output = %q, want bcast=99", res.Output)
	}
}

func TestMessageRace(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("buf", 4, ast.Int),
		ast.IfElse(ast.Eq(ast.Id("rank"), ast.I(0)),
			[]ast.Stmt{
				ast.CallS("MPI_Recv", ast.Id("buf"), ast.I(4), ast.Id("MPI_INT"), ast.Id("MPI_ANY_SOURCE"), ast.I(5), world(), ast.Id("MPI_STATUS_IGNORE")),
				ast.CallS("MPI_Recv", ast.Id("buf"), ast.I(4), ast.Id("MPI_INT"), ast.Id("MPI_ANY_SOURCE"), ast.I(5), world(), ast.Id("MPI_STATUS_IGNORE")),
			},
			[]ast.Stmt{
				ast.CallS("MPI_Send", ast.Id("buf"), ast.I(4), ast.Id("MPI_INT"), ast.I(0), ast.I(5), world()),
			}),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("msgrace", stmts...), 3)
	if !res.Has(VMessageRace) {
		t.Fatalf("message race not flagged: %+v", res.Violations)
	}
}

func TestRMAFencePutGet(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("win_mem", 4, ast.Int),
		ast.DeclArr("local", 4, ast.Int),
		ast.Decl("win", ast.Win, nil),
		ast.CallS("MPI_Win_create", ast.Id("win_mem"), ast.I(16), ast.I(4), ast.Id("MPI_INFO_NULL"), world(), ast.Addr(ast.Id("win"))),
		ast.CallS("MPI_Win_fence", ast.I(0), ast.Id("win")),
		ast.If(ast.Eq(ast.Id("rank"), ast.I(0)),
			ast.Assign(ast.Idx(ast.Id("local"), ast.I(0)), ast.I(7)),
			ast.CallS("MPI_Put", ast.Id("local"), ast.I(1), ast.Id("MPI_INT"), ast.I(1), ast.I(0), ast.I(1), ast.Id("MPI_INT"), ast.Id("win"))),
		ast.CallS("MPI_Win_fence", ast.I(0), ast.Id("win")),
		ast.If(ast.Eq(ast.Id("rank"), ast.I(1)), ast.CallS("printf", ast.S("win=%d\n"), ast.Idx(ast.Id("win_mem"), ast.I(0)))),
		ast.CallS("MPI_Win_free", ast.Addr(ast.Id("win"))),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("rma", stmts...), 2)
	if res.Erroneous() {
		t.Fatalf("correct RMA flagged: %+v deadlock=%v crash=%v %s", res.Violations, res.Deadlock, res.Crashed, res.CrashMsg)
	}
	if !strings.Contains(res.Output, "win=7") {
		t.Errorf("output = %q, want win=7", res.Output)
	}
}

func TestRMAEpochViolation(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("win_mem", 4, ast.Int),
		ast.DeclArr("local", 4, ast.Int),
		ast.Decl("win", ast.Win, nil),
		ast.CallS("MPI_Win_create", ast.Id("win_mem"), ast.I(16), ast.I(4), ast.Id("MPI_INFO_NULL"), world(), ast.Addr(ast.Id("win"))),
		// Put without opening a fence epoch.
		ast.If(ast.Eq(ast.Id("rank"), ast.I(0)),
			ast.CallS("MPI_Put", ast.Id("local"), ast.I(1), ast.Id("MPI_INT"), ast.I(1), ast.I(0), ast.I(1), ast.Id("MPI_INT"), ast.Id("win"))),
		ast.CallS("MPI_Win_free", ast.Addr(ast.Id("win"))),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("epoch", stmts...), 2)
	if !res.Has(VEpochLife) {
		t.Fatalf("epoch violation not flagged: %+v", res.Violations)
	}
}

func TestGlobalConcurrencyRMA(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("win_mem", 4, ast.Int),
		ast.DeclArr("local", 4, ast.Int),
		ast.Decl("win", ast.Win, nil),
		ast.CallS("MPI_Win_create", ast.Id("win_mem"), ast.I(16), ast.I(4), ast.Id("MPI_INFO_NULL"), world(), ast.Addr(ast.Id("win"))),
		ast.CallS("MPI_Win_fence", ast.I(0), ast.Id("win")),
		// Ranks 1 and 2 both Put to rank 0, same location, same epoch.
		ast.If(ast.Ne(ast.Id("rank"), ast.I(0)),
			ast.CallS("MPI_Put", ast.Id("local"), ast.I(1), ast.Id("MPI_INT"), ast.I(0), ast.I(0), ast.I(1), ast.Id("MPI_INT"), ast.Id("win"))),
		ast.CallS("MPI_Win_fence", ast.I(0), ast.Id("win")),
		ast.CallS("MPI_Win_free", ast.Addr(ast.Id("win"))),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("globalconc", stmts...), 3)
	if !res.Has(VGlobalConc) {
		t.Fatalf("conflicting puts not flagged: %+v", res.Violations)
	}
}

func TestMissingFinalize(t *testing.T) {
	stmts := ast.MPIBoilerplate() // no Finalize
	res := runProg(t, ast.MainProgram("nofinalize", stmts...), 2)
	if !res.Has(VCallOrdering) {
		t.Fatalf("missing finalize not flagged: %+v", res.Violations)
	}
}

func TestTimeoutInfiniteLoop(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.Decl("x", ast.Int, ast.I(1)),
		ast.While(ast.Ne(ast.Id("x"), ast.I(0)), ast.Assign(ast.Id("x"), ast.Add(ast.Id("x"), ast.I(1)))),
		ast.Finalize(),
	)
	mod := irgen.MustLower(ast.MainProgram("spin", stmts...))
	res := Run(mod, Config{Ranks: 2, MaxSteps: 10_000})
	if !res.Timeout {
		t.Fatalf("infinite loop not detected as timeout")
	}
}

func TestPersistentRequests(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("buf", 4, ast.Int),
		ast.Decl("req", ast.Request, nil),
		ast.IfElse(ast.Eq(ast.Id("rank"), ast.I(0)),
			[]ast.Stmt{
				ast.CallS("MPI_Send_init", ast.Id("buf"), ast.I(4), ast.Id("MPI_INT"), ast.I(1), ast.I(2), world(), ast.Addr(ast.Id("req"))),
				ast.CallS("MPI_Start", ast.Addr(ast.Id("req"))),
				ast.CallS("MPI_Wait", ast.Addr(ast.Id("req")), ast.Id("MPI_STATUS_IGNORE")),
				ast.CallS("MPI_Start", ast.Addr(ast.Id("req"))),
				ast.CallS("MPI_Wait", ast.Addr(ast.Id("req")), ast.Id("MPI_STATUS_IGNORE")),
				ast.CallS("MPI_Request_free", ast.Addr(ast.Id("req"))),
			},
			[]ast.Stmt{
				ast.CallS("MPI_Recv", ast.Id("buf"), ast.I(4), ast.Id("MPI_INT"), ast.I(0), ast.I(2), world(), ast.Id("MPI_STATUS_IGNORE")),
				ast.CallS("MPI_Recv", ast.Id("buf"), ast.I(4), ast.Id("MPI_INT"), ast.I(0), ast.I(2), world(), ast.Id("MPI_STATUS_IGNORE")),
			}),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("persistent", stmts...), 2)
	if res.Erroneous() {
		t.Fatalf("correct persistent flagged: %+v deadlock=%v", res.Violations, res.Deadlock)
	}
}

func TestDoubleStart(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("buf", 4, ast.Int),
		ast.Decl("req", ast.Request, nil),
		ast.IfElse(ast.Eq(ast.Id("rank"), ast.I(0)),
			[]ast.Stmt{
				ast.CallS("MPI_Send_init", ast.Id("buf"), ast.I(4), ast.Id("MPI_INT"), ast.I(1), ast.I(2), world(), ast.Addr(ast.Id("req"))),
				ast.CallS("MPI_Start", ast.Addr(ast.Id("req"))),
				ast.CallS("MPI_Start", ast.Addr(ast.Id("req"))), // active already
				ast.CallS("MPI_Wait", ast.Addr(ast.Id("req")), ast.Id("MPI_STATUS_IGNORE")),
				ast.CallS("MPI_Request_free", ast.Addr(ast.Id("req"))),
			},
			[]ast.Stmt{
				ast.CallS("MPI_Recv", ast.Id("buf"), ast.I(4), ast.Id("MPI_INT"), ast.I(0), ast.I(2), world(), ast.Id("MPI_STATUS_IGNORE")),
				ast.CallS("MPI_Recv", ast.Id("buf"), ast.I(4), ast.Id("MPI_INT"), ast.I(0), ast.I(2), world(), ast.Id("MPI_STATUS_IGNORE")),
			}),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("doublestart", stmts...), 2)
	if !res.Has(VRequestLife) {
		t.Fatalf("double start not flagged: %+v", res.Violations)
	}
}

func TestDeterminism(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("val", 1, ast.Int),
		ast.DeclArr("sum", 1, ast.Int),
		ast.Assign(ast.Idx(ast.Id("val"), ast.I(0)), ast.Mul(ast.Id("rank"), ast.I(3))),
		ast.CallS("MPI_Allreduce", ast.Id("val"), ast.Id("sum"), ast.I(1), ast.Id("MPI_INT"), ast.Id("MPI_SUM"), world()),
		ast.CallS("printf", ast.S("r%d=%d\n"), ast.Id("rank"), ast.Idx(ast.Id("sum"), ast.I(0))),
		ast.Finalize(),
	)
	prog := ast.MainProgram("det", stmts...)
	mod := irgen.MustLower(prog)
	first := Run(mod, Config{Ranks: 4})
	for i := 0; i < 5; i++ {
		res := Run(mod, Config{Ranks: 4})
		if res.Output != first.Output {
			t.Fatalf("nondeterministic output: %q vs %q", res.Output, first.Output)
		}
	}
}

// TestOptimizationPreservesSemantics is the pass-correctness property test:
// a correct program must produce identical simulator output at every
// optimisation level.
func TestOptimizationPreservesSemantics(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("val", 4, ast.Int),
		ast.DeclArr("out", 4, ast.Int),
		ast.ForUp("i", 0, 4,
			ast.Assign(ast.Idx(ast.Id("val"), ast.Id("i")), ast.Add(ast.Mul(ast.Id("rank"), ast.I(10)), ast.Id("i")))),
		ast.CallS("MPI_Allreduce", ast.Id("val"), ast.Id("out"), ast.I(4), ast.Id("MPI_INT"), ast.Id("MPI_SUM"), world()),
		ast.If(ast.Eq(ast.Id("rank"), ast.I(0)),
			ast.ForUp("j", 0, 4, ast.CallS("printf", ast.S("%d "), ast.Idx(ast.Id("out"), ast.Id("j"))))),
		ast.Finalize(),
	)
	prog := ast.MainProgram("optsem", stmts...)
	var outputs []string
	for _, lvl := range []passes.OptLevel{passes.O0, passes.O2, passes.Os} {
		mod := irgen.MustLower(prog)
		passes.Optimize(mod, lvl)
		res := Run(mod, Config{Ranks: 3})
		if res.Erroneous() {
			t.Fatalf("%s: flagged: %+v crash=%v %s", lvl, res.Violations, res.Crashed, res.CrashMsg)
		}
		outputs = append(outputs, res.Output)
	}
	if outputs[0] != outputs[1] || outputs[1] != outputs[2] {
		t.Fatalf("optimisation changed output: O0=%q O2=%q Os=%q", outputs[0], outputs[1], outputs[2])
	}
	if !strings.Contains(outputs[0], "30 33 36 39") {
		t.Errorf("output = %q, want sums 30 33 36 39", outputs[0])
	}
}
