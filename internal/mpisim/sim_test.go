package mpisim

import (
	"strings"
	"testing"

	. "mpidetect/internal/ast"
	"mpidetect/internal/irgen"
	"mpidetect/internal/passes"
)

// runProg lowers and simulates a program.
func runProg(t *testing.T, p *Program, ranks int) *Result {
	t.Helper()
	mod, err := irgen.Lower(p)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	return Run(mod, Config{Ranks: ranks})
}

func world() Expr { return Id("MPI_COMM_WORLD") }

func TestCorrectPingPong(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("buf", 8, Int),
		IfElse(Eq(Id("rank"), I(0)),
			[]Stmt{
				Assign(Idx(Id("buf"), I(0)), I(42)),
				CallS("MPI_Send", Id("buf"), I(8), Id("MPI_INT"), I(1), I(7), world()),
			},
			[]Stmt{
				CallS("MPI_Recv", Id("buf"), I(8), Id("MPI_INT"), I(0), I(7), world(), Id("MPI_STATUS_IGNORE")),
				CallS("printf", S("got %d\n"), Idx(Id("buf"), I(0))),
			}),
		Finalize(),
	)
	res := runProg(t, MainProgram("pingpong", stmts...), 2)
	if res.Erroneous() {
		t.Fatalf("correct program flagged: %+v deadlock=%v timeout=%v crash=%v %s",
			res.Violations, res.Deadlock, res.Timeout, res.Crashed, res.CrashMsg)
	}
	if !strings.Contains(res.Output, "got 42") {
		t.Errorf("output = %q, want to contain 'got 42'", res.Output)
	}
}

func TestDeadlockBothRecv(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("buf", 4, Int),
		// Both ranks receive first: classic deadlock.
		CallS("MPI_Recv", Id("buf"), I(4), Id("MPI_INT"),
			Sub(I(1), Id("rank")), I(3), world(), Id("MPI_STATUS_IGNORE")),
		CallS("MPI_Send", Id("buf"), I(4), Id("MPI_INT"),
			Sub(I(1), Id("rank")), I(3), world()),
		Finalize(),
	)
	res := runProg(t, MainProgram("deadlock", stmts...), 2)
	if !res.Deadlock {
		t.Fatalf("deadlock not detected: %+v", res.Violations)
	}
}

func TestDeadlockLargeSends(t *testing.T) {
	// Two ranks send large (rendezvous) messages to each other first.
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("buf", 64, Int), // 256 bytes > eager limit
		CallS("MPI_Send", Id("buf"), I(64), Id("MPI_INT"), Sub(I(1), Id("rank")), I(1), world()),
		CallS("MPI_Recv", Id("buf"), I(64), Id("MPI_INT"), Sub(I(1), Id("rank")), I(1), world(), Id("MPI_STATUS_IGNORE")),
		Finalize(),
	)
	res := runProg(t, MainProgram("sendsend", stmts...), 2)
	if !res.Deadlock {
		t.Fatalf("rendezvous send-send deadlock not detected: %+v", res.Violations)
	}
}

func TestEagerSendsNoDeadlock(t *testing.T) {
	// Small messages fit the eager buffer: same pattern completes.
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("buf", 4, Int),
		CallS("MPI_Send", Id("buf"), I(4), Id("MPI_INT"), Sub(I(1), Id("rank")), I(1), world()),
		CallS("MPI_Recv", Id("buf"), I(4), Id("MPI_INT"), Sub(I(1), Id("rank")), I(1), world(), Id("MPI_STATUS_IGNORE")),
		Finalize(),
	)
	res := runProg(t, MainProgram("eager", stmts...), 2)
	if res.Deadlock {
		t.Fatal("eager sends deadlocked")
	}
	if res.Erroneous() {
		t.Fatalf("unexpected violations: %+v", res.Violations)
	}
}

func TestInvalidNegativeCount(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("buf", 4, Int),
		If(Eq(Id("rank"), I(0)),
			CallS("MPI_Send", Id("buf"), I(-1), Id("MPI_INT"), I(1), I(0), world())),
		If(Eq(Id("rank"), I(1)),
			CallS("MPI_Recv", Id("buf"), I(4), Id("MPI_INT"), I(0), I(0), world(), Id("MPI_STATUS_IGNORE"))),
		Finalize(),
	)
	res := runProg(t, MainProgram("negcount", stmts...), 2)
	if !res.Has(VInvalidParam) {
		t.Fatalf("negative count not flagged: %+v", res.Violations)
	}
}

func TestTypeMismatch(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("buf", 8, Int),
		IfElse(Eq(Id("rank"), I(0)),
			[]Stmt{CallS("MPI_Send", Id("buf"), I(4), Id("MPI_INT"), I(1), I(0), world())},
			[]Stmt{CallS("MPI_Recv", Id("buf"), I(4), Id("MPI_DOUBLE"), I(0), I(0), world(), Id("MPI_STATUS_IGNORE"))}),
		Finalize(),
	)
	res := runProg(t, MainProgram("typemismatch", stmts...), 2)
	if !res.Has(VTypeMismatch) {
		t.Fatalf("type mismatch not flagged: %+v", res.Violations)
	}
}

func TestTruncation(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("big", 8, Int),
		DeclArr("small", 8, Int),
		IfElse(Eq(Id("rank"), I(0)),
			[]Stmt{CallS("MPI_Send", Id("big"), I(8), Id("MPI_INT"), I(1), I(0), world())},
			[]Stmt{CallS("MPI_Recv", Id("small"), I(2), Id("MPI_INT"), I(0), I(0), world(), Id("MPI_STATUS_IGNORE"))}),
		Finalize(),
	)
	res := runProg(t, MainProgram("trunc", stmts...), 2)
	if !res.Has(VTruncation) {
		t.Fatalf("truncation not flagged: %+v", res.Violations)
	}
}

func TestMissingWaitLeak(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("buf", 4, Int),
		Decl("req", Request, nil),
		IfElse(Eq(Id("rank"), I(0)),
			[]Stmt{
				CallS("MPI_Isend", Id("buf"), I(4), Id("MPI_INT"), I(1), I(0), world(), Addr(Id("req"))),
				// no MPI_Wait
			},
			[]Stmt{
				CallS("MPI_Recv", Id("buf"), I(4), Id("MPI_INT"), I(0), I(0), world(), Id("MPI_STATUS_IGNORE")),
			}),
		Finalize(),
	)
	res := runProg(t, MainProgram("leak", stmts...), 2)
	if !res.Has(VResourceLeak) {
		t.Fatalf("missing wait not flagged as leak: %+v", res.Violations)
	}
}

func TestIsendWaitClean(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("buf", 4, Int),
		Decl("req", Request, nil),
		IfElse(Eq(Id("rank"), I(0)),
			[]Stmt{
				CallS("MPI_Isend", Id("buf"), I(4), Id("MPI_INT"), I(1), I(0), world(), Addr(Id("req"))),
				CallS("MPI_Wait", Addr(Id("req")), Id("MPI_STATUS_IGNORE")),
			},
			[]Stmt{
				CallS("MPI_Recv", Id("buf"), I(4), Id("MPI_INT"), I(0), I(0), world(), Id("MPI_STATUS_IGNORE")),
			}),
		Finalize(),
	)
	res := runProg(t, MainProgram("isendwait", stmts...), 2)
	if res.Erroneous() {
		t.Fatalf("clean isend/wait flagged: %+v", res.Violations)
	}
}

func TestLocalConcurrency(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("buf", 4, Int),
		Decl("req", Request, nil),
		IfElse(Eq(Id("rank"), I(0)),
			[]Stmt{
				CallS("MPI_Irecv", Id("buf"), I(4), Id("MPI_INT"), I(1), I(0), world(), Addr(Id("req"))),
				Assign(Idx(Id("buf"), I(0)), I(5)), // writes pending recv buffer
				CallS("MPI_Wait", Addr(Id("req")), Id("MPI_STATUS_IGNORE")),
			},
			[]Stmt{
				CallS("MPI_Send", Id("buf"), I(4), Id("MPI_INT"), I(0), I(0), world()),
			}),
		Finalize(),
	)
	res := runProg(t, MainProgram("localconc", stmts...), 2)
	if !res.Has(VLocalConc) {
		t.Fatalf("local concurrency not flagged: %+v", res.Violations)
	}
}

func TestBarrierMismatchDeadlock(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		If(Eq(Id("rank"), I(0)), CallS("MPI_Barrier", world())),
		Finalize(),
	)
	res := runProg(t, MainProgram("missingbarrier", stmts...), 2)
	if !res.Deadlock {
		t.Fatalf("missing barrier participant not detected: %+v", res.Violations)
	}
}

func TestCollectiveRootMismatch(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("buf", 4, Int),
		// Root depends on rank: parameter matching error.
		CallS("MPI_Bcast", Id("buf"), I(4), Id("MPI_INT"), Id("rank"), world()),
		Finalize(),
	)
	res := runProg(t, MainProgram("rootmismatch", stmts...), 2)
	if !res.Has(VRootMismatch) {
		t.Fatalf("root mismatch not flagged: %+v", res.Violations)
	}
}

func TestAllreduceComputes(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("val", 1, Int),
		DeclArr("sum", 1, Int),
		Assign(Idx(Id("val"), I(0)), Add(Id("rank"), I(1))),
		CallS("MPI_Allreduce", Id("val"), Id("sum"), I(1), Id("MPI_INT"), Id("MPI_SUM"), world()),
		If(Eq(Id("rank"), I(0)), CallS("printf", S("sum=%d\n"), Idx(Id("sum"), I(0)))),
		Finalize(),
	)
	res := runProg(t, MainProgram("allreduce", stmts...), 4)
	if res.Erroneous() {
		t.Fatalf("allreduce flagged: %+v", res.Violations)
	}
	if !strings.Contains(res.Output, "sum=10") {
		t.Errorf("output = %q, want sum=10", res.Output)
	}
}

func TestBcastDelivers(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("buf", 1, Int),
		If(Eq(Id("rank"), I(0)), Assign(Idx(Id("buf"), I(0)), I(99))),
		CallS("MPI_Bcast", Id("buf"), I(1), Id("MPI_INT"), I(0), world()),
		If(Eq(Id("rank"), I(2)), CallS("printf", S("bcast=%d\n"), Idx(Id("buf"), I(0)))),
		Finalize(),
	)
	res := runProg(t, MainProgram("bcast", stmts...), 3)
	if res.Erroneous() {
		t.Fatalf("bcast flagged: %+v", res.Violations)
	}
	if !strings.Contains(res.Output, "bcast=99") {
		t.Errorf("output = %q, want bcast=99", res.Output)
	}
}

func TestMessageRace(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("buf", 4, Int),
		IfElse(Eq(Id("rank"), I(0)),
			[]Stmt{
				CallS("MPI_Recv", Id("buf"), I(4), Id("MPI_INT"), Id("MPI_ANY_SOURCE"), I(5), world(), Id("MPI_STATUS_IGNORE")),
				CallS("MPI_Recv", Id("buf"), I(4), Id("MPI_INT"), Id("MPI_ANY_SOURCE"), I(5), world(), Id("MPI_STATUS_IGNORE")),
			},
			[]Stmt{
				CallS("MPI_Send", Id("buf"), I(4), Id("MPI_INT"), I(0), I(5), world()),
			}),
		Finalize(),
	)
	res := runProg(t, MainProgram("msgrace", stmts...), 3)
	if !res.Has(VMessageRace) {
		t.Fatalf("message race not flagged: %+v", res.Violations)
	}
}

func TestRMAFencePutGet(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("win_mem", 4, Int),
		DeclArr("local", 4, Int),
		Decl("win", Win, nil),
		CallS("MPI_Win_create", Id("win_mem"), I(16), I(4), Id("MPI_INFO_NULL"), world(), Addr(Id("win"))),
		CallS("MPI_Win_fence", I(0), Id("win")),
		If(Eq(Id("rank"), I(0)),
			Assign(Idx(Id("local"), I(0)), I(7)),
			CallS("MPI_Put", Id("local"), I(1), Id("MPI_INT"), I(1), I(0), I(1), Id("MPI_INT"), Id("win"))),
		CallS("MPI_Win_fence", I(0), Id("win")),
		If(Eq(Id("rank"), I(1)), CallS("printf", S("win=%d\n"), Idx(Id("win_mem"), I(0)))),
		CallS("MPI_Win_free", Addr(Id("win"))),
		Finalize(),
	)
	res := runProg(t, MainProgram("rma", stmts...), 2)
	if res.Erroneous() {
		t.Fatalf("correct RMA flagged: %+v deadlock=%v crash=%v %s", res.Violations, res.Deadlock, res.Crashed, res.CrashMsg)
	}
	if !strings.Contains(res.Output, "win=7") {
		t.Errorf("output = %q, want win=7", res.Output)
	}
}

func TestRMAEpochViolation(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("win_mem", 4, Int),
		DeclArr("local", 4, Int),
		Decl("win", Win, nil),
		CallS("MPI_Win_create", Id("win_mem"), I(16), I(4), Id("MPI_INFO_NULL"), world(), Addr(Id("win"))),
		// Put without opening a fence epoch.
		If(Eq(Id("rank"), I(0)),
			CallS("MPI_Put", Id("local"), I(1), Id("MPI_INT"), I(1), I(0), I(1), Id("MPI_INT"), Id("win"))),
		CallS("MPI_Win_free", Addr(Id("win"))),
		Finalize(),
	)
	res := runProg(t, MainProgram("epoch", stmts...), 2)
	if !res.Has(VEpochLife) {
		t.Fatalf("epoch violation not flagged: %+v", res.Violations)
	}
}

func TestGlobalConcurrencyRMA(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("win_mem", 4, Int),
		DeclArr("local", 4, Int),
		Decl("win", Win, nil),
		CallS("MPI_Win_create", Id("win_mem"), I(16), I(4), Id("MPI_INFO_NULL"), world(), Addr(Id("win"))),
		CallS("MPI_Win_fence", I(0), Id("win")),
		// Ranks 1 and 2 both Put to rank 0, same location, same epoch.
		If(Ne(Id("rank"), I(0)),
			CallS("MPI_Put", Id("local"), I(1), Id("MPI_INT"), I(0), I(0), I(1), Id("MPI_INT"), Id("win"))),
		CallS("MPI_Win_fence", I(0), Id("win")),
		CallS("MPI_Win_free", Addr(Id("win"))),
		Finalize(),
	)
	res := runProg(t, MainProgram("globalconc", stmts...), 3)
	if !res.Has(VGlobalConc) {
		t.Fatalf("conflicting puts not flagged: %+v", res.Violations)
	}
}

func TestMissingFinalize(t *testing.T) {
	stmts := MPIBoilerplate() // no Finalize
	res := runProg(t, MainProgram("nofinalize", stmts...), 2)
	if !res.Has(VCallOrdering) {
		t.Fatalf("missing finalize not flagged: %+v", res.Violations)
	}
}

func TestTimeoutInfiniteLoop(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		Decl("x", Int, I(1)),
		While(Ne(Id("x"), I(0)), Assign(Id("x"), Add(Id("x"), I(1)))),
		Finalize(),
	)
	mod := irgen.MustLower(MainProgram("spin", stmts...))
	res := Run(mod, Config{Ranks: 2, MaxSteps: 10_000})
	if !res.Timeout {
		t.Fatalf("infinite loop not detected as timeout")
	}
}

func TestPersistentRequests(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("buf", 4, Int),
		Decl("req", Request, nil),
		IfElse(Eq(Id("rank"), I(0)),
			[]Stmt{
				CallS("MPI_Send_init", Id("buf"), I(4), Id("MPI_INT"), I(1), I(2), world(), Addr(Id("req"))),
				CallS("MPI_Start", Addr(Id("req"))),
				CallS("MPI_Wait", Addr(Id("req")), Id("MPI_STATUS_IGNORE")),
				CallS("MPI_Start", Addr(Id("req"))),
				CallS("MPI_Wait", Addr(Id("req")), Id("MPI_STATUS_IGNORE")),
				CallS("MPI_Request_free", Addr(Id("req"))),
			},
			[]Stmt{
				CallS("MPI_Recv", Id("buf"), I(4), Id("MPI_INT"), I(0), I(2), world(), Id("MPI_STATUS_IGNORE")),
				CallS("MPI_Recv", Id("buf"), I(4), Id("MPI_INT"), I(0), I(2), world(), Id("MPI_STATUS_IGNORE")),
			}),
		Finalize(),
	)
	res := runProg(t, MainProgram("persistent", stmts...), 2)
	if res.Erroneous() {
		t.Fatalf("correct persistent flagged: %+v deadlock=%v", res.Violations, res.Deadlock)
	}
}

func TestDoubleStart(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("buf", 4, Int),
		Decl("req", Request, nil),
		IfElse(Eq(Id("rank"), I(0)),
			[]Stmt{
				CallS("MPI_Send_init", Id("buf"), I(4), Id("MPI_INT"), I(1), I(2), world(), Addr(Id("req"))),
				CallS("MPI_Start", Addr(Id("req"))),
				CallS("MPI_Start", Addr(Id("req"))), // active already
				CallS("MPI_Wait", Addr(Id("req")), Id("MPI_STATUS_IGNORE")),
				CallS("MPI_Request_free", Addr(Id("req"))),
			},
			[]Stmt{
				CallS("MPI_Recv", Id("buf"), I(4), Id("MPI_INT"), I(0), I(2), world(), Id("MPI_STATUS_IGNORE")),
				CallS("MPI_Recv", Id("buf"), I(4), Id("MPI_INT"), I(0), I(2), world(), Id("MPI_STATUS_IGNORE")),
			}),
		Finalize(),
	)
	res := runProg(t, MainProgram("doublestart", stmts...), 2)
	if !res.Has(VRequestLife) {
		t.Fatalf("double start not flagged: %+v", res.Violations)
	}
}

func TestDeterminism(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("val", 1, Int),
		DeclArr("sum", 1, Int),
		Assign(Idx(Id("val"), I(0)), Mul(Id("rank"), I(3))),
		CallS("MPI_Allreduce", Id("val"), Id("sum"), I(1), Id("MPI_INT"), Id("MPI_SUM"), world()),
		CallS("printf", S("r%d=%d\n"), Id("rank"), Idx(Id("sum"), I(0))),
		Finalize(),
	)
	prog := MainProgram("det", stmts...)
	mod := irgen.MustLower(prog)
	first := Run(mod, Config{Ranks: 4})
	for i := 0; i < 5; i++ {
		res := Run(mod, Config{Ranks: 4})
		if res.Output != first.Output {
			t.Fatalf("nondeterministic output: %q vs %q", res.Output, first.Output)
		}
	}
}

// TestOptimizationPreservesSemantics is the pass-correctness property test:
// a correct program must produce identical simulator output at every
// optimisation level.
func TestOptimizationPreservesSemantics(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("val", 4, Int),
		DeclArr("out", 4, Int),
		ForUp("i", 0, 4,
			Assign(Idx(Id("val"), Id("i")), Add(Mul(Id("rank"), I(10)), Id("i")))),
		CallS("MPI_Allreduce", Id("val"), Id("out"), I(4), Id("MPI_INT"), Id("MPI_SUM"), world()),
		If(Eq(Id("rank"), I(0)),
			ForUp("j", 0, 4, CallS("printf", S("%d "), Idx(Id("out"), Id("j"))))),
		Finalize(),
	)
	prog := MainProgram("optsem", stmts...)
	var outputs []string
	for _, lvl := range []passes.OptLevel{passes.O0, passes.O2, passes.Os} {
		mod := irgen.MustLower(prog)
		passes.Optimize(mod, lvl)
		res := Run(mod, Config{Ranks: 3})
		if res.Erroneous() {
			t.Fatalf("%s: flagged: %+v crash=%v %s", lvl, res.Violations, res.Crashed, res.CrashMsg)
		}
		outputs = append(outputs, res.Output)
	}
	if outputs[0] != outputs[1] || outputs[1] != outputs[2] {
		t.Fatalf("optimisation changed output: O0=%q O2=%q Os=%q", outputs[0], outputs[1], outputs[2])
	}
	if !strings.Contains(outputs[0], "30 33 36 39") {
		t.Errorf("output = %q, want sums 30 33 36 39", outputs[0])
	}
}
