package mpisim

import (
	"strings"
	"testing"

	ast "mpidetect/internal/ast"
	"mpidetect/internal/irgen"
)

func TestSendrecvRing(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("sbuf", 1, ast.Int),
		ast.DeclArr("rbuf", 1, ast.Int),
		ast.Assign(ast.Idx(ast.Id("sbuf"), ast.I(0)), ast.Id("rank")),
		ast.Decl("right", ast.Int, ast.Mod(ast.Add(ast.Id("rank"), ast.I(1)), ast.Id("size"))),
		ast.Decl("left", ast.Int, ast.Mod(ast.Add(ast.Sub(ast.Id("rank"), ast.I(1)), ast.Id("size")), ast.Id("size"))),
		ast.CallS("MPI_Sendrecv",
			ast.Id("sbuf"), ast.I(1), ast.Id("MPI_INT"), ast.Id("right"), ast.I(4),
			ast.Id("rbuf"), ast.I(1), ast.Id("MPI_INT"), ast.Id("left"), ast.I(4),
			world(), ast.Id("MPI_STATUS_IGNORE")),
		ast.If(ast.Eq(ast.Id("rank"), ast.I(0)), ast.CallS("printf", ast.S("got %d\n"), ast.Idx(ast.Id("rbuf"), ast.I(0)))),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("sendrecvring", stmts...), 4)
	if res.Erroneous() {
		t.Fatalf("ring flagged: %+v deadlock=%v", res.Violations, res.Deadlock)
	}
	// Rank 0 receives from rank 3.
	if !strings.Contains(res.Output, "got 3") {
		t.Errorf("output %q, want 'got 3'", res.Output)
	}
}

func TestGatherScatterData(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("mine", 1, ast.Int),
		ast.DeclArr("all", 4, ast.Int),
		ast.Assign(ast.Idx(ast.Id("mine"), ast.I(0)), ast.Mul(ast.Id("rank"), ast.I(10))),
		ast.CallS("MPI_Gather", ast.Id("mine"), ast.I(1), ast.Id("MPI_INT"),
			ast.Id("all"), ast.I(1), ast.Id("MPI_INT"), ast.I(0), world()),
		ast.If(ast.Eq(ast.Id("rank"), ast.I(0)),
			ast.CallS("printf", ast.S("%d %d %d\n"), ast.Idx(ast.Id("all"), ast.I(0)), ast.Idx(ast.Id("all"), ast.I(1)), ast.Idx(ast.Id("all"), ast.I(2)))),
		// Now scatter back doubled values.
		ast.If(ast.Eq(ast.Id("rank"), ast.I(0)),
			ast.ForUp("i", 0, 3, ast.Assign(ast.Idx(ast.Id("all"), ast.Id("i")), ast.Mul(ast.Idx(ast.Id("all"), ast.Id("i")), ast.I(2))))),
		ast.CallS("MPI_Scatter", ast.Id("all"), ast.I(1), ast.Id("MPI_INT"),
			ast.Id("mine"), ast.I(1), ast.Id("MPI_INT"), ast.I(0), world()),
		ast.If(ast.Eq(ast.Id("rank"), ast.I(2)), ast.CallS("printf", ast.S("mine=%d\n"), ast.Idx(ast.Id("mine"), ast.I(0)))),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("gatherscatter", stmts...), 3)
	if res.Erroneous() {
		t.Fatalf("flagged: %+v", res.Violations)
	}
	if !strings.Contains(res.Output, "0 10 20") {
		t.Errorf("gather result wrong: %q", res.Output)
	}
	if !strings.Contains(res.Output, "mine=40") {
		t.Errorf("scatter result wrong: %q", res.Output)
	}
}

func TestScanPrefixSum(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("v", 1, ast.Int),
		ast.DeclArr("p", 1, ast.Int),
		ast.Assign(ast.Idx(ast.Id("v"), ast.I(0)), ast.Add(ast.Id("rank"), ast.I(1))),
		ast.CallS("MPI_Scan", ast.Id("v"), ast.Id("p"), ast.I(1), ast.Id("MPI_INT"), ast.Id("MPI_SUM"), world()),
		ast.CallS("printf", ast.S("r%d=%d "), ast.Id("rank"), ast.Idx(ast.Id("p"), ast.I(0))),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("scan", stmts...), 3)
	if res.Erroneous() {
		t.Fatalf("flagged: %+v", res.Violations)
	}
	for _, want := range []string{"r0=1", "r1=3", "r2=6"} {
		if !strings.Contains(res.Output, want) {
			t.Errorf("output %q missing %q", res.Output, want)
		}
	}
}

func TestCommSplitAndFree(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.Decl("newcomm", ast.Comm, nil),
		ast.CallS("MPI_Comm_split", world(), ast.Mod(ast.Id("rank"), ast.I(2)), ast.Id("rank"), ast.Addr(ast.Id("newcomm"))),
		ast.CallS("MPI_Barrier", world()),
		ast.CallS("MPI_Comm_free", ast.Addr(ast.Id("newcomm"))),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("commsplit", stmts...), 2)
	if res.Erroneous() {
		t.Fatalf("flagged: %+v deadlock=%v", res.Violations, res.Deadlock)
	}
}

func TestDerivedDatatypeLifecycle(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("buf", 8, ast.Int),
		ast.Decl("ty", ast.Datatype, nil),
		ast.CallS("MPI_Type_contiguous", ast.I(2), ast.Id("MPI_INT"), ast.Addr(ast.Id("ty"))),
		ast.CallS("MPI_Type_commit", ast.Addr(ast.Id("ty"))),
		ast.IfElse(ast.Eq(ast.Id("rank"), ast.I(0)),
			[]ast.Stmt{ast.CallS("MPI_Send", ast.Id("buf"), ast.I(2), ast.Id("ty"), ast.I(1), ast.I(6), world())},
			[]ast.Stmt{ast.CallS("MPI_Recv", ast.Id("buf"), ast.I(2), ast.Id("ty"), ast.I(0), ast.I(6), world(), ast.Id("MPI_STATUS_IGNORE"))}),
		ast.CallS("MPI_Type_free", ast.Addr(ast.Id("ty"))),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("dtype", stmts...), 2)
	if res.Erroneous() {
		t.Fatalf("correct derived-type flow flagged: %+v", res.Violations)
	}
}

func TestUncommittedDatatypeFlagged(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("buf", 8, ast.Int),
		ast.Decl("ty", ast.Datatype, nil),
		ast.CallS("MPI_Type_contiguous", ast.I(2), ast.Id("MPI_INT"), ast.Addr(ast.Id("ty"))),
		// no commit
		ast.If(ast.Eq(ast.Id("rank"), ast.I(0)),
			ast.CallS("MPI_Send", ast.Id("buf"), ast.I(2), ast.Id("ty"), ast.I(1), ast.I(6), world())),
		ast.If(ast.Eq(ast.Id("rank"), ast.I(1)),
			ast.CallS("MPI_Recv", ast.Id("buf"), ast.I(2), ast.Id("ty"), ast.I(0), ast.I(6), world(), ast.Id("MPI_STATUS_IGNORE"))),
		ast.CallS("MPI_Type_free", ast.Addr(ast.Id("ty"))),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("uncommitted", stmts...), 2)
	if !res.Has(VInvalidParam) {
		t.Fatalf("uncommitted datatype not flagged: %+v", res.Violations)
	}
}

func TestWinLockUnlockPassive(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("wmem", 4, ast.Int),
		ast.DeclArr("local", 4, ast.Int),
		ast.Decl("win", ast.Win, nil),
		ast.CallS("MPI_Win_create", ast.Id("wmem"), ast.I(16), ast.I(4), ast.Id("MPI_INFO_NULL"), world(), ast.Addr(ast.Id("win"))),
		ast.If(ast.Eq(ast.Id("rank"), ast.I(0)),
			ast.Assign(ast.Idx(ast.Id("local"), ast.I(0)), ast.I(5)),
			ast.CallS("MPI_Win_lock", ast.Id("MPI_LOCK_EXCLUSIVE"), ast.I(1), ast.I(0), ast.Id("win")),
			ast.CallS("MPI_Put", ast.Id("local"), ast.I(1), ast.Id("MPI_INT"), ast.I(1), ast.I(0), ast.I(1), ast.Id("MPI_INT"), ast.Id("win")),
			ast.CallS("MPI_Win_unlock", ast.I(1), ast.Id("win"))),
		ast.CallS("MPI_Barrier", world()),
		ast.If(ast.Eq(ast.Id("rank"), ast.I(1)), ast.CallS("printf", ast.S("v=%d\n"), ast.Idx(ast.Id("wmem"), ast.I(0)))),
		ast.CallS("MPI_Win_free", ast.Addr(ast.Id("win"))),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("passive", stmts...), 2)
	if res.Erroneous() {
		t.Fatalf("passive-target RMA flagged: %+v", res.Violations)
	}
	if !strings.Contains(res.Output, "v=5") {
		t.Errorf("output %q, want v=5", res.Output)
	}
}

func TestAccumulateSums(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("wmem", 1, ast.Int),
		ast.DeclArr("one", 1, ast.Int),
		ast.Decl("win", ast.Win, nil),
		ast.Assign(ast.Idx(ast.Id("one"), ast.I(0)), ast.I(1)),
		ast.CallS("MPI_Win_create", ast.Id("wmem"), ast.I(4), ast.I(4), ast.Id("MPI_INFO_NULL"), world(), ast.Addr(ast.Id("win"))),
		ast.CallS("MPI_Win_fence", ast.I(0), ast.Id("win")),
		ast.If(ast.Ne(ast.Id("rank"), ast.I(0)),
			ast.CallS("MPI_Accumulate", ast.Id("one"), ast.I(1), ast.Id("MPI_INT"), ast.I(0), ast.I(0), ast.I(1), ast.Id("MPI_INT"), ast.Id("MPI_SUM"), ast.Id("win"))),
		ast.CallS("MPI_Win_fence", ast.I(0), ast.Id("win")),
		ast.If(ast.Eq(ast.Id("rank"), ast.I(0)), ast.CallS("printf", ast.S("acc=%d\n"), ast.Idx(ast.Id("wmem"), ast.I(0)))),
		ast.CallS("MPI_Win_free", ast.Addr(ast.Id("win"))),
		ast.Finalize(),
	)
	res := runProg(t, ast.MainProgram("accum", stmts...), 3)
	// Two ranks accumulate into rank 0: value 2. Concurrent accumulates
	// with the same op are legal MPI; our conservative detector may still
	// note the overlap, so only check the arithmetic and deadlock-freedom.
	if res.Deadlock || res.Crashed {
		t.Fatalf("accumulate failed: deadlock=%v crash=%v", res.Deadlock, res.Crashed)
	}
	if !strings.Contains(res.Output, "acc=2") {
		t.Errorf("output %q, want acc=2", res.Output)
	}
}

func TestTestCompletesRequest(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("buf", 2, ast.Int),
		ast.Decl("req", ast.Request, nil),
		ast.Decl("flag", ast.Int, ast.I(0)),
		ast.IfElse(ast.Eq(ast.Id("rank"), ast.I(0)),
			[]ast.Stmt{
				ast.CallS("MPI_Irecv", ast.Id("buf"), ast.I(2), ast.Id("MPI_INT"), ast.I(1), ast.I(2), world(), ast.Addr(ast.Id("req"))),
				ast.While(ast.Eq(ast.Id("flag"), ast.I(0)),
					ast.CallS("MPI_Test", ast.Addr(ast.Id("req")), ast.Addr(ast.Id("flag")), ast.Id("MPI_STATUS_IGNORE"))),
			},
			[]ast.Stmt{ast.CallS("MPI_Send", ast.Id("buf"), ast.I(2), ast.Id("MPI_INT"), ast.I(0), ast.I(2), world())}),
		ast.Finalize(),
	)
	// MPI_Test never blocks; the while loop spins until the send lands.
	// Deterministic scheduling delivers the send during rank 1's turn, so
	// the loop terminates; a bounded step budget guards regressions.
	mod := irgen.MustLower(ast.MainProgram("test", stmts...))
	res := Run(mod, Config{Ranks: 2, MaxSteps: 500_000})
	if res.Deadlock || res.Timeout {
		t.Fatalf("test-loop did not complete: deadlock=%v timeout=%v", res.Deadlock, res.Timeout)
	}
	if res.Has(VResourceLeak) {
		t.Fatalf("completed request reported as leak: %+v", res.Violations)
	}
}
