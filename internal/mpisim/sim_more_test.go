package mpisim

import (
	"strings"
	"testing"

	. "mpidetect/internal/ast"
	"mpidetect/internal/irgen"
)

func TestSendrecvRing(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("sbuf", 1, Int),
		DeclArr("rbuf", 1, Int),
		Assign(Idx(Id("sbuf"), I(0)), Id("rank")),
		Decl("right", Int, Mod(Add(Id("rank"), I(1)), Id("size"))),
		Decl("left", Int, Mod(Add(Sub(Id("rank"), I(1)), Id("size")), Id("size"))),
		CallS("MPI_Sendrecv",
			Id("sbuf"), I(1), Id("MPI_INT"), Id("right"), I(4),
			Id("rbuf"), I(1), Id("MPI_INT"), Id("left"), I(4),
			world(), Id("MPI_STATUS_IGNORE")),
		If(Eq(Id("rank"), I(0)), CallS("printf", S("got %d\n"), Idx(Id("rbuf"), I(0)))),
		Finalize(),
	)
	res := runProg(t, MainProgram("sendrecvring", stmts...), 4)
	if res.Erroneous() {
		t.Fatalf("ring flagged: %+v deadlock=%v", res.Violations, res.Deadlock)
	}
	// Rank 0 receives from rank 3.
	if !strings.Contains(res.Output, "got 3") {
		t.Errorf("output %q, want 'got 3'", res.Output)
	}
}

func TestGatherScatterData(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("mine", 1, Int),
		DeclArr("all", 4, Int),
		Assign(Idx(Id("mine"), I(0)), Mul(Id("rank"), I(10))),
		CallS("MPI_Gather", Id("mine"), I(1), Id("MPI_INT"),
			Id("all"), I(1), Id("MPI_INT"), I(0), world()),
		If(Eq(Id("rank"), I(0)),
			CallS("printf", S("%d %d %d\n"), Idx(Id("all"), I(0)), Idx(Id("all"), I(1)), Idx(Id("all"), I(2)))),
		// Now scatter back doubled values.
		If(Eq(Id("rank"), I(0)),
			ForUp("i", 0, 3, Assign(Idx(Id("all"), Id("i")), Mul(Idx(Id("all"), Id("i")), I(2))))),
		CallS("MPI_Scatter", Id("all"), I(1), Id("MPI_INT"),
			Id("mine"), I(1), Id("MPI_INT"), I(0), world()),
		If(Eq(Id("rank"), I(2)), CallS("printf", S("mine=%d\n"), Idx(Id("mine"), I(0)))),
		Finalize(),
	)
	res := runProg(t, MainProgram("gatherscatter", stmts...), 3)
	if res.Erroneous() {
		t.Fatalf("flagged: %+v", res.Violations)
	}
	if !strings.Contains(res.Output, "0 10 20") {
		t.Errorf("gather result wrong: %q", res.Output)
	}
	if !strings.Contains(res.Output, "mine=40") {
		t.Errorf("scatter result wrong: %q", res.Output)
	}
}

func TestScanPrefixSum(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("v", 1, Int),
		DeclArr("p", 1, Int),
		Assign(Idx(Id("v"), I(0)), Add(Id("rank"), I(1))),
		CallS("MPI_Scan", Id("v"), Id("p"), I(1), Id("MPI_INT"), Id("MPI_SUM"), world()),
		CallS("printf", S("r%d=%d "), Id("rank"), Idx(Id("p"), I(0))),
		Finalize(),
	)
	res := runProg(t, MainProgram("scan", stmts...), 3)
	if res.Erroneous() {
		t.Fatalf("flagged: %+v", res.Violations)
	}
	for _, want := range []string{"r0=1", "r1=3", "r2=6"} {
		if !strings.Contains(res.Output, want) {
			t.Errorf("output %q missing %q", res.Output, want)
		}
	}
}

func TestCommSplitAndFree(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		Decl("newcomm", Comm, nil),
		CallS("MPI_Comm_split", world(), Mod(Id("rank"), I(2)), Id("rank"), Addr(Id("newcomm"))),
		CallS("MPI_Barrier", world()),
		CallS("MPI_Comm_free", Addr(Id("newcomm"))),
		Finalize(),
	)
	res := runProg(t, MainProgram("commsplit", stmts...), 2)
	if res.Erroneous() {
		t.Fatalf("flagged: %+v deadlock=%v", res.Violations, res.Deadlock)
	}
}

func TestDerivedDatatypeLifecycle(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("buf", 8, Int),
		Decl("ty", Datatype, nil),
		CallS("MPI_Type_contiguous", I(2), Id("MPI_INT"), Addr(Id("ty"))),
		CallS("MPI_Type_commit", Addr(Id("ty"))),
		IfElse(Eq(Id("rank"), I(0)),
			[]Stmt{CallS("MPI_Send", Id("buf"), I(2), Id("ty"), I(1), I(6), world())},
			[]Stmt{CallS("MPI_Recv", Id("buf"), I(2), Id("ty"), I(0), I(6), world(), Id("MPI_STATUS_IGNORE"))}),
		CallS("MPI_Type_free", Addr(Id("ty"))),
		Finalize(),
	)
	res := runProg(t, MainProgram("dtype", stmts...), 2)
	if res.Erroneous() {
		t.Fatalf("correct derived-type flow flagged: %+v", res.Violations)
	}
}

func TestUncommittedDatatypeFlagged(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("buf", 8, Int),
		Decl("ty", Datatype, nil),
		CallS("MPI_Type_contiguous", I(2), Id("MPI_INT"), Addr(Id("ty"))),
		// no commit
		If(Eq(Id("rank"), I(0)),
			CallS("MPI_Send", Id("buf"), I(2), Id("ty"), I(1), I(6), world())),
		If(Eq(Id("rank"), I(1)),
			CallS("MPI_Recv", Id("buf"), I(2), Id("ty"), I(0), I(6), world(), Id("MPI_STATUS_IGNORE"))),
		CallS("MPI_Type_free", Addr(Id("ty"))),
		Finalize(),
	)
	res := runProg(t, MainProgram("uncommitted", stmts...), 2)
	if !res.Has(VInvalidParam) {
		t.Fatalf("uncommitted datatype not flagged: %+v", res.Violations)
	}
}

func TestWinLockUnlockPassive(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("wmem", 4, Int),
		DeclArr("local", 4, Int),
		Decl("win", Win, nil),
		CallS("MPI_Win_create", Id("wmem"), I(16), I(4), Id("MPI_INFO_NULL"), world(), Addr(Id("win"))),
		If(Eq(Id("rank"), I(0)),
			Assign(Idx(Id("local"), I(0)), I(5)),
			CallS("MPI_Win_lock", Id("MPI_LOCK_EXCLUSIVE"), I(1), I(0), Id("win")),
			CallS("MPI_Put", Id("local"), I(1), Id("MPI_INT"), I(1), I(0), I(1), Id("MPI_INT"), Id("win")),
			CallS("MPI_Win_unlock", I(1), Id("win"))),
		CallS("MPI_Barrier", world()),
		If(Eq(Id("rank"), I(1)), CallS("printf", S("v=%d\n"), Idx(Id("wmem"), I(0)))),
		CallS("MPI_Win_free", Addr(Id("win"))),
		Finalize(),
	)
	res := runProg(t, MainProgram("passive", stmts...), 2)
	if res.Erroneous() {
		t.Fatalf("passive-target RMA flagged: %+v", res.Violations)
	}
	if !strings.Contains(res.Output, "v=5") {
		t.Errorf("output %q, want v=5", res.Output)
	}
}

func TestAccumulateSums(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("wmem", 1, Int),
		DeclArr("one", 1, Int),
		Decl("win", Win, nil),
		Assign(Idx(Id("one"), I(0)), I(1)),
		CallS("MPI_Win_create", Id("wmem"), I(4), I(4), Id("MPI_INFO_NULL"), world(), Addr(Id("win"))),
		CallS("MPI_Win_fence", I(0), Id("win")),
		If(Ne(Id("rank"), I(0)),
			CallS("MPI_Accumulate", Id("one"), I(1), Id("MPI_INT"), I(0), I(0), I(1), Id("MPI_INT"), Id("MPI_SUM"), Id("win"))),
		CallS("MPI_Win_fence", I(0), Id("win")),
		If(Eq(Id("rank"), I(0)), CallS("printf", S("acc=%d\n"), Idx(Id("wmem"), I(0)))),
		CallS("MPI_Win_free", Addr(Id("win"))),
		Finalize(),
	)
	res := runProg(t, MainProgram("accum", stmts...), 3)
	// Two ranks accumulate into rank 0: value 2. Concurrent accumulates
	// with the same op are legal MPI; our conservative detector may still
	// note the overlap, so only check the arithmetic and deadlock-freedom.
	if res.Deadlock || res.Crashed {
		t.Fatalf("accumulate failed: deadlock=%v crash=%v", res.Deadlock, res.Crashed)
	}
	if !strings.Contains(res.Output, "acc=2") {
		t.Errorf("output %q, want acc=2", res.Output)
	}
}

func TestTestCompletesRequest(t *testing.T) {
	stmts := MPIBoilerplate()
	stmts = append(stmts,
		DeclArr("buf", 2, Int),
		Decl("req", Request, nil),
		Decl("flag", Int, I(0)),
		IfElse(Eq(Id("rank"), I(0)),
			[]Stmt{
				CallS("MPI_Irecv", Id("buf"), I(2), Id("MPI_INT"), I(1), I(2), world(), Addr(Id("req"))),
				While(Eq(Id("flag"), I(0)),
					CallS("MPI_Test", Addr(Id("req")), Addr(Id("flag")), Id("MPI_STATUS_IGNORE"))),
			},
			[]Stmt{CallS("MPI_Send", Id("buf"), I(2), Id("MPI_INT"), I(0), I(2), world())}),
		Finalize(),
	)
	// MPI_Test never blocks; the while loop spins until the send lands.
	// Deterministic scheduling delivers the send during rank 1's turn, so
	// the loop terminates; a bounded step budget guards regressions.
	mod := irgen.MustLower(MainProgram("test", stmts...))
	res := Run(mod, Config{Ranks: 2, MaxSteps: 500_000})
	if res.Deadlock || res.Timeout {
		t.Fatalf("test-loop did not complete: deadlock=%v timeout=%v", res.Deadlock, res.Timeout)
	}
	if res.Has(VResourceLeak) {
		t.Fatalf("completed request reported as leak: %+v", res.Violations)
	}
}
