package mpisim

import (
	"fmt"

	"mpidetect/internal/mpi"
)

// dtSizeKnown returns the byte size of one element of dt and whether
// that size is actually known. A derived handle that was never created
// in this world (a garbage constant, an uninitialised variable) has no
// defensible size; callers must not guess one, or they both mask real
// truncation mismatches and fabricate spurious ones.
func (rt *Runtime) dtSizeKnown(dt mpi.Datatype) (int, bool) {
	if int64(dt) >= 100 {
		sz, ok := rt.derivedSizes[int64(dt)]
		return sz, ok
	}
	return dt.Size(), true
}

// dtSize is dtSizeKnown for callers that need a size for data movement:
// an unknown derived handle reports a use-of-unknown-datatype violation
// (once per run) and contributes zero bytes, rather than the old silent
// 4-byte guess that let size-based checks pass or misfire.
func (rt *Runtime) dtSize(dt mpi.Datatype) int {
	sz, ok := rt.dtSizeKnown(dt)
	if !ok {
		rt.reportOnce(Violation{Kind: VInvalidParam, Rank: -1, Op: mpi.OpNone,
			Msg: fmt.Sprintf("use of unknown or freed derived datatype %d", int64(dt))})
		return 0
	}
	return sz
}

// dtypeSizes records the size of a derived datatype.
func (rt *Runtime) dtypeSizes(id int64, size int) {
	if rt.derivedSizes == nil {
		rt.derivedSizes = map[int64]int{}
	}
	rt.derivedSizes[id] = size
}

// dtCompatible extends mpi.Datatype.Compatible to derived handles. MPI
// matches by *type signature*, not by handle identity (handles are
// process-local), so two derived types match when their signatures — here
// approximated by their byte sizes — agree.
func (rt *Runtime) dtCompatible(a, b mpi.Datatype) bool {
	aDerived, bDerived := int64(a) >= 100, int64(b) >= 100
	switch {
	case aDerived && bDerived:
		return rt.dtSize(a) == rt.dtSize(b)
	case aDerived != bDerived:
		return false
	}
	return a.Compatible(b)
}

// dtValid reports whether dt is a usable datatype for communication: a
// basic type or a committed derived type.
func (rt *Runtime) dtValid(dt mpi.Datatype) (ok, committed bool) {
	v := int64(dt)
	if v >= 100 {
		c, exists := rt.dtypes[v]
		return exists, c
	}
	return dt >= mpi.DTInt && dt <= mpi.DTDerived, true
}

// validateArgs performs the call-site argument validation an MPI
// implementation with full error checking performs. It records violations
// but never aborts the call (matching tools that keep running).
func (rt *Runtime) validateArgs(p *proc, op mpi.Op, args []RV) {
	sig, ok := mpi.SignatureOf(op)
	if !ok {
		return
	}
	bad := func(msg string) {
		rt.report(Violation{Kind: VInvalidParam, Rank: p.rank, Op: op, Msg: msg})
	}
	arg := func(i int) (RV, bool) {
		if i < 0 || i >= len(args) {
			return RV{}, false
		}
		return args[i], true
	}
	if v, ok := arg(sig.Arg.Count); ok {
		if v.I < 0 {
			bad(fmt.Sprintf("negative count %d", v.I))
		}
	}
	if v, ok := arg(sig.Arg.Datatype); ok && op != mpi.OpTypeContiguous &&
		op != mpi.OpTypeCommit && op != mpi.OpTypeFree && op != mpi.OpGetCount {
		valid, committed := rt.dtValid(mpi.Datatype(v.I))
		switch {
		case !valid:
			bad(fmt.Sprintf("invalid datatype %d", v.I))
		case !committed:
			bad("use of an uncommitted derived datatype")
		}
	}
	if v, ok := arg(sig.Arg.Tag); ok {
		isRecv := op == mpi.OpRecv || op == mpi.OpIrecv || op == mpi.OpRecvInit
		switch {
		case v.I == mpi.AnyTag && !isRecv:
			bad("MPI_ANY_TAG used on a send")
		case v.I != mpi.AnyTag && (v.I < 0 || v.I > mpi.TagUB):
			bad(fmt.Sprintf("tag %d out of range", v.I))
		}
	}
	if v, ok := arg(sig.Arg.Comm); ok {
		if _, known := rt.comms[v.I]; !known {
			bad(fmt.Sprintf("invalid communicator %d", v.I))
		}
	}
	if v, ok := arg(sig.Arg.Root); ok {
		if v.I < 0 || v.I >= int64(rt.size) {
			bad(fmt.Sprintf("invalid root %d", v.I))
		}
	}
	if v, ok := arg(sig.Arg.RedOp); ok {
		if v.I < int64(mpi.ROSum) || v.I > int64(mpi.ROBor) {
			bad(fmt.Sprintf("invalid reduction operator %d", v.I))
		}
	}
	if v, ok := arg(sig.Arg.Buf); ok {
		if v.P == nil {
			if c, okc := arg(sig.Arg.Count); okc && c.I > 0 &&
				op != mpi.OpCommRank && op != mpi.OpCommSize {
				bad("null buffer with nonzero count")
			}
		}
	}
	// Sends must name a concrete destination.
	switch op {
	case mpi.OpSend, mpi.OpSsend, mpi.OpBsend, mpi.OpRsend,
		mpi.OpIsend, mpi.OpIssend, mpi.OpSendInit:
		if v, ok := arg(sig.Arg.Peer); ok && v.I == mpi.AnySource {
			bad("MPI_ANY_SOURCE used as a send destination")
		}
	}
	// Receives accept wildcards but not other negatives.
	switch op {
	case mpi.OpRecv, mpi.OpIrecv, mpi.OpRecvInit:
		if v, ok := arg(sig.Arg.Peer); ok && v.I < 0 &&
			v.I != mpi.AnySource && v.I != mpi.ProcNull {
			bad(fmt.Sprintf("invalid source rank %d", v.I))
		}
	}
}
