package mpisim

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"mpidetect/internal/ir"
	"mpidetect/internal/mpi"
)

// Config parameterises a simulated run.
type Config struct {
	Ranks      int   // number of MPI processes (default 2)
	MaxSteps   int64 // per-rank interpreter step budget (default 200k)
	EagerLimit int   // standard-send eager threshold in bytes (default 64)

	// WallBudget caps the wall-clock time of the whole run; 0 means no
	// cap. A tripped budget surfaces as Result.Timeout, exactly like the
	// per-rank step budget, so harness timeouts look the same whether the
	// program burned steps or real time.
	WallBudget time.Duration
}

func (c Config) withDefaults() Config {
	if c.Ranks <= 0 {
		c.Ranks = 2
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 200_000
	}
	if c.EagerLimit <= 0 {
		c.EagerLimit = 64
	}
	return c
}

// proc states.
const (
	pBlocked = iota
	pRunning
	pDone
	pFailed
)

// alwaysRun is the canRun of a proc that only waits for its turn.
func alwaysRun() bool { return true }

type proc struct {
	rank      int
	mach      *Machine
	rt        *Runtime
	state     int
	canRun    func() bool
	blockedOn mpi.Op
	err       *runErr

	// cond is the wait condition of the current block(); canRunBlocked is
	// the prebound "deadlock or cond" predicate, built once per proc so
	// blocking does not allocate a fresh closure every time.
	cond          func() bool
	canRunBlocked func() bool

	// sem is the rank's turn token (capacity 1). Whoever holds the
	// scheduler turn hands it over by sending here; the rank parks on a
	// receive. One park/unpark per scheduler turn — there is no separate
	// scheduler goroutine to round-trip through.
	sem chan struct{}

	inited    bool
	finalized bool

	// resources owned by the rank
	activeRegions []region
	ownedComms    []int64
	ownedTypes    []int64
}

// reset prepares a pooled proc for a fresh run.
func (p *proc) reset(rt *Runtime, maxSteps int64) {
	p.rt = rt
	p.state = pBlocked
	p.canRun = alwaysRun
	p.cond = nil
	p.blockedOn = mpi.OpNone
	p.err = nil
	p.inited, p.finalized = false, false
	p.activeRegions = p.activeRegions[:0]
	p.ownedComms = p.ownedComms[:0]
	p.ownedTypes = p.ownedTypes[:0]
	select { // drop any stale token, defensively
	case <-p.sem:
	default:
	}
	p.mach.reset(rt, maxSteps)
}

type region struct {
	obj    *MemObj
	off    int
	length int
	write  bool // the async op writes this buffer (recv-like)
	reqID  int64
	op     mpi.Op
	warned bool
}

// Runtime is the shared MPI world state of one simulated run. Only one
// rank executes at a time (cooperative scheduling), so no locking is
// needed and runs are deterministic.
type Runtime struct {
	cfg   Config
	size  int
	procs []*proc
	ar    *runState

	// Cooperative cancellation: ctx is the caller's context, deadline the
	// wall-clock budget, stopErr the latched abort reason. Only the
	// goroutine currently holding the scheduler turn touches stopErr, and
	// turns are handed over through the per-proc semaphores, so no
	// locking is needed (same discipline as every other Runtime field).
	ctx      context.Context
	deadline time.Time
	stopErr  *runErr

	// Cooperative scheduler state: the round-robin cursor plus the
	// per-round progress/liveness flags the old scheduler loop kept on
	// its stack. Whoever yields the turn advances this state inline.
	schedIdx      int
	roundAlive    bool
	roundProgress bool
	aborting      bool
	abortIdx      int
	mainSem       chan struct{} // wakes the caller when the run completes

	violations []Violation
	deadlock   bool

	sends []*message
	recvs []*recvPost
	colls []*collSlot
	reqs  map[int64]*request
	wins  map[int64]*window
	comms map[int64]int // comm handle -> size

	nextReq      int64
	nextWin      int64
	nextComm     int64
	nextType     int64
	dtypes       map[int64]bool // derived datatype committed state
	derivedSizes map[int64]int  // derived datatype element sizes

	msgLog    []msgRecord
	wildRecvs []wildRecord

	finalizeCount int
}

type msgRecord struct {
	src, dst, tag int
	comm          int64
}

type wildRecord struct {
	dst, tag int
	comm     int64
}

// runtimePool recycles Runtime shells (and their interior maps/queues)
// across runs; every field is re-initialised by RunCtx or cleared by
// putRuntime, and the golden verdict corpus pins that a pooled Runtime
// behaves identically to a fresh one.
var runtimePool = sync.Pool{}

func getRuntime() *Runtime {
	if v := runtimePool.Get(); v != nil {
		return v.(*Runtime)
	}
	return &Runtime{
		reqs:   map[int64]*request{},
		wins:   map[int64]*window{},
		comms:  map[int64]int{},
		dtypes: map[int64]bool{},
	}
}

// clearSlice zeroes a slice's elements (dropping references) and
// truncates it for reuse.
func clearSlice[T any](s []T) []T {
	clear(s)
	return s[:0]
}

// putRuntime scrubs every run-scoped field and recycles the shell. The
// violations slice is deliberately dropped, not reused: it escaped into
// the caller's Result.
func putRuntime(rt *Runtime) {
	clear(rt.reqs)
	clear(rt.wins)
	clear(rt.comms)
	clear(rt.dtypes)
	if rt.derivedSizes != nil {
		clear(rt.derivedSizes)
	}
	rt.sends = clearSlice(rt.sends)
	rt.recvs = clearSlice(rt.recvs)
	rt.colls = clearSlice(rt.colls)
	rt.msgLog = rt.msgLog[:0]
	rt.wildRecvs = rt.wildRecvs[:0]
	rt.violations = nil
	rt.cfg = Config{}
	rt.size = 0
	rt.procs = nil
	rt.ar = nil
	rt.ctx = nil
	rt.deadline = time.Time{}
	rt.stopErr = nil
	rt.schedIdx, rt.roundAlive, rt.roundProgress = 0, false, false
	rt.aborting, rt.abortIdx = false, 0
	rt.mainSem = nil
	rt.deadlock = false
	rt.nextReq, rt.nextWin, rt.nextComm, rt.nextType = 0, 0, 0, 0
	rt.finalizeCount = 0
	runtimePool.Put(rt)
}

// Run simulates the module with the given configuration, compiling it
// first. Callers that simulate the same module repeatedly should Compile
// once and call Program.Run.
func Run(mod *ir.Module, cfg Config) *Result {
	return Compile(mod).RunCtx(context.Background(), cfg)
}

// RunCtx is Run under a caller context; see Program.RunCtx.
func RunCtx(ctx context.Context, mod *ir.Module, cfg Config) *Result {
	return Compile(mod).RunCtx(ctx, cfg)
}

// Run simulates the compiled program.
func (p *Program) Run(cfg Config) *Result {
	return p.RunCtx(context.Background(), cfg)
}

// RunCtx simulates the compiled program under a caller context:
// cancelling ctx (or exceeding cfg.WallBudget) aborts the run
// cooperatively — the turn stops being handed out, every per-rank
// goroutine is resumed so it can observe the stop condition and exit,
// and the partial result is returned with Result.Canceled (ctx) or
// Result.Timeout (budget) set. RunCtx never leaks the rank goroutines,
// whatever state the simulated program is in.
func (p *Program) RunCtx(ctx context.Context, cfg Config) *Result {
	cfg = cfg.withDefaults()
	rs := p.acquire(cfg.Ranks)
	rt := getRuntime()
	rt.cfg = cfg
	rt.ctx = ctx
	rt.ar = rs
	rt.size = cfg.Ranks
	rt.procs = rs.procs[:cfg.Ranks]
	rt.mainSem = rs.mainSem
	rt.comms[mpi.CommWorld] = cfg.Ranks
	rt.comms[mpi.CommSelf] = 1
	rt.nextReq, rt.nextWin, rt.nextComm, rt.nextType = 1000, 5000, 200, 100
	if cfg.WallBudget > 0 {
		rt.deadline = time.Now().Add(cfg.WallBudget)
	}
	for _, pr := range rt.procs {
		pr.reset(rt, cfg.MaxSteps)
	}
	for _, pr := range rt.procs {
		go runRank(rt, pr)
	}
	// Donate the turn; it comes back through mainSem when the run is over
	// and every rank goroutine has passed its final handoff.
	rt.giveTurn()
	<-rt.mainSem
	res := rt.collect()
	p.release(rs)
	putRuntime(rt)
	return res
}

// runRank is one rank's goroutine: wait for the first turn, execute the
// program, hand the turn on. Any interpreter panic becomes a crash
// verdict so a malformed program can never take down the host process.
func runRank(rt *Runtime, p *proc) {
	<-p.sem
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = crashf("interpreter panic: %v", r)
			}
		}()
		return p.mach.run()
	}()
	if err != nil {
		if re, ok := err.(*runErr); ok {
			p.err = re
		} else {
			p.err = &runErr{kind: "crash", msg: err.Error()}
		}
		p.state = pFailed
	} else {
		p.state = pDone
	}
	rt.giveTurn()
}

// stopNow reports (and latches) whether the run must abort: the caller's
// context expired or the wall-clock budget ran out. It is only ever
// called by the goroutine currently holding the scheduler turn, so the
// latch needs no lock.
func (rt *Runtime) stopNow() *runErr {
	if rt.stopErr != nil {
		return rt.stopErr
	}
	if err := rt.ctx.Err(); err != nil {
		rt.stopErr = &runErr{kind: "canceled", msg: "run canceled: " + err.Error()}
	} else if !rt.deadline.IsZero() && time.Now().After(rt.deadline) {
		rt.stopErr = &runErr{kind: "timeout", msg: "wall-clock budget exceeded"}
	}
	return rt.stopErr
}

// giveTurn relinquishes the scheduler turn: the caller (a rank that just
// blocked, yielded or exited — or the main goroutine starting the run)
// advances the round-robin scan inline and wakes exactly one party: the
// next runnable rank, or the main goroutine when the run is over. This
// replaces the old scheduler goroutine's resume/yielded channel pair —
// a turn now costs one park/unpark instead of two channel round-trips.
func (rt *Runtime) giveTurn() {
	if rt.aborting {
		rt.abortNext()
		return
	}
	for {
		if rt.schedIdx == 0 {
			// Start of a round: the once-per-round stop check the old
			// scheduler loop ran at the top of each iteration.
			if rt.stopNow() != nil {
				rt.beginAbort()
				return
			}
		}
		for rt.schedIdx < len(rt.procs) {
			p := rt.procs[rt.schedIdx]
			rt.schedIdx++
			if p.state != pBlocked {
				continue
			}
			rt.roundAlive = true
			if p.canRun == nil || p.canRun() {
				rt.roundProgress = true
				p.state = pRunning
				p.sem <- struct{}{}
				return
			}
		}
		// End of round.
		if !rt.roundAlive {
			rt.mainSem <- struct{}{}
			return
		}
		if !rt.roundProgress {
			// Global stall: genuine deadlock (every live rank blocked on a
			// condition no live rank can satisfy).
			rt.deadlock = true
			blockedOps := []string{}
			for _, p := range rt.procs {
				if p.state == pBlocked {
					blockedOps = append(blockedOps, fmt.Sprintf("rank %d in %s", p.rank, p.blockedOn))
				}
			}
			rt.report(Violation{Kind: VDeadlock, Rank: -1, Op: mpi.OpNone,
				Msg: "no progress possible: " + strings.Join(blockedOps, ", ")})
			rt.beginAbort()
			return
		}
		rt.schedIdx, rt.roundAlive, rt.roundProgress = 0, false, false
	}
}

// beginAbort starts resuming every still-blocked rank, in rank order, so
// its goroutine observes the abort condition (deadlock or stop) and
// exits; without this the per-rank goroutines would leak, parked on
// their turn semaphores.
func (rt *Runtime) beginAbort() {
	rt.aborting = true
	rt.abortIdx = 0
	rt.abortNext()
}

// abortNext wakes the next blocked rank of the abort sweep; each woken
// rank runs to termination (no rank parks again once the run is
// aborting) and hands the turn back here. When the sweep is done, the
// run is over.
func (rt *Runtime) abortNext() {
	for rt.abortIdx < len(rt.procs) {
		p := rt.procs[rt.abortIdx]
		rt.abortIdx++
		if p.state == pBlocked {
			p.state = pRunning
			p.sem <- struct{}{}
			return
		}
	}
	rt.mainSem <- struct{}{}
}

// block suspends the calling rank until cond() holds (or a deadlock is
// declared). It must only be called from a rank's own goroutine, during
// its turn.
func (rt *Runtime) block(p *proc, op mpi.Op, cond func() bool) error {
	for !cond() {
		if rt.deadlock {
			return &runErr{kind: "deadlock", msg: "blocked in " + op.String()}
		}
		if se := rt.stopNow(); se != nil {
			return se
		}
		p.blockedOn = op
		p.state = pBlocked
		p.cond = cond
		p.canRun = p.canRunBlocked
		rt.giveTurn()
		<-p.sem
		p.state = pRunning
	}
	return nil
}

// yieldTurn hands the scheduler one round without a blocking condition:
// used by MPI_Test so that spin-loops polling a request let peers progress.
func (rt *Runtime) yieldTurn(p *proc) {
	// Once the run is aborting nobody will hand the turn back: keep it
	// and let the interpreter's step check unwind this rank.
	if rt.deadlock || rt.stopNow() != nil {
		return
	}
	p.blockedOn = mpi.OpTest
	p.state = pBlocked
	p.canRun = alwaysRun
	rt.giveTurn()
	<-p.sem
	p.state = pRunning
}

func (rt *Runtime) report(v Violation) {
	rt.violations = append(rt.violations, v)
}

// reportOnce records v only if no violation of the same kind+rank exists.
func (rt *Runtime) reportOnce(v Violation) {
	for _, e := range rt.violations {
		if e.Kind == v.Kind && e.Rank == v.Rank && e.Op == v.Op {
			return
		}
	}
	rt.report(v)
}

func (rt *Runtime) collect() *Result {
	res := &Result{Deadlock: rt.deadlock}
	if rt.stopErr != nil {
		switch rt.stopErr.kind {
		case "timeout":
			res.Timeout = true
			res.WallTimeout = true
		case "canceled":
			res.Canceled = true
		}
	}
	var out strings.Builder
	for _, p := range rt.procs {
		out.Write(p.mach.out)
		res.Steps += p.mach.steps
		if p.mach.outTruncated {
			res.OutputTruncated = true
		}
		if p.err != nil {
			switch p.err.kind {
			case "timeout":
				res.Timeout = true
			case "canceled":
				res.Canceled = true
			case "crash":
				res.Crashed = true
				if res.CrashMsg == "" {
					res.CrashMsg = fmt.Sprintf("rank %d: %s", p.rank, p.err.msg)
				}
			}
		}
		if p.inited && !p.finalized && p.err == nil && !rt.deadlock && rt.stopErr == nil {
			rt.report(Violation{Kind: VCallOrdering, Rank: p.rank, Op: mpi.OpFinalize,
				Msg: "MPI_Finalize never called"})
		}
	}
	rt.analyzeRaces()
	// A canceled run was cut short by the harness, not the program: its
	// half-finished requests and unmatched sends are not leaks.
	if !res.Canceled {
		rt.finalLeakCheck()
	}
	res.Output = out.String()
	res.Violations = rt.violations
	return res
}

// analyzeRaces flags wildcard receives for which the message log shows two
// or more candidate senders — the dynamic signature of a message race.
func (rt *Runtime) analyzeRaces() {
	for _, w := range rt.wildRecvs {
		srcs := map[int]bool{}
		for _, m := range rt.msgLog {
			if m.dst == w.dst && m.comm == w.comm &&
				(w.tag == mpi.AnyTag || w.tag == m.tag) {
				srcs[m.src] = true
			}
		}
		if len(srcs) > 1 {
			rt.reportOnce(Violation{Kind: VMessageRace, Rank: w.dst, Op: mpi.OpRecv,
				Msg: fmt.Sprintf("wildcard receive has %d candidate senders", len(srcs))})
			return
		}
	}
}

// finalLeakCheck reports unfreed resources and unmatched communication
// after the run has terminated.
func (rt *Runtime) finalLeakCheck() {
	ids := make([]int64, 0, len(rt.reqs))
	for id := range rt.reqs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r := rt.reqs[id]
		if r.freed {
			continue
		}
		if r.persistent || !r.completedAndWaited {
			rt.reportOnce(Violation{Kind: VResourceLeak, Rank: r.owner, Op: r.op,
				Msg: "request never completed or freed"})
		}
	}
	winIDs := make([]int64, 0, len(rt.wins))
	for id := range rt.wins {
		winIDs = append(winIDs, id)
	}
	sort.Slice(winIDs, func(i, j int) bool { return winIDs[i] < winIDs[j] })
	for _, id := range winIDs {
		if w := rt.wins[id]; !w.freed {
			rt.reportOnce(Violation{Kind: VResourceLeak, Rank: w.owner, Op: mpi.OpWinCreate,
				Msg: "window never freed"})
		}
	}
	for id, committed := range rt.dtypes {
		_ = id
		if committed {
			rt.reportOnce(Violation{Kind: VResourceLeak, Rank: -1, Op: mpi.OpTypeCommit,
				Msg: "derived datatype never freed"})
		}
	}
	for _, m := range rt.sends {
		if !m.matched {
			rt.reportOnce(Violation{Kind: VCallOrdering, Rank: m.src, Op: mpi.OpSend,
				Msg: fmt.Sprintf("send to rank %d tag %d never received", m.dst, m.tag)})
		}
	}
	for _, r := range rt.recvs {
		if !r.completed {
			rt.reportOnce(Violation{Kind: VCallOrdering, Rank: r.dst, Op: mpi.OpRecv,
				Msg: "receive never matched"})
		}
	}
}

// dispatch routes an MPI call to its handler. It is the single entry point
// the interpreter uses for MPI_* calls.
func (rt *Runtime) dispatch(m *Machine, op mpi.Op, args []RV, in *ir.Instr) (RV, error) {
	p := m.proc
	if op == mpi.OpInit {
		if p.inited {
			rt.report(Violation{Kind: VCallOrdering, Rank: p.rank, Op: op, Msg: "MPI_Init called twice"})
		}
		p.inited = true
		return RV{I: mpi.Success}, nil
	}
	if !p.inited {
		rt.report(Violation{Kind: VCallOrdering, Rank: p.rank, Op: op,
			Msg: op.String() + " before MPI_Init"})
	}
	if p.finalized {
		rt.report(Violation{Kind: VCallOrdering, Rank: p.rank, Op: op,
			Msg: op.String() + " after MPI_Finalize"})
	}
	rt.validateArgs(p, op, args)
	switch op {
	case mpi.OpFinalize:
		return rt.doFinalize(p)
	case mpi.OpCommRank, mpi.OpCommSize:
		return rt.doRankSize(p, op, args)
	case mpi.OpAbort:
		return RV{}, &runErr{kind: "exit", msg: "MPI_Abort"}
	case mpi.OpSend, mpi.OpSsend, mpi.OpBsend, mpi.OpRsend:
		return rt.doSend(p, op, args)
	case mpi.OpRecv:
		return rt.doRecv(p, op, args)
	case mpi.OpSendrecv:
		return rt.doSendrecv(p, args)
	case mpi.OpIsend, mpi.OpIssend, mpi.OpIrecv, mpi.OpSendInit, mpi.OpRecvInit:
		return rt.doImmediate(p, op, args)
	case mpi.OpWait:
		return rt.doWait(p, args)
	case mpi.OpWaitall:
		return rt.doWaitall(p, args)
	case mpi.OpTest:
		return rt.doTest(p, args)
	case mpi.OpRequestFree:
		return rt.doRequestFree(p, args)
	case mpi.OpStart, mpi.OpStartall:
		return rt.doStart(p, op, args)
	case mpi.OpGetCount:
		return rt.doGetCount(p, args)
	case mpi.OpBarrier, mpi.OpBcast, mpi.OpReduce, mpi.OpAllreduce,
		mpi.OpGather, mpi.OpScatter, mpi.OpAllgather, mpi.OpAlltoall,
		mpi.OpExscan, mpi.OpScan:
		return rt.doCollective(p, op, args)
	case mpi.OpIbarrier, mpi.OpIbcast, mpi.OpIallreduce:
		return rt.doICollective(p, op, args)
	case mpi.OpWinCreate:
		return rt.doWinCreate(p, args)
	case mpi.OpWinFree:
		return rt.doWinFree(p, args)
	case mpi.OpWinFence:
		return rt.doWinFence(p, args)
	case mpi.OpPut, mpi.OpGet, mpi.OpAccumulate:
		return rt.doRMAAccess(p, op, args)
	case mpi.OpWinLock, mpi.OpWinUnlock:
		return rt.doWinLock(p, op, args)
	case mpi.OpCommSplit, mpi.OpCommDup:
		return rt.doCommCreate(p, op, args)
	case mpi.OpCommFree:
		return rt.doCommFree(p, args)
	case mpi.OpTypeContiguous:
		return rt.doTypeContiguous(p, args)
	case mpi.OpTypeCommit, mpi.OpTypeFree:
		return rt.doTypeCommitFree(p, op, args)
	}
	return RV{I: mpi.Success}, nil
}

func (rt *Runtime) doFinalize(p *proc) (RV, error) {
	if p.finalized {
		rt.report(Violation{Kind: VCallOrdering, Rank: p.rank, Op: mpi.OpFinalize,
			Msg: "MPI_Finalize called twice"})
		return RV{I: mpi.Success}, nil
	}
	p.finalized = true
	// Leak checks local to the rank.
	for _, reg := range p.activeRegions {
		rt.reportOnce(Violation{Kind: VResourceLeak, Rank: p.rank, Op: reg.op,
			Msg: "nonblocking operation still pending at MPI_Finalize"})
	}
	rt.finalizeCount++
	return RV{I: mpi.Success}, nil
}

func (rt *Runtime) doRankSize(p *proc, op mpi.Op, args []RV) (RV, error) {
	if len(args) < 2 || args[1].P == nil {
		rt.report(Violation{Kind: VInvalidParam, Rank: p.rank, Op: op, Msg: "null output pointer"})
		return RV{I: mpi.ErrOther}, nil
	}
	val := int64(p.rank)
	if op == mpi.OpCommSize {
		size, ok := rt.comms[args[0].I]
		if !ok {
			size = rt.size
		}
		val = int64(size)
	}
	if err := args[1].P.Obj.store(args[1].P.Off, ir.I32, RV{I: val}); err != nil {
		return RV{}, err
	}
	return RV{I: mpi.Success}, nil
}

// checkLocalAccess is invoked by the interpreter on every load/store so the
// runtime can detect local-concurrency violations (touching a buffer that a
// pending nonblocking operation owns) and RMA local accesses during open
// epochs. The common case — no pending nonblocking operation and no RMA
// window anywhere — must cost one branch, since this guards every memory
// access the simulated program makes.
func (rt *Runtime) checkLocalAccess(rank int, ptr *Ptr, size int, isWrite bool, in *ir.Instr) {
	p := rt.procs[rank]
	if len(p.activeRegions) == 0 && len(rt.wins) == 0 {
		return
	}
	for i := range p.activeRegions {
		reg := &p.activeRegions[i]
		if reg.warned || reg.obj != ptr.Obj {
			continue
		}
		if ptr.Off+size <= reg.off || reg.off+reg.length <= ptr.Off {
			continue
		}
		// Reading a send buffer is legal; everything else races.
		if !isWrite && !reg.write {
			continue
		}
		reg.warned = true
		rt.report(Violation{Kind: VLocalConc, Rank: rank, Op: reg.op,
			Msg: "buffer accessed while a nonblocking operation is pending"})
	}
	rt.checkRMALocalAccess(rank, ptr, size, isWrite)
}
