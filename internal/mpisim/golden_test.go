package mpisim

import (
	"encoding/gob"
	"flag"
	"fmt"
	"os"
	"reflect"
	"testing"

	"mpidetect/internal/dataset"
	"mpidetect/internal/irgen"
)

// updateSimGolden regenerates testdata/simverdicts_v1.gob from the
// current engine. The committed artifact was produced by the
// pre-compilation (map-frame) interpreter; the test pins every later
// engine against it bit-for-bit, so regenerate only when a deliberate,
// reviewed verdict change is being made.
var updateSimGolden = flag.Bool("update-sim-golden", false,
	"regenerate testdata/simverdicts_v1.gob with the current engine")

// goldenPath is the committed verdict-equivalence artifact.
const goldenPath = "testdata/simverdicts_v1.gob"

// goldenMaxSteps bounds each golden run. It is deliberately smaller than
// the production default so spin-heavy codes resolve quickly; both the
// generating engine and every engine under test use the same budget, so
// verdicts stay comparable.
const goldenMaxSteps = 50_000

// SimVerdict is one golden record: the complete observable outcome of
// simulating one dataset program at one world size.
type SimVerdict struct {
	Suite string
	Name  string
	Label string
	Ranks int

	CE bool // lowering failed; no run happened

	Deadlock   bool
	Timeout    bool
	Crashed    bool
	CrashMsg   string
	Violations []string
	Output     string
	Steps      int64
}

// goldenRanks are the world sizes every program is pinned at.
var goldenRanks = [...]int{2, 4, 8}

func goldenCorpus() []*dataset.Code {
	mbi := dataset.GenerateMBI(1)
	corr := dataset.GenerateCorrBench(1, false)
	out := make([]*dataset.Code, 0, len(mbi.Codes)+len(corr.Codes))
	out = append(out, mbi.Codes...)
	out = append(out, corr.Codes...)
	return out
}

// computeSimVerdicts runs the whole corpus through the current engine.
func computeSimVerdicts() []SimVerdict {
	var out []SimVerdict
	for _, c := range goldenCorpus() {
		mod, err := irgen.Lower(c.Prog)
		for _, ranks := range goldenRanks {
			v := SimVerdict{Suite: c.Suite.String(), Name: c.Name,
				Label: c.Label.String(), Ranks: ranks}
			if err != nil {
				v.CE = true
				out = append(out, v)
				continue
			}
			res := Run(mod, Config{Ranks: ranks, MaxSteps: goldenMaxSteps})
			v.Deadlock = res.Deadlock
			v.Timeout = res.Timeout
			v.Crashed = res.Crashed
			v.CrashMsg = res.CrashMsg
			for _, viol := range res.Violations {
				v.Violations = append(v.Violations, viol.String())
			}
			v.Output = res.Output
			v.Steps = res.Steps
			out = append(out, v)
		}
	}
	return out
}

// TestGoldenVerdictEquivalence pins the engine against the committed
// verdict corpus: every verdict, diagnostic, crash message, step count
// and printf byte must match the artifact exactly. This is the repo's
// bit-exact discipline applied to the simulator — performance work on
// the execution layer must never move a verdict.
func TestGoldenVerdictEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("golden corpus is slow; skipped under -short")
	}
	got := computeSimVerdicts()
	if *updateSimGolden {
		f, err := os.Create(goldenPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := gob.NewEncoder(f).Encode(got); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d verdicts to %s", len(got), goldenPath)
		return
	}
	f, err := os.Open(goldenPath)
	if err != nil {
		t.Fatalf("opening golden artifact (regenerate with -update-sim-golden): %v", err)
	}
	defer f.Close()
	var want []SimVerdict
	if err := gob.NewDecoder(f).Decode(&want); err != nil {
		t.Fatalf("decoding %s: %v", goldenPath, err)
	}
	if len(got) != len(want) {
		t.Fatalf("verdict count %d, golden has %d", len(got), len(want))
	}
	mismatches := 0
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			mismatches++
			if mismatches <= 5 {
				t.Errorf("verdict diverged for %s/%s@%d ranks:\n got: %s\nwant: %s",
					want[i].Suite, want[i].Name, want[i].Ranks,
					verdictString(got[i]), verdictString(want[i]))
			}
		}
	}
	if mismatches > 5 {
		t.Errorf("... and %d more mismatches", mismatches-5)
	}
}

func verdictString(v SimVerdict) string {
	return fmt.Sprintf("CE=%v deadlock=%v timeout=%v crashed=%v crash=%q steps=%d viols=%q out=%q",
		v.CE, v.Deadlock, v.Timeout, v.Crashed, v.CrashMsg, v.Steps, v.Violations, v.Output)
}

// TestGoldenDeterminism guards the artifact itself: two back-to-back
// runs of the full corpus must agree with each other, otherwise the
// golden comparison would be flaky by construction.
func TestGoldenDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("golden corpus is slow; skipped under -short")
	}
	a := computeSimVerdicts()
	b := computeSimVerdicts()
	if len(a) != len(b) {
		t.Fatalf("verdict counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("nondeterministic verdict for %s/%s@%d:\n  %s\n  %s",
				a[i].Suite, a[i].Name, a[i].Ranks, verdictString(a[i]), verdictString(b[i]))
		}
	}
}
