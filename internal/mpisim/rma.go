package mpisim

import (
	"fmt"

	"mpidetect/internal/ir"
	"mpidetect/internal/mpi"
)

// window is an RMA window: one memory region per rank of the communicator.
type window struct {
	id     int64
	owner  int
	comm   int64
	bases  []*Ptr
	sizes  []int
	freed  bool
	fences int
	open   bool        // a fence epoch is open
	locks  map[int]int // target rank -> locking rank + 1 (0 = unlocked)

	accesses []rmaAccess
}

type rmaAccess struct {
	origin int
	target int
	off    int
	length int
	write  bool
	op     mpi.Op
}

// doWinCreate is collective: every rank contributes its base/size; the
// completing rank mints the handle.
func (rt *Runtime) doWinCreate(p *proc, args []RV) (RV, error) {
	// base0, size1, dispunit2, info3, comm4, win5
	comm := args[4].I
	slot := rt.joinCollective(p, mpi.OpWinCreate, comm, args)
	if err := rt.block(p, mpi.OpWinCreate, func() bool { return slot.done }); err != nil {
		return RV{}, err
	}
	if slot.newComm == 0 {
		rt.nextWin++
		slot.newComm = rt.nextWin
		w := &window{id: slot.newComm, owner: p.rank, comm: comm,
			bases: make([]*Ptr, rt.size), sizes: make([]int, rt.size),
			locks: map[int]int{}}
		for rank, m := range slot.members {
			w.bases[rank] = m.args[0].P
			w.sizes[rank] = int(m.args[1].I)
		}
		rt.wins[w.id] = w
	}
	if ptr := args[5].P; ptr != nil {
		if err := ptr.Obj.store(ptr.Off, ir.I64, RV{I: slot.newComm}); err != nil {
			return RV{}, err
		}
	}
	return RV{I: mpi.Success}, nil
}

func (rt *Runtime) winByHandle(p *proc, op mpi.Op, h int64) *window {
	w, ok := rt.wins[h]
	if !ok {
		rt.report(Violation{Kind: VInvalidParam, Rank: p.rank, Op: op,
			Msg: fmt.Sprintf("invalid window handle %d", h)})
		return nil
	}
	if w.freed {
		rt.report(Violation{Kind: VEpochLife, Rank: p.rank, Op: op, Msg: "operation on freed window"})
		return nil
	}
	return w
}

func (rt *Runtime) doWinFree(p *proc, args []RV) (RV, error) {
	ptr := args[0].P
	if ptr == nil {
		rt.report(Violation{Kind: VInvalidParam, Rank: p.rank, Op: mpi.OpWinFree, Msg: "null window pointer"})
		return RV{I: mpi.ErrOther}, nil
	}
	hv, err := ptr.Obj.load(ptr.Off, ir.I64)
	if err != nil {
		return RV{}, err
	}
	w := rt.winByHandle(p, mpi.OpWinFree, hv.I)
	if w == nil {
		return RV{I: mpi.ErrOther}, nil
	}
	if w.open {
		rt.reportOnce(Violation{Kind: VEpochLife, Rank: p.rank, Op: mpi.OpWinFree,
			Msg: "window freed while an epoch is open"})
	}
	slot := rt.joinCollective(p, mpi.OpWinFree, w.comm, args)
	if err := rt.block(p, mpi.OpWinFree, func() bool { return slot.done }); err != nil {
		return RV{}, err
	}
	w.freed = true
	_ = ptr.Obj.store(ptr.Off, ir.I64, RV{I: 0})
	return RV{I: mpi.Success}, nil
}

func (rt *Runtime) doWinFence(p *proc, args []RV) (RV, error) {
	w := rt.winByHandle(p, mpi.OpWinFence, args[1].I)
	if w == nil {
		return RV{I: mpi.ErrOther}, nil
	}
	slot := rt.joinCollective(p, mpi.OpWinFence, w.comm, args)
	if err := rt.block(p, mpi.OpWinFence, func() bool { return slot.done }); err != nil {
		return RV{}, err
	}
	// The first rank out of the fence toggles the epoch.
	if slot.newComm == 0 {
		slot.newComm = 1
		w.fences++
		w.open = !w.open
		if !w.open {
			w.accesses = w.accesses[:0] // epoch closed: conflicts reset
		}
	}
	return RV{I: mpi.Success}, nil
}

// doRMAAccess implements Put / Get / Accumulate.
func (rt *Runtime) doRMAAccess(p *proc, op mpi.Op, args []RV) (RV, error) {
	// origin0, count1, dt2, target3, disp4, tcount5, tdt6, [op7,] win
	winIdx := 7
	if op == mpi.OpAccumulate {
		winIdx = 8
	}
	w := rt.winByHandle(p, op, args[winIdx].I)
	if w == nil {
		return RV{I: mpi.ErrOther}, nil
	}
	target := int(args[3].I)
	if target < 0 || target >= rt.size {
		rt.report(Violation{Kind: VInvalidParam, Rank: p.rank, Op: op,
			Msg: fmt.Sprintf("invalid target rank %d", target)})
		return RV{I: mpi.ErrOther}, nil
	}
	locked := w.locks[target] == p.rank+1
	if !w.open && !locked {
		rt.reportOnce(Violation{Kind: VEpochLife, Rank: p.rank, Op: op,
			Msg: "RMA access outside any epoch"})
	}
	origin := args[0].P
	count := int(args[1].I)
	dt := mpi.Datatype(args[2].I)
	disp := int(args[4].I)
	tdt := mpi.Datatype(args[6].I)
	n := count * rt.dtSize(dt)
	tOff := disp * rt.dtSize(tdt)

	base := w.bases[target]
	if base == nil {
		return RV{I: mpi.ErrOther}, nil
	}
	if tOff+n > w.sizes[target] {
		rt.report(Violation{Kind: VBufferOverflow, Rank: p.rank, Op: op,
			Msg: "RMA access beyond the target window"})
		n = w.sizes[target] - tOff
		if n < 0 {
			n = 0
		}
	}
	write := op == mpi.OpPut || op == mpi.OpAccumulate
	rt.recordRMA(w, rmaAccess{origin: p.rank, target: target, off: tOff, length: n, write: write, op: op})

	if origin == nil || n <= 0 {
		return RV{I: mpi.Success}, nil
	}
	tPtr := &Ptr{Obj: base.Obj, Off: base.Off + tOff}
	switch op {
	case mpi.OpPut:
		k := clampLen(tPtr, clampLen(origin, n))
		copy(tPtr.Obj.Bytes[tPtr.Off:tPtr.Off+k], origin.Obj.Bytes[origin.Off:origin.Off+k])
	case mpi.OpGet:
		k := clampLen(origin, clampLen(tPtr, n))
		copy(origin.Obj.Bytes[origin.Off:origin.Off+k], tPtr.Obj.Bytes[tPtr.Off:tPtr.Off+k])
	case mpi.OpAccumulate:
		rop := mpi.ReduceOp(args[7].I)
		isInt := dt == mpi.DTInt || dt == mpi.DTLong
		sz := rt.dtSize(dt)
		for i := 0; i < count; i++ {
			so, to := origin.Off+i*sz, tPtr.Off+i*sz
			if so+sz > len(origin.Obj.Bytes) || to+sz > len(tPtr.Obj.Bytes) {
				break
			}
			if isInt {
				a, _ := tPtr.Obj.load(to, ir.I32)
				b, _ := origin.Obj.load(so, ir.I32)
				_ = tPtr.Obj.store(to, ir.I32, RV{I: reduceInt(rop, a.I, b.I)})
			} else {
				a, _ := tPtr.Obj.load(to, ir.F64)
				b, _ := origin.Obj.load(so, ir.F64)
				_ = tPtr.Obj.store(to, ir.F64, RV{F: reduceFloat(rop, a.F, b.F)})
			}
		}
	}
	return RV{I: mpi.Success}, nil
}

// recordRMA adds an epoch access and reports conflicts with concurrent
// accesses from other origins (global concurrency errors).
func (rt *Runtime) recordRMA(w *window, a rmaAccess) {
	for _, b := range w.accesses {
		if b.target != a.target || b.origin == a.origin {
			continue
		}
		if a.off+a.length <= b.off || b.off+b.length <= a.off {
			continue
		}
		if a.write || b.write {
			rt.reportOnce(Violation{Kind: VGlobalConc, Rank: a.origin, Op: a.op,
				Msg: fmt.Sprintf("conflicting RMA access to rank %d window (with rank %d)", a.target, b.origin)})
		}
	}
	w.accesses = append(w.accesses, a)
}

// checkRMALocalAccess flags local loads/stores that touch an exposed window
// region during an open epoch while remote accesses target it.
func (rt *Runtime) checkRMALocalAccess(rank int, ptr *Ptr, size int, isWrite bool) {
	for _, w := range rt.wins {
		if w.freed || (!w.open && len(w.locks) == 0) {
			continue
		}
		base := w.bases[rank]
		if base == nil || base.Obj != ptr.Obj {
			continue
		}
		rel := ptr.Off - base.Off
		if rel+size <= 0 || rel >= w.sizes[rank] {
			continue
		}
		for _, b := range w.accesses {
			if b.target != rank || b.origin == rank {
				continue
			}
			if rel+size <= b.off || b.off+b.length <= rel {
				continue
			}
			if isWrite || b.write {
				rt.reportOnce(Violation{Kind: VLocalConc, Rank: rank, Op: b.op,
					Msg: "local access to window memory conflicts with a remote RMA access in the same epoch"})
			}
		}
		if isWrite && w.open {
			// Record the local write so later remote accesses see it.
			rt.recordRMA(w, rmaAccess{origin: rank, target: rank, off: rel, length: size, write: true, op: mpi.OpWinCreate})
		}
	}
}

func (rt *Runtime) doWinLock(p *proc, op mpi.Op, args []RV) (RV, error) {
	if op == mpi.OpWinLock {
		// locktype0, rank1, assert2, win3
		w := rt.winByHandle(p, op, args[3].I)
		if w == nil {
			return RV{I: mpi.ErrOther}, nil
		}
		target := int(args[1].I)
		if !rt.peerOK(p, op, target) {
			return RV{I: mpi.ErrOther}, nil
		}
		if holder, held := w.locks[target]; held && holder != 0 {
			if err := rt.block(p, op, func() bool { return w.locks[target] == 0 }); err != nil {
				return RV{}, err
			}
		}
		w.locks[target] = p.rank + 1
		return RV{I: mpi.Success}, nil
	}
	// Unlock: rank0, win1
	w := rt.winByHandle(p, op, args[1].I)
	if w == nil {
		return RV{I: mpi.ErrOther}, nil
	}
	target := int(args[0].I)
	if w.locks[target] != p.rank+1 {
		rt.report(Violation{Kind: VEpochLife, Rank: p.rank, Op: op,
			Msg: "unlock without a matching lock"})
		return RV{I: mpi.ErrOther}, nil
	}
	w.locks[target] = 0
	// Passive epoch closes: clear this origin's accesses to the target.
	live := w.accesses[:0]
	for _, a := range w.accesses {
		if !(a.origin == p.rank && a.target == target) {
			live = append(live, a)
		}
	}
	w.accesses = live
	return RV{I: mpi.Success}, nil
}
