// Pooled per-run state. A runState is the per-program half of a run's
// reusable state — pooled rank procs (with their machines and handoff
// semaphores) and per-function frame free lists — while the memArena it
// borrows is process-global: size-classed byte buffers for MemObj
// storage and message payloads, and typed bump arenas for the Ptr,
// MemObj, message, receive, request and MPI-argument values that live
// exactly as long as a run. Sharing the memArena across all compiled
// programs means even a compile-and-run-once workload (the dataset
// evaluation harness) executes out of warm memory; within one run only
// the goroutine holding the scheduler turn touches the arena, so no
// locking is needed.
package mpisim

import (
	"math/bits"
	"unsafe"
)

const (
	minClassBits = 4  // smallest pooled buffer: 16 B
	maxClassBits = 20 // largest pooled buffer: 1 MiB; beyond this, plain make
	numClasses   = maxClassBits + 1

	maxFrameBits    = 12 // largest pooled frame: 4096 slots
	numFrameClasses = maxFrameBits + 1

	chunkLen = 128 // objects per bump-arena chunk
)

// emptyBytes backs every zero-sized allocation; it is never written.
var emptyBytes = []byte{}

// chunkArena is a typed bump allocator. Allocation hands out zeroed
// objects (chunks are cleared on reset); reset drops every reference so
// a pooled arena cannot keep a prior run's memory graph alive.
type chunkArena[T any] struct {
	chunks  [][]T
	ci, off int
	grew    *int // owner's retained-bytes estimate
}

func (a *chunkArena[T]) alloc() *T {
	if a.ci >= len(a.chunks) {
		a.chunks = append(a.chunks, make([]T, chunkLen))
		if a.grew != nil {
			var zero T
			*a.grew += chunkLen * int(unsafe.Sizeof(zero))
		}
	}
	p := &a.chunks[a.ci][a.off]
	a.off++
	if a.off == chunkLen {
		a.ci++
		a.off = 0
	}
	return p
}

func (a *chunkArena[T]) reset() {
	for i := 0; i <= a.ci && i < len(a.chunks); i++ {
		clear(a.chunks[i])
	}
	a.ci, a.off = 0, 0
}

// memArena is the program-independent allocation state of one run.
type memArena struct {
	bufs [numClasses][][]byte // free byte buffers by size class
	used [][]byte             // every pooled buffer handed out this run

	// frames are pooled by slot-count size class, shared across programs
	// (frames are cleared when returned, so origin does not matter).
	frames [numFrameClasses][][]RV

	ptrs  chunkArena[Ptr]
	mems  chunkArena[MemObj]
	msgs  chunkArena[message]
	rcvs  chunkArena[recvPost]
	reqas chunkArena[request]

	rvChunks    [][]RV
	rvCI, rvOff int

	// retained estimates the bytes this arena keeps across runs, so the
	// free list can drop arenas a pathological program inflated.
	retained int
}

// The arena free list is a small fixed-capacity channel rather than a
// sync.Pool: pool contents are purged on every GC cycle, which made
// simulation throughput swing with GC timing (an arena rebuild costs
// more than a whole small run). The channel keeps at most
// maxFreeArenas arenas alive — bounded, deterministic reuse — and
// putMemArena drops any arena that grew past maxArenaRetain.
const (
	maxFreeArenas  = 8
	maxArenaRetain = 8 << 20 // 8 MiB
)

var memArenaFree = make(chan *memArena, maxFreeArenas)

func getMemArena() *memArena {
	select {
	case a := <-memArenaFree:
		return a
	default:
		a := &memArena{}
		a.ptrs.grew = &a.retained
		a.mems.grew = &a.retained
		a.msgs.grew = &a.retained
		a.rcvs.grew = &a.retained
		a.reqas.grew = &a.retained
		return a
	}
}

func putMemArena(a *memArena) {
	if a.retained > maxArenaRetain {
		return // oversized: let the GC have it
	}
	select {
	case memArenaFree <- a:
	default:
	}
}

// reset returns every handed-out buffer to its size class and clears the
// bump arenas.
func (a *memArena) reset() {
	for _, b := range a.used {
		c := bits.Len(uint(cap(b) - 1))
		a.bufs[c] = append(a.bufs[c], b)
	}
	a.used = a.used[:0]
	a.ptrs.reset()
	a.mems.reset()
	a.msgs.reset()
	a.rcvs.reset()
	a.reqas.reset()
	for i := 0; i <= a.rvCI && i < len(a.rvChunks); i++ {
		clear(a.rvChunks[i])
	}
	a.rvCI, a.rvOff = 0, 0
}

// getFrame hands out a zeroed frame of n value slots.
func (a *memArena) getFrame(n int) []RV {
	if n <= 0 {
		return nil // a function with no params and no instructions
	}
	if n > 1<<maxFrameBits {
		return make([]RV, n)
	}
	c := bits.Len(uint(n - 1))
	if fl := a.frames[c]; len(fl) > 0 {
		fr := fl[len(fl)-1]
		a.frames[c] = fl[:len(fl)-1]
		return fr[:n]
	}
	a.retained += (1 << c) * 24
	return make([]RV, n, 1<<c)
}

// putFrame clears a frame to full capacity (so any future, larger
// reslice still reads zeroes) and recycles it.
func (a *memArena) putFrame(fr []RV) {
	if cap(fr) == 0 || cap(fr) > 1<<maxFrameBits {
		return
	}
	fr = fr[:cap(fr)]
	clear(fr)
	a.frames[bits.Len(uint(cap(fr)-1))] = append(a.frames[bits.Len(uint(cap(fr)-1))], fr)
}

// getBytes hands out an n-byte buffer. zero guarantees cleared contents
// (fresh memory semantics); callers that fully overwrite the buffer skip
// the clear.
func (a *memArena) getBytes(n int, zero bool) []byte {
	if n < 0 {
		// Reproduce the pre-arena engine's make([]byte, n) panic exactly:
		// an alloca whose size*count overflows must crash the run, not
		// hand back an empty object and a clean verdict.
		return make([]byte, n)
	}
	if n == 0 {
		return emptyBytes
	}
	if n > 1<<maxClassBits {
		return make([]byte, n)
	}
	c := bits.Len(uint(n - 1))
	if c < minClassBits {
		c = minClassBits
	}
	if fl := a.bufs[c]; len(fl) > 0 {
		b := fl[len(fl)-1]
		a.bufs[c] = fl[:len(fl)-1]
		b = b[:n]
		if zero {
			clear(b)
		}
		a.used = append(a.used, b[:cap(b)])
		return b
	}
	a.retained += 1 << c
	b := make([]byte, 1<<c)
	a.used = append(a.used, b)
	return b[:n]
}

// newMemObj allocates one memory object; bytes come zeroed, and the
// pointer shadow map is nil until the first typed-pointer store (most
// objects never pay for it).
func (a *memArena) newMemObj(name string, size, owner int) *MemObj {
	o := a.mems.alloc()
	o.Name, o.Bytes, o.Ptrs, o.Owner = name, a.getBytes(size, true), nil, owner
	return o
}

// newPtr bump-allocates a Ptr (GEP results, alloca handles).
func (a *memArena) newPtr(obj *MemObj, off int) *Ptr {
	p := a.ptrs.alloc()
	p.Obj, p.Off = obj, off
	return p
}

// allocRVs bump-allocates a value slice that outlives its call site (MPI
// argument vectors retained by requests and collectives until run end).
func (a *memArena) allocRVs(n int) []RV {
	if n == 0 {
		return nil
	}
	if n > chunkLen {
		return make([]RV, n)
	}
	if a.rvOff+n > chunkLen {
		a.rvCI++
		a.rvOff = 0
	}
	if a.rvCI >= len(a.rvChunks) {
		a.rvChunks = append(a.rvChunks, make([]RV, chunkLen))
		a.retained += chunkLen * 24
	}
	out := a.rvChunks[a.rvCI][a.rvOff : a.rvOff+n]
	a.rvOff += n
	return out
}

// runState is the per-program half of a run's pooled state.
type runState struct {
	prog    *Program
	procs   []*proc
	mainSem chan struct{}
	mem     *memArena
}

// acquire takes (or builds) an arena sized for the requested world.
func (p *Program) acquire(ranks int) *runState {
	rs, _ := p.pool.Get().(*runState)
	if rs == nil {
		rs = &runState{prog: p, mainSem: make(chan struct{}, 1)}
	}
	rs.mem = getMemArena()
	for len(rs.procs) < ranks {
		r := len(rs.procs)
		pr := &proc{rank: r, sem: make(chan struct{}, 1)}
		pr.canRunBlocked = func() bool { return pr.rt.deadlock || pr.cond() }
		pr.mach = newMachine(p, r)
		pr.mach.proc = pr
		rs.procs = append(rs.procs, pr)
	}
	return rs
}

// release returns the arenas to their pools after a run. The Result
// returned to the caller shares no memory with them (output and
// diagnostics are copied into strings), so recycling is safe.
func (p *Program) release(rs *runState) {
	rs.mem.reset()
	putMemArena(rs.mem)
	rs.mem = nil
	p.pool.Put(rs)
}

// getFrame pops a zeroed frame of n slots; putFrame recycles it.
func (rs *runState) getFrame(n int) []RV { return rs.mem.getFrame(n) }

func (rs *runState) putFrame(fr []RV) { rs.mem.putFrame(fr) }

func (rs *runState) getBytes(n int, zero bool) []byte { return rs.mem.getBytes(n, zero) }

func (rs *runState) newMemObj(name string, size, owner int) *MemObj {
	return rs.mem.newMemObj(name, size, owner)
}

func (rs *runState) newPtr(obj *MemObj, off int) *Ptr { return rs.mem.newPtr(obj, off) }

func (rs *runState) allocRVs(n int) []RV { return rs.mem.allocRVs(n) }

// newMessage, newRecvPost and newRequest bump-allocate the run-scoped
// MPI bookkeeping objects the point-to-point and collective layers
// create on every operation.
func (rs *runState) newMessage() *message   { return rs.mem.msgs.alloc() }
func (rs *runState) newRecvPost() *recvPost { return rs.mem.rcvs.alloc() }
func (rs *runState) newRequest() *request   { return rs.mem.reqas.alloc() }
