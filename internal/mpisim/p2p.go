package mpisim

import (
	"fmt"

	"mpidetect/internal/ir"
	"mpidetect/internal/mpi"
)

// message is a posted (not yet received) send.
type message struct {
	src, dst, tag int
	comm          int64
	dtype         mpi.Datatype
	count         int
	data          []byte
	synchronous   bool // rendezvous semantics (Ssend or large standard send)
	matched       bool
	sendReq       *request // owning nonblocking request, if any
}

// recvPost is a posted (not yet matched) receive.
type recvPost struct {
	dst, src, tag int
	comm          int64
	dtype         mpi.Datatype
	count         int
	buf           *Ptr
	status        *Ptr
	completed     bool
	recvReq       *request
	gotSrc        int
	gotTag        int
	gotCount      int
}

// request is an MPI_Request table entry.
type request struct {
	id         int64
	owner      int
	op         mpi.Op
	persistent bool
	active     bool
	freed      bool

	// persistent template arguments
	args []RV

	msg  *message
	recv *recvPost
	coll *collSlot

	completedAndWaited bool
}

func (r *request) completed() bool {
	switch {
	case r.coll != nil:
		return r.coll.done
	case r.msg != nil:
		return r.msg.matched || !r.msg.synchronous
	case r.recv != nil:
		return r.recv.completed
	}
	return true
}

// p2pArgs decodes the common (buf, count, dtype, peer, tag, comm) prefix.
func p2pArgs(args []RV) (buf *Ptr, count int, dt mpi.Datatype, peer, tag int, comm int64) {
	buf = args[0].P
	count = int(args[1].I)
	dt = mpi.Datatype(args[2].I)
	peer = int(args[3].I)
	tag = int(args[4].I)
	comm = args[5].I
	return
}

func (rt *Runtime) doSend(p *proc, op mpi.Op, args []RV) (RV, error) {
	buf, count, dt, dst, tag, comm := p2pArgs(args)
	if dst == mpi.ProcNull {
		return RV{I: mpi.Success}, nil
	}
	if !rt.peerOK(p, op, dst) {
		return RV{I: mpi.ErrOther}, nil
	}
	bytes := rt.readBuf(p, op, buf, count, dt)
	msg := rt.ar.newMessage()
	*msg = message{src: p.rank, dst: dst, tag: tag, comm: comm, dtype: dt,
		count: count, data: bytes}
	msg.synchronous = op == mpi.OpSsend || op == mpi.OpRsend || len(bytes) > rt.cfg.EagerLimit
	rt.postSend(msg)
	if msg.synchronous {
		if err := rt.block(p, op, func() bool { return msg.matched }); err != nil {
			return RV{}, err
		}
	}
	return RV{I: mpi.Success}, nil
}

func (rt *Runtime) doRecv(p *proc, op mpi.Op, args []RV) (RV, error) {
	buf, count, dt, src, tag, comm := p2pArgs(args)
	if src == mpi.ProcNull {
		return RV{I: mpi.Success}, nil
	}
	var status *Ptr
	if len(args) > 6 {
		status = args[6].P
	}
	r := rt.ar.newRecvPost()
	*r = recvPost{dst: p.rank, src: src, tag: tag, comm: comm, dtype: dt,
		count: count, buf: buf, status: status}
	rt.postRecv(r)
	if err := rt.block(p, op, func() bool { return r.completed }); err != nil {
		return RV{}, err
	}
	return RV{I: mpi.Success}, nil
}

func (rt *Runtime) doSendrecv(p *proc, args []RV) (RV, error) {
	// sbuf, scount, sdt, dst, stag, rbuf, rcount, rdt, src, rtag, comm, status
	comm := args[10].I
	dst, src := int(args[3].I), int(args[8].I)
	// Post the receive first, then the send, then wait: this is the
	// deadlock-free semantics of MPI_Sendrecv.
	var r *recvPost
	if src != mpi.ProcNull {
		r = rt.ar.newRecvPost()
		*r = recvPost{dst: p.rank, src: src, tag: int(args[9].I), comm: comm,
			dtype: mpi.Datatype(args[7].I), count: int(args[6].I),
			buf: args[5].P, status: args[11].P}
		rt.postRecv(r)
	}
	if dst != mpi.ProcNull && rt.peerOK(p, mpi.OpSendrecv, dst) {
		bytes := rt.readBuf(p, mpi.OpSendrecv, args[0].P, int(args[1].I), mpi.Datatype(args[2].I))
		msg := rt.ar.newMessage()
		*msg = message{src: p.rank, dst: dst, tag: int(args[4].I), comm: comm,
			dtype: mpi.Datatype(args[2].I), count: int(args[1].I), data: bytes}
		rt.postSend(msg)
	}
	if r != nil {
		if err := rt.block(p, mpi.OpSendrecv, func() bool { return r.completed }); err != nil {
			return RV{}, err
		}
	}
	return RV{I: mpi.Success}, nil
}

// doImmediate handles Isend/Issend/Irecv and the persistent inits.
func (rt *Runtime) doImmediate(p *proc, op mpi.Op, args []RV) (RV, error) {
	reqPtr := args[6].P
	if reqPtr == nil {
		rt.report(Violation{Kind: VInvalidParam, Rank: p.rank, Op: op, Msg: "null request pointer"})
		return RV{I: mpi.ErrOther}, nil
	}
	rt.nextReq++
	r := rt.ar.newRequest()
	*r = request{id: rt.nextReq, owner: p.rank, op: op, args: args}
	rt.reqs[r.id] = r
	if op == mpi.OpSendInit || op == mpi.OpRecvInit {
		r.persistent = true
	} else {
		rt.activateRequest(p, r)
	}
	if err := reqPtr.Obj.store(reqPtr.Off, ir.I64, RV{I: r.id}); err != nil {
		return RV{}, err
	}
	return RV{I: mpi.Success}, nil
}

// activateRequest starts the communication described by a request.
func (rt *Runtime) activateRequest(p *proc, r *request) {
	args := r.args
	buf, count, dt, peer, tag, comm := p2pArgs(args)
	r.active = true
	isRecv := r.op == mpi.OpIrecv || r.op == mpi.OpRecvInit
	if peer == mpi.ProcNull {
		r.msg = nil
		r.recv = nil
		return
	}
	if isRecv {
		rp := rt.ar.newRecvPost()
		*rp = recvPost{dst: p.rank, src: peer, tag: tag, comm: comm, dtype: dt,
			count: count, buf: buf, recvReq: r}
		r.recv = rp
		rt.postRecv(rp)
		if buf != nil {
			p.activeRegions = append(p.activeRegions, region{obj: buf.Obj, off: buf.Off,
				length: count * dt.Size(), write: true, reqID: r.id, op: r.op})
		}
		return
	}
	if !rt.peerOK(p, r.op, peer) {
		return
	}
	bytes := rt.readBuf(p, r.op, buf, count, dt)
	msg := rt.ar.newMessage()
	*msg = message{src: p.rank, dst: peer, tag: tag, comm: comm, dtype: dt,
		count: count, data: bytes, sendReq: r}
	msg.synchronous = r.op == mpi.OpIssend || len(bytes) > rt.cfg.EagerLimit
	r.msg = msg
	rt.postSend(msg)
	if buf != nil {
		p.activeRegions = append(p.activeRegions, region{obj: buf.Obj, off: buf.Off,
			length: count * dt.Size(), write: false, reqID: r.id, op: r.op})
	}
}

// postSend matches against posted receives or queues the message.
func (rt *Runtime) postSend(msg *message) {
	rt.msgLog = append(rt.msgLog, msgRecord{src: msg.src, dst: msg.dst, tag: msg.tag, comm: msg.comm})
	for _, r := range rt.recvs {
		if r.completed || !r.matches(msg) {
			continue
		}
		rt.deliver(msg, r)
		return
	}
	rt.sends = append(rt.sends, msg)
}

// postRecv matches against queued sends or queues the receive.
func (rt *Runtime) postRecv(r *recvPost) {
	if r.src == mpi.AnySource {
		rt.wildRecvs = append(rt.wildRecvs, wildRecord{dst: r.dst, tag: r.tag, comm: r.comm})
	}
	candidates := 0
	var first *message
	for _, msg := range rt.sends {
		if msg.matched || !r.matches(msg) {
			continue
		}
		if first == nil {
			first = msg
		}
		candidates++
	}
	if first != nil {
		if r.src == mpi.AnySource && candidates > 1 {
			rt.reportOnce(Violation{Kind: VMessageRace, Rank: r.dst, Op: mpi.OpRecv,
				Msg: fmt.Sprintf("wildcard receive matches %d queued messages", candidates)})
		}
		rt.deliver(first, r)
		return
	}
	rt.recvs = append(rt.recvs, r)
}

func (r *recvPost) matches(msg *message) bool {
	if msg.dst != r.dst || msg.comm != r.comm {
		return false
	}
	if r.src != mpi.AnySource && r.src != msg.src {
		return false
	}
	if r.tag != mpi.AnyTag && r.tag != msg.tag {
		return false
	}
	return true
}

// deliver moves message data into the receive buffer, performing the
// type/size checks dynamic tools do at match time.
func (rt *Runtime) deliver(msg *message, r *recvPost) {
	msg.matched = true
	r.completed = true
	r.gotSrc = msg.src
	r.gotTag = msg.tag
	if !rt.dtCompatible(msg.dtype, r.dtype) {
		rt.report(Violation{Kind: VTypeMismatch, Rank: r.dst, Op: mpi.OpRecv,
			Msg: fmt.Sprintf("send type %s does not match recv type %s", msg.dtype, r.dtype)})
	}
	sendBytes := len(msg.data)
	n := sendBytes
	recvSize, recvSizeKnown := rt.dtSizeKnown(r.dtype)
	if recvSizeKnown {
		recvCap := r.count * recvSize
		if recvCap < 0 {
			recvCap = 0 // negative counts were already reported as invalid
		}
		if sendBytes > recvCap {
			rt.report(Violation{Kind: VTruncation, Rank: r.dst, Op: mpi.OpRecv,
				Msg: fmt.Sprintf("message of %d bytes truncated to %d", sendBytes, recvCap)})
			n = recvCap
		}
	} else {
		// The receive names a derived datatype this world never created:
		// its element size is unknowable, so no truncation verdict can be
		// defended either way — report the real error and move no data.
		rt.reportOnce(Violation{Kind: VInvalidParam, Rank: r.dst, Op: mpi.OpRecv,
			Msg: fmt.Sprintf("receive posted with unknown or freed derived datatype %d", int64(r.dtype))})
		n = 0
	}
	r.gotCount = n / max(1, recvSize)
	if r.buf != nil {
		dst := r.buf
		if dst.Off+n > len(dst.Obj.Bytes) {
			rt.report(Violation{Kind: VBufferOverflow, Rank: r.dst, Op: mpi.OpRecv,
				Msg: "receive overflows destination buffer"})
			n = len(dst.Obj.Bytes) - dst.Off
			if n < 0 {
				n = 0
			}
		}
		copy(dst.Obj.Bytes[dst.Off:dst.Off+n], msg.data[:n])
	}
	if r.status != nil {
		// MPI_Status{source, tag, error}
		_ = r.status.Obj.store(r.status.Off, ir.I32, RV{I: int64(msg.src)})
		_ = r.status.Obj.store(r.status.Off+4, ir.I32, RV{I: int64(msg.tag)})
		_ = r.status.Obj.store(r.status.Off+8, ir.I32, RV{I: 0})
	}
	// Completed nonblocking receive releases the sender-side block too via
	// msg.matched; region bookkeeping is cleared at Wait time.
	rt.pruneQueues()
}

func (rt *Runtime) pruneQueues() {
	live := rt.sends[:0]
	for _, m := range rt.sends {
		if !m.matched {
			live = append(live, m)
		}
	}
	rt.sends = live
	liveR := rt.recvs[:0]
	for _, r := range rt.recvs {
		if !r.completed {
			liveR = append(liveR, r)
		}
	}
	rt.recvs = liveR
}

// lookupRequest resolves a request handle read from memory.
func (rt *Runtime) lookupRequest(p *proc, op mpi.Op, ptr *Ptr) (*request, int64, bool) {
	if ptr == nil {
		rt.report(Violation{Kind: VInvalidParam, Rank: p.rank, Op: op, Msg: "null request pointer"})
		return nil, 0, false
	}
	hv, err := ptr.Obj.load(ptr.Off, ir.I64)
	if err != nil {
		rt.report(Violation{Kind: VInvalidParam, Rank: p.rank, Op: op, Msg: "unreadable request"})
		return nil, 0, false
	}
	if hv.I == mpi.RequestNil {
		return nil, hv.I, true // null request: no-op per the standard
	}
	r, ok := rt.reqs[hv.I]
	if !ok {
		rt.report(Violation{Kind: VRequestLife, Rank: p.rank, Op: op,
			Msg: fmt.Sprintf("operation on uninitialised request handle %d", hv.I)})
		return nil, hv.I, false
	}
	if r.freed {
		rt.report(Violation{Kind: VRequestLife, Rank: p.rank, Op: op,
			Msg: "operation on freed request"})
		return nil, hv.I, false
	}
	return r, hv.I, true
}

// clearRegions removes the active-region bookkeeping of a request.
func (p *proc) clearRegions(reqID int64) {
	live := p.activeRegions[:0]
	for _, reg := range p.activeRegions {
		if reg.reqID != reqID {
			live = append(live, reg)
		}
	}
	p.activeRegions = live
}

func (rt *Runtime) doWait(p *proc, args []RV) (RV, error) {
	r, _, ok := rt.lookupRequest(p, mpi.OpWait, args[0].P)
	if !ok || r == nil {
		return RV{I: mpi.Success}, nil
	}
	if r.persistent && !r.active {
		// Waiting on an inactive persistent request returns immediately.
		return RV{I: mpi.Success}, nil
	}
	if err := rt.block(p, mpi.OpWait, r.completed); err != nil {
		return RV{}, err
	}
	rt.completeRequest(p, r, args[0].P)
	return RV{I: mpi.Success}, nil
}

func (rt *Runtime) completeRequest(p *proc, r *request, handlePtr *Ptr) {
	r.completedAndWaited = true
	p.clearRegions(r.id)
	if r.recv != nil && r.recv.status != nil {
		// already written at deliver time
	}
	if r.persistent {
		r.active = false
		return
	}
	r.freed = true
	if handlePtr != nil {
		_ = handlePtr.Obj.store(handlePtr.Off, ir.I64, RV{I: mpi.RequestNil})
	}
}

func (rt *Runtime) doWaitall(p *proc, args []RV) (RV, error) {
	n := int(args[0].I)
	base := args[1].P
	if base == nil {
		rt.report(Violation{Kind: VInvalidParam, Rank: p.rank, Op: mpi.OpWaitall, Msg: "null request array"})
		return RV{I: mpi.ErrOther}, nil
	}
	for i := 0; i < n; i++ {
		hp := &Ptr{Obj: base.Obj, Off: base.Off + 8*i}
		r, _, ok := rt.lookupRequest(p, mpi.OpWaitall, hp)
		if !ok || r == nil {
			continue
		}
		if r.persistent && !r.active {
			continue
		}
		if err := rt.block(p, mpi.OpWaitall, r.completed); err != nil {
			return RV{}, err
		}
		rt.completeRequest(p, r, hp)
	}
	return RV{I: mpi.Success}, nil
}

func (rt *Runtime) doTest(p *proc, args []RV) (RV, error) {
	r, _, ok := rt.lookupRequest(p, mpi.OpTest, args[0].P)
	flagPtr := args[1].P
	setFlag := func(v int64) {
		if flagPtr != nil {
			_ = flagPtr.Obj.store(flagPtr.Off, ir.I32, RV{I: v})
		}
	}
	if !ok || r == nil {
		setFlag(1)
		return RV{I: mpi.Success}, nil
	}
	if r.completed() {
		rt.completeRequest(p, r, args[0].P)
		setFlag(1)
	} else {
		setFlag(0)
		// Give other ranks a turn so MPI_Test polling loops make progress
		// under the cooperative scheduler.
		rt.yieldTurn(p)
	}
	return RV{I: mpi.Success}, nil
}

func (rt *Runtime) doRequestFree(p *proc, args []RV) (RV, error) {
	r, _, ok := rt.lookupRequest(p, mpi.OpRequestFree, args[0].P)
	if !ok || r == nil {
		return RV{I: mpi.Success}, nil
	}
	if r.active && !r.completed() {
		rt.report(Violation{Kind: VRequestLife, Rank: p.rank, Op: mpi.OpRequestFree,
			Msg: "freeing an active uncompleted request"})
	}
	r.freed = true
	r.completedAndWaited = true
	p.clearRegions(r.id)
	if args[0].P != nil {
		_ = args[0].P.Obj.store(args[0].P.Off, ir.I64, RV{I: mpi.RequestNil})
	}
	return RV{I: mpi.Success}, nil
}

func (rt *Runtime) doStart(p *proc, op mpi.Op, args []RV) (RV, error) {
	handles := []*Ptr{}
	if op == mpi.OpStart {
		handles = append(handles, args[0].P)
	} else {
		n := int(args[0].I)
		base := args[1].P
		if base == nil {
			rt.report(Violation{Kind: VInvalidParam, Rank: p.rank, Op: op, Msg: "null request array"})
			return RV{I: mpi.ErrOther}, nil
		}
		for i := 0; i < n; i++ {
			handles = append(handles, &Ptr{Obj: base.Obj, Off: base.Off + 8*i})
		}
	}
	for _, hp := range handles {
		r, _, ok := rt.lookupRequest(p, op, hp)
		if !ok || r == nil {
			continue
		}
		if !r.persistent {
			rt.report(Violation{Kind: VRequestLife, Rank: p.rank, Op: op,
				Msg: "MPI_Start on a non-persistent request"})
			continue
		}
		if r.active {
			rt.report(Violation{Kind: VRequestLife, Rank: p.rank, Op: op,
				Msg: "MPI_Start on an already active request"})
			continue
		}
		rt.activateRequest(p, r)
	}
	return RV{I: mpi.Success}, nil
}

func (rt *Runtime) doGetCount(p *proc, args []RV) (RV, error) {
	st := args[0].P
	outp := args[2].P
	if st == nil || outp == nil {
		rt.report(Violation{Kind: VInvalidParam, Rank: p.rank, Op: mpi.OpGetCount, Msg: "null pointer"})
		return RV{I: mpi.ErrOther}, nil
	}
	// We stored source/tag; count retrieval returns a fixed token (the
	// simulator does not track per-status byte counts).
	_ = outp.Obj.store(outp.Off, ir.I32, RV{I: 0})
	return RV{I: mpi.Success}, nil
}

// readBuf snapshots count elements from a send buffer.
func (rt *Runtime) readBuf(p *proc, op mpi.Op, buf *Ptr, count int, dt mpi.Datatype) []byte {
	if buf == nil {
		if count > 0 {
			rt.report(Violation{Kind: VInvalidParam, Rank: p.rank, Op: op, Msg: "null buffer with nonzero count"})
		}
		return nil
	}
	n := count * dt.Size()
	if n < 0 {
		n = 0
	}
	if buf.Off+n > len(buf.Obj.Bytes) {
		rt.report(Violation{Kind: VBufferOverflow, Rank: p.rank, Op: op,
			Msg: fmt.Sprintf("send reads %d bytes from a %d-byte object", n, len(buf.Obj.Bytes)-buf.Off)})
		n = len(buf.Obj.Bytes) - buf.Off
		if n < 0 {
			n = 0
		}
	}
	// Message payloads come from the run's arena (fully overwritten by the
	// copy, so no clearing is needed) and are recycled when the run ends.
	out := rt.ar.getBytes(n, false)
	copy(out, buf.Obj.Bytes[buf.Off:buf.Off+n])
	return out
}

// peerOK validates a peer rank.
func (rt *Runtime) peerOK(p *proc, op mpi.Op, peer int) bool {
	if peer < 0 || peer >= rt.size {
		rt.report(Violation{Kind: VInvalidParam, Rank: p.rank, Op: op,
			Msg: fmt.Sprintf("invalid peer rank %d (size %d)", peer, rt.size)})
		return false
	}
	return true
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
