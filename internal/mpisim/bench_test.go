package mpisim

import (
	"strings"
	"testing"

	ast "mpidetect/internal/ast"
	"mpidetect/internal/ir"
	"mpidetect/internal/irgen"
)

// benchModule is a small but representative program: rank-dependent
// control flow, a blocking exchange, printf, and a compute loop.
func benchModule(tb testing.TB) *Program {
	tb.Helper()
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("buf", 8, ast.Int),
		ast.Decl("i", ast.Int, ast.I(0)),
		ast.While(ast.Lt(ast.Id("i"), ast.I(200)),
			ast.Assign(ast.Id("i"), ast.Add(ast.Id("i"), ast.I(1)))),
		ast.IfElse(ast.Eq(ast.Id("rank"), ast.I(0)),
			[]ast.Stmt{
				ast.Assign(ast.Idx(ast.Id("buf"), ast.I(0)), ast.I(42)),
				ast.CallS("MPI_Send", ast.Id("buf"), ast.I(8), ast.Id("MPI_INT"),
					ast.I(1), ast.I(7), ast.Id("MPI_COMM_WORLD")),
			},
			[]ast.Stmt{
				ast.If(ast.Eq(ast.Id("rank"), ast.I(1)), ast.Block(
					ast.CallS("MPI_Recv", ast.Id("buf"), ast.I(8), ast.Id("MPI_INT"),
						ast.I(0), ast.I(7), ast.Id("MPI_COMM_WORLD"), ast.Id("MPI_STATUS_IGNORE")),
					ast.CallS("printf", ast.S("got %d\n"), ast.Idx(ast.Id("buf"), ast.I(0))))),
			}),
		ast.Finalize(),
	)
	mod, err := irgen.Lower(ast.MainProgram("simbench", stmts...))
	if err != nil {
		tb.Fatalf("Lower: %v", err)
	}
	return Compile(mod)
}

// BenchmarkSimCompile measures the compile-once pre-pass in isolation:
// the cost a cold /analyze request pays exactly once per program, and
// that the content-addressed program cache amortises away on warm
// repeats.
func BenchmarkSimCompile(b *testing.B) {
	mod := benchModule(b).Mod()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := Compile(mod); p.main == nil {
			b.Fatal("no main")
		}
	}
}

// BenchmarkSimRunWarm measures a warm simulated run of a pre-compiled
// program: pooled frames, pooled rank state, arena-backed memory and the
// single-semaphore scheduler handoff. This is the steady-state cost of
// one dynamic-tool execution on the serving path.
func BenchmarkSimRunWarm(b *testing.B) {
	prog := benchModule(b)
	prog.Run(Config{Ranks: 2}) // warm the pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := prog.Run(Config{Ranks: 2})
		if res.Erroneous() {
			b.Fatalf("erroneous: %+v", res.Violations)
		}
	}
}

// BenchmarkSimRunWarm8 is the same steady state at an 8-rank world.
func BenchmarkSimRunWarm8(b *testing.B) {
	prog := benchModule(b)
	prog.Run(Config{Ranks: 8})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := prog.Run(Config{Ranks: 8})
		if res.Deadlock {
			b.Fatal("deadlock")
		}
	}
}

// TestWarmRunAllocsBounded pins the pooling contract: a warm run of a
// pre-compiled program must not allocate per frame, per memory object,
// or per message — only the small fixed set of per-run objects (rank
// goroutines, blocking conditions, the Result) remains. The bound is
// deliberately tight; if it regresses, something stopped being pooled.
func TestWarmRunAllocsBounded(t *testing.T) {
	prog := benchModule(t)
	prog.Run(Config{Ranks: 2}) // warm the pools
	allocs := testing.AllocsPerRun(20, func() {
		prog.Run(Config{Ranks: 2})
	})
	// Measured ~30 on go1.24 (goroutines, cond closures, Result, output
	// string); 60 leaves headroom without letting frame-per-call or
	// object-per-alloca churn (hundreds per run) sneak back in.
	if allocs > 60 {
		t.Fatalf("warm run allocates %.0f times; pooling regressed (want <= 60)", allocs)
	}
}

// TestOutputCapTruncates pins the per-rank printf cap: a program that
// prints without bound must produce a truncated, marker-terminated
// stream and an OutputTruncated result — and its verdict must stay
// exactly what it would have been (clean completion here).
func TestOutputCapTruncates(t *testing.T) {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.Decl("i", ast.Int, ast.I(0)),
		ast.While(ast.Lt(ast.Id("i"), ast.I(4000)),
			ast.CallS("printf", ast.S("0123456789012345678901234567890123456789\n")),
			ast.Assign(ast.Id("i"), ast.Add(ast.Id("i"), ast.I(1)))),
		ast.Finalize(),
	)
	mod, err := irgen.Lower(ast.MainProgram("spam", stmts...))
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	res := Compile(mod).Run(Config{Ranks: 2, MaxSteps: 1 << 20})
	if !res.OutputTruncated {
		t.Fatalf("output not marked truncated (len %d)", len(res.Output))
	}
	if !strings.Contains(res.Output, truncationMarker) {
		t.Fatal("truncation marker missing")
	}
	// Two ranks, each capped at maxRankOutput plus the marker.
	if max := 2 * (maxRankOutput + len(truncationMarker)); len(res.Output) > max {
		t.Fatalf("output %d bytes exceeds the cap envelope %d", len(res.Output), max)
	}
	if res.Erroneous() {
		t.Fatalf("truncation must not change the verdict: %+v", res.Violations)
	}
}

// TestAllocaOverflowCrashes pins a bit-exactness edge of the arena: an
// alloca whose size*count overflows int must crash the run with the
// same makeslice panic the pre-arena engine produced — not silently
// hand back an empty object and a clean verdict.
func TestAllocaOverflowCrashes(t *testing.T) {
	mod := ir.NewModule("overflow")
	f := &ir.Func{Name: "main", Sig: ir.FuncOf(ir.Void)}
	mod.AddFunc(f)
	b := &ir.Block{Name: "entry", Parent: f}
	f.Blocks = []*ir.Block{b}
	b.Append(&ir.Instr{Op: ir.OpAlloca, Name: "p", AllocTy: ir.I64,
		Typ: ir.PtrTo(ir.I64), Args: []ir.Value{ir.ConstInt(ir.I64, 1<<60)}})
	b.Append(&ir.Instr{Op: ir.OpRet})
	res := Compile(mod).Run(Config{Ranks: 1})
	if !res.Crashed {
		t.Fatalf("overflowing alloca did not crash: %+v", res)
	}
	if !strings.Contains(res.CrashMsg, "makeslice: len out of range") {
		t.Fatalf("crash message diverged from the old engine: %q", res.CrashMsg)
	}
}

// TestDeclOnlyMainReproducesNilEntryPanic pins the other edge: a module
// whose main is a declaration (or defined with no blocks and no
// parameters — a zero-slot frame) must still crash with the old
// engine's nil-entry diagnostic, not an arena index panic.
func TestDeclOnlyMainReproducesNilEntryPanic(t *testing.T) {
	mod := ir.NewModule("declmain")
	mod.AddFunc(&ir.Func{Name: "main", Sig: ir.FuncOf(ir.Void), Decl: true})
	res := Compile(mod).Run(Config{Ranks: 1})
	if !res.Crashed {
		t.Fatalf("declaration-only main did not crash: %+v", res)
	}
	if !strings.Contains(res.CrashMsg, "invalid memory address or nil pointer dereference") {
		t.Fatalf("crash message diverged from the old engine: %q", res.CrashMsg)
	}
}

// TestMemObjPtrsLazy pins the lazy shadow map: plain byte storage never
// allocates the pointer map, and pointer stores allocate it on first
// use.
func TestMemObjPtrsLazy(t *testing.T) {
	prog := benchModule(t)
	rs := prog.acquire(1)
	defer prog.release(rs)
	o := rs.mem.newMemObj("%t", 16, 0)
	if o.Ptrs != nil {
		t.Fatal("fresh MemObj allocated its pointer map eagerly")
	}
	if err := o.store(0, ir.I32, RV{I: 7}); err != nil {
		t.Fatal(err)
	}
	if o.Ptrs != nil {
		t.Fatal("scalar store allocated the pointer map")
	}
	target := rs.mem.newMemObj("%u", 8, 0)
	ptrTy := ir.PtrTo(ir.I32)
	if err := o.store(8, ptrTy, RV{P: rs.mem.newPtr(target, 0)}); err != nil {
		t.Fatal(err)
	}
	if o.Ptrs == nil {
		t.Fatal("pointer store did not allocate the shadow map")
	}
	if v, err := o.load(8, ptrTy); err != nil || v.P == nil || v.P.Obj != target {
		t.Fatalf("pointer round-trip failed: %+v, %v", v, err)
	}
}
