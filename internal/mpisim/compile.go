// The compile-once execution layer: a Program is the pre-compiled form
// of an IR module, built once per module and reusable (concurrently) by
// any number of simulated runs. The pre-pass numbers every parameter and
// instruction into dense per-function register slots, resolves operand
// references to slot indices or pre-evaluated constants, folds phi nodes
// into per-edge parallel move lists, pre-sizes allocas and globals,
// pre-resolves call targets, and lowers GEPs to precomputed offset
// arithmetic — so the interpreter's frames become flat []RV slices and
// its dispatch never type-switches on ir.Value or hashes pointers.
//
// The compiled form is rank-independent: one /analyze request compiles a
// program once and simulates it at every requested world size, and the
// serving layer caches Programs content-addressed so warm repeats skip
// compilation entirely.
//
// Compilation never rejects a module. Malformed constructs (undefined
// globals, calls to undefined functions, phis missing an incoming edge,
// out-of-range struct indices) compile into instructions that crash with
// exactly the diagnostic the pre-compilation interpreter produced — at
// execution time, not compile time — so verdicts stay bit-identical.
package mpisim

import (
	"fmt"
	"sync"

	"mpidetect/internal/ir"
	"mpidetect/internal/mpi"
)

// Program is a compiled, immutable, rank-independent execution form of
// an IR module. It may be shared freely across goroutines; per-run
// mutable state lives in pooled runState arenas.
type Program struct {
	mod     *ir.Module
	globals []cglobal
	funcs   []*cfunc
	main    *cfunc
	errs    []string // crash messages referenced by compiled operands

	pool sync.Pool // *runState
}

// Mod returns the module the program was compiled from.
func (p *Program) Mod() *ir.Module { return p.mod }

// cglobal is one pre-sized module global.
type cglobal struct {
	name string // "@name"
	size int
	str  string
	init *ir.Const
	elem *ir.Type
}

// cfunc is one compiled function.
type cfunc struct {
	name       string
	nparams    int
	nslots     int
	entry      *cblock
	entryMoves []phiMove // phis at the entry block have no incoming edge
	blocks     []*cblock
}

// cblock is one compiled basic block: its non-phi instructions in order.
// Leading phis are folded into the incoming edges' move lists.
type cblock struct {
	name string
	code []cinstr
}

// opKind classifies a compiled operand.
type opKind uint8

const (
	oConst  opKind = iota // rv holds the pre-evaluated constant
	oSlot                 // slot indexes the frame
	oGlobal               // slot indexes the machine's global table
	oErr                  // evaluating this operand crashes with msg
)

// operand is a pre-resolved instruction operand. For oErr, slot
// indexes the program's error-message table.
type operand struct {
	kind opKind
	slot int32
	rv   RV
}

// phiMove is one slot assignment of a phi edge's parallel copy. A
// non-negative bad indexes the error table: the phi does not cover this
// edge, and taking it crashes with that message (matching the
// interpreter's diagnostic).
type phiMove struct {
	dst int32
	src operand
	bad int32
}

// gepKind classifies one pre-lowered GEP step.
type gepKind uint8

const (
	gConst gepKind = iota // off += add
	gDyn                  // off += eval(idx) * scale
	gErr                  // crash with msg (non-aggregate / bad struct index)
)

// gepStep is one pre-lowered GEP index step. For gErr, add indexes the
// error table.
type gepStep struct {
	kind  gepKind
	add   int
	scale int
	idx   operand
}

// callKind classifies a pre-resolved call target.
type callKind uint8

const (
	ckFunc   callKind = iota // callee
	ckMPI                    // mpiOp
	ckPrintf                 // printf builtin
	ckExit                   // exit builtin
	ckSleep                  // sleep/usleep builtins
	ckUndef                  // crash: call to undefined function
)

// cinstr is one compiled instruction. Field meaning depends on op; in
// always references the original instruction for runtime checks that
// need it (local-concurrency bookkeeping, diagnostics).
//
// cinstr is kept lean — it is what the execution loop walks — so the
// operands every opcode needs live inline and everything op-specific
// (branch targets, phi moves, call resolution, GEP steps, the alloca
// name, select's third operand) lives behind aux, allocated only for
// the instructions that need it.
type cinstr struct {
	op      ir.Opcode
	dst     int32 // result slot; -1 discards the result
	flag    bool  // ret: has value; alloca: has count operand
	sizeDyn bool  // size must be computed at execution (may panic, as before)
	gepSlow bool  // run the generic type-walking GEP path
	ck      callKind
	cmp     ir.Pred
	size    int // pre-sized bytes (alloca element, load/store access)
	a, b    operand
	typ     *ir.Type
	in      *ir.Instr
	aux     *caux
}

// caux holds the op-specific compiled data of one instruction.
type caux struct {
	c     operand   // select: false arm
	extra []operand // call arguments / slow-GEP indices
	name  string    // alloca: "%name"

	tgt0, tgt1     *cblock
	moves0, moves1 []phiMove

	gep []gepStep

	mpiOp  mpi.Op
	callee *cfunc
}

// Compile pre-compiles a module for execution. The result is immutable
// and safe for concurrent runs.
func Compile(mod *ir.Module) *Program {
	p := &Program{mod: mod}
	globalIdx := map[string]int32{}
	for i, g := range mod.Globals {
		p.globals = append(p.globals, cglobal{name: "@" + g.Name,
			size: ir.SizeOf(g.Elem), str: g.Str, init: g.Init, elem: g.Elem})
		// Last definition wins, matching the name-keyed map the
		// interpreter used to build per-rank globals.
		globalIdx[g.Name] = int32(i)
	}
	c := &compiler{prog: p, globalIdx: globalIdx, funcs: map[*ir.Func]*cfunc{}}
	shell := func(f *ir.Func) *cfunc {
		cf := &cfunc{name: f.Name}
		p.funcs = append(p.funcs, cf)
		c.funcs[f] = cf
		return cf
	}
	for _, f := range mod.Funcs {
		if !f.Decl {
			shell(f)
		}
	}
	// The entry point is resolved by name exactly like the interpreter
	// did; a declaration-only main still compiles (and still fails the
	// way it used to — at execution).
	if mf := mod.FuncByName("main"); mf != nil {
		if cf, ok := c.funcs[mf]; ok {
			p.main = cf
		} else {
			p.main = shell(mf)
		}
	}
	for f, cf := range c.funcs {
		c.compileFunc(cf, f)
	}
	return p
}

// compiler carries module-level resolution state.
type compiler struct {
	prog      *Program
	globalIdx map[string]int32
	funcs     map[*ir.Func]*cfunc
}

// errIdx interns a crash message into the program's error table.
func (c *compiler) errIdx(msg string) int32 {
	c.prog.errs = append(c.prog.errs, msg)
	return int32(len(c.prog.errs) - 1)
}

// fnCtx carries per-function slot numbering.
type fnCtx struct {
	c      *compiler
	params map[*ir.Param]int32
	slots  map[*ir.Instr]int32
	blocks map[*ir.Block]*cblock

	// opArena backs every call's operand slice and auxArena every
	// op-specific aux record, pre-counted so one allocation each serves
	// the whole function.
	opArena  []operand
	auxArena []caux
}

// takeAux hands out one aux record from the pre-counted arena.
func (fc *fnCtx) takeAux() *caux {
	if len(fc.auxArena) > 0 {
		a := &fc.auxArena[0]
		fc.auxArena = fc.auxArena[1:]
		return a
	}
	return &caux{}
}

// takeOps slices n operands off the pre-counted arena.
func (fc *fnCtx) takeOps(n int) []operand {
	if n <= len(fc.opArena) {
		out := fc.opArena[:n:n]
		fc.opArena = fc.opArena[n:]
		return out
	}
	return make([]operand, n)
}

func (c *compiler) compileFunc(cf *cfunc, f *ir.Func) {
	nInstr := 0
	nCode := 0
	nCallArgs := 0
	nAux := 0
	for _, b := range f.Blocks {
		nInstr += len(b.Instrs)
		for _, in := range b.Instrs {
			if in.Op != ir.OpPhi {
				nCode++
			}
			switch in.Op {
			case ir.OpCall:
				nCallArgs += len(in.Args)
				nAux++
			case ir.OpBr, ir.OpCondBr, ir.OpGEP, ir.OpSelect, ir.OpAlloca:
				nAux++
			}
		}
	}
	fc := &fnCtx{c: c,
		params:   make(map[*ir.Param]int32, len(f.Params)),
		slots:    make(map[*ir.Instr]int32, nInstr),
		blocks:   make(map[*ir.Block]*cblock, len(f.Blocks)),
		opArena:  make([]operand, nCallArgs),
		auxArena: make([]caux, nAux),
	}
	n := int32(0)
	for _, p := range f.Params {
		fc.params[p] = n
		n++
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			fc.slots[in] = n
			n++
		}
	}
	cf.nparams = len(f.Params)
	cf.nslots = int(n)
	cf.blocks = make([]*cblock, len(f.Blocks))
	cbs := make([]cblock, len(f.Blocks))
	for i, b := range f.Blocks {
		cb := &cbs[i]
		cb.name = b.Name
		fc.blocks[b] = cb
		cf.blocks[i] = cb
	}
	codeArena := make([]cinstr, 0, nCode)
	for _, b := range f.Blocks {
		cb := fc.blocks[b]
		start := len(codeArena)
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi {
				continue // folded into edge moves
			}
			codeArena = append(codeArena, fc.compileInstr(f, b, in))
		}
		cb.code = codeArena[start:len(codeArena):len(codeArena)]
	}
	if e := f.Entry(); e != nil {
		cf.entry = fc.blocks[e]
		cf.entryMoves = fc.edgeMoves(nil, e)
	}
}

// operand resolves an ir.Value reference the way Machine.eval did.
func (fc *fnCtx) operand(v ir.Value) operand {
	switch x := v.(type) {
	case *ir.Const:
		switch {
		case x.IsNull, x.IsUndef:
			return operand{kind: oConst}
		case x.IsFloat:
			return operand{kind: oConst, rv: RV{F: x.Float}}
		default:
			return operand{kind: oConst, rv: RV{I: x.Int}}
		}
	case *ir.Param:
		if s, ok := fc.params[x]; ok {
			return operand{kind: oSlot, slot: s}
		}
		// A parameter of another function read as zero (missing from the
		// old per-frame map).
		return operand{kind: oConst}
	case *ir.Instr:
		if s, ok := fc.slots[x]; ok {
			return operand{kind: oSlot, slot: s}
		}
		return operand{kind: oConst}
	case *ir.Global:
		if i, ok := fc.c.globalIdx[x.Name]; ok {
			return operand{kind: oGlobal, slot: i}
		}
		return operand{kind: oErr, slot: fc.c.errIdx("undefined global @" + x.Name)}
	case *ir.Func:
		return operand{kind: oErr, slot: fc.c.errIdx("function value @" + x.Name + " not supported")}
	}
	return operand{kind: oErr, slot: fc.c.errIdx(fmt.Sprintf("unknown value %T", v))}
}

// dstSlot mirrors the old storage rule: named instructions store their
// result; unnamed ones discard it (their slot reads as zero).
func (fc *fnCtx) dstSlot(in *ir.Instr) int32 {
	if in.Name == "" {
		return -1
	}
	return fc.slots[in]
}

// edgeMoves builds the parallel copy of the CFG edge from -> to: one
// move per leading phi of to, evaluating the argument flowing in from
// from. A phi with no matching incoming block compiles to a poisoned
// move reproducing the interpreter's crash.
func (fc *fnCtx) edgeMoves(from, to *ir.Block) []phiMove {
	var moves []phiMove
	for _, phi := range to.Phis() {
		mv := phiMove{dst: fc.slots[phi], bad: -1}
		found := false
		for j, b := range phi.Blocks {
			if b == from {
				mv.src = fc.operand(phi.Args[j])
				found = true
				break
			}
		}
		if !found {
			mv.bad = fc.c.errIdx(fmt.Sprintf("phi in %%%s has no edge from %%%s", to.Name, blockName(from)))
		}
		moves = append(moves, mv)
	}
	return moves
}

func blockName(b *ir.Block) string {
	if b == nil {
		return "<entry>"
	}
	return b.Name
}

// safeSizeOf computes ir.SizeOf guarding against the panics malformed
// (nil-typed) IR produces; !ok defers the computation — and the panic —
// to execution time, matching the interpreter.
func safeSizeOf(t *ir.Type) (size int, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return ir.SizeOf(t), true
}

func (fc *fnCtx) compileInstr(f *ir.Func, b *ir.Block, in *ir.Instr) cinstr {
	ci := cinstr{op: in.Op, in: in, dst: fc.dstSlot(in), typ: in.Typ, cmp: in.Cmp}
	args := in.Args
	argOp := func(i int) operand {
		if i < len(args) {
			return fc.operand(args[i])
		}
		// The old engine would have panicked indexing Args out of range.
		// The parser and irgen never produce such instructions; for
		// hand-built IR the crash still happens at execution time, with a
		// clearer (though not byte-identical) diagnostic.
		return operand{kind: oErr,
			slot: fc.c.errIdx(fmt.Sprintf("missing operand %d of %s", i, in.Op))}
	}
	switch {
	case in.Op == ir.OpBr:
		aux := fc.takeAux()
		aux.tgt0 = fc.blocks[in.Blocks[0]]
		aux.moves0 = fc.edgeMoves(b, in.Blocks[0])
		ci.aux = aux
	case in.Op == ir.OpCondBr:
		ci.a = argOp(0)
		aux := fc.takeAux()
		aux.tgt0 = fc.blocks[in.Blocks[0]]
		aux.moves0 = fc.edgeMoves(b, in.Blocks[0])
		aux.tgt1 = fc.blocks[in.Blocks[1]]
		aux.moves1 = fc.edgeMoves(b, in.Blocks[1])
		ci.aux = aux
	case in.Op == ir.OpRet:
		if len(args) == 1 {
			ci.flag = true
			ci.a = argOp(0)
		}
	case in.Op == ir.OpUnreachable:
		// no operands
	case in.Op == ir.OpAlloca:
		aux := fc.takeAux()
		aux.name = "%" + in.Name
		ci.aux = aux
		ci.size, ci.sizeDyn = sizeOrDyn(in.AllocTy)
		if len(args) == 1 {
			ci.flag = true
			ci.a = argOp(0)
		}
	case in.Op == ir.OpLoad:
		ci.a = argOp(0)
		ci.size, ci.sizeDyn = sizeOrDyn(in.Typ)
	case in.Op == ir.OpStore:
		ci.a = argOp(0)
		ci.b = argOp(1)
		if len(args) > 0 {
			ci.typ = args[0].Type()
			ci.size, ci.sizeDyn = sizeOrDyn(ci.typ)
		} else {
			ci.sizeDyn = true
		}
	case in.Op == ir.OpGEP:
		fc.compileGEP(&ci, in)
	case in.Op.IsBinary(), in.Op == ir.OpICmp, in.Op == ir.OpFCmp:
		ci.a = argOp(0)
		ci.b = argOp(1)
	case in.Op.IsConv():
		ci.a = argOp(0)
	case in.Op == ir.OpSelect:
		ci.a = argOp(0)
		ci.b = argOp(1)
		aux := fc.takeAux()
		aux.c = argOp(2)
		ci.aux = aux
	case in.Op == ir.OpCall:
		aux := fc.takeAux()
		aux.extra = fc.takeOps(len(args))
		for i := range args {
			aux.extra[i] = fc.operand(args[i])
		}
		ci.aux = aux
		fc.resolveCall(&ci, in)
	}
	return ci
}

func sizeOrDyn(t *ir.Type) (int, bool) {
	if s, ok := safeSizeOf(t); ok {
		return s, false
	}
	return 0, true
}

// resolveCall pre-resolves the callee with the interpreter's lookup
// order: MPI routines, then the printf/exit/sleep builtins, then
// module-defined functions; anything else crashes at execution.
func (fc *fnCtx) resolveCall(ci *cinstr, in *ir.Instr) {
	if op, ok := mpi.FromName(in.Callee); ok {
		ci.ck, ci.aux.mpiOp = ckMPI, op
		return
	}
	switch in.Callee {
	case "printf":
		ci.ck = ckPrintf
		return
	case "exit":
		ci.ck = ckExit
		return
	case "sleep", "usleep":
		ci.ck = ckSleep
		return
	}
	callee := fc.c.prog.mod.FuncByName(in.Callee)
	if callee == nil || callee.Decl {
		ci.ck = ckUndef
		return
	}
	cf, ok := fc.c.funcs[callee]
	if !ok {
		ci.ck = ckUndef
		return
	}
	ci.ck, ci.aux.callee = ckFunc, cf
}

// compileGEP lowers a GEP to precomputed offset steps. Constant indices
// fold into a single additive term; dynamic indices keep their byte
// scale. Struct fields with dynamic indices (the one shape whose later
// steps depend on a runtime value) fall back to the generic type-walking
// path, which reproduces the interpreter exactly.
func (fc *fnCtx) compileGEP(ci *cinstr, in *ir.Instr) {
	aux := fc.takeAux()
	ci.aux = aux
	slow := func() {
		ci.gepSlow = true
		aux.extra = make([]operand, len(in.Args))
		for i := range in.Args {
			aux.extra[i] = fc.operand(in.Args[i])
		}
	}
	if len(in.Args) == 0 {
		slow() // out-of-range indexing preserved at execution time
		return
	}
	ci.a = fc.operand(in.Args[0])
	bt := in.Args[0].Type()
	if bt == nil || bt.Kind != ir.KPtr {
		// The old engine read .Elem off whatever this was (possibly nil)
		// and panicked lazily; keep that on the generic path.
		slow()
		return
	}
	cur := bt.Elem
	var steps []gepStep
	addConst := func(n int) {
		if len(steps) > 0 && steps[len(steps)-1].kind == gConst {
			steps[len(steps)-1].add += n
			return
		}
		steps = append(steps, gepStep{kind: gConst, add: n})
	}
	for i, idxV := range in.Args[1:] {
		var scale int
		var fieldSel bool
		switch {
		case i == 0:
			s, ok := safeSizeOf(cur)
			if !ok {
				slow()
				return
			}
			scale = s
		case cur == nil:
			slow()
			return
		case cur.Kind == ir.KArray:
			cur = cur.Elem
			s, ok := safeSizeOf(cur)
			if !ok {
				slow()
				return
			}
			scale = s
		case cur.Kind == ir.KStruct:
			fieldSel = true
		default:
			// The interpreter evaluated the index before noticing the bad
			// type, so a poisoned index operand must still error first.
			steps = append(steps, gepStep{kind: gErr, idx: fc.operand(idxV),
				add: int(fc.c.errIdx(fmt.Sprintf("GEP into non-aggregate %s", cur)))})
			aux.gep = steps
			return // later steps are unreachable
		}
		cv, isConst := idxV.(*ir.Const)
		constIdx := isConst && !cv.IsFloat && !cv.IsNull && !cv.IsUndef
		if fieldSel {
			if !constIdx {
				// Dynamic struct index: later type steps depend on the
				// runtime value — generic path.
				slow()
				return
			}
			idx := int(cv.Int)
			if idx < 0 || idx >= len(cur.Fields) {
				steps = append(steps, gepStep{kind: gErr, idx: fc.operand(idxV),
					add: int(fc.c.errIdx(fmt.Sprintf("GEP struct index %d out of range", idx)))})
				aux.gep = steps
				return
			}
			off := 0
			okAll := true
			for _, fld := range cur.Fields[:idx] {
				s, ok := safeSizeOf(fld)
				if !ok {
					okAll = false
					break
				}
				off += s
			}
			if !okAll {
				slow()
				return
			}
			addConst(off)
			cur = cur.Fields[idx]
			continue
		}
		if constIdx {
			addConst(int(cv.Int) * scale)
			continue
		}
		// Null/undef/float constants evaluate like the interpreter did
		// (their .I field), which the operand already encodes.
		steps = append(steps, gepStep{kind: gDyn, scale: scale, idx: fc.operand(idxV)})
	}
	aux.gep = steps
}
