package mpisim

import (
	"fmt"

	"mpidetect/internal/ir"
	"mpidetect/internal/mpi"
)

// collSlot is one in-flight collective operation instance.
type collSlot struct {
	op      mpi.Op
	comm    int64
	done    bool
	members map[int]collMember
	order   []int
	newComm int64 // minted handle for Comm_split/Comm_dup
}

type collMember struct {
	args []RV
	p    *proc
}

// joinCollective attaches the calling rank to the matching open collective
// (creating it if absent) and completes the collective when every rank of
// the communicator has arrived.
func (rt *Runtime) joinCollective(p *proc, op mpi.Op, comm int64, args []RV) *collSlot {
	var slot *collSlot
	for _, s := range rt.colls {
		if s.done || s.op != op || s.comm != comm {
			continue
		}
		if _, already := s.members[p.rank]; already {
			continue
		}
		slot = s
		break
	}
	if slot == nil {
		slot = &collSlot{op: op, comm: comm, members: map[int]collMember{}}
		rt.colls = append(rt.colls, slot)
	}
	slot.members[p.rank] = collMember{args: args, p: p}
	slot.order = append(slot.order, p.rank)
	if len(slot.members) >= rt.commSize(comm) {
		rt.completeCollective(slot)
	}
	return slot
}

func (rt *Runtime) commSize(comm int64) int {
	if s, ok := rt.comms[comm]; ok {
		return s
	}
	return rt.size
}

func (rt *Runtime) doCollective(p *proc, op mpi.Op, args []RV) (RV, error) {
	sig, _ := mpi.SignatureOf(op)
	comm := int64(mpi.CommWorld)
	if sig.Arg.Comm >= 0 && sig.Arg.Comm < len(args) {
		comm = args[sig.Arg.Comm].I
	}
	slot := rt.joinCollective(p, op, comm, args)
	if err := rt.block(p, op, func() bool { return slot.done }); err != nil {
		return RV{}, err
	}
	return RV{I: mpi.Success}, nil
}

func (rt *Runtime) doICollective(p *proc, op mpi.Op, args []RV) (RV, error) {
	sig, _ := mpi.SignatureOf(op)
	comm := int64(mpi.CommWorld)
	if sig.Arg.Comm >= 0 && sig.Arg.Comm < len(args) {
		comm = args[sig.Arg.Comm].I
	}
	reqIdx := sig.Arg.Request
	if reqIdx < 0 || reqIdx >= len(args) || args[reqIdx].P == nil {
		rt.report(Violation{Kind: VInvalidParam, Rank: p.rank, Op: op, Msg: "null request pointer"})
		return RV{I: mpi.ErrOther}, nil
	}
	slot := rt.joinCollective(p, op, comm, args)
	rt.nextReq++
	r := rt.ar.newRequest()
	*r = request{id: rt.nextReq, owner: p.rank, op: op, active: true, coll: slot}
	rt.reqs[r.id] = r
	ptr := args[reqIdx].P
	if err := ptr.Obj.store(ptr.Off, ir.I64, RV{I: r.id}); err != nil {
		return RV{}, err
	}
	return RV{I: mpi.Success}, nil
}

// completeCollective validates argument consistency across the members and
// performs the data movement, then releases every blocked participant.
func (rt *Runtime) completeCollective(s *collSlot) {
	s.done = true
	sig, _ := mpi.SignatureOf(s.op)
	ref := s.members[s.order[0]]

	argInt := func(m collMember, idx int) int64 {
		if idx < 0 || idx >= len(m.args) {
			return 0
		}
		return m.args[idx].I
	}
	// Consistency checks against the first arriving rank.
	for _, rank := range s.order[1:] {
		m := s.members[rank]
		if sig.Arg.Root >= 0 && argInt(m, sig.Arg.Root) != argInt(ref, sig.Arg.Root) {
			rt.reportOnce(Violation{Kind: VRootMismatch, Rank: rank, Op: s.op,
				Msg: fmt.Sprintf("root %d disagrees with root %d", argInt(m, sig.Arg.Root), argInt(ref, sig.Arg.Root))})
		}
		if sig.Arg.RedOp >= 0 && argInt(m, sig.Arg.RedOp) != argInt(ref, sig.Arg.RedOp) {
			rt.reportOnce(Violation{Kind: VOpMismatch, Rank: rank, Op: s.op,
				Msg: "reduction operator disagreement"})
		}
		if sig.Arg.Datatype >= 0 {
			a := mpi.Datatype(argInt(m, sig.Arg.Datatype))
			b := mpi.Datatype(argInt(ref, sig.Arg.Datatype))
			if !rt.dtCompatible(a, b) {
				rt.reportOnce(Violation{Kind: VTypeMismatch, Rank: rank, Op: s.op,
					Msg: fmt.Sprintf("datatype %s disagrees with %s", a, b)})
			}
		}
		if sig.Arg.Count >= 0 && argInt(m, sig.Arg.Count) != argInt(ref, sig.Arg.Count) {
			rt.reportOnce(Violation{Kind: VTypeMismatch, Rank: rank, Op: s.op,
				Msg: fmt.Sprintf("count %d disagrees with %d", argInt(m, sig.Arg.Count), argInt(ref, sig.Arg.Count))})
		}
	}
	rt.moveCollectiveData(s)
}

// bufOf returns the idx-th argument as a pointer.
func bufOf(m collMember, idx int) *Ptr {
	if idx < 0 || idx >= len(m.args) {
		return nil
	}
	return m.args[idx].P
}

// moveCollectiveData implements the data semantics of each collective so
// that simulated programs compute real results.
func (rt *Runtime) moveCollectiveData(s *collSlot) {
	switch s.op {
	case mpi.OpBarrier, mpi.OpIbarrier, mpi.OpCommSplit, mpi.OpCommDup:
		// no data
	case mpi.OpBcast, mpi.OpIbcast:
		rt.bcastData(s, 0, 1, 2, 3)
	case mpi.OpReduce:
		rt.reduceData(s, 0, 1, 2, 3, 4, 5, false)
	case mpi.OpAllreduce, mpi.OpIallreduce:
		rt.reduceData(s, 0, 1, 2, 3, 4, -1, true)
	case mpi.OpScan, mpi.OpExscan:
		rt.scanData(s)
	case mpi.OpGather:
		rt.gatherData(s)
	case mpi.OpScatter:
		rt.scatterData(s)
	case mpi.OpAllgather, mpi.OpAlltoall:
		rt.allgatherData(s)
	}
}

func (rt *Runtime) bcastData(s *collSlot, bufIdx, countIdx, dtIdx, rootIdx int) {
	ref := s.members[s.order[0]]
	root := int(ref.args[rootIdx].I)
	rm, ok := s.members[root]
	if !ok {
		return
	}
	src := bufOf(rm, bufIdx)
	if src == nil {
		return
	}
	n := int(rm.args[countIdx].I) * rt.dtSize(mpi.Datatype(rm.args[dtIdx].I))
	n = clampLen(src, n)
	data := make([]byte, n)
	copy(data, src.Obj.Bytes[src.Off:src.Off+n])
	for rank, m := range s.members {
		if rank == root {
			continue
		}
		dst := bufOf(m, bufIdx)
		if dst == nil {
			continue
		}
		k := clampLen(dst, n)
		copy(dst.Obj.Bytes[dst.Off:dst.Off+k], data[:k])
	}
}

// reduceData implements Reduce/Allreduce for MPI_INT and MPI_DOUBLE.
func (rt *Runtime) reduceData(s *collSlot, sIdx, rIdx, cIdx, dtIdx, opIdx, rootIdx int, all bool) {
	ref := s.members[s.order[0]]
	count := int(ref.args[cIdx].I)
	dt := mpi.Datatype(ref.args[dtIdx].I)
	op := mpi.ReduceOp(ref.args[opIdx].I)
	if count <= 0 {
		return
	}
	isInt := dt == mpi.DTInt || dt == mpi.DTLong || dt == mpi.DTUnsigned
	accI := make([]int64, count)
	accF := make([]float64, count)
	first := true
	for _, rank := range s.order {
		m := s.members[rank]
		src := bufOf(m, sIdx)
		if src == nil {
			continue
		}
		for i := 0; i < count; i++ {
			off := src.Off + i*rt.dtSize(dt)
			if off+rt.dtSize(dt) > len(src.Obj.Bytes) {
				break
			}
			var vi int64
			var vf float64
			if isInt {
				rv, _ := src.Obj.load(off, ir.I32)
				vi = rv.I
			} else {
				rv, _ := src.Obj.load(off, ir.F64)
				vf = rv.F
			}
			if first {
				accI[i], accF[i] = vi, vf
			} else {
				accI[i] = reduceInt(op, accI[i], vi)
				accF[i] = reduceFloat(op, accF[i], vf)
			}
		}
		first = false
	}
	write := func(m collMember) {
		dst := bufOf(m, rIdx)
		if dst == nil {
			return
		}
		for i := 0; i < count; i++ {
			off := dst.Off + i*rt.dtSize(dt)
			if off+rt.dtSize(dt) > len(dst.Obj.Bytes) {
				break
			}
			if isInt {
				_ = dst.Obj.store(off, ir.I32, RV{I: accI[i]})
			} else {
				_ = dst.Obj.store(off, ir.F64, RV{F: accF[i]})
			}
		}
	}
	if all {
		for _, m := range s.members {
			write(m)
		}
		return
	}
	root := int(ref.args[rootIdx].I)
	if rm, ok := s.members[root]; ok {
		write(rm)
	}
}

// scanData implements inclusive scan with MPI_SUM semantics (the only op
// the generators use with Scan).
func (rt *Runtime) scanData(s *collSlot) {
	ref := s.members[s.order[0]]
	count := int(ref.args[2].I)
	dt := mpi.Datatype(ref.args[3].I)
	isInt := dt == mpi.DTInt || dt == mpi.DTLong
	acc := make([]int64, count)
	accF := make([]float64, count)
	for rank := 0; rank < rt.commSize(s.comm); rank++ {
		m, ok := s.members[rank]
		if !ok {
			continue
		}
		src, dst := bufOf(m, 0), bufOf(m, 1)
		for i := 0; i < count; i++ {
			sz := rt.dtSize(dt)
			if src != nil && src.Off+(i+1)*sz <= len(src.Obj.Bytes) {
				if isInt {
					rv, _ := src.Obj.load(src.Off+i*sz, ir.I32)
					acc[i] += rv.I
				} else {
					rv, _ := src.Obj.load(src.Off+i*sz, ir.F64)
					accF[i] += rv.F
				}
			}
			if dst != nil && dst.Off+(i+1)*sz <= len(dst.Obj.Bytes) {
				if isInt {
					_ = dst.Obj.store(dst.Off+i*sz, ir.I32, RV{I: acc[i]})
				} else {
					_ = dst.Obj.store(dst.Off+i*sz, ir.F64, RV{F: accF[i]})
				}
			}
		}
	}
}

func (rt *Runtime) gatherData(s *collSlot) {
	// sbuf0 scount1 sdt2 rbuf3 rcount4 rdt5 root6 comm7
	ref := s.members[s.order[0]]
	root := int(ref.args[6].I)
	rm, ok := s.members[root]
	if !ok {
		return
	}
	dst := bufOf(rm, 3)
	if dst == nil {
		return
	}
	per := int(rm.args[4].I) * rt.dtSize(mpi.Datatype(rm.args[5].I))
	for rank := 0; rank < rt.commSize(s.comm); rank++ {
		m, ok := s.members[rank]
		if !ok {
			continue
		}
		src := bufOf(m, 0)
		if src == nil {
			continue
		}
		n := int(m.args[1].I) * rt.dtSize(mpi.Datatype(m.args[2].I))
		n = clampLen(src, n)
		dOff := dst.Off + rank*per
		if dOff+n > len(dst.Obj.Bytes) {
			n = len(dst.Obj.Bytes) - dOff
		}
		if n > 0 {
			copy(dst.Obj.Bytes[dOff:dOff+n], src.Obj.Bytes[src.Off:src.Off+n])
		}
	}
}

func (rt *Runtime) scatterData(s *collSlot) {
	ref := s.members[s.order[0]]
	root := int(ref.args[6].I)
	rm, ok := s.members[root]
	if !ok {
		return
	}
	src := bufOf(rm, 0)
	if src == nil {
		return
	}
	per := int(rm.args[1].I) * rt.dtSize(mpi.Datatype(rm.args[2].I))
	for rank := 0; rank < rt.commSize(s.comm); rank++ {
		m, ok := s.members[rank]
		if !ok {
			continue
		}
		dst := bufOf(m, 3)
		if dst == nil {
			continue
		}
		sOff := src.Off + rank*per
		n := per
		if sOff+n > len(src.Obj.Bytes) {
			n = len(src.Obj.Bytes) - sOff
		}
		n = clampLen(dst, n)
		if n > 0 {
			copy(dst.Obj.Bytes[dst.Off:dst.Off+n], src.Obj.Bytes[sOff:sOff+n])
		}
	}
}

func (rt *Runtime) allgatherData(s *collSlot) {
	// sbuf0 scount1 sdt2 rbuf3 rcount4 rdt5 comm6
	for rank := 0; rank < rt.commSize(s.comm); rank++ {
		src0, ok := s.members[rank]
		if !ok {
			continue
		}
		src := bufOf(src0, 0)
		if src == nil {
			continue
		}
		n := int(src0.args[1].I) * rt.dtSize(mpi.Datatype(src0.args[2].I))
		n = clampLen(src, n)
		for _, m := range s.members {
			dst := bufOf(m, 3)
			if dst == nil {
				continue
			}
			dOff := dst.Off + rank*n
			k := n
			if dOff+k > len(dst.Obj.Bytes) {
				k = len(dst.Obj.Bytes) - dOff
			}
			if k > 0 {
				copy(dst.Obj.Bytes[dOff:dOff+k], src.Obj.Bytes[src.Off:src.Off+k])
			}
		}
	}
}

func clampLen(p *Ptr, n int) int {
	if n < 0 {
		return 0
	}
	if p.Off+n > len(p.Obj.Bytes) {
		n = len(p.Obj.Bytes) - p.Off
	}
	if n < 0 {
		return 0
	}
	return n
}

func reduceInt(op mpi.ReduceOp, a, b int64) int64 {
	switch op {
	case mpi.ROSum:
		return a + b
	case mpi.ROProd:
		return a * b
	case mpi.ROMax:
		if a > b {
			return a
		}
		return b
	case mpi.ROMin:
		if a < b {
			return a
		}
		return b
	case mpi.ROLand:
		if a != 0 && b != 0 {
			return 1
		}
		return 0
	case mpi.ROBor:
		return a | b
	}
	return a + b
}

func reduceFloat(op mpi.ReduceOp, a, b float64) float64 {
	switch op {
	case mpi.ROSum:
		return a + b
	case mpi.ROProd:
		return a * b
	case mpi.ROMax:
		if a > b {
			return a
		}
		return b
	case mpi.ROMin:
		if a < b {
			return a
		}
		return b
	}
	return a + b
}

// doCommCreate implements Comm_split / Comm_dup as collectives that mint a
// fresh communicator handle of the same size.
func (rt *Runtime) doCommCreate(p *proc, op mpi.Op, args []RV) (RV, error) {
	comm := args[0].I
	slot := rt.joinCollective(p, op, comm, args)
	if err := rt.block(p, op, func() bool { return slot.done }); err != nil {
		return RV{}, err
	}
	// The first-arriving rank mints the handle at completion.
	if slot.newComm == 0 {
		rt.nextComm++
		slot.newComm = rt.nextComm
		rt.comms[slot.newComm] = rt.commSize(comm)
	}
	outIdx := 3
	if op == mpi.OpCommDup {
		outIdx = 1
	}
	if ptr := args[outIdx].P; ptr != nil {
		if err := ptr.Obj.store(ptr.Off, ir.I32, RV{I: slot.newComm}); err != nil {
			return RV{}, err
		}
		p.ownedComms = append(p.ownedComms, slot.newComm)
	}
	return RV{I: mpi.Success}, nil
}

func (rt *Runtime) doCommFree(p *proc, args []RV) (RV, error) {
	ptr := args[0].P
	if ptr == nil {
		rt.report(Violation{Kind: VInvalidParam, Rank: p.rank, Op: mpi.OpCommFree, Msg: "null comm pointer"})
		return RV{I: mpi.ErrOther}, nil
	}
	hv, err := ptr.Obj.load(ptr.Off, ir.I32)
	if err != nil {
		return RV{}, err
	}
	if hv.I == mpi.CommWorld || hv.I == mpi.CommSelf {
		rt.report(Violation{Kind: VInvalidParam, Rank: p.rank, Op: mpi.OpCommFree,
			Msg: "freeing a built-in communicator"})
		return RV{I: mpi.ErrOther}, nil
	}
	for i, c := range p.ownedComms {
		if c == hv.I {
			p.ownedComms = append(p.ownedComms[:i], p.ownedComms[i+1:]...)
			break
		}
	}
	_ = ptr.Obj.store(ptr.Off, ir.I32, RV{I: mpi.CommNull})
	return RV{I: mpi.Success}, nil
}

func (rt *Runtime) doTypeContiguous(p *proc, args []RV) (RV, error) {
	count := int(args[0].I)
	base := mpi.Datatype(args[1].I)
	outp := args[2].P
	if outp == nil || count <= 0 {
		rt.report(Violation{Kind: VInvalidParam, Rank: p.rank, Op: mpi.OpTypeContiguous,
			Msg: "invalid count or null newtype"})
		return RV{I: mpi.ErrOther}, nil
	}
	rt.nextType++
	id := rt.nextType
	rt.dtypes[id] = false
	rt.dtypeSizes(id, count*rt.dtSize(base))
	if err := outp.Obj.store(outp.Off, ir.I32, RV{I: id}); err != nil {
		return RV{}, err
	}
	p.ownedTypes = append(p.ownedTypes, id)
	return RV{I: mpi.Success}, nil
}

func (rt *Runtime) doTypeCommitFree(p *proc, op mpi.Op, args []RV) (RV, error) {
	ptr := args[0].P
	if ptr == nil {
		rt.report(Violation{Kind: VInvalidParam, Rank: p.rank, Op: op, Msg: "null datatype pointer"})
		return RV{I: mpi.ErrOther}, nil
	}
	hv, err := ptr.Obj.load(ptr.Off, ir.I32)
	if err != nil {
		return RV{}, err
	}
	if _, ok := rt.dtypes[hv.I]; !ok {
		rt.report(Violation{Kind: VInvalidParam, Rank: p.rank, Op: op,
			Msg: fmt.Sprintf("%s on a non-derived datatype %d", op, hv.I)})
		return RV{I: mpi.ErrOther}, nil
	}
	if op == mpi.OpTypeCommit {
		rt.dtypes[hv.I] = true
	} else {
		delete(rt.dtypes, hv.I)
		_ = ptr.Obj.store(ptr.Off, ir.I32, RV{I: int64(mpi.DTNull)})
	}
	return RV{I: mpi.Success}, nil
}
