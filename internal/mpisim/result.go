// Package mpisim is a deterministic MPI runtime simulator. It executes IR
// modules produced by the front-end with one simulated process (rank) per
// virtual MPI process, using a cooperative round-robin scheduler so runs
// are fully reproducible. The runtime implements the MPI subset of the
// benchmarks — blocking and nonblocking point-to-point, persistent
// requests, collectives, and one-sided epochs — and performs the dynamic
// correctness checks (argument validation, type matching, deadlock
// detection, request/epoch lifecycle, race detection, leak checking) that
// the paper's dynamic comparison tools (ITAC, MUST) perform.
package mpisim

import (
	"fmt"

	"mpidetect/internal/mpi"
)

// ViolationKind classifies a dynamic error found by the runtime.
type ViolationKind int

// The dynamic error kinds reported by the simulator.
const (
	VNone ViolationKind = iota
	VInvalidParam
	VTypeMismatch   // send/recv or collective datatype mismatch
	VTruncation     // receive buffer smaller than the message
	VRootMismatch   // collective root disagreement
	VOpMismatch     // collective reduction-op disagreement
	VDeadlock       // no runnable rank and unfinished work
	VMessageRace    // wildcard receive with multiple possible matches
	VRequestLife    // request lifecycle misuse
	VEpochLife      // RMA epoch misuse
	VLocalConc      // local buffer touched while an async op is pending
	VGlobalConc     // conflicting RMA accesses in the same epoch
	VResourceLeak   // request/window/datatype/comm leaked at finalize
	VCallOrdering   // MPI call outside Init/Finalize, missing calls
	VBufferOverflow // buffer access out of bounds
)

var vkindNames = map[ViolationKind]string{
	VNone:           "none",
	VInvalidParam:   "invalid-parameter",
	VTypeMismatch:   "type-mismatch",
	VTruncation:     "truncation",
	VRootMismatch:   "root-mismatch",
	VOpMismatch:     "op-mismatch",
	VDeadlock:       "deadlock",
	VMessageRace:    "message-race",
	VRequestLife:    "request-lifecycle",
	VEpochLife:      "epoch-lifecycle",
	VLocalConc:      "local-concurrency",
	VGlobalConc:     "global-concurrency",
	VResourceLeak:   "resource-leak",
	VCallOrdering:   "call-ordering",
	VBufferOverflow: "buffer-overflow",
}

// String returns a stable name for the kind.
func (k ViolationKind) String() string {
	if s, ok := vkindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("violation(%d)", int(k))
}

// Violation is one dynamic error instance.
type Violation struct {
	Kind ViolationKind
	Rank int    // reporting rank, -1 for global findings
	Op   mpi.Op // operation involved (OpNone if not applicable)
	Msg  string
}

// String formats the violation for logs.
func (v Violation) String() string {
	return fmt.Sprintf("[rank %d] %s at %s: %s", v.Rank, v.Kind, v.Op, v.Msg)
}

// Result summarises a simulated run.
type Result struct {
	Violations []Violation
	Deadlock   bool
	Timeout    bool // a rank exceeded its step budget or the wall-clock budget
	// WallTimeout marks a Timeout caused by Config.WallBudget. Unlike the
	// deterministic step budget, wall-clock exhaustion depends on host
	// load, so callers that cache verdicts must not treat it as a
	// property of the program.
	WallTimeout bool
	Canceled    bool // the caller's context expired before the run finished
	Crashed     bool // interpreter fault (runtime error in the program)
	CrashMsg    string
	Output      string // interleaved printf output
	// OutputTruncated reports that at least one rank's printf stream hit
	// the per-rank output cap (maxRankOutput) and was cut at a truncation
	// marker, so a simulated printf loop cannot balloon server memory.
	OutputTruncated bool
	// Steps is the total interpreter step count summed over all ranks — a
	// deterministic measure of how much simulated work the run performed.
	Steps int64
}

// Erroneous reports whether the run surfaced any dynamic problem. A
// canceled run is deliberately not erroneous: cancellation is a harness
// condition, not a property of the program, and callers on the serving
// path must check Canceled explicitly and treat the run as inconclusive.
func (r *Result) Erroneous() bool {
	return len(r.Violations) > 0 || r.Deadlock || r.Timeout || r.Crashed
}

// Has reports whether a violation of kind k was recorded.
func (r *Result) Has(k ViolationKind) bool {
	for _, v := range r.Violations {
		if v.Kind == k {
			return true
		}
	}
	return false
}
