package mpisim

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	. "mpidetect/internal/ast"
	"mpidetect/internal/irgen"
)

// spinProgram burns ~8 billion interpreter steps without ever blocking
// on MPI: the worst case for cooperative cancellation, since only the
// interpreter's periodic stop check can abort it.
func spinProgram() *Program {
	return MainProgram("spin",
		append(MPIBoilerplate(),
			Decl("x", Int, I(0)),
			While(Lt(Id("x"), I(2_000_000_000)),
				Assign(Id("x"), Add(Id("x"), I(1)))),
			Finalize(),
		)...)
}

// deadlockProgram has every rank Recv before Send: an immediate global stall.
func deadlockProgram() *Program {
	return MainProgram("deadlock",
		append(MPIBoilerplate(),
			DeclArr("buf", 4, Int),
			CallS("MPI_Recv", Id("buf"), I(4), Id("MPI_INT"), Sub(I(1), Id("rank")), I(3),
				world(), Id("MPI_STATUS_IGNORE")),
			CallS("MPI_Send", Id("buf"), I(4), Id("MPI_INT"), Sub(I(1), Id("rank")), I(3),
				world()),
			Finalize(),
		)...)
}

// crashProgram divides by zero on every rank.
func crashProgram() *Program {
	return MainProgram("crash",
		append(MPIBoilerplate(),
			Decl("z", Int, I(0)),
			Decl("y", Int, Bin("/", I(1), Id("z"))),
			CallS("printf", S("%d\n"), Id("y")),
			Finalize(),
		)...)
}

func TestWallBudgetSurfacesAsTimeout(t *testing.T) {
	mod := irgen.MustLower(spinProgram())
	start := time.Now()
	res := Run(mod, Config{Ranks: 2, MaxSteps: 1 << 40, WallBudget: 30 * time.Millisecond})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("wall budget of 30ms took %s to trip", elapsed)
	}
	if !res.Timeout {
		t.Fatalf("wall-budget run did not report Timeout: %+v", res)
	}
	if res.Canceled {
		t.Fatalf("wall-budget run misreported as Canceled")
	}
}

func TestCancelAbortsRunPromptly(t *testing.T) {
	mod := irgen.MustLower(spinProgram())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	res := RunCtx(ctx, mod, Config{Ranks: 2, MaxSteps: 1 << 40})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %s to abort the run", elapsed)
	}
	if !res.Canceled {
		t.Fatalf("canceled run did not report Canceled: %+v", res)
	}
	if res.Timeout {
		t.Fatalf("cancellation misreported as Timeout")
	}
	if res.Erroneous() {
		t.Fatalf("canceled run of a correct program reported errors: %+v", res.Violations)
	}
}

func TestCancelBeforeStart(t *testing.T) {
	mod := irgen.MustLower(spinProgram())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := RunCtx(ctx, mod, Config{Ranks: 2, MaxSteps: 1 << 40})
	if !res.Canceled {
		t.Fatalf("pre-canceled run did not report Canceled: %+v", res)
	}
}

// TestGoroutineHygiene asserts that the per-rank goroutines always exit —
// after deadlocks, crashes, step-budget timeouts, wall-budget timeouts,
// and cancellations — so a serving process running many simulations never
// accumulates goroutines parked on resume/yielded channels. Run under
// -race (CI does) to also prove the abort handshake is race-free.
func TestGoroutineHygiene(t *testing.T) {
	runtime.GC()
	base := runtime.NumGoroutine()

	scenarios := []struct {
		name string
		run  func()
	}{
		{"deadlock", func() {
			Run(irgen.MustLower(deadlockProgram()), Config{Ranks: 2})
		}},
		{"crash", func() {
			Run(irgen.MustLower(crashProgram()), Config{Ranks: 2})
		}},
		{"step-timeout", func() {
			Run(irgen.MustLower(spinProgram()), Config{Ranks: 2, MaxSteps: 5000})
		}},
		{"wall-timeout", func() {
			Run(irgen.MustLower(spinProgram()),
				Config{Ranks: 2, MaxSteps: 1 << 40, WallBudget: 5 * time.Millisecond})
		}},
		{"canceled", func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
			defer cancel()
			RunCtx(ctx, irgen.MustLower(spinProgram()), Config{Ranks: 2, MaxSteps: 1 << 40})
		}},
	}
	for _, sc := range scenarios {
		for i := 0; i < 8; i++ {
			sc.run()
		}
	}

	// The rank goroutines exit right after handing their final yield to
	// the scheduler; give the runtime a moment to reap them.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", base, runtime.NumGoroutine())
}

// TestUnknownDerivedDatatypeReported: a receive posted with a derived
// datatype id that was never created must produce a use-of-unknown-
// datatype violation, not a silent 4-byte size guess — the old guess
// fabricated a truncation verdict here (8 sent bytes vs a guessed 4-byte
// capacity) while masking real mismatches elsewhere.
func TestUnknownDerivedDatatypeReported(t *testing.T) {
	prog := MainProgram("unknown_dtype",
		append(MPIBoilerplate(),
			DeclArr("buf", 4, Int),
			IfElse(Eq(Id("rank"), I(0)),
				[]Stmt{CallS("MPI_Send", Id("buf"), I(2), Id("MPI_INT"), I(1), I(5), world())},
				[]Stmt{CallS("MPI_Recv", Id("buf"), I(1), I(150), I(0), I(5),
					world(), Id("MPI_STATUS_IGNORE"))}),
			Finalize(),
		)...)
	res := runProg(t, prog, 2)
	if res.Has(VTruncation) {
		t.Fatalf("truncation verdict fabricated from a guessed datatype size: %+v", res.Violations)
	}
	if !res.Has(VInvalidParam) {
		t.Fatalf("unknown derived datatype not reported: %+v", res.Violations)
	}
	// One invalid-parameter diagnostic names the bad datatype (call-site
	// validation and the delivery-time check dedupe onto one violation).
	found := false
	for _, v := range res.Violations {
		if v.Kind == VInvalidParam && strings.Contains(v.Msg, "150") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no diagnostic naming datatype 150 in %+v", res.Violations)
	}
}
