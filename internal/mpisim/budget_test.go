package mpisim

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	ast "mpidetect/internal/ast"
	"mpidetect/internal/irgen"
)

// spinProgram burns ~8 billion interpreter steps without ever blocking
// on MPI: the worst case for cooperative cancellation, since only the
// interpreter's periodic stop check can abort it.
func spinProgram() *ast.Program {
	return ast.MainProgram("spin",
		append(ast.MPIBoilerplate(),
			ast.Decl("x", ast.Int, ast.I(0)),
			ast.While(ast.Lt(ast.Id("x"), ast.I(2_000_000_000)),
				ast.Assign(ast.Id("x"), ast.Add(ast.Id("x"), ast.I(1)))),
			ast.Finalize(),
		)...)
}

// deadlockProgram has every rank Recv before Send: an immediate global stall.
func deadlockProgram() *ast.Program {
	return ast.MainProgram("deadlock",
		append(ast.MPIBoilerplate(),
			ast.DeclArr("buf", 4, ast.Int),
			ast.CallS("MPI_Recv", ast.Id("buf"), ast.I(4), ast.Id("MPI_INT"), ast.Sub(ast.I(1), ast.Id("rank")), ast.I(3),
				world(), ast.Id("MPI_STATUS_IGNORE")),
			ast.CallS("MPI_Send", ast.Id("buf"), ast.I(4), ast.Id("MPI_INT"), ast.Sub(ast.I(1), ast.Id("rank")), ast.I(3),
				world()),
			ast.Finalize(),
		)...)
}

// crashProgram divides by zero on every rank.
func crashProgram() *ast.Program {
	return ast.MainProgram("crash",
		append(ast.MPIBoilerplate(),
			ast.Decl("z", ast.Int, ast.I(0)),
			ast.Decl("y", ast.Int, ast.Bin("/", ast.I(1), ast.Id("z"))),
			ast.CallS("printf", ast.S("%d\n"), ast.Id("y")),
			ast.Finalize(),
		)...)
}

func TestWallBudgetSurfacesAsTimeout(t *testing.T) {
	mod := irgen.MustLower(spinProgram())
	start := time.Now()
	res := Run(mod, Config{Ranks: 2, MaxSteps: 1 << 40, WallBudget: 30 * time.Millisecond})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("wall budget of 30ms took %s to trip", elapsed)
	}
	if !res.Timeout {
		t.Fatalf("wall-budget run did not report Timeout: %+v", res)
	}
	if res.Canceled {
		t.Fatalf("wall-budget run misreported as Canceled")
	}
}

func TestCancelAbortsRunPromptly(t *testing.T) {
	mod := irgen.MustLower(spinProgram())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	res := RunCtx(ctx, mod, Config{Ranks: 2, MaxSteps: 1 << 40})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %s to abort the run", elapsed)
	}
	if !res.Canceled {
		t.Fatalf("canceled run did not report Canceled: %+v", res)
	}
	if res.Timeout {
		t.Fatalf("cancellation misreported as Timeout")
	}
	if res.Erroneous() {
		t.Fatalf("canceled run of a correct program reported errors: %+v", res.Violations)
	}
}

func TestCancelBeforeStart(t *testing.T) {
	mod := irgen.MustLower(spinProgram())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := RunCtx(ctx, mod, Config{Ranks: 2, MaxSteps: 1 << 40})
	if !res.Canceled {
		t.Fatalf("pre-canceled run did not report Canceled: %+v", res)
	}
}

// TestGoroutineHygiene asserts that the per-rank goroutines always exit —
// after deadlocks, crashes, step-budget timeouts, wall-budget timeouts,
// and cancellations — so a serving process running many simulations never
// accumulates goroutines parked on resume/yielded channels. Run under
// -race (CI does) to also prove the abort handshake is race-free.
func TestGoroutineHygiene(t *testing.T) {
	runtime.GC()
	base := runtime.NumGoroutine()

	scenarios := []struct {
		name string
		run  func()
	}{
		{"deadlock", func() {
			Run(irgen.MustLower(deadlockProgram()), Config{Ranks: 2})
		}},
		{"crash", func() {
			Run(irgen.MustLower(crashProgram()), Config{Ranks: 2})
		}},
		{"step-timeout", func() {
			Run(irgen.MustLower(spinProgram()), Config{Ranks: 2, MaxSteps: 5000})
		}},
		{"wall-timeout", func() {
			Run(irgen.MustLower(spinProgram()),
				Config{Ranks: 2, MaxSteps: 1 << 40, WallBudget: 5 * time.Millisecond})
		}},
		{"canceled", func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
			defer cancel()
			RunCtx(ctx, irgen.MustLower(spinProgram()), Config{Ranks: 2, MaxSteps: 1 << 40})
		}},
	}
	for _, sc := range scenarios {
		for i := 0; i < 8; i++ {
			sc.run()
		}
	}

	// The rank goroutines exit right after handing their final yield to
	// the scheduler; give the runtime a moment to reap them.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", base, runtime.NumGoroutine())
}

// TestUnknownDerivedDatatypeReported: a receive posted with a derived
// datatype id that was never created must produce a use-of-unknown-
// datatype violation, not a silent 4-byte size guess — the old guess
// fabricated a truncation verdict here (8 sent bytes vs a guessed 4-byte
// capacity) while masking real mismatches elsewhere.
func TestUnknownDerivedDatatypeReported(t *testing.T) {
	prog := ast.MainProgram("unknown_dtype",
		append(ast.MPIBoilerplate(),
			ast.DeclArr("buf", 4, ast.Int),
			ast.IfElse(ast.Eq(ast.Id("rank"), ast.I(0)),
				[]ast.Stmt{ast.CallS("MPI_Send", ast.Id("buf"), ast.I(2), ast.Id("MPI_INT"), ast.I(1), ast.I(5), world())},
				[]ast.Stmt{ast.CallS("MPI_Recv", ast.Id("buf"), ast.I(1), ast.I(150), ast.I(0), ast.I(5),
					world(), ast.Id("MPI_STATUS_IGNORE"))}),
			ast.Finalize(),
		)...)
	res := runProg(t, prog, 2)
	if res.Has(VTruncation) {
		t.Fatalf("truncation verdict fabricated from a guessed datatype size: %+v", res.Violations)
	}
	if !res.Has(VInvalidParam) {
		t.Fatalf("unknown derived datatype not reported: %+v", res.Violations)
	}
	// One invalid-parameter diagnostic names the bad datatype (call-site
	// validation and the delivery-time check dedupe onto one violation).
	found := false
	for _, v := range res.Violations {
		if v.Kind == VInvalidParam && strings.Contains(v.Msg, "150") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no diagnostic naming datatype 150 in %+v", res.Violations)
	}
}
