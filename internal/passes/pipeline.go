package passes

import "mpidetect/internal/ir"

// OptLevel names a compiler option evaluated in the paper (Table IV).
type OptLevel int

// The three optimisation levels the paper compares.
const (
	O0 OptLevel = iota // leave the code intact (easy to analyse)
	O2                 // representative of a real build
	Os                 // size-oriented, normalises code-size bias
)

// String returns the flag spelling, e.g. "-O2".
func (o OptLevel) String() string {
	switch o {
	case O0:
		return "-O0"
	case O2:
		return "-O2"
	case Os:
		return "-Os"
	}
	return "-O?"
}

// ParseOptLevel maps a flag spelling to an OptLevel.
func ParseOptLevel(s string) (OptLevel, bool) {
	switch s {
	case "-O0", "O0", "o0":
		return O0, true
	case "-O2", "O2", "o2":
		return O2, true
	case "-Os", "Os", "os", "-OS":
		return Os, true
	}
	return O0, false
}

// Optimize runs the pass pipeline for the given level over the module,
// in place. -O0 is the identity (matching clang, which only lowers).
func Optimize(m *ir.Module, level OptLevel) {
	switch level {
	case O0:
		return
	case O2:
		optimize(m, 80)
	case Os:
		// -Os inlines only tiny functions and runs an extra cleanup round,
		// shrinking code and reducing the size spread between programs.
		optimize(m, 12)
	}
}

func optimize(m *ir.Module, inlineThreshold int) {
	scalarRound := func() {
		for _, f := range m.Defined() {
			Mem2Reg(f)
			for i := 0; i < 8; i++ {
				c1 := ConstFold(f)
				c2 := CondBrSameTarget(f)
				c3 := SimplifyCFG(f)
				c4 := DCE(f)
				if !c1 && !c2 && !c3 && !c4 {
					break
				}
			}
		}
	}
	scalarRound()
	if Inline(m, inlineThreshold) {
		scalarRound()
	}
}
