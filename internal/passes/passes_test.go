package passes

import (
	"strings"
	"testing"

	"mpidetect/internal/ir"
)

// diamond builds:
//
//	entry: x=alloca; store 1,x; condbr p -> then/else
//	then:  store 2,x; br exit
//	else:  store 3,x; br exit
//	exit:  v=load x; ret v
func diamond() (*ir.Module, *ir.Func) {
	m := ir.NewModule("t")
	f := m.AddFunc(&ir.Func{Name: "f", Sig: ir.FuncOf(ir.I32, ir.I1),
		Params: []*ir.Param{{Name: "p", Typ: ir.I1}}})
	b := ir.NewBuilder(f)
	x := b.Alloca(ir.I32, 1)
	b.Store(ir.ConstInt(ir.I32, 1), x)
	then := b.NewBlock("then")
	els := b.NewBlock("else")
	exit := b.NewBlock("exit")
	b.CondBr(f.Params[0], then, els)
	b.SetBlock(then)
	b.Store(ir.ConstInt(ir.I32, 2), x)
	b.Br(exit)
	b.SetBlock(els)
	b.Store(ir.ConstInt(ir.I32, 3), x)
	b.Br(exit)
	b.SetBlock(exit)
	v := b.Load(x)
	b.Ret(v)
	return m, f
}

func TestDomTreeDiamond(t *testing.T) {
	_, f := diamond()
	dt := BuildDomTree(f)
	entry := f.Entry()
	then := f.BlockByName("then")
	els := f.BlockByName("else")
	exit := f.BlockByName("exit")
	if dt.Idom[then] != entry || dt.Idom[els] != entry || dt.Idom[exit] != entry {
		t.Errorf("idoms wrong: then=%v else=%v exit=%v", dt.Idom[then].Name, dt.Idom[els].Name, dt.Idom[exit].Name)
	}
	if !dt.Dominates(entry, exit) {
		t.Error("entry should dominate exit")
	}
	if dt.Dominates(then, exit) {
		t.Error("then should not dominate exit")
	}
	// DF(then) = DF(else) = {exit}
	if len(dt.Frontier[then]) != 1 || dt.Frontier[then][0] != exit {
		t.Errorf("DF(then) = %v", names(dt.Frontier[then]))
	}
}

func names(bs []*ir.Block) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name
	}
	return out
}

func TestMem2RegInsertsPhi(t *testing.T) {
	m, f := diamond()
	Mem2Reg(f)
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v\n%s", err, ir.Print(m))
	}
	exit := f.BlockByName("exit")
	phis := exit.Phis()
	if len(phis) != 1 {
		t.Fatalf("exit has %d phis, want 1\n%s", len(phis), ir.Print(m))
	}
	// No loads/stores/allocas remain.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpAlloca, ir.OpLoad, ir.OpStore:
				t.Fatalf("memory op %s survived mem2reg", in.Op)
			}
		}
	}
	// The phi merges 2 and 3.
	got := map[int64]bool{}
	for _, a := range phis[0].Args {
		c, ok := a.(*ir.Const)
		if !ok {
			t.Fatalf("phi arg not constant: %v", a.Ident())
		}
		got[c.Int] = true
	}
	if !got[2] || !got[3] {
		t.Errorf("phi args = %v, want {2,3}", got)
	}
}

func TestMem2RegStraightLine(t *testing.T) {
	m := ir.NewModule("t")
	f := m.AddFunc(&ir.Func{Name: "f", Sig: ir.FuncOf(ir.I32)})
	b := ir.NewBuilder(f)
	x := b.Alloca(ir.I32, 1)
	b.Store(ir.ConstInt(ir.I32, 5), x)
	v := b.Load(x)
	sum := b.Bin(ir.OpAdd, v, ir.ConstInt(ir.I32, 1))
	b.Store(sum, x)
	v2 := b.Load(x)
	b.Ret(v2)
	Mem2Reg(f)
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	ConstFold(f)
	DCE(f)
	term := f.Entry().Term()
	if c, ok := term.Args[0].(*ir.Const); !ok || c.Int != 6 {
		t.Fatalf("ret arg = %v, want 6\n%s", term.Args[0].Ident(), ir.Print(m))
	}
}

func TestMem2RegSkipsEscaping(t *testing.T) {
	m := ir.NewModule("t")
	f := m.AddFunc(&ir.Func{Name: "f", Sig: ir.FuncOf(ir.Void)})
	b := ir.NewBuilder(f)
	x := b.Alloca(ir.I32, 1)
	b.Call("use", ir.Void, x) // escapes
	b.Ret(nil)
	Mem2Reg(f)
	found := false
	for _, in := range f.Entry().Instrs {
		if in.Op == ir.OpAlloca {
			found = true
		}
	}
	if !found {
		t.Error("escaping alloca was promoted")
	}
}

func TestConstFoldBinary(t *testing.T) {
	m := ir.NewModule("t")
	f := m.AddFunc(&ir.Func{Name: "f", Sig: ir.FuncOf(ir.I32)})
	b := ir.NewBuilder(f)
	v1 := b.Bin(ir.OpAdd, ir.ConstInt(ir.I32, 4), ir.ConstInt(ir.I32, 5))
	v2 := b.Bin(ir.OpMul, v1, ir.ConstInt(ir.I32, 3))
	v3 := b.Bin(ir.OpSub, v2, ir.ConstInt(ir.I32, 7))
	b.Ret(v3)
	ConstFold(f)
	term := f.Entry().Term()
	c, ok := term.Args[0].(*ir.Const)
	if !ok || c.Int != 20 {
		t.Fatalf("folded value = %v, want 20", term.Args[0].Ident())
	}
}

func TestConstFoldBranch(t *testing.T) {
	m := ir.NewModule("t")
	f := m.AddFunc(&ir.Func{Name: "f", Sig: ir.FuncOf(ir.I32)})
	b := ir.NewBuilder(f)
	cond := b.ICmp(ir.PredSLT, ir.ConstInt(ir.I32, 1), ir.ConstInt(ir.I32, 2))
	then := b.NewBlock("then")
	els := b.NewBlock("else")
	b.CondBr(cond, then, els)
	b.SetBlock(then)
	b.Ret(ir.ConstInt(ir.I32, 1))
	b.SetBlock(els)
	b.Ret(ir.ConstInt(ir.I32, 0))
	ConstFold(f)
	SimplifyCFG(f)
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if n := len(f.Blocks); n != 1 {
		t.Fatalf("blocks after simplify = %d, want 1\n%s", n, ir.Print(m))
	}
	term := f.Entry().Term()
	if c, ok := term.Args[0].(*ir.Const); !ok || c.Int != 1 {
		t.Fatalf("function returns %v, want 1", term.Args[0].Ident())
	}
}

func TestDCEKeepsSideEffects(t *testing.T) {
	m := ir.NewModule("t")
	f := m.AddFunc(&ir.Func{Name: "f", Sig: ir.FuncOf(ir.Void)})
	b := ir.NewBuilder(f)
	b.Bin(ir.OpAdd, ir.ConstInt(ir.I32, 1), ir.ConstInt(ir.I32, 2)) // dead
	b.Call("MPI_Barrier", ir.I32, ir.ConstInt(ir.I32, 91))          // call result unused, kept
	b.Ret(nil)
	DCE(f)
	nCalls, nAdds := 0, 0
	for _, in := range f.Entry().Instrs {
		switch in.Op {
		case ir.OpCall:
			nCalls++
		case ir.OpAdd:
			nAdds++
		}
	}
	if nCalls != 1 {
		t.Error("DCE removed a call")
	}
	if nAdds != 0 {
		t.Error("DCE kept a dead add")
	}
}

func TestInlineSmallCallee(t *testing.T) {
	m := ir.NewModule("t")
	callee := m.AddFunc(&ir.Func{Name: "sq", Sig: ir.FuncOf(ir.I32, ir.I32),
		Params: []*ir.Param{{Name: "x", Typ: ir.I32}}})
	cb := ir.NewBuilder(callee)
	sq := cb.Bin(ir.OpMul, callee.Params[0], callee.Params[0])
	cb.Ret(sq)

	caller := m.AddFunc(&ir.Func{Name: "main", Sig: ir.FuncOf(ir.I32)})
	b := ir.NewBuilder(caller)
	r := b.Call("sq", ir.I32, ir.ConstInt(ir.I32, 6))
	b.Ret(r)

	if !Inline(m, 50) {
		t.Fatal("Inline did nothing")
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v\n%s", err, ir.Print(m))
	}
	for _, blk := range caller.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.OpCall && in.Callee == "sq" {
				t.Fatal("call to sq survived inlining")
			}
		}
	}
	// After folding the inlined body the function returns 36.
	ConstFold(caller)
	SimplifyCFG(caller)
	DCE(caller)
	term := caller.Entry().Term()
	if c, ok := term.Args[0].(*ir.Const); !ok || c.Int != 36 {
		t.Fatalf("inlined+folded result = %v, want 36\n%s", term.Args[0].Ident(), ir.Print(m))
	}
}

func TestInlineMultiReturn(t *testing.T) {
	m := ir.NewModule("t")
	callee := m.AddFunc(&ir.Func{Name: "absv", Sig: ir.FuncOf(ir.I32, ir.I32),
		Params: []*ir.Param{{Name: "x", Typ: ir.I32}}})
	cb := ir.NewBuilder(callee)
	neg := cb.ICmp(ir.PredSLT, callee.Params[0], ir.ConstInt(ir.I32, 0))
	nb := cb.NewBlock("neg")
	pb := cb.NewBlock("pos")
	cb.CondBr(neg, nb, pb)
	cb.SetBlock(nb)
	n := cb.Bin(ir.OpSub, ir.ConstInt(ir.I32, 0), callee.Params[0])
	cb.Ret(n)
	cb.SetBlock(pb)
	cb.Ret(callee.Params[0])

	caller := m.AddFunc(&ir.Func{Name: "main", Sig: ir.FuncOf(ir.I32, ir.I32),
		Params: []*ir.Param{{Name: "a", Typ: ir.I32}}})
	b := ir.NewBuilder(caller)
	r := b.Call("absv", ir.I32, caller.Params[0])
	r2 := b.Bin(ir.OpAdd, r, ir.ConstInt(ir.I32, 1))
	b.Ret(r2)

	if !Inline(m, 50) {
		t.Fatal("Inline did nothing")
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v\n%s", err, ir.Print(m))
	}
	text := ir.Print(m)
	if !strings.Contains(text, "phi") {
		t.Errorf("expected a merge phi after multi-return inline:\n%s", text)
	}
}

func TestOptimizeLevels(t *testing.T) {
	for _, lvl := range []OptLevel{O0, O2, Os} {
		m, f := diamond()
		before := f.NumInstrs()
		Optimize(m, lvl)
		if err := m.Verify(); err != nil {
			t.Fatalf("%s: Verify: %v", lvl, err)
		}
		after := f.NumInstrs()
		if lvl == O0 && after != before {
			t.Errorf("-O0 changed the function (%d -> %d)", before, after)
		}
		if lvl != O0 && after >= before {
			t.Errorf("%s did not shrink the diamond (%d -> %d)", lvl, before, after)
		}
	}
}

func TestParseOptLevel(t *testing.T) {
	for _, c := range []struct {
		in   string
		want OptLevel
		ok   bool
	}{{"-O0", O0, true}, {"-O2", O2, true}, {"-Os", Os, true}, {"-O3", O0, false}} {
		got, ok := ParseOptLevel(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("ParseOptLevel(%q) = %v,%v", c.in, got, ok)
		}
	}
}

func TestSimplifyRemovesUnreachable(t *testing.T) {
	m := ir.NewModule("t")
	f := m.AddFunc(&ir.Func{Name: "f", Sig: ir.FuncOf(ir.Void)})
	b := ir.NewBuilder(f)
	b.Ret(nil)
	orphan := b.NewBlock("orphan")
	b.SetBlock(orphan)
	b.Ret(nil)
	SimplifyCFG(f)
	if len(f.Blocks) != 1 {
		t.Errorf("unreachable block not removed: %d blocks", len(f.Blocks))
	}
}

func TestDomTreeLoop(t *testing.T) {
	// entry -> header; header -> body | exit; body -> header
	m := ir.NewModule("t")
	f := m.AddFunc(&ir.Func{Name: "f", Sig: ir.FuncOf(ir.Void, ir.I1),
		Params: []*ir.Param{{Name: "p", Typ: ir.I1}}})
	b := ir.NewBuilder(f)
	header := b.NewBlock("header")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Br(header)
	b.SetBlock(header)
	b.CondBr(f.Params[0], body, exit)
	b.SetBlock(body)
	b.Br(header)
	b.SetBlock(exit)
	b.Ret(nil)
	dt := BuildDomTree(f)
	if dt.Idom[body] != header || dt.Idom[exit] != header {
		t.Error("loop idoms wrong")
	}
	// DF(body) = {header}; DF(header) = {header}
	if len(dt.Frontier[body]) != 1 || dt.Frontier[body][0] != header {
		t.Errorf("DF(body) = %v", names(dt.Frontier[body]))
	}
}

func TestMem2RegLoopVariable(t *testing.T) {
	// i = 0; while (i < n) i = i + 1; return i
	m := ir.NewModule("t")
	f := m.AddFunc(&ir.Func{Name: "f", Sig: ir.FuncOf(ir.I32, ir.I32),
		Params: []*ir.Param{{Name: "n", Typ: ir.I32}}})
	b := ir.NewBuilder(f)
	iv := b.Alloca(ir.I32, 1)
	b.Store(ir.ConstInt(ir.I32, 0), iv)
	header := b.NewBlock("header")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Br(header)
	b.SetBlock(header)
	cur := b.Load(iv)
	cmp := b.ICmp(ir.PredSLT, cur, f.Params[0])
	b.CondBr(cmp, body, exit)
	b.SetBlock(body)
	cur2 := b.Load(iv)
	inc := b.Bin(ir.OpAdd, cur2, ir.ConstInt(ir.I32, 1))
	b.Store(inc, iv)
	b.Br(header)
	b.SetBlock(exit)
	fin := b.Load(iv)
	b.Ret(fin)

	Mem2Reg(f)
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v\n%s", err, ir.Print(m))
	}
	phis := f.BlockByName("header").Phis()
	if len(phis) != 1 {
		t.Fatalf("header has %d phis, want 1\n%s", len(phis), ir.Print(m))
	}
}
