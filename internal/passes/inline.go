package passes

import (
	"fmt"

	"mpidetect/internal/ir"
)

// Inline performs bottom-up function inlining: direct calls to defined,
// non-recursive functions whose size is at most maxSize instructions are
// replaced by a clone of the callee body. Returns whether anything changed.
func Inline(m *ir.Module, maxSize int) bool {
	changed := false
	for _, f := range m.Funcs {
		if f.Decl {
			continue
		}
		// Repeatedly scan for an inlinable call site; each inline splices
		// blocks so we restart the scan after every success.
		for budget := 0; budget < 64; budget++ {
			site := findInlinableCall(m, f, maxSize)
			if site == nil {
				break
			}
			inlineCall(f, site)
			changed = true
		}
	}
	return changed
}

func findInlinableCall(m *ir.Module, f *ir.Func, maxSize int) *ir.Instr {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpCall {
				continue
			}
			callee := m.FuncByName(in.Callee)
			if callee == nil || callee.Decl || callee == f {
				continue
			}
			if callee.NumInstrs() > maxSize || callsSelf(callee) {
				continue
			}
			if len(callee.Params) != len(in.Args) {
				continue
			}
			return in
		}
	}
	return nil
}

func callsSelf(f *ir.Func) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && in.Callee == f.Name {
				return true
			}
		}
	}
	return false
}

var inlineCounter int

// inlineCall splices a clone of the callee body at the call site.
func inlineCall(caller *ir.Func, call *ir.Instr) {
	inlineCounter++
	prefix := fmt.Sprintf("inl%d.", inlineCounter)
	callee := caller.Mod.FuncByName(call.Callee)
	host := call.Parent

	// Split host at the call site.
	callIdx := -1
	for i, in := range host.Instrs {
		if in == call {
			callIdx = i
			break
		}
	}
	cont := &ir.Block{Name: prefix + "cont", Parent: caller}
	cont.Instrs = append(cont.Instrs, host.Instrs[callIdx+1:]...)
	for _, in := range cont.Instrs {
		in.Parent = cont
	}
	host.Instrs = host.Instrs[:callIdx]
	// Successor phis that named host now receive control from cont.
	for _, b := range caller.Blocks {
		for _, phi := range b.Phis() {
			// The host terminator moved into cont, so control edges out of
			// the original block now originate from cont.
			for i, pb := range phi.Blocks {
				if pb == host {
					phi.Blocks[i] = cont
				}
			}
		}
	}

	// Clone callee blocks.
	vmap := map[ir.Value]ir.Value{}
	bmap := map[*ir.Block]*ir.Block{}
	for i, p := range callee.Params {
		vmap[p] = call.Args[i]
	}
	clones := make([]*ir.Block, 0, len(callee.Blocks))
	for _, b := range callee.Blocks {
		nb := &ir.Block{Name: prefix + b.Name, Parent: caller}
		bmap[b] = nb
		clones = append(clones, nb)
	}
	var retVals []ir.Value
	var retBlocks []*ir.Block
	for _, b := range callee.Blocks {
		nb := bmap[b]
		for _, in := range b.Instrs {
			if in.Op == ir.OpRet {
				if len(in.Args) == 1 {
					retVals = append(retVals, resolve(vmap, in.Args[0]))
					retBlocks = append(retBlocks, nb)
				} else {
					retVals = append(retVals, nil)
					retBlocks = append(retBlocks, nb)
				}
				nb.Append(&ir.Instr{Op: ir.OpBr, Typ: ir.Void, Blocks: []*ir.Block{cont}})
				continue
			}
			ni := &ir.Instr{
				Op: in.Op, Typ: in.Typ, Cmp: in.Cmp, Callee: in.Callee,
				AllocTy: in.AllocTy,
			}
			if in.Name != "" {
				ni.Name = prefix + in.Name
			}
			ni.Args = make([]ir.Value, len(in.Args))
			for i, a := range in.Args {
				ni.Args[i] = resolve(vmap, a)
			}
			ni.Blocks = make([]*ir.Block, len(in.Blocks))
			for i, tb := range in.Blocks {
				ni.Blocks[i] = bmap[tb]
			}
			nb.Append(ni)
			vmap[in] = ni
		}
	}
	// Second pass: fix operands that referenced values cloned later (phis).
	for _, nb := range clones {
		for _, in := range nb.Instrs {
			for i, a := range in.Args {
				in.Args[i] = resolve(vmap, a)
			}
		}
	}

	// Wire host -> entry clone.
	entryClone := bmap[callee.Entry()]
	host.Append(&ir.Instr{Op: ir.OpBr, Typ: ir.Void, Blocks: []*ir.Block{entryClone}})

	// Splice blocks into the caller *before* rewriting uses of the call,
	// so that uses living in cont are visible to ReplaceUses.
	hostIdx := -1
	for i, b := range caller.Blocks {
		if b == host {
			hostIdx = i
			break
		}
	}
	rest := append([]*ir.Block(nil), caller.Blocks[hostIdx+1:]...)
	caller.Blocks = append(caller.Blocks[:hostIdx+1], clones...)
	caller.Blocks = append(caller.Blocks, cont)
	caller.Blocks = append(caller.Blocks, rest...)

	// Join return values.
	if call.Typ != nil && call.Typ.Kind != ir.KVoid {
		var rv ir.Value
		nonNil := 0
		for _, v := range retVals {
			if v != nil {
				rv = v
				nonNil++
			}
		}
		switch {
		case nonNil == 0:
			rv = ir.ConstUndef(call.Typ)
		case nonNil > 1:
			phi := &ir.Instr{Op: ir.OpPhi, Typ: call.Typ, Name: prefix + "ret"}
			for i, v := range retVals {
				if v == nil {
					v = ir.ConstUndef(call.Typ)
				}
				phi.Args = append(phi.Args, v)
				phi.Blocks = append(phi.Blocks, retBlocks[i])
			}
			cont.InsertFront(phi)
			rv = phi
		}
		ir.ReplaceUses(caller, call, rv)
	}
}

func resolve(vmap map[ir.Value]ir.Value, v ir.Value) ir.Value {
	if nv, ok := vmap[v]; ok {
		return nv
	}
	return v
}
