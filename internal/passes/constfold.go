package passes

import "mpidetect/internal/ir"

// ConstFold performs sparse constant folding: any instruction whose
// operands are all constants is evaluated and its uses rewritten; condbr on
// a constant condition becomes an unconditional branch (phi edges from the
// removed path are cleaned up). The pass iterates to a fixed point.
func ConstFold(f *ir.Func) bool {
	changedAny := false
	for {
		changed := false
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if c := foldInstr(in); c != nil {
					ir.ReplaceUses(f, in, c)
					b.RemoveInstr(in)
					changed = true
				}
			}
			if t := b.Term(); t != nil && t.Op == ir.OpCondBr {
				if c, ok := t.Args[0].(*ir.Const); ok {
					var taken, dropped *ir.Block
					if c.Int != 0 {
						taken, dropped = t.Blocks[0], t.Blocks[1]
					} else {
						taken, dropped = t.Blocks[1], t.Blocks[0]
					}
					t.Op = ir.OpBr
					t.Args = nil
					t.Blocks = []*ir.Block{taken}
					if dropped != taken {
						removePhiEdge(dropped, b)
					}
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		changedAny = true
	}
	return changedAny
}

// removePhiEdge drops the incoming edge from pred in every phi of b.
func removePhiEdge(b, pred *ir.Block) {
	for _, phi := range b.Phis() {
		for i := 0; i < len(phi.Blocks); {
			if phi.Blocks[i] == pred {
				phi.Blocks = append(phi.Blocks[:i], phi.Blocks[i+1:]...)
				phi.Args = append(phi.Args[:i], phi.Args[i+1:]...)
			} else {
				i++
			}
		}
	}
}

func foldInstr(in *ir.Instr) *ir.Const {
	switch {
	case in.Op.IsBinary():
		x, okx := in.Args[0].(*ir.Const)
		y, oky := in.Args[1].(*ir.Const)
		if !okx || !oky || x.IsNull || y.IsNull || x.IsUndef || y.IsUndef {
			// Algebraic identities with one constant.
			return foldIdentity(in)
		}
		return foldBinary(in, x, y)
	case in.Op == ir.OpICmp:
		x, okx := in.Args[0].(*ir.Const)
		y, oky := in.Args[1].(*ir.Const)
		if !okx || !oky || x.IsUndef || y.IsUndef {
			return nil
		}
		return ir.ConstBool(cmpInts(in.Cmp, x.Int, y.Int))
	case in.Op == ir.OpFCmp:
		x, okx := in.Args[0].(*ir.Const)
		y, oky := in.Args[1].(*ir.Const)
		if !okx || !oky {
			return nil
		}
		return ir.ConstBool(cmpFloats(in.Cmp, x.Float, y.Float))
	case in.Op == ir.OpSelect:
		if c, ok := in.Args[0].(*ir.Const); ok && !c.IsUndef {
			if c.Int != 0 {
				if v, ok := in.Args[1].(*ir.Const); ok {
					return v
				}
			} else if v, ok := in.Args[2].(*ir.Const); ok {
				return v
			}
		}
	case in.Op.IsConv():
		if c, ok := in.Args[0].(*ir.Const); ok && !c.IsUndef && !c.IsNull {
			return foldConv(in, c)
		}
	}
	return nil
}

func foldIdentity(in *ir.Instr) *ir.Const {
	y, ok := in.Args[1].(*ir.Const)
	if !ok || y.IsFloat {
		return nil
	}
	// x*0 and x&0 are the only identities that fold to a constant without
	// replacing with a non-constant value; the rest are handled by DCE-level
	// simplification elsewhere.
	if y.Int == 0 && (in.Op == ir.OpMul || in.Op == ir.OpAnd) {
		return ir.ConstInt(in.Typ, 0)
	}
	return nil
}

func foldBinary(in *ir.Instr, x, y *ir.Const) *ir.Const {
	if x.IsFloat || y.IsFloat {
		var r float64
		switch in.Op {
		case ir.OpFAdd:
			r = x.Float + y.Float
		case ir.OpFSub:
			r = x.Float - y.Float
		case ir.OpFMul:
			r = x.Float * y.Float
		case ir.OpFDiv:
			if y.Float == 0 {
				return nil
			}
			r = x.Float / y.Float
		default:
			return nil
		}
		return ir.ConstFloat(r)
	}
	a, b := x.Int, y.Int
	var r int64
	switch in.Op {
	case ir.OpAdd:
		r = a + b
	case ir.OpSub:
		r = a - b
	case ir.OpMul:
		r = a * b
	case ir.OpSDiv:
		if b == 0 {
			return nil
		}
		r = a / b
	case ir.OpSRem:
		if b == 0 {
			return nil
		}
		r = a % b
	case ir.OpAnd:
		r = a & b
	case ir.OpOr:
		r = a | b
	case ir.OpXor:
		r = a ^ b
	case ir.OpShl:
		if b < 0 || b > 63 {
			return nil
		}
		r = a << uint(b)
	case ir.OpAShr:
		if b < 0 || b > 63 {
			return nil
		}
		r = a >> uint(b)
	default:
		return nil
	}
	return ir.ConstInt(in.Typ, truncToType(in.Typ, r))
}

func truncToType(t *ir.Type, v int64) int64 {
	switch t.Kind {
	case ir.KInt1:
		return v & 1
	case ir.KInt8:
		return int64(int8(v))
	case ir.KInt32:
		return int64(int32(v))
	}
	return v
}

func cmpInts(p ir.Pred, a, b int64) bool {
	switch p {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredSLT:
		return a < b
	case ir.PredSLE:
		return a <= b
	case ir.PredSGT:
		return a > b
	case ir.PredSGE:
		return a >= b
	}
	return false
}

func cmpFloats(p ir.Pred, a, b float64) bool {
	switch p {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredSLT:
		return a < b
	case ir.PredSLE:
		return a <= b
	case ir.PredSGT:
		return a > b
	case ir.PredSGE:
		return a >= b
	}
	return false
}

func foldConv(in *ir.Instr, c *ir.Const) *ir.Const {
	switch in.Op {
	case ir.OpTrunc, ir.OpSExt, ir.OpZExt:
		if c.IsFloat {
			return nil
		}
		v := c.Int
		if in.Op == ir.OpZExt && c.Typ != nil {
			switch c.Typ.Kind {
			case ir.KInt1:
				v &= 1
			case ir.KInt8:
				v &= 0xff
			case ir.KInt32:
				v &= 0xffffffff
			}
		}
		return ir.ConstInt(in.Typ, truncToType(in.Typ, v))
	case ir.OpSIToFP:
		if c.IsFloat {
			return nil
		}
		return ir.ConstFloat(float64(c.Int))
	case ir.OpFPToSI:
		if !c.IsFloat {
			return nil
		}
		return ir.ConstInt(in.Typ, truncToType(in.Typ, int64(c.Float)))
	}
	return nil
}
