package passes

import "mpidetect/internal/ir"

// DCE removes instructions whose results are unused and that have no side
// effects, iterating to a fixed point. Loads are treated as removable
// (the IR has no volatile); calls, stores and terminators are kept.
func DCE(f *ir.Func) bool {
	changedAny := false
	// One use count, maintained decrementally: removing an instruction
	// releases its operands' uses, which is exactly what a fresh
	// CollectUses on the smaller function would report — so the fixed
	// point is identical without re-collecting every iteration.
	uses := ir.CollectUses(f)
	for {
		changed := false
		for _, b := range f.Blocks {
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := b.Instrs[i]
				if in.Op.HasSideEffects() || in.Op.IsTerm() {
					continue
				}
				if uses[in] == 0 {
					for _, a := range in.Args {
						uses[a]--
					}
					b.RemoveInstr(in)
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		changedAny = true
	}
	return changedAny
}

// SimplifyCFG removes unreachable blocks, merges blocks with a single
// unconditional-branch predecessor, and eliminates empty forwarding blocks.
func SimplifyCFG(f *ir.Func) bool {
	changedAny := false
	for {
		changed := false

		// 1. Drop unreachable blocks (fixing up phis that referenced them).
		reach := reachable(f)
		for i := 0; i < len(f.Blocks); {
			b := f.Blocks[i]
			if reach[b] {
				i++
				continue
			}
			for _, s := range b.Succs() {
				removePhiEdge(s, b)
			}
			f.RemoveBlock(b)
			changed = true
		}

		// 2. Merge b -> s when b ends in an unconditional br to s and s has
		// exactly one predecessor (and no phis fed by others, guaranteed by
		// the single-pred condition).
		preds := ir.Predecessors(f)
		for _, b := range f.Blocks {
			t := b.Term()
			if t == nil || t.Op != ir.OpBr {
				continue
			}
			s := t.Blocks[0]
			if s == b || len(preds[s]) != 1 || s == f.Entry() {
				continue
			}
			// Phis in s have a single incoming edge: replace with operand.
			for _, phi := range s.Phis() {
				if len(phi.Args) == 1 {
					ir.ReplaceUses(f, phi, phi.Args[0])
				}
				s.RemoveInstr(phi)
			}
			b.RemoveInstr(t)
			for _, in := range s.Instrs {
				in.Parent = b
				b.Instrs = append(b.Instrs, in)
			}
			// Successors of s may have phis naming s; retarget to b.
			for _, ss := range b.Succs() {
				for _, phi := range ss.Phis() {
					for i, pb := range phi.Blocks {
						if pb == s {
							phi.Blocks[i] = b
						}
					}
				}
			}
			f.RemoveBlock(s)
			changed = true
			break // predecessor map is stale; restart
		}

		// 3. Thread empty forwarding blocks: a block containing only
		// "br label %x" can be bypassed when no phi disambiguation is lost.
		preds = ir.Predecessors(f)
		for _, b := range f.Blocks {
			if b == f.Entry() || len(b.Instrs) != 1 {
				continue
			}
			t := b.Term()
			if t == nil || t.Op != ir.OpBr {
				continue
			}
			target := t.Blocks[0]
			if target == b || len(target.Phis()) > 0 {
				continue
			}
			for _, p := range preds[b] {
				pt := p.Term()
				for i, tb := range pt.Blocks {
					if tb == b {
						pt.Blocks[i] = target
					}
				}
			}
			if len(preds[b]) > 0 {
				changed = true
			}
		}

		if !changed {
			break
		}
		changedAny = true
	}
	return changedAny
}

// CondBrSameTarget rewrites "br %c, label %x, label %x" into "br label %x".
func CondBrSameTarget(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		t := b.Term()
		if t != nil && t.Op == ir.OpCondBr && t.Blocks[0] == t.Blocks[1] {
			t.Op = ir.OpBr
			t.Args = nil
			t.Blocks = t.Blocks[:1]
			changed = true
		}
	}
	return changed
}
