package passes

import (
	"fmt"

	"mpidetect/internal/ir"
)

// Mem2Reg promotes scalar stack slots (allocas only accessed by direct
// loads and stores) to SSA values, inserting pruned phi nodes on the
// iterated dominance frontier of the stores. This is the pass that turns
// the front-end's naive stack code into real SSA, mirroring LLVM's
// -mem2reg, and is the first stage of the -O2/-Os pipelines.
func Mem2Reg(f *ir.Func) {
	if len(f.Blocks) == 0 {
		return
	}
	dt := BuildDomTree(f)
	allocas := promotable(f)
	if len(allocas) == 0 {
		return
	}

	// Phi placement on the iterated dominance frontier of def blocks.
	phiFor := map[*ir.Instr]*ir.Instr{} // phi -> alloca
	phiID := 0
	for _, a := range allocas {
		defBlocks := map[*ir.Block]bool{}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpStore && in.Args[1] == ir.Value(a) {
					defBlocks[b] = true
				}
			}
		}
		placed := map[*ir.Block]bool{}
		work := make([]*ir.Block, 0, len(defBlocks))
		for b := range defBlocks {
			work = append(work, b)
		}
		// Deterministic order: function block order.
		work = sortBlocks(f, work)
		for len(work) > 0 {
			b := work[0]
			work = work[1:]
			for _, df := range dt.Frontier[b] {
				if placed[df] {
					continue
				}
				placed[df] = true
				phiID++
				phi := &ir.Instr{Op: ir.OpPhi, Typ: a.AllocTy,
					Name: fmt.Sprintf("m2r%d", phiID)}
				df.InsertFront(phi)
				phiFor[phi] = a
				if !defBlocks[df] {
					defBlocks[df] = true
					work = append(work, df)
				}
			}
		}
	}

	// Renaming walk over the dominator tree.
	stacks := map[*ir.Instr][]ir.Value{} // alloca -> value stack
	preds := ir.Predecessors(f)
	isAlloca := map[ir.Value]*ir.Instr{}
	for _, a := range allocas {
		isAlloca[a] = a
	}
	top := func(a *ir.Instr) ir.Value {
		s := stacks[a]
		if len(s) == 0 {
			return ir.ConstUndef(a.AllocTy)
		}
		return s[len(s)-1]
	}

	var rename func(b *ir.Block)
	rename = func(b *ir.Block) {
		pushed := map[*ir.Instr]int{}
		var dead []*ir.Instr
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpPhi:
				if a, ok := phiFor[in]; ok {
					stacks[a] = append(stacks[a], in)
					pushed[a]++
				}
			case ir.OpLoad:
				if a, ok := isAlloca[in.Args[0]]; ok {
					ir.ReplaceUses(f, in, top(a))
					dead = append(dead, in)
				}
			case ir.OpStore:
				if a, ok := isAlloca[in.Args[1]]; ok {
					stacks[a] = append(stacks[a], in.Args[0])
					pushed[a]++
					dead = append(dead, in)
				}
			}
		}
		// Fill phi operands of successors.
		for _, s := range b.Succs() {
			for _, phi := range s.Phis() {
				a, ok := phiFor[phi]
				if !ok {
					continue
				}
				// One incoming slot per predecessor edge.
				for _, p := range preds[s] {
					if p == b {
						phi.Args = append(phi.Args, top(a))
						phi.Blocks = append(phi.Blocks, b)
					}
				}
			}
		}
		for _, c := range sortBlocks(f, dt.Children[b]) {
			rename(c)
		}
		for a, n := range pushed {
			stacks[a] = stacks[a][:len(stacks[a])-n]
		}
		for _, in := range dead {
			b.RemoveInstr(in)
		}
	}
	rename(f.Entry())

	// Remove the now-dead allocas.
	for _, a := range allocas {
		if blk := a.Parent; blk != nil {
			blk.RemoveInstr(a)
		}
	}

	// Prune phis that ended up with no incoming edges (unreachable preds)
	// or all-identical operands.
	prunePhis(f, phiFor)
}

func prunePhis(f *ir.Func, phiFor map[*ir.Instr]*ir.Instr) {
	changed := true
	for changed {
		changed = false
		for _, b := range f.Blocks {
			for _, phi := range b.Phis() {
				if _, ours := phiFor[phi]; !ours {
					continue
				}
				if len(phi.Args) == 0 {
					ir.ReplaceUses(f, phi, ir.ConstUndef(phi.Typ))
					b.RemoveInstr(phi)
					changed = true
					continue
				}
				same := true
				var uniq ir.Value
				for _, a := range phi.Args {
					if a == ir.Value(phi) {
						continue
					}
					if uniq == nil {
						uniq = a
					} else if uniq != a {
						same = false
						break
					}
				}
				if same && uniq != nil {
					ir.ReplaceUses(f, phi, uniq)
					b.RemoveInstr(phi)
					changed = true
				}
			}
		}
	}
}

// promotable returns the allocas of f that can be promoted: scalar element
// type and only used as the direct pointer of loads and stores.
func promotable(f *ir.Func) []*ir.Instr {
	var out []*ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpAlloca || len(in.Args) != 0 {
				continue
			}
			if in.AllocTy.IsAggregate() || in.AllocTy.Kind == ir.KStruct {
				continue
			}
			if allocaEscapes(f, in) {
				continue
			}
			out = append(out, in)
		}
	}
	return out
}

func allocaEscapes(f *ir.Func, a *ir.Instr) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, arg := range in.Args {
				if arg != ir.Value(a) {
					continue
				}
				switch in.Op {
				case ir.OpLoad:
					// ok: load through the slot
				case ir.OpStore:
					if i != 1 {
						return true // address stored as a value
					}
				default:
					return true // GEP, call, cast, ... escape
				}
			}
		}
	}
	return false
}

func sortBlocks(f *ir.Func, s []*ir.Block) []*ir.Block {
	idx := map[*ir.Block]int{}
	for i, b := range f.Blocks {
		idx[b] = i
	}
	out := append([]*ir.Block(nil), s...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && idx[out[j]] < idx[out[j-1]]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
