package passes_test

import (
	"testing"

	"mpidetect/internal/dataset"
	"mpidetect/internal/ir"
	"mpidetect/internal/irgen"
	"mpidetect/internal/mpisim"
	"mpidetect/internal/passes"
)

// TestPassesPreserveCorrectPrograms is the central semantic-preservation
// property: every sampled correct benchmark program must simulate to the
// same clean outcome and identical output at -O0, -O2 and -Os.
func TestPassesPreserveCorrectPrograms(t *testing.T) {
	d := dataset.GenerateMBI(101)
	checked := 0
	for i, c := range d.Codes {
		if c.Incorrect() || i%23 != 0 {
			continue
		}
		checked++
		var outputs []string
		for _, lvl := range []passes.OptLevel{passes.O0, passes.O2, passes.Os} {
			m := irgen.MustLower(c.Prog)
			passes.Optimize(m, lvl)
			if err := m.Verify(); err != nil {
				t.Fatalf("%s at %s: verify: %v", c.Name, lvl, err)
			}
			res := mpisim.Run(m, mpisim.Config{Ranks: c.Ranks})
			if res.Erroneous() {
				t.Fatalf("%s at %s: flagged after optimisation: %+v crash=%v %s",
					c.Name, lvl, res.Violations, res.Crashed, res.CrashMsg)
			}
			outputs = append(outputs, res.Output)
		}
		if outputs[0] != outputs[1] || outputs[1] != outputs[2] {
			t.Fatalf("%s: output differs across opt levels", c.Name)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d programs checked", checked)
	}
}

// TestPassesPreserveVerdictsOnErrorCodes: optimisation must not make the
// dynamic verdict of erroneous codes flip to clean for deterministic error
// classes (invalid parameters survive constant folding).
func TestPassesPreserveVerdictsOnErrorCodes(t *testing.T) {
	d := dataset.GenerateCorrBench(103, false)
	checked := 0
	for i, c := range d.Codes {
		if c.Label != dataset.ArgError || i%5 != 0 {
			continue
		}
		checked++
		for _, lvl := range []passes.OptLevel{passes.O0, passes.Os} {
			m := irgen.MustLower(c.Prog)
			passes.Optimize(m, lvl)
			res := mpisim.Run(m, mpisim.Config{Ranks: c.Ranks})
			if !res.Erroneous() {
				t.Errorf("%s at %s: error disappeared after optimisation", c.Name, lvl)
			}
		}
	}
	if checked < 5 {
		t.Fatalf("only %d programs checked", checked)
	}
}

// TestOptimizedIRRoundTrips: the printer/parser must round-trip optimised
// modules from the real corpus, not just hand-built fixtures.
func TestOptimizedIRRoundTrips(t *testing.T) {
	d := dataset.GenerateCorrBench(105, false)
	for i, c := range d.Codes {
		if i%17 != 0 {
			continue
		}
		m := irgen.MustLower(c.Prog)
		passes.Optimize(m, passes.O2)
		text := ir.Print(m)
		m2, err := ir.Parse(text)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.Name, err)
		}
		if got := ir.Print(m2); got != text {
			t.Fatalf("%s: optimised IR does not round-trip", c.Name)
		}
	}
}

// TestOsNeverLargerThanO0: the size-oriented pipeline must not grow code.
func TestOsNeverLargerThanO0(t *testing.T) {
	d := dataset.GenerateMBI(107)
	for i, c := range d.Codes {
		if i%31 != 0 {
			continue
		}
		m0 := irgen.MustLower(c.Prog)
		ms := irgen.MustLower(c.Prog)
		passes.Optimize(ms, passes.Os)
		if ms.NumInstrs() > m0.NumInstrs() {
			t.Errorf("%s: -Os grew the module (%d -> %d instrs)",
				c.Name, m0.NumInstrs(), ms.NumInstrs())
		}
	}
}
