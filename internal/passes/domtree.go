// Package passes implements the optimisation pipeline applied to the IR
// before feature extraction, mirroring the compiler options the paper
// evaluates: -O0 (leave the code intact), -O2 (representative of a real
// build), and -Os (size-oriented, used by the paper to normalise code-size
// bias). The passes are classical: mem2reg (SSA construction via pruned phi
// placement on dominance frontiers), sparse constant folding, dead-code
// elimination, CFG simplification, and bottom-up function inlining.
package passes

import "mpidetect/internal/ir"

// DomTree holds the dominator tree of a function, computed with the
// Cooper–Harvey–Kennedy iterative algorithm over reverse postorder.
type DomTree struct {
	F *ir.Func
	// Idom maps each reachable block to its immediate dominator; the
	// entry maps to itself.
	Idom map[*ir.Block]*ir.Block
	// Children is the dominator tree adjacency (idom -> dominated).
	Children map[*ir.Block][]*ir.Block
	// Frontier is the dominance frontier of each block.
	Frontier map[*ir.Block][]*ir.Block
	rpoIndex map[*ir.Block]int
	rpo      []*ir.Block
}

// BuildDomTree computes the dominator tree and dominance frontiers of f.
func BuildDomTree(f *ir.Func) *DomTree {
	t := &DomTree{
		F:        f,
		Idom:     map[*ir.Block]*ir.Block{},
		Children: map[*ir.Block][]*ir.Block{},
		Frontier: map[*ir.Block][]*ir.Block{},
		rpoIndex: map[*ir.Block]int{},
	}
	rpo := ir.ReversePostorder(f)
	// Keep only reachable blocks (ReversePostorder appends unreachable
	// blocks after the reachable ones; detect them via a DFS marker).
	reach := reachable(f)
	for _, b := range rpo {
		if reach[b] {
			t.rpoIndex[b] = len(t.rpo)
			t.rpo = append(t.rpo, b)
		}
	}
	if len(t.rpo) == 0 {
		return t
	}
	entry := t.rpo[0]
	t.Idom[entry] = entry
	preds := ir.Predecessors(f)

	changed := true
	for changed {
		changed = false
		for _, b := range t.rpo[1:] {
			var newIdom *ir.Block
			for _, p := range preds[b] {
				if !reach[p] {
					continue
				}
				if _, ok := t.Idom[p]; !ok {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = t.intersect(p, newIdom)
				}
			}
			if newIdom != nil && t.Idom[b] != newIdom {
				t.Idom[b] = newIdom
				changed = true
			}
		}
	}
	for b, id := range t.Idom {
		if b != id {
			t.Children[id] = append(t.Children[id], b)
		}
	}
	// Dominance frontiers (Cytron et al. style, CHK formulation).
	for _, b := range t.rpo {
		ps := preds[b]
		if len(ps) < 2 {
			continue
		}
		for _, p := range ps {
			if !reach[p] {
				continue
			}
			runner := p
			for runner != t.Idom[b] {
				t.Frontier[runner] = appendUnique(t.Frontier[runner], b)
				runner = t.Idom[runner]
			}
		}
	}
	return t
}

func (t *DomTree) intersect(b1, b2 *ir.Block) *ir.Block {
	f1, f2 := b1, b2
	for f1 != f2 {
		for t.rpoIndex[f1] > t.rpoIndex[f2] {
			f1 = t.Idom[f1]
		}
		for t.rpoIndex[f2] > t.rpoIndex[f1] {
			f2 = t.Idom[f2]
		}
	}
	return f1
}

// Dominates reports whether a dominates b (reflexively).
func (t *DomTree) Dominates(a, b *ir.Block) bool {
	for {
		if a == b {
			return true
		}
		id, ok := t.Idom[b]
		if !ok || id == b {
			return false
		}
		b = id
	}
}

func reachable(f *ir.Func) map[*ir.Block]bool {
	reach := map[*ir.Block]bool{}
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		reach[b] = true
		for _, s := range b.Succs() {
			if !reach[s] {
				dfs(s)
			}
		}
	}
	if e := f.Entry(); e != nil {
		dfs(e)
	}
	return reach
}

func appendUnique(s []*ir.Block, b *ir.Block) []*ir.Block {
	for _, x := range s {
		if x == b {
			return s
		}
	}
	return append(s, b)
}
