// Package metrics implements the evaluation metrics of Table I: the
// standard recall/precision/F1/accuracy over TP/TN/FP/FN, plus the
// MBI-specific robustness metrics (coverage, conclusiveness, specificity,
// overall accuracy) that account for compilation errors, timeouts and
// runtime errors of the tool under evaluation.
package metrics

import (
	"fmt"
	"strings"
)

// Confusion holds the outcome counts of a tool over a test set. CE/TO/RE
// count runs where the tool failed to produce a verdict (compilation
// error, timeout, runtime error).
type Confusion struct {
	TP, TN, FP, FN int
	CE, TO, RE     int
}

// Add accumulates another confusion into c.
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.TN += o.TN
	c.FP += o.FP
	c.FN += o.FN
	c.CE += o.CE
	c.TO += o.TO
	c.RE += o.RE
}

// Record tallies one prediction against the ground truth.
func (c *Confusion) Record(actualIncorrect, predictedIncorrect bool) {
	switch {
	case actualIncorrect && predictedIncorrect:
		c.TP++
	case actualIncorrect && !predictedIncorrect:
		c.FN++
	case !actualIncorrect && predictedIncorrect:
		c.FP++
	default:
		c.TN++
	}
}

// Total returns TP+TN+FP+FN.
func (c Confusion) Total() int { return c.TP + c.TN + c.FP + c.FN }

// Errors returns CE+TO+RE.
func (c Confusion) Errors() int { return c.CE + c.TO + c.RE }

func ratio(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// Recall is TP / (TP + FN) — the ability to find existing errors.
func (c Confusion) Recall() float64 { return ratio(c.TP, c.TP+c.FN) }

// Precision is TP / (TP + FP).
func (c Confusion) Precision() float64 { return ratio(c.TP, c.TP+c.FP) }

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy is (TP + TN) / Total.
func (c Confusion) Accuracy() float64 { return ratio(c.TP+c.TN, c.Total()) }

// Coverage is 1 - CE / (Total + Errors) — the ability to compile codes.
func (c Confusion) Coverage() float64 {
	return 1 - ratio(c.CE, c.Total()+c.Errors())
}

// Conclusiveness is 1 - Errors / (Total + Errors) — the ability to draw a
// diagnostic.
func (c Confusion) Conclusiveness() float64 {
	return 1 - ratio(c.Errors(), c.Total()+c.Errors())
}

// Specificity is TN / (TN + FP) — the ability to not flag correct codes.
// (Table I's formula prints 1 - TN/(TN+FP); the paper's numbers are
// consistent with the standard TN/(TN+FP), which we use.)
func (c Confusion) Specificity() float64 { return ratio(c.TN, c.TN+c.FP) }

// OverallAccuracy is (TP + TN) / (Total + Errors).
func (c Confusion) OverallAccuracy() float64 {
	return ratio(c.TP+c.TN, c.Total()+c.Errors())
}

// Row formats the Table II-style result row.
func (c Confusion) Row() string {
	return fmt.Sprintf("%5d %5d %4d %4d  R=%.3f P=%.3f F1=%.3f A=%.3f",
		c.TP, c.TN, c.FP, c.FN, c.Recall(), c.Precision(), c.F1(), c.Accuracy())
}

// FullRow formats the Table III-style row with robustness metrics.
func (c Confusion) FullRow() string {
	return fmt.Sprintf("CE=%d TO=%d RE=%d TP=%d TN=%d FP=%d FN=%d Cov=%.3f Cc=%.3f S=%.3f R=%.3f P=%.3f F1=%.3f Oa=%.3f",
		c.CE, c.TO, c.RE, c.TP, c.TN, c.FP, c.FN,
		c.Coverage(), c.Conclusiveness(), c.Specificity(),
		c.Recall(), c.Precision(), c.F1(), c.OverallAccuracy())
}

// Table renders a labelled set of confusions as an aligned text table.
func Table(rows []struct {
	Name string
	C    Confusion
}) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %6s %6s %5s %5s %7s %7s %7s %7s\n",
		"tool", "TP", "TN", "FP", "FN", "Recall", "Prec", "F1", "Acc")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-28s %6d %6d %5d %5d %7.3f %7.3f %7.3f %7.3f\n",
			r.Name, r.C.TP, r.C.TN, r.C.FP, r.C.FN,
			r.C.Recall(), r.C.Precision(), r.C.F1(), r.C.Accuracy())
	}
	return sb.String()
}
