package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPaperITACRow(t *testing.T) {
	// Table III, ITAC row: CE=0 TO=157 RE=1 TP=859 TN=738 FP=4 FN=102.
	c := Confusion{TP: 859, TN: 738, FP: 4, FN: 102, TO: 157, RE: 1}
	approx := func(got, want float64) bool { return math.Abs(got-want) < 0.002 }
	if !approx(c.Coverage(), 1) {
		t.Errorf("coverage = %f", c.Coverage())
	}
	if !approx(c.Conclusiveness(), 0.915) {
		t.Errorf("conclusiveness = %f, want 0.915", c.Conclusiveness())
	}
	if !approx(c.Recall(), 0.894) {
		t.Errorf("recall = %f, want 0.894", c.Recall())
	}
	if !approx(c.Precision(), 0.995) {
		t.Errorf("precision = %f, want 0.995", c.Precision())
	}
	if !approx(c.F1(), 0.942) {
		t.Errorf("F1 = %f, want 0.942", c.F1())
	}
	if !approx(c.OverallAccuracy(), 0.858) {
		t.Errorf("overall accuracy = %f, want 0.858", c.OverallAccuracy())
	}
}

func TestPaperIR2vecIntraRow(t *testing.T) {
	// Table II, IR2vec Intra MBI: TP=1043 TN=664 FP=81 FN=73.
	c := Confusion{TP: 1043, TN: 664, FP: 81, FN: 73}
	approx := func(got, want float64) bool { return math.Abs(got-want) < 0.001 }
	if !approx(c.Recall(), 0.935) || !approx(c.Precision(), 0.928) ||
		!approx(c.F1(), 0.931) || !approx(c.Accuracy(), 0.917) {
		t.Errorf("row = %s", c.Row())
	}
}

func TestRecord(t *testing.T) {
	var c Confusion
	c.Record(true, true)   // TP
	c.Record(true, false)  // FN
	c.Record(false, true)  // FP
	c.Record(false, false) // TN
	if c.TP != 1 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Errorf("record miscounted: %+v", c)
	}
	if c.Accuracy() != 0.5 {
		t.Errorf("accuracy = %f", c.Accuracy())
	}
}

func TestAdd(t *testing.T) {
	a := Confusion{TP: 1, TN: 2, FP: 3, FN: 4, CE: 5, TO: 6, RE: 7}
	b := a
	a.Add(b)
	if a.TP != 2 || a.RE != 14 {
		t.Errorf("add wrong: %+v", a)
	}
}

func TestQuickMetricBounds(t *testing.T) {
	f := func(tp, tn, fp, fn uint8) bool {
		c := Confusion{TP: int(tp), TN: int(tn), FP: int(fp), FN: int(fn)}
		for _, v := range []float64{c.Recall(), c.Precision(), c.F1(),
			c.Accuracy(), c.Coverage(), c.Conclusiveness(), c.Specificity(),
			c.OverallAccuracy()} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickF1IsHarmonicMean(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		c := Confusion{TP: int(tp) + 1, FP: int(fp), FN: int(fn)}
		p, r := c.Precision(), c.Recall()
		want := 2 * p * r / (p + r)
		return math.Abs(c.F1()-want) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableFormat(t *testing.T) {
	out := Table([]struct {
		Name string
		C    Confusion
	}{{"toolA", Confusion{TP: 10, TN: 10}}})
	if !strings.Contains(out, "toolA") || !strings.Contains(out, "1.000") {
		t.Errorf("table malformed:\n%s", out)
	}
}
