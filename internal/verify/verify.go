// Package verify implements the expert verification tools the paper
// compares against (Table III, Fig. 7): a PARCOACH-like static collective
// analysis, an MPI-Checker-like static argument/request checker, and two
// dynamic checkers in the mould of ITAC and MUST that actually execute the
// programs on the runtime simulator. Each tool reproduces the signature
// behaviour of its archetype: PARCOACH's over-approximation (huge FP count,
// specificity near 0.09), ITAC's timeouts on deadlocking codes
// (conclusiveness < 1), and MUST's deadlock detection.
package verify

import (
	"mpidetect/internal/dataset"
	"mpidetect/internal/ir"
	"mpidetect/internal/irgen"
	"mpidetect/internal/metrics"
	"mpidetect/internal/mpi"
	"mpidetect/internal/mpisim"
)

// Verdict is one tool's outcome on one code.
type Verdict struct {
	Flagged bool   // the tool reported an error
	CE      bool   // compilation error
	TO      bool   // timeout
	RE      bool   // runtime/tool error
	Reason  string // first diagnostic
}

// Tool is a verification tool under evaluation.
type Tool interface {
	Name() string
	Check(c *dataset.Code) Verdict
}

// Evaluate runs a tool over a dataset and tallies Table III counts.
func Evaluate(t Tool, d *dataset.Dataset) metrics.Confusion {
	var c metrics.Confusion
	for _, code := range d.Codes {
		v := t.Check(code)
		switch {
		case v.CE:
			c.CE++
		case v.TO:
			c.TO++
		case v.RE:
			c.RE++
		default:
			c.Record(code.Incorrect(), v.Flagged)
		}
	}
	return c
}

func lower(c *dataset.Code) (*ir.Module, bool) {
	m, err := irgen.Lower(c.Prog)
	return m, err == nil
}

// ---------------------------------------------------------------------------
// ITAC-like dynamic checker: execute with runtime checking; deadlocks hit
// the tool's timeout (inconclusive), everything else produces a verdict.
// ---------------------------------------------------------------------------

// ITAC is the dynamic trace analyzer archetype.
type ITAC struct{}

// Name implements Tool.
func (ITAC) Name() string { return "ITAC-like (dynamic)" }

// Check implements Tool.
func (ITAC) Check(c *dataset.Code) Verdict {
	m, ok := lower(c)
	if !ok {
		return Verdict{CE: true}
	}
	res := mpisim.Run(m, mpisim.Config{Ranks: c.Ranks})
	switch {
	case res.Deadlock || res.Timeout:
		// The real tool waits for completion and gets killed by the
		// harness timeout: inconclusive.
		return Verdict{TO: true, Reason: "timeout"}
	case res.Crashed:
		return Verdict{RE: true, Reason: res.CrashMsg}
	case len(res.Violations) > 0:
		return Verdict{Flagged: true, Reason: res.Violations[0].String()}
	}
	return Verdict{}
}

// ---------------------------------------------------------------------------
// MUST-like dynamic checker: same dynamic checks, but a wait-for-graph
// deadlock detector turns deadlocks into diagnostics instead of timeouts.
// ---------------------------------------------------------------------------

// MUST is the runtime-correctness-tool archetype.
type MUST struct{}

// Name implements Tool.
func (MUST) Name() string { return "MUST-like (dynamic)" }

// Check implements Tool.
func (MUST) Check(c *dataset.Code) Verdict {
	m, ok := lower(c)
	if !ok {
		return Verdict{CE: true}
	}
	res := mpisim.Run(m, mpisim.Config{Ranks: c.Ranks})
	switch {
	case res.Timeout:
		return Verdict{TO: true}
	case res.Crashed:
		return Verdict{RE: true, Reason: res.CrashMsg}
	case res.Deadlock:
		return Verdict{Flagged: true, Reason: "deadlock detected"}
	case len(res.Violations) > 0:
		return Verdict{Flagged: true, Reason: res.Violations[0].String()}
	}
	return Verdict{}
}

// ---------------------------------------------------------------------------
// PARCOACH-like static analysis: flags collective operations that are
// control-dependent on rank-derived values. Deliberately over-approximate
// (path-insensitive), reproducing the real tool's false-positive storm on
// benchmarks whose correct codes also branch on the rank.
// ---------------------------------------------------------------------------

// PARCOACH is the static collective-verification archetype.
type PARCOACH struct{}

// Name implements Tool.
func (PARCOACH) Name() string { return "PARCOACH-like (static)" }

// Check implements Tool.
func (PARCOACH) Check(c *dataset.Code) Verdict {
	m, ok := lower(c)
	if !ok {
		return Verdict{CE: true}
	}
	for _, f := range m.Defined() {
		tainted := rankTaintedValues(f)
		hasTaintedBranch := false
		for _, b := range f.Blocks {
			if t := b.Term(); t != nil && t.Op == ir.OpCondBr {
				if tainted[t.Args[0]] {
					hasTaintedBranch = true
				}
			}
		}
		if !hasTaintedBranch {
			continue
		}
		// Any blocking/collective MPI operation in a function with
		// rank-dependent control flow is (conservatively) a potential
		// mismatch.
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				name := in.MPICallName()
				if name == "" {
					continue
				}
				op, _ := mpi.FromName(name)
				if mpi.IsCollective(op) || op == mpi.OpFinalize {
					return Verdict{Flagged: true,
						Reason: "possible collective mismatch: " + name + " under rank-dependent control flow"}
				}
			}
		}
	}
	// Secondary check: obviously mismatched collective sequences across
	// sibling branches (the tool's core strength).
	if mismatchedBranchCollectives(m) {
		return Verdict{Flagged: true, Reason: "collective sequence differs between branches"}
	}
	return Verdict{}
}

// rankTaintedValues computes the set of values derived from the rank
// output of MPI_Comm_rank via a simple forward data-flow closure.
func rankTaintedValues(f *ir.Func) map[ir.Value]bool {
	tainted := map[ir.Value]bool{}
	// Seed: pointers passed to MPI_Comm_rank.
	rankPtrs := map[ir.Value]bool{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.MPICallName() == "MPI_Comm_rank" && len(in.Args) >= 2 {
				rankPtrs[in.Args[1]] = true
			}
		}
	}
	changed := true
	for changed {
		changed = false
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if tainted[in] {
					continue
				}
				taint := false
				switch in.Op {
				case ir.OpLoad:
					if rankPtrs[in.Args[0]] || tainted[in.Args[0]] {
						taint = true
					}
				default:
					for _, a := range in.Args {
						if tainted[a] {
							taint = true
							break
						}
					}
				}
				if taint {
					tainted[in] = true
					changed = true
				}
			}
		}
	}
	return tainted
}

// mismatchedBranchCollectives detects condbr arms whose collective call
// sequences differ (PARCOACH's classic check).
func mismatchedBranchCollectives(m *ir.Module) bool {
	for _, f := range m.Defined() {
		for _, b := range f.Blocks {
			t := b.Term()
			if t == nil || t.Op != ir.OpCondBr {
				continue
			}
			a := collectiveSeq(t.Blocks[0])
			c := collectiveSeq(t.Blocks[1])
			if len(a) != len(c) {
				return true
			}
			for i := range a {
				if a[i] != c[i] {
					return true
				}
			}
		}
	}
	return false
}

// collectiveSeq lists the collective calls of a single block.
func collectiveSeq(b *ir.Block) []string {
	var out []string
	for _, in := range b.Instrs {
		if name := in.MPICallName(); name != "" {
			if op, ok := mpi.FromName(name); ok && mpi.IsCollective(op) {
				out = append(out, name)
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// MPI-Checker-like static checks: AST-level argument validation plus
// request usage checks, path-insensitive.
// ---------------------------------------------------------------------------

// MPIChecker is the Clang-Static-Analyzer-based archetype.
type MPIChecker struct{}

// Name implements Tool.
func (MPIChecker) Name() string { return "MPI-Checker-like (static)" }

// Check implements Tool.
func (MPIChecker) Check(c *dataset.Code) Verdict {
	m, ok := lower(c)
	if !ok {
		return Verdict{CE: true}
	}
	for _, f := range m.Defined() {
		starts, waits := 0, 0
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				name := in.MPICallName()
				if name == "" {
					continue
				}
				op, _ := mpi.FromName(name)
				sig, okSig := mpi.SignatureOf(op)
				if okSig {
					if v := constArg(in, sig.Arg.Count); v != nil && v.Int < 0 {
						return Verdict{Flagged: true, Reason: "negative count in " + name}
					}
					if v := constArg(in, sig.Arg.Tag); v != nil &&
						(v.Int > mpi.TagUB || (v.Int < 0 && v.Int != mpi.AnyTag)) {
						return Verdict{Flagged: true, Reason: "invalid tag in " + name}
					}
					if v := constArg(in, sig.Arg.Datatype); v != nil &&
						(v.Int <= 0 || (v.Int > int64(mpi.DTDerived) && v.Int < 100)) {
						return Verdict{Flagged: true, Reason: "invalid datatype in " + name}
					}
					if v := constArg(in, sig.Arg.Comm); v != nil &&
						v.Int != mpi.CommWorld && v.Int != mpi.CommSelf {
						return Verdict{Flagged: true, Reason: "invalid communicator in " + name}
					}
					if idx := sig.Arg.Buf; idx >= 0 && idx < len(in.Args) {
						if cv, okc := in.Args[idx].(*ir.Const); okc && cv.IsNull {
							if cnt := constArg(in, sig.Arg.Count); cnt == nil || cnt.Int > 0 {
								return Verdict{Flagged: true, Reason: "null buffer in " + name}
							}
						}
					}
				}
				if mpi.StartsRequest(op) {
					starts++
				}
				if op == mpi.OpWait || op == mpi.OpWaitall || op == mpi.OpTest || op == mpi.OpRequestFree {
					waits++
				}
			}
		}
		if starts > waits {
			return Verdict{Flagged: true, Reason: "nonblocking request without completion"}
		}
	}
	return Verdict{}
}

func constArg(in *ir.Instr, idx int) *ir.Const {
	if idx < 0 || idx >= len(in.Args) {
		return nil
	}
	c, _ := in.Args[idx].(*ir.Const)
	return c
}
