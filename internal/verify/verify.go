// Package verify implements the expert verification tools the paper
// compares against (Table III, Fig. 7): a PARCOACH-like static collective
// analysis, an MPI-Checker-like static argument/request checker, and two
// dynamic checkers in the mould of ITAC and MUST that actually execute the
// programs on the runtime simulator. Each tool reproduces the signature
// behaviour of its archetype: PARCOACH's over-approximation (huge FP count,
// specificity near 0.09), ITAC's timeouts on deadlocking codes
// (conclusiveness < 1), and MUST's deadlock detection.
package verify

import (
	"context"
	"time"

	"mpidetect/internal/dataset"
	"mpidetect/internal/ir"
	"mpidetect/internal/irgen"
	"mpidetect/internal/metrics"
	"mpidetect/internal/mpi"
	"mpidetect/internal/mpisim"
	"mpidetect/internal/par"
)

// Verdict is one tool's outcome on one code.
type Verdict struct {
	Flagged  bool   // the tool reported an error
	CE       bool   // compilation error
	TO       bool   // timeout
	Wall     bool   // the TO came from the wall-clock budget (load-dependent)
	RE       bool   // runtime/tool error
	Canceled bool   // the caller's context expired mid-run (always with TO)
	Reason   string // first diagnostic
}

// Tool is a verification tool under evaluation.
type Tool interface {
	Name() string
	Check(c *dataset.Code) Verdict
}

// ModuleChecker is implemented by tools that can analyze an already-
// compiled module under a caller-provided context and simulation
// configuration — the serving path, where programs arrive as textual IR
// and every dynamic run must answer to a request deadline. Static tools
// ignore ctx and cfg.
type ModuleChecker interface {
	Tool
	CheckModule(ctx context.Context, m *ir.Module, cfg mpisim.Config) Verdict
}

// ProgramChecker is implemented by the dynamic tools, which execute
// programs on the runtime simulator: CheckProgram analyzes a
// pre-compiled simulator program (mpisim.Compile), so a caller that
// fans one program out to several tools — or to several world sizes —
// compiles it exactly once. The compiled form is rank-independent.
type ProgramChecker interface {
	ModuleChecker
	CheckProgram(ctx context.Context, prog *mpisim.Program, cfg mpisim.Config) Verdict
}

// DefaultMaxSteps is the explicit per-rank step budget the harness hands
// the simulator. It pins the mpisim default so tool timeouts stay
// deterministic even if the simulator's own default moves.
const DefaultMaxSteps = 200_000

// Budget bounds one simulated run of a dynamic tool. The zero value
// takes the documented defaults, so ITAC{} / MUST{} literals keep their
// historical behaviour.
type Budget struct {
	Ranks    int           // simulated ranks when the code does not specify (default 2)
	MaxSteps int64         // per-rank interpreter step budget (default DefaultMaxSteps)
	Wall     time.Duration // wall-clock cap for one run (0 = none)
}

func (b Budget) withDefaults() Budget {
	if b.Ranks <= 0 {
		b.Ranks = 2
	}
	if b.MaxSteps <= 0 {
		b.MaxSteps = DefaultMaxSteps
	}
	return b
}

// simConfig builds the simulator configuration for one run, preferring
// the code's own rank count over the budget's default.
func (b Budget) simConfig(ranks int) mpisim.Config {
	b = b.withDefaults()
	if ranks > 0 {
		b.Ranks = ranks
	}
	return mpisim.Config{Ranks: b.Ranks, MaxSteps: b.MaxSteps, WallBudget: b.Wall}
}

// Evaluate runs a tool over a dataset and tallies Table III counts.
// Verdicts are computed in parallel (the dynamic tools dominate eval
// wall-clock); the tally itself is a sequential fold over the per-code
// verdicts, so the confusion matrix is identical to a serial evaluation.
func Evaluate(t Tool, d *dataset.Dataset) metrics.Confusion {
	verdicts := make([]Verdict, len(d.Codes))
	par.Map(len(d.Codes), func(i int) { verdicts[i] = t.Check(d.Codes[i]) })
	return tally(d, verdicts)
}

// evaluateSerial is the single-threaded reference path, kept so tests
// can pin Evaluate's parallel fan-out to bit-identical tallies.
func evaluateSerial(t Tool, d *dataset.Dataset) metrics.Confusion {
	verdicts := make([]Verdict, len(d.Codes))
	for i, code := range d.Codes {
		verdicts[i] = t.Check(code)
	}
	return tally(d, verdicts)
}

func tally(d *dataset.Dataset, verdicts []Verdict) metrics.Confusion {
	var c metrics.Confusion
	for i, code := range d.Codes {
		v := verdicts[i]
		switch {
		case v.CE:
			c.CE++
		case v.TO:
			c.TO++
		case v.RE:
			c.RE++
		default:
			c.Record(code.Incorrect(), v.Flagged)
		}
	}
	return c
}

// lower returns the code's IR module, lowering at most once per code:
// the module is memoized on the Code, so a corpus evaluated by several
// tools (Table III, Fig. 7) pays one lowering per program instead of
// one per program-tool pair. Tools treat modules as read-only.
func lower(c *dataset.Code) (*ir.Module, bool) {
	m, _ := c.Memo(dataset.MemoModule, func() any {
		m, err := irgen.Lower(c.Prog)
		if err != nil {
			return (*ir.Module)(nil)
		}
		return m
	}).(*ir.Module)
	return m, m != nil
}

// compiled returns the code's pre-compiled simulator program, compiling
// at most once per code; ITAC and MUST share the result.
func compiled(c *dataset.Code, m *ir.Module) *mpisim.Program {
	return c.Memo(dataset.MemoProgram, func() any {
		return mpisim.Compile(m)
	}).(*mpisim.Program)
}

// ---------------------------------------------------------------------------
// ITAC-like dynamic checker: execute with runtime checking; deadlocks hit
// the tool's timeout (inconclusive), everything else produces a verdict.
// ---------------------------------------------------------------------------

// ITAC is the dynamic trace analyzer archetype. Budget bounds every
// simulated run explicitly, so harness timeouts are deterministic rather
// than dependent on the simulator's default step budget.
type ITAC struct{ Budget Budget }

// Name implements Tool.
func (ITAC) Name() string { return "ITAC-like (dynamic)" }

// Check implements Tool.
func (t ITAC) Check(c *dataset.Code) Verdict {
	m, ok := lower(c)
	if !ok {
		return Verdict{CE: true}
	}
	return t.CheckProgram(context.Background(), compiled(c, m), t.Budget.simConfig(c.Ranks))
}

// CheckModule implements ModuleChecker.
func (t ITAC) CheckModule(ctx context.Context, m *ir.Module, cfg mpisim.Config) Verdict {
	return t.CheckProgram(ctx, mpisim.Compile(m), cfg)
}

// CheckProgram implements ProgramChecker.
func (ITAC) CheckProgram(ctx context.Context, prog *mpisim.Program, cfg mpisim.Config) Verdict {
	res := prog.RunCtx(ctx, cfg)
	switch {
	case res.Canceled:
		return Verdict{TO: true, Canceled: true, Reason: "canceled"}
	case res.Deadlock || res.Timeout:
		// The real tool waits for completion and gets killed by the
		// harness timeout: inconclusive.
		return Verdict{TO: true, Wall: res.WallTimeout, Reason: "timeout"}
	case res.Crashed:
		return Verdict{RE: true, Reason: res.CrashMsg}
	case len(res.Violations) > 0:
		return Verdict{Flagged: true, Reason: res.Violations[0].String()}
	}
	return Verdict{}
}

// ---------------------------------------------------------------------------
// MUST-like dynamic checker: same dynamic checks, but a wait-for-graph
// deadlock detector turns deadlocks into diagnostics instead of timeouts.
// ---------------------------------------------------------------------------

// MUST is the runtime-correctness-tool archetype. Budget bounds every
// simulated run explicitly (see ITAC).
type MUST struct{ Budget Budget }

// Name implements Tool.
func (MUST) Name() string { return "MUST-like (dynamic)" }

// Check implements Tool.
func (t MUST) Check(c *dataset.Code) Verdict {
	m, ok := lower(c)
	if !ok {
		return Verdict{CE: true}
	}
	return t.CheckProgram(context.Background(), compiled(c, m), t.Budget.simConfig(c.Ranks))
}

// CheckModule implements ModuleChecker.
func (t MUST) CheckModule(ctx context.Context, m *ir.Module, cfg mpisim.Config) Verdict {
	return t.CheckProgram(ctx, mpisim.Compile(m), cfg)
}

// CheckProgram implements ProgramChecker.
func (MUST) CheckProgram(ctx context.Context, prog *mpisim.Program, cfg mpisim.Config) Verdict {
	res := prog.RunCtx(ctx, cfg)
	switch {
	case res.Canceled:
		return Verdict{TO: true, Canceled: true, Reason: "canceled"}
	case res.Timeout:
		return Verdict{TO: true, Wall: res.WallTimeout}
	case res.Crashed:
		return Verdict{RE: true, Reason: res.CrashMsg}
	case res.Deadlock:
		return Verdict{Flagged: true, Reason: "deadlock detected"}
	case len(res.Violations) > 0:
		return Verdict{Flagged: true, Reason: res.Violations[0].String()}
	}
	return Verdict{}
}

// ---------------------------------------------------------------------------
// PARCOACH-like static analysis: flags collective operations that are
// control-dependent on rank-derived values. Deliberately over-approximate
// (path-insensitive), reproducing the real tool's false-positive storm on
// benchmarks whose correct codes also branch on the rank.
// ---------------------------------------------------------------------------

// PARCOACH is the static collective-verification archetype.
type PARCOACH struct{}

// Name implements Tool.
func (PARCOACH) Name() string { return "PARCOACH-like (static)" }

// Check implements Tool.
func (t PARCOACH) Check(c *dataset.Code) Verdict {
	m, ok := lower(c)
	if !ok {
		return Verdict{CE: true}
	}
	return t.CheckModule(context.Background(), m, mpisim.Config{})
}

// CheckModule implements ModuleChecker; the analysis is static, so ctx
// and cfg are ignored.
func (PARCOACH) CheckModule(_ context.Context, m *ir.Module, _ mpisim.Config) Verdict {
	for _, f := range m.Defined() {
		tainted := rankTaintedValues(f)
		hasTaintedBranch := false
		for _, b := range f.Blocks {
			if t := b.Term(); t != nil && t.Op == ir.OpCondBr {
				if tainted[t.Args[0]] {
					hasTaintedBranch = true
				}
			}
		}
		if !hasTaintedBranch {
			continue
		}
		// Any blocking/collective MPI operation in a function with
		// rank-dependent control flow is (conservatively) a potential
		// mismatch.
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				name := in.MPICallName()
				if name == "" {
					continue
				}
				op, _ := mpi.FromName(name)
				if mpi.IsCollective(op) || op == mpi.OpFinalize {
					return Verdict{Flagged: true,
						Reason: "possible collective mismatch: " + name + " under rank-dependent control flow"}
				}
			}
		}
	}
	// Secondary check: obviously mismatched collective sequences across
	// sibling branches (the tool's core strength).
	if mismatchedBranchCollectives(m) {
		return Verdict{Flagged: true, Reason: "collective sequence differs between branches"}
	}
	return Verdict{}
}

// rankTaintedValues computes the set of values derived from the rank
// output of MPI_Comm_rank via a simple forward data-flow closure.
func rankTaintedValues(f *ir.Func) map[ir.Value]bool {
	tainted := map[ir.Value]bool{}
	// Seed: pointers passed to MPI_Comm_rank.
	rankPtrs := map[ir.Value]bool{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.MPICallName() == "MPI_Comm_rank" && len(in.Args) >= 2 {
				rankPtrs[in.Args[1]] = true
			}
		}
	}
	changed := true
	for changed {
		changed = false
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if tainted[in] {
					continue
				}
				taint := false
				switch in.Op {
				case ir.OpLoad:
					if rankPtrs[in.Args[0]] || tainted[in.Args[0]] {
						taint = true
					}
				default:
					for _, a := range in.Args {
						if tainted[a] {
							taint = true
							break
						}
					}
				}
				if taint {
					tainted[in] = true
					changed = true
				}
			}
		}
	}
	return tainted
}

// mismatchedBranchCollectives detects condbr arms whose collective call
// sequences differ (PARCOACH's classic check).
func mismatchedBranchCollectives(m *ir.Module) bool {
	for _, f := range m.Defined() {
		for _, b := range f.Blocks {
			t := b.Term()
			if t == nil || t.Op != ir.OpCondBr {
				continue
			}
			a := collectiveSeq(t.Blocks[0])
			c := collectiveSeq(t.Blocks[1])
			if len(a) != len(c) {
				return true
			}
			for i := range a {
				if a[i] != c[i] {
					return true
				}
			}
		}
	}
	return false
}

// collectiveSeq lists the collective calls of a single block.
func collectiveSeq(b *ir.Block) []string {
	var out []string
	for _, in := range b.Instrs {
		if name := in.MPICallName(); name != "" {
			if op, ok := mpi.FromName(name); ok && mpi.IsCollective(op) {
				out = append(out, name)
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// MPI-Checker-like static checks: AST-level argument validation plus
// request usage checks, path-insensitive.
// ---------------------------------------------------------------------------

// MPIChecker is the Clang-Static-Analyzer-based archetype.
type MPIChecker struct{}

// Name implements Tool.
func (MPIChecker) Name() string { return "MPI-Checker-like (static)" }

// Check implements Tool.
func (t MPIChecker) Check(c *dataset.Code) Verdict {
	m, ok := lower(c)
	if !ok {
		return Verdict{CE: true}
	}
	return t.CheckModule(context.Background(), m, mpisim.Config{})
}

// CheckModule implements ModuleChecker; the analysis is static, so ctx
// and cfg are ignored.
func (MPIChecker) CheckModule(_ context.Context, m *ir.Module, _ mpisim.Config) Verdict {
	for _, f := range m.Defined() {
		starts, waits := 0, 0
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				name := in.MPICallName()
				if name == "" {
					continue
				}
				op, _ := mpi.FromName(name)
				sig, okSig := mpi.SignatureOf(op)
				if okSig {
					if v := constArg(in, sig.Arg.Count); v != nil && v.Int < 0 {
						return Verdict{Flagged: true, Reason: "negative count in " + name}
					}
					if v := constArg(in, sig.Arg.Tag); v != nil &&
						(v.Int > mpi.TagUB || (v.Int < 0 && v.Int != mpi.AnyTag)) {
						return Verdict{Flagged: true, Reason: "invalid tag in " + name}
					}
					if v := constArg(in, sig.Arg.Datatype); v != nil &&
						(v.Int <= 0 || (v.Int > int64(mpi.DTDerived) && v.Int < 100)) {
						return Verdict{Flagged: true, Reason: "invalid datatype in " + name}
					}
					if v := constArg(in, sig.Arg.Comm); v != nil &&
						v.Int != mpi.CommWorld && v.Int != mpi.CommSelf {
						return Verdict{Flagged: true, Reason: "invalid communicator in " + name}
					}
					if idx := sig.Arg.Buf; idx >= 0 && idx < len(in.Args) {
						if cv, okc := in.Args[idx].(*ir.Const); okc && cv.IsNull {
							if cnt := constArg(in, sig.Arg.Count); cnt == nil || cnt.Int > 0 {
								return Verdict{Flagged: true, Reason: "null buffer in " + name}
							}
						}
					}
				}
				if mpi.StartsRequest(op) {
					starts++
				}
				if op == mpi.OpWait || op == mpi.OpWaitall || op == mpi.OpTest || op == mpi.OpRequestFree {
					waits++
				}
			}
		}
		if starts > waits {
			return Verdict{Flagged: true, Reason: "nonblocking request without completion"}
		}
	}
	return Verdict{}
}

func constArg(in *ir.Instr, idx int) *ir.Const {
	if idx < 0 || idx >= len(in.Args) {
		return nil
	}
	c, _ := in.Args[idx].(*ir.Const)
	return c
}
