package verify

import (
	"context"
	"testing"

	"mpidetect/internal/dataset"
	"mpidetect/internal/irgen"
	"mpidetect/internal/mpisim"
)

// slice returns a small label-stratified subset for fast tool runs.
func slice(d *dataset.Dataset, per int) *dataset.Dataset {
	out := &dataset.Dataset{Name: d.Name}
	counts := map[dataset.Label]int{}
	for _, c := range d.Codes {
		if counts[c.Label] < per {
			counts[c.Label]++
			out.Codes = append(out.Codes, c)
		}
	}
	return out
}

func TestITACPrecision(t *testing.T) {
	d := slice(dataset.GenerateMBI(3), 6)
	c := Evaluate(ITAC{}, d)
	if c.Total()+c.Errors() != len(d.Codes) {
		t.Fatalf("verdicts %d+%d != %d codes", c.Total(), c.Errors(), len(d.Codes))
	}
	// ITAC's archetype behaviour: near-perfect precision and a sizeable
	// timeout column from deadlocking codes.
	if c.FP > 1 {
		t.Errorf("ITAC-like produced %d false positives", c.FP)
	}
	if c.TO == 0 {
		t.Error("ITAC-like produced no timeouts on MBI deadlock codes")
	}
	if c.Conclusiveness() >= 1 {
		t.Error("ITAC-like should be inconclusive on deadlocks")
	}
}

func TestMUSTDetectsDeadlocks(t *testing.T) {
	d := slice(dataset.GenerateMBI(3), 6)
	must := Evaluate(MUST{}, d)
	itac := Evaluate(ITAC{}, d)
	// MUST converts ITAC's timeouts into diagnostics.
	if must.TO >= itac.TO {
		t.Errorf("MUST TO=%d not below ITAC TO=%d", must.TO, itac.TO)
	}
	if must.TP <= itac.TP {
		t.Errorf("MUST TP=%d not above ITAC TP=%d", must.TP, itac.TP)
	}
}

func TestPARCOACHOverApproximates(t *testing.T) {
	d := slice(dataset.GenerateMBI(5), 10)
	c := Evaluate(PARCOACH{}, d)
	// The static tool must produce false positives (its defining trait —
	// Table III reports specificity 0.088).
	if c.FP == 0 {
		t.Error("PARCOACH-like produced no false positives")
	}
	if c.Specificity() > 0.6 {
		t.Errorf("PARCOACH-like specificity %.2f too high to match the archetype", c.Specificity())
	}
	// And it is fully conclusive (static, no timeouts).
	if c.Errors() != 0 {
		t.Errorf("static tool produced %d CE/TO/RE", c.Errors())
	}
}

func TestMPICheckerFindsArgErrors(t *testing.T) {
	d := dataset.GenerateCorrBench(7, false)
	arg := d.Filter(func(c *dataset.Code) bool { return c.Label == dataset.ArgError })
	arg.Codes = arg.Codes[:30]
	c := Evaluate(MPIChecker{}, arg)
	if c.TP < 15 {
		t.Errorf("MPI-Checker-like caught only %d/30 ArgError codes", c.TP)
	}
}

func TestToolsOnCorrectCodes(t *testing.T) {
	d := dataset.GenerateCorrBench(9, false)
	correct := d.Filter(func(c *dataset.Code) bool { return !c.Incorrect() })
	correct.Codes = correct.Codes[:25]
	// Dynamic tools must not flag correct codes.
	for _, tool := range []Tool{ITAC{}, MUST{}} {
		c := Evaluate(tool, correct)
		if c.FP != 0 {
			t.Errorf("%s flagged %d correct codes", tool.Name(), c.FP)
		}
	}
}

// TestEvaluateParallelMatchesSerial pins the parallel Evaluate fan-out
// to bit-identical confusion matrices against the serial reference, for
// both a dynamic and a static tool.
func TestEvaluateParallelMatchesSerial(t *testing.T) {
	d := slice(dataset.GenerateMBI(3), 5)
	for _, tool := range []Tool{MUST{}, PARCOACH{}} {
		got := Evaluate(tool, d)
		want := evaluateSerial(tool, d)
		if got != want {
			t.Errorf("%s: parallel confusion %+v != serial %+v", tool.Name(), got, want)
		}
	}
}

// TestExplicitBudgetCapsRuns: a tiny step budget turns every nontrivial
// code into a deterministic timeout, proving the harness budget is
// threaded through to the simulator instead of the 200k-step default.
func TestExplicitBudgetCapsRuns(t *testing.T) {
	d := slice(dataset.GenerateMBI(3), 2)
	starved := Evaluate(ITAC{Budget: Budget{MaxSteps: 10}}, d)
	if starved.TP+starved.TN+starved.FP+starved.FN != 0 {
		t.Errorf("10-step budget still produced conclusive verdicts: %+v", starved)
	}
	if starved.TO == 0 {
		t.Errorf("10-step budget produced no timeouts: %+v", starved)
	}
	// And the zero-value budget matches the historical default exactly.
	if got, want := Evaluate(ITAC{}, d), evaluateSerial(ITAC{Budget: Budget{MaxSteps: DefaultMaxSteps}}, d); got != want {
		t.Errorf("zero budget %+v != explicit default budget %+v", got, want)
	}
}

// TestCheckModuleCancellation: a dead context makes a dynamic tool
// return an inconclusive, cancellation-marked verdict.
func TestCheckModuleCancellation(t *testing.T) {
	d := slice(dataset.GenerateMBI(3), 1)
	m, err := irgen.Lower(d.Codes[0].Prog)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tool := range []ModuleChecker{ITAC{}, MUST{}} {
		v := tool.CheckModule(ctx, m, mpisim.Config{Ranks: 2})
		if !v.Canceled || !v.TO {
			t.Errorf("%s: canceled run returned %+v, want Canceled+TO", tool.Name(), v)
		}
	}
	// Static tools still answer under a dead context.
	for _, tool := range []ModuleChecker{PARCOACH{}, MPIChecker{}} {
		if v := tool.CheckModule(ctx, m, mpisim.Config{}); v.Canceled {
			t.Errorf("%s: static tool reported cancellation", tool.Name())
		}
	}
}

func TestVerdictNames(t *testing.T) {
	for _, tool := range []Tool{ITAC{}, MUST{}, PARCOACH{}, MPIChecker{}} {
		if tool.Name() == "" {
			t.Error("tool without a name")
		}
	}
}
