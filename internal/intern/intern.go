// Package intern provides a dense string↔id table shared by the feature
// pipeline: the IR2Vec tokeniser and the ProGraML vocabulary both resolve
// program-entity tokens (opcodes, types, bucketed constants) to small
// integer ids exactly once, so every later stage — embedding lookups,
// graph construction, GNN message passing — runs over contiguous arrays
// instead of hashing strings in inner loops.
//
// The table follows the same two-phase discipline as the encoder it
// serves: a mutating fit phase (Intern / InternBytes, single goroutine or
// externally synchronised) followed by a read-only serve phase (Resolve /
// ResolveBytes / TokenOf / Len), which is safe for any number of
// concurrent readers with no locking at all.
package intern

// ID is a dense table index. Ids are assigned sequentially from 0 in
// first-Intern order, so a Table with n tokens uses exactly ids 0..n-1 and
// any id-indexed side array (embedding rows, counts) can be flat.
type ID int32

// Table maps tokens to dense ids and back.
type Table struct {
	ids  map[string]ID
	toks []string
}

// New returns an empty table.
func New() *Table {
	return &Table{ids: map[string]ID{}}
}

// FromTokens rebuilds a table whose token i gets id i — the inverse of
// Tokens, used when decoding persisted artifacts.
func FromTokens(toks []string) *Table {
	t := &Table{ids: make(map[string]ID, len(toks)), toks: make([]string, 0, len(toks))}
	for _, tok := range toks {
		t.Intern(tok)
	}
	return t
}

// Intern resolves tok, adding it with the next id when absent. Mutating:
// fit phase only.
func (t *Table) Intern(tok string) ID {
	if id, ok := t.ids[tok]; ok {
		return id
	}
	id := ID(len(t.toks))
	t.ids[tok] = id
	t.toks = append(t.toks, tok)
	return id
}

// InternBytes is Intern for a byte-buffer token; the string copy is made
// only when the token is new. Mutating: fit phase only.
func (t *Table) InternBytes(tok []byte) ID {
	if id, ok := t.ids[string(tok)]; ok { // compiler elides the conversion
		return id
	}
	return t.Intern(string(tok))
}

// Resolve looks a token up without mutating the table.
func (t *Table) Resolve(tok string) (ID, bool) {
	id, ok := t.ids[tok]
	return id, ok
}

// ResolveBytes is the zero-allocation lookup for tokens assembled in a
// reusable byte buffer (the map access through string(tok) does not copy).
func (t *Table) ResolveBytes(tok []byte) (ID, bool) {
	id, ok := t.ids[string(tok)]
	return id, ok
}

// TokenOf returns the token of a valid id.
func (t *Table) TokenOf(id ID) string { return t.toks[id] }

// Len returns the number of interned tokens.
func (t *Table) Len() int { return len(t.toks) }

// Tokens returns the id-ordered token slice. The slice is shared with the
// table: callers must not mutate it.
func (t *Table) Tokens() []string { return t.toks }
