package intern

import (
	"sync"
	"testing"
)

func TestInternAssignsDenseIDs(t *testing.T) {
	tab := New()
	a := tab.Intern("alpha")
	b := tab.Intern("beta")
	if a != 0 || b != 1 {
		t.Fatalf("ids = %d, %d, want 0, 1", a, b)
	}
	if got := tab.Intern("alpha"); got != a {
		t.Errorf("re-interning returned %d, want %d", got, a)
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d, want 2", tab.Len())
	}
	if tab.TokenOf(b) != "beta" {
		t.Errorf("TokenOf(%d) = %q", b, tab.TokenOf(b))
	}
}

func TestResolveDoesNotMutate(t *testing.T) {
	tab := New()
	tab.Intern("known")
	if _, ok := tab.Resolve("unknown"); ok {
		t.Fatal("Resolve invented an id")
	}
	if tab.Len() != 1 {
		t.Fatalf("Resolve mutated the table: Len = %d", tab.Len())
	}
	id, ok := tab.ResolveBytes([]byte("known"))
	if !ok || id != 0 {
		t.Fatalf("ResolveBytes = %d, %v", id, ok)
	}
}

func TestInternBytesCopiesKey(t *testing.T) {
	tab := New()
	buf := []byte("token")
	id := tab.InternBytes(buf)
	buf[0] = 'X' // the table must not alias the caller's buffer
	if tab.TokenOf(id) != "token" {
		t.Fatalf("table aliased caller buffer: %q", tab.TokenOf(id))
	}
	if got, ok := tab.Resolve("token"); !ok || got != id {
		t.Fatalf("Resolve(token) = %d, %v", got, ok)
	}
}

func TestFromTokensRoundTrip(t *testing.T) {
	tab := New()
	for _, tok := range []string{"a", "b", "c"} {
		tab.Intern(tok)
	}
	clone := FromTokens(tab.Tokens())
	if clone.Len() != tab.Len() {
		t.Fatalf("Len = %d, want %d", clone.Len(), tab.Len())
	}
	for i := 0; i < tab.Len(); i++ {
		if clone.TokenOf(ID(i)) != tab.TokenOf(ID(i)) {
			t.Errorf("id %d: %q vs %q", i, clone.TokenOf(ID(i)), tab.TokenOf(ID(i)))
		}
	}
}

// TestConcurrentResolve exercises the read-only serve phase from many
// goroutines; `go test -race` verifies it is lock-free safe.
func TestConcurrentResolve(t *testing.T) {
	tab := New()
	toks := []string{"add", "sub", "mul", "call:MPI_Send", "type:i32"}
	for _, tok := range toks {
		tab.Intern(tok)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 0, 32)
			for i := 0; i < 1000; i++ {
				tok := toks[i%len(toks)]
				if id, ok := tab.Resolve(tok); !ok || tab.TokenOf(id) != tok {
					t.Errorf("Resolve(%q) failed", tok)
					return
				}
				buf = append(buf[:0], tok...)
				if _, ok := tab.ResolveBytes(buf); !ok {
					t.Errorf("ResolveBytes(%q) failed", tok)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestResolveBytesZeroAlloc(t *testing.T) {
	tab := New()
	tab.Intern("call:MPI_Reduce")
	buf := []byte("call:MPI_Reduce")
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := tab.ResolveBytes(buf); !ok {
			t.Fatal("lost token")
		}
	})
	if allocs != 0 {
		t.Errorf("ResolveBytes allocates %v times per call, want 0", allocs)
	}
}
