// Snapshot archives: an atomic, self-contained copy of the store's live
// records that survives wiping the segment directory and can be restored
// into this or any other store.
//
// An archive is one file under <dir>/snapshots/<name>.snap:
//
//	"MPDSNAP1" | u64 record count | records (same wire format as segments)
//
// Snapshot writes the archive to a temp file and renames it into place,
// so a listed archive is always complete. Restore replaces the store's
// entire contents with the archive's records (segments are rebuilt from
// scratch), optionally filtering each record through a keep function —
// the serving layer uses that to drop records whose model generation
// conflicts with the live registry.
package store

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

const snapMagic = "MPDSNAP1"

// SnapshotInfo describes one archive for the admin list endpoint.
type SnapshotInfo struct {
	Name    string    `json:"name"`
	Records int64     `json:"records"`
	Bytes   int64     `json:"bytes"`
	Created time.Time `json:"created"`
}

// RestoreInfo reports a completed restore.
type RestoreInfo struct {
	Name     string `json:"name"`
	Restored int64  `json:"restored"`
	// Dropped counts archive records rejected by the keep filter
	// (conflicting model generations, in the serving layer's use).
	Dropped int64 `json:"dropped"`
}

func (s *Store) snapDir() string { return filepath.Join(s.dir, "snapshots") }

// validName rejects names that could escape the snapshots directory or
// collide with temp files.
func validName(name string) bool {
	if name == "" || len(name) > 128 || strings.HasPrefix(name, ".") {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// Snapshot atomically archives the live records under name, overwriting
// any previous archive of that name. The caller is responsible for
// flushing its write-behind queue first if pending writes should be
// included.
func (s *Store) Snapshot(name string) (SnapshotInfo, error) {
	if !validName(name) {
		return SnapshotInfo{}, fmt.Errorf("%w: %q", ErrBadName, name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return SnapshotInfo{}, ErrClosed
	}
	tmpPath := filepath.Join(s.snapDir(), "snapshot.tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return SnapshotInfo{}, fmt.Errorf("store: snapshot temp: %w", err)
	}
	defer os.Remove(tmpPath) // no-op once the rename lands
	var hdr [len(snapMagic) + 8]byte
	copy(hdr[:], snapMagic)
	binary.LittleEndian.PutUint64(hdr[len(snapMagic):], uint64(len(s.index)))
	if _, err := tmp.Write(hdr[:]); err != nil {
		tmp.Close()
		return SnapshotInfo{}, fmt.Errorf("store: snapshot header: %w", err)
	}
	keys := make([]string, 0, len(s.index))
	for key := range s.index {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	size := int64(len(hdr))
	for _, key := range keys {
		loc := s.index[key]
		buf := make([]byte, loc.size)
		if _, err := loc.seg.f.ReadAt(buf, loc.off); err != nil {
			tmp.Close()
			return SnapshotInfo{}, fmt.Errorf("store: snapshot read: %w", err)
		}
		if _, err := tmp.Write(buf); err != nil {
			tmp.Close()
			return SnapshotInfo{}, fmt.Errorf("store: snapshot write: %w", err)
		}
		size += loc.size
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return SnapshotInfo{}, fmt.Errorf("store: snapshot sync: %w", err)
	}
	tmp.Close()
	finalPath := filepath.Join(s.snapDir(), name+".snap")
	if err := os.Rename(tmpPath, finalPath); err != nil {
		return SnapshotInfo{}, fmt.Errorf("store: publishing snapshot: %w", err)
	}
	return SnapshotInfo{Name: name, Records: int64(len(keys)), Bytes: size,
		Created: time.Now()}, nil
}

// Snapshots lists the archives, newest first.
func (s *Store) Snapshots() ([]SnapshotInfo, error) {
	entries, err := os.ReadDir(s.snapDir())
	if err != nil {
		return nil, fmt.Errorf("store: listing snapshots: %w", err)
	}
	infos := make([]SnapshotInfo, 0, len(entries))
	for _, e := range entries {
		name, ok := strings.CutSuffix(e.Name(), ".snap")
		if !ok || e.IsDir() {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		count, err := snapshotCount(filepath.Join(s.snapDir(), e.Name()))
		if err != nil {
			continue // incomplete or foreign file; not listable
		}
		infos = append(infos, SnapshotInfo{Name: name, Records: count,
			Bytes: fi.Size(), Created: fi.ModTime()})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Created.After(infos[j].Created) })
	return infos, nil
}

// snapshotCount reads an archive's record count from its header.
func snapshotCount(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var hdr [len(snapMagic) + 8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, err
	}
	if string(hdr[:len(snapMagic)]) != snapMagic {
		return 0, fmt.Errorf("store: %s: bad snapshot magic", path)
	}
	return int64(binary.LittleEndian.Uint64(hdr[len(snapMagic):])), nil
}

// ValidateSnapshot checks that name refers to a readable archive without
// touching the store's contents. Callers that must tear state down
// before restoring (sweeping caches above the store) validate first so a
// bad name cannot destroy the state it failed to replace.
func (s *Store) ValidateSnapshot(name string) error {
	if !validName(name) {
		return fmt.Errorf("%w: %q", ErrBadName, name)
	}
	path := filepath.Join(s.snapDir(), name+".snap")
	if _, err := snapshotCount(path); err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: %q", ErrUnknownSnapshot, name)
		}
		return fmt.Errorf("store: validating snapshot: %w", err)
	}
	return nil
}

// Restore replaces the store's contents with the named archive's
// records. Every existing segment is deleted and rebuilt; keep (when
// non-nil) filters each record by key and generation, and rejected
// records are counted, not restored. The in-memory caches above the
// store are the caller's to invalidate.
func (s *Store) Restore(name string, keep func(key string, gen uint64) bool) (RestoreInfo, error) {
	if !validName(name) {
		return RestoreInfo{}, fmt.Errorf("%w: %q", ErrBadName, name)
	}
	path := filepath.Join(s.snapDir(), name+".snap")
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return RestoreInfo{}, fmt.Errorf("%w: %q", ErrUnknownSnapshot, name)
		}
		return RestoreInfo{}, fmt.Errorf("store: reading snapshot: %w", err)
	}
	if len(data) < len(snapMagic)+8 || string(data[:len(snapMagic)]) != snapMagic {
		return RestoreInfo{}, fmt.Errorf("store: %s: bad snapshot magic", path)
	}
	records := data[len(snapMagic)+8:]

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return RestoreInfo{}, ErrClosed
	}
	// Tear the current segments down and rebuild from the archive.
	for _, old := range s.segs {
		old.f.Close()
		_ = os.Remove(old.path)
	}
	s.segs = nil
	s.index = map[string]recLoc{}
	s.liveBytes = 0
	if err := s.newSegmentLocked(); err != nil {
		return RestoreInfo{}, err
	}
	info := RestoreInfo{Name: name}
	off := int64(0)
	for off < int64(len(records)) {
		key, _, gen, kind, size, ok := parseRecord(records[off:])
		if !ok {
			return info, fmt.Errorf("store: snapshot %s: corrupt record at %d", name, off)
		}
		off += size
		if kind != kindPut {
			continue // archives hold only live puts; tolerate anyway
		}
		if keep != nil && !keep(string(key), gen) {
			info.Dropped++
			continue
		}
		seg, recOff, err := s.appendLocked(records[off-size : off])
		if err != nil {
			return info, err
		}
		s.indexPut(string(key), recLoc{seg: seg, off: recOff, size: size, gen: gen})
		info.Restored++
	}
	if err := s.active().f.Sync(); err != nil {
		return info, fmt.Errorf("store: restore sync: %w", err)
	}
	return info, nil
}
