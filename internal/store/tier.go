// Tier: the typed write-behind adapter between one in-memory cache and
// the shared segment store. It satisfies the cache package's Backing
// interface (Load / Store / DeletePrefix) without either package
// importing the other.
//
// Writes are asynchronous: Store enqueues onto a bounded queue drained
// by one writer goroutine, and when the queue is full the persist is
// dropped and counted — the durable tier is an accelerator, and backing
// up the serving path to guarantee a disk write would invert that
// priority. Deletes and flushes ride the same queue, so they order after
// every persist enqueued before them; DeletePrefix blocks until the
// tombstone lands, which is what invalidation correctness needs (after
// it returns, no swept entry can be hydrated). Close drains the queue
// completely — a cleanly shut down server loses no accepted persist.
//
// Each Tier owns a key namespace inside the store ("classify", "tool"),
// so several caches share one segment log without key collisions, and
// payloads are gob-encoded from the cache's value type.
package store

import (
	"bytes"
	"encoding/gob"
	"sync"
	"sync/atomic"
)

// NamespaceSep separates the tier namespace from the cache key inside
// store keys. NUL cannot appear in model names, tool names or hex
// digests. Exported so store-owning layers can parse raw record keys
// (snapshot-restore filtering).
const NamespaceSep = "\x00"

// nsSep is the internal alias.
const nsSep = NamespaceSep

// TierOptions sizes a tier; zero values take the documented defaults.
type TierOptions struct {
	// Queue bounds the pending write-behind persists (default 1024).
	Queue int
	// GenOf extracts the model generation carried on each persisted
	// record from its cache key (nil = every record is generation 0).
	// The serving layer parses the generation segment of its classify
	// keys here, so snapshot restores can reject records from model
	// generations that no longer match the live registry.
	GenOf func(key string) uint64
}

// TierStats is a point-in-time snapshot of one tier's counters.
type TierStats struct {
	Enqueued      int64 `json:"enqueued"`
	Persisted     int64 `json:"persisted"`
	Dropped       int64 `json:"dropped"`
	Loads         int64 `json:"loads"`
	LoadMisses    int64 `json:"load_misses"`
	DecodeErrors  int64 `json:"decode_errors"`
	PersistErrors int64 `json:"persist_errors"`
	QueueDepth    int   `json:"queue_depth"`
	QueueCapacity int   `json:"queue_capacity"`
}

// tierOp is one queued operation: a put, a prefix delete, or (neither
// flag) a flush barrier.
type tierOp[V any] struct {
	key  string
	val  V
	put  bool     // persist val under key
	del  bool     // append a prefix tombstone for key
	done chan int // delete ack / flush barrier; receives the delete count
}

// Tier adapts one typed cache to the shared store with a write-behind
// queue. Construct with NewTier; Close when the owning engine drains.
type Tier[V any] struct {
	st    *Store
	ns    string
	genOf func(string) uint64

	mu     sync.RWMutex // guards ch against send-after-close
	closed bool
	ch     chan tierOp[V]
	wg     sync.WaitGroup

	enqueued      atomic.Int64
	persisted     atomic.Int64
	dropped       atomic.Int64
	loads         atomic.Int64
	loadMisses    atomic.Int64
	decodeErrors  atomic.Int64
	persistErrors atomic.Int64
}

// NewTier builds a tier over st with its own key namespace and starts
// its writer goroutine.
func NewTier[V any](st *Store, namespace string, opts TierOptions) *Tier[V] {
	if opts.Queue <= 0 {
		opts.Queue = 1024
	}
	t := &Tier[V]{st: st, ns: namespace, genOf: opts.GenOf,
		ch: make(chan tierOp[V], opts.Queue)}
	t.wg.Add(1)
	go t.writer()
	return t
}

func (t *Tier[V]) storeKey(key string) string { return t.ns + nsSep + key }

// Namespace reports the tier's store-key namespace.
func (t *Tier[V]) Namespace() string { return t.ns }

func (t *Tier[V]) writer() {
	defer t.wg.Done()
	for op := range t.ch {
		switch {
		case op.del:
			n, _ := t.st.DeletePrefix(t.storeKey(op.key))
			if op.done != nil {
				op.done <- n
			}
		case op.put:
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(&op.val); err != nil {
				t.persistErrors.Add(1)
				continue
			}
			gen := uint64(0)
			if t.genOf != nil {
				gen = t.genOf(op.key)
			}
			if err := t.st.Put(t.storeKey(op.key), gen, buf.Bytes()); err != nil {
				t.persistErrors.Add(1)
				continue
			}
			t.persisted.Add(1)
		default: // flush barrier
			if op.done != nil {
				op.done <- 0
			}
		}
	}
}

// Load hydrates key from the store. A missing, corrupt, or undecodable
// record is a miss — the caller recomputes and the next persist
// supersedes the bad record.
func (t *Tier[V]) Load(key string) (V, bool) {
	var v V
	raw, _, ok := t.st.Get(t.storeKey(key))
	if !ok {
		t.loadMisses.Add(1)
		return v, false
	}
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&v); err != nil {
		t.decodeErrors.Add(1)
		return v, false
	}
	t.loads.Add(1)
	return v, true
}

// Store enqueues an asynchronous persist of (key, v). Never blocks: when
// the queue is full the persist is dropped and counted.
func (t *Tier[V]) Store(key string, v V) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		t.dropped.Add(1)
		return
	}
	select {
	case t.ch <- tierOp[V]{key: key, val: v, put: true}:
		t.enqueued.Add(1)
	default:
		t.dropped.Add(1)
	}
}

// DeletePrefix dooms every persisted record under prefix, blocking until
// the tombstone is durable in the log (ordered after all previously
// enqueued persists). Returns the number of records removed.
func (t *Tier[V]) DeletePrefix(prefix string) int {
	done := make(chan int, 1)
	t.mu.RLock()
	if t.closed {
		t.mu.RUnlock()
		n, _ := t.st.DeletePrefix(t.storeKey(prefix))
		return n
	}
	t.ch <- tierOp[V]{key: prefix, del: true, done: done}
	t.mu.RUnlock()
	return <-done
}

// Flush blocks until every operation enqueued before it has been
// applied to the store.
func (t *Tier[V]) Flush() {
	done := make(chan int, 1)
	t.mu.RLock()
	if t.closed {
		t.mu.RUnlock()
		return
	}
	t.ch <- tierOp[V]{done: done}
	t.mu.RUnlock()
	<-done
}

// Close drains the queue and stops the writer: every persist accepted
// before Close is applied to the store. Idempotent; Store calls after
// Close drop-and-count.
func (t *Tier[V]) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	close(t.ch)
	t.mu.Unlock()
	t.wg.Wait()
}

// Stats snapshots the tier counters.
func (t *Tier[V]) Stats() TierStats {
	return TierStats{
		Enqueued:      t.enqueued.Load(),
		Persisted:     t.persisted.Load(),
		Dropped:       t.dropped.Load(),
		Loads:         t.loads.Load(),
		LoadMisses:    t.loadMisses.Load(),
		DecodeErrors:  t.decodeErrors.Load(),
		PersistErrors: t.persistErrors.Load(),
		QueueDepth:    len(t.ch),
		QueueCapacity: cap(t.ch),
	}
}
