// Tier: the typed write-behind adapter between one in-memory cache and
// the shared segment store. It satisfies the cache package's Backing
// interface (Load / Store / DeletePrefix) without either package
// importing the other.
//
// Writes are asynchronous: Store enqueues onto a bounded queue drained
// by one writer goroutine, and when the queue is full the persist is
// dropped and counted — the durable tier is an accelerator, and backing
// up the serving path to guarantee a disk write would invert that
// priority. Deletes and flushes ride the same queue, so they order after
// every persist enqueued before them; DeletePrefix blocks until the
// tombstone lands, which is what invalidation correctness needs (after
// it returns, no swept entry can be hydrated). Close drains the queue
// completely — a cleanly shut down server loses no accepted persist.
//
// Degraded modes: two circuit breakers guard the store I/O. Consecutive
// append failures (disk full, injected store.append faults) trip the
// persist breaker and flip the tier "read-only" — persists are dropped
// and counted while loads keep serving — with a half-open probe per
// cooldown to detect recovery. Consecutive load failures (corrupt
// records, injected cache.backing.load faults) trip the load breaker and
// flip the tier "disabled": loads answer miss without touching the disk,
// so the in-memory LRU keeps serving alone. Both recover automatically
// when a probe succeeds; Mode reports ok / read-only / disabled, and the
// writer goroutine recovers panics rather than taking down the daemon.
//
// Each Tier owns a key namespace inside the store ("classify", "tool"),
// so several caches share one segment log without key collisions, and
// payloads are gob-encoded from the cache's value type.
package store

import (
	"bytes"
	"encoding/gob"
	"sync"
	"sync/atomic"
	"time"

	"mpidetect/internal/fault"
	"mpidetect/internal/resilience"
)

// FaultBackingLoad is the tier's load-path fault point: an armed fault
// fails Load the way a corrupt or unreadable record would, which is also
// how tests trip the load breaker into the "disabled" mode.
var FaultBackingLoad = fault.Register("cache.backing.load")

// NamespaceSep separates the tier namespace from the cache key inside
// store keys. NUL cannot appear in model names, tool names or hex
// digests. Exported so store-owning layers can parse raw record keys
// (snapshot-restore filtering).
const NamespaceSep = "\x00"

// nsSep is the internal alias.
const nsSep = NamespaceSep

// TierOptions sizes a tier; zero values take the documented defaults.
type TierOptions struct {
	// Queue bounds the pending write-behind persists (default 1024).
	Queue int
	// GenOf extracts the model generation carried on each persisted
	// record from its cache key (nil = every record is generation 0).
	// The serving layer parses the generation segment of its classify
	// keys here, so snapshot restores can reject records from model
	// generations that no longer match the live registry.
	GenOf func(key string) uint64
	// BreakerFailures is the consecutive store-I/O failure count that
	// trips a tier breaker (default 3); BreakerCooldown is the open
	// period before a recovery probe (default 15s).
	BreakerFailures int
	BreakerCooldown time.Duration
	// OnModeChange, when set, is invoked (off the breaker locks) every
	// time the tier's degraded mode changes; the serving engine publishes
	// it on the event bus and folds it into readyz.
	OnModeChange func(mode string)
}

// TierStats is a point-in-time snapshot of one tier's counters. Mode is
// the degraded-mode state ("ok", "read-only", "disabled");
// DegradedDrops counts persists discarded while read-only, LoadErrors
// counts failed (not missing) loads, and Panics counts writer-goroutine
// panics recovered without crashing.
type TierStats struct {
	Mode          string `json:"mode"`
	Enqueued      int64  `json:"enqueued"`
	Persisted     int64  `json:"persisted"`
	Dropped       int64  `json:"dropped"`
	DegradedDrops int64  `json:"degraded_drops"`
	Loads         int64  `json:"loads"`
	LoadMisses    int64  `json:"load_misses"`
	LoadErrors    int64  `json:"load_errors"`
	DecodeErrors  int64  `json:"decode_errors"`
	PersistErrors int64  `json:"persist_errors"`
	Panics        int64  `json:"panics"`
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
}

// tierOp is one queued operation: a put, a prefix delete, or (neither
// flag) a flush barrier.
type tierOp[V any] struct {
	key  string
	val  V
	put  bool     // persist val under key
	del  bool     // append a prefix tombstone for key
	done chan int // delete ack / flush barrier; receives the delete count
}

// Tier adapts one typed cache to the shared store with a write-behind
// queue. Construct with NewTier; Close when the owning engine drains.
type Tier[V any] struct {
	st    *Store
	ns    string
	genOf func(string) uint64

	// persistB guards the append path (tripped = read-only); loadB
	// guards the hydrate path (tripped = disabled).
	persistB *resilience.Breaker
	loadB    *resilience.Breaker
	onMode   func(string)

	mu     sync.RWMutex // guards ch against send-after-close
	closed bool
	ch     chan tierOp[V]
	wg     sync.WaitGroup

	enqueued      atomic.Int64
	persisted     atomic.Int64
	dropped       atomic.Int64
	degradedDrops atomic.Int64
	loads         atomic.Int64
	loadMisses    atomic.Int64
	loadErrors    atomic.Int64
	decodeErrors  atomic.Int64
	persistErrors atomic.Int64
	panics        atomic.Int64
}

// NewTier builds a tier over st with its own key namespace and starts
// its writer goroutine.
func NewTier[V any](st *Store, namespace string, opts TierOptions) *Tier[V] {
	if opts.Queue <= 0 {
		opts.Queue = 1024
	}
	if opts.BreakerFailures <= 0 {
		opts.BreakerFailures = 3
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 15 * time.Second
	}
	t := &Tier[V]{st: st, ns: namespace, genOf: opts.GenOf, onMode: opts.OnModeChange,
		ch: make(chan tierOp[V], opts.Queue)}
	bcfg := resilience.BreakerConfig{
		Failures: opts.BreakerFailures, Cooldown: opts.BreakerCooldown,
		OnChange: func(_, _ resilience.BreakerState) { t.modeChanged() },
	}
	t.persistB = resilience.NewBreaker(bcfg)
	t.loadB = resilience.NewBreaker(bcfg)
	t.wg.Add(1)
	go t.writer()
	return t
}

func (t *Tier[V]) storeKey(key string) string { return t.ns + nsSep + key }

// Namespace reports the tier's store-key namespace.
func (t *Tier[V]) Namespace() string { return t.ns }

// Mode reports the tier's degraded-mode state: "ok" (both breakers
// closed), "read-only" (append breaker tripped: loads serve, persists
// drop), or "disabled" (load breaker tripped: the in-memory LRU serves
// alone).
func (t *Tier[V]) Mode() string {
	if t.loadB.State() != resilience.Closed {
		return "disabled"
	}
	if t.persistB.State() != resilience.Closed {
		return "read-only"
	}
	return "ok"
}

func (t *Tier[V]) modeChanged() {
	if t.onMode != nil {
		t.onMode(t.Mode())
	}
}

func (t *Tier[V]) writer() {
	defer t.wg.Done()
	for op := range t.ch {
		t.apply(op)
	}
}

// apply runs one queued operation, recovering panics (a panicking gob
// encoder or injected fault must not kill the drainer and wedge every
// DeletePrefix/Flush behind it). The done sends are the last statements
// of their branches, so a recovered panic can never have half-acked.
func (t *Tier[V]) apply(op tierOp[V]) {
	defer func() {
		if r := recover(); r != nil {
			t.panics.Add(1)
			if op.done != nil {
				op.done <- 0
			}
		}
	}()
	switch {
	case op.del:
		n, _ := t.st.DeletePrefix(t.storeKey(op.key))
		if op.done != nil {
			op.done <- n
		}
	case op.put:
		t.persist(op)
	default: // flush barrier
		if op.done != nil {
			op.done <- 0
		}
	}
}

// persist writes one queued put, recording the outcome on the persist
// breaker: while it is open the put is dropped and counted (read-only
// mode), and per cooldown one put probes the store for recovery.
func (t *Tier[V]) persist(op tierOp[V]) {
	if !t.persistB.Allow() {
		t.degradedDrops.Add(1)
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&op.val); err != nil {
		// An unencodable value is a caller bug, not store health: it says
		// nothing about the disk, so it never trips the breaker.
		t.persistErrors.Add(1)
		t.persistB.Skip()
		return
	}
	gen := uint64(0)
	if t.genOf != nil {
		gen = t.genOf(op.key)
	}
	err := t.st.Put(t.storeKey(op.key), gen, buf.Bytes())
	t.persistB.Record(err == nil)
	if err != nil {
		t.persistErrors.Add(1)
		return
	}
	t.persisted.Add(1)
}

// Load hydrates key from the store. A missing record is a plain miss;
// a failed load (injected fault, corrupt record) is a miss with a
// non-nil error, counted here and on the load breaker — enough
// consecutive failures disable the tier and Load answers miss without
// touching the store until a cooldown probe succeeds.
func (t *Tier[V]) Load(key string) (V, bool, error) {
	var v V
	if !t.loadB.Allow() {
		return v, false, nil
	}
	if err := fault.Inject(FaultBackingLoad); err != nil {
		t.loadErrors.Add(1)
		t.loadB.Record(false)
		return v, false, err
	}
	raw, _, ok := t.st.Get(t.storeKey(key))
	if !ok {
		t.loadMisses.Add(1)
		t.loadB.Record(true)
		return v, false, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&v); err != nil {
		t.decodeErrors.Add(1)
		t.loadErrors.Add(1)
		t.loadB.Record(false)
		return v, false, err
	}
	t.loads.Add(1)
	t.loadB.Record(true)
	return v, true, nil
}

// Store enqueues an asynchronous persist of (key, v). Never blocks: when
// the queue is full the persist is dropped and counted.
func (t *Tier[V]) Store(key string, v V) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		t.dropped.Add(1)
		return
	}
	select {
	case t.ch <- tierOp[V]{key: key, val: v, put: true}:
		t.enqueued.Add(1)
	default:
		t.dropped.Add(1)
	}
}

// DeletePrefix dooms every persisted record under prefix, blocking until
// the tombstone is durable in the log (ordered after all previously
// enqueued persists). Returns the number of records removed.
func (t *Tier[V]) DeletePrefix(prefix string) int {
	done := make(chan int, 1)
	t.mu.RLock()
	if t.closed {
		t.mu.RUnlock()
		n, _ := t.st.DeletePrefix(t.storeKey(prefix))
		return n
	}
	t.ch <- tierOp[V]{key: prefix, del: true, done: done}
	t.mu.RUnlock()
	return <-done
}

// Flush blocks until every operation enqueued before it has been
// applied to the store.
func (t *Tier[V]) Flush() {
	done := make(chan int, 1)
	t.mu.RLock()
	if t.closed {
		t.mu.RUnlock()
		return
	}
	t.ch <- tierOp[V]{done: done}
	t.mu.RUnlock()
	<-done
}

// Close drains the queue and stops the writer: every persist accepted
// before Close is applied to the store. Idempotent; Store calls after
// Close drop-and-count.
func (t *Tier[V]) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	close(t.ch)
	t.mu.Unlock()
	t.wg.Wait()
}

// BreakerStats snapshots the tier's persist and load breakers.
func (t *Tier[V]) BreakerStats() (persist, load resilience.BreakerStats) {
	return t.persistB.Stats(), t.loadB.Stats()
}

// Stats snapshots the tier counters.
func (t *Tier[V]) Stats() TierStats {
	return TierStats{
		Mode:          t.Mode(),
		Enqueued:      t.enqueued.Load(),
		Persisted:     t.persisted.Load(),
		Dropped:       t.dropped.Load(),
		DegradedDrops: t.degradedDrops.Load(),
		Loads:         t.loads.Load(),
		LoadMisses:    t.loadMisses.Load(),
		LoadErrors:    t.loadErrors.Load(),
		DecodeErrors:  t.decodeErrors.Load(),
		PersistErrors: t.persistErrors.Load(),
		Panics:        t.panics.Load(),
		QueueDepth:    len(t.ch),
		QueueCapacity: cap(t.ch),
	}
}
