package store

import (
	"fmt"
	"testing"
)

// benchPayload approximates a gob-encoded classify verdict.
var benchPayload = make([]byte, 256)

func BenchmarkStoreAppend(b *testing.B) {
	s, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.SetBytes(int64(len(benchPayload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(fmt.Sprintf("bench-key-%d", i), 1, benchPayload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreHydrate(b *testing.B) {
	s, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const keys = 1024
	for i := 0; i < keys; i++ {
		if err := s.Put(fmt.Sprintf("bench-key-%d", i), 1, benchPayload); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(benchPayload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := s.Get(fmt.Sprintf("bench-key-%d", i%keys)); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkBootWarmStart(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	const records = 4096
	for i := 0; i < records; i++ {
		if err := s.Put(fmt.Sprintf("bench-key-%d", i), 1, benchPayload); err != nil {
			b.Fatal(err)
		}
	}
	s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if r.Len() != records {
			b.Fatalf("warm boot recovered %d records", r.Len())
		}
		r.Close()
	}
	b.ReportMetric(records, "records/boot")
}
