// Package store is the durable tier under the serving caches: a pure-Go
// append-only segment log with an in-memory key index, plus snapshot
// archives for backup/restore.
//
// A record is (key, generation, payload, crc32): the serving layer keys
// records by the same content-addressed strings as its in-memory caches
// (core.DigestIR is stable across processes, so a restarted server
// addresses the same records), the generation carries the model registry
// generation the verdict was computed under, and the payload is an
// opaque gob blob owned by the typed write-behind Tier. Writes append to
// the active segment, which rolls to a new file at a size threshold;
// deletes append a prefix-tombstone record so they survive restarts;
// reads serve from the index with one positioned read. A compaction pass
// rewrites only the live records into a fresh segment and drops
// everything superseded or tombstoned.
//
// Durability contract: every accepted append is in the OS page cache
// (one write syscall) and is fsynced on segment roll, Sync, snapshot and
// Close; Options.SyncEveryAppend upgrades that to fsync-per-append.
// Recovery tolerates a torn tail — a crash mid-append leaves a partial
// record, which Open detects by CRC/length validation and truncates,
// recovering every record before it and reporting the torn bytes in
// Stats. Records are self-checking, so a flipped bit is detected at read
// time rather than served as a verdict.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"mpidetect/internal/fault"
)

// Fault points of the segment log, armable by tests and the admin API
// (disarmed they cost one atomic load). FaultAppend fails Put the way a
// full or failing disk would; FaultOpen fails Open the way a missing or
// unreadable directory would.
var (
	FaultAppend = fault.Register("store.append")
	FaultOpen   = fault.Register("store.open")
)

// Segment file layout: an 8-byte magic header followed by records.
//
//	record := crc32 | keyLen | valLen | gen | kind | key | val
//	          u32     u32      u32      u64   u8
//
// crc32 (IEEE) covers everything after the crc field. kind distinguishes
// puts from prefix tombstones (whose key is the doomed prefix and whose
// payload is empty).
const (
	segMagic  = "MPDSEG01"
	recHeader = 4 + 4 + 4 + 8 + 1

	kindPut             = 0
	kindPrefixTombstone = 1

	// maxRecordBytes bounds one record; a length field past it means the
	// bytes under the cursor are not a record (torn tail or corruption).
	maxRecordBytes = 64 << 20
)

// Sentinel errors surfaced to the admin API.
var (
	// ErrClosed: the store has been closed and accepts no operations.
	ErrClosed = errors.New("store: closed")
	// ErrBadName: a snapshot name contains path separators or other
	// bytes that could escape the snapshots directory.
	ErrBadName = errors.New("store: bad snapshot name")
	// ErrUnknownSnapshot: no archive with the requested name exists.
	ErrUnknownSnapshot = errors.New("store: unknown snapshot")
)

// Options sizes a store; zero values take the documented defaults.
type Options struct {
	// SegmentBytes is the active-segment roll threshold (default 64MiB).
	SegmentBytes int64
	// SyncEveryAppend fsyncs after every Put/DeletePrefix instead of
	// only on roll/Sync/snapshot/Close.
	SyncEveryAppend bool
	// CompactFraction is the garbage ratio (dead bytes / total bytes)
	// past which a segment roll triggers compaction (default 0.5).
	CompactFraction float64
	// CompactMinBytes suppresses compaction below this total size
	// (default 1MiB): tiny stores are cheaper to leave fragmented.
	CompactMinBytes int64
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.CompactFraction <= 0 {
		o.CompactFraction = 0.5
	}
	if o.CompactMinBytes <= 0 {
		o.CompactMinBytes = 1 << 20
	}
	return o
}

// Stats is a point-in-time snapshot of the store counters, shaped for
// JSON encoding under the /v1/stats "store" section.
type Stats struct {
	Records     int64 `json:"records"`
	Segments    int   `json:"segments"`
	LiveBytes   int64 `json:"live_bytes"`
	TotalBytes  int64 `json:"total_bytes"`
	Appends     int64 `json:"appends"`
	Gets        int64 `json:"gets"`
	Deletes     int64 `json:"deletes"`
	Compactions int64 `json:"compactions"`
	// TornBytes is the size of the torn tail truncated by the last Open
	// — non-zero exactly when recovery repaired a crash mid-append.
	TornBytes int64 `json:"torn_bytes"`
}

// CompactionInfo describes one completed compaction, published on the
// serving event bus as store.compacted.
type CompactionInfo struct {
	Segments  int   `json:"segments"`  // segments merged away
	Records   int64 `json:"records"`   // live records carried over
	Reclaimed int64 `json:"reclaimed"` // bytes of garbage dropped
	Bytes     int64 `json:"bytes"`     // size of the compacted segment
}

// recLoc locates one live record.
type recLoc struct {
	seg  *segment
	off  int64
	size int64 // full record size, header included
	gen  uint64
}

type segment struct {
	id   uint64
	path string
	f    *os.File
	size int64
}

// Store is an append-only segment log with an in-memory key index. The
// zero value is not usable; construct with Open. All methods are safe
// for concurrent use; writes serialize on one mutex.
type Store struct {
	dir  string
	opts Options

	mu        sync.RWMutex
	closed    bool
	segs      []*segment // ascending id; last is the active segment
	nextID    uint64
	index     map[string]recLoc
	liveBytes int64
	onCompact func(CompactionInfo)

	appends     atomic.Int64
	gets        atomic.Int64
	deletes     atomic.Int64
	compactions atomic.Int64
	tornBytes   int64 // set once by Open
}

// Open opens (or creates) a store rooted at dir, replaying every segment
// to rebuild the key index — the boot warm-start. A torn tail left by a
// crash mid-append is truncated away; every record before it is
// recovered.
func Open(dir string, opts Options) (*Store, error) {
	if err := fault.Inject(FaultOpen); err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", dir, err)
	}
	s := &Store{dir: dir, opts: opts.withDefaults(), index: map[string]recLoc{}, nextID: 1}
	if err := os.MkdirAll(s.snapDir(), 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", dir, err)
	}
	// Leftover temp files (crashed compaction or snapshot) are garbage:
	// their content is either still live in the segments or incomplete.
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) > 0 {
		for _, t := range tmps {
			_ = os.Remove(t)
		}
	}
	type idName struct {
		id   uint64
		name string
	}
	ordered := make([]idName, 0, len(names))
	for _, name := range names {
		var id uint64
		if _, err := fmt.Sscanf(filepath.Base(name), "seg-%d.log", &id); err != nil {
			continue // not ours; leave it alone
		}
		ordered = append(ordered, idName{id, name})
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].id < ordered[j].id })
	for _, sn := range ordered {
		seg, err := s.replaySegment(sn.id, sn.name)
		if err != nil {
			s.closeLocked()
			return nil, err
		}
		s.segs = append(s.segs, seg)
		if sn.id >= s.nextID {
			s.nextID = sn.id + 1
		}
	}
	if len(s.segs) == 0 {
		if err := s.newSegmentLocked(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// replaySegment opens one segment file, replays its records into the
// index, and truncates any torn tail.
func (s *Store) replaySegment(id uint64, path string) (*segment, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening segment: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: reading segment %s: %w", path, err)
	}
	seg := &segment{id: id, path: path, f: f}
	valid := int64(0)
	if len(data) >= len(segMagic) && string(data[:len(segMagic)]) == segMagic {
		valid = int64(len(segMagic))
		for {
			key, val, gen, kind, size, ok := parseRecord(data[valid:])
			if !ok {
				break
			}
			switch kind {
			case kindPut:
				s.indexPut(string(key), recLoc{seg: seg, off: valid, size: size, gen: gen})
				_ = val
			case kindPrefixTombstone:
				s.indexDeletePrefix(string(key))
			}
			valid += size
		}
	}
	if torn := int64(len(data)) - valid; torn > 0 {
		s.tornBytes += torn
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncating torn tail of %s: %w", path, err)
		}
	}
	seg.size = valid
	if valid == 0 {
		// The file never got its header (crash between create and write):
		// rewrite it so appends land on a well-formed segment.
		if _, err := f.WriteAt([]byte(segMagic), 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: reheading %s: %w", path, err)
		}
		seg.size = int64(len(segMagic))
	}
	if _, err := f.Seek(seg.size, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seeking %s: %w", path, err)
	}
	return seg, nil
}

// parseRecord decodes the record at the front of data. ok is false when
// the bytes do not form a complete, checksummed record — the torn-tail
// (or corruption) signal.
func parseRecord(data []byte) (key, val []byte, gen uint64, kind byte, size int64, ok bool) {
	if len(data) < recHeader {
		return nil, nil, 0, 0, 0, false
	}
	crc := binary.LittleEndian.Uint32(data[0:4])
	keyLen := int64(binary.LittleEndian.Uint32(data[4:8]))
	valLen := int64(binary.LittleEndian.Uint32(data[8:12]))
	if keyLen+valLen > maxRecordBytes {
		return nil, nil, 0, 0, 0, false
	}
	size = recHeader + keyLen + valLen
	if int64(len(data)) < size {
		return nil, nil, 0, 0, 0, false
	}
	if crc32.ChecksumIEEE(data[4:size]) != crc {
		return nil, nil, 0, 0, 0, false
	}
	gen = binary.LittleEndian.Uint64(data[12:20])
	kind = data[20]
	key = data[recHeader : recHeader+keyLen]
	val = data[recHeader+keyLen : size]
	return key, val, gen, kind, size, true
}

// appendRecord assembles a record into buf (reused across calls).
func appendRecord(buf []byte, key string, val []byte, gen uint64, kind byte) []byte {
	size := recHeader + len(key) + len(val)
	if cap(buf) < size {
		buf = make([]byte, size)
	}
	buf = buf[:size]
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(key)))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(val)))
	binary.LittleEndian.PutUint64(buf[12:20], gen)
	buf[20] = kind
	copy(buf[recHeader:], key)
	copy(buf[recHeader+len(key):], val)
	binary.LittleEndian.PutUint32(buf[0:4], crc32.ChecksumIEEE(buf[4:]))
	return buf
}

// indexPut records key's newest location, keeping live-byte accounting.
func (s *Store) indexPut(key string, loc recLoc) {
	if old, ok := s.index[key]; ok {
		s.liveBytes -= old.size
	}
	s.index[key] = loc
	s.liveBytes += loc.size
}

// indexDeletePrefix sweeps matching keys from the index.
func (s *Store) indexDeletePrefix(prefix string) int {
	n := 0
	for key, loc := range s.index {
		if strings.HasPrefix(key, prefix) {
			s.liveBytes -= loc.size
			delete(s.index, key)
			n++
		}
	}
	return n
}

func (s *Store) active() *segment { return s.segs[len(s.segs)-1] }

func (s *Store) totalBytesLocked() int64 {
	var n int64
	for _, seg := range s.segs {
		n += seg.size
	}
	return n
}

// newSegmentLocked creates and activates the next segment file.
func (s *Store) newSegmentLocked() error {
	path := filepath.Join(s.dir, fmt.Sprintf("seg-%08d.log", s.nextID))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating segment: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("store: writing segment header: %w", err)
	}
	s.segs = append(s.segs, &segment{
		id: s.nextID, path: path, f: f, size: int64(len(segMagic))})
	s.nextID++
	return nil
}

// appendLocked writes one already-assembled record to the active
// segment, rolling (and maybe compacting) first when it would overflow.
func (s *Store) appendLocked(rec []byte) (*segment, int64, error) {
	seg := s.active()
	if seg.size+int64(len(rec)) > s.opts.SegmentBytes && seg.size > int64(len(segMagic)) {
		if err := seg.f.Sync(); err != nil {
			return nil, 0, fmt.Errorf("store: sealing segment: %w", err)
		}
		if err := s.maybeCompactLocked(); err != nil {
			return nil, 0, err
		}
		if err := s.newSegmentLocked(); err != nil {
			return nil, 0, err
		}
		seg = s.active()
	}
	off := seg.size
	if _, err := seg.f.Write(rec); err != nil {
		return nil, 0, fmt.Errorf("store: appending: %w", err)
	}
	seg.size += int64(len(rec))
	if s.opts.SyncEveryAppend {
		if err := seg.f.Sync(); err != nil {
			return nil, 0, fmt.Errorf("store: syncing append: %w", err)
		}
	}
	return seg, off, nil
}

// Put appends (or supersedes) key with the given payload and generation.
func (s *Store) Put(key string, gen uint64, val []byte) error {
	if err := fault.Inject(FaultAppend); err != nil {
		return fmt.Errorf("store: appending: %w", err)
	}
	rec := appendRecord(nil, key, val, gen, kindPut)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	seg, off, err := s.appendLocked(rec)
	if err != nil {
		return err
	}
	s.indexPut(key, recLoc{seg: seg, off: off, size: int64(len(rec)), gen: gen})
	s.appends.Add(1)
	return nil
}

// Get serves key from the log: one positioned read plus a CRC check, so
// a flipped bit on disk surfaces as a miss, never as a wrong payload.
func (s *Store) Get(key string) (val []byte, gen uint64, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, 0, false
	}
	loc, found := s.index[key]
	if !found {
		return nil, 0, false
	}
	buf := make([]byte, loc.size)
	if _, err := loc.seg.f.ReadAt(buf, loc.off); err != nil {
		return nil, 0, false
	}
	k, v, g, kind, _, valid := parseRecord(buf)
	if !valid || kind != kindPut || string(k) != key {
		return nil, 0, false
	}
	s.gets.Add(1)
	return v, g, true
}

// DeletePrefix dooms every record whose key starts with prefix,
// appending a tombstone so the deletion survives restart and replay.
// Returns the number of live records removed from the index.
func (s *Store) DeletePrefix(prefix string) (int, error) {
	rec := appendRecord(nil, prefix, nil, 0, kindPrefixTombstone)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	n := s.indexDeletePrefix(prefix)
	if n == 0 {
		// Nothing persisted matches; an unmatched tombstone would be pure
		// log garbage.
		return 0, nil
	}
	if _, _, err := s.appendLocked(rec); err != nil {
		return n, err
	}
	s.deletes.Add(int64(n))
	return n, nil
}

// Range calls fn for every live key (index order, no payload reads);
// fn returning false stops the walk.
func (s *Store) Range(fn func(key string, gen uint64) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for key, loc := range s.index {
		if !fn(key, loc.gen) {
			return
		}
	}
}

// Len reports the number of live records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// OnCompact installs a hook invoked on its own goroutine (never under
// the store lock) after each compaction; the serving engine publishes it
// on the event bus.
func (s *Store) OnCompact(fn func(CompactionInfo)) {
	s.mu.Lock()
	s.onCompact = fn
	s.mu.Unlock()
}

// maybeCompactLocked compacts when the garbage ratio crosses the
// configured fraction. Called at segment-roll time, so the cost is
// amortized over SegmentBytes of appends.
func (s *Store) maybeCompactLocked() error {
	total := s.totalBytesLocked()
	if total < s.opts.CompactMinBytes {
		return nil
	}
	if float64(total-s.liveBytes)/float64(total) < s.opts.CompactFraction {
		return nil
	}
	return s.compactLocked()
}

// Compact rewrites the live records into one fresh segment and deletes
// every older file, reclaiming superseded and tombstoned space.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	info := CompactionInfo{Segments: len(s.segs), Records: int64(len(s.index))}
	reclaimedFrom := s.totalBytesLocked()

	tmpPath := filepath.Join(s.dir, "compact.tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compaction temp: %w", err)
	}
	defer os.Remove(tmpPath) // no-op after the rename succeeds
	if _, err := tmp.Write([]byte(segMagic)); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compaction header: %w", err)
	}
	// Copy the raw record bytes (CRCs and all) of every live key. Sorted
	// order keeps compacted segments byte-deterministic for a given
	// index state, which the tests lean on.
	keys := make([]string, 0, len(s.index))
	for key := range s.index {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	size := int64(len(segMagic))
	newLocs := make(map[string]recLoc, len(keys))
	for _, key := range keys {
		loc := s.index[key]
		buf := make([]byte, loc.size)
		if _, err := loc.seg.f.ReadAt(buf, loc.off); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compaction read: %w", err)
		}
		if _, err := tmp.Write(buf); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compaction write: %w", err)
		}
		newLocs[key] = recLoc{off: size, size: loc.size, gen: loc.gen}
		size += loc.size
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compaction sync: %w", err)
	}
	// Publish the compacted file as the next segment id, then drop the
	// old files. A crash between the rename and the removals leaves the
	// old segments on disk: replay order (ascending id) still yields the
	// same index, and the next compaction reclaims them.
	newPath := filepath.Join(s.dir, fmt.Sprintf("seg-%08d.log", s.nextID))
	if err := os.Rename(tmpPath, newPath); err != nil {
		tmp.Close()
		return fmt.Errorf("store: publishing compacted segment: %w", err)
	}
	seg := &segment{id: s.nextID, path: newPath, f: tmp, size: size}
	s.nextID++
	for _, old := range s.segs {
		old.f.Close()
		_ = os.Remove(old.path)
	}
	s.segs = []*segment{seg}
	for key := range newLocs {
		loc := newLocs[key]
		loc.seg = seg
		s.index[key] = loc
	}
	s.liveBytes = size - int64(len(segMagic))
	s.compactions.Add(1)
	info.Reclaimed = reclaimedFrom - size
	info.Bytes = size
	if fn := s.onCompact; fn != nil {
		go fn(info)
	}
	return nil
}

// Sync flushes the active segment to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.active().f.Sync()
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Records:     int64(len(s.index)),
		Segments:    len(s.segs),
		LiveBytes:   s.liveBytes,
		TotalBytes:  s.totalBytesLocked(),
		Appends:     s.appends.Load(),
		Gets:        s.gets.Load(),
		Deletes:     s.deletes.Load(),
		Compactions: s.compactions.Load(),
		TornBytes:   s.tornBytes,
	}
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close syncs and closes every segment. Idempotent; operations after
// Close fail with ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if err := s.active().f.Sync(); err != nil {
		s.closeLocked()
		return fmt.Errorf("store: closing sync: %w", err)
	}
	s.closeLocked()
	return nil
}

func (s *Store) closeLocked() {
	for _, seg := range s.segs {
		seg.f.Close()
	}
	s.closed = true
}
