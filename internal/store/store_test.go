package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openT(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustPut(t *testing.T, s *Store, key string, gen uint64, val []byte) {
	t.Helper()
	if err := s.Put(key, gen, val); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openT(t, t.TempDir(), Options{})
	mustPut(t, s, "k1", 7, []byte("hello"))
	mustPut(t, s, "k2", 0, nil)

	v, gen, ok := s.Get("k1")
	if !ok || gen != 7 || string(v) != "hello" {
		t.Fatalf("Get(k1) = %q,%d,%v; want hello,7,true", v, gen, ok)
	}
	if _, _, ok := s.Get("missing"); ok {
		t.Fatal("hit on missing key")
	}
	// Overwrite supersedes.
	mustPut(t, s, "k1", 8, []byte("world"))
	v, gen, _ = s.Get("k1")
	if gen != 8 || string(v) != "world" {
		t.Fatalf("after overwrite Get(k1) = %q,%d", v, gen)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestReopenRecoversIndex(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	for i := 0; i < 50; i++ {
		mustPut(t, s, fmt.Sprintf("key-%02d", i), uint64(i), []byte(strings.Repeat("x", i)))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir, Options{})
	if r.Len() != 50 {
		t.Fatalf("recovered %d records, want 50", r.Len())
	}
	for i := 0; i < 50; i++ {
		v, gen, ok := r.Get(fmt.Sprintf("key-%02d", i))
		if !ok || gen != uint64(i) || len(v) != i {
			t.Fatalf("key-%02d: got %d bytes gen %d ok=%v", i, len(v), gen, ok)
		}
	}
	if torn := r.Stats().TornBytes; torn != 0 {
		t.Fatalf("clean close reported %d torn bytes", torn)
	}
}

func TestDeletePrefixSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	mustPut(t, s, "modelA\x1f1\x1fd1", 1, []byte("a1"))
	mustPut(t, s, "modelA\x1f1\x1fd2", 1, []byte("a2"))
	mustPut(t, s, "modelB\x1f1\x1fd1", 1, []byte("b1"))
	n, err := s.DeletePrefix("modelA\x1f")
	if err != nil || n != 2 {
		t.Fatalf("DeletePrefix = %d,%v; want 2,nil", n, err)
	}
	if _, _, ok := s.Get("modelA\x1f1\x1fd1"); ok {
		t.Fatal("deleted key still served")
	}
	// Re-put after the tombstone: must survive replay (FIFO order).
	mustPut(t, s, "modelA\x1f2\x1fd1", 2, []byte("a1v2"))
	s.Close()

	r := openT(t, dir, Options{})
	if _, _, ok := r.Get("modelA\x1f1\x1fd1"); ok {
		t.Fatal("tombstoned key resurrected by replay")
	}
	if v, _, ok := r.Get("modelB\x1f1\x1fd1"); !ok || string(v) != "b1" {
		t.Fatal("unrelated key lost")
	}
	if v, gen, ok := r.Get("modelA\x1f2\x1fd1"); !ok || gen != 2 || string(v) != "a1v2" {
		t.Fatalf("post-tombstone re-put lost: %q,%d,%v", v, gen, ok)
	}
}

// TestTornTailRecovery is the crash-recovery acceptance test: a segment
// truncated at EVERY byte offset inside its final record must reopen
// with all prior records intact and report the torn tail.
func TestTornTailRecovery(t *testing.T) {
	base := t.TempDir()
	s := openT(t, filepath.Join(base, "orig"), Options{})
	const n = 5
	for i := 0; i < n; i++ {
		mustPut(t, s, fmt.Sprintf("key-%d", i), uint64(i), bytes.Repeat([]byte{byte('a' + i)}, 20+i))
	}
	s.Close()

	segs, err := filepath.Glob(filepath.Join(base, "orig", "seg-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	lastRecSize := recHeader + len("key-4") + 24
	lastRecStart := len(data) - lastRecSize

	for cut := lastRecStart; cut < len(data); cut++ {
		dir := filepath.Join(base, fmt.Sprintf("cut-%d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segs[0])), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut at %d: reopen failed: %v", cut, err)
		}
		if r.Len() != n-1 {
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, r.Len(), n-1)
		}
		for i := 0; i < n-1; i++ {
			v, gen, ok := r.Get(fmt.Sprintf("key-%d", i))
			if !ok || gen != uint64(i) || len(v) != 20+i {
				t.Fatalf("cut at %d: key-%d corrupted: %d bytes gen %d ok=%v",
					cut, i, len(v), gen, ok)
			}
		}
		wantTorn := int64(cut - lastRecStart)
		if torn := r.Stats().TornBytes; torn != wantTorn {
			t.Fatalf("cut at %d: torn_bytes = %d, want %d", cut, torn, wantTorn)
		}
		// The truncated store must accept appends again on the repaired
		// tail, and a further reopen sees them.
		mustPut(t, r, "post-crash", 9, []byte("fresh"))
		r.Close()
		rr := openT(t, dir, Options{})
		if v, _, ok := rr.Get("post-crash"); !ok || string(v) != "fresh" {
			t.Fatalf("cut at %d: post-repair append lost", cut)
		}
		rr.Close()
	}
}

// TestBitFlipDetectedAtRead: a corrupted payload byte must surface as a
// miss (CRC mismatch), never as a wrong value.
func TestBitFlipDetectedAtRead(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	mustPut(t, s, "k", 1, []byte("payload-payload-payload"))
	s.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Replay treats the flipped record as a torn tail (it is the last
	// record); a flip in an already-indexed record is caught by Get.
	r := openT(t, dir, Options{})
	if _, _, ok := r.Get("k"); ok {
		t.Fatal("corrupted record served")
	}
}

func TestSegmentRollAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments and no compaction floor so a handful of writes roll
	// and compact deterministically.
	s := openT(t, dir, Options{SegmentBytes: 512, CompactMinBytes: 1, CompactFraction: 0.5})
	val := bytes.Repeat([]byte("v"), 100)
	// Overwrite the same 3 keys repeatedly: almost everything becomes
	// garbage, so the roll-time check must compact.
	for i := 0; i < 60; i++ {
		mustPut(t, s, fmt.Sprintf("key-%d", i%3), uint64(i), val)
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction despite %d total / %d live bytes", st.TotalBytes, st.LiveBytes)
	}
	if st.Records != 3 {
		t.Fatalf("records = %d, want 3", st.Records)
	}
	for i := 0; i < 3; i++ {
		if _, _, ok := s.Get(fmt.Sprintf("key-%d", i)); !ok {
			t.Fatalf("key-%d lost across compaction", i)
		}
	}
	s.Close()
	r := openT(t, dir, Options{SegmentBytes: 512})
	if r.Len() != 3 {
		t.Fatalf("post-compaction reopen: %d records, want 3", r.Len())
	}
}

func TestExplicitCompactReclaims(t *testing.T) {
	s := openT(t, t.TempDir(), Options{})
	for i := 0; i < 20; i++ {
		mustPut(t, s, "hot", uint64(i), bytes.Repeat([]byte("x"), 200))
	}
	var got CompactionInfo
	done := make(chan struct{})
	s.OnCompact(func(ci CompactionInfo) { got = ci; close(done) })
	before := s.Stats()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	<-done
	after := s.Stats()
	if after.TotalBytes >= before.TotalBytes {
		t.Fatalf("compaction reclaimed nothing: %d -> %d", before.TotalBytes, after.TotalBytes)
	}
	if got.Records != 1 || got.Reclaimed <= 0 {
		t.Fatalf("compaction info %+v", got)
	}
	if v, gen, ok := s.Get("hot"); !ok || gen != 19 || len(v) != 200 {
		t.Fatalf("latest value lost: %d bytes gen %d ok=%v", len(v), gen, ok)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	for i := 0; i < 30; i++ {
		mustPut(t, s, fmt.Sprintf("key-%02d", i), uint64(i%4), []byte(fmt.Sprintf("val-%d", i)))
	}
	info, err := s.Snapshot("backup-1")
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 30 {
		t.Fatalf("snapshot records = %d, want 30", info.Records)
	}
	// Writes after the snapshot are not in the archive.
	mustPut(t, s, "late", 0, []byte("late"))

	list, err := s.Snapshots()
	if err != nil || len(list) != 1 || list[0].Name != "backup-1" || list[0].Records != 30 {
		t.Fatalf("Snapshots() = %+v, %v", list, err)
	}
	s.Close()

	// Wipe the segment files (the snapshot archive survives in its
	// subdirectory), reopen empty, restore.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	for _, p := range segs {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}
	r := openT(t, dir, Options{})
	if r.Len() != 0 {
		t.Fatalf("wiped store has %d records", r.Len())
	}
	ri, err := r.Restore("backup-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Restored != 30 || ri.Dropped != 0 {
		t.Fatalf("restore info %+v", ri)
	}
	for i := 0; i < 30; i++ {
		v, _, ok := r.Get(fmt.Sprintf("key-%02d", i))
		if !ok || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("key-%02d not restored (%q, %v)", i, v, ok)
		}
	}
	if _, _, ok := r.Get("late"); ok {
		t.Fatal("post-snapshot write restored from older archive")
	}
	// Restored state survives another restart.
	r.Close()
	rr := openT(t, dir, Options{})
	if rr.Len() != 30 {
		t.Fatalf("restored store reopened with %d records", rr.Len())
	}
}

func TestRestoreKeepFilterDropsConflicts(t *testing.T) {
	s := openT(t, t.TempDir(), Options{})
	mustPut(t, s, "m\x1fgen1\x1fd", 1, []byte("old"))
	mustPut(t, s, "m\x1fgen2\x1fd", 2, []byte("new"))
	if _, err := s.Snapshot("mixed"); err != nil {
		t.Fatal(err)
	}
	ri, err := s.Restore("mixed", func(key string, gen uint64) bool { return gen == 2 })
	if err != nil {
		t.Fatal(err)
	}
	if ri.Restored != 1 || ri.Dropped != 1 {
		t.Fatalf("restore info %+v, want 1 restored / 1 dropped", ri)
	}
	if _, _, ok := s.Get("m\x1fgen1\x1fd"); ok {
		t.Fatal("conflicting generation restored")
	}
	if _, _, ok := s.Get("m\x1fgen2\x1fd"); !ok {
		t.Fatal("current generation dropped")
	}
}

func TestSnapshotNameValidation(t *testing.T) {
	s := openT(t, t.TempDir(), Options{})
	for _, bad := range []string{"", "../escape", "a/b", ".hidden", "sp ace", strings.Repeat("x", 200)} {
		if _, err := s.Snapshot(bad); err == nil {
			t.Fatalf("Snapshot(%q) accepted", bad)
		}
	}
	if _, err := s.Restore("no-such-archive", nil); err == nil {
		t.Fatal("restore of unknown snapshot succeeded")
	}
}

func TestClosedStoreRejectsOps(t *testing.T) {
	s := openT(t, t.TempDir(), Options{})
	mustPut(t, s, "k", 0, []byte("v"))
	s.Close()
	if err := s.Put("k2", 0, nil); err != ErrClosed {
		t.Fatalf("Put after close: %v", err)
	}
	if _, _, ok := s.Get("k"); ok {
		t.Fatal("Get served after close")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
