package store

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mpidetect/internal/fault"
)

type verdict struct {
	Label string
	Score float64
	Ranks int
}

func newTierT(t *testing.T, opts TierOptions) (*Store, *Tier[verdict]) {
	t.Helper()
	s := openT(t, t.TempDir(), Options{})
	tr := NewTier[verdict](s, "classify", opts)
	t.Cleanup(tr.Close)
	return s, tr
}

func TestTierStoreLoadRoundTrip(t *testing.T) {
	_, tr := newTierT(t, TierOptions{})
	tr.Store("m\x1f1\x1fdigest", verdict{Label: "deadlock", Score: 0.93, Ranks: 4})
	tr.Flush()
	v, ok, err := tr.Load("m\x1f1\x1fdigest")
	if err != nil || !ok || v.Label != "deadlock" || v.Score != 0.93 || v.Ranks != 4 {
		t.Fatalf("Load = %+v, %v, %v", v, ok, err)
	}
	if _, ok, _ := tr.Load("absent"); ok {
		t.Fatal("hit on absent key")
	}
	st := tr.Stats()
	if st.Enqueued != 1 || st.Persisted != 1 || st.Loads != 1 || st.LoadMisses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTierNamespaceIsolation(t *testing.T) {
	s := openT(t, t.TempDir(), Options{})
	a := NewTier[verdict](s, "classify", TierOptions{})
	b := NewTier[verdict](s, "tool", TierOptions{})
	defer a.Close()
	defer b.Close()
	a.Store("same-key", verdict{Label: "from-a"})
	a.Flush()
	if _, ok, _ := b.Load("same-key"); ok {
		t.Fatal("namespace leak: tier b sees tier a's key")
	}
	if v, ok, _ := a.Load("same-key"); !ok || v.Label != "from-a" {
		t.Fatal("tier a lost its own key")
	}
}

// TestTierCloseDrainsQueue is the shutdown-ordering satellite at the
// store level: every persist accepted before Close must be durable.
func TestTierCloseDrainsQueue(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	tr := NewTier[verdict](s, "classify", TierOptions{Queue: 4096})
	const n = 500
	for i := 0; i < n; i++ {
		tr.Store(fmt.Sprintf("key-%03d", i), verdict{Ranks: i})
	}
	tr.Close()
	st := tr.Stats()
	if st.Dropped != 0 {
		t.Fatalf("%d persists dropped with a roomy queue", st.Dropped)
	}
	if st.Persisted != n {
		t.Fatalf("persisted %d of %d enqueued before Close", st.Persisted, n)
	}
	s.Close()

	r := openT(t, dir, Options{})
	rt := NewTier[verdict](r, "classify", TierOptions{})
	defer rt.Close()
	for i := 0; i < n; i++ {
		v, ok, _ := rt.Load(fmt.Sprintf("key-%03d", i))
		if !ok || v.Ranks != i {
			t.Fatalf("key-%03d lost across clean shutdown (%+v, %v)", i, v, ok)
		}
	}
}

func TestTierDropAndCountUnderPressure(t *testing.T) {
	s := openT(t, t.TempDir(), Options{})
	tr := NewTier[verdict](s, "classify", TierOptions{Queue: 1})
	// Park the writer on a blocking delete ack so the queue backs up.
	ack := make(chan int)
	tr.ch <- tierOp[verdict]{key: "park", del: true, done: ack}
	for i := 0; i < 50; i++ {
		tr.Store(fmt.Sprintf("k%d", i), verdict{})
	}
	st := tr.Stats()
	if st.Dropped == 0 {
		t.Fatal("no drops with a full queue")
	}
	if st.Enqueued+st.Dropped != 50 {
		t.Fatalf("enqueued %d + dropped %d != 50", st.Enqueued, st.Dropped)
	}
	<-ack
	tr.Close()
	if got := tr.Stats(); got.Persisted != got.Enqueued {
		t.Fatalf("close left %d accepted persists unapplied", got.Enqueued-got.Persisted)
	}
}

// TestTierDeleteOrdersAfterQueuedPuts: a DeletePrefix must doom persists
// enqueued before it — the FIFO queue may not let an older put land
// after the tombstone and resurrect the entry.
func TestTierDeleteOrdersAfterQueuedPuts(t *testing.T) {
	_, tr := newTierT(t, TierOptions{Queue: 256})
	for i := 0; i < 100; i++ {
		tr.Store(fmt.Sprintf("modelA\x1f1\x1fd%d", i), verdict{Ranks: i})
	}
	if n := tr.DeletePrefix("modelA\x1f"); n != 100 {
		t.Fatalf("DeletePrefix removed %d, want 100", n)
	}
	for i := 0; i < 100; i++ {
		if _, ok, _ := tr.Load(fmt.Sprintf("modelA\x1f1\x1fd%d", i)); ok {
			t.Fatalf("doomed key d%d resurrected", i)
		}
	}
}

func TestTierDeleteAfterCloseStillWorks(t *testing.T) {
	s := openT(t, t.TempDir(), Options{})
	tr := NewTier[verdict](s, "classify", TierOptions{})
	tr.Store("k", verdict{Label: "x"})
	tr.Close()
	if n := tr.DeletePrefix("k"); n != 1 {
		t.Fatalf("post-close DeletePrefix = %d, want 1", n)
	}
	// Store after close: dropped, not panicking.
	tr.Store("k2", verdict{})
	if st := tr.Stats(); st.Dropped != 1 {
		t.Fatalf("post-close Store not counted as drop: %+v", st)
	}
	tr.Close() // idempotent
}

func TestTierGenOfStampsRecords(t *testing.T) {
	s := openT(t, t.TempDir(), Options{})
	tr := NewTier[verdict](s, "classify", TierOptions{
		GenOf: func(key string) uint64 { return uint64(len(key)) },
	})
	defer tr.Close()
	tr.Store("abc", verdict{})
	tr.Flush()
	_, gen, ok := s.Get("classify" + nsSep + "abc")
	if !ok || gen != 3 {
		t.Fatalf("gen = %d, ok=%v; want 3,true", gen, ok)
	}
}

func TestTierConcurrentStoreLoad(t *testing.T) {
	_, tr := newTierT(t, TierOptions{Queue: 4096})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				tr.Store(key, verdict{Ranks: i})
				tr.Load(key)
			}
		}(g)
	}
	wg.Wait()
	tr.Flush()
	for g := 0; g < 8; g++ {
		for i := 0; i < 200; i++ {
			if v, ok, _ := tr.Load(fmt.Sprintf("g%d-k%d", g, i)); !ok || v.Ranks != i {
				t.Fatalf("g%d-k%d missing after flush", g, i)
			}
		}
	}
}

// TestTierReadOnlyModeOnAppendFailures: consecutive append failures trip
// the persist breaker into read-only mode; loads keep serving, persists
// drop-and-count, and a successful cooldown probe restores full service.
func TestTierReadOnlyModeOnAppendFailures(t *testing.T) {
	defer fault.DisarmAll()
	var modes []string
	var mu sync.Mutex
	s := openT(t, t.TempDir(), Options{})
	tr := NewTier[verdict](s, "classify", TierOptions{
		BreakerFailures: 2,
		BreakerCooldown: time.Millisecond,
		OnModeChange: func(m string) {
			mu.Lock()
			modes = append(modes, m)
			mu.Unlock()
		},
	})
	defer tr.Close()

	tr.Store("before", verdict{Label: "kept"})
	tr.Flush()

	if err := fault.Arm(FaultAppend, fault.Spec{Mode: fault.Error, Message: "disk full"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		tr.Store(fmt.Sprintf("failing-%d", i), verdict{})
	}
	tr.Flush()
	if got := tr.Mode(); got != "read-only" {
		t.Fatalf("mode = %q after append failures, want read-only", got)
	}
	// Loads still serve in read-only mode.
	if v, ok, err := tr.Load("before"); err != nil || !ok || v.Label != "kept" {
		t.Fatalf("read-only load = %+v, %v, %v", v, ok, err)
	}
	// Persists while open are dropped and counted, not attempted.
	tr.Store("while-open", verdict{})
	tr.Flush()
	st := tr.Stats()
	if st.PersistErrors != 2 || st.DegradedDrops == 0 {
		t.Fatalf("stats %+v; want 2 persist errors and >0 degraded drops", st)
	}

	// Recovery: disarm, wait out the cooldown, and a probe put closes it.
	fault.DisarmAll()
	time.Sleep(2 * time.Millisecond)
	tr.Store("probe", verdict{Label: "back"})
	tr.Flush()
	if got := tr.Mode(); got != "ok" {
		t.Fatalf("mode = %q after successful probe, want ok", got)
	}
	if v, ok, _ := tr.Load("probe"); !ok || v.Label != "back" {
		t.Fatal("probe put not persisted after recovery")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(modes) < 2 || modes[len(modes)-1] != "ok" {
		t.Fatalf("mode changes %v; want trip then recovery", modes)
	}
}

// TestTierDisabledModeOnLoadFailures: consecutive load failures trip the
// load breaker; Load then answers miss without touching the store until
// a cooldown probe succeeds.
func TestTierDisabledModeOnLoadFailures(t *testing.T) {
	defer fault.DisarmAll()
	s := openT(t, t.TempDir(), Options{})
	tr := NewTier[verdict](s, "classify", TierOptions{
		BreakerFailures: 2,
		BreakerCooldown: time.Millisecond,
	})
	defer tr.Close()
	tr.Store("k", verdict{Label: "v"})
	tr.Flush()

	if err := fault.Arm(FaultBackingLoad, fault.Spec{Mode: fault.Error}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := tr.Load("k"); err == nil {
			t.Fatal("armed load fault returned no error")
		}
	}
	if got := tr.Mode(); got != "disabled" {
		t.Fatalf("mode = %q, want disabled", got)
	}
	// Open breaker: miss, no error, no injection hit.
	before := tr.Stats().LoadErrors
	if _, ok, err := tr.Load("k"); ok || err != nil {
		t.Fatalf("disabled load = %v, %v; want plain miss", ok, err)
	}
	if tr.Stats().LoadErrors != before {
		t.Fatal("disabled tier still touched the load path")
	}

	fault.DisarmAll()
	time.Sleep(2 * time.Millisecond)
	if v, ok, err := tr.Load("k"); err != nil || !ok || v.Label != "v" {
		t.Fatalf("probe load = %+v, %v, %v; want recovery", v, ok, err)
	}
	if got := tr.Mode(); got != "ok" {
		t.Fatalf("mode = %q after probe, want ok", got)
	}
}

// TestTierWriterPanicRecovered: a panic inside the writer goroutine (an
// injected panic fault on append) is recovered and counted; the drainer
// keeps applying later operations, so Flush and Close still return.
func TestTierWriterPanicRecovered(t *testing.T) {
	defer fault.DisarmAll()
	s := openT(t, t.TempDir(), Options{})
	tr := NewTier[verdict](s, "classify", TierOptions{})
	defer tr.Close()

	if err := fault.Arm(FaultAppend, fault.Spec{Mode: fault.Panic, Count: 1}); err != nil {
		t.Fatal(err)
	}
	tr.Store("boom", verdict{})
	tr.Store("after", verdict{Label: "alive"})
	tr.Flush()
	st := tr.Stats()
	if st.Panics != 1 {
		t.Fatalf("panics = %d, want 1", st.Panics)
	}
	if v, ok, _ := tr.Load("after"); !ok || v.Label != "alive" {
		t.Fatal("writer dead after recovered panic")
	}
}
