package store

import (
	"fmt"
	"sync"
	"testing"
)

type verdict struct {
	Label string
	Score float64
	Ranks int
}

func newTierT(t *testing.T, opts TierOptions) (*Store, *Tier[verdict]) {
	t.Helper()
	s := openT(t, t.TempDir(), Options{})
	tr := NewTier[verdict](s, "classify", opts)
	t.Cleanup(tr.Close)
	return s, tr
}

func TestTierStoreLoadRoundTrip(t *testing.T) {
	_, tr := newTierT(t, TierOptions{})
	tr.Store("m\x1f1\x1fdigest", verdict{Label: "deadlock", Score: 0.93, Ranks: 4})
	tr.Flush()
	v, ok := tr.Load("m\x1f1\x1fdigest")
	if !ok || v.Label != "deadlock" || v.Score != 0.93 || v.Ranks != 4 {
		t.Fatalf("Load = %+v, %v", v, ok)
	}
	if _, ok := tr.Load("absent"); ok {
		t.Fatal("hit on absent key")
	}
	st := tr.Stats()
	if st.Enqueued != 1 || st.Persisted != 1 || st.Loads != 1 || st.LoadMisses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTierNamespaceIsolation(t *testing.T) {
	s := openT(t, t.TempDir(), Options{})
	a := NewTier[verdict](s, "classify", TierOptions{})
	b := NewTier[verdict](s, "tool", TierOptions{})
	defer a.Close()
	defer b.Close()
	a.Store("same-key", verdict{Label: "from-a"})
	a.Flush()
	if _, ok := b.Load("same-key"); ok {
		t.Fatal("namespace leak: tier b sees tier a's key")
	}
	if v, ok := a.Load("same-key"); !ok || v.Label != "from-a" {
		t.Fatal("tier a lost its own key")
	}
}

// TestTierCloseDrainsQueue is the shutdown-ordering satellite at the
// store level: every persist accepted before Close must be durable.
func TestTierCloseDrainsQueue(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	tr := NewTier[verdict](s, "classify", TierOptions{Queue: 4096})
	const n = 500
	for i := 0; i < n; i++ {
		tr.Store(fmt.Sprintf("key-%03d", i), verdict{Ranks: i})
	}
	tr.Close()
	st := tr.Stats()
	if st.Dropped != 0 {
		t.Fatalf("%d persists dropped with a roomy queue", st.Dropped)
	}
	if st.Persisted != n {
		t.Fatalf("persisted %d of %d enqueued before Close", st.Persisted, n)
	}
	s.Close()

	r := openT(t, dir, Options{})
	rt := NewTier[verdict](r, "classify", TierOptions{})
	defer rt.Close()
	for i := 0; i < n; i++ {
		v, ok := rt.Load(fmt.Sprintf("key-%03d", i))
		if !ok || v.Ranks != i {
			t.Fatalf("key-%03d lost across clean shutdown (%+v, %v)", i, v, ok)
		}
	}
}

func TestTierDropAndCountUnderPressure(t *testing.T) {
	s := openT(t, t.TempDir(), Options{})
	tr := NewTier[verdict](s, "classify", TierOptions{Queue: 1})
	// Park the writer on a blocking delete ack so the queue backs up.
	ack := make(chan int)
	tr.ch <- tierOp[verdict]{key: "park", del: true, done: ack}
	for i := 0; i < 50; i++ {
		tr.Store(fmt.Sprintf("k%d", i), verdict{})
	}
	st := tr.Stats()
	if st.Dropped == 0 {
		t.Fatal("no drops with a full queue")
	}
	if st.Enqueued+st.Dropped != 50 {
		t.Fatalf("enqueued %d + dropped %d != 50", st.Enqueued, st.Dropped)
	}
	<-ack
	tr.Close()
	if got := tr.Stats(); got.Persisted != got.Enqueued {
		t.Fatalf("close left %d accepted persists unapplied", got.Enqueued-got.Persisted)
	}
}

// TestTierDeleteOrdersAfterQueuedPuts: a DeletePrefix must doom persists
// enqueued before it — the FIFO queue may not let an older put land
// after the tombstone and resurrect the entry.
func TestTierDeleteOrdersAfterQueuedPuts(t *testing.T) {
	_, tr := newTierT(t, TierOptions{Queue: 256})
	for i := 0; i < 100; i++ {
		tr.Store(fmt.Sprintf("modelA\x1f1\x1fd%d", i), verdict{Ranks: i})
	}
	if n := tr.DeletePrefix("modelA\x1f"); n != 100 {
		t.Fatalf("DeletePrefix removed %d, want 100", n)
	}
	for i := 0; i < 100; i++ {
		if _, ok := tr.Load(fmt.Sprintf("modelA\x1f1\x1fd%d", i)); ok {
			t.Fatalf("doomed key d%d resurrected", i)
		}
	}
}

func TestTierDeleteAfterCloseStillWorks(t *testing.T) {
	s := openT(t, t.TempDir(), Options{})
	tr := NewTier[verdict](s, "classify", TierOptions{})
	tr.Store("k", verdict{Label: "x"})
	tr.Close()
	if n := tr.DeletePrefix("k"); n != 1 {
		t.Fatalf("post-close DeletePrefix = %d, want 1", n)
	}
	// Store after close: dropped, not panicking.
	tr.Store("k2", verdict{})
	if st := tr.Stats(); st.Dropped != 1 {
		t.Fatalf("post-close Store not counted as drop: %+v", st)
	}
	tr.Close() // idempotent
}

func TestTierGenOfStampsRecords(t *testing.T) {
	s := openT(t, t.TempDir(), Options{})
	tr := NewTier[verdict](s, "classify", TierOptions{
		GenOf: func(key string) uint64 { return uint64(len(key)) },
	})
	defer tr.Close()
	tr.Store("abc", verdict{})
	tr.Flush()
	_, gen, ok := s.Get("classify" + nsSep + "abc")
	if !ok || gen != 3 {
		t.Fatalf("gen = %d, ok=%v; want 3,true", gen, ok)
	}
}

func TestTierConcurrentStoreLoad(t *testing.T) {
	_, tr := newTierT(t, TierOptions{Queue: 4096})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				tr.Store(key, verdict{Ranks: i})
				tr.Load(key)
			}
		}(g)
	}
	wg.Wait()
	tr.Flush()
	for g := 0; g < 8; g++ {
		for i := 0; i < 200; i++ {
			if v, ok := tr.Load(fmt.Sprintf("g%d-k%d", g, i)); !ok || v.Ranks != i {
				t.Fatalf("g%d-k%d missing after flush", g, i)
			}
		}
	}
}
