// Package fault is the process-wide fault-injection registry of the
// serving stack: named fault points compiled into production code paths
// (store appends, backing loads, simulator runs, tool invocations, job
// workers) that tests and the admin API can arm with error, panic, or
// latency faults. It is the chaos harness the resilience layer is proven
// against — every recovery path in serve/store/jobs exists because a
// fault point can exercise it on demand.
//
// The disarmed cost is one atomic load: Inject returns immediately when
// nothing is armed anywhere in the process, so fault points are free to
// leave compiled into hot paths (the bench-diff gate pins this). Arming
// is process-global and meant for tests and the admin-only
// /v1/admin/faults surface, never for multi-tenant exposure.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the root of every error produced by an Error-mode
// fault; recovery layers match it to tag failures as injected rather
// than organic.
var ErrInjected = errors.New("fault: injected")

// PanicValue is what Panic-mode faults throw, so recovery sites (and
// chaos tests) can tell an injected panic from a real bug.
type PanicValue struct{ Point string }

func (p PanicValue) String() string { return "fault: injected panic at " + p.Point }

// Mode selects what an armed fault does when its point is hit.
type Mode string

const (
	// Error: Inject returns an error wrapping ErrInjected.
	Error Mode = "error"
	// Panic: Inject panics with a PanicValue.
	Panic Mode = "panic"
	// Latency: Inject sleeps for Spec.Delay, then succeeds.
	Latency Mode = "latency"
)

// Spec describes one armed fault.
type Spec struct {
	Mode    Mode          `json:"mode"`
	Message string        `json:"message,omitempty"` // Error-mode message
	Delay   time.Duration `json:"delay,omitempty"`   // Latency-mode sleep
	// Count is how many hits the fault survives before auto-disarming;
	// 0 means it stays armed until Disarm.
	Count int `json:"count,omitempty"`
}

// PointInfo is one point's state for listing (GET /v1/admin/faults).
type PointInfo struct {
	Point    string `json:"point"`
	Armed    bool   `json:"armed"`
	Spec     *Spec  `json:"spec,omitempty"`
	Injected int64  `json:"injected"`
}

type point struct {
	spec      *Spec // nil = disarmed
	remaining int   // hits left before auto-disarm; <0 = unlimited
	injected  int64
}

var (
	mu     sync.Mutex
	points = map[string]*point{}
	// armed counts the armed points; Inject's fast path reads only this.
	armed atomic.Int32
)

// Register declares a fault point so it appears in List even while
// disarmed. Packages register their points in init; registering an
// existing point is a no-op. Returns the name for declaration-site use.
func Register(name string) string {
	mu.Lock()
	if _, ok := points[name]; !ok {
		points[name] = &point{}
	}
	mu.Unlock()
	return name
}

// Arm installs (or replaces) a fault at the named point, registering
// the point if needed. An invalid mode is an error.
func Arm(name string, spec Spec) error {
	switch spec.Mode {
	case Error, Panic, Latency:
	default:
		return fmt.Errorf("fault: unknown mode %q (want error, panic or latency)", spec.Mode)
	}
	mu.Lock()
	defer mu.Unlock()
	p, ok := points[name]
	if !ok {
		p = &point{}
		points[name] = p
	}
	if p.spec == nil {
		armed.Add(1)
	}
	sp := spec
	p.spec = &sp
	p.remaining = -1
	if spec.Count > 0 {
		p.remaining = spec.Count
	}
	return nil
}

// Disarm removes the fault at the named point; ok reports whether one
// was armed.
func Disarm(name string) bool {
	mu.Lock()
	defer mu.Unlock()
	p, ok := points[name]
	if !ok || p.spec == nil {
		return false
	}
	p.spec = nil
	armed.Add(-1)
	return true
}

// DisarmAll removes every armed fault, returning how many were armed.
// Chaos tests defer it so one armed point cannot leak into later tests.
func DisarmAll() int {
	mu.Lock()
	defer mu.Unlock()
	n := 0
	for _, p := range points {
		if p.spec != nil {
			p.spec = nil
			n++
		}
	}
	armed.Add(-int32(n))
	return n
}

// List snapshots every registered point, sorted by name.
func List() []PointInfo {
	mu.Lock()
	defer mu.Unlock()
	out := make([]PointInfo, 0, len(points))
	for name, p := range points {
		info := PointInfo{Point: name, Armed: p.spec != nil, Injected: p.injected}
		if p.spec != nil {
			sp := *p.spec
			info.Spec = &sp
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Point < out[j].Point })
	return out
}

// Inject fires the fault armed at name, if any: Error mode returns an
// error wrapping ErrInjected, Panic mode panics with a PanicValue,
// Latency mode sleeps then returns nil. Disarmed (the production state)
// it is a single atomic load.
func Inject(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	return injectSlow(name)
}

func injectSlow(name string) error {
	mu.Lock()
	p, ok := points[name]
	if !ok || p.spec == nil {
		mu.Unlock()
		return nil
	}
	spec := *p.spec
	p.injected++
	if p.remaining > 0 {
		p.remaining--
		if p.remaining == 0 {
			p.spec = nil
			armed.Add(-1)
		}
	}
	mu.Unlock()

	switch spec.Mode {
	case Panic:
		panic(PanicValue{Point: name})
	case Latency:
		time.Sleep(spec.Delay)
		return nil
	default:
		msg := spec.Message
		if msg == "" {
			msg = "armed fault"
		}
		return fmt.Errorf("%w: %s: %s", ErrInjected, name, msg)
	}
}
