package fault

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDisarmedInjectIsNil(t *testing.T) {
	defer DisarmAll()
	Register("test.disarmed")
	if err := Inject("test.disarmed"); err != nil {
		t.Fatalf("disarmed Inject = %v, want nil", err)
	}
	// Unregistered points are equally free.
	if err := Inject("test.never-registered"); err != nil {
		t.Fatalf("unregistered Inject = %v, want nil", err)
	}
}

func TestErrorMode(t *testing.T) {
	defer DisarmAll()
	pt := Register("test.error")
	if err := Arm(pt, Spec{Mode: Error, Message: "disk on fire"}); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	err := Inject(pt)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Inject = %v, want ErrInjected", err)
	}
	if got := err.Error(); !strings.Contains(got, "disk on fire") {
		t.Fatalf("error %q missing armed message", got)
	}
	// Arming one point must not fire others.
	Register("test.error-bystander")
	if err := Inject("test.error-bystander"); err != nil {
		t.Fatalf("bystander Inject = %v, want nil", err)
	}
}

func TestPanicMode(t *testing.T) {
	defer DisarmAll()
	pt := Register("test.panic")
	if err := Arm(pt, Spec{Mode: Panic}); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	defer func() {
		r := recover()
		pv, ok := r.(PanicValue)
		if !ok {
			t.Fatalf("recovered %T %v, want PanicValue", r, r)
		}
		if pv.Point != pt {
			t.Fatalf("PanicValue.Point = %q, want %q", pv.Point, pt)
		}
	}()
	Inject(pt)
	t.Fatal("Inject did not panic")
}

func TestLatencyMode(t *testing.T) {
	defer DisarmAll()
	pt := Register("test.latency")
	if err := Arm(pt, Spec{Mode: Latency, Delay: 20 * time.Millisecond}); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	start := time.Now()
	if err := Inject(pt); err != nil {
		t.Fatalf("latency Inject = %v, want nil", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("latency Inject returned after %v, want >= 20ms", d)
	}
}

func TestCountAutoDisarms(t *testing.T) {
	defer DisarmAll()
	pt := Register("test.count")
	if err := Arm(pt, Spec{Mode: Error, Count: 2}); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := Inject(pt); err == nil {
			t.Fatalf("hit %d: Inject = nil, want error", i)
		}
	}
	if err := Inject(pt); err != nil {
		t.Fatalf("after count exhausted: Inject = %v, want nil", err)
	}
	if Disarm(pt) {
		t.Fatal("Disarm = true after auto-disarm, want false")
	}
}

func TestArmRejectsUnknownMode(t *testing.T) {
	defer DisarmAll()
	if err := Arm("test.bad-mode", Spec{Mode: "explode"}); err == nil {
		t.Fatal("Arm with unknown mode succeeded")
	}
}

func TestDisarmAllAndList(t *testing.T) {
	defer DisarmAll()
	a, b := Register("test.list-a"), Register("test.list-b")
	if err := Arm(a, Spec{Mode: Error}); err != nil {
		t.Fatal(err)
	}
	if err := Arm(b, Spec{Mode: Latency, Delay: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	Inject(a)

	var sawA, sawB bool
	for _, info := range List() {
		switch info.Point {
		case a:
			sawA = true
			if !info.Armed || info.Spec == nil || info.Spec.Mode != Error {
				t.Fatalf("point %s listed as %+v, want armed error spec", a, info)
			}
			if info.Injected < 1 {
				t.Fatalf("point %s injected = %d, want >= 1", a, info.Injected)
			}
		case b:
			sawB = true
			if !info.Armed {
				t.Fatalf("point %s listed disarmed", b)
			}
		}
	}
	if !sawA || !sawB {
		t.Fatalf("List missing registered points (sawA=%v sawB=%v)", sawA, sawB)
	}

	if n := DisarmAll(); n < 2 {
		t.Fatalf("DisarmAll = %d, want >= 2", n)
	}
	for _, info := range List() {
		if info.Armed {
			t.Fatalf("point %s still armed after DisarmAll", info.Point)
		}
	}
}

func TestRegisterIdempotent(t *testing.T) {
	defer DisarmAll()
	pt := Register("test.idem")
	if err := Arm(pt, Spec{Mode: Error}); err != nil {
		t.Fatal(err)
	}
	// Re-registering an armed point must not clear the armed spec.
	Register(pt)
	if err := Inject(pt); err == nil {
		t.Fatal("Inject = nil after re-Register, want armed error")
	}
}
