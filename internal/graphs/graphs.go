// Package graphs builds ProGraML-style program graphs from IR modules: a
// heterogeneous graph with three node kinds (instruction/control, variable,
// constant) and three edge kinds (control, data, call), unifying the
// control-flow, data-flow and call graphs exactly as the representation the
// paper adapts (§IV-B, Cummins et al. 2021).
package graphs

import (
	"fmt"
	"strconv"
	"sync"

	"mpidetect/internal/intern"
	"mpidetect/internal/ir"
)

// NodeKind distinguishes the three ProGraML node types.
type NodeKind int

// Node kinds.
const (
	KindInstr NodeKind = iota
	KindVar
	KindConst
	NumNodeKinds
)

// String names the kind.
func (k NodeKind) String() string {
	switch k {
	case KindInstr:
		return "instruction"
	case KindVar:
		return "variable"
	case KindConst:
		return "constant"
	}
	return "?"
}

// EdgeKind distinguishes the three ProGraML edge types.
type EdgeKind int

// Edge kinds.
const (
	EdgeControl EdgeKind = iota
	EdgeData
	EdgeCall
	NumEdgeKinds
)

// String names the kind.
func (k EdgeKind) String() string {
	switch k {
	case EdgeControl:
		return "control"
	case EdgeData:
		return "data"
	case EdgeCall:
		return "call"
	}
	return "?"
}

// Node is one graph node. Token is the textual feature ProGraML attaches
// (opcode spelling for instructions — with the callee name for calls, which
// is what lets models see MPI operations — type text for variables, and a
// bucketed value for constants).
type Node struct {
	Kind  NodeKind
	Token string
}

// Edge connects Src to Dst with a relation kind.
type Edge struct {
	Kind     EdgeKind
	Src, Dst int
}

// Graph is a heterogeneous program graph.
type Graph struct {
	Nodes []Node
	Edges []Edge
	// TokID, when non-nil, holds the vocabulary id of each node, aligned
	// with Nodes. BuildResolved fills it (resolving tokens against a fixed
	// vocabulary without materialising the token strings); graphs from
	// Build leave it nil and consumers resolve Node.Token instead.
	TokID []int32
}

// NumByKind counts nodes of each kind.
func (g *Graph) NumByKind() [NumNodeKinds]int {
	var out [NumNodeKinds]int
	for _, n := range g.Nodes {
		out[n.Kind]++
	}
	return out
}

// EdgesByKind splits the edge list by relation.
func (g *Graph) EdgesByKind() [NumEdgeKinds][]Edge {
	var out [NumEdgeKinds][]Edge
	for _, e := range g.Edges {
		out[e.Kind] = append(out[e.Kind], e)
	}
	return out
}

// smallConstTokens pre-renders the "const:0" … "const:16" spellings so the
// common small-integer bucket costs neither a Sprintf nor an allocation.
var smallConstTokens = func() [17]string {
	var out [17]string
	for i := range out {
		out[i] = "const:" + strconv.Itoa(i)
	}
	return out
}()

// ConstToken buckets a constant for feature purposes: small integers keep
// their value (so datatype/tag/count literals are distinguishable), large
// and negative values collapse into buckets. This mirrors ProGraML's
// profile-independent value abstraction.
func ConstToken(c *ir.Const) string {
	switch {
	case c.IsUndef:
		return "const:undef"
	case c.IsNull:
		return "const:null"
	case c.IsFloat:
		return "const:float"
	case c.Int < 0:
		return "const:neg"
	case c.Int <= 16:
		return smallConstTokens[c.Int]
	case c.Int <= 256:
		return "const:medium"
	default:
		return "const:large"
	}
}

// AppendConstToken appends ConstToken(c) to dst without allocating.
func AppendConstToken(dst []byte, c *ir.Const) []byte {
	return append(dst, ConstToken(c)...)
}

// InstrToken returns the instruction node token.
func InstrToken(in *ir.Instr) string {
	if in.Op == ir.OpCall {
		return "call:" + in.Callee
	}
	if in.Op == ir.OpICmp || in.Op == ir.OpFCmp {
		return in.Op.String() + ":" + in.Cmp.String()
	}
	return in.Op.String()
}

// AppendInstrToken appends InstrToken(in) to dst without allocating, for
// resolvers that look tokens up in a reusable byte buffer.
func AppendInstrToken(dst []byte, in *ir.Instr) []byte {
	if in.Op == ir.OpCall {
		return append(append(dst, "call:"...), in.Callee...)
	}
	if in.Op == ir.OpICmp || in.Op == ir.OpFCmp {
		dst = append(dst, in.Op.String()...)
		dst = append(dst, ':')
		return append(dst, in.Cmp.String()...)
	}
	return append(dst, in.Op.String()...)
}

// VarToken returns the variable node token (its type).
func VarToken(t *ir.Type) string { return "var:" + t.String() }

// AppendVarToken appends VarToken(t) to dst without allocating.
func AppendVarToken(dst []byte, t *ir.Type) []byte {
	return t.AppendString(append(dst, "var:"...))
}

// builder is the pooled working state of one graph construction: the
// node-identity maps and (for resolved builds) the token scratch buffer.
// Node and edge order is fixed by the two-pass walk in build, identically
// for Build and BuildResolved.
type builder struct {
	g         *Graph
	vocab     *Vocab // nil: record Token strings; non-nil: record TokID
	instrNode map[*ir.Instr]int
	varNode   map[ir.Value]int // instruction results, params, globals
	constNode map[string]int   // constants deduplicated by bucket token
	funcEntry map[*ir.Func]int // first instruction node of a function
	buf       []byte
}

var builderPool = sync.Pool{New: func() any {
	return &builder{
		instrNode: map[*ir.Instr]int{},
		varNode:   map[ir.Value]int{},
		constNode: map[string]int{},
		funcEntry: map[*ir.Func]int{},
	}
}}

// release drops every module reference before the builder returns to the
// pool, so an idle pool never pins dead IR. clear() keeps the map buckets.
func (b *builder) release() {
	b.g, b.vocab = nil, nil
	clear(b.instrNode)
	clear(b.varNode)
	clear(b.constNode)
	clear(b.funcEntry)
	builderPool.Put(b)
}

// addInstr appends the instruction node of in.
func (b *builder) addInstr(in *ir.Instr) int {
	if b.vocab == nil {
		b.g.Nodes = append(b.g.Nodes, Node{Kind: KindInstr, Token: InstrToken(in)})
	} else {
		b.g.Nodes = append(b.g.Nodes, Node{Kind: KindInstr})
		b.buf = AppendInstrToken(b.buf[:0], in)
		b.g.TokID = append(b.g.TokID, int32(b.vocab.IDBytes(b.buf)))
	}
	return len(b.g.Nodes) - 1
}

// addVar appends a variable node typed t.
func (b *builder) addVar(t *ir.Type) int {
	if b.vocab == nil {
		b.g.Nodes = append(b.g.Nodes, Node{Kind: KindVar, Token: VarToken(t)})
	} else {
		b.g.Nodes = append(b.g.Nodes, Node{Kind: KindVar})
		b.buf = AppendVarToken(b.buf[:0], t)
		b.g.TokID = append(b.g.TokID, int32(b.vocab.IDBytes(b.buf)))
	}
	return len(b.g.Nodes) - 1
}

// addConst appends a constant node for the bucket token tok (one of the
// fixed ConstToken spellings, so recording it costs no allocation even on
// the resolved path).
func (b *builder) addConst(tok string) int {
	if b.vocab == nil {
		b.g.Nodes = append(b.g.Nodes, Node{Kind: KindConst, Token: tok})
	} else {
		b.g.Nodes = append(b.g.Nodes, Node{Kind: KindConst})
		b.g.TokID = append(b.g.TokID, int32(b.vocab.ID(tok)))
	}
	return len(b.g.Nodes) - 1
}

func (b *builder) addEdge(kind EdgeKind, src, dst int) {
	b.g.Edges = append(b.g.Edges, Edge{Kind: kind, Src: src, Dst: dst})
}

// varOf returns (creating on demand) the variable/constant node of a
// value used as an operand. Constants deduplicate by bucket token — never
// by vocabulary id, which would merge distinct buckets that all resolve
// to the out-of-vocabulary slot.
func (b *builder) varOf(v ir.Value) (int, bool) {
	switch x := v.(type) {
	case *ir.Const:
		tok := ConstToken(x)
		if id, ok := b.constNode[tok]; ok {
			return id, true
		}
		id := b.addConst(tok)
		b.constNode[tok] = id
		return id, true
	case *ir.Param, *ir.Global:
		if id, ok := b.varNode[v]; ok {
			return id, true
		}
		id := b.addVar(v.Type())
		b.varNode[v] = id
		return id, true
	case *ir.Instr:
		if id, ok := b.varNode[v]; ok {
			return id, true
		}
		id := b.addVar(x.Type())
		b.varNode[v] = id
		return id, true
	}
	return 0, false
}

func (b *builder) build(m *ir.Module) {
	// Pass 1: instruction nodes.
	for _, f := range m.Funcs {
		if f.Decl {
			continue
		}
		first := true
		for _, bl := range f.Blocks {
			for _, in := range bl.Instrs {
				id := b.addInstr(in)
				b.instrNode[in] = id
				if first {
					b.funcEntry[f] = id
					first = false
				}
			}
		}
	}

	// Pass 2: edges.
	for _, f := range m.Funcs {
		if f.Decl {
			continue
		}
		for _, bl := range f.Blocks {
			// Control edges: sequential within a block, terminator to the
			// first instruction of each successor block.
			for i := 0; i+1 < len(bl.Instrs); i++ {
				b.addEdge(EdgeControl, b.instrNode[bl.Instrs[i]], b.instrNode[bl.Instrs[i+1]])
			}
			if t := bl.Term(); t != nil {
				for _, s := range t.Blocks {
					if len(s.Instrs) > 0 {
						b.addEdge(EdgeControl, b.instrNode[t], b.instrNode[s.Instrs[0]])
					}
				}
			}
			for _, in := range bl.Instrs {
				// Data edges: operand -> instruction; instruction -> its
				// result variable.
				for _, a := range in.Args {
					if src, ok := b.varOf(a); ok {
						b.addEdge(EdgeData, src, b.instrNode[in])
					}
				}
				if in.Name != "" && in.Typ != nil && in.Typ.Kind != ir.KVoid {
					if dst, ok := b.varOf(in); ok {
						b.addEdge(EdgeData, b.instrNode[in], dst)
					}
				}
				// Call edges: call site -> callee entry (defined functions).
				if in.Op == ir.OpCall {
					if callee := m.FuncByName(in.Callee); callee != nil && !callee.Decl {
						if entry, ok := b.funcEntry[callee]; ok {
							b.addEdge(EdgeCall, b.instrNode[in], entry)
						}
					}
				}
			}
		}
	}
}

// Build constructs the program graph of a module, with Node.Token filled
// for vocabulary construction (training) and printing.
func Build(m *ir.Module) *Graph {
	b := builderPool.Get().(*builder)
	b.g, b.vocab = &Graph{}, nil
	b.build(m)
	g := b.g
	b.release()
	return g
}

// BuildResolved constructs the program graph of a module with every node
// token resolved against v into Graph.TokID, skipping the token-string
// round trip entirely: instruction and variable spellings are assembled in
// a reusable byte buffer and looked up with the intern table's
// zero-allocation byte resolver. Node order, edge order and the resulting
// vocabulary ids are identical to Build followed by per-node Vocab.ID —
// only Node.Token is left empty, so resolved graphs are for inference, not
// for BuildVocab.
func BuildResolved(m *ir.Module, v *Vocab) *Graph {
	b := builderPool.Get().(*builder)
	b.g, b.vocab = &Graph{}, v
	b.build(m)
	g := b.g
	b.release()
	return g
}

// Vocab maps node tokens to dense ids, shared across a corpus so the GNN
// embedding table is consistent between training and validation. It is
// keyed on an intern table: token i of the table gets vocabulary id i+1,
// id 0 being the out-of-vocabulary slot, so the embedding matrix is a flat
// (Len+1)×dim array addressed without string hashing after the build
// phase.
type Vocab struct {
	Tab *intern.Table
	OOV int // the id reserved for unseen tokens (always 0)
}

// NewVocab returns an empty vocabulary ready for interning.
func NewVocab() *Vocab { return &Vocab{Tab: intern.New(), OOV: 0} }

// BuildVocab scans graphs and assigns token ids (id 0 is out-of-vocabulary).
func BuildVocab(gs []*Graph) *Vocab {
	v := NewVocab()
	for _, g := range gs {
		for _, n := range g.Nodes {
			v.Tab.Intern(n.Token)
		}
	}
	return v
}

// Size returns the vocabulary size including the OOV slot.
func (v *Vocab) Size() int { return v.Tab.Len() + 1 }

// ID resolves a token (OOV for unknown).
func (v *Vocab) ID(tok string) int {
	if id, ok := v.Tab.Resolve(tok); ok {
		return int(id) + 1
	}
	return v.OOV
}

// IDBytes resolves a token assembled in a byte buffer without allocating
// (OOV for unknown).
func (v *Vocab) IDBytes(tok []byte) int {
	if id, ok := v.Tab.ResolveBytes(tok); ok {
		return int(id) + 1
	}
	return v.OOV
}

// TokenIDs exports the vocabulary as the legacy token→id map — the shape
// persisted in gob model artifacts since ArtifactVersion 1.
func (v *Vocab) TokenIDs() map[string]int {
	out := make(map[string]int, v.Tab.Len())
	for i, tok := range v.Tab.Tokens() {
		out[tok] = i + 1
	}
	return out
}

// VocabFromTokenIDs rebuilds a vocabulary from the legacy map shape,
// preserving the persisted ids (token with map id i+1 gets table id i). It
// rejects maps whose ids are not a dense 1..n assignment, since those
// cannot index a flat embedding table.
func VocabFromTokenIDs(ids map[string]int) (*Vocab, error) {
	toks := make([]string, len(ids))
	taken := make([]bool, len(ids))
	for tok, id := range ids {
		if id < 1 || id > len(ids) {
			return nil, fmt.Errorf("graphs: vocab id %d for token %q outside dense range 1..%d", id, tok, len(ids))
		}
		if taken[id-1] {
			return nil, fmt.Errorf("graphs: vocab id %d assigned to both %q and %q", id, toks[id-1], tok)
		}
		taken[id-1] = true
		toks[id-1] = tok
	}
	v := NewVocab()
	for _, tok := range toks {
		v.Tab.Intern(tok)
	}
	if v.Tab.Len() != len(ids) {
		return nil, fmt.Errorf("graphs: vocab map has duplicate tokens (%d ids, %d distinct tokens)", len(ids), v.Tab.Len())
	}
	return v, nil
}
