// Package graphs builds ProGraML-style program graphs from IR modules: a
// heterogeneous graph with three node kinds (instruction/control, variable,
// constant) and three edge kinds (control, data, call), unifying the
// control-flow, data-flow and call graphs exactly as the representation the
// paper adapts (§IV-B, Cummins et al. 2021).
package graphs

import (
	"fmt"

	"mpidetect/internal/ir"
)

// NodeKind distinguishes the three ProGraML node types.
type NodeKind int

// Node kinds.
const (
	KindInstr NodeKind = iota
	KindVar
	KindConst
	NumNodeKinds
)

// String names the kind.
func (k NodeKind) String() string {
	switch k {
	case KindInstr:
		return "instruction"
	case KindVar:
		return "variable"
	case KindConst:
		return "constant"
	}
	return "?"
}

// EdgeKind distinguishes the three ProGraML edge types.
type EdgeKind int

// Edge kinds.
const (
	EdgeControl EdgeKind = iota
	EdgeData
	EdgeCall
	NumEdgeKinds
)

// String names the kind.
func (k EdgeKind) String() string {
	switch k {
	case EdgeControl:
		return "control"
	case EdgeData:
		return "data"
	case EdgeCall:
		return "call"
	}
	return "?"
}

// Node is one graph node. Token is the textual feature ProGraML attaches
// (opcode spelling for instructions — with the callee name for calls, which
// is what lets models see MPI operations — type text for variables, and a
// bucketed value for constants).
type Node struct {
	Kind  NodeKind
	Token string
}

// Edge connects Src to Dst with a relation kind.
type Edge struct {
	Kind     EdgeKind
	Src, Dst int
}

// Graph is a heterogeneous program graph.
type Graph struct {
	Nodes []Node
	Edges []Edge
}

// NumByKind counts nodes of each kind.
func (g *Graph) NumByKind() [NumNodeKinds]int {
	var out [NumNodeKinds]int
	for _, n := range g.Nodes {
		out[n.Kind]++
	}
	return out
}

// EdgesByKind splits the edge list by relation.
func (g *Graph) EdgesByKind() [NumEdgeKinds][]Edge {
	var out [NumEdgeKinds][]Edge
	for _, e := range g.Edges {
		out[e.Kind] = append(out[e.Kind], e)
	}
	return out
}

// ConstToken buckets a constant for feature purposes: small integers keep
// their value (so datatype/tag/count literals are distinguishable), large
// and negative values collapse into buckets. This mirrors ProGraML's
// profile-independent value abstraction.
func ConstToken(c *ir.Const) string {
	switch {
	case c.IsUndef:
		return "const:undef"
	case c.IsNull:
		return "const:null"
	case c.IsFloat:
		return "const:float"
	case c.Int < 0:
		return "const:neg"
	case c.Int <= 16:
		return fmt.Sprintf("const:%d", c.Int)
	case c.Int <= 256:
		return "const:medium"
	default:
		return "const:large"
	}
}

// InstrToken returns the instruction node token.
func InstrToken(in *ir.Instr) string {
	if in.Op == ir.OpCall {
		return "call:" + in.Callee
	}
	if in.Op == ir.OpICmp || in.Op == ir.OpFCmp {
		return in.Op.String() + ":" + in.Cmp.String()
	}
	return in.Op.String()
}

// VarToken returns the variable node token (its type).
func VarToken(t *ir.Type) string { return "var:" + t.String() }

// Build constructs the program graph of a module.
func Build(m *ir.Module) *Graph {
	g := &Graph{}
	instrNode := map[*ir.Instr]int{}
	varNode := map[ir.Value]int{}   // instruction results, params, globals
	constNode := map[string]int{}   // constants deduplicated by token
	funcEntry := map[*ir.Func]int{} // first instruction node of a function

	addNode := func(n Node) int {
		g.Nodes = append(g.Nodes, n)
		return len(g.Nodes) - 1
	}
	addEdge := func(kind EdgeKind, src, dst int) {
		g.Edges = append(g.Edges, Edge{Kind: kind, Src: src, Dst: dst})
	}

	// varOf returns (creating on demand) the variable/constant node of a
	// value used as an operand.
	varOf := func(v ir.Value) (int, bool) {
		switch x := v.(type) {
		case *ir.Const:
			tok := ConstToken(x)
			if id, ok := constNode[tok]; ok {
				return id, true
			}
			id := addNode(Node{Kind: KindConst, Token: tok})
			constNode[tok] = id
			return id, true
		case *ir.Param, *ir.Global:
			if id, ok := varNode[v]; ok {
				return id, true
			}
			id := addNode(Node{Kind: KindVar, Token: VarToken(v.Type())})
			varNode[v] = id
			return id, true
		case *ir.Instr:
			if id, ok := varNode[v]; ok {
				return id, true
			}
			id := addNode(Node{Kind: KindVar, Token: VarToken(x.Type())})
			varNode[v] = id
			return id, true
		}
		return 0, false
	}

	// Pass 1: instruction nodes.
	for _, f := range m.Funcs {
		if f.Decl {
			continue
		}
		first := true
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				id := addNode(Node{Kind: KindInstr, Token: InstrToken(in)})
				instrNode[in] = id
				if first {
					funcEntry[f] = id
					first = false
				}
			}
		}
	}

	// Pass 2: edges.
	for _, f := range m.Funcs {
		if f.Decl {
			continue
		}
		for _, b := range f.Blocks {
			// Control edges: sequential within a block, terminator to the
			// first instruction of each successor block.
			for i := 0; i+1 < len(b.Instrs); i++ {
				addEdge(EdgeControl, instrNode[b.Instrs[i]], instrNode[b.Instrs[i+1]])
			}
			if t := b.Term(); t != nil {
				for _, s := range t.Blocks {
					if len(s.Instrs) > 0 {
						addEdge(EdgeControl, instrNode[t], instrNode[s.Instrs[0]])
					}
				}
			}
			for _, in := range b.Instrs {
				// Data edges: operand -> instruction; instruction -> its
				// result variable.
				for _, a := range in.Args {
					if src, ok := varOf(a); ok {
						addEdge(EdgeData, src, instrNode[in])
					}
				}
				if in.Name != "" && in.Typ != nil && in.Typ.Kind != ir.KVoid {
					if dst, ok := varOf(in); ok {
						addEdge(EdgeData, instrNode[in], dst)
					}
				}
				// Call edges: call site -> callee entry (defined functions).
				if in.Op == ir.OpCall {
					if callee := m.FuncByName(in.Callee); callee != nil && !callee.Decl {
						if entry, ok := funcEntry[callee]; ok {
							addEdge(EdgeCall, instrNode[in], entry)
						}
					}
				}
			}
		}
	}
	return g
}

// Vocab maps node tokens to dense ids, shared across a corpus so the GNN
// embedding table is consistent between training and validation.
type Vocab struct {
	IDs map[string]int
	OOV int // the id reserved for unseen tokens
}

// BuildVocab scans graphs and assigns token ids (id 0 is out-of-vocabulary).
func BuildVocab(gs []*Graph) *Vocab {
	v := &Vocab{IDs: map[string]int{}, OOV: 0}
	next := 1
	for _, g := range gs {
		for _, n := range g.Nodes {
			if _, ok := v.IDs[n.Token]; !ok {
				v.IDs[n.Token] = next
				next++
			}
		}
	}
	return v
}

// Size returns the vocabulary size including the OOV slot.
func (v *Vocab) Size() int { return len(v.IDs) + 1 }

// ID resolves a token (OOV for unknown).
func (v *Vocab) ID(tok string) int {
	if id, ok := v.IDs[tok]; ok {
		return id
	}
	return v.OOV
}
