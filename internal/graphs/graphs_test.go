package graphs

import (
	"testing"

	"mpidetect/internal/intern"
	"mpidetect/internal/ir"
)

func fixtureModule() *ir.Module {
	m := ir.NewModule("g")
	m.AddFunc(&ir.Func{Name: "MPI_Barrier", Decl: true, Sig: ir.FuncOf(ir.I32, ir.I32)})
	callee := m.AddFunc(&ir.Func{Name: "helper", Sig: ir.FuncOf(ir.I32, ir.I32),
		Params: []*ir.Param{{Name: "x", Typ: ir.I32}}})
	cb := ir.NewBuilder(callee)
	v := cb.Bin(ir.OpMul, callee.Params[0], ir.ConstInt(ir.I32, 3))
	cb.Ret(v)

	f := m.AddFunc(&ir.Func{Name: "main", Sig: ir.FuncOf(ir.I32)})
	b := ir.NewBuilder(f)
	r := b.Call("helper", ir.I32, ir.ConstInt(ir.I32, 7))
	b.Call("MPI_Barrier", ir.I32, ir.ConstInt(ir.I32, 91))
	cmp := b.ICmp(ir.PredSGT, r, ir.ConstInt(ir.I32, 10))
	then := b.NewBlock("then")
	exit := b.NewBlock("exit")
	b.CondBr(cmp, then, exit)
	b.SetBlock(then)
	b.Br(exit)
	b.SetBlock(exit)
	b.Ret(ir.ConstInt(ir.I32, 0))
	return m
}

func TestBuildSchema(t *testing.T) {
	g := Build(fixtureModule())
	kinds := g.NumByKind()
	if kinds[KindInstr] == 0 || kinds[KindVar] == 0 || kinds[KindConst] == 0 {
		t.Fatalf("missing node kinds: %v", kinds)
	}
	edges := g.EdgesByKind()
	if len(edges[EdgeControl]) == 0 || len(edges[EdgeData]) == 0 {
		t.Fatal("missing control or data edges")
	}
	if len(edges[EdgeCall]) != 1 {
		t.Fatalf("call edges = %d, want 1 (call to defined helper only)", len(edges[EdgeCall]))
	}
	// Control edges connect instructions only; data edges end at
	// instructions or variables.
	for _, e := range edges[EdgeControl] {
		if g.Nodes[e.Src].Kind != KindInstr || g.Nodes[e.Dst].Kind != KindInstr {
			t.Fatal("control edge touches a non-instruction node")
		}
	}
}

func TestTokens(t *testing.T) {
	g := Build(fixtureModule())
	want := map[string]bool{"call:MPI_Barrier": false, "call:helper": false, "icmp:sgt": false}
	for _, n := range g.Nodes {
		if _, ok := want[n.Token]; ok {
			want[n.Token] = true
		}
	}
	for tok, seen := range want {
		if !seen {
			t.Errorf("token %q missing from graph", tok)
		}
	}
}

func TestConstBuckets(t *testing.T) {
	cases := map[*ir.Const]string{
		ir.ConstInt(ir.I32, 5):        "const:5",
		ir.ConstInt(ir.I32, -3):       "const:neg",
		ir.ConstInt(ir.I32, 100):      "const:medium",
		ir.ConstInt(ir.I32, 99999):    "const:large",
		ir.ConstFloat(1.5):            "const:float",
		ir.ConstNull(ir.PtrTo(ir.I8)): "const:null",
	}
	for c, want := range cases {
		if got := ConstToken(c); got != want {
			t.Errorf("ConstToken = %q, want %q", got, want)
		}
	}
}

func TestConstantsDeduplicated(t *testing.T) {
	m := ir.NewModule("dups")
	f := m.AddFunc(&ir.Func{Name: "f", Sig: ir.FuncOf(ir.I32)})
	b := ir.NewBuilder(f)
	x := b.Bin(ir.OpAdd, ir.ConstInt(ir.I32, 4), ir.ConstInt(ir.I32, 4))
	y := b.Bin(ir.OpAdd, x, ir.ConstInt(ir.I32, 4))
	b.Ret(y)
	g := Build(m)
	count := 0
	for _, n := range g.Nodes {
		if n.Token == "const:4" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("const:4 appears %d times, want 1 (deduplicated)", count)
	}
}

// TestAppendTokensMatchStringTokens pins the zero-alloc appenders to the
// string builders byte-for-byte — interned vocabularies depend on both
// paths producing identical spellings.
func TestAppendTokensMatchStringTokens(t *testing.T) {
	consts := []*ir.Const{
		ir.ConstInt(ir.I32, 0), ir.ConstInt(ir.I32, 7), ir.ConstInt(ir.I32, 16),
		ir.ConstInt(ir.I32, 17), ir.ConstInt(ir.I32, 300), ir.ConstInt(ir.I32, -2),
		ir.ConstFloat(2.5), ir.ConstNull(ir.PtrTo(ir.I8)),
	}
	buf := make([]byte, 0, 64)
	for _, c := range consts {
		buf = AppendConstToken(buf[:0], c)
		if string(buf) != ConstToken(c) {
			t.Errorf("AppendConstToken = %q, ConstToken = %q", buf, ConstToken(c))
		}
	}
	for _, typ := range []*ir.Type{ir.I32, ir.PtrTo(ir.I8), ir.ArrayOf(4, ir.I32)} {
		buf = AppendVarToken(buf[:0], typ)
		if string(buf) != VarToken(typ) {
			t.Errorf("AppendVarToken = %q, VarToken = %q", buf, VarToken(typ))
		}
	}
	m := ir.NewModule("tok")
	f := m.AddFunc(&ir.Func{Name: "f", Sig: ir.FuncOf(ir.I32)})
	b := ir.NewBuilder(f)
	x := b.Bin(ir.OpAdd, ir.ConstInt(ir.I32, 1), ir.ConstInt(ir.I32, 2))
	b.ICmp(ir.PredSLT, x, ir.ConstInt(ir.I32, 5))
	b.Call("MPI_Finalize", ir.Void)
	b.Ret(x)
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			buf = AppendInstrToken(buf[:0], in)
			if string(buf) != InstrToken(in) {
				t.Errorf("AppendInstrToken = %q, InstrToken = %q", buf, InstrToken(in))
			}
		}
	}
}

func TestVocabInternedIDs(t *testing.T) {
	m := ir.NewModule("v")
	f := m.AddFunc(&ir.Func{Name: "f", Sig: ir.FuncOf(ir.I32)})
	b := ir.NewBuilder(f)
	b.Ret(b.Bin(ir.OpAdd, ir.ConstInt(ir.I32, 1), ir.ConstInt(ir.I32, 2)))
	g := Build(m)
	v := BuildVocab([]*Graph{g})
	if v.ID("definitely-not-a-token") != v.OOV {
		t.Error("unknown token did not map to OOV")
	}
	if v.Size() != v.Tab.Len()+1 {
		t.Errorf("Size = %d, want %d", v.Size(), v.Tab.Len()+1)
	}
	for _, n := range g.Nodes {
		id := v.ID(n.Token)
		if id == v.OOV {
			t.Fatalf("token %q mapped to OOV", n.Token)
		}
		if v.Tab.TokenOf(intern.ID(id-1)) != n.Token {
			t.Errorf("id %d round-trips to %q, want %q", id, v.Tab.TokenOf(intern.ID(id-1)), n.Token)
		}
	}
	// Legacy map round trip preserves every id.
	back, err := VocabFromTokenIDs(v.TokenIDs())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes {
		if back.ID(n.Token) != v.ID(n.Token) {
			t.Errorf("round-tripped vocab id mismatch for %q", n.Token)
		}
	}
}

func TestVocabFromTokenIDsRejectsCorruptMaps(t *testing.T) {
	cases := []map[string]int{
		{"a": 1, "b": 1},         // duplicate id
		{"a": 0, "b": 1},         // id below the dense range
		{"a": 1, "b": 3},         // hole / id beyond the range
		{"a": 2, "b": 2, "c": 1}, // duplicate id in a bigger map
	}
	for i, m := range cases {
		if _, err := VocabFromTokenIDs(m); err == nil {
			t.Errorf("case %d (%v): corrupt vocab map accepted", i, m)
		}
	}
	if v, err := VocabFromTokenIDs(map[string]int{"a": 2, "b": 1}); err != nil || v.ID("a") != 2 || v.ID("b") != 1 {
		t.Errorf("valid map rejected or ids shuffled: %v", err)
	}
}

// TestBuildResolvedMatchesBuild pins BuildResolved to Build: identical node
// kinds, identical edges, and a TokID per node equal to resolving the
// Build-side token against the same vocabulary — including out-of-vocabulary
// tokens, which must stay distinct nodes (dedup is by bucket, never by id).
func TestBuildResolvedMatchesBuild(t *testing.T) {
	m := fixtureModule()
	ref := Build(m)
	// A vocabulary that deliberately misses some tokens: build it from a
	// smaller module so the fixture has OOV instruction and const tokens.
	small := ir.NewModule("small")
	f := small.AddFunc(&ir.Func{Name: "f", Sig: ir.FuncOf(ir.I32)})
	b := ir.NewBuilder(f)
	b.Ret(b.Bin(ir.OpMul, ir.ConstInt(ir.I32, 3), ir.ConstInt(ir.I32, 3)))
	for _, v := range []*Vocab{BuildVocab([]*Graph{ref}), BuildVocab([]*Graph{Build(small)})} {
		got := BuildResolved(m, v)
		if len(got.Nodes) != len(ref.Nodes) {
			t.Fatalf("node count %d, want %d", len(got.Nodes), len(ref.Nodes))
		}
		if len(got.TokID) != len(got.Nodes) {
			t.Fatalf("TokID length %d, want %d", len(got.TokID), len(got.Nodes))
		}
		for i, n := range ref.Nodes {
			if got.Nodes[i].Kind != n.Kind {
				t.Fatalf("node %d kind %v, want %v", i, got.Nodes[i].Kind, n.Kind)
			}
			if want := v.ID(n.Token); int(got.TokID[i]) != want {
				t.Fatalf("node %d (%q) TokID %d, want %d", i, n.Token, got.TokID[i], want)
			}
		}
		if len(got.Edges) != len(ref.Edges) {
			t.Fatalf("edge count %d, want %d", len(got.Edges), len(ref.Edges))
		}
		for i, e := range ref.Edges {
			if got.Edges[i] != e {
				t.Fatalf("edge %d = %+v, want %+v", i, got.Edges[i], e)
			}
		}
	}
}
