package graphs

import (
	"testing"

	"mpidetect/internal/ir"
)

func fixtureModule() *ir.Module {
	m := ir.NewModule("g")
	m.AddFunc(&ir.Func{Name: "MPI_Barrier", Decl: true, Sig: ir.FuncOf(ir.I32, ir.I32)})
	callee := m.AddFunc(&ir.Func{Name: "helper", Sig: ir.FuncOf(ir.I32, ir.I32),
		Params: []*ir.Param{{Name: "x", Typ: ir.I32}}})
	cb := ir.NewBuilder(callee)
	v := cb.Bin(ir.OpMul, callee.Params[0], ir.ConstInt(ir.I32, 3))
	cb.Ret(v)

	f := m.AddFunc(&ir.Func{Name: "main", Sig: ir.FuncOf(ir.I32)})
	b := ir.NewBuilder(f)
	r := b.Call("helper", ir.I32, ir.ConstInt(ir.I32, 7))
	b.Call("MPI_Barrier", ir.I32, ir.ConstInt(ir.I32, 91))
	cmp := b.ICmp(ir.PredSGT, r, ir.ConstInt(ir.I32, 10))
	then := b.NewBlock("then")
	exit := b.NewBlock("exit")
	b.CondBr(cmp, then, exit)
	b.SetBlock(then)
	b.Br(exit)
	b.SetBlock(exit)
	b.Ret(ir.ConstInt(ir.I32, 0))
	return m
}

func TestBuildSchema(t *testing.T) {
	g := Build(fixtureModule())
	kinds := g.NumByKind()
	if kinds[KindInstr] == 0 || kinds[KindVar] == 0 || kinds[KindConst] == 0 {
		t.Fatalf("missing node kinds: %v", kinds)
	}
	edges := g.EdgesByKind()
	if len(edges[EdgeControl]) == 0 || len(edges[EdgeData]) == 0 {
		t.Fatal("missing control or data edges")
	}
	if len(edges[EdgeCall]) != 1 {
		t.Fatalf("call edges = %d, want 1 (call to defined helper only)", len(edges[EdgeCall]))
	}
	// Control edges connect instructions only; data edges end at
	// instructions or variables.
	for _, e := range edges[EdgeControl] {
		if g.Nodes[e.Src].Kind != KindInstr || g.Nodes[e.Dst].Kind != KindInstr {
			t.Fatal("control edge touches a non-instruction node")
		}
	}
}

func TestTokens(t *testing.T) {
	g := Build(fixtureModule())
	want := map[string]bool{"call:MPI_Barrier": false, "call:helper": false, "icmp:sgt": false}
	for _, n := range g.Nodes {
		if _, ok := want[n.Token]; ok {
			want[n.Token] = true
		}
	}
	for tok, seen := range want {
		if !seen {
			t.Errorf("token %q missing from graph", tok)
		}
	}
}

func TestConstBuckets(t *testing.T) {
	cases := map[*ir.Const]string{
		ir.ConstInt(ir.I32, 5):        "const:5",
		ir.ConstInt(ir.I32, -3):       "const:neg",
		ir.ConstInt(ir.I32, 100):      "const:medium",
		ir.ConstInt(ir.I32, 99999):    "const:large",
		ir.ConstFloat(1.5):            "const:float",
		ir.ConstNull(ir.PtrTo(ir.I8)): "const:null",
	}
	for c, want := range cases {
		if got := ConstToken(c); got != want {
			t.Errorf("ConstToken = %q, want %q", got, want)
		}
	}
}

func TestConstantsDeduplicated(t *testing.T) {
	m := ir.NewModule("dups")
	f := m.AddFunc(&ir.Func{Name: "f", Sig: ir.FuncOf(ir.I32)})
	b := ir.NewBuilder(f)
	x := b.Bin(ir.OpAdd, ir.ConstInt(ir.I32, 4), ir.ConstInt(ir.I32, 4))
	y := b.Bin(ir.OpAdd, x, ir.ConstInt(ir.I32, 4))
	b.Ret(y)
	g := Build(m)
	count := 0
	for _, n := range g.Nodes {
		if n.Token == "const:4" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("const:4 appears %d times, want 1 (deduplicated)", count)
	}
}
