package ir2vec

import (
	"bytes"
	"encoding/gob"
	"os"
	"testing"

	"mpidetect/internal/dataset"
	"mpidetect/internal/ir"
	"mpidetect/internal/irgen"
	"mpidetect/internal/passes"
	"mpidetect/internal/tensor"
)

// mbiCorpus rebuilds the deterministic corpus testdata/encoder_v1.gob was
// trained on: the first 64 MBI programs at -Os, encoder trained on the
// first 16 with dim 64, seed 1, 5 epochs, vocabulary fitted on all 64.
func mbiCorpus(t testing.TB) []*ir.Module {
	t.Helper()
	d := dataset.GenerateMBI(1)
	n := len(d.Codes)
	if n > 64 {
		n = 64
	}
	mods := make([]*ir.Module, n)
	for i := 0; i < n; i++ {
		m := irgen.MustLower(d.Codes[i].Prog)
		passes.Optimize(m, passes.Os)
		mods[i] = m
	}
	return mods
}

// TestLegacyArtifactBitForBit is the interning compatibility gate:
// testdata/encoder_v1.gob was serialised by the pre-interning, map-keyed
// encoder. Loading it through the flat-table decode path and retraining
// from scratch with the interned trainer must both reproduce the exact
// same vectors on the whole MBI corpus, bit for bit.
func TestLegacyArtifactBitForBit(t *testing.T) {
	raw, err := os.ReadFile("testdata/encoder_v1.gob")
	if err != nil {
		t.Fatalf("reading legacy artifact: %v", err)
	}
	var legacy Encoder
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&legacy); err != nil {
		t.Fatalf("decoding legacy artifact: %v", err)
	}
	mods := mbiCorpus(t)
	fresh := Train(mods[:16], 64, 1, 5)
	fresh.FitVocab(mods)
	if fresh.NumEntities() != legacy.NumEntities() {
		t.Fatalf("entity count: fresh %d, legacy %d", fresh.NumEntities(), legacy.NumEntities())
	}
	for i, m := range mods {
		a := fresh.Encode(m)
		b := legacy.Encode(m)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("module %d coordinate %d: fresh %v, legacy %v (not bit-for-bit)",
					i, j, a[j], b[j])
			}
		}
	}
}

// TestGobRoundTripBitForBit re-serialises an interned encoder and checks
// the reload encodes the corpus identically — including a second
// generation (save → load → save → load) so the flat layout is stable.
func TestGobRoundTripBitForBit(t *testing.T) {
	mods := mbiCorpus(t)
	enc := Train(mods[:16], 64, 1, 5)
	enc.FitVocab(mods)
	reload := func(e *Encoder) *Encoder {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(e); err != nil {
			t.Fatalf("encode: %v", err)
		}
		var out Encoder
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return &out
	}
	gen1 := reload(enc)
	gen2 := reload(gen1)
	for i, m := range mods {
		want := enc.Encode(m)
		for _, got := range [][]float64{gen1.Encode(m), gen2.Encode(m)} {
			if tensor.VecDist(want, got) != 0 {
				t.Fatalf("module %d: round-tripped encoder diverged", i)
			}
		}
	}
}

// TestGobRejectsCorruptState checks the decode-time shape validation.
func TestGobRejectsCorruptState(t *testing.T) {
	cases := []encoderState{
		{Dim: 0},
		{Dim: 4, Toks: []string{"a"}, Vecs: []float64{1, 2}},
		{Dim: 4, Toks: []string{"a", "a"}, Vecs: make([]float64, 8)},
		{Dim: 4, Ent: map[string][]float64{"a": {1, 2}}},
		{Dim: 4, Rel: map[string][]float64{"next": {1}}},
	}
	for i, st := range cases {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(st); err != nil {
			t.Fatal(err)
		}
		var e Encoder
		if err := e.GobDecode(buf.Bytes()); err == nil {
			t.Errorf("case %d: corrupt state decoded without error", i)
		}
	}
}

// TestEncodeAllocs pins the zero-alloc encode: the pre-interning
// implementation allocated a fallback memo map, two per-instruction
// vector maps and one fresh vector per instruction on every call (~772
// allocations on this corpus). The pooled-scratch path must stay at the
// returned feature vector plus low single digits of pool noise, so the
// per-call map can never quietly come back.
func TestEncodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector (sync.Pool caching is disabled)")
	}
	mods := mbiCorpus(t)
	enc := Train(mods[:16], 64, 1, 5)
	enc.FitVocab(mods)
	for _, m := range mods[:8] {
		m := m
		enc.Encode(m) // warm the scratch pool
		allocs := testing.AllocsPerRun(50, func() { enc.Encode(m) })
		if allocs > 3 {
			t.Fatalf("Encode allocates %v times per call, want <= 3 (feature vector + pool noise)", allocs)
		}
	}
}

// TestEncodeOOVStillMemoises checks that encoding a module whose tokens
// were never fitted still works and stays deterministic (the scratch memo
// replaced the old per-call map).
func TestEncodeOOVStillMemoises(t *testing.T) {
	mods := mbiCorpus(t)
	enc := Train(nil, 32, 7, 1) // empty table: every token is OOV
	a := enc.Encode(mods[0])
	b := enc.Encode(mods[0])
	if tensor.VecDist(a, b) != 0 {
		t.Fatal("OOV encoding is not deterministic across calls")
	}
	fitted := Train(nil, 32, 7, 1)
	fitted.FitVocab(mods[:1])
	c := fitted.Encode(mods[0])
	if tensor.VecDist(a, c) != 0 {
		t.Fatal("fitted vocabulary changed the encoding of the same module")
	}
}

// TestScratchRPOMatchesIR pins the scratch reverse-postorder (used by the
// zero-alloc flow-aware pass) to ir.ReversePostorder over every function
// of the MBI corpus plus hand-built CFG shapes (diamond, loop,
// unreachable block). If a future terminator extends ir.Block.Succs, this
// is the test that catches the traversals diverging.
func TestScratchRPOMatchesIR(t *testing.T) {
	check := func(f *ir.Func) {
		t.Helper()
		want := ir.ReversePostorder(f)
		s := scratchPool.Get().(*scratch)
		s.gen++
		got := s.rpo(f)
		if len(got) != len(want) {
			t.Fatalf("%s: rpo length %d, want %d", f.Name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: rpo block %d differs", f.Name, i)
			}
		}
		s.release()
	}
	for _, m := range mbiCorpus(t) {
		for _, f := range m.Funcs {
			if !f.Decl {
				check(f)
			}
		}
	}
	// Diamond with a loop back-edge and an unreachable block.
	m := ir.NewModule("cfg")
	f := m.AddFunc(&ir.Func{Name: "f", Sig: ir.FuncOf(ir.I32)})
	b := ir.NewBuilder(f)
	entry := b.Cur
	left := b.NewBlock("left")
	right := b.NewBlock("right")
	join := b.NewBlock("join")
	dead := b.NewBlock("dead")
	b.SetBlock(entry)
	cond := b.ICmp(ir.PredSLT, ir.ConstInt(ir.I32, 1), ir.ConstInt(ir.I32, 2))
	b.CondBr(cond, left, right)
	b.SetBlock(left)
	b.Br(join)
	b.SetBlock(right)
	b.CondBr(cond, join, entry) // back edge
	b.SetBlock(join)
	b.Ret(ir.ConstInt(ir.I32, 0))
	b.SetBlock(dead)
	b.Ret(ir.ConstInt(ir.I32, 1))
	check(f)
}

// TestEncodeBatchBitForBit pins the flat batch encoder to per-module
// Encode, bit for bit: the batch path shares one scratch across programs,
// which must never leak state between them.
func TestEncodeBatchBitForBit(t *testing.T) {
	mods := mbiCorpus(t)
	enc := Train(mods[:16], 64, 1, 5)
	enc.FitVocab(mods)
	batch := enc.EncodeBatch(mods)
	if len(batch) != len(mods)*2*enc.Dim {
		t.Fatalf("batch length %d, want %d", len(batch), len(mods)*2*enc.Dim)
	}
	for i, m := range mods {
		want := enc.Encode(m)
		got := batch[i*2*enc.Dim : (i+1)*2*enc.Dim]
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("module %d coordinate %d: batch %v, single %v", i, j, got[j], want[j])
			}
		}
	}
	// EncodeInto reuses a caller buffer without residue from prior content.
	dirty := make([]float64, 2*enc.Dim)
	for i := range dirty {
		dirty[i] = 1e9
	}
	got := enc.EncodeInto(dirty, mods[3])
	want := enc.Encode(mods[3])
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("EncodeInto coordinate %d: %v, want %v", j, got[j], want[j])
		}
	}
}
