package ir2vec_test

import (
	"runtime"
	"sync"
	"testing"

	"mpidetect/internal/dataset"
	"mpidetect/internal/ir"
	"mpidetect/internal/ir2vec"
	"mpidetect/internal/irgen"
	"mpidetect/internal/passes"
)

// benchCorpus lowers a slice of the MBI suite and trains a small encoder
// over it, with the corpus vocabulary pre-fitted so Encode runs read-only.
func benchCorpus(b *testing.B) ([]*ir.Module, *ir2vec.Encoder) {
	b.Helper()
	d := dataset.GenerateMBI(1)
	n := len(d.Codes)
	if n > 64 {
		n = 64
	}
	mods := make([]*ir.Module, n)
	for i := 0; i < n; i++ {
		m := irgen.MustLower(d.Codes[i].Prog)
		passes.Optimize(m, passes.Os)
		mods[i] = m
	}
	sample := mods
	if len(sample) > 16 {
		sample = sample[:16]
	}
	enc := ir2vec.Train(sample, 64, 1, 5)
	enc.FitVocab(mods)
	// Warm the scratch pool so single-iteration smoke runs (-benchtime 1x)
	// measure steady-state encoding, not the pool's first-call growth.
	for _, m := range mods {
		enc.Encode(m)
	}
	return mods, enc
}

// BenchmarkEncodeSerial is the single-goroutine, one-program-per-op
// baseline (ns/op is the per-program encode latency).
func BenchmarkEncodeSerial(b *testing.B) {
	mods, enc := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encode(mods[i%len(mods)])
	}
}

// BenchmarkEncodeBatchSerial encodes the whole corpus per op on one
// goroutine: the serial reference point for BenchmarkEncodeParallel
// (identical work per op, so the two ns/op values are directly
// comparable).
func BenchmarkEncodeBatchSerial(b *testing.B) {
	mods, enc := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range mods {
			enc.Encode(m)
		}
	}
	b.ReportMetric(float64(len(mods)), "programs/op")
}

// BenchmarkEncodeParallel encodes the whole corpus per op, split into one
// contiguous chunk per GOMAXPROCS goroutine. Chunking sizes the work per
// goroutine so the fan-out overhead (goroutine start + WaitGroup) is paid
// once per ~dozens of programs instead of once per program — the earlier
// per-program fan-out made "parallel" slower than serial on small hosts.
// Compare against BenchmarkEncodeBatchSerial: equal at GOMAXPROCS=1,
// shrinking roughly linearly with cores beyond that.
func BenchmarkEncodeParallel(b *testing.B) {
	mods, enc := benchCorpus(b)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(mods) {
		workers = len(mods)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		chunk := (len(mods) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(mods) {
				hi = len(mods)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(ms []*ir.Module) {
				defer wg.Done()
				for _, m := range ms {
					enc.Encode(m)
				}
			}(mods[lo:hi])
		}
		wg.Wait()
	}
	b.ReportMetric(float64(len(mods)), "programs/op")
}
