package ir2vec_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"mpidetect/internal/dataset"
	"mpidetect/internal/ir"
	"mpidetect/internal/ir2vec"
	"mpidetect/internal/irgen"
	"mpidetect/internal/passes"
)

// benchCorpus lowers a slice of the MBI suite and trains a small encoder
// over it, with the corpus vocabulary pre-fitted so Encode runs read-only.
func benchCorpus(b *testing.B) ([]*ir.Module, *ir2vec.Encoder) {
	b.Helper()
	d := dataset.GenerateMBI(1)
	n := len(d.Codes)
	if n > 64 {
		n = 64
	}
	mods := make([]*ir.Module, n)
	for i := 0; i < n; i++ {
		m := irgen.MustLower(d.Codes[i].Prog)
		passes.Optimize(m, passes.Os)
		mods[i] = m
	}
	sample := mods
	if len(sample) > 16 {
		sample = sample[:16]
	}
	enc := ir2vec.Train(sample, 64, 1, 5)
	enc.FitVocab(mods)
	return mods, enc
}

// BenchmarkEncodeSerial is the single-goroutine baseline.
func BenchmarkEncodeSerial(b *testing.B) {
	mods, enc := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encode(mods[i%len(mods)])
	}
}

// BenchmarkEncodeParallel drives Encode from GOMAXPROCS goroutines with no
// synchronisation: ns/op should shrink roughly linearly with the
// parallelism, demonstrating that the two-phase encoder no longer
// serializes on a mutex.
func BenchmarkEncodeParallel(b *testing.B) {
	mods, enc := benchCorpus(b)
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1)
			enc.Encode(mods[int(i)%len(mods)])
		}
	})
}

// BenchmarkEncodeParallelMutex reproduces the seed's pre-refactor
// discipline — every Encode guarded by one global mutex — as the
// contention reference point for BenchmarkEncodeParallel.
func BenchmarkEncodeParallelMutex(b *testing.B) {
	mods, enc := benchCorpus(b)
	var mu sync.Mutex
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1)
			mu.Lock()
			enc.Encode(mods[int(i)%len(mods)])
			mu.Unlock()
		}
	})
}
