// Package ir2vec reimplements the IR2Vec program embedding (VenkataKeerthy
// et al., TACO 2020) used by the paper's first model (§IV-A): seed
// embeddings for IR entities learned with a TransE-style relational
// objective, composed into per-instruction vectors (symbolic encoding) and
// augmented with use-def flow information (flow-aware encoding). Each
// encoding yields one vector per compilation unit; the paper concatenates
// both encodings into the feature vector a decision tree classifies.
package ir2vec

import (
	"bytes"
	"encoding/gob"
	"hash/fnv"
	"math"
	"math/rand"

	"mpidetect/internal/graphs"
	"mpidetect/internal/ir"
	"mpidetect/internal/tensor"
)

// Dim is the per-encoding embedding dimensionality used by the paper
// (256 per encoding, 512 after concatenation).
const Dim = 256

// Composition weights of the symbolic encoding (opcode, type, arguments),
// following IR2Vec's published heuristic weights.
const (
	wOpc  = 1.0
	wType = 0.5
	wArg  = 0.2
	// flowBeta damps the contribution of reaching definitions in the
	// flow-aware encoding.
	flowBeta = 0.3
)

// Encoder holds trained seed embeddings. Encoding is two-phase: Train (or
// Load) and optionally FitVocab mutate the entity table; after that, Encode
// is read-only and safe for concurrent use from any number of goroutines.
type Encoder struct {
	Dim  int
	Seed int64
	ent  map[string][]float64
	rel  map[string][]float64
}

// encoderState is the exported gob mirror of Encoder.
type encoderState struct {
	Dim  int
	Seed int64
	Ent  map[string][]float64
	Rel  map[string][]float64
}

// GobEncode implements gob.GobEncoder, exposing the trained tables.
func (e *Encoder) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(encoderState{
		Dim: e.Dim, Seed: e.Seed, Ent: e.ent, Rel: e.rel})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (e *Encoder) GobDecode(b []byte) error {
	var st encoderState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return err
	}
	e.Dim, e.Seed, e.ent, e.rel = st.Dim, st.Seed, st.Ent, st.Rel
	if e.ent == nil {
		e.ent = map[string][]float64{}
	}
	if e.rel == nil {
		e.rel = map[string][]float64{}
	}
	return nil
}

// instrTokens extracts the (opcode, type, args) entity tokens of an
// instruction, shared with the ProGraML tokeniser so both models see the
// same vocabulary of program entities.
func instrTokens(in *ir.Instr) (opc, typ string, args []string) {
	opc = graphs.InstrToken(in)
	typ = "type:" + in.Type().String()
	for _, a := range in.Args {
		switch x := a.(type) {
		case *ir.Const:
			args = append(args, graphs.ConstToken(x))
		default:
			args = append(args, graphs.VarToken(x.Type()))
		}
	}
	return
}

// triple is one (head, relation, tail) fact for TransE.
type triple struct {
	h, r, t string
}

// extractTriples harvests relational facts from a corpus: opcode--type
// pairs, opcode--argument pairs, and sequential opcode--opcode pairs.
func extractTriples(mods []*ir.Module) []triple {
	seen := map[triple]bool{}
	var out []triple
	add := func(tr triple) {
		if !seen[tr] {
			seen[tr] = true
			out = append(out, tr)
		}
	}
	for _, m := range mods {
		for _, f := range m.Funcs {
			if f.Decl {
				continue
			}
			for _, b := range f.Blocks {
				var prev string
				for _, in := range b.Instrs {
					opc, typ, args := instrTokens(in)
					add(triple{opc, "typeof", typ})
					for _, a := range args {
						add(triple{opc, "arg", a})
					}
					if prev != "" {
						add(triple{prev, "next", opc})
					}
					prev = opc
				}
			}
		}
	}
	return out
}

// Train learns seed embeddings from the corpus with a margin-based TransE
// objective. The seed parameter is the "Seeds" knob studied in §V-A:
// changing it regenerates a different (but equally valid) embedding basis.
func Train(mods []*ir.Module, dim int, seed int64, epochs int) *Encoder {
	if dim <= 0 {
		dim = Dim
	}
	e := &Encoder{Dim: dim, Seed: seed,
		ent: map[string][]float64{}, rel: map[string][]float64{}}
	rng := rand.New(rand.NewSource(seed))
	triples := extractTriples(mods)
	var entities []string
	seenEnt := map[string]bool{}
	for _, tr := range triples {
		for _, tok := range []string{tr.h, tr.t} {
			if !seenEnt[tok] {
				seenEnt[tok] = true
				entities = append(entities, tok)
				e.ent[tok] = randUnit(rng, dim)
			}
		}
		if _, ok := e.rel[tr.r]; !ok {
			e.rel[tr.r] = randUnit(rng, dim)
		}
	}
	if len(entities) == 0 {
		return e
	}
	const (
		margin = 1.0
		lr     = 0.01
	)
	order := make([]int, len(triples))
	for i := range order {
		order[i] = i
	}
	for ep := 0; ep < epochs; ep++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, ti := range order {
			tr := triples[ti]
			h, r, t := e.ent[tr.h], e.rel[tr.r], e.ent[tr.t]
			// Negative sample: corrupt the tail.
			neg := e.ent[entities[rng.Intn(len(entities))]]
			dPos := transDist(h, r, t)
			dNeg := transDist(h, r, neg)
			if dPos+margin <= dNeg {
				continue
			}
			// Gradient of max(0, margin + dPos - dNeg) wrt the embeddings,
			// with d(x) = ||h + r - x||^2 (squared L2 for simple gradients).
			for i := 0; i < dim; i++ {
				gp := 2 * (h[i] + r[i] - t[i])
				gn := 2 * (h[i] + r[i] - neg[i])
				h[i] -= lr * (gp - gn)
				r[i] -= lr * (gp - gn)
				t[i] -= lr * (-gp)
				neg[i] -= lr * gn
			}
		}
		// Renormalise entities to the unit ball.
		for _, v := range e.ent {
			if n := tensor.VecNorm(v); n > 1 {
				tensor.VecScale(v, 1/n)
			}
		}
	}
	return e
}

func transDist(h, r, t []float64) float64 {
	s := 0.0
	for i := range h {
		d := h[i] + r[i] - t[i]
		s += d * d
	}
	return s
}

func randUnit(rng *rand.Rand, dim int) []float64 {
	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	tensor.VecScale(v, 1/math.Sqrt(float64(dim)))
	return v
}

// lookup returns the entity embedding, falling back to a deterministic
// hash-seeded vector for entities unseen during seed training (so encoding
// never fails on new programs). Fallbacks are memoised in the caller's
// per-Encode map rather than the shared table, keeping lookup — and hence
// Encode — free of side effects on the encoder.
func (e *Encoder) lookup(tok string, memo map[string][]float64) []float64 {
	if v, ok := e.ent[tok]; ok {
		return v
	}
	if v, ok := memo[tok]; ok {
		return v
	}
	v := e.fallback(tok)
	memo[tok] = v
	return v
}

// fallback derives the deterministic embedding of an out-of-vocabulary
// entity from its FNV hash and the encoder seed.
func (e *Encoder) fallback(tok string) []float64 {
	hash := fnv.New64a()
	_, _ = hash.Write([]byte(tok))
	rng := rand.New(rand.NewSource(int64(hash.Sum64()) ^ e.Seed))
	return randUnit(rng, e.Dim)
}

// FitVocab precomputes fallback embeddings for every entity of the corpus
// that seed training did not cover, so subsequent Encode calls resolve all
// tokens with pure map hits. This is the optional second phase of the
// two-phase protocol: train (or load) the encoder, fit the corpus
// vocabulary once, then encode lock-free from any number of goroutines.
// FitVocab mutates the encoder and must not run concurrently with Encode.
func (e *Encoder) FitVocab(mods []*ir.Module) {
	for _, m := range mods {
		for _, f := range m.Funcs {
			if f.Decl {
				continue
			}
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					opc, typ, args := instrTokens(in)
					for _, tok := range args {
						if _, ok := e.ent[tok]; !ok {
							e.ent[tok] = e.fallback(tok)
						}
					}
					for _, tok := range [...]string{opc, typ} {
						if _, ok := e.ent[tok]; !ok {
							e.ent[tok] = e.fallback(tok)
						}
					}
				}
			}
		}
	}
}

// symbolic computes the symbolic per-instruction vector.
func (e *Encoder) symbolic(in *ir.Instr, memo map[string][]float64) []float64 {
	opc, typ, args := instrTokens(in)
	v := make([]float64, e.Dim)
	tensor.VecAddScaled(v, wOpc, e.lookup(opc, memo))
	tensor.VecAddScaled(v, wType, e.lookup(typ, memo))
	for _, a := range args {
		tensor.VecAddScaled(v, wArg, e.lookup(a, memo))
	}
	return v
}

// Encoding selects which of the two encodings to emit.
type Encoding int

// Encoding modes. The paper concatenates both (EncBoth); the symbolic- and
// flow-only modes exist for the design-choice ablation bench.
const (
	EncBoth Encoding = iota
	EncSymbolic
	EncFlowAware
)

// String names the encoding.
func (e Encoding) String() string {
	switch e {
	case EncSymbolic:
		return "symbolic"
	case EncFlowAware:
		return "flow-aware"
	default:
		return "concat"
	}
}

// EncodeMode returns the module vector under the chosen encoding mode:
// Dim features for a single encoding, 2*Dim for the concatenation.
func (e *Encoder) EncodeMode(m *ir.Module, mode Encoding) []float64 {
	full := e.Encode(m)
	switch mode {
	case EncSymbolic:
		return full[:e.Dim]
	case EncFlowAware:
		return full[e.Dim:]
	}
	return full
}

// Encode returns the concatenated [symbolic || flow-aware] vector of the
// module (2*Dim features).
func (e *Encoder) Encode(m *ir.Module) []float64 {
	sym := make([]float64, e.Dim)
	flow := make([]float64, e.Dim)
	// Out-of-vocabulary fallbacks are memoised for this call only, so
	// repeated OOV tokens cost one computation without mutating the
	// encoder's shared table.
	memo := map[string][]float64{}
	for _, f := range m.Funcs {
		if f.Decl {
			continue
		}
		// Per-instruction symbolic vectors.
		symOf := map[*ir.Instr][]float64{}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				v := e.symbolic(in, memo)
				symOf[in] = v
				tensor.VecAdd(sym, v)
			}
		}
		// Flow-aware: propagate reaching-definition vectors along use-def
		// chains in reverse postorder (back edges see the defs computed so
		// far, damped by flowBeta).
		flowOf := map[*ir.Instr][]float64{}
		for _, b := range ir.ReversePostorder(f) {
			for _, in := range b.Instrs {
				v := append([]float64(nil), symOf[in]...)
				for _, a := range in.Args {
					if dep, ok := a.(*ir.Instr); ok {
						if dv, ok := flowOf[dep]; ok {
							tensor.VecAddScaled(v, flowBeta, dv)
						} else if sv, ok := symOf[dep]; ok {
							tensor.VecAddScaled(v, flowBeta, sv)
						}
					}
				}
				flowOf[in] = v
				tensor.VecAdd(flow, v)
			}
		}
	}
	out := make([]float64, 0, 2*e.Dim)
	out = append(out, sym...)
	out = append(out, flow...)
	return out
}

// Norm selects a feature normalisation strategy (Table IV: none, vector,
// index).
type Norm int

// Normalisation modes.
const (
	NormNone Norm = iota
	NormVector
	NormIndex
)

// String returns the Table IV spelling.
func (n Norm) String() string {
	switch n {
	case NormNone:
		return "none"
	case NormVector:
		return "vector"
	case NormIndex:
		return "index"
	}
	return "?"
}

// Normalizer applies one of the three modes. Index normalisation is fitted
// on the training features and then applied to validation features.
type Normalizer struct {
	Mode  Norm
	scale []float64 // per-coordinate, for NormIndex
}

// normalizerState is the exported gob mirror of Normalizer.
type normalizerState struct {
	Mode  Norm
	Scale []float64
}

// GobEncode implements gob.GobEncoder.
func (n *Normalizer) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(normalizerState{Mode: n.Mode, Scale: n.scale})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (n *Normalizer) GobDecode(b []byte) error {
	var st normalizerState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return err
	}
	n.Mode, n.scale = st.Mode, st.Scale
	return nil
}

// FitNormalizer prepares a normalizer from training features.
func FitNormalizer(mode Norm, train [][]float64) *Normalizer {
	n := &Normalizer{Mode: mode}
	if mode == NormIndex && len(train) > 0 {
		n.scale = make([]float64, len(train[0]))
		for _, v := range train {
			for i, x := range v {
				if a := math.Abs(x); a > n.scale[i] {
					n.scale[i] = a
				}
			}
		}
	}
	return n
}

// Apply normalises one feature vector (returning a fresh slice).
func (n *Normalizer) Apply(v []float64) []float64 {
	out := append([]float64(nil), v...)
	switch n.Mode {
	case NormNone:
	case NormVector:
		if m := tensor.VecMaxAbs(out); m > 0 {
			tensor.VecScale(out, 1/m)
		}
	case NormIndex:
		for i := range out {
			if i < len(n.scale) && n.scale[i] > 0 {
				out[i] /= n.scale[i]
			}
		}
	}
	return out
}

// ApplyAll normalises a batch.
func (n *Normalizer) ApplyAll(vs [][]float64) [][]float64 {
	out := make([][]float64, len(vs))
	for i, v := range vs {
		out[i] = n.Apply(v)
	}
	return out
}
