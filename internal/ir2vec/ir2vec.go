// Package ir2vec reimplements the IR2Vec program embedding (VenkataKeerthy
// et al., TACO 2020) used by the paper's first model (§IV-A): seed
// embeddings for IR entities learned with a TransE-style relational
// objective, composed into per-instruction vectors (symbolic encoding) and
// augmented with use-def flow information (flow-aware encoding). Each
// encoding yields one vector per compilation unit; the paper concatenates
// both encodings into the feature vector a decision tree classifies.
//
// Entity storage is interned: tokens resolve once to dense ids in an
// intern.Table and the embeddings live in one flat []float64 indexed by
// id*Dim, so the Encode hot path does no string hashing against maps and
// no per-call map allocation — per-call working state lives in a pooled
// scratch buffer and the only allocation per Encode is the returned
// feature vector.
package ir2vec

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"sync"

	"mpidetect/internal/graphs"
	"mpidetect/internal/intern"
	"mpidetect/internal/ir"
	"mpidetect/internal/tensor"
)

// Dim is the per-encoding embedding dimensionality used by the paper
// (256 per encoding, 512 after concatenation).
const Dim = 256

// Composition weights of the symbolic encoding (opcode, type, arguments),
// following IR2Vec's published heuristic weights.
const (
	wOpc  = 1.0
	wType = 0.5
	wArg  = 0.2
	// flowBeta damps the contribution of reaching definitions in the
	// flow-aware encoding.
	flowBeta = 0.3
)

// Encoder holds trained seed embeddings. Encoding is two-phase: Train (or
// Load) and optionally FitVocab mutate the entity table; after that, Encode
// is read-only and safe for concurrent use from any number of goroutines.
//
// Entities are interned: tab maps each token to a dense id and vecs holds
// the embedding of id i at vecs[i*Dim : (i+1)*Dim]. Relations (a handful
// of TransE edge labels, used only during Train) get the same layout in
// relTab/relVecs.
type Encoder struct {
	Dim  int
	Seed int64

	tab  *intern.Table
	vecs []float64

	relTab  *intern.Table
	relVecs []float64
}

// newEncoder returns an empty encoder shell with interning tables ready.
func newEncoder(dim int, seed int64) *Encoder {
	return &Encoder{Dim: dim, Seed: seed,
		tab: intern.New(), relTab: intern.New()}
}

// NumEntities reports the number of interned entity tokens (trained +
// vocabulary-fitted), i.e. the number of rows of the flat embedding table.
func (e *Encoder) NumEntities() int { return e.tab.Len() }

// vec returns the embedding row of an interned entity id.
func (e *Encoder) vec(id intern.ID) []float64 {
	off := int(id) * e.Dim
	return e.vecs[off : off+e.Dim : off+e.Dim]
}

// relVec returns the embedding row of an interned relation id.
func (e *Encoder) relVec(id intern.ID) []float64 {
	off := int(id) * e.Dim
	return e.relVecs[off : off+e.Dim : off+e.Dim]
}

// encoderState is the exported gob mirror of Encoder. Version 1 artifacts
// carried the entity table as the Ent map; the interned layout stores the
// id-ordered token list plus the flat value array instead. Decode accepts
// both: gob tolerates absent fields, so an old artifact populates Ent and
// a new one populates Toks/Vecs.
type encoderState struct {
	Dim  int
	Seed int64
	Ent  map[string][]float64 // v1 layout; nil when Toks/Vecs are set
	Rel  map[string][]float64
	Toks []string
	Vecs []float64
}

// GobEncode implements gob.GobEncoder, exposing the trained tables in the
// interned (v2) layout.
func (e *Encoder) GobEncode() ([]byte, error) {
	rel := map[string][]float64{}
	if e.relTab != nil {
		for i, tok := range e.relTab.Tokens() {
			rel[tok] = e.relVec(intern.ID(i))
		}
	}
	var toks []string
	if e.tab != nil {
		toks = e.tab.Tokens()
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(encoderState{
		Dim: e.Dim, Seed: e.Seed, Rel: rel,
		Toks: toks, Vecs: e.vecs})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder. It reads both the interned layout
// and the legacy v1 map layout, converting the latter to flat storage (in
// sorted token order, for deterministic re-serialisation).
func (e *Encoder) GobDecode(b []byte) error {
	var st encoderState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return err
	}
	if st.Dim <= 0 {
		return fmt.Errorf("ir2vec: corrupt encoder state: dim %d", st.Dim)
	}
	e.Dim, e.Seed = st.Dim, st.Seed
	e.tab, e.vecs = intern.New(), nil
	switch {
	case len(st.Toks) > 0 || len(st.Vecs) > 0:
		if len(st.Vecs) != len(st.Toks)*st.Dim {
			return fmt.Errorf("ir2vec: corrupt encoder state: %d tokens but %d values (dim %d)",
				len(st.Toks), len(st.Vecs), st.Dim)
		}
		e.tab = intern.FromTokens(st.Toks)
		if e.tab.Len() != len(st.Toks) {
			return fmt.Errorf("ir2vec: corrupt encoder state: duplicate entity tokens")
		}
		e.vecs = st.Vecs
	case st.Ent != nil:
		toks := make([]string, 0, len(st.Ent))
		for tok := range st.Ent {
			toks = append(toks, tok)
		}
		sort.Strings(toks)
		e.vecs = make([]float64, 0, len(toks)*st.Dim)
		for _, tok := range toks {
			v := st.Ent[tok]
			if len(v) != st.Dim {
				return fmt.Errorf("ir2vec: corrupt encoder state: entity %q has %d values (dim %d)",
					tok, len(v), st.Dim)
			}
			e.tab.Intern(tok)
			e.vecs = append(e.vecs, v...)
		}
	}
	e.relTab, e.relVecs = intern.New(), nil
	relToks := make([]string, 0, len(st.Rel))
	for tok := range st.Rel {
		relToks = append(relToks, tok)
	}
	sort.Strings(relToks)
	for _, tok := range relToks {
		v := st.Rel[tok]
		if len(v) != st.Dim {
			return fmt.Errorf("ir2vec: corrupt encoder state: relation %q has %d values (dim %d)",
				tok, len(v), st.Dim)
		}
		e.relTab.Intern(tok)
		e.relVecs = append(e.relVecs, v...)
	}
	return nil
}

// instrTokens extracts the (opcode, type, args) entity tokens of an
// instruction, shared with the ProGraML tokeniser so both models see the
// same vocabulary of program entities. Used on the mutating (fit) paths;
// the read-only Encode path assembles the same spellings in a scratch
// buffer instead.
func instrTokens(in *ir.Instr) (opc, typ string, args []string) {
	opc = graphs.InstrToken(in)
	typ = "type:" + in.Type().String()
	for _, a := range in.Args {
		switch x := a.(type) {
		case *ir.Const:
			args = append(args, graphs.ConstToken(x))
		default:
			args = append(args, graphs.VarToken(x.Type()))
		}
	}
	return
}

// triple is one (head, relation, tail) fact for TransE, in interned ids.
type triple struct {
	h, t intern.ID
	r    intern.ID
}

// extractTriples harvests relational facts from a corpus: opcode--type
// pairs, opcode--argument pairs, and sequential opcode--opcode pairs.
// Tokens are interned on first sight, so entity ids follow first-seen
// corpus order exactly like the legacy map-based implementation assigned
// embeddings.
func (e *Encoder) extractTriples(mods []*ir.Module) []triple {
	seen := map[triple]bool{}
	var out []triple
	add := func(tr triple) {
		if !seen[tr] {
			seen[tr] = true
			out = append(out, tr)
		}
	}
	relTypeof := e.relTab.Intern("typeof")
	relArg := e.relTab.Intern("arg")
	relNext := e.relTab.Intern("next")
	for _, m := range mods {
		for _, f := range m.Funcs {
			if f.Decl {
				continue
			}
			for _, b := range f.Blocks {
				prev := intern.ID(-1)
				for _, in := range b.Instrs {
					opc, typ, args := instrTokens(in)
					opcID := e.tab.Intern(opc)
					add(triple{h: opcID, r: relTypeof, t: e.tab.Intern(typ)})
					for _, a := range args {
						add(triple{h: opcID, r: relArg, t: e.tab.Intern(a)})
					}
					if prev >= 0 {
						add(triple{h: prev, r: relNext, t: opcID})
					}
					prev = opcID
				}
			}
		}
	}
	return out
}

// Train learns seed embeddings from the corpus with a margin-based TransE
// objective. The seed parameter is the "Seeds" knob studied in §V-A:
// changing it regenerates a different (but equally valid) embedding basis.
func Train(mods []*ir.Module, dim int, seed int64, epochs int) *Encoder {
	if dim <= 0 {
		dim = Dim
	}
	e := newEncoder(dim, seed)
	rng := rand.New(rand.NewSource(seed))
	triples := e.extractTriples(mods)
	// Initialise embeddings in first-seen triple order (head, tail, then
	// relation), drawing from the rng in exactly the sequence the legacy
	// map-based trainer used so trained tables stay bit-for-bit identical.
	e.vecs = make([]float64, e.tab.Len()*dim)
	e.relVecs = make([]float64, e.relTab.Len()*dim)
	entInit := make([]bool, e.tab.Len())
	relInit := make([]bool, e.relTab.Len())
	for _, tr := range triples {
		for _, id := range [2]intern.ID{tr.h, tr.t} {
			if !entInit[id] {
				entInit[id] = true
				fillRandUnit(rng, e.vec(id))
			}
		}
		if !relInit[tr.r] {
			relInit[tr.r] = true
			fillRandUnit(rng, e.relVec(tr.r))
		}
	}
	nEnt := e.tab.Len()
	if nEnt == 0 {
		return e
	}
	const (
		margin = 1.0
		lr     = 0.01
	)
	order := make([]int, len(triples))
	for i := range order {
		order[i] = i
	}
	for ep := 0; ep < epochs; ep++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, ti := range order {
			tr := triples[ti]
			h, r, t := e.vec(tr.h), e.relVec(tr.r), e.vec(tr.t)
			// Negative sample: corrupt the tail. Entity ids are assigned in
			// first-seen order, so sampling an id uniformly matches the
			// legacy draw from the first-seen entity list.
			neg := e.vec(intern.ID(rng.Intn(nEnt)))
			dPos := transDist(h, r, t)
			dNeg := transDist(h, r, neg)
			if dPos+margin <= dNeg {
				continue
			}
			// Gradient of max(0, margin + dPos - dNeg) wrt the embeddings,
			// with d(x) = ||h + r - x||^2 (squared L2 for simple gradients).
			for i := 0; i < dim; i++ {
				gp := 2 * (h[i] + r[i] - t[i])
				gn := 2 * (h[i] + r[i] - neg[i])
				h[i] -= lr * (gp - gn)
				r[i] -= lr * (gp - gn)
				t[i] -= lr * (-gp)
				neg[i] -= lr * gn
			}
		}
		// Renormalise entities to the unit ball.
		for id := 0; id < nEnt; id++ {
			v := e.vec(intern.ID(id))
			if n := tensor.VecNorm(v); n > 1 {
				tensor.VecScale(v, 1/n)
			}
		}
	}
	return e
}

func transDist(h, r, t []float64) float64 {
	s := 0.0
	for i := range h {
		d := h[i] + r[i] - t[i]
		s += d * d
	}
	return s
}

func randUnit(rng *rand.Rand, dim int) []float64 {
	v := make([]float64, dim)
	fillRandUnit(rng, v)
	return v
}

// fillRandUnit fills v with the N(0,1)/sqrt(dim) draw randUnit made.
func fillRandUnit(rng *rand.Rand, v []float64) {
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	tensor.VecScale(v, 1/math.Sqrt(float64(len(v))))
}

// fallback derives the deterministic embedding of an out-of-vocabulary
// entity from its FNV hash and the encoder seed.
func (e *Encoder) fallback(tok string) []float64 {
	hash := fnv.New64a()
	_, _ = hash.Write([]byte(tok))
	rng := rand.New(rand.NewSource(int64(hash.Sum64()) ^ e.Seed))
	return randUnit(rng, e.Dim)
}

// lookupToken resolves a token to its embedding: the interned row when
// present, a freshly derived deterministic fallback otherwise. Fit-phase
// and test helper; the Encode hot path uses the scratch-memoised
// lookupBytes instead.
func (e *Encoder) lookupToken(tok string) []float64 {
	if id, ok := e.tab.Resolve(tok); ok {
		return e.vec(id)
	}
	return e.fallback(tok)
}

// FitVocab precomputes fallback embeddings for every entity of the corpus
// that seed training did not cover, so subsequent Encode calls resolve all
// tokens with pure table hits. This is the optional second phase of the
// two-phase protocol: train (or load) the encoder, fit the corpus
// vocabulary once, then encode lock-free from any number of goroutines.
// FitVocab mutates the encoder and must not run concurrently with Encode.
func (e *Encoder) FitVocab(mods []*ir.Module) {
	fit := func(tok string) {
		if _, ok := e.tab.Resolve(tok); !ok {
			v := e.fallback(tok)
			e.tab.Intern(tok)
			e.vecs = append(e.vecs, v...)
		}
	}
	for _, m := range mods {
		for _, f := range m.Funcs {
			if f.Decl {
				continue
			}
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					opc, typ, args := instrTokens(in)
					for _, tok := range args {
						fit(tok)
					}
					fit(opc)
					fit(typ)
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Encoding (read-only hot path).
// ---------------------------------------------------------------------------

// instrPos locates an instruction inside the scratch state of the function
// currently being encoded; entries from previous functions are invalidated
// by the generation counter instead of by clearing the map.
type instrPos struct {
	gen uint32
	i   int32
}

// scratch is the pooled per-Encode working state: the reusable token
// buffer, the flat per-instruction vector storage (symbolic then
// flow-aware halves), the instruction index, reverse-postorder scratch,
// and the out-of-vocabulary fallback memo that replaced the per-call
// map allocation of the pre-interning implementation.
type scratch struct {
	gen  uint32
	buf  []byte
	vecs []float64 // 2*n*dim: rows [0,n) symbolic, rows [n,2n) flow-aware
	idx  map[*ir.Instr]instrPos
	done []uint32 // done[i] == gen once instruction i's flow vector is final

	seen  map[*ir.Block]uint32
	post  []*ir.Block
	order []*ir.Block

	oov map[string][]float64
}

var scratchPool = sync.Pool{New: func() any {
	return &scratch{
		idx:  map[*ir.Instr]instrPos{},
		seen: map[*ir.Block]uint32{},
		oov:  map[string][]float64{},
	}
}}

// release drops every module reference (map keys, block pointers in the
// RPO slices' backing arrays) before the scratch goes back to the pool,
// so an idle pool never pins dead IR. clear() keeps the map buckets and
// slice capacity, so steady-state encoding still allocates nothing.
func (s *scratch) release() {
	clear(s.oov)
	clear(s.idx)
	clear(s.seen)
	clear(s.post[:cap(s.post)])
	s.post = s.post[:0]
	clear(s.order[:cap(s.order)])
	s.order = s.order[:0]
	scratchPool.Put(s)
}

// grow readies the scratch for a function with n instructions.
func (s *scratch) grow(n, dim int) {
	if need := 2 * n * dim; cap(s.vecs) < need {
		s.vecs = make([]float64, need)
	} else {
		s.vecs = s.vecs[:need]
	}
	if cap(s.done) < n {
		s.done = make([]uint32, n)
	} else {
		s.done = s.done[:n]
	}
}

// dfs pushes b's postorder traversal into s.post, visiting successors in
// the same order as ir.ReversePostorder (branch target, then else target).
func (s *scratch) dfs(b *ir.Block) {
	s.seen[b] = s.gen
	if t := b.Term(); t != nil {
		switch t.Op {
		case ir.OpBr:
			if s.seen[t.Blocks[0]] != s.gen {
				s.dfs(t.Blocks[0])
			}
		case ir.OpCondBr:
			if s.seen[t.Blocks[0]] != s.gen {
				s.dfs(t.Blocks[0])
			}
			if s.seen[t.Blocks[1]] != s.gen {
				s.dfs(t.Blocks[1])
			}
		}
	}
	s.post = append(s.post, b)
}

// rpo computes f's reverse postorder into s.order without allocating,
// matching ir.ReversePostorder (unreachable blocks appended in declaration
// order).
func (s *scratch) rpo(f *ir.Func) []*ir.Block {
	s.post = s.post[:0]
	s.order = s.order[:0]
	if e := f.Entry(); e != nil {
		s.dfs(e)
	}
	for i := len(s.post) - 1; i >= 0; i-- {
		s.order = append(s.order, s.post[i])
	}
	for _, b := range f.Blocks {
		if s.seen[b] != s.gen {
			s.order = append(s.order, b)
		}
	}
	return s.order
}

// lookupBytes resolves a token assembled in the scratch buffer: an
// interned table row when known, otherwise a deterministic fallback
// memoised in the scratch for this call only (so repeated OOV tokens cost
// one computation without mutating the encoder's shared table).
func (e *Encoder) lookupBytes(tok []byte, s *scratch) []float64 {
	if id, ok := e.tab.ResolveBytes(tok); ok {
		return e.vec(id)
	}
	if v, ok := s.oov[string(tok)]; ok {
		return v
	}
	v := e.fallback(string(tok))
	s.oov[string(tok)] = v
	return v
}

// addInstrTokens accumulates the weighted entity embeddings of in into v:
// the symbolic per-instruction encoding.
func (e *Encoder) addInstrTokens(v []float64, in *ir.Instr, s *scratch) {
	s.buf = graphs.AppendInstrToken(s.buf[:0], in)
	tensor.VecAddScaled(v, wOpc, e.lookupBytes(s.buf, s))
	s.buf = in.Type().AppendString(append(s.buf[:0], "type:"...))
	tensor.VecAddScaled(v, wType, e.lookupBytes(s.buf, s))
	for _, a := range in.Args {
		switch x := a.(type) {
		case *ir.Const:
			s.buf = graphs.AppendConstToken(s.buf[:0], x)
		case *ir.Global:
			// Global.Type() materialises a fresh pointer type; spell the
			// token directly ("var:" + elem + "*") to keep encode
			// allocation-free.
			s.buf = append(x.Elem.AppendString(append(s.buf[:0], "var:"...)), '*')
		default:
			s.buf = graphs.AppendVarToken(s.buf[:0], a.Type())
		}
		tensor.VecAddScaled(v, wArg, e.lookupBytes(s.buf, s))
	}
}

// Encoding selects which of the two encodings to emit.
type Encoding int

// Encoding modes. The paper concatenates both (EncBoth); the symbolic- and
// flow-only modes exist for the design-choice ablation bench.
const (
	EncBoth Encoding = iota
	EncSymbolic
	EncFlowAware
)

// String names the encoding.
func (e Encoding) String() string {
	switch e {
	case EncSymbolic:
		return "symbolic"
	case EncFlowAware:
		return "flow-aware"
	default:
		return "concat"
	}
}

// EncodeMode returns the module vector under the chosen encoding mode:
// Dim features for a single encoding, 2*Dim for the concatenation.
func (e *Encoder) EncodeMode(m *ir.Module, mode Encoding) []float64 {
	full := e.Encode(m)
	switch mode {
	case EncSymbolic:
		return full[:e.Dim]
	case EncFlowAware:
		return full[e.Dim:]
	}
	return full
}

// Encode returns the concatenated [symbolic || flow-aware] vector of the
// module (2*Dim features). The returned slice is the only allocation on a
// vocabulary-fitted corpus; all intermediate state comes from a pooled
// scratch buffer.
func (e *Encoder) Encode(m *ir.Module) []float64 {
	return e.EncodeInto(nil, m)
}

// EncodeInto encodes m into dst (reallocated when too small), returning
// the 2*Dim feature slice. The arithmetic is exactly Encode's — callers
// batching many programs into one flat buffer get bit-identical features.
func (e *Encoder) EncodeInto(dst []float64, m *ir.Module) []float64 {
	if cap(dst) < 2*e.Dim {
		dst = make([]float64, 2*e.Dim)
	} else {
		dst = dst[:2*e.Dim]
		for i := range dst {
			dst[i] = 0
		}
	}
	s := scratchPool.Get().(*scratch)
	e.encodeInto(dst, m, s)
	s.release()
	return dst
}

// EncodeBatch encodes every module into one flat [len(mods) × 2*Dim]
// buffer (program i at out[i*2*Dim : (i+1)*2*Dim]), sharing one pooled
// scratch across the whole batch so n programs cost one scratch checkout
// and a single output allocation.
func (e *Encoder) EncodeBatch(mods []*ir.Module) []float64 {
	out := make([]float64, len(mods)*2*e.Dim)
	s := scratchPool.Get().(*scratch)
	for i, m := range mods {
		e.encodeInto(out[i*2*e.Dim:(i+1)*2*e.Dim], m, s)
	}
	s.release()
	return out
}

// encodeInto accumulates m's feature vector into the zeroed 2*Dim slice
// out using the caller's scratch.
func (e *Encoder) encodeInto(out []float64, m *ir.Module, s *scratch) {
	sym := out[:e.Dim]
	flow := out[e.Dim:]
	for _, f := range m.Funcs {
		if f.Decl {
			continue
		}
		s.gen++
		n := 0
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
		s.grow(n, e.Dim)
		symOf := func(i int32) []float64 {
			off := int(i) * e.Dim
			return s.vecs[off : off+e.Dim : off+e.Dim]
		}
		flowOf := func(i int32) []float64 {
			off := (n + int(i)) * e.Dim
			return s.vecs[off : off+e.Dim : off+e.Dim]
		}
		// Per-instruction symbolic vectors.
		i := int32(0)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				s.idx[in] = instrPos{gen: s.gen, i: i}
				v := symOf(i)
				for j := range v {
					v[j] = 0
				}
				e.addInstrTokens(v, in, s)
				tensor.VecAdd(sym, v)
				i++
			}
		}
		// Flow-aware: propagate reaching-definition vectors along use-def
		// chains in reverse postorder (back edges see the defs computed so
		// far, damped by flowBeta).
		for _, b := range s.rpo(f) {
			for _, in := range b.Instrs {
				pos := s.idx[in]
				v := flowOf(pos.i)
				copy(v, symOf(pos.i))
				for _, a := range in.Args {
					if dep, ok := a.(*ir.Instr); ok {
						if dp, ok := s.idx[dep]; ok && dp.gen == s.gen {
							if s.done[dp.i] == s.gen {
								tensor.VecAddScaled(v, flowBeta, flowOf(dp.i))
							} else {
								tensor.VecAddScaled(v, flowBeta, symOf(dp.i))
							}
						}
					}
				}
				s.done[pos.i] = s.gen
				tensor.VecAdd(flow, v)
			}
		}
	}
}

// Norm selects a feature normalisation strategy (Table IV: none, vector,
// index).
type Norm int

// Normalisation modes.
const (
	NormNone Norm = iota
	NormVector
	NormIndex
)

// String returns the Table IV spelling.
func (n Norm) String() string {
	switch n {
	case NormNone:
		return "none"
	case NormVector:
		return "vector"
	case NormIndex:
		return "index"
	}
	return "?"
}

// Normalizer applies one of the three modes. Index normalisation is fitted
// on the training features and then applied to validation features.
type Normalizer struct {
	Mode  Norm
	scale []float64 // per-coordinate, for NormIndex
}

// normalizerState is the exported gob mirror of Normalizer.
type normalizerState struct {
	Mode  Norm
	Scale []float64
}

// GobEncode implements gob.GobEncoder.
func (n *Normalizer) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(normalizerState{Mode: n.Mode, Scale: n.scale})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (n *Normalizer) GobDecode(b []byte) error {
	var st normalizerState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return err
	}
	n.Mode, n.scale = st.Mode, st.Scale
	return nil
}

// FitNormalizer prepares a normalizer from training features.
func FitNormalizer(mode Norm, train [][]float64) *Normalizer {
	n := &Normalizer{Mode: mode}
	if mode == NormIndex && len(train) > 0 {
		n.scale = make([]float64, len(train[0]))
		for _, v := range train {
			for i, x := range v {
				if a := math.Abs(x); a > n.scale[i] {
					n.scale[i] = a
				}
			}
		}
	}
	return n
}

// Apply normalises one feature vector (returning a fresh slice).
func (n *Normalizer) Apply(v []float64) []float64 {
	out := append([]float64(nil), v...)
	switch n.Mode {
	case NormNone:
	case NormVector:
		if m := tensor.VecMaxAbs(out); m > 0 {
			tensor.VecScale(out, 1/m)
		}
	case NormIndex:
		for i := range out {
			if i < len(n.scale) && n.scale[i] > 0 {
				out[i] /= n.scale[i]
			}
		}
	}
	return out
}

// ApplyAll normalises a batch.
func (n *Normalizer) ApplyAll(vs [][]float64) [][]float64 {
	out := make([][]float64, len(vs))
	for i, v := range vs {
		out[i] = n.Apply(v)
	}
	return out
}
