package ir2vec

import (
	"math"
	"testing"

	. "mpidetect/internal/ast"
	"mpidetect/internal/ir"
	"mpidetect/internal/irgen"
	"mpidetect/internal/tensor"
)

func progWith(send bool) *ir.Module {
	stmts := MPIBoilerplate()
	body := []Stmt{DeclArr("buf", 4, Int)}
	if send {
		body = append(body,
			CallS("MPI_Send", Id("buf"), I(4), Id("MPI_INT"), I(1), I(3), Id("MPI_COMM_WORLD")))
	} else {
		body = append(body,
			CallS("MPI_Recv", Id("buf"), I(4), Id("MPI_INT"), I(1), I(3), Id("MPI_COMM_WORLD"), Id("MPI_STATUS_IGNORE")))
	}
	stmts = append(stmts, body...)
	stmts = append(stmts, Finalize())
	return irgen.MustLower(MainProgram("p", stmts...))
}

func TestTrainAndEncode(t *testing.T) {
	m1, m2 := progWith(true), progWith(false)
	enc := Train([]*ir.Module{m1, m2}, 32, 1, 10)
	v1 := enc.Encode(m1)
	v2 := enc.Encode(m2)
	if len(v1) != 64 || len(v2) != 64 {
		t.Fatalf("encoding length %d, want 64 (2x dim)", len(v1))
	}
	if tensor.VecDist(v1, v2) == 0 {
		t.Error("different programs encoded identically")
	}
	// Identical programs encode identically.
	if tensor.VecDist(v1, enc.Encode(progWith(true))) != 0 {
		t.Error("identical programs encoded differently")
	}
}

func TestSimilarProgramsCloserThanDifferent(t *testing.T) {
	send := progWith(true)
	send2 := progWith(true)
	recv := progWith(false)
	enc := Train([]*ir.Module{send, recv}, 32, 1, 10)
	same := tensor.VecDist(enc.Encode(send), enc.Encode(send2))
	diff := tensor.VecDist(enc.Encode(send), enc.Encode(recv))
	if same > diff {
		t.Errorf("identical programs farther (%f) than different ones (%f)", same, diff)
	}
}

func TestSeedChangesEmbedding(t *testing.T) {
	m := progWith(true)
	e1 := Train([]*ir.Module{m}, 16, 1, 5)
	e2 := Train([]*ir.Module{m}, 16, 999, 5)
	if tensor.VecDist(e1.Encode(m), e2.Encode(m)) == 0 {
		t.Error("different seeds produced identical embeddings")
	}
}

func TestFallbackLookupIsDeterministic(t *testing.T) {
	e1 := Train(nil, 16, 5, 1)
	e2 := Train(nil, 16, 5, 1)
	a := e1.lookupToken("some-unseen-token")
	b := e2.lookupToken("some-unseen-token")
	if tensor.VecDist(a, b) != 0 {
		t.Error("fallback embedding not deterministic across encoders")
	}
	c := e1.lookupToken("other-token")
	if tensor.VecDist(a, c) == 0 {
		t.Error("distinct tokens share a fallback embedding")
	}
}

func TestNormalizerVector(t *testing.T) {
	n := FitNormalizer(NormVector, nil)
	v := n.Apply([]float64{2, -8, 4})
	if tensor.VecMaxAbs(v) != 1 {
		t.Errorf("vector norm max = %f, want 1", tensor.VecMaxAbs(v))
	}
	if v[1] != -1 || v[0] != 0.25 {
		t.Errorf("vector norm wrong: %v", v)
	}
}

func TestNormalizerIndex(t *testing.T) {
	train := [][]float64{{2, 10}, {-4, 5}}
	n := FitNormalizer(NormIndex, train)
	v := n.Apply([]float64{2, 5})
	if math.Abs(v[0]-0.5) > 1e-12 || math.Abs(v[1]-0.5) > 1e-12 {
		t.Errorf("index norm wrong: %v", v)
	}
}

func TestNormalizerNoneIsIdentity(t *testing.T) {
	n := FitNormalizer(NormNone, nil)
	in := []float64{3, -7, 11}
	out := n.Apply(in)
	for i := range in {
		if in[i] != out[i] {
			t.Fatal("NormNone modified features")
		}
	}
	// And must not alias the input.
	out[0] = 99
	if in[0] == 99 {
		t.Error("Apply aliased its input")
	}
}

func TestFlowAwareDiffersFromSymbolic(t *testing.T) {
	m := progWith(true)
	enc := Train([]*ir.Module{m}, 16, 1, 5)
	v := enc.Encode(m)
	sym, flow := v[:16], v[16:]
	if tensor.VecDist(sym, flow) == 0 {
		t.Error("flow-aware encoding identical to symbolic")
	}
}
