//go:build !race

package ir2vec

const raceEnabled = false
