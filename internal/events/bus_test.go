package events

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// recv pops one event or fails after a deadline — Publish never blocks,
// so every expected delivery should already be buffered.
func recv(t *testing.T, s *Subscription) Event {
	t.Helper()
	select {
	case ev, ok := <-s.C():
		if !ok {
			t.Fatal("subscription channel closed")
		}
		return ev
	case <-time.After(2 * time.Second):
		t.Fatal("no event within deadline")
	}
	panic("unreachable")
}

func TestPublishDeliversToAllSubscribers(t *testing.T) {
	b := NewBus()
	s1 := b.Subscribe(4)
	s2 := b.Subscribe(4)
	defer s1.Close()
	defer s2.Close()

	pub := b.Publish(ModelReloaded, map[string]string{"model": "m"})
	if pub.Seq == 0 {
		t.Fatal("published event missing sequence number")
	}
	for _, s := range []*Subscription{s1, s2} {
		ev := recv(t, s)
		if ev.Type != ModelReloaded || ev.Seq != pub.Seq {
			t.Fatalf("got %+v, want type %s seq %d", ev, ModelReloaded, pub.Seq)
		}
		if ev.Time.IsZero() {
			t.Fatal("event not timestamped")
		}
	}
	if st := b.Stats(); st.Published != 1 || st.Delivered != 2 || st.Subscribers != 2 {
		t.Fatalf("stats %+v: want 1 published, 2 delivered, 2 subscribers", st)
	}
}

func TestTypeFilter(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(4, VerdictCompleted, JobUpdated)
	defer s.Close()

	b.Publish(ModelReloaded, nil) // filtered out
	b.Publish(VerdictCompleted, "v")
	b.Publish(CacheInvalidated, nil) // filtered out
	b.Publish(JobUpdated, "j")

	if ev := recv(t, s); ev.Type != VerdictCompleted {
		t.Fatalf("first event %s, want %s", ev.Type, VerdictCompleted)
	}
	if ev := recv(t, s); ev.Type != JobUpdated {
		t.Fatalf("second event %s, want %s", ev.Type, JobUpdated)
	}
	select {
	case ev := <-s.C():
		t.Fatalf("filter leaked event %+v", ev)
	default:
	}
}

func TestSequenceNumbersAreMonotonic(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(8)
	defer s.Close()
	for i := 0; i < 5; i++ {
		b.Publish(VerdictCompleted, i)
	}
	var last uint64
	for i := 0; i < 5; i++ {
		ev := recv(t, s)
		if ev.Seq <= last {
			t.Fatalf("seq went %d -> %d, want strictly increasing", last, ev.Seq)
		}
		last = ev.Seq
	}
}

// TestSlowSubscriberDropsInsteadOfBlocking is the backpressure contract:
// a full buffer costs the subscriber events, never the publisher time.
func TestSlowSubscriberDropsInsteadOfBlocking(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(2)
	defer s.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			b.Publish(VerdictCompleted, i)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Publish blocked on a slow subscriber")
	}
	if got := s.Dropped(); got != 8 {
		t.Fatalf("dropped %d events, want 8 (buffer 2, published 10)", got)
	}
	if st := b.Stats(); st.Dropped != 8 || st.Delivered != 2 {
		t.Fatalf("bus stats %+v: want 8 dropped, 2 delivered", st)
	}
	// The two buffered events arrived in order.
	if ev := recv(t, s); ev.Data != 0 {
		t.Fatalf("first buffered event %v, want 0", ev.Data)
	}
	if ev := recv(t, s); ev.Data != 1 {
		t.Fatalf("second buffered event %v, want 1", ev.Data)
	}
}

func TestCloseStopsDeliveryAndIsIdempotent(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(4)
	s.Close()
	s.Close() // must not panic
	b.Publish(VerdictCompleted, nil)
	if _, ok := <-s.C(); ok {
		t.Fatal("closed subscription still received an event")
	}
	if st := b.Stats(); st.Subscribers != 0 || st.Delivered != 0 {
		t.Fatalf("stats %+v after close: want 0 subscribers, 0 delivered", st)
	}
}

// TestConcurrentPublishSubscribeClose hammers the bus from many
// goroutines; run under -race (CI does) to prove the fan-out, subscribe,
// and close paths are data-race free.
func TestConcurrentPublishSubscribeClose(t *testing.T) {
	b := NewBus()
	const publishers = 4
	const churners = 4
	const iters = 200

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				b.Publish(VerdictCompleted, fmt.Sprintf("p%d-%d", p, i))
			}
		}(p)
	}
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s := b.Subscribe(1, VerdictCompleted)
				select {
				case <-s.C():
				default:
				}
				s.Close()
			}
		}()
	}
	wg.Wait()
	if st := b.Stats(); st.Published != publishers*iters {
		t.Fatalf("published %d, want %d", st.Published, publishers*iters)
	}
	if st := b.Stats(); st.Subscribers != 0 {
		t.Fatalf("%d subscribers leaked", st.Subscribers)
	}
}
