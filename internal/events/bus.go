// Package events is a typed in-process publish/subscribe bus for the
// serving tier. The engine publishes verdict completions, cache
// invalidations, model reloads, and async-job transitions; any number of
// subscribers — the HTTP transport's GET /v1/events stream, tests, or
// future replication hooks — receive them on buffered channels.
//
// Delivery is best-effort and never blocks the publisher: each
// subscription owns a bounded buffer, and an event that does not fit is
// dropped for that subscriber (and counted, per subscription and
// bus-wide). That is the right contract for an observability surface on
// a hot serving path — a slow SSE client must not be able to apply
// backpressure to the engine's workers. Subscribers that need loss-free
// history belong on the job-results API, not the bus.
package events

import (
	"sync"
	"sync/atomic"
	"time"
)

// Type names one kind of event. Types are dot-namespaced strings so the
// wire encoding (SSE event names, JSON) needs no mapping table.
type Type string

// The event types published by the serving engine.
const (
	// VerdictCompleted fires once per analyzed program (sync, batch, and
	// job paths alike) when its ensemble verdict is ready.
	VerdictCompleted Type = "verdict.completed"
	// CacheInvalidated fires when a cache sweep removes entries (model
	// reload, tool replacement, explicit invalidation).
	CacheInvalidated Type = "cache.invalidated"
	// ModelReloaded fires when a registry slot is written (initial
	// registration or replacement).
	ModelReloaded Type = "model.reloaded"
	// JobUpdated fires on every async-job state transition
	// (queued -> running -> completed/failed/canceled).
	JobUpdated Type = "job.updated"
	// SnapshotCreated fires when an admin snapshot of the durable
	// verdict store lands on disk.
	SnapshotCreated Type = "snapshot.created"
	// StoreCompacted fires when the durable store finishes a compaction
	// pass (automatic at segment roll, or explicit).
	StoreCompacted Type = "store.compacted"
	// FaultRecovered fires when a pooled goroutine recovers a panic
	// (classify worker, tool runner, job worker, tier writer) instead of
	// crashing the process.
	FaultRecovered Type = "fault.recovered"
	// BreakerUpdated fires on every circuit-breaker state transition
	// (a tool breaker tripping or closing, the store tier changing mode).
	BreakerUpdated Type = "breaker.updated"
	// RouterEjected fires when the front-tier router ejects a backend
	// from its hash ring (health probes or proxy failures tripped the
	// backend's breaker).
	RouterEjected Type = "router.ejected"
	// RouterReadmitted fires when an ejected backend passes its half-open
	// probe and rejoins the router's hash ring.
	RouterReadmitted Type = "router.readmitted"
)

// Event is one published occurrence. Seq is a bus-wide monotonically
// increasing sequence number, so a subscriber can detect its own gaps
// (drops) by watching for holes.
type Event struct {
	Seq  uint64    `json:"seq"`
	Type Type      `json:"type"`
	Time time.Time `json:"time"`
	Data any       `json:"data,omitempty"`
}

// Stats is a point-in-time snapshot of the bus counters, shaped for
// direct JSON encoding by GET /v1/stats.
type Stats struct {
	Published   int64 `json:"published"`
	Delivered   int64 `json:"delivered"`
	Dropped     int64 `json:"dropped"`
	Subscribers int64 `json:"subscribers"`
}

// DefaultBuffer is the per-subscription channel capacity used when
// Subscribe is called with a non-positive buffer.
const DefaultBuffer = 64

// Subscription is one subscriber's view of the bus. Receive from C();
// Close when done (idempotent). After Close, C() is closed.
type Subscription struct {
	bus     *Bus
	ch      chan Event
	types   map[Type]struct{} // nil = all types
	dropped atomic.Int64
	once    sync.Once
}

// C returns the subscription's event channel. It is closed by Close.
func (s *Subscription) C() <-chan Event { return s.ch }

// Dropped reports how many events were discarded for this subscriber
// because its buffer was full.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Close unregisters the subscription and closes its channel. Safe to
// call more than once and concurrently with Publish.
func (s *Subscription) Close() {
	s.once.Do(func() {
		s.bus.mu.Lock()
		delete(s.bus.subs, s)
		s.bus.mu.Unlock()
		// Publish only sends while holding bus.mu and the subscription is
		// registered, so no send can race this close.
		close(s.ch)
	})
}

// wants reports whether the subscription's type filter admits t.
func (s *Subscription) wants(t Type) bool {
	if s.types == nil {
		return true
	}
	_, ok := s.types[t]
	return ok
}

// Bus is a typed pub/sub bus. The zero value is not usable; construct
// with NewBus.
type Bus struct {
	mu   sync.Mutex
	subs map[*Subscription]struct{}
	seq  atomic.Uint64

	published atomic.Int64
	delivered atomic.Int64
	dropped   atomic.Int64
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{subs: map[*Subscription]struct{}{}}
}

// Subscribe registers a new subscriber. buffer sizes its channel
// (DefaultBuffer when non-positive); types filters delivery to the named
// event types (none = every type).
func (b *Bus) Subscribe(buffer int, types ...Type) *Subscription {
	if buffer <= 0 {
		buffer = DefaultBuffer
	}
	s := &Subscription{bus: b, ch: make(chan Event, buffer)}
	if len(types) > 0 {
		s.types = make(map[Type]struct{}, len(types))
		for _, t := range types {
			s.types[t] = struct{}{}
		}
	}
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	return s
}

// Publish delivers an event to every matching subscriber without ever
// blocking: a subscriber whose buffer is full loses this event (counted
// on the subscription and the bus). Returns the published event, Seq and
// Time stamped.
func (b *Bus) Publish(t Type, data any) Event {
	ev := Event{Seq: b.seq.Add(1), Type: t, Time: time.Now(), Data: data}
	b.published.Add(1)
	b.mu.Lock()
	for s := range b.subs {
		if !s.wants(t) {
			continue
		}
		select {
		case s.ch <- ev:
			b.delivered.Add(1)
		default:
			s.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
	b.mu.Unlock()
	return ev
}

// Stats snapshots the counters.
func (b *Bus) Stats() Stats {
	b.mu.Lock()
	n := len(b.subs)
	b.mu.Unlock()
	return Stats{
		Published:   b.published.Load(),
		Delivered:   b.delivered.Load(),
		Dropped:     b.dropped.Load(),
		Subscribers: int64(n),
	}
}
