package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !Equalish(got, want, 1e-12) {
		t.Errorf("matmul = %v", got.Data)
	}
}

func TestTransposedMatMulsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 4, 3, 1)
	b := Randn(rng, 4, 5, 1)
	// aT @ b via MatMulATB must equal explicit transpose multiply.
	at := New(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	if !Equalish(MatMulATB(a, b), MatMul(at, b), 1e-12) {
		t.Error("MatMulATB disagrees with explicit transpose")
	}
	c := Randn(rng, 5, 3, 1)
	ct := New(3, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			ct.Set(j, i, c.At(i, j))
		}
	}
	if !Equalish(MatMulABT(a.Clone(), c), MatMul(a, ct), 1e-12) {
		t.Error("MatMulABT disagrees with explicit transpose")
	}
}

func TestQuickMatMulLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(s float64) bool {
		if math.IsNaN(s) || math.IsInf(s, 0) || math.Abs(s) > 1e6 {
			return true
		}
		a := Randn(rng, 3, 3, 1)
		b := Randn(rng, 3, 3, 1)
		// (s*a) @ b == s * (a @ b)
		sa := a.Clone()
		ScaleInPlace(sa, s)
		left := MatMul(sa, b)
		right := MatMul(a, b)
		ScaleInPlace(right, s)
		return Equalish(left, right, 1e-6*math.Max(1, math.Abs(s)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestVecHelpers(t *testing.T) {
	v := []float64{3, -4}
	if VecNorm(v) != 5 {
		t.Errorf("norm = %f", VecNorm(v))
	}
	if VecMaxAbs(v) != 4 {
		t.Errorf("maxabs = %f", VecMaxAbs(v))
	}
	if VecDist([]float64{0, 0}, v) != 5 {
		t.Errorf("dist = %f", VecDist([]float64{0, 0}, v))
	}
	dst := []float64{1, 1}
	VecAddScaled(dst, 2, v)
	if dst[0] != 7 || dst[1] != -7 {
		t.Errorf("addscaled = %v", dst)
	}
}

func TestAddScaleZero(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := a.Clone()
	AddInPlace(a, b)
	if a.At(1, 1) != 8 {
		t.Errorf("add = %v", a.Data)
	}
	a.Zero()
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("zero failed")
		}
	}
}

func TestXavierInitScale(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := XavierInit(rng, 100, 100)
	var sumsq float64
	for _, v := range m.Data {
		sumsq += v * v
	}
	std := math.Sqrt(sumsq / float64(len(m.Data)))
	want := math.Sqrt(2.0 / 200)
	if math.Abs(std-want) > 0.02 {
		t.Errorf("xavier std %f, want ~%f", std, want)
	}
}
