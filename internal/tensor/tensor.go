// Package tensor provides the dense float64 matrix kernels underneath the
// autodiff engine and the neural layers. The kernels are written for cache
// friendliness (row-major, k-loop hoisting) since the GNN training loop is
// dominated by small dense matmuls.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Mat is a row-major dense matrix.
type Mat struct {
	R, C int
	Data []float64
}

// New returns a zeroed R×C matrix.
func New(r, c int) *Mat {
	return &Mat{R: r, C: c, Data: make([]float64, r*c)}
}

// FromSlice wraps data (length r*c) into a matrix without copying.
func FromSlice(r, c int, data []float64) *Mat {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: FromSlice %dx%d with %d values", r, c, len(data)))
	}
	return &Mat{R: r, C: c, Data: data}
}

// Randn fills a new R×C matrix with N(0, std²) entries from rng.
func Randn(rng *rand.Rand, r, c int, std float64) *Mat {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// XavierInit returns a matrix initialised with Glorot scaling.
func XavierInit(rng *rand.Rand, r, c int) *Mat {
	return Randn(rng, r, c, math.Sqrt(2.0/float64(r+c)))
}

// At returns m[i,j].
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.C+j] }

// Set assigns m[i,j] = v.
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.C+j] = v }

// Row returns the i-th row as a slice view.
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.C : (i+1)*m.C] }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	out := New(m.R, m.C)
	copy(out.Data, m.Data)
	return out
}

// Zero clears the matrix in place.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Mat) {
	if a.R != b.R || a.C != b.C {
		panic("tensor: AddInPlace shape mismatch")
	}
	ad := a.Data[:len(b.Data)]
	for i, v := range b.Data {
		ad[i] += v
	}
}

// ScaleInPlace multiplies every entry by s.
func ScaleInPlace(a *Mat, s float64) {
	for i := range a.Data {
		a.Data[i] *= s
	}
}

// Equalish reports whether two matrices match within tol.
func Equalish(a, b *Mat, tol float64) bool {
	if a.R != b.R || a.C != b.C {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Vector helpers used by IR2Vec (plain []float64 embeddings).
// ---------------------------------------------------------------------------

// VecAdd accumulates src into dst.
func VecAdd(dst, src []float64) {
	for i := range src {
		dst[i] += src[i]
	}
}

// VecAddScaled accumulates s*src into dst.
func VecAddScaled(dst []float64, s float64, src []float64) {
	for i := range src {
		dst[i] += s * src[i]
	}
}

// VecScale multiplies v by s in place.
func VecScale(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// VecMaxAbs returns max |v_i|.
func VecMaxAbs(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// VecNorm returns the L2 norm.
func VecNorm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// VecDist returns the L2 distance between a and b.
func VecDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
