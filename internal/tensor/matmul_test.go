package tensor

import (
	"math/rand"
	"runtime"
	"testing"
)

// refMatMul is the pre-blocking serial kernel, kept verbatim as the
// bit-exactness reference: every dispatch path (fast, blocked, parallel)
// must reproduce it exactly, not approximately.
func refMatMul(a, b *Mat) *Mat {
	out := New(a.R, b.C)
	for i := 0; i < a.R; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

func refMatMulATB(a, b *Mat) *Mat {
	out := New(a.C, b.C)
	for k := 0; k < a.R; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

func refMatMulABT(a, b *Mat) *Mat {
	out := New(a.R, b.R)
	for i := 0; i < a.R; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.R; j++ {
			brow := b.Row(j)
			s := 0.0
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
	return out
}

// sparseRandn mixes negatives and exact zeros (post-ReLU activations) so
// the zero-skip paths are exercised.
func sparseRandn(rng *rand.Rand, r, c int) *Mat {
	m := New(r, c)
	for i := range m.Data {
		switch rng.Intn(4) {
		case 0: // leave exact zero
		default:
			m.Data[i] = rng.NormFloat64()
		}
	}
	return m
}

func bitEqual(t *testing.T, name string, got, want *Mat) {
	t.Helper()
	if got.R != want.R || got.C != want.C {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.R, got.C, want.R, want.C)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d = %v, want %v (not bit-identical)", name, i, got.Data[i], want.Data[i])
		}
	}
}

// TestMatMulBitExact drives every kernel over shapes that hit the fast
// column paths, the blocked path (k > matmulBlockK) and ragged tails, and
// requires exact equality with the reference kernels.
func TestMatMulBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 4}, {7, 16, 1}, {1, 9, 8},
		{65, matmulBlockK + 37, 31}, {16, 3, 300}, {300, 5, 2},
	}
	for _, sh := range shapes {
		a := sparseRandn(rng, sh.m, sh.k)
		b := sparseRandn(rng, sh.k, sh.n)
		bitEqual(t, "MatMul", MatMul(a, b), refMatMul(a, b))

		at := sparseRandn(rng, sh.k, sh.m)
		bitEqual(t, "MatMulATB", MatMulATB(at, b), refMatMulATB(at, b))

		bt := sparseRandn(rng, sh.n, sh.k)
		bitEqual(t, "MatMulABT", MatMulABT(a, bt), refMatMulABT(a, bt))
	}
}

// TestMatMulParallelBitExact forces the parallel dispatch (overriding the
// worker cap) and checks the fan-out changes nothing — each output row is
// owned by one goroutine, so results must stay bit-identical.
func TestMatMulParallelBitExact(t *testing.T) {
	old := matmulWorkers
	matmulWorkers = 8
	defer func() { matmulWorkers = old }()
	rng := rand.New(rand.NewSource(23))
	a := sparseRandn(rng, 200, 300)
	b := sparseRandn(rng, 300, 150)
	bitEqual(t, "MatMul", MatMul(a, b), refMatMul(a, b))
	at := sparseRandn(rng, 300, 200)
	bitEqual(t, "MatMulATB", MatMulATB(at, b), refMatMulATB(at, b))
	bt := sparseRandn(rng, 150, 300)
	bitEqual(t, "MatMulABT", MatMulABT(a, bt), refMatMulABT(a, bt))
	// Column-vector fast paths under parallel dispatch.
	col := sparseRandn(rng, 300, 1)
	bitEqual(t, "MatMul(col)", MatMul(a, col), refMatMul(a, col))
	bitEqual(t, "MatMulATB(col)", MatMulATB(at, col), refMatMulATB(at, col))
	acol := sparseRandn(rng, 200, 1)
	bcol := sparseRandn(rng, 150, 1)
	bitEqual(t, "MatMulABT(col)", MatMulABT(acol, bcol), refMatMulABT(acol, bcol))
}

// TestMatMulABTAddIntoAccumulates checks the fused accumulate matches the
// two-step temporary + AddInPlace it replaces.
func TestMatMulABTAddIntoAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := sparseRandn(rng, 20, 30)
	b := sparseRandn(rng, 25, 30)
	acc := sparseRandn(rng, 20, 25)
	want := acc.Clone()
	AddInPlace(want, refMatMulABT(a, b))
	MatMulABTAddInto(acc, a, b)
	bitEqual(t, "MatMulABTAddInto", acc, want)
}

func benchPair(n int) (*Mat, *Mat) {
	rng := rand.New(rand.NewSource(7))
	return sparseRandn(rng, n, n), sparseRandn(rng, n, n)
}

// BenchmarkMatMulLarge measures the blocked kernel on a cache-overflowing
// square matmul; BenchmarkMatMulLargeParallel adds the row fan-out (equal
// on 1-core hosts, scaling with GOMAXPROCS beyond that).
func BenchmarkMatMulLarge(b *testing.B) {
	x, y := benchPair(512)
	out := New(512, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Zero()
		MatMulInto(out, x, y)
	}
}

func BenchmarkMatMulLargeParallel(b *testing.B) {
	old := matmulWorkers
	matmulWorkers = runtime.GOMAXPROCS(0)
	defer func() { matmulWorkers = old }()
	x, y := benchPair(512)
	out := New(512, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Zero()
		MatMulInto(out, x, y)
	}
}
