// Dense matmul kernels. Three layouts cover the autodiff engine's forward
// and backward passes without materialising transposes: a@b, aᵀ@b and
// a@bᵀ. Each has an Into variant writing a caller-provided output (the
// tape arena's reuse path), a column-vector fast path (the GATv2 attention
// score and its backward are E×1 shapes where generic row indexing costs
// more than the arithmetic), k-blocked tiling for panels that overflow
// cache, and a row-parallel dispatch above a flop cutover.
//
// Every variant preserves the serial kernels' exact floating-point
// behaviour: each output element accumulates its k-terms in ascending
// order from +0, with the same zero-skip tests, and parallel dispatch
// partitions output rows so no element is touched by two goroutines.
// Results are therefore bit-identical across serial, blocked and parallel
// paths — training runs stay reproducible no matter the host.
package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

const (
	// matmulBlockK is the k-tile: one tile of b (matmulBlockK rows) stays
	// resident in cache while a streams past it.
	matmulBlockK = 256
	// matmulParallelFlops is the minimum multiply-accumulate count per
	// goroutine; below ~64k flops the fan-out overhead beats the win.
	matmulParallelFlops = 1 << 16
)

// matmulWorkers caps the fan-out (tests override it to force the parallel
// path on small shapes).
var matmulWorkers = runtime.GOMAXPROCS(0)

// axpy computes y[j] += a*x[j], 4-way unrolled. Every y element keeps its
// single accumulator and one product, so the result is bit-identical to
// the plain loop — elements are independent; only loop bookkeeping is
// amortised.
// dotSeq computes the dot product with ONE sequential accumulator (s
// grows strictly in k order, exactly like the plain loop — multi-
// accumulator unrolling would reorder the sum and change bits). Only the
// loop bookkeeping is unrolled.
func dotSeq(x, y []float64) float64 {
	y = y[:len(x)]
	s := 0.0
	j := 0
	for ; j+4 <= len(x); j += 4 {
		s += x[j] * y[j]
		s += x[j+1] * y[j+1]
		s += x[j+2] * y[j+2]
		s += x[j+3] * y[j+3]
	}
	for ; j < len(x); j++ {
		s += x[j] * y[j]
	}
	return s
}

func axpy(a float64, x, y []float64) {
	x = x[:len(y)]
	j := 0
	for ; j+4 <= len(y); j += 4 {
		y[j] += a * x[j]
		y[j+1] += a * x[j+1]
		y[j+2] += a * x[j+2]
		y[j+3] += a * x[j+3]
	}
	for ; j < len(y); j++ {
		y[j] += a * x[j]
	}
}

// matmulSpan partitions rows into contiguous chunks of at least
// minRowsPer and runs body(lo, hi) for each, in parallel when more than
// one chunk results. Each output row belongs to exactly one chunk, so
// per-element accumulation order is unchanged.
func matmulSpan(rows int, flopsPerRow int, body func(lo, hi int)) {
	workers := matmulWorkers
	if flopsPerRow > 0 {
		if byFlops := rows * flopsPerRow / matmulParallelFlops; byFlops < workers {
			workers = byFlops
		}
	}
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		body(0, rows)
		return
	}
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul computes a @ b into a new matrix.
func MatMul(a, b *Mat) *Mat {
	out := New(a.R, b.C)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes a @ b into out, which must be zeroed and R×C shaped.
func MatMulInto(out, a, b *Mat) {
	if a.C != b.R {
		panic(fmt.Sprintf("tensor: matmul %dx%d @ %dx%d", a.R, a.C, b.R, b.C))
	}
	if out.R != a.R || out.C != b.C {
		panic(fmt.Sprintf("tensor: matmul into %dx%d, want %dx%d", out.R, out.C, a.R, b.C))
	}
	if b.C == 1 {
		// Column-vector product: a dot per output row, b.Data contiguous.
		bcol := b.Data
		matmulSpan(a.R, a.C, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				arow := a.Row(i)
				s := 0.0
				for k, av := range arow {
					if av == 0 {
						continue
					}
					s += av * bcol[k]
				}
				out.Data[i] = s
			}
		})
		return
	}
	matmulSpan(a.R, 2*a.C*b.C, func(lo, hi int) {
		// k-blocked i-k-j: each tile of b stays cache-resident while the
		// a rows of this span stream past it. k still ascends per output
		// element, so blocking does not reorder any accumulation.
		for k0 := 0; k0 < a.C; k0 += matmulBlockK {
			k1 := k0 + matmulBlockK
			if k1 > a.C {
				k1 = a.C
			}
			for i := lo; i < hi; i++ {
				arow := a.Row(i)[k0:k1]
				orow := out.Row(i)
				for kk, av := range arow {
					if av == 0 {
						continue
					}
					axpy(av, b.Row(k0+kk), orow)
				}
			}
		}
	})
}

// MatMulATB computes aᵀ @ b (used by backward passes without
// materialising the transpose).
func MatMulATB(a, b *Mat) *Mat {
	out := New(a.C, b.C)
	MatMulATBInto(out, a, b)
	return out
}

// MatMulATBInto computes aᵀ @ b into out, which must be zeroed and
// a.C×b.C shaped. Output rows are columns of a; the k dimension is the
// shared row count.
func MatMulATBInto(out, a, b *Mat) {
	if a.R != b.R {
		panic(fmt.Sprintf("tensor: matmulATB %dx%d, %dx%d", a.R, a.C, b.R, b.C))
	}
	if out.R != a.C || out.C != b.C {
		panic(fmt.Sprintf("tensor: matmulATB into %dx%d, want %dx%d", out.R, out.C, a.C, b.C))
	}
	if b.C == 1 {
		// Columns of a against one b column: out is a.C×1.
		bcol := b.Data
		matmulSpan(a.C, a.R, func(lo, hi int) {
			for k := 0; k < a.R; k++ {
				arow := a.Row(k)
				bv := bcol[k]
				for i := lo; i < hi; i++ {
					av := arow[i]
					if av == 0 {
						continue
					}
					out.Data[i] += av * bv
				}
			}
		})
		return
	}
	matmulSpan(a.C, 2*a.R*b.C, func(lo, hi int) {
		for k := 0; k < a.R; k++ {
			brow := b.Row(k)
			if allZero(brow) {
				// ±0-only contributions; skipping is bit-neutral (see
				// allZero) and backward passes hit many zero grad rows.
				continue
			}
			arow := a.Row(k)
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				axpy(av, brow, out.Row(i)[:len(brow)])
			}
		}
	})
}

// MatMulABT computes a @ bᵀ.
func MatMulABT(a, b *Mat) *Mat {
	out := New(a.R, b.R)
	MatMulABTAddInto(out, a, b)
	return out
}

// MatMulABTAddInto accumulates a @ bᵀ into out (a.R×b.R). Each element is
// one dot product summed from +0 and then added to out in a single
// operation, exactly like computing a @ bᵀ into a zeroed temporary and
// AddInPlace-ing it — which lets backward passes fuse the two without
// changing a bit of the result.
func MatMulABTAddInto(out, a, b *Mat) {
	if a.C != b.C {
		panic(fmt.Sprintf("tensor: matmulABT %dx%d, %dx%d", a.R, a.C, b.R, b.C))
	}
	if out.R != a.R || out.C != b.R {
		panic(fmt.Sprintf("tensor: matmulABT into %dx%d, want %dx%d", out.R, out.C, a.R, b.R))
	}
	if a.C == 1 {
		// Outer product of two columns; keep the explicit +0 start so a
		// -0 product lands as +0, matching the generic dot loop.
		acol, bcol := a.Data, b.Data
		matmulSpan(a.R, b.R, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				av := acol[i]
				orow := out.Row(i)
				for j, bv := range bcol {
					s := 0.0
					s += av * bv
					orow[j] += s
				}
			}
		})
		return
	}
	matmulSpan(a.R, 2*a.C*b.R, func(lo, hi int) {
		// Hoist b's row slices out of the (i, j) loop: the backward pass
		// calls this kernel with small b (a weight matrix), so the row
		// slicing would otherwise dominate the short dots.
		var browStack [64][]float64
		var brows [][]float64
		if b.R <= len(browStack) {
			brows = browStack[:b.R]
		} else {
			brows = make([][]float64, b.R)
		}
		for j := range brows {
			brows[j] = b.Row(j)
		}
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			if allZero(arow) {
				// A zero row contributes dots that are exactly +0 (every
				// product is ±0, summed from +0), and adding +0 never
				// changes an accumulator — skipping is bit-neutral.
				continue
			}
			orow := out.Row(i)[:b.R]
			for j := range orow {
				orow[j] += dotSeq(arow, brows[j])
			}
		}
	})
}

// allZero reports whether every element of v is zero (either sign). Used
// to skip gradient rows: backward passes see many exactly-zero rows (max
// pooling routes gradient to argmax rows only), and a zero operand row
// contributes only ±0 terms, which can never change an accumulator that
// started at +0. Caveat: the equivalence assumes the other operand is
// finite — against an Inf/NaN weight the unskipped kernel would produce
// NaN (0·Inf) where the skip yields 0. That only differs once training
// has already diverged to non-finite parameters.
func allZero(v []float64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}
