package irgen

import (
	"fmt"

	"mpidetect/internal/ast"
	"mpidetect/internal/ir"
	"mpidetect/internal/mpi"
)

// statusPtr is the IR type of MPI_Status*.
var statusPtr = ir.PtrTo(ir.StatusType)

// reqPtr is the IR type of MPI_Request* (requests are i64 handles).
var reqPtr = ir.PtrTo(ir.I64)

// mpiExternSig returns the IR parameter types of the modelled MPI routine.
// These follow the real C prototypes with handles lowered to integers.
func mpiExternSig(op mpi.Op) ([]*ir.Type, bool) {
	i8p := ir.PtrTo(ir.I8)
	i32, i64 := ir.I32, ir.I64
	i32p := ir.PtrTo(ir.I32)
	i64p := reqPtr
	switch op {
	case mpi.OpInit:
		return []*ir.Type{i8p, i8p}, true
	case mpi.OpFinalize:
		return []*ir.Type{}, true
	case mpi.OpCommRank, mpi.OpCommSize:
		return []*ir.Type{i32, i32p}, true
	case mpi.OpAbort:
		return []*ir.Type{i32, i32}, true
	case mpi.OpSend, mpi.OpSsend, mpi.OpBsend, mpi.OpRsend:
		return []*ir.Type{i8p, i32, i32, i32, i32, i32}, true
	case mpi.OpRecv:
		return []*ir.Type{i8p, i32, i32, i32, i32, i32, statusPtr}, true
	case mpi.OpSendrecv:
		return []*ir.Type{i8p, i32, i32, i32, i32, i8p, i32, i32, i32, i32, i32, statusPtr}, true
	case mpi.OpIsend, mpi.OpIssend, mpi.OpIrecv, mpi.OpSendInit, mpi.OpRecvInit:
		return []*ir.Type{i8p, i32, i32, i32, i32, i32, i64p}, true
	case mpi.OpWait:
		return []*ir.Type{i64p, statusPtr}, true
	case mpi.OpWaitall:
		return []*ir.Type{i32, i64p, statusPtr}, true
	case mpi.OpTest:
		return []*ir.Type{i64p, i32p, statusPtr}, true
	case mpi.OpRequestFree, mpi.OpStart:
		return []*ir.Type{i64p}, true
	case mpi.OpStartall:
		return []*ir.Type{i32, i64p}, true
	case mpi.OpGetCount:
		return []*ir.Type{statusPtr, i32, i32p}, true
	case mpi.OpBarrier:
		return []*ir.Type{i32}, true
	case mpi.OpBcast:
		return []*ir.Type{i8p, i32, i32, i32, i32}, true
	case mpi.OpReduce:
		return []*ir.Type{i8p, i8p, i32, i32, i32, i32, i32}, true
	case mpi.OpAllreduce, mpi.OpExscan, mpi.OpScan:
		return []*ir.Type{i8p, i8p, i32, i32, i32, i32}, true
	case mpi.OpGather, mpi.OpScatter:
		return []*ir.Type{i8p, i32, i32, i8p, i32, i32, i32, i32}, true
	case mpi.OpAllgather, mpi.OpAlltoall:
		return []*ir.Type{i8p, i32, i32, i8p, i32, i32, i32}, true
	case mpi.OpIbarrier:
		return []*ir.Type{i32, i64p}, true
	case mpi.OpIbcast:
		return []*ir.Type{i8p, i32, i32, i32, i32, i64p}, true
	case mpi.OpIallreduce:
		return []*ir.Type{i8p, i8p, i32, i32, i32, i32, i64p}, true
	case mpi.OpWinCreate:
		return []*ir.Type{i8p, i64, i32, i32, i32, i64p}, true
	case mpi.OpWinFree:
		return []*ir.Type{i64p}, true
	case mpi.OpWinFence:
		return []*ir.Type{i32, i64}, true
	case mpi.OpPut, mpi.OpGet:
		return []*ir.Type{i8p, i32, i32, i32, i64, i32, i32, i64}, true
	case mpi.OpAccumulate:
		return []*ir.Type{i8p, i32, i32, i32, i64, i32, i32, i32, i64}, true
	case mpi.OpWinLock:
		return []*ir.Type{i32, i32, i32, i64}, true
	case mpi.OpWinUnlock:
		return []*ir.Type{i32, i64}, true
	case mpi.OpCommSplit:
		return []*ir.Type{i32, i32, i32, i32p}, true
	case mpi.OpCommFree, mpi.OpCommDup:
		if op == mpi.OpCommDup {
			return []*ir.Type{i32, i32p}, true
		}
		return []*ir.Type{i32p}, true
	case mpi.OpTypeContiguous:
		return []*ir.Type{i32, i32, i32p}, true
	case mpi.OpTypeCommit, mpi.OpTypeFree:
		return []*ir.Type{i32p}, true
	}
	return nil, false
}

// mpiConstant maps MPI identifier spellings to IR constants.
func mpiConstant(name string) (ir.Value, bool) {
	switch name {
	case "MPI_COMM_WORLD":
		return ir.ConstInt(ir.I32, mpi.CommWorld), true
	case "MPI_COMM_SELF":
		return ir.ConstInt(ir.I32, mpi.CommSelf), true
	case "MPI_COMM_NULL":
		return ir.ConstInt(ir.I32, mpi.CommNull), true
	case "MPI_ANY_SOURCE":
		return ir.ConstInt(ir.I32, mpi.AnySource), true
	case "MPI_ANY_TAG":
		return ir.ConstInt(ir.I32, mpi.AnyTag), true
	case "MPI_PROC_NULL":
		return ir.ConstInt(ir.I32, mpi.ProcNull), true
	case "MPI_SUCCESS":
		return ir.ConstInt(ir.I32, mpi.Success), true
	case "MPI_TAG_UB":
		return ir.ConstInt(ir.I32, mpi.TagUB), true
	case "MPI_STATUS_IGNORE", "MPI_STATUSES_IGNORE":
		return ir.ConstNull(statusPtr), true
	case "MPI_REQUEST_NULL":
		return ir.ConstInt(ir.I64, mpi.RequestNil), true
	case "MPI_INFO_NULL":
		return ir.ConstInt(ir.I32, 0), true
	case "MPI_IN_PLACE":
		return ir.ConstNull(ir.PtrTo(ir.I8)), true
	case "MPI_LOCK_SHARED":
		return ir.ConstInt(ir.I32, 1), true
	case "MPI_LOCK_EXCLUSIVE":
		return ir.ConstInt(ir.I32, 2), true
	case "NULL":
		return ir.ConstNull(ir.PtrTo(ir.I8)), true
	case "MPI_DATATYPE_NULL":
		return ir.ConstInt(ir.I32, int64(mpi.DTNull)), true
	case "MPI_INT":
		return ir.ConstInt(ir.I32, int64(mpi.DTInt)), true
	case "MPI_FLOAT":
		return ir.ConstInt(ir.I32, int64(mpi.DTFloat)), true
	case "MPI_DOUBLE":
		return ir.ConstInt(ir.I32, int64(mpi.DTDouble)), true
	case "MPI_CHAR":
		return ir.ConstInt(ir.I32, int64(mpi.DTChar)), true
	case "MPI_LONG":
		return ir.ConstInt(ir.I32, int64(mpi.DTLong)), true
	case "MPI_BYTE":
		return ir.ConstInt(ir.I32, int64(mpi.DTByte)), true
	case "MPI_UNSIGNED":
		return ir.ConstInt(ir.I32, int64(mpi.DTUnsigned)), true
	case "MPI_OP_NULL":
		return ir.ConstInt(ir.I32, int64(mpi.RONull)), true
	case "MPI_SUM":
		return ir.ConstInt(ir.I32, int64(mpi.ROSum)), true
	case "MPI_PROD":
		return ir.ConstInt(ir.I32, int64(mpi.ROProd)), true
	case "MPI_MAX":
		return ir.ConstInt(ir.I32, int64(mpi.ROMax)), true
	case "MPI_MIN":
		return ir.ConstInt(ir.I32, int64(mpi.ROMin)), true
	case "MPI_LAND":
		return ir.ConstInt(ir.I32, int64(mpi.ROLand)), true
	case "MPI_BOR":
		return ir.ConstInt(ir.I32, int64(mpi.ROBor)), true
	}
	return nil, false
}

// declareExtern ensures a declaration for callee exists in the module and
// returns it.
func (g *gen) declareExtern(name string) (*ir.Func, error) {
	if f := g.m.FuncByName(name); f != nil {
		return f, nil
	}
	if op, ok := mpi.FromName(name); ok {
		params, ok := mpiExternSig(op)
		if !ok {
			return nil, fmt.Errorf("no IR signature for %s", name)
		}
		f := &ir.Func{Name: name, Decl: true, Sig: ir.FuncOf(ir.I32, params...)}
		g.m.AddFunc(f)
		return f, nil
	}
	switch name {
	case "printf":
		f := &ir.Func{Name: name, Decl: true, Variadic: true,
			Sig: ir.FuncOf(ir.I32, ir.PtrTo(ir.I8))}
		g.m.AddFunc(f)
		return f, nil
	case "exit":
		f := &ir.Func{Name: name, Decl: true, Sig: ir.FuncOf(ir.Void, ir.I32)}
		g.m.AddFunc(f)
		return f, nil
	case "sleep", "usleep":
		f := &ir.Func{Name: name, Decl: true, Sig: ir.FuncOf(ir.I32, ir.I32)}
		g.m.AddFunc(f)
		return f, nil
	}
	return nil, fmt.Errorf("call to unknown function %q", name)
}

// call lowers a function call, coercing arguments to the callee signature.
func (g *gen) call(x *ast.CallExpr) (ir.Value, error) {
	callee := g.funcs[x.Name]
	if callee == nil {
		var err error
		callee, err = g.declareExtern(x.Name)
		if err != nil {
			return nil, err
		}
	}
	want := callee.Sig.Params
	args := make([]ir.Value, 0, len(x.Args))
	for i, a := range x.Args {
		v, err := g.rvalue(a)
		if err != nil {
			return nil, fmt.Errorf("arg %d of %s: %w", i, x.Name, err)
		}
		v = g.boolToInt(v)
		if i < len(want) {
			v = g.coerce(v, want[i])
		}
		args = append(args, v)
	}
	if !callee.Variadic && len(args) != len(want) {
		return nil, fmt.Errorf("%s expects %d args, got %d", x.Name, len(want), len(args))
	}
	return g.b.Call(x.Name, callee.Sig.Ret, args...), nil
}
