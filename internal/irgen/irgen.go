// Package irgen lowers the MPI-C AST to the IR, playing the role of clang
// in the paper's pipeline. The lowering is deliberately naive -O0 style
// (every variable lives in an alloca); the pass pipeline in internal/passes
// is responsible for turning it into optimised SSA at -O2/-Os.
package irgen

import (
	"fmt"

	"mpidetect/internal/ast"
	"mpidetect/internal/ir"
)

// Lower translates a program to an IR module.
func Lower(p *ast.Program) (*ir.Module, error) {
	g := &gen{m: ir.NewModule(p.Name), funcs: map[string]*ir.Func{}}
	// Pre-declare user functions so calls can be lowered in any order.
	for _, f := range p.Funcs {
		params := make([]*ir.Type, len(f.Params))
		for i, prm := range f.Params {
			params[i] = lowerType(prm.Type)
		}
		irf := &ir.Func{Name: f.Name, Sig: ir.FuncOf(lowerType(f.Ret), params...)}
		for _, prm := range f.Params {
			irf.Params = append(irf.Params, &ir.Param{Name: prm.Name, Typ: lowerType(prm.Type)})
		}
		g.m.AddFunc(irf)
		g.funcs[f.Name] = irf
	}
	for _, f := range p.Funcs {
		if err := g.lowerFunc(f); err != nil {
			return nil, fmt.Errorf("irgen: @%s: %w", f.Name, err)
		}
	}
	if err := g.m.Verify(); err != nil {
		return nil, err
	}
	return g.m, nil
}

// MustLower is Lower that panics on error (generator-produced programs are
// correct by construction).
func MustLower(p *ast.Program) *ir.Module {
	m, err := Lower(p)
	if err != nil {
		panic(err)
	}
	return m
}

type slot struct {
	ptr ir.Value
	ty  *ast.Type
}

type gen struct {
	m     *ir.Module
	funcs map[string]*ir.Func
	b     *ir.Builder
	env   map[string]slot
	strs  int
}

func lowerType(t *ast.Type) *ir.Type {
	switch t.Kind {
	case ast.TVoid:
		return ir.Void
	case ast.TInt:
		return ir.I32
	case ast.TDouble:
		return ir.F64
	case ast.TChar:
		return ir.I8
	case ast.TPtr:
		return ir.PtrTo(lowerType(t.Elem))
	case ast.TArray:
		return ir.ArrayOf(t.Len, lowerType(t.Elem))
	case ast.TMPIRequest, ast.TMPIWin:
		return ir.I64
	case ast.TMPIStatus:
		return ir.StatusType
	case ast.TMPIComm, ast.TMPIDatatype, ast.TMPIOp:
		return ir.I32
	}
	panic("irgen: unknown ast type")
}

func (g *gen) lowerFunc(f *ast.FuncDecl) error {
	irf := g.funcs[f.Name]
	g.b = ir.NewBuilder(irf)
	g.env = map[string]slot{}
	for i, prm := range f.Params {
		sl := g.b.Alloca(lowerType(prm.Type), 1)
		g.b.Store(irf.Params[i], sl)
		g.env[prm.Name] = slot{ptr: sl, ty: prm.Type}
	}
	if err := g.lowerBlock(f.Body); err != nil {
		return err
	}
	if !g.b.Terminated() {
		if f.Ret.Kind == ast.TVoid {
			g.b.Ret(nil)
		} else {
			g.b.Ret(ir.ConstInt(lowerType(f.Ret), 0))
		}
	}
	return nil
}

func (g *gen) lowerBlock(b *ast.BlockStmt) error {
	for _, s := range b.Stmts {
		if g.b.Terminated() {
			return nil // unreachable trailing code is dropped
		}
		if err := g.lowerStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) lowerStmt(s ast.Stmt) error {
	switch st := s.(type) {
	case *ast.BlockStmt:
		return g.lowerBlock(st)
	case *ast.DeclStmt:
		sl := g.b.Alloca(lowerType(st.Type), 1)
		g.env[st.Name] = slot{ptr: sl, ty: st.Type}
		if st.Init != nil {
			v, err := g.rvalue(st.Init)
			if err != nil {
				return err
			}
			g.b.Store(g.coerce(v, lowerType(st.Type)), sl)
		}
		return nil
	case *ast.AssignStmt:
		ptr, elem, err := g.lvalue(st.LHS)
		if err != nil {
			return err
		}
		v, err := g.rvalue(st.RHS)
		if err != nil {
			return err
		}
		g.b.Store(g.coerce(v, elem), ptr)
		return nil
	case *ast.ExprStmt:
		_, err := g.rvalue(st.X)
		return err
	case *ast.IfStmt:
		cond, err := g.condition(st.Cond)
		if err != nil {
			return err
		}
		then := g.b.NewBlock("if.then")
		merge := g.b.NewBlock("if.end")
		els := merge
		if st.Else != nil {
			els = g.b.NewBlock("if.else")
		}
		g.b.CondBr(cond, then, els)
		g.b.SetBlock(then)
		if err := g.lowerBlock(st.Then); err != nil {
			return err
		}
		if !g.b.Terminated() {
			g.b.Br(merge)
		}
		if st.Else != nil {
			g.b.SetBlock(els)
			if err := g.lowerBlock(st.Else); err != nil {
				return err
			}
			if !g.b.Terminated() {
				g.b.Br(merge)
			}
		}
		g.b.SetBlock(merge)
		return nil
	case *ast.ForStmt:
		if st.Init != nil {
			if err := g.lowerStmt(st.Init); err != nil {
				return err
			}
		}
		header := g.b.NewBlock("for.cond")
		body := g.b.NewBlock("for.body")
		exit := g.b.NewBlock("for.end")
		g.b.Br(header)
		g.b.SetBlock(header)
		cond, err := g.condition(st.Cond)
		if err != nil {
			return err
		}
		g.b.CondBr(cond, body, exit)
		g.b.SetBlock(body)
		if err := g.lowerBlock(st.Body); err != nil {
			return err
		}
		if st.Post != nil && !g.b.Terminated() {
			if err := g.lowerStmt(st.Post); err != nil {
				return err
			}
		}
		if !g.b.Terminated() {
			g.b.Br(header)
		}
		g.b.SetBlock(exit)
		return nil
	case *ast.WhileStmt:
		header := g.b.NewBlock("while.cond")
		body := g.b.NewBlock("while.body")
		exit := g.b.NewBlock("while.end")
		g.b.Br(header)
		g.b.SetBlock(header)
		cond, err := g.condition(st.Cond)
		if err != nil {
			return err
		}
		g.b.CondBr(cond, body, exit)
		g.b.SetBlock(body)
		if err := g.lowerBlock(st.Body); err != nil {
			return err
		}
		if !g.b.Terminated() {
			g.b.Br(header)
		}
		g.b.SetBlock(exit)
		return nil
	case *ast.ReturnStmt:
		if st.X == nil {
			g.b.Ret(nil)
			return nil
		}
		v, err := g.rvalue(st.X)
		if err != nil {
			return err
		}
		g.b.Ret(g.coerce(v, g.b.F.Sig.Ret))
		return nil
	}
	return fmt.Errorf("unknown statement %T", s)
}

// lvalue returns the address of an assignable expression plus its element
// IR type.
func (g *gen) lvalue(e ast.Expr) (ir.Value, *ir.Type, error) {
	switch x := e.(type) {
	case *ast.Ident:
		sl, ok := g.env[x.Name]
		if !ok {
			return nil, nil, fmt.Errorf("undefined variable %q", x.Name)
		}
		return sl.ptr, lowerType(sl.ty), nil
	case *ast.IndexExpr:
		base, elem, err := g.indexAddr(x)
		if err != nil {
			return nil, nil, err
		}
		return base, elem, nil
	case *ast.DerefExpr:
		v, err := g.rvalue(x.X)
		if err != nil {
			return nil, nil, err
		}
		pt := v.Type()
		if !pt.IsPtr() {
			return nil, nil, fmt.Errorf("deref of non-pointer")
		}
		return v, pt.Elem, nil
	}
	return nil, nil, fmt.Errorf("expression %T is not an lvalue", e)
}

// indexAddr computes &x[i].
func (g *gen) indexAddr(x *ast.IndexExpr) (ir.Value, *ir.Type, error) {
	idx, err := g.rvalue(x.I)
	if err != nil {
		return nil, nil, err
	}
	idx64 := g.coerce(idx, ir.I64)
	// Array variable: GEP through the alloca; pointer: load then GEP.
	if id, ok := x.X.(*ast.Ident); ok {
		sl, ok := g.env[id.Name]
		if !ok {
			return nil, nil, fmt.Errorf("undefined variable %q", id.Name)
		}
		if sl.ty.Kind == ast.TArray {
			elem := lowerType(sl.ty.Elem)
			p := g.b.GEP(sl.ptr, elem, ir.ConstInt(ir.I64, 0), idx64)
			return p, elem, nil
		}
	}
	v, err := g.rvalue(x.X)
	if err != nil {
		return nil, nil, err
	}
	pt := v.Type()
	if !pt.IsPtr() {
		return nil, nil, fmt.Errorf("index of non-pointer")
	}
	p := g.b.GEP(v, pt.Elem, idx64)
	return p, pt.Elem, nil
}

// condition lowers an expression into an i1.
func (g *gen) condition(e ast.Expr) (ir.Value, error) {
	v, err := g.rvalue(e)
	if err != nil {
		return nil, err
	}
	t := v.Type()
	if t.Kind == ir.KInt1 {
		return v, nil
	}
	if t.IsFloat() {
		return g.b.FCmp(ir.PredNE, v, ir.ConstFloat(0)), nil
	}
	return g.b.ICmp(ir.PredNE, v, ir.ConstInt(t, 0)), nil
}

// boolToInt widens an i1 to i32 when a boolean is used as a value.
func (g *gen) boolToInt(v ir.Value) ir.Value {
	if v.Type().Kind == ir.KInt1 {
		return g.b.Conv(ir.OpZExt, v, ir.I32)
	}
	return v
}

// coerce converts v to IR type want (int width changes, int<->float,
// pointer casts, null synthesis).
func (g *gen) coerce(v ir.Value, want *ir.Type) ir.Value {
	have := v.Type()
	if have.Equal(want) {
		return v
	}
	if c, ok := v.(*ir.Const); ok && want.IsPtr() && !c.IsFloat && !c.IsNull && c.Int == 0 {
		return ir.ConstNull(want)
	}
	switch {
	case have.IsInt() && want.IsInt():
		if have.Bits() < want.Bits() {
			if have.Kind == ir.KInt1 {
				return g.b.Conv(ir.OpZExt, v, want)
			}
			return g.b.Conv(ir.OpSExt, v, want)
		}
		return g.b.Conv(ir.OpTrunc, v, want)
	case have.IsInt() && want.IsFloat():
		return g.b.Conv(ir.OpSIToFP, v, want)
	case have.IsFloat() && want.IsInt():
		return g.b.Conv(ir.OpFPToSI, v, want)
	case have.IsPtr() && want.IsPtr():
		return g.b.Conv(ir.OpBitcast, v, want)
	case have.IsPtr() && want.Kind == ir.KInt64:
		return g.b.Conv(ir.OpPtrToInt, v, want)
	case have.Kind == ir.KInt64 && want.IsPtr():
		return g.b.Conv(ir.OpIntToPtr, v, want)
	}
	return v
}

func (g *gen) rvalue(e ast.Expr) (ir.Value, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		return ir.ConstInt(ir.I32, x.V), nil
	case *ast.FloatLit:
		return ir.ConstFloat(x.V), nil
	case *ast.StrLit:
		return g.stringPtr(x.S), nil
	case *ast.Ident:
		if c, ok := mpiConstant(x.Name); ok {
			return c, nil
		}
		sl, ok := g.env[x.Name]
		if !ok {
			return nil, fmt.Errorf("undefined variable %q", x.Name)
		}
		if sl.ty.Kind == ast.TArray {
			// Arrays decay to a pointer to their first element.
			elem := lowerType(sl.ty.Elem)
			return g.b.GEP(sl.ptr, elem, ir.ConstInt(ir.I64, 0), ir.ConstInt(ir.I64, 0)), nil
		}
		return g.b.Load(sl.ptr), nil
	case *ast.BinExpr:
		return g.binary(x)
	case *ast.UnExpr:
		v, err := g.rvalue(x.X)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "-":
			if v.Type().IsFloat() {
				return g.b.Bin(ir.OpFSub, ir.ConstFloat(0), v), nil
			}
			return g.b.Bin(ir.OpSub, ir.ConstInt(v.Type(), 0), v), nil
		case "!":
			if v.Type().Kind == ir.KInt1 {
				return g.b.Bin(ir.OpXor, v, ir.ConstBool(true)), nil
			}
			return g.b.ICmp(ir.PredEQ, v, ir.ConstInt(v.Type(), 0)), nil
		}
		return nil, fmt.Errorf("unknown unary op %q", x.Op)
	case *ast.IndexExpr:
		p, _, err := g.indexAddr(x)
		if err != nil {
			return nil, err
		}
		return g.b.Load(p), nil
	case *ast.AddrExpr:
		p, _, err := g.lvalue(x.X)
		if err != nil {
			return nil, err
		}
		return p, nil
	case *ast.DerefExpr:
		v, err := g.rvalue(x.X)
		if err != nil {
			return nil, err
		}
		if !v.Type().IsPtr() {
			return nil, fmt.Errorf("deref of non-pointer")
		}
		return g.b.Load(v), nil
	case *ast.CallExpr:
		return g.call(x)
	}
	return nil, fmt.Errorf("unknown expression %T", e)
}

func (g *gen) binary(x *ast.BinExpr) (ir.Value, error) {
	lhs, err := g.rvalue(x.X)
	if err != nil {
		return nil, err
	}
	rhs, err := g.rvalue(x.Y)
	if err != nil {
		return nil, err
	}
	lhs, rhs = g.boolToInt(lhs), g.boolToInt(rhs)
	flt := lhs.Type().IsFloat() || rhs.Type().IsFloat()
	if flt {
		lhs = g.coerce(lhs, ir.F64)
		rhs = g.coerce(rhs, ir.F64)
	} else if lhs.Type().Bits() != rhs.Type().Bits() {
		wide := lhs.Type()
		if rhs.Type().Bits() > wide.Bits() {
			wide = rhs.Type()
		}
		lhs = g.coerce(lhs, wide)
		rhs = g.coerce(rhs, wide)
	}
	if p, ok := predOf(x.Op); ok {
		if flt {
			return g.b.FCmp(p, lhs, rhs), nil
		}
		return g.b.ICmp(p, lhs, rhs), nil
	}
	switch x.Op {
	case "&&", "||":
		lb, err := g.condition2(lhs)
		if err != nil {
			return nil, err
		}
		rb, err := g.condition2(rhs)
		if err != nil {
			return nil, err
		}
		op := ir.OpAnd
		if x.Op == "||" {
			op = ir.OpOr
		}
		return g.b.Bin(op, lb, rb), nil
	}
	op, ok := binOpOf(x.Op, flt)
	if !ok {
		return nil, fmt.Errorf("unknown binary op %q", x.Op)
	}
	return g.b.Bin(op, lhs, rhs), nil
}

func (g *gen) condition2(v ir.Value) (ir.Value, error) {
	if v.Type().Kind == ir.KInt1 {
		return v, nil
	}
	if v.Type().IsFloat() {
		return g.b.FCmp(ir.PredNE, v, ir.ConstFloat(0)), nil
	}
	return g.b.ICmp(ir.PredNE, v, ir.ConstInt(v.Type(), 0)), nil
}

func predOf(op string) (ir.Pred, bool) {
	switch op {
	case "==":
		return ir.PredEQ, true
	case "!=":
		return ir.PredNE, true
	case "<":
		return ir.PredSLT, true
	case "<=":
		return ir.PredSLE, true
	case ">":
		return ir.PredSGT, true
	case ">=":
		return ir.PredSGE, true
	}
	return 0, false
}

func binOpOf(op string, flt bool) (ir.Opcode, bool) {
	if flt {
		switch op {
		case "+":
			return ir.OpFAdd, true
		case "-":
			return ir.OpFSub, true
		case "*":
			return ir.OpFMul, true
		case "/":
			return ir.OpFDiv, true
		}
		return 0, false
	}
	switch op {
	case "+":
		return ir.OpAdd, true
	case "-":
		return ir.OpSub, true
	case "*":
		return ir.OpMul, true
	case "/":
		return ir.OpSDiv, true
	case "%":
		return ir.OpSRem, true
	case "&":
		return ir.OpAnd, true
	case "|":
		return ir.OpOr, true
	case "^":
		return ir.OpXor, true
	case "<<":
		return ir.OpShl, true
	case ">>":
		return ir.OpAShr, true
	}
	return 0, false
}

func (g *gen) stringPtr(s string) ir.Value {
	g.strs++
	name := fmt.Sprintf("str%d", g.strs)
	data := s + "\x00"
	glob := &ir.Global{Name: name, Elem: ir.ArrayOf(len(data), ir.I8), Const: true, Str: data}
	g.m.AddGlobal(glob)
	return g.b.GEP(glob, ir.I8, ir.ConstInt(ir.I64, 0), ir.ConstInt(ir.I64, 0))
}
