package irgen

import (
	"strings"
	"testing"

	"mpidetect/internal/ast"
	"mpidetect/internal/ir"
	"mpidetect/internal/passes"
)

// pingPong builds the canonical send/recv pair program:
//
//	int main() {
//	  int rank; int buf[8];
//	  MPI_Init(NULL, NULL);
//	  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
//	  if (rank == 0) { MPI_Send(buf, 8, MPI_INT, 1, 7, MPI_COMM_WORLD); }
//	  else { MPI_Recv(buf, 8, MPI_INT, 0, 7, MPI_COMM_WORLD, MPI_STATUS_IGNORE); }
//	  MPI_Finalize();
//	  return 0;
//	}
func pingPong() *ast.Program {
	rank := &ast.Ident{Name: "rank"}
	buf := &ast.Ident{Name: "buf"}
	return &ast.Program{
		Name:     "pingpong",
		Includes: []string{"<mpi.h>"},
		Funcs: []*ast.FuncDecl{{
			Name: "main", Ret: ast.Int,
			Body: &ast.BlockStmt{Stmts: []ast.Stmt{
				&ast.DeclStmt{Name: "rank", Type: ast.Int},
				&ast.DeclStmt{Name: "buf", Type: ast.ArrayOf(8, ast.Int)},
				&ast.ExprStmt{X: &ast.CallExpr{Name: "MPI_Init", Args: []ast.Expr{&ast.Ident{Name: "NULL"}, &ast.Ident{Name: "NULL"}}}},
				&ast.ExprStmt{X: &ast.CallExpr{Name: "MPI_Comm_rank", Args: []ast.Expr{&ast.Ident{Name: "MPI_COMM_WORLD"}, &ast.AddrExpr{X: rank}}}},
				&ast.IfStmt{
					Cond: &ast.BinExpr{Op: "==", X: rank, Y: &ast.IntLit{V: 0}},
					Then: &ast.BlockStmt{Stmts: []ast.Stmt{
						&ast.ExprStmt{X: &ast.CallExpr{Name: "MPI_Send", Args: []ast.Expr{
							buf, &ast.IntLit{V: 8}, &ast.Ident{Name: "MPI_INT"},
							&ast.IntLit{V: 1}, &ast.IntLit{V: 7}, &ast.Ident{Name: "MPI_COMM_WORLD"}}}},
					}},
					Else: &ast.BlockStmt{Stmts: []ast.Stmt{
						&ast.ExprStmt{X: &ast.CallExpr{Name: "MPI_Recv", Args: []ast.Expr{
							buf, &ast.IntLit{V: 8}, &ast.Ident{Name: "MPI_INT"},
							&ast.IntLit{V: 0}, &ast.IntLit{V: 7}, &ast.Ident{Name: "MPI_COMM_WORLD"},
							&ast.Ident{Name: "MPI_STATUS_IGNORE"}}}},
					}},
				},
				&ast.ExprStmt{X: &ast.CallExpr{Name: "MPI_Finalize"}},
				&ast.ReturnStmt{X: &ast.IntLit{V: 0}},
			}},
		}},
	}
}

func TestLowerPingPong(t *testing.T) {
	m, err := Lower(pingPong())
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	text := ir.Print(m)
	for _, want := range []string{"MPI_Init", "MPI_Comm_rank", "MPI_Send", "MPI_Recv", "MPI_Finalize", "icmp eq"} {
		if !strings.Contains(text, want) {
			t.Errorf("IR missing %q:\n%s", want, text)
		}
	}
	// Print/parse round trip of lowered code.
	m2, err := ir.Parse(text)
	if err != nil {
		t.Fatalf("Parse(lowered): %v\n%s", err, text)
	}
	if got := ir.Print(m2); got != text {
		t.Error("lowered IR does not round-trip")
	}
}

func TestLowerThenOptimize(t *testing.T) {
	for _, lvl := range []passes.OptLevel{passes.O0, passes.O2, passes.Os} {
		m, err := Lower(pingPong())
		if err != nil {
			t.Fatalf("Lower: %v", err)
		}
		passes.Optimize(m, lvl)
		if err := m.Verify(); err != nil {
			t.Fatalf("%s: Verify: %v\n%s", lvl, err, ir.Print(m))
		}
		// MPI calls must survive optimisation.
		text := ir.Print(m)
		for _, want := range []string{"MPI_Send", "MPI_Recv"} {
			if !strings.Contains(text, want) {
				t.Errorf("%s removed %s", lvl, want)
			}
		}
	}
}

func TestLowerLoop(t *testing.T) {
	// int main() { int s = 0; for (int i = 0; i < 10; i = i + 1) { s = s + i; } return s; }
	i := &ast.Ident{Name: "i"}
	s := &ast.Ident{Name: "s"}
	p := &ast.Program{Name: "loop", Funcs: []*ast.FuncDecl{{
		Name: "main", Ret: ast.Int,
		Body: &ast.BlockStmt{Stmts: []ast.Stmt{
			&ast.DeclStmt{Name: "s", Type: ast.Int, Init: &ast.IntLit{V: 0}},
			&ast.ForStmt{
				Init: &ast.DeclStmt{Name: "i", Type: ast.Int, Init: &ast.IntLit{V: 0}},
				Cond: &ast.BinExpr{Op: "<", X: i, Y: &ast.IntLit{V: 10}},
				Post: &ast.AssignStmt{LHS: i, RHS: &ast.BinExpr{Op: "+", X: i, Y: &ast.IntLit{V: 1}}},
				Body: &ast.BlockStmt{Stmts: []ast.Stmt{
					&ast.AssignStmt{LHS: s, RHS: &ast.BinExpr{Op: "+", X: s, Y: i}},
				}},
			},
			&ast.ReturnStmt{X: s},
		}},
	}}}
	m, err := Lower(p)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	passes.Optimize(m, passes.O2)
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify after O2: %v\n%s", err, ir.Print(m))
	}
	// After mem2reg there must be a loop phi.
	if !strings.Contains(ir.Print(m), "phi") {
		t.Errorf("no loop phi after O2:\n%s", ir.Print(m))
	}
}

func TestLowerUserCall(t *testing.T) {
	// int helper(int x) { return x * 2; }  int main() { return helper(21); }
	x := &ast.Ident{Name: "x"}
	p := &ast.Program{Name: "call", Funcs: []*ast.FuncDecl{
		{Name: "helper", Ret: ast.Int,
			Params: []*ast.ParamDecl{{Name: "x", Type: ast.Int}},
			Body: &ast.BlockStmt{Stmts: []ast.Stmt{
				&ast.ReturnStmt{X: &ast.BinExpr{Op: "*", X: x, Y: &ast.IntLit{V: 2}}},
			}}},
		{Name: "main", Ret: ast.Int,
			Body: &ast.BlockStmt{Stmts: []ast.Stmt{
				&ast.ReturnStmt{X: &ast.CallExpr{Name: "helper", Args: []ast.Expr{&ast.IntLit{V: 21}}}},
			}}},
	}}
	m, err := Lower(p)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	passes.Optimize(m, passes.O2)
	// helper should be inlined + folded: main returns 42.
	main := m.FuncByName("main")
	term := main.Entry().Term()
	if term.Op != ir.OpRet {
		t.Fatalf("main entry does not end in ret:\n%s", ir.Print(m))
	}
	if c, ok := term.Args[0].(*ir.Const); !ok || c.Int != 42 {
		t.Fatalf("main returns %s, want 42\n%s", term.Args[0].Ident(), ir.Print(m))
	}
}

func TestLowerPrintf(t *testing.T) {
	p := &ast.Program{Name: "hello", Funcs: []*ast.FuncDecl{{
		Name: "main", Ret: ast.Int,
		Body: &ast.BlockStmt{Stmts: []ast.Stmt{
			&ast.ExprStmt{X: &ast.CallExpr{Name: "printf", Args: []ast.Expr{
				&ast.StrLit{S: "rank %d\n"}, &ast.IntLit{V: 3}}}},
			&ast.ReturnStmt{X: &ast.IntLit{V: 0}},
		}},
	}}}
	m, err := Lower(p)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	if len(m.Globals) != 1 || m.Globals[0].Str == "" {
		t.Fatal("string literal global missing")
	}
	text := ir.Print(m)
	m2, err := ir.Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, text)
	}
	if m2.Globals[0].Str != m.Globals[0].Str {
		t.Errorf("string round-trip: %q != %q", m2.Globals[0].Str, m.Globals[0].Str)
	}
}

func TestLowerErrors(t *testing.T) {
	p := &ast.Program{Name: "bad", Funcs: []*ast.FuncDecl{{
		Name: "main", Ret: ast.Int,
		Body: &ast.BlockStmt{Stmts: []ast.Stmt{
			&ast.ExprStmt{X: &ast.Ident{Name: "nosuchvar"}},
		}},
	}}}
	if _, err := Lower(p); err == nil {
		t.Error("Lower accepted undefined variable")
	}
	p2 := &ast.Program{Name: "bad2", Funcs: []*ast.FuncDecl{{
		Name: "main", Ret: ast.Int,
		Body: &ast.BlockStmt{Stmts: []ast.Stmt{
			&ast.ExprStmt{X: &ast.CallExpr{Name: "no_such_fn"}},
		}},
	}}}
	if _, err := Lower(p2); err == nil {
		t.Error("Lower accepted unknown callee")
	}
}

func TestRenderC(t *testing.T) {
	text := ast.RenderC(pingPong())
	for _, want := range []string{"#include <mpi.h>", "int main(void) {", "MPI_Send(buf, 8, MPI_INT, 1, 7, MPI_COMM_WORLD);", "if ((rank == 0)) {"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered C missing %q:\n%s", want, text)
		}
	}
}

func TestLineCountHeaderBias(t *testing.T) {
	p := pingPong()
	base := ast.LineCount(p, nil)
	withHeader := ast.LineCount(p, map[string]int{"mpi.h": 1})
	if withHeader != base {
		t.Errorf("1-line header changed count: %d vs %d", withHeader, base)
	}
	p.Includes = append(p.Includes, "\"mpitest.h\"")
	biased := ast.LineCount(p, map[string]int{"mpitest.h": 100})
	if biased < base+99 {
		t.Errorf("header bias not applied: %d vs %d", biased, base)
	}
}
