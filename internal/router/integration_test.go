package router

import (
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"mpidetect/internal/serve"
	"mpidetect/internal/serve/rest"
	"mpidetect/internal/serve/servetest"
	"mpidetect/internal/store"
)

// realBackend is a full in-process mpidetectd: real engine, real REST
// transport, real durable store, on a real TCP listener — so killing it
// means killed sockets, not a polite shutdown.
type realBackend struct {
	addr string
	dir  string
	srv  *http.Server
	eng  *serve.Engine
	st   *store.Store
}

// start boots the backend's engine over its store dir and serves it on
// addr ("" = a fresh ephemeral port).
func (b *realBackend) start(t *testing.T, addr string) {
	t.Helper()
	st, err := store.Open(b.dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry()
	reg.Register("ir2vec", servetest.Trained(t))
	eng := serve.NewEngine(reg, serve.Config{CacheSize: 512, Store: st})

	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	// Rebinding a just-killed port can briefly race the kernel's socket
	// teardown; retry within a short budget.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	b.addr = ln.Addr().String()
	b.st, b.eng = st, eng
	b.srv = &http.Server{Handler: rest.NewHandler(reg, eng)}
	go b.srv.Serve(ln)
}

// kill severs the backend the hard way: listener and every open
// connection close immediately. The engine and store stay up (they are
// torn down separately), mimicking a network partition / SIGKILLed
// process as seen from the router.
func (b *realBackend) kill() { b.srv.Close() }

// stop tears down the process state: engine drained (write-behind
// flushed to the store) and store closed.
func (b *realBackend) stop(t *testing.T) {
	t.Helper()
	b.eng.Close()
	if err := b.st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRouterKillRestartWarmFailover is the tentpole acceptance test:
// three real backends behind the router, one hard-killed mid-workload.
// Every request must still return a verdict (retries reroute, the ring
// ejects the corpse), and after a restart against its old store dir the
// backend is re-admitted via the half-open probe and serves its slice
// warm — zero ML pipeline executions for previously-seen digests.
func TestRouterKillRestartWarmFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-backend integration test")
	}
	backends := make([]*realBackend, 3)
	for i := range backends {
		backends[i] = &realBackend{dir: t.TempDir()}
		backends[i].start(t, "")
	}
	t.Cleanup(func() {
		for _, b := range backends {
			b.kill()
		}
	})

	rt, err := New(Config{
		Backends:        []string{backends[0].addr, backends[1].addr, backends[2].addr},
		CheckInterval:   20 * time.Millisecond,
		CheckTimeout:    time.Second,
		BreakerFailures: 2,
		BreakerCooldown: 100 * time.Millisecond,
		MaxAttempts:     3,
		RetryBackoff:    2 * time.Millisecond,
		HedgeAfter:      -1, // keep sub-requests deterministic: one backend per shard
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	h := rt.Handler()

	progs := make([]serve.Program, 18)
	for i := range progs {
		name := fmt.Sprintf("failover-%d", i)
		progs[i] = serve.Program{Name: name, IR: servetest.PingpongIR(t, name)}
	}
	// workload sends the whole corpus through the router and demands a
	// verdict — not a router error — for every single program.
	workload := func(phase string) {
		t.Helper()
		w, resp := classifyVia(t, h, "ir2vec", progs...)
		if w.Code != http.StatusOK {
			t.Fatalf("[%s] classify = %d: %s", phase, w.Code, w.Body.String())
		}
		if len(resp.Results) != len(progs) {
			t.Fatalf("[%s] %d results for %d programs", phase, len(resp.Results), len(progs))
		}
		for i, r := range resp.Results {
			if r.Err != "" {
				t.Fatalf("[%s] program %d failed: %q", phase, i, r.Err)
			}
			if r.Label == "" {
				t.Fatalf("[%s] program %d has no verdict: %+v", phase, i, r)
			}
		}
	}

	// Phase 1: full fleet. Every shard owner computes and persists its
	// slice of the corpus.
	workload("full-fleet")

	// Phase 2: hard-kill one backend and immediately keep serving. The
	// first post-kill rounds hit dead sockets; retries must absorb every
	// one of them — zero failed requests is the criterion.
	victim := backends[1]
	victim.kill()
	for round := 0; round < 4; round++ {
		workload(fmt.Sprintf("post-kill-%d", round))
	}
	waitFor(t, 10*time.Second, "victim ejection", func() bool {
		s := rt.Stats()
		return s.HealthyBackends == 2 && s.Ejections >= 1
	})
	workload("post-ejection")
	if s := rt.Stats(); s.Retries == 0 {
		t.Fatalf("kill absorbed without a single retry? %+v", s)
	}

	// Phase 3: restart the victim on its old address against its old
	// store dir. Tear down the old process state first (flushing the
	// write-behind queue), as a real restart would.
	victim.stop(t)
	victim.start(t, victim.addr)
	waitFor(t, 10*time.Second, "victim readmission", func() bool {
		s := rt.Stats()
		return s.HealthyBackends == 3 && s.Readmissions >= 1
	})

	// Phase 4: the re-admitted backend reclaims exactly its old keys
	// (ring stability) and serves them from its warm durable store:
	// zero pipeline executions in the restarted process.
	workload("post-restart")
	warm := victim.eng.Stats()
	if warm.Engine.PipelineExecs != 0 {
		t.Fatalf("restarted backend ran %d pipeline execs; want 0 (warm store)",
			warm.Engine.PipelineExecs)
	}
	if warm.Engine.Requests == 0 {
		t.Fatal("restarted backend saw no traffic; readmission routed nothing back")
	}
	if warm.Cache.Hydrations == 0 {
		t.Fatalf("restarted backend hydrated nothing: %+v", warm.Cache)
	}
}
