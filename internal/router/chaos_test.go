package router

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"testing"
	"time"

	"mpidetect/internal/fault"
	"mpidetect/internal/serve"
	"mpidetect/internal/serve/rest"
)

// chaosRound drives classify requests through the router and fails the
// test on any outcome that is neither a verdict nor a structured error:
// a 200 whose every result carries a label or a per-program error, or a
// non-2xx JSON envelope with a machine-readable code.
func chaosRound(t *testing.T, h http.Handler, salt string) {
	t.Helper()
	var progs []serve.Program
	for i := 0; i < 4; i++ {
		progs = append(progs, serve.Program{Name: fmt.Sprintf("chaos-%s-%d", salt, i),
			IR: fmt.Sprintf("chaos %s %d\n", salt, i)})
	}
	w, resp := classifyVia(t, h, "m", progs...)
	switch {
	case w.Code == http.StatusOK:
		if len(resp.Results) != len(progs) {
			t.Fatalf("[%s] %d results for %d programs", salt, len(resp.Results), len(progs))
		}
		for i, r := range resp.Results {
			if r.Label == "" && r.Err == "" {
				t.Fatalf("[%s] result %d has neither verdict nor error: %+v", salt, i, r)
			}
		}
	default:
		var envelope rest.ErrorBody
		if err := json.Unmarshal(w.Body.Bytes(), &envelope); err != nil || envelope.Error.Code == "" {
			t.Fatalf("[%s] HTTP %d without a structured envelope: %s", salt, w.Code, w.Body.String())
		}
	}
}

// TestChaosRouterFaultPoints arms the router's fault points — proxy
// errors, proxy latency, health-probe failures — and hard-kills a live
// backend, against a continuous classify workload. Every request must
// end in a verdict or a structured error, the ring must eject and
// re-admit as the faults come and go, and the goroutine population must
// return to its pre-chaos baseline.
func TestChaosRouterFaultPoints(t *testing.T) {
	defer fault.DisarmAll()
	a, b := newFakeBackend(t, "a"), newFakeBackend(t, "b")
	rt := newTestRouter(t, Config{
		BreakerFailures: 3,
		RetryBackoff:    time.Millisecond,
	}, a, b)
	h := rt.Handler()

	chaosRound(t, h, "warmup")
	baseline := runtime.NumGoroutine()

	// router.proxy error mode: every proxied sub-request dies at the
	// injection point. Requests must fail structured (no_backend after
	// exhausted replicas), and the proxy failures trip both breakers.
	if err := fault.Arm("router.proxy", fault.Spec{Mode: fault.Error, Message: "chaos"}); err != nil {
		t.Fatal(err)
	}
	chaosRound(t, h, "proxy-err")
	fault.Disarm("router.proxy")
	waitFor(t, 5*time.Second, "fleet recovery after proxy faults", func() bool {
		return rt.Stats().HealthyBackends == 2
	})
	chaosRound(t, h, "proxy-err-recovered")

	// router.proxy latency mode: delayed, not deadlocked.
	if err := fault.Arm("router.proxy", fault.Spec{Mode: fault.Latency,
		Delay: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	chaosRound(t, h, "proxy-lat")
	fault.Disarm("router.proxy")

	// router.health error mode: active probes fail, ejecting the whole
	// fleet; requests answer structured envelopes, never hang. Disarming
	// re-admits everyone via half-open probes.
	if err := fault.Arm("router.health", fault.Spec{Mode: fault.Error, Message: "chaos"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "health-fault ejections", func() bool {
		return rt.Stats().HealthyBackends == 0
	})
	chaosRound(t, h, "health-err")
	fault.Disarm("router.health")
	waitFor(t, 5*time.Second, "readmission after health faults", func() bool {
		s := rt.Stats()
		return s.HealthyBackends == 2 && s.Readmissions >= 2
	})
	chaosRound(t, h, "health-recovered")

	// Hard-kill one backend: listener and every live connection die
	// instantly (no graceful drain). Requests keyed to the corpse must
	// still answer VERDICTS — the retry path reroutes to the survivor —
	// and the health loop ejects it.
	ejectionsBefore := rt.Stats().Ejections
	a.srv.CloseClientConnections()
	a.srv.Listener.Close()
	for round := 0; round < 5; round++ {
		w, resp := classifyVia(t, h, "m",
			serve.Program{Name: fmt.Sprintf("postkill-%d", round),
				IR: fmt.Sprintf("postkill %d\n", round)})
		if w.Code != http.StatusOK {
			t.Fatalf("kill round %d: HTTP %d: %s", round, w.Code, w.Body.String())
		}
		if r := resp.Results[0]; r.Err != "" || r.Label != "fake-b" {
			t.Fatalf("kill round %d: %+v, want a verdict from the survivor", round, r)
		}
	}
	waitFor(t, 5*time.Second, "corpse ejection", func() bool {
		s := rt.Stats()
		return s.HealthyBackends == 1 && s.Ejections > ejectionsBefore
	})

	// Calm after the storm: goroutines drain back to baseline.
	fault.DisarmAll()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+5 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines did not return to baseline (%d now, %d before):\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}

	s := rt.Stats()
	if s.Retries == 0 || s.Ejections == 0 || s.Readmissions == 0 {
		t.Fatalf("chaos ran but the resilience paths went unexercised: %+v", s)
	}
}

// TestChaosRouterFaultPointsRegistered pins that the router's fault
// points are visible to the admin fault surface (fault.List), so the
// backends' chaos tooling can arm them by name.
func TestChaosRouterFaultPointsRegistered(t *testing.T) {
	want := map[string]bool{"router.proxy": false, "router.health": false}
	for _, info := range fault.List() {
		if _, ok := want[info.Point]; ok {
			want[info.Point] = true
		}
	}
	for point, found := range want {
		if !found {
			t.Fatalf("fault point %s not registered (have %v)", point, fault.List())
		}
	}
}
