package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mpidetect/internal/serve"
	"mpidetect/internal/serve/rest"
	"mpidetect/internal/serve/servetest"
)

// BenchmarkRouterOverhead prices the router's cut on the warm classify
// path: one real backend (engine + REST transport) on loopback HTTP,
// the same pre-warmed 64-program batch (a CI-sweep-sized request) sent
// direct vs through a single-backend router. The acceptance bar is
// <= 10% ns/op overhead. A single-backend ring takes the transparent
// proxy path — no JSON parse, no digests — so the whole cut is one
// extra loopback hop, which the batch's real per-program work must
// amortize; anything above the bar means the router grew per-request
// or per-byte work it shouldn't have.
func BenchmarkRouterOverhead(b *testing.B) {
	reg := serve.NewRegistry()
	reg.Register("ir2vec", servetest.Trained(b))
	eng := serve.NewEngine(reg, serve.Config{CacheSize: 4096, CacheTTL: time.Hour})
	b.Cleanup(eng.Close)
	backend := httptest.NewServer(rest.NewHandler(reg, eng))
	b.Cleanup(backend.Close)

	rt, err := New(Config{
		Backends:      []string{backend.URL},
		CheckInterval: 50 * time.Millisecond,
		HedgeAfter:    -1, // one backend; a hedge could only duplicate work
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	b.Cleanup(front.Close)

	progs := make([]serve.Program, 64)
	for i := range progs {
		name := fmt.Sprintf("bench-%d", i)
		progs[i] = serve.Program{Name: name, IR: servetest.PingpongIR(b, name)}
	}
	body, err := json.Marshal(rest.ClassifyRequest{Model: "ir2vec", Programs: progs})
	if err != nil {
		b.Fatal(err)
	}

	post := func(url string) {
		res, err := http.Post(url+"/v1/classify", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		payload, _ := io.ReadAll(res.Body)
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			b.Fatalf("HTTP %d: %s", res.StatusCode, payload)
		}
		var resp rest.ClassifyResponse
		if err := json.Unmarshal(payload, &resp); err != nil {
			b.Fatal(err)
		}
		if len(resp.Results) != len(progs) {
			b.Fatalf("%d results for %d programs", len(resp.Results), len(progs))
		}
	}

	// Warm the verdict cache so both paths measure pure serving overhead.
	post(backend.URL)

	for _, mode := range []struct {
		name string
		url  string
	}{
		{"direct", backend.URL},
		{"routed", front.URL},
	} {
		b.Run(mode.name, func(b *testing.B) {
			post(mode.url) // per-path warmup (connection reuse, routed merge path)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				post(mode.url)
			}
		})
	}
}
