package router

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("digest-%d", i)
	}
	return keys
}

// TestRingDistribution: with enough virtual nodes, ownership across a
// small fleet stays roughly balanced — no backend starves or hogs.
func TestRingDistribution(t *testing.T) {
	backends := []string{"http://a", "http://b", "http://c", "http://d"}
	r := NewRing(backends, 0)
	counts := map[string]int{}
	const n = 10000
	for _, k := range ringKeys(n) {
		owner, ok := r.Owner(k)
		if !ok {
			t.Fatal("no owner")
		}
		counts[owner]++
	}
	for _, b := range backends {
		share := float64(counts[b]) / n
		if share < 0.10 || share > 0.45 {
			t.Fatalf("backend %s owns %.1f%% of keys; want a rough quarter (%v)",
				b, share*100, counts)
		}
	}
}

// TestRingMinimalRemap is the property the router buys with consistent
// hashing: removing one backend moves ONLY that backend's keys, each to
// its next replica; every other key keeps its owner.
func TestRingMinimalRemap(t *testing.T) {
	full := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	without := NewRing([]string{"http://a", "http://c"}, 0)
	moved := 0
	for _, k := range ringKeys(5000) {
		before, _ := full.Owner(k)
		after, _ := without.Owner(k)
		if before != "http://b" {
			if after != before {
				t.Fatalf("key %s moved %s -> %s though its owner survived", k, before, after)
			}
			continue
		}
		moved++
		// An orphaned key lands exactly on its next full-ring replica.
		replicas := full.Lookup(k, 2)
		if len(replicas) != 2 || after != replicas[1] {
			t.Fatalf("key %s remapped to %s, want next replica %v", k, after, replicas)
		}
	}
	if moved == 0 {
		t.Fatal("no keys owned by the removed backend; distribution is broken")
	}
}

// TestRingLookupOrder: Lookup yields distinct members, primary first,
// consistent with Owner, capped by max.
func TestRingLookupOrder(t *testing.T) {
	r := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	for _, k := range ringKeys(100) {
		all := r.Lookup(k, 0)
		if len(all) != 3 {
			t.Fatalf("Lookup(%s, 0) = %v, want all 3", k, all)
		}
		seen := map[string]bool{}
		for _, b := range all {
			if seen[b] {
				t.Fatalf("Lookup(%s) repeats %s: %v", k, b, all)
			}
			seen[b] = true
		}
		owner, _ := r.Owner(k)
		if owner != all[0] {
			t.Fatalf("Owner(%s) = %s but Lookup primary = %s", k, owner, all[0])
		}
		if two := r.Lookup(k, 2); len(two) != 2 || two[0] != all[0] || two[1] != all[1] {
			t.Fatalf("Lookup(%s, 2) = %v, want prefix of %v", k, two, all)
		}
	}
}

// TestRingEmpty: an empty ring answers lookups with nothing, not a
// panic.
func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Lookup("k", 0); len(got) != 0 {
		t.Fatalf("Lookup on empty ring = %v", got)
	}
	if _, ok := r.Owner("k"); ok {
		t.Fatal("Owner on empty ring reported ok")
	}
	if len(r.Members()) != 0 {
		t.Fatalf("Members on empty ring = %v", r.Members())
	}
}

// TestRingStability: the same backend set always builds the same ring —
// a restarted backend reclaims exactly its old keys.
func TestRingStability(t *testing.T) {
	a := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	b := NewRing([]string{"http://c", "http://a", "http://b"}, 0) // order must not matter
	for _, k := range ringKeys(1000) {
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		if oa != ob {
			t.Fatalf("key %s owned by %s vs %s across identical rings", k, oa, ob)
		}
	}
}
