// Router observability: the live counter snapshot (the "router" section
// of GET /v1/stats) and the fan-in aggregation that merges every
// backend's own /v1/stats into one fleet view.
package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"mpidetect/internal/resilience"
)

// BackendStats is one backend's row in the router stats section.
type BackendStats struct {
	Name          string `json:"name"`
	Healthy       bool   `json:"healthy"` // currently in the ring
	State         string `json:"state"`   // breaker state
	Requests      int64  `json:"requests"`
	Failures      int64  `json:"failures"`
	Probes        int64  `json:"probes"`
	ProbeFailures int64  `json:"probe_failures"`
	Trips         int64  `json:"trips"`
	LastError     string `json:"last_error,omitempty"`
}

// Stats is the router section of GET /v1/stats.
type Stats struct {
	Backends        []BackendStats `json:"backends"`
	HealthyBackends int            `json:"healthy_backends"`
	Requests        int64          `json:"requests"`
	Proxied         int64          `json:"proxied"`
	Retries         int64          `json:"retries"`
	Remaps          int64          `json:"remaps"`
	Ejections       int64          `json:"ejections"`
	Readmissions    int64          `json:"readmissions"`
	HedgesLaunched  int64          `json:"hedges_launched"`
	HedgesWon       int64          `json:"hedges_won"`
	HedgesLost      int64          `json:"hedges_lost"`
	NoBackend       int64          `json:"no_backend"`
	HedgeDelayNanos int64          `json:"hedge_delay_ns"` // current effective trigger
	Draining        bool           `json:"draining"`
}

// Stats snapshots the router counters.
func (rt *Router) Stats() Stats {
	live := rt.live.Load()
	inRing := make(map[string]struct{}, len(live.Members()))
	for _, n := range live.Members() {
		inRing[n] = struct{}{}
	}
	s := Stats{
		HealthyBackends: len(live.Members()),
		Requests:        rt.requests.Load(),
		Proxied:         rt.proxied.Load(),
		Retries:         rt.retries.Load(),
		Remaps:          rt.remaps.Load(),
		Ejections:       rt.ejections.Load(),
		Readmissions:    rt.readmissions.Load(),
		HedgesLaunched:  rt.hedges.Load(),
		HedgesWon:       rt.hedgesWon.Load(),
		HedgesLost:      rt.hedgesLost.Load(),
		NoBackend:       rt.noBackend.Load(),
		HedgeDelayNanos: int64(rt.hedgeDelay()),
		Draining:        rt.draining.Load(),
	}
	for name, b := range rt.backends {
		_, healthy := inRing[name]
		snap := b.breaker.Snapshot()
		b.mu.Lock()
		lastErr := b.lastErr
		b.mu.Unlock()
		s.Backends = append(s.Backends, BackendStats{
			Name: name, Healthy: healthy, State: snap.State.String(),
			Requests: b.requests.Load(), Failures: b.failures.Load(),
			Probes: b.probes.Load(), ProbeFailures: b.probeFailures.Load(),
			Trips: snap.Trips, LastError: lastErr,
		})
	}
	sort.Slice(s.Backends, func(i, j int) bool { return s.Backends[i].Name < s.Backends[j].Name })
	return s
}

// Ready builds the router's own GET /v1/readyz report: ok with the full
// fleet, degraded while any backend is ejected (the router still
// answers, remapping the missing slice), and draining once
// StartDraining ran.
func (rt *Router) Ready() resilience.Report {
	h := resilience.NewHealth()
	healthy := len(rt.live.Load().Members())
	total := len(rt.backends)
	switch {
	case healthy == 0:
		h.Set("ring", resilience.StatusDegraded, "no healthy backends")
	case healthy < total:
		h.Set("ring", resilience.StatusDegraded, ringDetail(healthy, total))
	default:
		h.Set("ring", resilience.StatusOK, ringDetail(healthy, total))
	}
	return h.Report(rt.draining.Load())
}

func ringDetail(healthy, total int) string {
	return fmt.Sprintf("%d/%d backends in ring", healthy, total)
}

// aggregateStats is the fleet-wide rollup of the backend counters that
// matter for capacity questions: how much work the fleet did and how
// well the sharded caches are holding it.
type aggregateStats struct {
	Backends      int   `json:"backends"`
	Reachable     int   `json:"reachable"`
	Requests      int64 `json:"requests"`
	Programs      int64 `json:"programs"`
	PipelineExecs int64 `json:"pipeline_execs"`
	CacheHits     int64 `json:"cache_hits"`
	CacheMisses   int64 `json:"cache_misses"`
	CacheSize     int64 `json:"cache_size"`
	CacheCapacity int64 `json:"cache_capacity"`
	SimExecs      int64 `json:"sim_execs"`
}

// backendStatsSubset is the slice of a backend's /v1/stats the
// aggregation reads; everything else passes through raw.
type backendStatsSubset struct {
	Engine struct {
		Requests      int64 `json:"requests"`
		Programs      int64 `json:"programs"`
		PipelineExecs int64 `json:"pipeline_execs"`
	} `json:"engine"`
	Cache *struct {
		Hits     int64 `json:"hits"`
		Misses   int64 `json:"misses"`
		Size     int64 `json:"size"`
		Capacity int64 `json:"capacity"`
	} `json:"cache"`
	Analyze *struct {
		SimExecs int64 `json:"sim_execs"`
	} `json:"analyze"`
}

// fanInStats queries every configured backend's /v1/stats concurrently
// (ejected ones included — an ejected backend may still answer stats)
// and returns the merged body: the router section, the aggregate
// rollup, and each backend's raw stats (or its error).
func (rt *Router) fanInStats(ctx context.Context) map[string]any {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.CheckTimeout)
	defer cancel()
	type fetched struct {
		name string
		raw  json.RawMessage
		err  error
	}
	out := make(chan fetched, len(rt.backends))
	var wg sync.WaitGroup
	for name, b := range rt.backends {
		wg.Add(1)
		go func(name string, b *backend) {
			defer wg.Done()
			raw, err := rt.fetchStats(ctx, b)
			out <- fetched{name, raw, err}
		}(name, b)
	}
	wg.Wait()
	close(out)

	agg := aggregateStats{Backends: len(rt.backends)}
	perBackend := map[string]any{}
	for f := range out {
		if f.err != nil {
			perBackend[f.name] = map[string]string{"error": f.err.Error()}
			continue
		}
		perBackend[f.name] = f.raw
		agg.Reachable++
		var sub backendStatsSubset
		if err := json.Unmarshal(f.raw, &sub); err != nil {
			continue
		}
		agg.Requests += sub.Engine.Requests
		agg.Programs += sub.Engine.Programs
		agg.PipelineExecs += sub.Engine.PipelineExecs
		if sub.Cache != nil {
			agg.CacheHits += sub.Cache.Hits
			agg.CacheMisses += sub.Cache.Misses
			agg.CacheSize += sub.Cache.Size
			agg.CacheCapacity += sub.Cache.Capacity
		}
		if sub.Analyze != nil {
			agg.SimExecs += sub.Analyze.SimExecs
		}
	}
	return map[string]any{
		"router":    rt.Stats(),
		"aggregate": agg,
		"backends":  perBackend,
	}
}

// fetchStats pulls one backend's raw stats body. It deliberately does
// NOT ride send(): an observability read must not feed the breaker or
// the proxy counters.
func (rt *Router) fetchStats(ctx context.Context, b *backend) (json.RawMessage, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.name+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &statusError{resp.StatusCode}
	}
	dec := json.NewDecoder(resp.Body)
	var raw json.RawMessage
	if err := dec.Decode(&raw); err != nil {
		return nil, err
	}
	return raw, nil
}

type statusError struct{ code int }

func (e *statusError) Error() string { return fmt.Sprintf("HTTP %d", e.code) }
