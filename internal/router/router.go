// Package router is the front tier of the serving stack: a digest-
// sharded reverse proxy that spreads classify/analyze traffic across N
// mpidetectd backends by consistent hashing on the programs' canonical
// routing digests. Every program deterministically owns one backend, so
// each backend's verdict cache and durable store hold a disjoint slice
// of the corpus and aggregate cache capacity scales linearly with the
// fleet — the same request hitting the router twice hits the same
// backend's warm entry twice.
//
// Robustness is the core of the design, not an afterthought:
//
//   - Active health checks ride each backend's GET /v1/readyz and feed a
//     per-backend resilience.Breaker; enough consecutive failures (dead
//     socket, 5xx, draining) eject the backend from the ring, and a
//     half-open probe per cooldown re-admits it once it answers again.
//   - Proxy failures (connect errors, 5xx) retry with jittered backoff
//     on the key's next ring replica — only idempotent, content-
//     addressed work is ever retried, and a response that has started
//     streaming is never replayed.
//   - The idempotent classify path hedges tail latency: when a backend
//     sits on a sub-request past the router's latency EWMA + deviation
//     band, a second copy goes to the next replica and the first
//     response wins (the loser is canceled).
//   - Ejection remaps only the dead backend's keys (consistent-hashing
//     property), and a restarted backend reclaims exactly its old keys,
//     lining back up with its still-warm durable store.
//
// The router is itself a good citizen of the stack's health protocol:
// StartDraining flips its own /v1/readyz to draining so the tier above
// ejects it while in-flight requests finish.
package router

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mpidetect/internal/core"
	"mpidetect/internal/events"
	"mpidetect/internal/fault"
	"mpidetect/internal/resilience"
)

// Fault points compiled into the router's hot paths, armable by tests
// and the backends' chaos tooling.
var (
	// FaultProxy fires in front of every proxied sub-request: error mode
	// is a dead backend socket (the retry path reroutes), latency mode a
	// slow backend (the hedge path races it).
	FaultProxy = fault.Register("router.proxy")
	// FaultHealth fires inside the active health probe: error mode makes
	// probes fail, driving breaker trips and ring ejections.
	FaultHealth = fault.Register("router.health")
)

// maxProxyBody bounds a buffered backend response.
const maxProxyBody = 64 << 20

// Config sizes the router; zero values take the documented defaults.
type Config struct {
	// Backends are the backend base URLs (e.g. http://127.0.0.1:9081).
	// At least one is required.
	Backends []string
	// Replicas is the virtual-node count per backend on the hash ring
	// (default 128).
	Replicas int

	// CheckInterval is the active health-check period (default 500ms);
	// CheckTimeout bounds one readyz probe (default 2s).
	CheckInterval time.Duration
	CheckTimeout  time.Duration

	// BreakerFailures consecutive probe/proxy failures eject a backend
	// from the ring (default 3); BreakerCooldown is how long it stays
	// ejected before a half-open probe may re-admit it (default 5s).
	BreakerFailures int
	BreakerCooldown time.Duration

	// MaxAttempts caps how many ring replicas one shard of work may try,
	// first attempt included (default 3, clamped to the backend count).
	MaxAttempts int
	// RetryBackoff is the base of the jittered exponential backoff
	// between attempts (default 10ms).
	RetryBackoff time.Duration

	// HedgeAfter fixes the classify hedging delay. 0 (the default)
	// adapts it to the observed latency EWMA + 3 deviations; negative
	// disables hedging.
	HedgeAfter time.Duration

	// Bus receives router events (router.ejected, router.readmitted).
	// Nil creates a private bus.
	Bus *events.Bus

	// Client overrides the proxy HTTP client (tests); nil builds one
	// with keep-alive pooling per backend.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = defaultReplicas
	}
	if c.CheckInterval <= 0 {
		c.CheckInterval = 500 * time.Millisecond
	}
	if c.CheckTimeout <= 0 {
		c.CheckTimeout = 2 * time.Second
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	if c.Bus == nil {
		c.Bus = events.NewBus()
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	return c
}

// backend is one member of the fleet: its breaker plus live counters.
type backend struct {
	name    string // base URL, no trailing slash
	breaker *resilience.Breaker

	requests      atomic.Int64 // proxied sub-requests sent
	failures      atomic.Int64 // transport errors + 5xx
	probes        atomic.Int64
	probeFailures atomic.Int64

	mu      sync.Mutex
	lastErr string
}

func (b *backend) noteErr(err error) {
	b.mu.Lock()
	b.lastErr = err.Error()
	b.mu.Unlock()
}

// Router shards requests across the fleet. Construct with New, serve
// its Handler, Close when done.
type Router struct {
	cfg      Config
	bus      *events.Bus
	client   *http.Client
	backends map[string]*backend
	full     *Ring // every configured backend; remap detection baseline

	ringMu sync.Mutex // serializes rebuilds (membership diffing)
	live   atomic.Pointer[Ring]

	draining atomic.Bool
	stop     chan struct{}
	wg       sync.WaitGroup

	requests     atomic.Int64 // router-level API requests
	proxied      atomic.Int64 // sub-requests sent to backends
	retries      atomic.Int64 // attempts beyond the first
	remaps       atomic.Int64 // keys served off their full-ring owner
	ejections    atomic.Int64
	readmissions atomic.Int64
	hedges       atomic.Int64 // hedge sub-requests launched
	hedgesWon    atomic.Int64 // hedge answered before the primary
	hedgesLost   atomic.Int64
	noBackend    atomic.Int64 // shards failed with every replica down

	// Classify sub-request latency EWMA and mean-absolute-deviation
	// (nanos), the adaptive hedge trigger. Plain load/compute/store: a
	// lost update costs one sample.
	ewmaNanos atomic.Int64
	devNanos  atomic.Int64
}

// New builds a router over the configured backends and starts its
// health-check loop. Every backend starts in the ring (optimistically
// healthy); the first probe round corrects that within CheckInterval.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("router: at least one backend is required")
	}
	rt := &Router{
		cfg:      cfg,
		bus:      cfg.Bus,
		client:   cfg.Client,
		backends: make(map[string]*backend, len(cfg.Backends)),
		stop:     make(chan struct{}),
	}
	names := make([]string, 0, len(cfg.Backends))
	for _, raw := range cfg.Backends {
		name := strings.TrimSuffix(strings.TrimSpace(raw), "/")
		if name == "" {
			return nil, fmt.Errorf("router: empty backend in %v", cfg.Backends)
		}
		if !strings.Contains(name, "://") {
			name = "http://" + name
		}
		if _, dup := rt.backends[name]; dup {
			return nil, fmt.Errorf("router: duplicate backend %s", name)
		}
		rt.backends[name] = &backend{
			name: name,
			breaker: resilience.NewBreaker(resilience.BreakerConfig{
				Failures: cfg.BreakerFailures,
				Cooldown: cfg.BreakerCooldown,
			}),
		}
		names = append(names, name)
	}
	sort.Strings(names)
	rt.full = NewRing(names, cfg.Replicas)
	rt.live.Store(rt.full)
	rt.wg.Add(1)
	go rt.healthLoop()
	return rt, nil
}

// Close stops the health loop and releases pooled connections. It does
// not wait for in-flight proxied requests — the HTTP server draining
// above the router owns that.
func (rt *Router) Close() {
	close(rt.stop)
	rt.wg.Wait()
	rt.client.CloseIdleConnections()
}

// Bus exposes the router's event bus.
func (rt *Router) Bus() *events.Bus { return rt.bus }

// StartDraining flips the router's /v1/readyz to draining so the load
// balancer above ejects this instance while in-flight requests finish.
func (rt *Router) StartDraining() { rt.draining.Store(true) }

// Draining reports whether StartDraining has been called.
func (rt *Router) Draining() bool { return rt.draining.Load() }

// routeKey is the shard key of one program for one model: the same
// lexically-normalized content digest family the backends cache under
// (core digests), so formatting variants of a program route — and cache
// — identically. The model is part of the key so each model's corpus
// spreads independently across the ring.
func routeKey(model, irText string) string {
	return core.DigestIRKeyed("route|"+model, irText)
}

// rebuildRing recomputes ring membership from the breakers' snapshots
// (Closed = in the ring) and swaps the live ring, publishing ejection/
// re-admission diffs. Serialized by ringMu so concurrent failure paths
// cannot interleave their diffs.
func (rt *Router) rebuildRing() {
	rt.ringMu.Lock()
	defer rt.ringMu.Unlock()
	prev := rt.live.Load()
	healthy := make([]string, 0, len(rt.backends))
	for name, b := range rt.backends {
		if b.breaker.Snapshot().State == resilience.Closed {
			healthy = append(healthy, name)
		}
	}
	sort.Strings(healthy)
	prevSet := make(map[string]struct{}, len(prev.Members()))
	for _, n := range prev.Members() {
		prevSet[n] = struct{}{}
	}
	same := len(healthy) == len(prevSet)
	for _, n := range healthy {
		if _, ok := prevSet[n]; !ok {
			same = false
		}
	}
	if same {
		return
	}
	next := NewRing(healthy, rt.cfg.Replicas)
	rt.live.Store(next)
	nextSet := make(map[string]struct{}, len(healthy))
	for _, n := range healthy {
		nextSet[n] = struct{}{}
	}
	for _, n := range prev.Members() {
		if _, ok := nextSet[n]; !ok {
			rt.ejections.Add(1)
			rt.bus.Publish(events.RouterEjected, BackendEventData{Backend: n,
				Healthy: len(healthy), Total: len(rt.backends)})
		}
	}
	for _, n := range healthy {
		if _, ok := prevSet[n]; !ok {
			rt.readmissions.Add(1)
			rt.bus.Publish(events.RouterReadmitted, BackendEventData{Backend: n,
				Healthy: len(healthy), Total: len(rt.backends)})
		}
	}
}

// BackendEventData accompanies events.RouterEjected / RouterReadmitted.
type BackendEventData struct {
	Backend string `json:"backend"`
	Healthy int    `json:"healthy"`
	Total   int    `json:"total"`
}

// candidates returns the ordered ring replicas for a shard key, noting
// a remap when the live primary differs from the full-ring owner (the
// backend the key would warm if the whole fleet were healthy).
func (rt *Router) candidates(key string) []string {
	live := rt.live.Load()
	owners := live.Lookup(key, 0)
	if len(owners) > 0 {
		if fullOwner, ok := rt.full.Owner(key); ok && fullOwner != owners[0] {
			rt.remaps.Add(1)
		}
	}
	return owners
}

// proxyResult is one buffered backend response.
type proxyResult struct {
	status      int
	contentType string
	body        []byte
	backend     string
}

// errNoBackend fails a shard whose every replica is ejected or
// exhausted; handlers surface it as a structured 503.
var errNoBackend = errors.New("router: no healthy backend for shard")

// retryable reports whether a failed attempt may move to the next ring
// replica: transport-level errors and 5xx statuses, never a response
// the backend answered deliberately (4xx/2xx), and never a canceled
// caller.
func retryable(res proxyResult, err error) bool {
	if err != nil {
		return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
	}
	return res.status >= 500
}

// send proxies one buffered sub-request to one backend and feeds its
// breaker: transport errors and 5xx count as failures (enough of them
// eject the backend between health rounds), anything the backend
// answered below 500 counts as success.
func (rt *Router) send(ctx context.Context, b *backend, method, path string, body []byte) (proxyResult, error) {
	rt.proxied.Add(1)
	b.requests.Add(1)
	res, err := rt.sendRaw(ctx, b, method, path, body)
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) && ctx.Err() != nil {
		// The caller walked away (or a hedge winner canceled this copy):
		// says nothing about the backend's health.
		return res, err
	}
	ok := err == nil && res.status < 500
	if !ok {
		b.failures.Add(1)
		if err != nil {
			b.noteErr(err)
		} else {
			b.noteErr(fmt.Errorf("HTTP %d from %s", res.status, path))
		}
	}
	b.breaker.Record(ok)
	if !ok && b.breaker.State() != resilience.Closed {
		rt.rebuildRing()
	}
	return res, err
}

func (rt *Router) sendRaw(ctx context.Context, b *backend, method, path string, body []byte) (proxyResult, error) {
	if err := fault.Inject(FaultProxy); err != nil {
		return proxyResult{}, err
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.name+path, rd)
	if err != nil {
		return proxyResult{}, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return proxyResult{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	if err != nil {
		return proxyResult{}, err
	}
	return proxyResult{status: resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		body:        data, backend: b.name}, nil
}

// backoff sleeps the jittered exponential backoff before attempt n
// (n >= 1 is the first retry), honoring ctx.
func (rt *Router) backoff(ctx context.Context, n int) error {
	d := rt.cfg.RetryBackoff << (n - 1)
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// observeLatency folds one successful classify sub-request into the
// hedge trigger's EWMA + deviation band.
func (rt *Router) observeLatency(d time.Duration) {
	const alpha = 0.2
	prev := rt.ewmaNanos.Load()
	if prev == 0 {
		rt.ewmaNanos.Store(int64(d))
		return
	}
	diff := int64(d) - prev
	if diff < 0 {
		diff = -diff
	}
	prevDev := rt.devNanos.Load()
	rt.devNanos.Store(int64(alpha*float64(diff) + (1-alpha)*float64(prevDev)))
	rt.ewmaNanos.Store(int64(alpha*float64(d) + (1-alpha)*float64(prev)))
}

// hedgeDelay is how long a classify sub-request may run before a hedge
// copy races it: the configured constant, or EWMA + 3 deviations with a
// floor that keeps the router from hedging on scheduler noise. Zero
// means "do not hedge" (disabled, or no samples yet).
func (rt *Router) hedgeDelay() time.Duration {
	if rt.cfg.HedgeAfter < 0 {
		return 0
	}
	if rt.cfg.HedgeAfter > 0 {
		return rt.cfg.HedgeAfter
	}
	ewma := rt.ewmaNanos.Load()
	if ewma == 0 {
		return 0
	}
	d := time.Duration(ewma + 3*rt.devNanos.Load())
	if d < 2*time.Millisecond {
		d = 2 * time.Millisecond
	}
	return d
}

// doShard runs one shard of idempotent work against the key's ring
// replicas: primary first, rerouting to the next replica (with jittered
// backoff) on connect/5xx failures, hedging the tail when enabled.
// Responses below 500 — success or a deliberate 4xx envelope — return
// as-is; errNoBackend means every replica was down or exhausted.
func (rt *Router) doShard(ctx context.Context, key, method, path string, body []byte, hedge bool) (proxyResult, error) {
	cands := rt.candidates(key)
	if len(cands) == 0 {
		rt.noBackend.Add(1)
		return proxyResult{}, errNoBackend
	}
	attempts := rt.cfg.MaxAttempts
	if attempts > len(cands) {
		attempts = len(cands)
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			rt.retries.Add(1)
			if err := rt.backoff(ctx, i); err != nil {
				return proxyResult{}, err
			}
		}
		b := rt.backends[cands[i]]
		var next *backend
		if hedge && i+1 < len(cands) {
			next = rt.backends[cands[i+1]]
		}
		res, err := rt.attempt(ctx, b, next, method, path, body)
		if err == nil && res.status < 500 {
			return res, nil
		}
		if !retryable(res, err) {
			if err != nil {
				return proxyResult{}, err
			}
			return res, nil
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = fmt.Errorf("HTTP %d from %s", res.status, res.backend)
		}
	}
	rt.noBackend.Add(1)
	return proxyResult{}, fmt.Errorf("%w (%d attempts): %v", errNoBackend, attempts, lastErr)
}

// attempt sends to one backend, racing a hedge copy against the next
// replica when the primary overstays the hedge delay. First response
// wins; the loser's context is canceled. Hedge copies ride the same
// send path, so their outcomes feed breakers and counters identically.
func (rt *Router) attempt(ctx context.Context, b, next *backend, method, path string, body []byte) (proxyResult, error) {
	delay := time.Duration(0)
	if next != nil {
		delay = rt.hedgeDelay()
	}
	start := time.Now()
	if delay == 0 || next == nil {
		res, err := rt.send(ctx, b, method, path, body)
		if err == nil && res.status < 500 {
			rt.observeLatency(time.Since(start))
		}
		return res, err
	}

	type reply struct {
		res   proxyResult
		err   error
		hedge bool
	}
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make(chan reply, 2)
	inflight := 1
	go func() {
		res, err := rt.send(raceCtx, b, method, path, body)
		out <- reply{res, err, false}
	}()
	timer := time.NewTimer(delay)
	defer timer.Stop()
	hedged := false
	for {
		select {
		case <-timer.C:
			if !hedged {
				hedged = true
				rt.hedges.Add(1)
				inflight++
				go func() {
					res, err := rt.send(raceCtx, next, method, path, body)
					out <- reply{res, err, true}
				}()
			}
		case r := <-out:
			inflight--
			if r.err == nil && r.res.status < 500 {
				// Winner: cancel the loser and settle the hedge tally.
				cancel()
				if hedged {
					if r.hedge {
						rt.hedgesWon.Add(1)
					} else {
						rt.hedgesLost.Add(1)
					}
				}
				rt.observeLatency(time.Since(start))
				return r.res, r.err
			}
			if inflight > 0 {
				continue // the other copy may still answer
			}
			return r.res, r.err
		case <-ctx.Done():
			return proxyResult{}, ctx.Err()
		}
	}
}
