package router

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mpidetect/internal/serve"
	"mpidetect/internal/serve/rest"
)

// fakeBackend is a scripted mpidetectd: just enough of the v1 surface
// for the router, with failure/latency knobs per endpoint.
type fakeBackend struct {
	id  string
	srv *httptest.Server

	classifies  atomic.Int64 // classify sub-requests served
	batches     atomic.Int64
	readyFail   atomic.Bool  // readyz answers 500
	classify500 atomic.Bool  // classify answers 500
	classify404 atomic.Bool  // classify answers a deliberate envelope
	classifyLag atomic.Int64 // ns to sleep before answering classify
	dropBatchAt atomic.Int64 // >0: sever the batch stream after N events
}

func newFakeBackend(t *testing.T, id string) *fakeBackend {
	t.Helper()
	f := &fakeBackend{id: id}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		if f.readyFail.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	})
	mux.HandleFunc("POST /v1/classify", func(w http.ResponseWriter, r *http.Request) {
		f.classifies.Add(1)
		if lag := f.classifyLag.Load(); lag > 0 {
			select {
			case <-time.After(time.Duration(lag)):
			case <-r.Context().Done():
				return
			}
		}
		if f.classify500.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		if f.classify404.Load() {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusNotFound)
			w.Write([]byte(`{"error":{"code":"unknown_model","message":"nope"}}`))
			return
		}
		var req rest.ClassifyRequest
		json.NewDecoder(r.Body).Decode(&req)
		resp := rest.ClassifyResponse{Model: req.Model}
		for _, p := range req.Programs {
			resp.Results = append(resp.Results,
				serve.Result{Name: p.Name, Label: "fake-" + f.id, Confidence: 1})
		}
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("POST /v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"backend":"` + f.id + `"}`))
	})
	mux.HandleFunc("POST /v1/analyze/batch", func(w http.ResponseWriter, r *http.Request) {
		f.batches.Add(1)
		var req serve.BatchRequest
		json.NewDecoder(r.Body).Decode(&req)
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		flusher, _ := w.(http.Flusher)
		for i, p := range req.Programs {
			if cut := f.dropBatchAt.Load(); cut > 0 && int64(i) >= cut {
				// Sever the connection mid-stream (panic is net/http's
				// sanctioned hard abort).
				panic(http.ErrAbortHandler)
			}
			enc.Encode(serve.VerdictEvent{Index: i, Name: p.Name,
				ML: serve.Result{Label: "fake-" + f.id}})
			if flusher != nil {
				flusher.Flush()
			}
		}
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"engine":{"requests":%d,"programs":%d,"pipeline_execs":%d},"cache":{"hits":1,"misses":2,"size":3,"capacity":10}}`,
			f.classifies.Load(), f.classifies.Load(), f.classifies.Load())
	})
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"models":[{"name":"fake-` + f.id + `"}]}`))
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

// newTestRouter builds a router over the fakes with fast test timings.
func newTestRouter(t *testing.T, cfg Config, fakes ...*fakeBackend) *Router {
	t.Helper()
	for _, f := range fakes {
		cfg.Backends = append(cfg.Backends, f.srv.URL)
	}
	if cfg.CheckInterval == 0 {
		cfg.CheckInterval = 10 * time.Millisecond
	}
	if cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = 40 * time.Millisecond
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = -1 // deterministic unless a test opts in
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// byName maps fake backends by normalized URL so tests can find the
// owner of a key.
func byName(fakes ...*fakeBackend) map[string]*fakeBackend {
	m := map[string]*fakeBackend{}
	for _, f := range fakes {
		m[f.srv.URL] = f
	}
	return m
}

func classifyVia(t *testing.T, h http.Handler, model string, progs ...serve.Program) (*httptest.ResponseRecorder, rest.ClassifyResponse) {
	t.Helper()
	body, _ := json.Marshal(rest.ClassifyRequest{Model: model, Programs: progs})
	req := httptest.NewRequest(http.MethodPost, "/v1/classify", bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var resp rest.ClassifyResponse
	if w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decoding classify response: %v (%s)", err, w.Body.String())
		}
	}
	return w, resp
}

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRouterShardsDeterministically: the same program always lands on
// the same backend, and the fleet shares a spread-out corpus.
func TestRouterShardsDeterministically(t *testing.T) {
	a, b := newFakeBackend(t, "a"), newFakeBackend(t, "b")
	rt := newTestRouter(t, Config{}, a, b)
	h := rt.Handler()
	fakes := byName(a, b)

	owners := map[string]string{}
	for i := 0; i < 8; i++ {
		p := serve.Program{Name: fmt.Sprintf("p%d", i), IR: fmt.Sprintf("unit p%d\n", i)}
		for round := 0; round < 2; round++ {
			w, resp := classifyVia(t, h, "m", p)
			if w.Code != http.StatusOK {
				t.Fatalf("classify = %d: %s", w.Code, w.Body.String())
			}
			got := resp.Results[0].Label
			if prev, ok := owners[p.Name]; ok && prev != got {
				t.Fatalf("program %s flapped %s -> %s", p.Name, prev, got)
			}
			owners[p.Name] = got
		}
		// Routing agrees with the ring.
		owner, _ := rt.live.Load().Owner(routeKey("m", p.IR))
		if want := "fake-" + fakes[owner].id; owners[p.Name] != want {
			t.Fatalf("program %s served by %s, ring owner is %s", p.Name, owners[p.Name], want)
		}
	}
}

// TestRouterSplitBatchMerge: a batch spanning both shards comes back
// merged in request order, every result from its own shard owner.
func TestRouterSplitBatchMerge(t *testing.T) {
	a, b := newFakeBackend(t, "a"), newFakeBackend(t, "b")
	rt := newTestRouter(t, Config{}, a, b)
	fakes := byName(a, b)

	var progs []serve.Program
	for i := 0; i < 32; i++ {
		progs = append(progs, serve.Program{Name: fmt.Sprintf("p%d", i),
			IR: fmt.Sprintf("batch p%d\n", i)})
	}
	w, resp := classifyVia(t, rt.Handler(), "m", progs...)
	if w.Code != http.StatusOK {
		t.Fatalf("classify = %d: %s", w.Code, w.Body.String())
	}
	if len(resp.Results) != len(progs) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(progs))
	}
	shards := map[string]int{}
	for i, r := range resp.Results {
		if r.Name != progs[i].Name {
			t.Fatalf("result %d is %q, want %q (order lost)", i, r.Name, progs[i].Name)
		}
		owner, _ := rt.live.Load().Owner(routeKey("m", progs[i].IR))
		if want := "fake-" + fakes[owner].id; r.Label != want {
			t.Fatalf("program %s answered by %s, want shard owner %s", r.Name, r.Label, want)
		}
		shards[r.Label]++
	}
	if len(shards) != 2 {
		t.Fatalf("batch did not split across both backends: %v", shards)
	}
}

// TestRouterRetryReroutes: a backend that 500s every classify is routed
// around — the request still answers from the next replica.
func TestRouterRetryReroutes(t *testing.T) {
	a, b := newFakeBackend(t, "a"), newFakeBackend(t, "b")
	rt := newTestRouter(t, Config{BreakerFailures: 100, RetryBackoff: time.Millisecond}, a, b)
	fakes := byName(a, b)

	// Find a program owned by a live backend, then break that backend.
	p := ownedProgram(t, rt, "m", fakes, nil)
	owner := fakes[ownerOf(rt, "m", p)]
	owner.classify500.Store(true)

	w, resp := classifyVia(t, rt.Handler(), "m", p)
	if w.Code != http.StatusOK {
		t.Fatalf("classify = %d: %s", w.Code, w.Body.String())
	}
	if want := "fake-" + owner.id; resp.Results[0].Label == want {
		t.Fatalf("result still came from the broken owner %s", want)
	}
	if resp.Results[0].Err != "" {
		t.Fatalf("rerouted result carries error: %+v", resp.Results[0])
	}
	if rt.Stats().Retries == 0 {
		t.Fatal("no retry counted")
	}
}

// ownerOf returns the live-ring owner URL of a program.
func ownerOf(rt *Router, model string, p serve.Program) string {
	owner, _ := rt.live.Load().Owner(routeKey(model, p.IR))
	return owner
}

// ownedProgram fabricates a program owned by any backend (or by the
// specific backend `want` if non-nil).
func ownedProgram(t *testing.T, rt *Router, model string, fakes map[string]*fakeBackend, want *fakeBackend) serve.Program {
	t.Helper()
	for i := 0; i < 10000; i++ {
		p := serve.Program{Name: fmt.Sprintf("seek%d", i), IR: fmt.Sprintf("seek p%d\n", i)}
		owner := ownerOf(rt, model, p)
		if owner == "" {
			t.Fatal("empty ring")
		}
		if want == nil || fakes[owner] == want {
			return p
		}
	}
	t.Fatal("no program found for the wanted owner")
	return serve.Program{}
}

// TestRouter4xxPassThrough: a deliberate backend rejection is forwarded
// verbatim — status, envelope and all — and never retried.
func TestRouter4xxPassThrough(t *testing.T) {
	a, b := newFakeBackend(t, "a"), newFakeBackend(t, "b")
	rt := newTestRouter(t, Config{}, a, b)
	fakes := byName(a, b)

	p := ownedProgram(t, rt, "m", fakes, nil)
	owner := fakes[ownerOf(rt, "m", p)]
	owner.classify404.Store(true)
	before := a.classifies.Load() + b.classifies.Load()

	w, _ := classifyVia(t, rt.Handler(), "m", p)
	if w.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404 passed through", w.Code)
	}
	var envelope rest.ErrorBody
	if err := json.Unmarshal(w.Body.Bytes(), &envelope); err != nil || envelope.Error.Code != "unknown_model" {
		t.Fatalf("envelope not preserved: %s", w.Body.String())
	}
	if got := a.classifies.Load() + b.classifies.Load() - before; got != 1 {
		t.Fatalf("4xx caused %d sub-requests, want 1 (no retry)", got)
	}
}

// TestRouterEjectionAndReadmission: failing health probes eject a
// backend (its keys remap), recovery re-admits it via the half-open
// probe (its keys come back).
func TestRouterEjectionAndReadmission(t *testing.T) {
	a, b := newFakeBackend(t, "a"), newFakeBackend(t, "b")
	rt := newTestRouter(t, Config{BreakerFailures: 2}, a, b)
	fakes := byName(a, b)
	p := ownedProgram(t, rt, "m", fakes, nil)
	victim := fakes[ownerOf(rt, "m", p)]

	victim.readyFail.Store(true)
	waitFor(t, 5*time.Second, "ejection", func() bool {
		s := rt.Stats()
		return s.HealthyBackends == 1 && s.Ejections >= 1
	})
	// The victim's key now answers from the surviving replica.
	w, resp := classifyVia(t, rt.Handler(), "m", p)
	if w.Code != http.StatusOK || resp.Results[0].Label == "fake-"+victim.id {
		t.Fatalf("ejected backend still serving: %d %+v", w.Code, resp.Results)
	}
	if rt.Stats().Remaps == 0 {
		t.Fatal("no remap counted for an ejected owner's key")
	}

	victim.readyFail.Store(false)
	waitFor(t, 5*time.Second, "readmission", func() bool {
		s := rt.Stats()
		return s.HealthyBackends == 2 && s.Readmissions >= 1
	})
	// Ownership restored: the key routes to its original owner again.
	waitFor(t, 5*time.Second, "ownership restored", func() bool {
		_, resp := classifyVia(t, rt.Handler(), "m", p)
		return len(resp.Results) == 1 && resp.Results[0].Label == "fake-"+victim.id
	})
}

// TestRouterHedging: a classify sub-request that overstays the hedge
// delay races the next replica; the fast copy wins and the client never
// sees the slow backend's latency.
func TestRouterHedging(t *testing.T) {
	a, b := newFakeBackend(t, "a"), newFakeBackend(t, "b")
	rt := newTestRouter(t, Config{HedgeAfter: 5 * time.Millisecond}, a, b)
	fakes := byName(a, b)
	p := ownedProgram(t, rt, "m", fakes, nil)
	slow := fakes[ownerOf(rt, "m", p)]
	slow.classifyLag.Store(int64(2 * time.Second))

	start := time.Now()
	w, resp := classifyVia(t, rt.Handler(), "m", p)
	elapsed := time.Since(start)
	if w.Code != http.StatusOK {
		t.Fatalf("classify = %d: %s", w.Code, w.Body.String())
	}
	if resp.Results[0].Label == "fake-"+slow.id {
		t.Fatal("slow primary won; hedge never fired")
	}
	if elapsed > time.Second {
		t.Fatalf("hedged request took %s; the hedge should have answered fast", elapsed)
	}
	s := rt.Stats()
	if s.HedgesLaunched == 0 || s.HedgesWon == 0 {
		t.Fatalf("hedge counters empty: %+v", s)
	}
}

// TestRouterDrainFlipsReadyz: StartDraining turns the router's own
// readiness to 503/draining while requests keep answering.
func TestRouterDrainFlipsReadyz(t *testing.T) {
	a := newFakeBackend(t, "a")
	rt := newTestRouter(t, Config{}, a)
	h := rt.Handler()

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/readyz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("readyz before drain = %d", w.Code)
	}
	rt.StartDraining()
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/readyz", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz draining = %d, want 503", w.Code)
	}
	if !strings.Contains(w.Body.String(), "draining") {
		t.Fatalf("draining report missing: %s", w.Body.String())
	}
	// In-flight work still answers while draining.
	if w, _ := classifyVia(t, h, "m", serve.Program{Name: "p", IR: "solo p\n"}); w.Code != http.StatusOK {
		t.Fatalf("classify while draining = %d", w.Code)
	}
}

// TestRouterStatsFanIn: /v1/stats carries the router section, a summed
// aggregate, and every backend's raw body.
func TestRouterStatsFanIn(t *testing.T) {
	a, b := newFakeBackend(t, "a"), newFakeBackend(t, "b")
	rt := newTestRouter(t, Config{}, a, b)
	classifyVia(t, rt.Handler(), "m", serve.Program{Name: "p", IR: "solo p\n"})

	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("stats = %d", w.Code)
	}
	var body struct {
		Router    Stats          `json:"router"`
		Aggregate aggregateStats `json:"aggregate"`
		Backends  map[string]any `json:"backends"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	if len(body.Router.Backends) != 2 || body.Router.HealthyBackends != 2 {
		t.Fatalf("router section wrong: %+v", body.Router)
	}
	if body.Aggregate.Reachable != 2 || body.Aggregate.Requests == 0 {
		t.Fatalf("aggregate wrong: %+v", body.Aggregate)
	}
	if body.Aggregate.CacheCapacity != 20 { // 10 per fake backend
		t.Fatalf("aggregate cache capacity = %d, want summed 20", body.Aggregate.CacheCapacity)
	}
	if len(body.Backends) != 2 {
		t.Fatalf("backend sections = %d, want 2", len(body.Backends))
	}
}

// TestRouterBatchStreamMerge: the NDJSON batch is split per shard,
// streamed concurrently, and every event's index is remapped to its
// original request position.
func TestRouterBatchStreamMerge(t *testing.T) {
	a, b := newFakeBackend(t, "a"), newFakeBackend(t, "b")
	rt := newTestRouter(t, Config{}, a, b)

	var progs []serve.Program
	for i := 0; i < 24; i++ {
		progs = append(progs, serve.Program{Name: fmt.Sprintf("p%d", i),
			IR: fmt.Sprintf("stream p%d\n", i)})
	}
	body, _ := json.Marshal(serve.BatchRequest{Model: "m", Programs: progs})
	req := httptest.NewRequest(http.MethodPost, "/v1/analyze/batch", bytes.NewReader(body))
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("batch = %d: %s", w.Code, w.Body.String())
	}
	if a.batches.Load() == 0 || b.batches.Load() == 0 {
		t.Fatalf("batch not split: a=%d b=%d", a.batches.Load(), b.batches.Load())
	}
	seen := map[int]serve.VerdictEvent{}
	sc := bufio.NewScanner(w.Body)
	for sc.Scan() {
		var ev serve.VerdictEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if _, dup := seen[ev.Index]; dup {
			t.Fatalf("index %d delivered twice", ev.Index)
		}
		seen[ev.Index] = ev
	}
	if len(seen) != len(progs) {
		t.Fatalf("stream delivered %d events, want %d", len(seen), len(progs))
	}
	for i, p := range progs {
		ev, ok := seen[i]
		if !ok || ev.Name != p.Name || ev.Err != "" {
			t.Fatalf("index %d: got %+v, want clean event for %s", i, ev, p.Name)
		}
	}
}

// TestRouterBatchMidStreamRetry: a shard stream severed mid-flight
// resumes on the next replica with ONLY the undelivered programs —
// every index arrives exactly once, none replayed.
func TestRouterBatchMidStreamRetry(t *testing.T) {
	a, b := newFakeBackend(t, "a"), newFakeBackend(t, "b")
	rt := newTestRouter(t, Config{BreakerFailures: 100, RetryBackoff: time.Millisecond}, a, b)
	fakes := byName(a, b)

	// A batch whose programs ALL live on one backend, which will cut the
	// stream after 2 events.
	victim := fakes[ownerOf(rt, "m", serve.Program{IR: "seed p0\n"})]
	var progs []serve.Program
	for i := 0; len(progs) < 6; i++ {
		p := serve.Program{Name: fmt.Sprintf("v%d", i), IR: fmt.Sprintf("victim p%d\n", i)}
		if fakes[ownerOf(rt, "m", p)] == victim {
			progs = append(progs, p)
		}
	}
	victim.dropBatchAt.Store(2)

	body, _ := json.Marshal(serve.BatchRequest{Model: "m", Programs: progs})
	req := httptest.NewRequest(http.MethodPost, "/v1/analyze/batch", bytes.NewReader(body))
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("batch = %d: %s", w.Code, w.Body.String())
	}
	seen := map[int]serve.VerdictEvent{}
	sc := bufio.NewScanner(w.Body)
	for sc.Scan() {
		var ev serve.VerdictEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if _, dup := seen[ev.Index]; dup {
			t.Fatalf("index %d replayed after the mid-stream retry", ev.Index)
		}
		seen[ev.Index] = ev
	}
	if len(seen) != len(progs) {
		t.Fatalf("delivered %d events, want %d", len(seen), len(progs))
	}
	other := "fake-a"
	if victim == fakes[a.srv.URL] {
		other = "fake-b"
	}
	fromVictim, fromOther := 0, 0
	for i := range progs {
		ev := seen[i]
		if ev.Err != "" {
			t.Fatalf("index %d carries error %q; retry should have answered it", i, ev.Err)
		}
		switch ev.ML.Label {
		case "fake-" + victim.id:
			fromVictim++
		case other:
			fromOther++
		}
	}
	if fromVictim == 0 || fromOther == 0 {
		t.Fatalf("retry split wrong: %d from severed backend, %d from replica", fromVictim, fromOther)
	}
	if rt.Stats().Retries == 0 {
		t.Fatal("no retry counted")
	}
}

// TestRouterNoBackend: with the whole fleet ejected, requests answer a
// structured 503 envelope — never a hang or a panic.
func TestRouterNoBackend(t *testing.T) {
	a := newFakeBackend(t, "a")
	rt := newTestRouter(t, Config{BreakerFailures: 1}, a)
	a.readyFail.Store(true)
	waitFor(t, 5*time.Second, "fleet ejection", func() bool {
		return rt.Stats().HealthyBackends == 0
	})
	w, _ := classifyVia(t, rt.Handler(), "m", serve.Program{Name: "p", IR: "solo p\n"})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("classify with empty ring = %d, want 503", w.Code)
	}
	var envelope rest.ErrorBody
	if err := json.Unmarshal(w.Body.Bytes(), &envelope); err != nil || envelope.Error.Code != "no_backend" {
		t.Fatalf("envelope = %s", w.Body.String())
	}
	if w.Result().Header.Get("Retry-After") == "" {
		t.Fatal("no Retry-After on 503")
	}
}

// TestRouterJobsNotRouted: backend-local surfaces answer a structured
// 404 explaining themselves.
func TestRouterJobsNotRouted(t *testing.T) {
	a := newFakeBackend(t, "a")
	rt := newTestRouter(t, Config{}, a)
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader("{}")))
	if w.Code != http.StatusNotFound {
		t.Fatalf("jobs via router = %d, want 404", w.Code)
	}
	var envelope rest.ErrorBody
	if err := json.Unmarshal(w.Body.Bytes(), &envelope); err != nil || envelope.Error.Code != "not_routed" {
		t.Fatalf("envelope = %s", w.Body.String())
	}
}
