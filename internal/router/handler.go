// The router's HTTP surface. It speaks the same v1 API as a backend —
// a client cannot tell a router from a single mpidetectd except by the
// extra "router" section in /v1/stats — but under each route the work
// is sharded across the ring:
//
//	POST /v1/classify       split by routing digest, fan out, merge by index (hedged)
//	POST /v1/analyze        single-shard proxy with replica retries
//	POST /v1/analyze/batch  split, per-shard NDJSON streams merged with index remap
//	GET  /v1/stats          fan-in: router + aggregate + per-backend stats
//	GET  /v1/healthz        router liveness
//	GET  /v1/readyz         ring health (degraded when any backend is out) + draining
//	GET  /v1/models         proxied from the first live backend
//
// The async-job and admin surfaces are deliberately NOT routed: a job id
// is backend-local state, and admin actions (snapshots, fault arming)
// target one process. Those return a structured 404 telling the caller
// to address a backend directly.
package router

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"mpidetect/internal/fault"
	"mpidetect/internal/resilience"
	"mpidetect/internal/serve"
	"mpidetect/internal/serve/rest"
)

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits the stack's unified error envelope (rest.ErrorBody),
// so router-originated errors are indistinguishable in shape from
// backend-originated ones.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, rest.ErrorBody{Error: rest.ErrorDetail{Code: code, Message: msg}})
}

// forward relays a buffered backend response verbatim — status,
// content type, body — preserving the backend's envelope for 4xx and
// deliberate non-JSON replies alike.
func forward(w http.ResponseWriter, res proxyResult) {
	ct := res.contentType
	if ct == "" {
		ct = "application/json"
	}
	w.Header().Set("Content-Type", ct)
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// shardError maps a failed shard onto the envelope: every replica down
// is a 503 the client should retry against, anything else a 502.
func shardError(w http.ResponseWriter, err error) {
	if errors.Is(err, errNoBackend) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "no_backend", err.Error())
		return
	}
	writeError(w, http.StatusBadGateway, "bad_gateway", err.Error())
}

// Handler mounts the router's v1 surface.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", rt.classifyHandler)
	mux.HandleFunc("POST /v1/analyze", rt.analyzeHandler)
	mux.HandleFunc("POST /v1/analyze/batch", rt.batchHandler)
	mux.HandleFunc("GET /v1/stats", rt.statsHandler)
	mux.HandleFunc("GET /v1/healthz", rt.healthzHandler)
	mux.HandleFunc("GET /v1/readyz", rt.readyzHandler)
	mux.HandleFunc("GET /v1/models", rt.modelsHandler)
	mux.HandleFunc("/v1/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "not_routed",
			"this endpoint is backend-local; address a backend directly")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "not_found", "no such route")
	})
	return mux
}

// readBody reads the bounded request body, answering the envelope on
// failure.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, maxProxyBody)
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				"reading request: "+err.Error())
			return nil, false
		}
		writeError(w, http.StatusBadRequest, "invalid_json",
			"reading request: "+err.Error())
		return nil, false
	}
	return raw, true
}

// decode parses a bounded JSON body into v, answering the envelope on
// failure. The raw bytes come back too, so single-shard requests can be
// proxied verbatim instead of re-encoded.
func (rt *Router) decode(w http.ResponseWriter, r *http.Request, v any) ([]byte, bool) {
	raw, ok := rt.readBody(w, r)
	if !ok {
		return nil, false
	}
	if err := json.Unmarshal(raw, v); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_json",
			"decoding request: "+err.Error())
		return nil, false
	}
	return raw, true
}

// proxySolo is the single-backend deployment's hot path: with exactly
// one configured backend the ring has exactly one possible owner, so
// the router acts as a transparent streaming proxy — no JSON parse, no
// digests, no buffering; request and response bytes flow straight
// through. Retries and hedges need a second replica, and with one
// candidate doShard could never retry either, so single-attempt
// streaming gives up nothing. Breaker accounting, the fault point, and
// the no-backend 503 still apply. Returns false when the deployment
// has more than one backend.
func (rt *Router) proxySolo(w http.ResponseWriter, r *http.Request, path string) bool {
	if len(rt.backends) != 1 {
		return false
	}
	cands := rt.candidates("")
	if len(cands) == 0 {
		rt.noBackend.Add(1)
		shardError(w, errNoBackend)
		return true
	}
	b := rt.backends[cands[0]]
	rt.proxied.Add(1)
	b.requests.Add(1)
	relayed, err := rt.relay(w, r, b, path)
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) && r.Context().Err() != nil {
		// The caller walked away: says nothing about the backend's health,
		// and there is nobody left to answer.
		return true
	}
	if err != nil {
		b.failures.Add(1)
		b.noteErr(err)
	}
	b.breaker.Record(err == nil)
	if err != nil && b.breaker.State() != resilience.Closed {
		rt.rebuildRing()
	}
	if err != nil && !relayed {
		shardError(w, err)
	}
	return true
}

// relay streams one request straight through to a backend and its
// response straight back. relayed reports whether response bytes (or
// headers) already reached the client — past that point an error can
// only be logged against the backend, not answered with an envelope.
func (rt *Router) relay(w http.ResponseWriter, r *http.Request, b *backend, path string) (relayed bool, err error) {
	if err := fault.Inject(FaultProxy); err != nil {
		return false, err
	}
	body := http.MaxBytesReader(w, r.Body, maxProxyBody)
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, b.name+path, body)
	if err != nil {
		return false, err
	}
	req.ContentLength = r.ContentLength
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		return false, fmt.Errorf("HTTP %d from %s", resp.StatusCode, b.name)
	}
	ct := resp.Header.Get("Content-Type")
	if ct == "" {
		ct = "application/json"
	}
	w.Header().Set("Content-Type", ct)
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		return true, fmt.Errorf("relaying response from %s: %w", b.name, err)
	}
	return true, nil
}

// shard is one backend's slice of a split batch: the original request
// indices it carries and the representative routing key doShard routes
// by (every index in the shard has the same live primary).
type shard struct {
	key     string
	indices []int
}

// splitByOwner groups program indices by their live-ring primary.
// Shards come back in deterministic (first-index) order. ok=false means
// the ring is empty.
func (rt *Router) splitByOwner(model string, programs []serve.Program) ([]shard, bool) {
	live := rt.live.Load()
	if len(live.Members()) == 0 {
		return nil, false
	}
	if len(rt.backends) == 1 && len(programs) > 0 {
		// One-backend deployment: the ring has exactly one possible owner,
		// so skip the per-program digests — the router is a pure proxy
		// here and its overhead must price accordingly.
		s := shard{key: routeKey(model, ""), indices: make([]int, len(programs))}
		for i := range s.indices {
			s.indices[i] = i
		}
		return []shard{s}, true
	}
	byOwner := map[string]*shard{}
	order := []string{}
	for i, p := range programs {
		key := routeKey(model, p.IR)
		owner, _ := live.Owner(key)
		s, ok := byOwner[owner]
		if !ok {
			s = &shard{key: key}
			byOwner[owner] = s
			order = append(order, owner)
		}
		s.indices = append(s.indices, i)
	}
	shards := make([]shard, 0, len(order))
	for _, owner := range order {
		shards = append(shards, *byOwner[owner])
	}
	return shards, true
}

// classifyHandler splits the batch across the ring by routing digest,
// fans the sub-batches out concurrently (hedged — classify is the
// idempotent, content-addressed hot path), and merges the per-shard
// results back into request order. A deliberate backend error (4xx)
// from any shard is forwarded verbatim; a shard whose every replica is
// down degrades to per-program error results so the rest of the batch
// still answers.
func (rt *Router) classifyHandler(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	if rt.proxySolo(w, r, "/v1/classify") {
		return
	}
	var req rest.ClassifyRequest
	raw, ok := rt.decode(w, r, &req)
	if !ok {
		return
	}
	shards, ok := rt.splitByOwner(req.Model, req.Programs)
	if !ok {
		rt.noBackend.Add(1)
		shardError(w, errNoBackend)
		return
	}
	if len(req.Programs) == 0 {
		// Nothing to split; let a backend produce the canonical
		// empty-batch envelope.
		res, err := rt.doShard(r.Context(), routeKey(req.Model, ""), http.MethodPost,
			"/v1/classify", raw, false)
		if err != nil {
			shardError(w, err)
			return
		}
		forward(w, res)
		return
	}
	if len(shards) == 1 && len(shards[0].indices) == len(req.Programs) {
		// The whole batch has one owner (a single shard's indices are
		// always 0..n-1 in request order): proxy the original body
		// verbatim and relay the answer unmodified — no re-encode, no
		// re-merge — still hedged, retried, and breaker-accounted like
		// any shard.
		res, err := rt.doShard(r.Context(), shards[0].key, http.MethodPost, "/v1/classify", raw, true)
		if err != nil {
			// Same degradation as the merge path below: the batch still
			// answers, each program carrying the router's error.
			merged := make([]serve.Result, len(req.Programs))
			for i, p := range req.Programs {
				merged[i] = serve.Result{Name: p.Name, Err: "router: " + err.Error()}
			}
			writeJSON(w, http.StatusOK, rest.ClassifyResponse{Model: req.Model, Results: merged})
			return
		}
		forward(w, res)
		return
	}

	type shardOut struct {
		res proxyResult
		err error
	}
	outs := make([]shardOut, len(shards))
	var wg sync.WaitGroup
	for si, s := range shards {
		sub := rest.ClassifyRequest{Model: req.Model,
			Programs: make([]serve.Program, len(s.indices))}
		for j, idx := range s.indices {
			sub.Programs[j] = req.Programs[idx]
		}
		wg.Add(1)
		go func(si int, key string, body []byte) {
			defer wg.Done()
			res, err := rt.doShard(r.Context(), key, http.MethodPost, "/v1/classify", body, true)
			outs[si] = shardOut{res, err}
		}(si, s.key, mustJSON(sub))
	}
	wg.Wait()

	// A backend that deliberately rejected its sub-batch (4xx) speaks
	// for the whole request — same model, same validation rules.
	for _, o := range outs {
		if o.err == nil && o.res.status != http.StatusOK {
			forward(w, o.res)
			return
		}
	}
	merged := make([]serve.Result, len(req.Programs))
	for si, o := range outs {
		if o.err != nil {
			for _, idx := range shards[si].indices {
				merged[idx] = serve.Result{Name: req.Programs[idx].Name,
					Err: "router: " + o.err.Error()}
			}
			continue
		}
		var sub rest.ClassifyResponse
		if err := json.Unmarshal(o.res.body, &sub); err != nil || len(sub.Results) != len(shards[si].indices) {
			for _, idx := range shards[si].indices {
				merged[idx] = serve.Result{Name: req.Programs[idx].Name,
					Err: fmt.Sprintf("router: malformed shard response from %s", o.res.backend)}
			}
			continue
		}
		for j, idx := range shards[si].indices {
			merged[idx] = sub.Results[j]
		}
	}
	writeJSON(w, http.StatusOK, rest.ClassifyResponse{Model: req.Model, Results: merged})
}

// analyzeHandler proxies a single program to its shard owner with
// replica retries. No hedging: analyze fans out to expert tools on the
// backend, so a hedge would double real pipeline work, not just race an
// idle replica's cache.
func (rt *Router) analyzeHandler(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	if rt.proxySolo(w, r, "/v1/analyze") {
		return
	}
	var req serve.AnalyzeRequest
	raw, ok := rt.decode(w, r, &req)
	if !ok {
		return
	}
	key := routeKey(req.Model, req.Program.IR)
	res, err := rt.doShard(r.Context(), key, http.MethodPost, "/v1/analyze", raw, false)
	if err != nil {
		shardError(w, err)
		return
	}
	forward(w, res)
}

func (rt *Router) statsHandler(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	writeJSON(w, http.StatusOK, rt.fanInStats(r.Context()))
}

func (rt *Router) healthzHandler(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"backends": len(rt.backends),
		"healthy":  len(rt.live.Load().Members()),
	})
}

func (rt *Router) readyzHandler(w http.ResponseWriter, r *http.Request) {
	rep := rt.Ready()
	status := http.StatusOK
	if rep.Status == resilience.StatusDraining {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, rep)
}

// modelsHandler proxies GET /v1/models from the first live backend that
// answers — every backend registers the same model set, so any healthy
// one speaks for the fleet.
func (rt *Router) modelsHandler(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	members := rt.live.Load().Members()
	if len(members) == 0 {
		rt.noBackend.Add(1)
		shardError(w, errNoBackend)
		return
	}
	var lastErr error
	for _, name := range members {
		res, err := rt.send(r.Context(), rt.backends[name], http.MethodGet, "/v1/models", nil)
		if err == nil && res.status < 500 {
			forward(w, res)
			return
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = fmt.Errorf("HTTP %d from %s", res.status, name)
		}
	}
	shardError(w, fmt.Errorf("%w: %v", errNoBackend, lastErr))
}

// mustJSON marshals a value the router itself just decoded; a marshal
// failure here is a programming error, not an input error.
func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return data
}

// ---- streaming batch ----

// batchStream serializes merged NDJSON output from concurrent shard
// streams onto one response.
type batchStream struct {
	mu      sync.Mutex
	w       http.ResponseWriter
	flusher http.Flusher
	enc     *json.Encoder
	started bool // 200 + NDJSON headers committed
	aborted bool // a pre-stream 4xx was forwarded instead
	failed  bool // client write failed; stop emitting
	early   *proxyResult
}

// emit writes one remapped verdict event, committing the NDJSON headers
// on the first call.
func (bs *batchStream) emit(ev serve.VerdictEvent) bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if bs.aborted || bs.failed {
		return false
	}
	if !bs.started {
		bs.w.Header().Set("Content-Type", "application/x-ndjson")
		bs.w.WriteHeader(http.StatusOK)
		bs.started = true
	}
	if err := bs.enc.Encode(ev); err != nil {
		bs.failed = true
		return false
	}
	if bs.flusher != nil {
		bs.flusher.Flush()
	}
	return true
}

// abort records a deliberate backend rejection (4xx) seen before any
// event went out; the first one wins and is forwarded verbatim.
func (bs *batchStream) abort(res proxyResult) bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if bs.started || bs.aborted {
		return false
	}
	bs.aborted = true
	bs.early = &res
	return true
}

// batchHandler splits the batch by shard owner and streams every
// shard's NDJSON sub-stream back to the client concurrently, remapping
// each event's Index to the original request position. A shard stream
// that dies mid-flight retries ONLY its not-yet-streamed programs on
// the next ring replica — already-delivered verdicts are never
// replayed, so the client sees each index at most once. A shard whose
// replicas are exhausted degrades to per-program error events.
func (rt *Router) batchHandler(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	var req serve.BatchRequest
	raw, ok := rt.decode(w, r, &req)
	if !ok {
		return
	}
	shards, ok := rt.splitByOwner(req.Model, req.Programs)
	if !ok {
		rt.noBackend.Add(1)
		shardError(w, errNoBackend)
		return
	}
	if len(req.Programs) == 0 {
		res, err := rt.doShard(r.Context(), routeKey(req.Model, ""), http.MethodPost,
			"/v1/analyze/batch", raw, false)
		if err != nil {
			shardError(w, err)
			return
		}
		forward(w, res)
		return
	}

	flusher, _ := w.(http.Flusher)
	bs := &batchStream{w: w, flusher: flusher, enc: json.NewEncoder(w)}
	var wg sync.WaitGroup
	for _, s := range shards {
		wg.Add(1)
		go func(s shard) {
			defer wg.Done()
			rt.streamShard(r.Context(), req, s, bs)
		}(s)
	}
	wg.Wait()
	// All shard goroutines are done; bs is ours alone now.
	if bs.aborted && bs.early != nil {
		forward(w, *bs.early)
		return
	}
	if !bs.started {
		// Every shard failed before a single event: answer an envelope
		// rather than an empty 200 stream.
		shardError(w, errNoBackend)
	}
}

// streamShard drives one shard's sub-stream, walking ring replicas on
// mid-stream failure with only the undelivered programs.
func (rt *Router) streamShard(ctx context.Context, req serve.BatchRequest, s shard, bs *batchStream) {
	remaining := append([]int(nil), s.indices...)
	cands := rt.candidates(s.key)
	attempts := rt.cfg.MaxAttempts
	if attempts > len(cands) {
		attempts = len(cands)
	}
	var lastErr error
	for i := 0; i < attempts && len(remaining) > 0; i++ {
		if i > 0 {
			rt.retries.Add(1)
			if err := rt.backoff(ctx, i); err != nil {
				break
			}
		}
		b := rt.backends[cands[i]]
		delivered, abort, err := rt.streamOnce(ctx, b, req, remaining, bs)
		// Remove delivered indices; retry carries only the rest.
		if len(delivered) > 0 {
			next := remaining[:0]
			for _, idx := range remaining {
				if _, done := delivered[idx]; !done {
					next = append(next, idx)
				}
			}
			remaining = next
		}
		if err == nil || abort {
			return
		}
		lastErr = err
		if ctx.Err() != nil {
			return // client gone; nothing left to answer
		}
	}
	if len(remaining) == 0 {
		return
	}
	if lastErr == nil {
		lastErr = errNoBackend
	}
	for _, idx := range remaining {
		bs.emit(serve.VerdictEvent{Index: idx, Name: req.Programs[idx].Name,
			Err: "router: " + lastErr.Error()})
	}
}

// streamOnce runs one backend's sub-stream for the given original
// indices, remapping and emitting each event. It returns the set of
// original indices delivered, whether a pre-stream 4xx aborted the
// whole batch, and the transport/5xx error if the stream died.
// The outcome feeds the backend's breaker like any proxied request.
func (rt *Router) streamOnce(ctx context.Context, b *backend, req serve.BatchRequest,
	indices []int, bs *batchStream) (map[int]struct{}, bool, error) {
	delivered := map[int]struct{}{}
	sub := serve.BatchRequest{Model: req.Model, Tools: req.Tools, Ranks: req.Ranks,
		Programs: make([]serve.Program, len(indices))}
	for j, idx := range indices {
		sub.Programs[j] = req.Programs[idx]
	}
	names := make([]string, len(indices))
	for j, idx := range indices {
		names[j] = req.Programs[idx].Name
	}
	rt.proxied.Add(1)
	b.requests.Add(1)
	ok, abort, err := rt.streamOnceRaw(ctx, b, mustJSON(sub), indices, names, delivered, bs)
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) && ctx.Err() != nil {
		return delivered, abort, err // caller walked away; not the backend's fault
	}
	if !ok {
		b.failures.Add(1)
		if err != nil {
			b.noteErr(err)
		}
	}
	b.breaker.Record(ok)
	if !ok && b.breaker.State() != resilience.Closed {
		rt.rebuildRing()
	}
	return delivered, abort, err
}

func (rt *Router) streamOnceRaw(ctx context.Context, b *backend, body []byte,
	indices []int, names []string, delivered map[int]struct{}, bs *batchStream) (ok, abort bool, err error) {
	if err := fault.Inject(FaultProxy); err != nil {
		return false, false, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		b.name+"/v1/analyze/batch", bytes.NewReader(body))
	if err != nil {
		return false, false, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(httpReq)
	if err != nil {
		return false, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		return false, false, fmt.Errorf("HTTP %d from %s", resp.StatusCode, b.name)
	}
	if resp.StatusCode != http.StatusOK {
		// A deliberate rejection. Forward it verbatim if nothing has
		// streamed yet; once the merged stream is underway the rejection
		// degrades to per-program error events (retrying a 4xx on another
		// replica would just repeat it). Either way this backend answered.
		data, _ := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
		res := proxyResult{status: resp.StatusCode,
			contentType: resp.Header.Get("Content-Type"), body: data, backend: b.name}
		if bs.abort(res) {
			return true, true, nil
		}
		for j, idx := range indices {
			bs.emit(serve.VerdictEvent{Index: idx, Name: names[j],
				Err: fmt.Sprintf("router: HTTP %d from %s", resp.StatusCode, b.name)})
			delivered[idx] = struct{}{}
		}
		return true, false, nil
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), maxProxyBody)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev serve.VerdictEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return false, false, fmt.Errorf("malformed stream line from %s: %v", b.name, err)
		}
		if ev.Index < 0 || ev.Index >= len(indices) {
			return false, false, fmt.Errorf("stream index %d out of range from %s", ev.Index, b.name)
		}
		orig := indices[ev.Index]
		ev.Index = orig
		bs.emit(ev)
		delivered[orig] = struct{}{}
	}
	if err := sc.Err(); err != nil {
		return false, false, fmt.Errorf("stream from %s died: %w", b.name, err)
	}
	return true, false, nil
}
