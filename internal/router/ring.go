// Consistent hashing for the digest-sharded router. Each backend owns
// many pseudo-random points (virtual nodes) on a 64-bit hash circle; a
// program's shard key — its routing digest — hashes to a point on the
// same circle and is owned by the first backend point at or after it.
//
// The property the router buys with this (over, say, key mod N) is
// minimal remapping: ejecting one backend moves only the keys that
// backend owned, each to its next surviving replica, while every other
// key keeps its owner — so the surviving backends' content-addressed
// caches and durable stores stay hot through a failure. Re-admission is
// symmetric: the returning backend reclaims exactly its old points (the
// ring is rebuilt from the same names), so its warm store lines up with
// the keys that come back to it.
package router

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// defaultReplicas is the virtual-node count per backend. 128 points per
// backend keeps the ownership imbalance across a handful of backends
// within a few percent, at a ring size (N*128 points) that is still
// trivially binary-searchable.
const defaultReplicas = 128

// hashKey positions a shard key (or virtual node label) on the circle.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// Ring is an immutable consistent-hash ring over a set of backend
// names. The router rebuilds a fresh Ring on every membership change
// and swaps it atomically; lookups never lock.
type Ring struct {
	points []ringPoint // sorted by hash
	names  []string    // distinct members, sorted
}

type ringPoint struct {
	hash  uint64
	owner int // index into names
}

// NewRing builds a ring over the given backends with `replicas` virtual
// nodes each (<=0 takes defaultReplicas). An empty backend set yields a
// usable ring whose lookups return nothing.
func NewRing(backends []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	names := append([]string(nil), backends...)
	sort.Strings(names)
	r := &Ring{names: names, points: make([]ringPoint, 0, len(names)*replicas)}
	for i, name := range names {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hashKey(name + "#" + strconv.Itoa(v)),
				owner: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// Members returns the ring's distinct backend names, sorted.
func (r *Ring) Members() []string { return r.names }

// Lookup walks the circle clockwise from key's position and returns up
// to max distinct backends in ownership order: element 0 is the key's
// primary, element 1 the replica the key remaps to if the primary is
// ejected, and so on. max <= 0 means every member.
func (r *Ring) Lookup(key string, max int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if max <= 0 || max > len(r.names) {
		max = len(r.names)
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, max)
	seen := make(map[int]struct{}, max)
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.owner]; dup {
			continue
		}
		seen[p.owner] = struct{}{}
		out = append(out, r.names[p.owner])
	}
	return out
}

// Owner is Lookup's primary only.
func (r *Ring) Owner(key string) (string, bool) {
	owners := r.Lookup(key, 1)
	if len(owners) == 0 {
		return "", false
	}
	return owners[0], true
}
