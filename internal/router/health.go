// Active health checking: the loop that decides ring membership.
//
// Every CheckInterval the router probes each backend's GET /v1/readyz.
// A 200 — ok or degraded; a degraded backend still answers every
// request — counts as healthy. A dead socket, a 5xx, or a draining 503
// counts as a failure. Outcomes feed the backend's breaker: enough
// consecutive failures trip it (ejecting the backend from the ring on
// the next rebuild), and once the cooldown elapses the breaker's
// half-open gate admits exactly one probe per round — the re-admission
// handshake. Proxy failures feed the same breakers, so a backend that
// dies mid-interval is ejected by live traffic without waiting for the
// next probe round.
package router

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"mpidetect/internal/fault"
)

// healthLoop drives probe rounds until Close.
func (rt *Router) healthLoop() {
	defer rt.wg.Done()
	// Clock-free ticker: a timer per round so a probe round that
	// overruns the interval (slow sockets time out at CheckTimeout)
	// delays the next round instead of piling rounds up.
	for {
		rt.probeRound()
		t := time.NewTimer(rt.cfg.CheckInterval)
		select {
		case <-t.C:
		case <-rt.stop:
			t.Stop()
			return
		}
	}
}

// probeRound probes every backend whose breaker admits a call, then
// rebuilds the ring from the resulting breaker states.
func (rt *Router) probeRound() {
	for _, b := range rt.backends {
		// Allow is the half-open gate: a cooling-down backend is skipped,
		// a cooled-down one gets exactly one probe, and a healthy one is
		// always probed. Skip (not Record) on shutdown so an aborted
		// probe never counts against the backend.
		if !b.breaker.Allow() {
			continue
		}
		select {
		case <-rt.stop:
			b.breaker.Skip()
			return
		default:
		}
		b.breaker.Record(rt.probe(b))
	}
	rt.rebuildRing()
}

// probe runs one readyz check; true means routable.
func (rt *Router) probe(b *backend) bool {
	b.probes.Add(1)
	ok, err := rt.probeOnce(b)
	if !ok {
		b.probeFailures.Add(1)
		if err != nil {
			b.noteErr(err)
		}
	}
	return ok
}

func (rt *Router) probeOnce(b *backend) (bool, error) {
	if err := fault.Inject(FaultHealth); err != nil {
		return false, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.CheckTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.name+"/v1/readyz", nil)
	if err != nil {
		return false, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Draining (503) and 5xx alike: stop routing new keys here.
		return false, fmt.Errorf("readyz: HTTP %d from %s", resp.StatusCode, b.name)
	}
	return true, nil
}
