package mpi

import "testing"

func TestOpNamesRoundTrip(t *testing.T) {
	for _, op := range AllOps() {
		name := op.String()
		got, ok := FromName(name)
		if !ok || got != op {
			t.Errorf("FromName(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := FromName("MPI_NotAThing"); ok {
		t.Error("FromName accepted an unknown name")
	}
	if !IsMPICall("MPI_Send") || IsMPICall("printf") {
		t.Error("IsMPICall misclassifies")
	}
}

func TestClassify(t *testing.T) {
	cases := map[Op]Class{
		OpInit:      ClassEnv,
		OpSend:      ClassP2P,
		OpIsend:     ClassNonBlock,
		OpSendInit:  ClassPersistent,
		OpWait:      ClassRequest,
		OpBcast:     ClassCollective,
		OpPut:       ClassRMA,
		OpCommSplit: ClassComm,
		OpTypeFree:  ClassType,
	}
	for op, want := range cases {
		if got := Classify(op); got != want {
			t.Errorf("Classify(%s) = %v, want %v", op, got, want)
		}
	}
}

func TestBlockingAndRequests(t *testing.T) {
	if !IsBlocking(OpRecv) || !IsBlocking(OpBarrier) || IsBlocking(OpIsend) {
		t.Error("IsBlocking wrong")
	}
	if !StartsRequest(OpIrecv) || !StartsRequest(OpSendInit) || StartsRequest(OpSend) {
		t.Error("StartsRequest wrong")
	}
	if !IsCollective(OpAllreduce) || IsCollective(OpSend) {
		t.Error("IsCollective wrong")
	}
}

func TestDatatypes(t *testing.T) {
	if DTInt.Size() != 4 || DTDouble.Size() != 8 || DTChar.Size() != 1 {
		t.Error("datatype sizes wrong")
	}
	if !DTInt.Compatible(DTInt) || DTInt.Compatible(DTDouble) {
		t.Error("compatibility wrong")
	}
	if !DTByte.Compatible(DTDouble) {
		t.Error("MPI_BYTE should match anything")
	}
	if DTInt.String() != "MPI_INT" {
		t.Errorf("DTInt prints %q", DTInt)
	}
}

func TestSignatures(t *testing.T) {
	for _, op := range AllOps() {
		sig, ok := SignatureOf(op)
		if !ok {
			t.Errorf("no signature for %s", op)
			continue
		}
		for _, idx := range []int{sig.Arg.Buf, sig.Arg.Count, sig.Arg.Datatype,
			sig.Arg.Peer, sig.Arg.Tag, sig.Arg.Comm, sig.Arg.Request,
			sig.Arg.Root, sig.Arg.RedOp, sig.Arg.Win} {
			if idx >= sig.NArgs {
				t.Errorf("%s: argument role index %d beyond arity %d", op, idx, sig.NArgs)
			}
		}
	}
	send, _ := SignatureOf(OpSend)
	if send.Arg.Tag != 4 || send.Arg.Comm != 5 || send.NArgs != 6 {
		t.Errorf("MPI_Send signature wrong: %+v", send)
	}
	reduce, _ := SignatureOf(OpReduce)
	if reduce.Arg.RedOp != 4 || reduce.Arg.Root != 5 {
		t.Errorf("MPI_Reduce signature wrong: %+v", reduce)
	}
}
