// Package mpi defines the MPI API model shared by every layer of the
// reproduction: the set of MPI operations that can appear in generated
// programs, their signatures, datatypes, reduction operators, and the
// semantic metadata (blocking behaviour, collectiveness, which argument is
// the tag, ...) that the front-end, the runtime simulator, the static
// verifiers and the embedding layers all consult.
//
// The model intentionally covers the MPI subset exercised by the MPI Bugs
// Initiative and MPI-CorrBench: blocking and nonblocking point-to-point,
// persistent communication, collectives, and one-sided (RMA) epochs.
package mpi

import "fmt"

// Op identifies an MPI operation.
type Op int

// The MPI operations known to the model.
const (
	OpNone Op = iota
	OpInit
	OpFinalize
	OpCommRank
	OpCommSize
	OpSend
	OpSsend
	OpBsend
	OpRsend
	OpRecv
	OpSendrecv
	OpIsend
	OpIssend
	OpIrecv
	OpWait
	OpWaitall
	OpTest
	OpRequestFree
	OpSendInit
	OpRecvInit
	OpStart
	OpStartall
	OpBarrier
	OpBcast
	OpReduce
	OpAllreduce
	OpGather
	OpScatter
	OpAllgather
	OpAlltoall
	OpExscan
	OpScan
	OpIbarrier
	OpIbcast
	OpIallreduce
	OpWinCreate
	OpWinFree
	OpWinFence
	OpPut
	OpGet
	OpAccumulate
	OpWinLock
	OpWinUnlock
	OpCommSplit
	OpCommFree
	OpCommDup
	OpTypeContiguous
	OpTypeCommit
	OpTypeFree
	OpGetCount
	OpAbort
	numOps
)

var opNames = map[Op]string{
	OpInit:           "MPI_Init",
	OpFinalize:       "MPI_Finalize",
	OpCommRank:       "MPI_Comm_rank",
	OpCommSize:       "MPI_Comm_size",
	OpSend:           "MPI_Send",
	OpSsend:          "MPI_Ssend",
	OpBsend:          "MPI_Bsend",
	OpRsend:          "MPI_Rsend",
	OpRecv:           "MPI_Recv",
	OpSendrecv:       "MPI_Sendrecv",
	OpIsend:          "MPI_Isend",
	OpIssend:         "MPI_Issend",
	OpIrecv:          "MPI_Irecv",
	OpWait:           "MPI_Wait",
	OpWaitall:        "MPI_Waitall",
	OpTest:           "MPI_Test",
	OpRequestFree:    "MPI_Request_free",
	OpSendInit:       "MPI_Send_init",
	OpRecvInit:       "MPI_Recv_init",
	OpStart:          "MPI_Start",
	OpStartall:       "MPI_Startall",
	OpBarrier:        "MPI_Barrier",
	OpBcast:          "MPI_Bcast",
	OpReduce:         "MPI_Reduce",
	OpAllreduce:      "MPI_Allreduce",
	OpGather:         "MPI_Gather",
	OpScatter:        "MPI_Scatter",
	OpAllgather:      "MPI_Allgather",
	OpAlltoall:       "MPI_Alltoall",
	OpExscan:         "MPI_Exscan",
	OpScan:           "MPI_Scan",
	OpIbarrier:       "MPI_Ibarrier",
	OpIbcast:         "MPI_Ibcast",
	OpIallreduce:     "MPI_Iallreduce",
	OpWinCreate:      "MPI_Win_create",
	OpWinFree:        "MPI_Win_free",
	OpWinFence:       "MPI_Win_fence",
	OpPut:            "MPI_Put",
	OpGet:            "MPI_Get",
	OpAccumulate:     "MPI_Accumulate",
	OpWinLock:        "MPI_Win_lock",
	OpWinUnlock:      "MPI_Win_unlock",
	OpCommSplit:      "MPI_Comm_split",
	OpCommFree:       "MPI_Comm_free",
	OpCommDup:        "MPI_Comm_dup",
	OpTypeContiguous: "MPI_Type_contiguous",
	OpTypeCommit:     "MPI_Type_commit",
	OpTypeFree:       "MPI_Type_free",
	OpGetCount:       "MPI_Get_count",
	OpAbort:          "MPI_Abort",
}

// String returns the canonical MPI function name (e.g. "MPI_Send").
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("MPI_Op(%d)", int(o))
}

// FromName maps an MPI function name back to its Op; ok reports whether the
// name is a known MPI operation.
func FromName(name string) (Op, bool) {
	op, ok := nameToOp[name]
	return op, ok
}

var nameToOp = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, n := range opNames {
		m[n] = op
	}
	return m
}()

// IsMPICall reports whether name is any known MPI function.
func IsMPICall(name string) bool {
	_, ok := nameToOp[name]
	return ok
}

// AllOps returns every modelled MPI operation in a stable order.
func AllOps() []Op {
	ops := make([]Op, 0, int(numOps)-1)
	for op := Op(1); op < numOps; op++ {
		ops = append(ops, op)
	}
	return ops
}

// Class groups operations by the way they interact with the runtime.
type Class int

// Operation classes.
const (
	ClassEnv        Class = iota // Init / Finalize / rank / size
	ClassP2P                     // blocking point-to-point
	ClassNonBlock                // nonblocking point-to-point
	ClassPersistent              // persistent requests
	ClassRequest                 // request completion (wait/test/free)
	ClassCollective              // collectives
	ClassRMA                     // one-sided
	ClassComm                    // communicator management
	ClassType                    // datatype management
	ClassOther
)

// Classify returns the class of op.
func Classify(op Op) Class {
	switch op {
	case OpInit, OpFinalize, OpCommRank, OpCommSize, OpAbort:
		return ClassEnv
	case OpSend, OpSsend, OpBsend, OpRsend, OpRecv, OpSendrecv:
		return ClassP2P
	case OpIsend, OpIssend, OpIrecv:
		return ClassNonBlock
	case OpSendInit, OpRecvInit, OpStart, OpStartall:
		return ClassPersistent
	case OpWait, OpWaitall, OpTest, OpRequestFree, OpGetCount:
		return ClassRequest
	case OpBarrier, OpBcast, OpReduce, OpAllreduce, OpGather, OpScatter,
		OpAllgather, OpAlltoall, OpExscan, OpScan, OpIbarrier, OpIbcast, OpIallreduce:
		return ClassCollective
	case OpWinCreate, OpWinFree, OpWinFence, OpPut, OpGet, OpAccumulate,
		OpWinLock, OpWinUnlock:
		return ClassRMA
	case OpCommSplit, OpCommFree, OpCommDup:
		return ClassComm
	case OpTypeContiguous, OpTypeCommit, OpTypeFree:
		return ClassType
	}
	return ClassOther
}

// IsCollective reports whether op is a (possibly nonblocking) collective.
func IsCollective(op Op) bool { return Classify(op) == ClassCollective }

// IsBlocking reports whether the call can block waiting for a remote peer.
func IsBlocking(op Op) bool {
	switch op {
	case OpSend, OpSsend, OpRecv, OpSendrecv, OpWait, OpWaitall,
		OpBarrier, OpBcast, OpReduce, OpAllreduce, OpGather, OpScatter,
		OpAllgather, OpAlltoall, OpExscan, OpScan, OpWinFence:
		return true
	}
	return false
}

// StartsRequest reports whether op produces an MPI_Request that must later
// be completed (wait/test) or freed.
func StartsRequest(op Op) bool {
	switch op {
	case OpIsend, OpIssend, OpIrecv, OpSendInit, OpRecvInit, OpIbarrier, OpIbcast, OpIallreduce:
		return true
	}
	return false
}

// Datatype models an MPI datatype handle.
type Datatype int

// The basic datatypes exercised by the benchmarks.
const (
	DTNull Datatype = iota
	DTInt
	DTFloat
	DTDouble
	DTChar
	DTLong
	DTByte
	DTUnsigned
	DTDerived // a committed derived type (Type_contiguous)
)

var dtNames = map[Datatype]string{
	DTNull:     "MPI_DATATYPE_NULL",
	DTInt:      "MPI_INT",
	DTFloat:    "MPI_FLOAT",
	DTDouble:   "MPI_DOUBLE",
	DTChar:     "MPI_CHAR",
	DTLong:     "MPI_LONG",
	DTByte:     "MPI_BYTE",
	DTUnsigned: "MPI_UNSIGNED",
	DTDerived:  "MPI_DERIVED",
}

// String returns the canonical MPI constant name.
func (d Datatype) String() string {
	if s, ok := dtNames[d]; ok {
		return s
	}
	return fmt.Sprintf("MPI_Datatype(%d)", int(d))
}

// Size returns the size in bytes of one element of the datatype.
func (d Datatype) Size() int {
	switch d {
	case DTInt, DTFloat, DTUnsigned:
		return 4
	case DTDouble, DTLong:
		return 8
	case DTChar, DTByte:
		return 1
	case DTDerived:
		return 16
	}
	return 0
}

// Compatible reports whether a send datatype matches a receive datatype
// under MPI's type-matching rules (we require equality, with BYTE acting as
// a wildcard as real implementations commonly accept).
func (d Datatype) Compatible(other Datatype) bool {
	if d == DTByte || other == DTByte {
		return true
	}
	return d == other
}

// ReduceOp models an MPI reduction operator handle.
type ReduceOp int

// Reduction operators.
const (
	RONull ReduceOp = iota
	ROSum
	ROProd
	ROMax
	ROMin
	ROLand
	ROBor
)

var roNames = map[ReduceOp]string{
	RONull: "MPI_OP_NULL",
	ROSum:  "MPI_SUM",
	ROProd: "MPI_PROD",
	ROMax:  "MPI_MAX",
	ROMin:  "MPI_MIN",
	ROLand: "MPI_LAND",
	ROBor:  "MPI_BOR",
}

// String returns the canonical MPI constant name.
func (r ReduceOp) String() string {
	if s, ok := roNames[r]; ok {
		return s
	}
	return fmt.Sprintf("MPI_Op(%d)", int(r))
}

// Well-known constants mirroring mpi.h. Their concrete integer values are
// arbitrary but stable: generated programs embed them as literals and the
// simulator decodes them.
const (
	CommWorld  = 91 // MPI_COMM_WORLD
	CommSelf   = 92 // MPI_COMM_SELF
	CommNull   = 0  // MPI_COMM_NULL
	AnySource  = -2 // MPI_ANY_SOURCE
	AnyTag     = -1 // MPI_ANY_TAG
	ProcNull   = -3 // MPI_PROC_NULL
	StatusIgn  = 0  // MPI_STATUS_IGNORE (as pointer literal)
	RequestNil = 0  // MPI_REQUEST_NULL
	TagUB      = 32767
	Success    = 0 // MPI_SUCCESS
	ErrOther   = 15
)

// ArgIndex describes which argument position plays which semantic role for
// an operation; -1 means the operation has no such argument.
type ArgIndex struct {
	Buf      int // data buffer pointer
	Count    int // element count
	Datatype int // datatype handle
	Peer     int // destination or source rank
	Tag      int // message tag
	Comm     int // communicator
	Request  int // request pointer
	Root     int // collective root
	RedOp    int // reduction operator
	Win      int // RMA window handle
}

func noArgs() ArgIndex {
	return ArgIndex{Buf: -1, Count: -1, Datatype: -1, Peer: -1, Tag: -1, Comm: -1, Request: -1, Root: -1, RedOp: -1, Win: -1}
}

// Signature describes an MPI call's arity and semantic argument positions.
type Signature struct {
	Op     Op
	NArgs  int
	Arg    ArgIndex
	Blocks bool
}

var signatures = map[Op]Signature{}

func sig(op Op, n int, mut func(*ArgIndex)) {
	a := noArgs()
	if mut != nil {
		mut(&a)
	}
	signatures[op] = Signature{Op: op, NArgs: n, Arg: a, Blocks: IsBlocking(op)}
}

func init() {
	sig(OpInit, 2, nil)
	sig(OpFinalize, 0, nil)
	sig(OpCommRank, 2, func(a *ArgIndex) { a.Comm = 0; a.Buf = 1 })
	sig(OpCommSize, 2, func(a *ArgIndex) { a.Comm = 0; a.Buf = 1 })
	sig(OpAbort, 2, func(a *ArgIndex) { a.Comm = 0 })

	p2p := func(a *ArgIndex) {
		a.Buf, a.Count, a.Datatype, a.Peer, a.Tag, a.Comm = 0, 1, 2, 3, 4, 5
	}
	sig(OpSend, 6, p2p)
	sig(OpSsend, 6, p2p)
	sig(OpBsend, 6, p2p)
	sig(OpRsend, 6, p2p)
	sig(OpRecv, 7, func(a *ArgIndex) { p2p(a) }) // + status
	sig(OpSendrecv, 12, func(a *ArgIndex) {
		a.Buf, a.Count, a.Datatype, a.Peer, a.Tag, a.Comm = 0, 1, 2, 3, 4, 10
	})

	nb := func(a *ArgIndex) {
		a.Buf, a.Count, a.Datatype, a.Peer, a.Tag, a.Comm, a.Request = 0, 1, 2, 3, 4, 5, 6
	}
	sig(OpIsend, 7, nb)
	sig(OpIssend, 7, nb)
	sig(OpIrecv, 7, nb)
	sig(OpSendInit, 7, nb)
	sig(OpRecvInit, 7, nb)

	sig(OpWait, 2, func(a *ArgIndex) { a.Request = 0 })
	sig(OpWaitall, 3, func(a *ArgIndex) { a.Count = 0; a.Request = 1 })
	sig(OpTest, 3, func(a *ArgIndex) { a.Request = 0 })
	sig(OpRequestFree, 1, func(a *ArgIndex) { a.Request = 0 })
	sig(OpStart, 1, func(a *ArgIndex) { a.Request = 0 })
	sig(OpStartall, 2, func(a *ArgIndex) { a.Count = 0; a.Request = 1 })
	sig(OpGetCount, 3, func(a *ArgIndex) { a.Datatype = 1; a.Buf = 2 })

	sig(OpBarrier, 1, func(a *ArgIndex) { a.Comm = 0 })
	sig(OpBcast, 5, func(a *ArgIndex) { a.Buf, a.Count, a.Datatype, a.Root, a.Comm = 0, 1, 2, 3, 4 })
	sig(OpReduce, 7, func(a *ArgIndex) { a.Buf, a.Count, a.Datatype, a.RedOp, a.Root, a.Comm = 0, 2, 3, 4, 5, 6 })
	sig(OpAllreduce, 6, func(a *ArgIndex) { a.Buf, a.Count, a.Datatype, a.RedOp, a.Comm = 0, 2, 3, 4, 5 })
	coll2buf := func(a *ArgIndex) {
		a.Buf, a.Count, a.Datatype, a.Root, a.Comm = 0, 1, 2, 6, 7
	}
	sig(OpGather, 8, coll2buf)
	sig(OpScatter, 8, coll2buf)
	sig(OpAllgather, 7, func(a *ArgIndex) { a.Buf, a.Count, a.Datatype, a.Comm = 0, 1, 2, 6 })
	sig(OpAlltoall, 7, func(a *ArgIndex) { a.Buf, a.Count, a.Datatype, a.Comm = 0, 1, 2, 6 })
	sig(OpExscan, 6, func(a *ArgIndex) { a.Buf, a.Count, a.Datatype, a.RedOp, a.Comm = 0, 2, 3, 4, 5 })
	sig(OpScan, 6, func(a *ArgIndex) { a.Buf, a.Count, a.Datatype, a.RedOp, a.Comm = 0, 2, 3, 4, 5 })
	sig(OpIbarrier, 2, func(a *ArgIndex) { a.Comm = 0; a.Request = 1 })
	sig(OpIbcast, 6, func(a *ArgIndex) { a.Buf, a.Count, a.Datatype, a.Root, a.Comm, a.Request = 0, 1, 2, 3, 4, 5 })
	sig(OpIallreduce, 7, func(a *ArgIndex) { a.Buf, a.Count, a.Datatype, a.RedOp, a.Comm, a.Request = 0, 2, 3, 4, 5, 6 })

	sig(OpWinCreate, 6, func(a *ArgIndex) { a.Buf = 0; a.Comm = 4; a.Win = 5 })
	sig(OpWinFree, 1, func(a *ArgIndex) { a.Win = 0 })
	sig(OpWinFence, 2, func(a *ArgIndex) { a.Win = 1 })
	rma := func(a *ArgIndex) {
		a.Buf, a.Count, a.Datatype, a.Peer, a.Win = 0, 1, 2, 3, 7
	}
	sig(OpPut, 8, rma)
	sig(OpGet, 8, rma)
	sig(OpAccumulate, 9, func(a *ArgIndex) { rma(a); a.RedOp = 7; a.Win = 8 })
	sig(OpWinLock, 4, func(a *ArgIndex) { a.Peer = 1; a.Win = 3 })
	sig(OpWinUnlock, 2, func(a *ArgIndex) { a.Peer = 0; a.Win = 1 })

	sig(OpCommSplit, 4, func(a *ArgIndex) { a.Comm = 0 })
	// Comm_free takes a *pointer* to the handle, so it has no comm-value
	// argument position.
	sig(OpCommFree, 1, nil)
	sig(OpCommDup, 2, func(a *ArgIndex) { a.Comm = 0 })
	sig(OpTypeContiguous, 3, func(a *ArgIndex) { a.Count = 0; a.Datatype = 1 })
	sig(OpTypeCommit, 1, func(a *ArgIndex) { a.Datatype = 0 })
	sig(OpTypeFree, 1, func(a *ArgIndex) { a.Datatype = 0 })
}

// SignatureOf returns the signature for op; ok is false for unknown ops.
func SignatureOf(op Op) (Signature, bool) {
	s, ok := signatures[op]
	return s, ok
}
