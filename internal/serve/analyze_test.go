package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"mpidetect/internal/ast"
	"mpidetect/internal/ir"
	"mpidetect/internal/irgen"
	"mpidetect/internal/verify"
)

// progIR lowers an AST program to the textual-IR wire format.
func progIR(t testing.TB, p *ast.Program) string {
	t.Helper()
	m, err := irgen.Lower(p)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	return ir.Print(m)
}

// pingpongIR is a correct two-rank exchange: every tool should answer
// "clean".
func pingpongIR(t testing.TB) string {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("buf", 8, ast.Int),
		ast.IfElse(ast.Eq(ast.Id("rank"), ast.I(0)),
			[]ast.Stmt{
				ast.CallS("MPI_Send", ast.Id("buf"), ast.I(8), ast.Id("MPI_INT"),
					ast.I(1), ast.I(7), ast.Id("MPI_COMM_WORLD")),
			},
			[]ast.Stmt{
				ast.CallS("MPI_Recv", ast.Id("buf"), ast.I(8), ast.Id("MPI_INT"),
					ast.I(0), ast.I(7), ast.Id("MPI_COMM_WORLD"), ast.Id("MPI_STATUS_IGNORE")),
			}),
		ast.Finalize(),
	)
	return progIR(t, ast.MainProgram("pingpong", stmts...))
}

// headToHeadIR deadlocks: both ranks Recv before Send.
func headToHeadIR(t testing.TB) string {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.DeclArr("buf", 4, ast.Int),
		ast.CallS("MPI_Recv", ast.Id("buf"), ast.I(4), ast.Id("MPI_INT"),
			ast.Sub(ast.I(1), ast.Id("rank")), ast.I(3), ast.Id("MPI_COMM_WORLD"),
			ast.Id("MPI_STATUS_IGNORE")),
		ast.CallS("MPI_Send", ast.Id("buf"), ast.I(4), ast.Id("MPI_INT"),
			ast.Sub(ast.I(1), ast.Id("rank")), ast.I(3), ast.Id("MPI_COMM_WORLD")),
		ast.Finalize(),
	)
	return progIR(t, ast.MainProgram("headtohead", stmts...))
}

// spinIR burns billions of interpreter steps without blocking — the
// cancellation worst case.
func spinIR(t testing.TB) string {
	stmts := ast.MPIBoilerplate()
	stmts = append(stmts,
		ast.Decl("x", ast.Int, ast.I(0)),
		ast.While(ast.Lt(ast.Id("x"), ast.I(2_000_000_000)),
			ast.Assign(ast.Id("x"), ast.Add(ast.Id("x"), ast.I(1)))),
		ast.Finalize(),
	)
	return progIR(t, ast.MainProgram("spin", stmts...))
}

func analyzeEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.Tools == nil {
		cfg.Tools = DefaultTools()
	}
	reg := NewRegistry()
	reg.Register("ir2vec", trained(t))
	eng := NewEngine(reg, cfg)
	t.Cleanup(eng.Close)
	return eng
}

func verdictOf(t *testing.T, resp *AnalyzeResponse, tool string) ToolVerdict {
	t.Helper()
	for _, v := range resp.Tools {
		if v.Tool == tool {
			return v
		}
	}
	t.Fatalf("no verdict for tool %q in %+v", tool, resp.Tools)
	return ToolVerdict{}
}

// TestAnalyzeHybridVerdicts is the analysis acceptance path: one
// deadlocking and one correct program, each fanned out to the ML
// detector plus all four expert tools, with per-tool archetype behaviour
// visible in the response. (The HTTP form lives in serve/rest.)
func TestAnalyzeHybridVerdicts(t *testing.T) {
	eng := analyzeEngine(t, Config{CacheSize: 256})
	ctx := context.Background()

	// Deadlocking program: MUST flags it, ITAC times out on it.
	dead, err := eng.Analyze(ctx, AnalyzeRequest{Model: "ir2vec",
		Program: Program{Name: "headtohead", IR: headToHeadIR(t)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(dead.Tools) != 4 {
		t.Fatalf("got %d tool verdicts, want 4: %+v", len(dead.Tools), dead.Tools)
	}
	if v := verdictOf(t, dead, "must"); v.Verdict != "flagged" || !v.Dynamic {
		t.Fatalf("must verdict %+v, want dynamic flagged", v)
	}
	if v := verdictOf(t, dead, "itac"); v.Verdict != "timeout" {
		t.Fatalf("itac verdict %+v, want timeout (inconclusive on deadlock)", v)
	}
	if dead.Ensemble.Voters < 3 || dead.Ensemble.Flags < 1 {
		t.Fatalf("ensemble %+v: want >=3 voters and >=1 flag", dead.Ensemble)
	}

	// Correct program: both dynamic tools answer clean.
	ok, err := eng.Analyze(ctx, AnalyzeRequest{Model: "ir2vec",
		Program: Program{Name: "pingpong", IR: pingpongIR(t)}})
	if err != nil {
		t.Fatal(err)
	}
	for _, tool := range []string{"itac", "must"} {
		if v := verdictOf(t, ok, tool); v.Verdict != "clean" || v.Flagged {
			t.Fatalf("%s on correct code: %+v, want clean", tool, v)
		}
	}
	if ok.ML.Err != "" {
		t.Fatalf("ML verdict errored: %s", ok.ML.Err)
	}
}

// TestAnalyzeWarmRepeatRunsZeroSimulations is the cache acceptance
// criterion: a warm repeat of the same program + tool set is served
// entirely from the tool cache — zero additional simulator executions,
// observable through the /stats counters.
func TestAnalyzeWarmRepeatRunsZeroSimulations(t *testing.T) {
	eng := analyzeEngine(t, Config{CacheSize: 256})
	req := AnalyzeRequest{Model: "ir2vec", Program: Program{Name: "p", IR: pingpongIR(t)}}
	ctx := context.Background()

	cold, err := eng.Analyze(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Analyze == nil {
		t.Fatal("stats missing analyze section with tools configured")
	}
	if st.Analyze.SimExecs != 2 {
		t.Fatalf("cold pass ran %d simulations, want 2 (itac, must)", st.Analyze.SimExecs)
	}

	warm, err := eng.Analyze(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	st = eng.Stats()
	if st.Analyze.SimExecs != 2 {
		t.Fatalf("warm repeat ran the simulator (%d execs, want 2)", st.Analyze.SimExecs)
	}
	if st.ToolCache == nil || st.ToolCache.Hits < 4 {
		t.Fatalf("tool cache stats %+v: want >=4 hits on the warm pass", st.ToolCache)
	}
	for i, v := range warm.Tools {
		if !v.Cached {
			t.Fatalf("warm verdict %d not marked cached: %+v", i, v)
		}
		if v.Verdict != cold.Tools[i].Verdict || v.Flagged != cold.Tools[i].Flagged {
			t.Fatalf("warm verdict diverged: cold %+v warm %+v", cold.Tools[i], v)
		}
	}
	if warm.Ensemble != cold.Ensemble {
		t.Fatalf("ensemble diverged: cold %+v warm %+v", cold.Ensemble, warm.Ensemble)
	}
}

// TestAnalyzeCompilesProgramOnce pins the compile-once contract of the
// program cache: one request fanning a program to both dynamic tools
// compiles the simulator program exactly once (itac and must share it),
// a warm repeat compiles nothing even after the tool verdicts are
// invalidated, and a different world size still reuses the compiled
// form — it is rank-independent.
func TestAnalyzeCompilesProgramOnce(t *testing.T) {
	eng := analyzeEngine(t, Config{CacheSize: 256})
	req := AnalyzeRequest{Model: "ir2vec", Tools: []string{"itac", "must"},
		Program: Program{Name: "p", IR: pingpongIR(t)}}
	ctx := context.Background()

	if _, err := eng.Analyze(ctx, req); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Analyze.SimCompiles != 1 {
		t.Fatalf("cold request compiled %d times, want 1 (shared by itac+must)",
			st.Analyze.SimCompiles)
	}
	if st.ProgCache == nil {
		t.Fatal("stats missing prog_cache section with caching enabled")
	}

	// Tool-verdict invalidation forces re-simulation but not re-compilation.
	eng.InvalidateTool("itac")
	eng.InvalidateTool("must")
	if _, err := eng.Analyze(ctx, req); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().Analyze.SimCompiles; got != 1 {
		t.Fatalf("re-simulation recompiled (compiles %d, want 1)", got)
	}

	// A different rank count is a different simulation but the same program.
	req.Ranks = 4
	if _, err := eng.Analyze(ctx, req); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().Analyze.SimCompiles; got != 1 {
		t.Fatalf("rank change recompiled (compiles %d, want 1)", got)
	}
}

// TestAnalyzeStaticSubsetSkipsSimulator: selecting only static tools
// must never touch the simulation pool.
func TestAnalyzeStaticSubsetSkipsSimulator(t *testing.T) {
	eng := analyzeEngine(t, Config{CacheSize: 256})
	_, err := eng.Analyze(context.Background(), AnalyzeRequest{
		Model:   "ir2vec",
		Tools:   []string{"parcoach", "mpi-checker"},
		Program: Program{IR: pingpongIR(t)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Analyze.SimExecs != 0 {
		t.Fatalf("static-only analysis ran %d simulations", st.Analyze.SimExecs)
	}
}

// TestAnalyzeShortDeadlineAbortsSimulation: a request deadline far below
// the simulation's step budget aborts the in-flight simulation promptly
// (cooperative cancellation), the cancelled verdict is never cached, and
// the engine keeps serving afterwards.
func TestAnalyzeShortDeadlineAbortsSimulation(t *testing.T) {
	eng := analyzeEngine(t, Config{CacheSize: 256, SimMaxSteps: 1 << 40, SimTimeout: time.Hour})
	spin := spinIR(t)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	resp, err := eng.Analyze(ctx, AnalyzeRequest{Model: "ir2vec",
		Tools: []string{"itac"}, Program: Program{IR: spin}})
	elapsed := time.Since(start)
	if elapsed > 10*time.Second {
		t.Fatalf("short-deadline analyze took %s; simulation did not abort", elapsed)
	}
	// The ML half may or may not beat the deadline; either outcome is
	// acceptable as long as the simulation died with the request.
	if err == nil {
		if v := verdictOf(t, resp, "itac"); v.Verdict != "canceled" {
			t.Fatalf("itac verdict %+v, want canceled", v)
		}
	} else if !errors.Is(err, ErrTimeout) && !errors.Is(err, ErrCanceled) {
		t.Fatalf("unexpected analyze error: %v", err)
	}

	// Nothing was cached for the aborted run, and the pool is healthy: a
	// fresh, conclusive analysis still works (small step budget makes the
	// spin program a deterministic timeout verdict).
	ts, _ := eng.ToolCacheStats()
	if ts.Size != 0 {
		t.Fatalf("aborted simulation left %d cached entries", ts.Size)
	}
	resp2, err := eng.Analyze(context.Background(), AnalyzeRequest{Model: "ir2vec",
		Tools: []string{"parcoach"}, Program: Program{IR: pingpongIR(t)}})
	if err != nil {
		t.Fatalf("engine unhealthy after aborted simulation: %v", err)
	}
	// (PARCOACH flags the rank-dependent branch — its archetype FP storm —
	// the point here is only that the verdict is conclusive.)
	if v := verdictOf(t, resp2, "parcoach"); v.Verdict != "clean" && v.Verdict != "flagged" {
		t.Fatalf("parcoach after abort not conclusive: %+v", v)
	}
}

// TestWallTimeoutVerdictsAreNotCached: wall-clock exhaustion depends on
// host load, not the program, so a wall-budget "timeout" verdict must be
// served to the requester but never stored — the next request re-runs
// the simulation.
func TestWallTimeoutVerdictsAreNotCached(t *testing.T) {
	eng := analyzeEngine(t, Config{CacheSize: 256,
		SimMaxSteps: 1 << 40, SimTimeout: time.Millisecond})
	req := AnalyzeRequest{Model: "ir2vec", Tools: []string{"must"},
		Program: Program{IR: spinIR(t)}}
	ctx := context.Background()

	resp, err := eng.Analyze(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if v := verdictOf(t, resp, "must"); v.Verdict != "timeout" {
		t.Fatalf("must verdict %+v, want wall-budget timeout", v)
	}
	if ts, _ := eng.ToolCacheStats(); ts.Size != 0 {
		t.Fatalf("wall-clock timeout was cached (%d entries)", ts.Size)
	}
	if _, err := eng.Analyze(ctx, req); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().Analyze.SimExecs; got != 2 {
		t.Fatalf("sim execs = %d, want 2 (wall timeouts must recompute)", got)
	}
}

// TestAnalyzeErrorsAndDisabled covers the request-validation surface:
// unknown models and tools, empty programs, and the disabled tier.
func TestAnalyzeErrorsAndDisabled(t *testing.T) {
	eng := analyzeEngine(t, Config{CacheSize: 256})
	ctx := context.Background()
	irText := pingpongIR(t)

	if _, err := eng.Analyze(ctx, AnalyzeRequest{Model: "nope",
		Program: Program{IR: irText}}); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("unknown model: %v", err)
	}
	if _, err := eng.Analyze(ctx, AnalyzeRequest{Model: "ir2vec",
		Tools: []string{"lint"}, Program: Program{IR: irText}}); !errors.Is(err, ErrUnknownTool) {
		t.Fatalf("unknown tool: %v", err)
	}
	if _, err := eng.Analyze(ctx, AnalyzeRequest{Model: "ir2vec"}); !errors.Is(err, ErrEmptyProgram) {
		t.Fatalf("empty program: %v", err)
	}

	// A parse failure is per-tool data, not a request error.
	resp, err := eng.Analyze(ctx, AnalyzeRequest{Model: "ir2vec",
		Program: Program{IR: "define garbage {"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range resp.Tools {
		if v.Verdict != "error" || v.Err == "" {
			t.Fatalf("tool verdict on unparsable program: %+v", v)
		}
	}
	if resp.Ensemble.Voters != 0 {
		t.Fatalf("unparsable program still has %d ensemble voters", resp.Ensemble.Voters)
	}
	if got := eng.Stats().Engine.ParseErrors; got != 1 {
		t.Fatalf("parse_errors = %d for one bad program, want 1 (no double count)", got)
	}

	// An engine without tools reports the tier disabled.
	reg := NewRegistry()
	reg.Register("ir2vec", trained(t))
	bare := NewEngine(reg, Config{})
	defer bare.Close()
	if _, err := bare.Analyze(ctx, AnalyzeRequest{Model: "ir2vec",
		Program: Program{IR: irText}}); !errors.Is(err, ErrAnalysisDisabled) {
		t.Fatalf("disabled analysis: %v, want ErrAnalysisDisabled", err)
	}
}

// TestInvalidateToolForcesRecompute: sweeping one tool's entries (the
// registry-replacement path) re-runs exactly that tool's simulations.
func TestInvalidateToolForcesRecompute(t *testing.T) {
	tools := DefaultTools()
	eng := analyzeEngine(t, Config{CacheSize: 256, Tools: tools})
	req := AnalyzeRequest{Model: "ir2vec", Tools: []string{"itac", "must"},
		Program: Program{IR: pingpongIR(t)}}
	ctx := context.Background()

	if _, err := eng.Analyze(ctx, req); err != nil {
		t.Fatal(err)
	}
	if removed := eng.InvalidateTool("must"); removed != 1 {
		t.Fatalf("InvalidateTool removed %d entries, want 1", removed)
	}
	if _, err := eng.Analyze(ctx, req); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().Analyze.SimExecs; got != 3 {
		t.Fatalf("sim execs = %d, want 3 (itac cached, must recomputed)", got)
	}

	// Re-registering a tool invalidates through the OnReplace hook too.
	tools.Register("itac", verify.ITAC{}, true)
	if _, err := eng.Analyze(ctx, req); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().Analyze.SimExecs; got != 4 {
		t.Fatalf("sim execs = %d, want 4 after itac re-registration", got)
	}
}

// TestEnsembleMajority pins the documented vote rule.
func TestEnsembleMajority(t *testing.T) {
	flag := ToolVerdict{Verdict: "flagged"}
	clean := ToolVerdict{Verdict: "clean"}
	timeout := ToolVerdict{Verdict: "timeout"}
	cases := []struct {
		name  string
		ml    Result
		tools []ToolVerdict
		want  Ensemble
	}{
		{"unanimous-flag", Result{Incorrect: true}, []ToolVerdict{flag, flag},
			Ensemble{Incorrect: true, Flags: 3, Voters: 3, Agreement: 1}},
		{"majority-clean", Result{}, []ToolVerdict{clean, flag},
			Ensemble{Incorrect: false, Flags: 1, Voters: 3, Agreement: 2.0 / 3}},
		{"tie-leans-incorrect", Result{Incorrect: true}, []ToolVerdict{clean},
			Ensemble{Incorrect: true, Flags: 1, Voters: 2, Agreement: 0.5}},
		{"minority-flag-loses", Result{}, []ToolVerdict{clean, clean, flag},
			Ensemble{Incorrect: false, Flags: 1, Voters: 4, Agreement: 0.75}},
		{"inconclusive-dont-vote", Result{Incorrect: true}, []ToolVerdict{timeout, timeout},
			Ensemble{Incorrect: true, Flags: 1, Voters: 1, Agreement: 1}},
		{"ml-error-no-vote", Result{Err: "parse"}, []ToolVerdict{clean},
			Ensemble{Incorrect: false, Flags: 0, Voters: 1, Agreement: 1}},
	}
	for _, tc := range cases {
		if got := ensembleOf(tc.ml, tc.tools); got != tc.want {
			t.Errorf("%s: ensemble %+v, want %+v", tc.name, got, tc.want)
		}
	}
}
