// The hybrid static+dynamic analysis tier (POST /analyze): one program
// fans out to the registered ML detector plus a selection of expert
// verification tools — the PARCOACH/MPI-Checker-like static analyses and
// the ITAC/MUST-like dynamic checkers of the paper's Table III — and the
// response carries every per-tool verdict plus a combined ensemble
// verdict.
//
// Dynamic tools execute the program on the runtime simulator, which is
// orders of magnitude heavier than a cached classification, so they run
// on a separate concurrency-limited pool (Config.SimWorkers) under a
// per-simulation wall-clock budget (Config.SimTimeout) and the caller's
// request deadline: cancelling the request aborts an in-flight
// simulation cooperatively. Tool verdicts are cached in their own
// content-addressed cache under digests keyed by tool + configuration
// (core.DigestIRKeyed), with per-tool prefix invalidation; a warm repeat
// of the same program and tool set costs zero simulator executions.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"mpidetect/internal/cache"
	"mpidetect/internal/core"
	"mpidetect/internal/events"
	"mpidetect/internal/fault"
	"mpidetect/internal/ir"
	"mpidetect/internal/mpisim"
	"mpidetect/internal/verify"
)

// lazyModule parses a program's textual IR at most once, on first
// demand. The analyze path only needs the module when some tool verdict
// actually has to be computed — a fully warm request (every tool served
// from the verdict cache) never parses at all.
type lazyModule struct {
	src    string
	digest string // requestDigest(src), computed once per request
	once   sync.Once
	mod    *ir.Module
	err    error
}

func (lm *lazyModule) get() (*ir.Module, error) {
	lm.once.Do(func() {
		lm.mod, lm.err = ir.Parse(lm.src)
	})
	return lm.mod, lm.err
}

// Sentinel errors of the /analyze path, mapped to HTTP statuses by the
// handler.
var (
	ErrAnalysisDisabled = errors.New("serve: no analysis tools configured")
	ErrUnknownTool      = errors.New("serve: unknown tool")
	ErrEmptyProgram     = errors.New("serve: empty program")
)

// errWallTimeout completes a flight whose simulation ran out of wall
// clock: the verdict is broadcast to coalesced followers (it is
// conclusive for their shared request window) but never stored — unlike
// the deterministic step budget, wall-clock exhaustion depends on host
// load, and caching it would serve a transient stall as the program's
// verdict until TTL expiry.
var errWallTimeout = errors.New("serve: simulation wall budget exceeded")

// maxSimRanks caps the per-request rank count so one request cannot ask
// the simulator for an arbitrarily wide world.
const maxSimRanks = 16

// ---------------------------------------------------------------------------
// Tool registry.
// ---------------------------------------------------------------------------

type registeredTool struct {
	tool    verify.ModuleChecker
	dynamic bool
}

// ToolRegistry is a concurrency-safe name -> expert tool table, the
// analysis-tier sibling of the model Registry. Tools marked dynamic
// execute programs on the runtime simulator and are scheduled on the
// engine's simulation pool.
type ToolRegistry struct {
	mu        sync.RWMutex
	tools     map[string]registeredTool
	onReplace []func(name string)
}

// NewToolRegistry returns an empty registry.
func NewToolRegistry() *ToolRegistry {
	return &ToolRegistry{tools: map[string]registeredTool{}}
}

// DefaultTools returns a registry holding the four expert tools of the
// paper's comparison under their serving names.
func DefaultTools() *ToolRegistry {
	tr := NewToolRegistry()
	tr.Register("parcoach", verify.PARCOACH{}, false)
	tr.Register("mpi-checker", verify.MPIChecker{}, false)
	tr.Register("itac", verify.ITAC{}, true)
	tr.Register("must", verify.MUST{}, true)
	return tr
}

// Register installs (or replaces) a tool under name. dynamic marks tools
// that execute the program on the simulator. Replacing a tool fires the
// OnReplace hooks (the engine uses them to sweep that tool's cached
// verdicts).
func (tr *ToolRegistry) Register(name string, t verify.ModuleChecker, dynamic bool) {
	// Every tool gets a named fault point ("tool.<name>") so tests and
	// the fault admin endpoint can fail or panic exactly one tool.
	fault.Register("tool." + name)
	tr.mu.Lock()
	tr.tools[name] = registeredTool{tool: t, dynamic: dynamic}
	hooks := make([]func(string), len(tr.onReplace))
	copy(hooks, tr.onReplace)
	tr.mu.Unlock()
	for _, fn := range hooks {
		fn(name)
	}
}

// OnReplace installs a hook invoked (outside the registry lock) every
// time a tool slot is written by Register.
func (tr *ToolRegistry) OnReplace(fn func(name string)) {
	tr.mu.Lock()
	tr.onReplace = append(tr.onReplace, fn)
	tr.mu.Unlock()
}

// Get resolves a registered tool.
func (tr *ToolRegistry) Get(name string) (t verify.ModuleChecker, dynamic, ok bool) {
	tr.mu.RLock()
	defer tr.mu.RUnlock()
	rt, ok := tr.tools[name]
	return rt.tool, rt.dynamic, ok
}

// Names lists the registered tool names, sorted.
func (tr *ToolRegistry) Names() []string {
	tr.mu.RLock()
	defer tr.mu.RUnlock()
	out := make([]string, 0, len(tr.tools))
	for n := range tr.tools {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Wire types.
// ---------------------------------------------------------------------------

// AnalyzeRequest is the POST /analyze body. Tools selects a subset of
// the registered tools by name (empty = all); Ranks sets the simulated
// world size for dynamic tools (default 2, capped at maxSimRanks).
type AnalyzeRequest struct {
	Model   string   `json:"model"`
	Tools   []string `json:"tools,omitempty"`
	Ranks   int      `json:"ranks,omitempty"`
	Program Program  `json:"program"`
}

// ToolVerdict is one expert tool's outcome on the analyzed program.
// Verdict is one of "clean", "flagged", "timeout", "canceled",
// "degraded" or "error"; only "clean" and "flagged" verdicts vote in
// the ensemble. "degraded" means the tool's circuit breaker kept it out
// of this request entirely. Internal marks error verdicts caused by the
// tool itself (a panic, an injected fault) rather than by the analyzed
// program — these feed the tool's breaker and are never cached.
type ToolVerdict struct {
	Tool     string `json:"tool"`
	Dynamic  bool   `json:"dynamic"`
	Verdict  string `json:"verdict"`
	Flagged  bool   `json:"flagged"`
	Reason   string `json:"reason,omitempty"`
	Cached   bool   `json:"cached,omitempty"`
	Err      string `json:"error,omitempty"`
	Internal bool   `json:"internal,omitempty"`

	// wallTO marks a timeout caused by the wall-clock budget; it keeps
	// the verdict out of the cache (see errWallTimeout).
	wallTO bool
}

// Ensemble combines the ML verdict with every conclusive tool verdict by
// simple majority: each conclusive voter (the ML detector unless it
// errored, plus every tool that answered clean or flagged) casts one
// vote, and the program is reported incorrect when flags hold at least
// half the votes — ties lean incorrect, since a detector that has seen a
// concrete violation should not be outvoted into silence by a tie.
// Agreement is the majority fraction.
type Ensemble struct {
	Incorrect bool    `json:"incorrect"`
	Flags     int     `json:"flags"`
	Voters    int     `json:"voters"`
	Agreement float64 `json:"agreement"`
	// Degraded marks an ensemble that ran without some requested tool —
	// a breaker held it out, or it failed internally — so the verdict
	// rests on fewer voters than the caller asked for.
	Degraded bool `json:"degraded,omitempty"`
}

// AnalyzeResponse is the POST /analyze reply.
type AnalyzeResponse struct {
	Model    string        `json:"model"`
	Name     string        `json:"name,omitempty"`
	ML       Result        `json:"ml"`
	Tools    []ToolVerdict `json:"tools"`
	Ensemble Ensemble      `json:"ensemble"`
}

// ---------------------------------------------------------------------------
// Engine: the analysis path.
// ---------------------------------------------------------------------------

// selectedTool is one resolved tool of a request.
type selectedTool struct {
	name    string
	dynamic bool
	tool    verify.ModuleChecker
}

// toolPrefix is the cache-key prefix of one tool's entries in the tool
// cache; InvalidateTool and the registry's OnReplace hook sweep it.
func toolPrefix(name string) string { return name + keySep }

// progKey addresses one compiled simulator program. The compiled form
// is rank- and tool-independent: one entry serves every dynamic tool at
// every world size, so a single /analyze request compiles once and
// simulates many times, and warm repeats skip compilation entirely.
func progKey(digest string) string { return "simprog" + keySep + digest }

// compiledProgram resolves the compiled simulator program for a
// request, through the program cache when enabled. Compilation errors
// are parse errors (broadcast to coalesced callers, never cached).
func (e *Engine) compiledProgram(lm *lazyModule) (*mpisim.Program, error) {
	compile := func() (*mpisim.Program, error) {
		mod, err := lm.get()
		if err != nil {
			return nil, err
		}
		e.simCompiles.Add(1)
		return mpisim.Compile(mod), nil
	}
	if e.progCache == nil {
		return compile()
	}
	return e.progCache.GetOrCompute(progKey(lm.digest), compile)
}

// ProgCacheStats snapshots the compiled-program-cache counters; ok is
// false when the analysis tier runs uncached or is disabled.
func (e *Engine) ProgCacheStats() (cache.Stats, bool) {
	if e.progCache == nil {
		return cache.Stats{}, false
	}
	return e.progCache.Stats(), true
}

// toolKey addresses one (tool, configuration, program) verdict: the
// key carries the tool name, every configuration axis that can change
// the verdict, and the program's canonical digest. The digest is
// computed once per request (requestDigest) and shared by every tool
// key and the program-cache key, so the hashing cost does not scale
// with the tool count.
func toolKey(name string, ranks int, steps int64, digest string) string {
	return toolPrefix(name) + fmt.Sprintf("ranks=%d|steps=%d", ranks, steps) + keySep + digest
}

// requestDigest canonically digests a program once per /analyze request.
func requestDigest(src string) string { return core.DigestIRKeyed("analyze", src) }

// InvalidateTool sweeps one tool's cached verdicts across every
// configuration; it returns the number of entries removed. The sweep is
// published on the event bus.
func (e *Engine) InvalidateTool(name string) int {
	if e.toolCache == nil {
		return 0
	}
	n := e.toolCache.InvalidatePrefix(toolPrefix(name))
	e.bus.Publish(events.CacheInvalidated,
		CacheInvalidatedData{Scope: "tool", Name: name, Entries: n})
	return n
}

// ToolCacheStats snapshots the tool-verdict-cache counters; ok is false
// when the analysis tier runs uncached or is disabled.
func (e *Engine) ToolCacheStats() (cache.Stats, bool) {
	if e.toolCache == nil {
		return cache.Stats{}, false
	}
	return e.toolCache.Stats(), true
}

func (e *Engine) simWorker() {
	defer e.simWG.Done()
	for run := range e.simJobs {
		run()
	}
}

// resolveTools maps requested tool names to registered tools; an empty
// request selects every registered tool, sorted by name.
func (e *Engine) resolveTools(names []string) ([]selectedTool, error) {
	if len(names) == 0 {
		names = e.tools.Names()
	}
	out := make([]selectedTool, 0, len(names))
	for _, name := range names {
		t, dynamic, ok := e.tools.Get(name)
		if !ok {
			return nil, fmt.Errorf("%w: %q (have %s)", ErrUnknownTool, name,
				strings.Join(e.tools.Names(), ", "))
		}
		out = append(out, selectedTool{name: name, dynamic: dynamic, tool: t})
	}
	return out, nil
}

// Analyze fans one program out to the registered ML detector plus the
// selected expert tools and combines their verdicts. The ML verdict
// rides the ordinary classify path (same worker pool, cache and
// coalescing); static tools run inline; dynamic tools run on the
// simulation pool under the request deadline and the engine's
// per-simulation budgets. The request as a whole is subject to the same
// min(caller deadline, engine timeout) budget as Classify.
func (e *Engine) Analyze(ctx context.Context, req AnalyzeRequest) (*AnalyzeResponse, error) {
	if e.tools == nil {
		return nil, ErrAnalysisDisabled
	}
	if _, ok := e.reg.Get(req.Model); !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, req.Model)
	}
	selected, err := e.resolveTools(req.Tools)
	if err != nil {
		return nil, err
	}
	e.analyzeRequests.Add(1)
	return e.analyzeProgram(ctx, req.Model, selected, clampRanks(req.Ranks), req.Program)
}

// clampRanks maps a requested world size into [2, maxSimRanks].
func clampRanks(ranks int) int {
	if ranks <= 0 {
		return 2
	}
	if ranks > maxSimRanks {
		return maxSimRanks
	}
	return ranks
}

// analyzeProgram fans one program out to the ML detector plus the
// resolved tools under its own min(caller deadline, engine timeout)
// budget — the shared core of Analyze and AnalyzeBatch (each program of
// a batch gets this full per-program budget, not a share of one). The
// finished verdict is published on the event bus.
func (e *Engine) analyzeProgram(ctx context.Context, model string, selected []selectedTool, ranks int, prog Program) (*AnalyzeResponse, error) {
	if strings.TrimSpace(prog.IR) == "" {
		return nil, ErrEmptyProgram
	}
	ctx, cancel := context.WithTimeout(ctx, e.cfg.Timeout)
	defer cancel()

	// The ML verdict computes concurrently with the expert tools.
	resp := &AnalyzeResponse{Model: model, Name: prog.Name}
	mlDone := make(chan error, 1)
	go func() {
		// Pipeline panics are already isolated inside the worker pool;
		// this recover guards the fan-out goroutine itself, which would
		// otherwise take down the process.
		defer func() {
			if r := recover(); r != nil {
				e.classifyPanics.Add(1)
				e.bus.Publish(events.FaultRecovered, FaultRecoveredData{
					Subsystem: "classify", Panic: fmt.Sprint(r)})
				mlDone <- fmt.Errorf("serve: classify panic: %v", r)
			}
		}()
		res, err := e.Classify(ctx, model, []Program{prog})
		if err == nil {
			resp.ML = res[0]
		}
		mlDone <- err
	}()

	verdicts := make([]ToolVerdict, len(selected))
	// The module parses lazily, at most once, and only if some tool
	// verdict misses its cache. (A parse failure is counted once, by the
	// ML goroutine's Classify — not again here.)
	lm := &lazyModule{src: prog.IR}
	if e.toolCache != nil || e.progCache != nil {
		// The digest keys the tool-verdict and program caches; with both
		// disabled it would be dead work on the request path.
		lm.digest = requestDigest(prog.IR)
	}
	// Dynamic tools fan out (their simulations run on the sim pool and
	// dominate latency); static tools run inline on the request
	// goroutine — a cached verdict is one lookup, an uncached static
	// analysis microseconds.
	var wg sync.WaitGroup
	for i, st := range selected {
		if !st.dynamic {
			continue
		}
		i, st := i, st
		wg.Add(1)
		go func() {
			defer wg.Done()
			verdicts[i] = e.runTool(ctx, st, lm, ranks)
		}()
	}
	for i, st := range selected {
		if !st.dynamic {
			verdicts[i] = e.runTool(ctx, st, lm, ranks)
		}
	}
	wg.Wait()
	if err := <-mlDone; err != nil {
		return nil, err
	}
	resp.Tools = verdicts
	resp.Ensemble = ensembleOf(resp.ML, verdicts)
	e.bus.Publish(events.VerdictCompleted, VerdictCompletedData{
		Model: model, Name: prog.Name, Incorrect: resp.Ensemble.Incorrect,
		Flags: resp.Ensemble.Flags, Voters: resp.Ensemble.Voters,
	})
	return resp, nil
}

// runTool produces one expert verdict, consulting the tool cache first:
// a hit costs no execution, concurrent identical (tool, config, program)
// analyses coalesce onto one leader, and a flight aborted by its
// leader's dead deadline is retried by each waiter on its own budget —
// the same follower policy as Classify.
func (e *Engine) runTool(ctx context.Context, st selectedTool, lm *lazyModule, ranks int) ToolVerdict {
	b := e.toolBreaker(st.name)
	if e.toolCache == nil {
		if !b.Allow() {
			e.degradedVerdicts.Add(1)
			return degradedToolVerdict(st)
		}
		v := e.execTool(ctx, st, lm, ranks, nil)
		recordToolOutcome(b, v)
		return v
	}
	// Static analyses are configuration-independent: keying them with a
	// constant config segment gives one entry per program instead of one
	// per requested rank count.
	keyRanks, keySteps := ranks, e.cfg.SimMaxSteps
	if !st.dynamic {
		keyRanks, keySteps = 0, 0
	}
	key := toolKey(st.name, keyRanks, keySteps, lm.digest)
	for {
		v, f, state := e.toolCache.Join(key)
		switch state {
		case cache.Hit:
			v.Cached = true
			return v
		case cache.Wait:
			select {
			case <-f.Done():
				v, err := f.Result()
				switch {
				case err == nil:
					return v
				case errors.Is(err, errWallTimeout):
					// Conclusive for this request window, just uncached.
					return v
				case errors.Is(err, errBreakerOpen):
					// The leader was refused by the tool's open breaker; the
					// whole coalesced group degrades with it.
					e.degradedVerdicts.Add(1)
					return v
				case errors.Is(err, errToolInternal):
					// The leader's tool failed internally (panic, injected
					// fault): conclusive for this window, never cached.
					return v
				case isCancellation(err):
					// The leader's request died; its deadline says nothing
					// about ours — run the tool on our own budget.
					continue
				default:
					return ToolVerdict{Tool: st.name, Dynamic: st.dynamic,
						Verdict: "error", Err: err.Error()}
				}
			case <-ctx.Done():
				return canceledToolVerdict(st)
			}
		case cache.Lead:
			// Cached verdicts above serve even while the breaker is open —
			// only fresh executions are gated.
			if !b.Allow() {
				e.degradedVerdicts.Add(1)
				v := degradedToolVerdict(st)
				e.toolCache.Complete(f, v, errBreakerOpen)
				return v
			}
			v := e.execTool(ctx, st, lm, ranks, f)
			recordToolOutcome(b, v)
			return v
		}
	}
}

// execTool executes one tool (leading flight f when non-nil): static
// tools inline, dynamic tools on the simulation pool so heavy runs
// cannot starve the classification workers. The program parses (and,
// for dynamic tools, compiles) on demand here — a cache hit in runTool
// never reaches this point.
func (e *Engine) execTool(ctx context.Context, st selectedTool, lm *lazyModule, ranks int, f *cache.Flight[ToolVerdict]) ToolVerdict {
	if !st.dynamic {
		mod, perr := lm.get()
		if perr != nil {
			return e.parseErrVerdict(st, perr, f)
		}
		v := e.invokeTool(ctx, st, mod, nil, ranks)
		e.completeTool(f, v, ctx)
		return v
	}
	// Dynamic tools run the compiled form; the content-addressed program
	// cache makes the compile step once-per-program across tools, world
	// sizes and requests.
	var prog *mpisim.Program
	if _, ok := st.tool.(verify.ProgramChecker); ok {
		var perr error
		prog, perr = e.compiledProgram(lm)
		if perr != nil {
			return e.parseErrVerdict(st, perr, f)
		}
	} else if _, perr := lm.get(); perr != nil {
		return e.parseErrVerdict(st, perr, f)
	}
	done := make(chan ToolVerdict, 1)
	job := func() {
		// A dead context skips the simulation only for uncoalesced work;
		// a flight leader still completes (with the cancellation) so
		// waiters unblock and retry on their own budgets.
		if ctx.Err() != nil {
			if f != nil {
				e.toolCache.Complete(f, ToolVerdict{}, ctxErr(ctx))
			}
			done <- canceledToolVerdict(st)
			return
		}
		mod := lm.mod // parsed above when the tool needs it; nil for ProgramCheckers
		v := e.invokeTool(ctx, st, mod, prog, ranks)
		e.completeTool(f, v, ctx)
		done <- v
	}
	select {
	case e.simJobs <- job:
	case <-ctx.Done():
		if f != nil {
			e.toolCache.Complete(f, ToolVerdict{}, ctxErr(ctx))
		}
		return canceledToolVerdict(st)
	}
	select {
	case v := <-done:
		return v
	case <-ctx.Done():
		// The running simulation observes the same context and aborts
		// cooperatively; the job completes the flight on its way out.
		return canceledToolVerdict(st)
	}
}

// completeTool finishes a led flight. Conclusive verdicts — including
// deterministic step-budget timeouts and crashes, which are properties
// of the program under this configuration — are stored; a cancellation
// is broadcast but never cached, so followers retry and future requests
// recompute; a wall-clock timeout is broadcast with its verdict but
// never cached (errWallTimeout).
func (e *Engine) completeTool(f *cache.Flight[ToolVerdict], v ToolVerdict, ctx context.Context) {
	if f == nil {
		return
	}
	switch {
	case v.Verdict == "canceled":
		e.toolCache.Complete(f, ToolVerdict{}, ctxErr(ctx))
	case v.Internal:
		// Internal failures (panics, injected faults) are the tool's, not
		// the program's: broadcast so the coalesced group shares the
		// outcome, never cached so a recovered tool serves real verdicts
		// and a disarmed fault stops echoing immediately.
		e.toolCache.Complete(f, v, errToolInternal)
	case v.wallTO:
		e.toolCache.Complete(f, v, errWallTimeout)
	default:
		e.toolCache.Complete(f, v, nil)
	}
}

// parseErrVerdict reports a program that failed to parse; the failure
// is broadcast to coalesced followers but never cached, so a corrected
// resubmission recomputes.
func (e *Engine) parseErrVerdict(st selectedTool, perr error, f *cache.Flight[ToolVerdict]) ToolVerdict {
	v := ToolVerdict{Tool: st.name, Dynamic: st.dynamic,
		Verdict: "error", Err: "parse: " + perr.Error()}
	if f != nil {
		e.toolCache.Complete(f, ToolVerdict{}, fmt.Errorf("parse: %w", perr))
	}
	return v
}

// invokeTool runs the tool synchronously and maps its verdict. Dynamic
// tools that accept a pre-compiled program (prog non-nil) skip the
// per-run compile entirely. The call is panic-isolated: a panicking
// tool (or an armed panic fault) becomes an internal error verdict that
// feeds the tool's breaker instead of killing the goroutine — for
// dynamic tools, a pooled sim worker the whole engine shares.
func (e *Engine) invokeTool(ctx context.Context, st selectedTool, mod *ir.Module, prog *mpisim.Program, ranks int) (out ToolVerdict) {
	defer func() {
		if r := recover(); r != nil {
			e.toolPanics.Add(1)
			out = internalToolVerdict(st, fmt.Sprintf("tool panic: %v", r))
			e.bus.Publish(events.FaultRecovered, FaultRecoveredData{
				Subsystem: "tool", Detail: st.name, Panic: fmt.Sprint(r)})
		}
	}()
	e.toolRuns.Add(1)
	if err := fault.Inject("tool." + st.name); err != nil {
		return internalToolVerdict(st, err.Error())
	}
	var cfg mpisim.Config
	if st.dynamic {
		if err := fault.Inject(FaultSimRun); err != nil {
			return internalToolVerdict(st, err.Error())
		}
		e.simExecs.Add(1)
		cfg = mpisim.Config{Ranks: ranks, MaxSteps: e.cfg.SimMaxSteps,
			WallBudget: e.cfg.SimTimeout}
	}
	var v verify.Verdict
	if prog != nil {
		v = st.tool.(verify.ProgramChecker).CheckProgram(ctx, prog, cfg)
	} else {
		v = st.tool.CheckModule(ctx, mod, cfg)
	}
	out = ToolVerdict{Tool: st.name, Dynamic: st.dynamic,
		Flagged: v.Flagged, Reason: v.Reason}
	switch {
	case v.Canceled:
		out.Verdict = "canceled"
	case v.TO:
		out.Verdict = "timeout"
		out.wallTO = v.Wall
		e.simTimeouts.Add(1)
	case v.CE || v.RE:
		out.Verdict = "error"
		out.Err = v.Reason
	case v.Flagged:
		out.Verdict = "flagged"
	default:
		out.Verdict = "clean"
	}
	return out
}

func canceledToolVerdict(st selectedTool) ToolVerdict {
	return ToolVerdict{Tool: st.name, Dynamic: st.dynamic, Verdict: "canceled"}
}

// internalToolVerdict reports a tool that failed for reasons internal
// to the tool (panic, injected fault) — a breaker-feeding error verdict.
func internalToolVerdict(st selectedTool, msg string) ToolVerdict {
	return ToolVerdict{Tool: st.name, Dynamic: st.dynamic,
		Verdict: "error", Err: "internal: " + msg, Internal: true}
}

// ensembleOf tallies the majority vote described on Ensemble.
func ensembleOf(ml Result, tools []ToolVerdict) Ensemble {
	var ens Ensemble
	if ml.Err == "" {
		ens.Voters++
		if ml.Incorrect {
			ens.Flags++
		}
	}
	for _, v := range tools {
		switch v.Verdict {
		case "flagged":
			ens.Voters++
			ens.Flags++
		case "clean":
			ens.Voters++
		case "degraded":
			ens.Degraded = true
		}
		if v.Internal {
			ens.Degraded = true
		}
	}
	ens.Incorrect = ens.Flags > 0 && 2*ens.Flags >= ens.Voters
	if ens.Voters > 0 {
		majority := ens.Flags
		if clean := ens.Voters - ens.Flags; clean > majority {
			majority = clean
		}
		ens.Agreement = float64(majority) / float64(ens.Voters)
	}
	return ens
}
